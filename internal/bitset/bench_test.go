package bitset

import "testing"

func BenchmarkAddContains(b *testing.B) {
	s := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(i % 1024)
		if !s.Contains(i % 1024) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkUnionCount(b *testing.B) {
	x := New(1024)
	y := New(1024)
	for i := 0; i < 1024; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 1024; i += 5 {
		y.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		u := x.Clone()
		u.Union(y)
		total += u.Count()
	}
	_ = total
}

func BenchmarkForEach(b *testing.B) {
	s := New(1024)
	for i := 0; i < 1024; i += 2 {
		s.Add(i)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(int) { n++ })
	}
	_ = n
}
