package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	if s.Width() != 100 {
		t.Fatalf("Width = %d, want 100", s.Width())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(4)
	s.Add(4)
}

func TestNegativeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}

func TestCloneIndependent(t *testing.T) {
	s := New(70)
	s.Add(5)
	c := s.Clone()
	c.Add(69)
	if s.Contains(69) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Contains(5) {
		t.Fatal("Clone missing original element")
	}
}

func TestUnionSubtractIntersect(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64})
	b := FromSlice(100, []int{3, 4, 64, 99})

	u := a.Clone()
	u.Union(b)
	want := FromSlice(100, []int{1, 2, 3, 4, 64, 99})
	if !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}

	d := a.Clone()
	d.Subtract(b)
	want = FromSlice(100, []int{1, 2})
	if !d.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", d, want)
	}

	x := a.Clone()
	x.Intersect(b)
	want = FromSlice(100, []int{3, 64})
	if !x.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", x, want)
	}
}

func TestSupersetOf(t *testing.T) {
	a := FromSlice(66, []int{1, 2, 65})
	b := FromSlice(66, []int{1, 65})
	if !a.SupersetOf(b) {
		t.Fatal("a should be superset of b")
	}
	if b.SupersetOf(a) {
		t.Fatal("b should not be superset of a")
	}
	if !a.SupersetOf(a) {
		t.Fatal("a should be superset of itself")
	}
	empty := New(66)
	if !a.SupersetOf(empty) {
		t.Fatal("any set is superset of the empty set")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(10)
	b := New(11)
	a.Union(b)
}

func TestForEachOrderAndElems(t *testing.T) {
	s := FromSlice(200, []int{199, 0, 63, 64, 100})
	got := s.Elems()
	want := []int{0, 63, 64, 100, 199}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestAddRangeFillClear(t *testing.T) {
	s := New(75)
	s.AddRange(10, 20)
	if s.Count() != 10 {
		t.Fatalf("Count = %d, want 10", s.Count())
	}
	s.Fill()
	if s.Count() != 75 {
		t.Fatalf("Count after Fill = %d, want 75", s.Count())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("not empty after Clear")
	}
}

func TestString(t *testing.T) {
	s := FromSlice(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: for random element sequences, the bitset agrees with a map-based
// reference implementation on membership and count.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const width = 300
		s := New(width)
		ref := map[int]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			e := int(op) % width
			if rng.Intn(2) == 0 {
				s.Add(e)
				ref[e] = true
			} else {
				s.Remove(e)
				delete(ref, e)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for e := range ref {
			if !s.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and a superset of both operands.
func TestQuickUnionProperties(t *testing.T) {
	f := func(as, bs []uint8) bool {
		const width = 256
		a := New(width)
		b := New(width)
		for _, x := range as {
			a.Add(int(x))
		}
		for _, x := range bs {
			b.Add(int(x))
		}
		u1 := a.Clone()
		u1.Union(b)
		u2 := b.Clone()
		u2.Union(a)
		return u1.Equal(u2) && u1.SupersetOf(a) && u1.SupersetOf(b) &&
			u1.Count() <= a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
