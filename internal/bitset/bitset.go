// Package bitset provides a fixed-width bit set used to represent sets of
// cluster (node) identifiers in directory entries.
//
// The width is chosen at construction time and never changes; all operations
// that combine two sets require equal widths. The zero value is an empty set
// of width zero and is mostly useful as a placeholder.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-width bit set. Bit i set means element i is a member.
type Set struct {
	n     int // width in bits
	words []uint64
}

// New returns an empty set able to hold elements 0..n-1.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative width")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set of width n containing the given elements.
func FromSlice(n int, elems []int) Set {
	s := New(n)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Width returns the number of elements the set can hold.
func (s Set) Width() int { return s.n }

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t without allocating. Both
// sets must have the same width.
func (s Set) CopyFrom(t Set) {
	s.mustMatch(t)
	copy(s.words, t.words)
}

// Bytes returns the resident heap size of the set's backing storage.
func (s Set) Bytes() int { return len(s.words) * 8 }

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts element i.
func (s Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes element i.
func (s Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether element i is a member.
func (s Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of elements in the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union adds every element of t to s. Both sets must have the same width.
func (s Set) Union(t Set) {
	s.mustMatch(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Subtract removes every element of t from s.
func (s Set) Subtract(t Set) {
	s.mustMatch(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Intersect removes from s every element not in t.
func (s Set) Intersect(t Set) {
	s.mustMatch(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// SupersetOf reports whether s contains every element of t.
func (s Set) SupersetOf(t Set) bool {
	s.mustMatch(t)
	for i := range s.words {
		if t.words[i]&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s Set) Equal(t Set) bool {
	s.mustMatch(t)
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

func (s Set) mustMatch(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: width mismatch %d != %d", s.n, t.n))
	}
}

// ForEach calls fn for every element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Elems returns the members in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// AddRange inserts every element in [lo, hi).
func (s Set) AddRange(lo, hi int) {
	if lo >= hi {
		return
	}
	s.check(lo)
	s.check(hi - 1)
	lw, hw := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if lw == hw {
		s.words[lw] |= loMask & hiMask
		return
	}
	s.words[lw] |= loMask
	for i := lw + 1; i < hw; i++ {
		s.words[i] = ^uint64(0)
	}
	s.words[hw] |= hiMask
}

// Fill inserts every element 0..n-1.
func (s Set) Fill() {
	s.AddRange(0, s.n)
}

// String renders the set as {a, b, c}.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
