// Package stress is the seeded adversarial protocol-stress campaign
// behind cmd/protostress: randomized machine configurations — scheme ×
// processor count × clustering × replacement policy × tiny-directory
// geometry — run over contended reference streams with the runtime
// invariant checker on. It lives here rather than in the command so the
// campaign service can submit, journal and resume stress campaigns trial
// by trial; cmd/protostress keeps the flag parsing and self-test exit
// policy.
package stress

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/machine"
	"dircoh/internal/mesh"
	"dircoh/internal/replay"
	"dircoh/internal/rng"
	"dircoh/internal/runner"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
	"dircoh/internal/tango"
)

// Options is everything one stress campaign needs; commands fill it from
// flags, the campaign service from a submitted spec.
type Options struct {
	Trials   int
	Seed     int64
	Procs    []int
	Refs     int
	Blocks   int
	Fault    machine.Fault
	Faults   string // "", a mesh.ParseFaults spec, or "campaign"
	Wedge    bool
	Check    bool // run the invariant checker (forces the serial engine)
	Shards   int  // sharded machine core width; effective only with check off
	Parallel int
	Verbose  bool
	// Deadline, when > 0, bounds each trial in wall-clock time via the
	// machine's watchdog abort (the campaign service's per-job timeout).
	Deadline time.Duration
}

// SeedFor derives trial i's seed from the campaign seed: a single-trial
// campaign runs the seed exactly (so printed replay lines reproduce),
// while multi-trial campaigns decorrelate the trials with a splitmix64
// mix.
func SeedFor(campaign int64, i, trials int) int64 {
	if trials == 1 {
		return campaign
	}
	return rng.Mix(campaign, int64(i))
}

// schemeNames mirrors the roster in machine's scheme factories; the
// trial rng indexes into it so a replayed seed picks the same scheme.
var schemeNames = []string{"full", "cv", "b", "nb", "x", "tl"}

var schemes = []machine.SchemeFactory{
	machine.FullVec, machine.CoarseVec2, machine.Broadcast,
	machine.NoBroadcast, machine.SupersetX, machine.TwoLevel,
}

var policies = []sparse.ReplacePolicy{sparse.LRU, sparse.Random, sparse.LRA}
var policyNames = []string{"lru", "rand", "lra"}

// Trial is one randomized configuration plus its outcome.
type Trial struct {
	ID       int
	Seed     int64
	Desc     string
	Err      error
	Caught   []check.Violation
	CohErr   error
	ExecTime uint64
}

// Failed reports whether the trial found anything wrong — a run error,
// an invariant violation, or a quiescence-sweep failure.
func (t *Trial) Failed() bool {
	return t.Err != nil || len(t.Caught) > 0 || t.CohErr != nil
}

// Stuck reports whether the trial was aborted by the liveness watchdog
// (or the undeliverable-message sweep) with a diagnostic dump — the
// outcome -wedge demands from every trial.
func (t *Trial) Stuck() bool {
	var se *machine.StuckError
	return errors.As(t.Err, &se) && se.Dump != ""
}

// Line renders the trial's one-line summary, the row Report prints for
// verbose or failed trials.
func (t *Trial) Line() string {
	return fmt.Sprintf("trial %3d seed=%-12d %s  exec=%d cycles", t.ID, t.Seed, t.Desc, t.ExecTime)
}

// Workload builds the adversarial reference streams: per-proc mixes of
// reads, writes, lock-protected writes and a closing barrier over a small
// block pool. Identical in spirit to the machine package's checker tests,
// but parameterized by the trial rng so every trial stresses a different
// sharing pattern.
func Workload(rng *rand.Rand, procs, refs, blocks int, sync bool) *tango.Workload {
	addr := func(b int64) int64 { return b * 16 }
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for i := 0; i < refs; i++ {
			blk := int64(rng.Intn(blocks))
			switch rng.Intn(12) {
			case 0, 1, 2, 3:
				b.Write(addr(blk))
			case 4:
				if sync {
					lock := addr(int64(blocks) + int64(rng.Intn(4)))
					b.Lock(lock)
					b.Write(addr(blk))
					b.Unlock(lock)
				} else {
					b.Write(addr(blk))
				}
			default:
				b.Read(addr(blk))
			}
		}
		if sync {
			b.Barrier(addr(int64(blocks) + 8))
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{Name: "stress", Streams: streams}
}

// drawFaults samples one per-trial fault mix for "-faults campaign":
// drop/dup/delay/outage rates spanning none to aggressive, re-drawn until
// at least one dimension is live.
func drawFaults(rng *rand.Rand) mesh.FaultConfig {
	rates := []float64{0, 1e-4, 1e-3, 1e-2}
	delayPs := []float64{0, 0.01, 0.05, 0.2}
	delayMax := []sim.Time{8, 32, 128}
	outPs := []float64{0, 0.02, 0.1}
	outLens := []sim.Time{64, 256}
	for {
		fc := mesh.FaultConfig{
			Drop:   rates[rng.Intn(len(rates))],
			Dup:    rates[rng.Intn(len(rates))],
			DelayP: delayPs[rng.Intn(len(delayPs))],
		}
		if fc.DelayP > 0 {
			fc.DelayMax = delayMax[rng.Intn(len(delayMax))]
		}
		if p := outPs[rng.Intn(len(outPs))]; p > 0 {
			fc.OutageP = p
			fc.OutageLen = outLens[rng.Intn(len(outLens))]
			fc.OutageEvery = 2048
		}
		if fc.Enabled() {
			return fc
		}
	}
}

// RunTrial derives one configuration from the trial seed, runs it with
// the checker on, and records everything the checker flagged.
func RunTrial(id int, seed int64, o Options) Trial {
	rng := rand.New(rand.NewSource(seed))
	t := Trial{ID: id, Seed: seed}

	si := rng.Intn(len(schemes))
	procs := o.Procs[rng.Intn(len(o.Procs))]
	ppc := 1
	if procs%2 == 0 && rng.Intn(2) == 1 {
		ppc = 2
	}
	sync := rng.Intn(3) > 0

	cfg := machine.Config{
		Procs:           procs,
		ProcsPerCluster: ppc,
		Block:           16,
		Cache:           cache.Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16},
		Scheme:          schemes[si],
		Timing:          machine.DefaultTiming(),
		Seed:            seed,
		Check:           o.Check,
		Shards:          o.Shards,
		Fault:           o.Fault,
		Deadline:        o.Deadline,
	}
	dir := "fullmap"
	switch rng.Intn(4) {
	case 0: // full map
	case 1, 2: // tiny sparse directory: constant replacement recalls
		pi := rng.Intn(len(policies))
		cfg.Sparse = machine.SparseConfig{
			Entries: 4 << rng.Intn(3),
			Assoc:   1 << rng.Intn(3),
			Policy:  policies[pi],
		}
		dir = fmt.Sprintf("sparse%d/a%d/%s", cfg.Sparse.Entries, cfg.Sparse.Assoc, policyNames[pi])
	case 3: // two-level overflow directory
		cfg.Overflow = &machine.OverflowDirConfig{Ptrs: 1, WideEntries: 4, Assoc: 2}
		dir = "overflow"
	}
	t.Desc = fmt.Sprintf("scheme=%s procs=%d ppc=%d dir=%s sync=%v",
		schemeNames[si], procs, ppc, dir, sync)

	switch {
	case o.Wedge:
		// Unrecoverable: every message dropped, tiny retry budget. The
		// liveness watchdog must abort with its diagnostic dump.
		cfg.Mesh.Faults = mesh.FaultConfig{Drop: 1}
		cfg.Retry = machine.RetryConfig{MaxRetries: 2}
		cfg.StuckBudget = 1 << 16
	case o.Faults == "campaign":
		cfg.Mesh.Faults = drawFaults(rng)
	case o.Faults != "":
		fc, err := mesh.ParseFaults(o.Faults)
		if err != nil {
			t.Err = err
			return t
		}
		cfg.Mesh.Faults = fc
	}
	if cfg.Mesh.Faults.Enabled() {
		t.Desc += " faults=" + cfg.Mesh.Faults.String()
	}

	w := Workload(rng, procs, o.Refs, o.Blocks, sync)
	m, err := machine.New(cfg)
	if err != nil {
		t.Err = err
		return t
	}
	r, err := m.Run(w)
	if err != nil {
		t.Err = err
		return t
	}
	t.ExecTime = r.ExecTime
	t.Caught = m.Violations()
	t.CohErr = m.CheckCoherence()
	return t
}

// RunTrials executes the campaign and returns the trials plus whether
// anything was caught. It is the testable core of cmd/protostress.
func RunTrials(o Options) ([]Trial, bool) {
	pool := runner.New(o.Parallel)
	trials := runner.Collect(pool, o.Trials, func(i int) Trial {
		return RunTrial(i, SeedFor(o.Seed, i, o.Trials), o)
	})
	caught := false
	for i := range trials {
		if trials[i].Failed() {
			caught = true
		}
	}
	return trials, caught
}

// Render writes one trial's report block — the summary line for verbose
// (or failed) trials plus error, violation and replay detail for failed
// ones — exactly as cmd/protostress prints it.
func (t *Trial) Render(w io.Writer, o Options) {
	if o.Verbose || t.Failed() {
		fmt.Fprintf(w, "%s\n", t.Line())
	}
	if t.Err != nil {
		fmt.Fprintf(w, "  run error: %v\n", t.Err)
	}
	for _, v := range t.Caught {
		fmt.Fprintf(w, "  violation: %s\n", v)
	}
	if t.CohErr != nil {
		fmt.Fprintf(w, "  quiescence sweep: %v\n", t.CohErr)
	}
	if t.Failed() {
		fmt.Fprintf(w, "  replay: %s\n", replay.Line{
			Trials: 1, Seed: t.Seed, Procs: o.Procs, Refs: o.Refs, Blocks: o.Blocks,
			Fault: o.Fault.String(), Faults: o.Faults, Wedge: o.Wedge,
			NoCheck: !o.Check, Shards: o.Shards, Verbose: true,
		})
	}
}

// Report renders every trial's block to w.
func Report(w io.Writer, trials []Trial, o Options) {
	for i := range trials {
		trials[i].Render(w, o)
	}
}

// CountFailed returns how many trials found something.
func CountFailed(trials []Trial) int {
	n := 0
	for i := range trials {
		if trials[i].Failed() {
			n++
		}
	}
	return n
}
