package stress

import (
	"errors"
	"strings"
	"testing"

	"dircoh/internal/machine"
)

func smallOpts() Options {
	return Options{Trials: 6, Seed: 21, Procs: []int{4, 6}, Refs: 150, Blocks: 16, Check: true}
}

// TestCleanCampaign: an unmutated protocol must survive the stress grid
// with zero findings.
func TestCleanCampaign(t *testing.T) {
	trials, caught := RunTrials(smallOpts())
	if caught {
		for _, tr := range trials {
			if tr.Failed() {
				t.Errorf("trial %d (%s): err=%v violations=%v coherence=%v",
					tr.ID, tr.Desc, tr.Err, tr.Caught, tr.CohErr)
			}
		}
		t.Fatal("clean protocol produced findings")
	}
}

// TestFaultsCaught: each injected mutation must be detected by at least
// one trial — the harness's self-test obligation.
func TestFaultsCaught(t *testing.T) {
	for _, f := range []machine.Fault{machine.FaultDropInval, machine.FaultSkipRecallInval} {
		o := smallOpts()
		o.Trials = 16
		o.Fault = f
		_, caught := RunTrials(o)
		if !caught {
			t.Errorf("fault %s went undetected in %d trials", f, o.Trials)
		}
	}
}

// TestReplayDeterminism: rerunning a single trial with its printed seed
// reproduces the identical configuration and execution time.
func TestReplayDeterminism(t *testing.T) {
	o := smallOpts()
	first := RunTrial(3, SeedFor(o.Seed, 3, o.Trials), o)
	replay := RunTrial(0, first.Seed, o)
	if replay.Desc != first.Desc || replay.ExecTime != first.ExecTime {
		t.Fatalf("replay diverged: %q exec=%d vs %q exec=%d",
			first.Desc, first.ExecTime, replay.Desc, replay.ExecTime)
	}
}

// TestFaultCampaignClean: under randomized per-trial network fault mixes
// the recovery machinery must still complete every trial with zero
// invariant violations.
func TestFaultCampaignClean(t *testing.T) {
	o := smallOpts()
	o.Trials = 8
	o.Faults = "campaign"
	trials, caught := RunTrials(o)
	if caught {
		for _, tr := range trials {
			if tr.Failed() {
				t.Errorf("trial %d (%s): err=%v violations=%v coherence=%v",
					tr.ID, tr.Desc, tr.Err, tr.Caught, tr.CohErr)
			}
		}
		t.Fatal("fault campaign produced findings")
	}
	for _, tr := range trials {
		if tr.Desc == "" || !strings.Contains(tr.Desc, "faults=") {
			t.Fatalf("trial %d desc lacks fault spec: %q", tr.ID, tr.Desc)
		}
	}
}

// TestFaultCampaignReplay: a fault-campaign trial replayed by its seed
// draws the identical fault mix and execution time.
func TestFaultCampaignReplay(t *testing.T) {
	o := smallOpts()
	o.Trials = 4
	o.Faults = "campaign"
	first := RunTrial(2, SeedFor(o.Seed, 2, o.Trials), o)
	o.Trials = 1
	replay := RunTrial(0, first.Seed, o)
	if replay.Desc != first.Desc || replay.ExecTime != first.ExecTime {
		t.Fatalf("replay diverged: %q exec=%d vs %q exec=%d",
			first.Desc, first.ExecTime, replay.Desc, replay.ExecTime)
	}
}

// TestFaultCampaignRegressions replays the exact campaign seeds that once
// produced invariant violations — stale owner reads overtaken by a
// sibling's re-acquisition, write fan-out invalidations outliving a
// recall, and SharingWBs stale after an ownership bounce through a third
// cluster. Each must now run clean.
func TestFaultCampaignRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size campaign replays")
	}
	seeds := []int64{
		-4627371582388691390, -8194201985949301919, -1806040232980855993,
		-5937789379458223177, 4026922237021176607, 7232921342214546856,
		8478203652574459302, -4260178708525722724, 6942937328743600961,
		-2631691874271825767,
	}
	o := Options{Trials: 1, Seed: 0, Procs: []int{4, 6, 8}, Refs: 300,
		Blocks: 24, Faults: "campaign", Check: true}
	for _, seed := range seeds {
		tr := RunTrial(0, seed, o)
		if tr.Failed() {
			t.Errorf("seed %d (%s): err=%v violations=%v coherence=%v",
				seed, tr.Desc, tr.Err, tr.Caught, tr.CohErr)
		}
	}
}

// TestShardedDifferential: the same seeded stress campaign run on the
// sharded machine core at widths 1, 2 and 4 must reproduce identical
// configurations and execution times trial for trial (the checker is off:
// it forces the serial engine).
func TestShardedDifferential(t *testing.T) {
	base := smallOpts()
	base.Check = false
	base.Shards = 1
	want, caught := RunTrials(base)
	if caught {
		t.Fatal("clean protocol produced findings at -shards 1")
	}
	for _, shards := range []int{2, 4} {
		o := base
		o.Shards = shards
		got, caught := RunTrials(o)
		if caught {
			t.Fatalf("clean protocol produced findings at -shards %d", shards)
		}
		for i := range want {
			if got[i].Desc != want[i].Desc || got[i].ExecTime != want[i].ExecTime {
				t.Errorf("trial %d diverged at -shards %d: %q exec=%d vs %q exec=%d",
					i, shards, want[i].Desc, want[i].ExecTime, got[i].Desc, got[i].ExecTime)
			}
		}
	}
}

// TestWedgeTripsWatchdog: with every message dropped and the retry budget
// cut, every trial must abort via *machine.StuckError carrying a
// diagnostic dump.
func TestWedgeTripsWatchdog(t *testing.T) {
	o := smallOpts()
	o.Trials = 3
	o.Wedge = true
	trials, _ := RunTrials(o)
	for _, tr := range trials {
		if !tr.Stuck() {
			t.Fatalf("trial %d not stuck: err=%v", tr.ID, tr.Err)
		}
		var se *machine.StuckError
		errors.As(tr.Err, &se)
		if !strings.Contains(se.Dump, "refs remaining") || !strings.Contains(se.Dump, "msg ") {
			t.Fatalf("trial %d dump lacks proc/envelope detail:\n%s", tr.ID, se.Dump)
		}
	}
}
