package mesh

import "testing"

// TestConfigValidate: Validate must reject exactly what New panics over.
func TestConfigValidate(t *testing.T) {
	if err := (Config{Nodes: 16}).Validate(); err != nil {
		t.Fatalf("16 nodes is legal: %v", err)
	}
	for _, n := range []int{0, -3} {
		if err := (Config{Nodes: n}).Validate(); err == nil {
			t.Fatalf("Validate accepted %d nodes", n)
		}
	}
	// The constructor still panics on the same input (library misuse).
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero nodes should panic")
		}
	}()
	New(Config{})
}
