package mesh

import (
	"testing"

	"dircoh/internal/sim"
)

// TestOneNodeMesh: the degenerate 1x1 mesh must route self-traffic at
// base latency with zero hops, through both the reliable and the faulty
// send paths.
func TestOneNodeMesh(t *testing.T) {
	m := New(Config{Nodes: 1, Base: 7, PerHop: 3})
	if w, h := m.Dims(); w != 1 || h != 1 {
		t.Fatalf("dims = %dx%d, want 1x1", w, h)
	}
	if got := m.Send(0, 0); got != 7 {
		t.Fatalf("Send(0,0) = %d, want base 7", got)
	}
	if st := m.Stats(); st.Messages != 1 || st.Hops != 0 || st.MaxHops != 0 {
		t.Fatalf("stats = %+v", st)
	}

	mf := New(Config{Nodes: 1, Base: 7, PerHop: 3, Faults: FaultConfig{DelayP: 1, DelayMax: 4, Seed: 9}})
	arrivals, n := mf.SendFaulty(100, 0, 0)
	if n != 1 {
		t.Fatalf("SendFaulty copies = %d, want 1", n)
	}
	if arrivals[0] < 100+7+1 || arrivals[0] > 100+7+4 {
		t.Fatalf("arrival = %d, want base+jitter in [108,111]", arrivals[0])
	}
}

// TestNonSquareSendAt: routing and latency on a grid that does not fill
// its bounding box (12 nodes in 4x3, 15 in 4x4) must stay consistent
// with the hop metric for every pair.
func TestNonSquareSendAt(t *testing.T) {
	for _, nodes := range []int{2, 3, 12, 15} {
		m := New(Config{Nodes: nodes, Base: 5, PerHop: 2})
		for a := 0; a < nodes; a++ {
			for b := 0; b < nodes; b++ {
				want := sim.Time(5) + sim.Time(m.Hops(a, b))*2
				if got := m.SendAt(50, a, b); got != 50+want {
					t.Fatalf("nodes=%d SendAt(%d,%d) = %d, want %d", nodes, a, b, got, 50+want)
				}
			}
		}
	}
}

// TestPortBurstQueueing: a burst of simultaneous deliveries to one node
// must serialize on its ejection port, one PortTime apart, and report
// the backlog a later arrival would wait behind.
func TestPortBurstQueueing(t *testing.T) {
	m := New(Config{Nodes: 4, Base: 10, PerHop: 2, PortTime: 3})
	const burst = 5
	var prev sim.Time
	for i := 0; i < burst; i++ {
		got := m.SendAt(200, 0, 1) // 1 hop: raw arrival 212
		want := sim.Time(212 + i*3)
		if got != want {
			t.Fatalf("burst copy %d arrives %d, want %d", i, got, want)
		}
		if i > 0 && got != prev+3 {
			t.Fatalf("burst spacing %d, want PortTime 3", got-prev)
		}
		prev = got
	}
	if st := m.Stats(); st.Stalls != burst-1 {
		t.Fatalf("stalls = %d, want %d", st.Stalls, burst-1)
	}
	// The port is booked through the last arrival + PortTime.
	if got := m.PortBacklog(1, 212); got != sim.Time((burst-1)*3+3) {
		t.Fatalf("backlog = %d, want %d", got, (burst-1)*3+3)
	}
	if got := m.PortBacklog(1, 10_000); got != 0 {
		t.Fatalf("idle backlog = %d, want 0", got)
	}
}

// TestMaxHopsReorderedDelivery: mesh.maxhops is a topological high-water
// mark of routes carried, independent of the order fault jitter delivers
// (or drops) the copies.
func TestMaxHopsReorderedDelivery(t *testing.T) {
	m := New(Config{Nodes: 16, Base: 10, PerHop: 2,
		Faults: FaultConfig{Drop: 0.5, DelayP: 1, DelayMax: 200, Seed: 4}})
	// Corner-to-corner (6 hops) then a flood of neighbor traffic whose
	// delayed arrivals interleave arbitrarily with it.
	m.SendFaulty(0, 0, 15)
	for i := 0; i < 50; i++ {
		m.SendFaulty(sim.Time(i), 0, 1)
	}
	st := m.Stats()
	if st.MaxHops != 6 {
		t.Fatalf("MaxHops = %d, want 6 (corner route, even if its copy was dropped or overtaken)", st.MaxHops)
	}
	// Every attempt was carried by the wire: 51 sends plus any duplicates
	// (none here, Dup=0) regardless of drops.
	if st.Messages != 51 {
		t.Fatalf("Messages = %d, want 51 (drops still count as traffic)", st.Messages)
	}
}

// TestSendFaultyDeterminism: identical seeds must replay the identical
// arrival sequence; a different seed must decorrelate it.
func TestSendFaultyDeterminism(t *testing.T) {
	mk := func(seed int64) []sim.Time {
		m := New(Config{Nodes: 9, Base: 8, PerHop: 2,
			Faults: FaultConfig{Drop: 0.2, Dup: 0.2, DelayP: 0.5, DelayMax: 64, Seed: seed}})
		var out []sim.Time
		for i := 0; i < 200; i++ {
			arr, n := m.SendFaulty(sim.Time(i*10), i%9, (i*5)%9)
			out = append(out, arr[:n]...)
		}
		return out
	}
	a, b, c := mk(42), mk(42), mk(43)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds replayed the identical arrival sequence")
	}
}

// TestSendFaultyDropAndDup: rate-1 drop loses every copy but still books
// the traffic; rate-1 dup doubles the copies.
func TestSendFaultyDropAndDup(t *testing.T) {
	m := New(Config{Nodes: 4, Base: 10, PerHop: 2, Faults: FaultConfig{Drop: 1, Seed: 1}})
	if _, n := m.SendFaulty(0, 0, 1); n != 0 {
		t.Fatalf("drop=1 delivered %d copies", n)
	}
	if st := m.Stats(); st.Messages != 1 || st.Hops != 1 {
		t.Fatalf("dropped copy not counted as traffic: %+v", st)
	}

	d := New(Config{Nodes: 4, Base: 10, PerHop: 2, Faults: FaultConfig{Dup: 1, Seed: 1}})
	arr, n := d.SendFaulty(0, 0, 1)
	if n != 2 {
		t.Fatalf("dup=1 delivered %d copies, want 2", n)
	}
	if arr[0] != 12 || arr[1] != 12 {
		t.Fatalf("dup arrivals = %v, want both at 12", arr[:n])
	}
	if st := d.Stats(); st.Messages != 2 {
		t.Fatalf("dup traffic = %d messages, want 2", st.Messages)
	}
}

// TestOutageWindowStateless: outage decisions are stateless hashes of
// (link, window), so a retry of the same send observes the same window —
// swallowed inside it, delivered beyond it — no matter how many other
// draws happened in between.
func TestOutageWindowStateless(t *testing.T) {
	cfg := Config{Nodes: 4, Base: 10, PerHop: 2,
		Faults: FaultConfig{OutageP: 1, OutageLen: 64, OutageEvery: 1024, Seed: 7}}
	m := New(cfg)
	if _, n := m.SendFaulty(10, 0, 1); n != 0 {
		t.Fatal("send inside an outage window (P=1) must be swallowed")
	}
	// Burn unrelated draws; the same (link, window) must still be down.
	for i := 0; i < 100; i++ {
		m.SendFaulty(2000, 2, 3)
	}
	if _, n := m.SendFaulty(20, 0, 1); n != 0 {
		t.Fatal("retry inside the same window must observe the same outage")
	}
	if _, n := m.SendFaulty(200, 0, 1); n != 1 {
		t.Fatal("send past OutageLen must be delivered")
	}
}

// TestParseFaultsRoundTrip: String renders the canonical grammar and
// ParseFaults reads it back to the identical configuration.
func TestParseFaultsRoundTrip(t *testing.T) {
	specs := []string{
		"none",
		"drop=0.0001",
		"drop=0.001,dup=0.0001",
		"delay=0.2:128",
		"drop=0.01,dup=0.001,delay=0.05:32,outage=0.1:64:2048",
		"drop=0.5,seed=99",
	}
	for _, s := range specs {
		c, err := ParseFaults(s)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", s, err)
		}
		c2, err := ParseFaults(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", c.String(), s, err)
		}
		if c != c2 {
			t.Fatalf("round trip of %q: %+v != %+v", s, c, c2)
		}
	}
	if c, _ := ParseFaults(""); c.Enabled() {
		t.Fatal("empty spec must disable the model")
	}
	for _, bad := range []string{
		"drop", "drop=x", "delay=0.5", "delay=0.5:0",
		"outage=0.5:64", "outage=0.5:128:64", "warp=0.5", "drop=1.5",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted a bad spec", bad)
		}
	}
}
