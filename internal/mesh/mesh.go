// Package mesh models the DASH-style 2-D mesh interconnection network:
// dimension-ordered (X then Y) routing with a fixed per-message overhead
// plus a per-hop latency. Bandwidth contention inside the network is not
// modeled (the paper's traffic results count messages; its latency
// constants already include average network transit).
package mesh

import (
	"fmt"

	"dircoh/internal/obs"
	"dircoh/internal/rng"
	"dircoh/internal/sim"
)

// Config sets the latency model.
type Config struct {
	Nodes  int      // number of network endpoints (clusters)
	Base   sim.Time // fixed cost per message (send+receive overhead)
	PerHop sim.Time // cost per mesh hop
	// PortTime, when non-zero, models finite ejection bandwidth: each
	// delivery occupies the destination's network port for PortTime
	// cycles, so bursts (e.g. broadcast invalidations) queue up.
	PortTime sim.Time
	// Faults, when any rate is nonzero, enables the unreliable-
	// interconnect model: SendFaulty drops, duplicates and delays
	// message copies and blacks out links for transient windows, all
	// deterministically from Faults.Seed, counting each injected fault
	// under mesh.fault.*. The zero value disables the model and
	// registers nothing.
	Faults FaultConfig
	// Metrics, when non-nil, is the registry the mesh records into
	// (mesh.msgs, mesh.hops, mesh.maxhops, mesh.stalls). A private
	// registry is created when nil. The mesh is single-writer; do not
	// share one registry between meshes driven from different goroutines.
	Metrics *obs.Registry
}

// DefaultConfig returns latencies calibrated so that, combined with the
// machine's bus timing, a two-cluster remote access costs ≈60 cycles and a
// three-cluster access ≈80, matching the paper's §5 constants.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Base: 10, PerHop: 2}
}

// Validate checks the configuration for every error New would otherwise
// panic over, so flag-derived node counts can be rejected with a message
// instead of a stack trace. New still panics: direct library misuse is a
// programming error.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("mesh: node count must be positive (got %d)", c.Nodes)
	}
	return c.Faults.Validate()
}

// Mesh is a 2-D mesh network. Endpoints are numbered row-major. The
// traffic counters live in a metrics registry (see Config.Metrics); the
// handles below are resolved once at construction so recording is a plain
// increment.
type Mesh struct {
	cfg      Config
	w, h     int
	msgs     *obs.Counter
	hops     *obs.Counter
	maxHop   *obs.Gauge
	portFree []sim.Time   // per-endpoint ejection port availability
	stalls   *obs.Counter // deliveries delayed by port contention
	faults   *faultState  // nil when the fault model is disabled
}

// New builds the most nearly square mesh that holds cfg.Nodes endpoints.
// Invalid configurations panic with Validate's error: New delegates to
// Validate so the constructor's checks can never drift from it; callers
// with flag-derived input validate first.
func New(cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := 1
	for w*w < cfg.Nodes {
		w++
	}
	// Shrink width while the grid still fits, to get the tightest box.
	h := (cfg.Nodes + w - 1) / w
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Mesh{
		cfg: cfg, w: w, h: h,
		msgs:     reg.Counter("mesh.msgs"),
		hops:     reg.Counter("mesh.hops"),
		maxHop:   reg.Gauge("mesh.maxhops"),
		stalls:   reg.Counter("mesh.stalls"),
		portFree: make([]sim.Time, cfg.Nodes),
	}
	if cfg.Faults.Enabled() {
		// The fault counters are registered only when the model is on, so
		// a faults-off run's metrics output is byte-identical to a build
		// without the fault layer.
		m.faults = &faultState{
			cfg:    cfg.Faults,
			stream: rng.NewStream(cfg.Faults.Seed),
			drops:  reg.Counter("mesh.fault.drop"),
			dups:   reg.Counter("mesh.fault.dup"),
			delays: reg.Counter("mesh.fault.delay"),
			outage: reg.Counter("mesh.fault.outage"),
		}
	}
	return m
}

// Dims returns the mesh width and height.
func (m *Mesh) Dims() (w, h int) { return m.w, m.h }

// Nodes returns the number of endpoints.
func (m *Mesh) Nodes() int { return m.cfg.Nodes }

func (m *Mesh) coord(n int) (x, y int) {
	if n < 0 || n >= m.cfg.Nodes {
		panic(fmt.Sprintf("mesh: node %d out of range [0,%d)", n, m.cfg.Nodes))
	}
	return n % m.w, n / m.w
}

// Hops returns the dimension-ordered route length between a and b.
func (m *Mesh) Hops(a, b int) int {
	ax, ay := m.coord(a)
	bx, by := m.coord(b)
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the transit time of one message from a to b without
// recording it.
func (m *Mesh) Latency(a, b int) sim.Time {
	return m.cfg.Base + sim.Time(m.Hops(a, b))*m.cfg.PerHop
}

// Send records one message from a to b and returns its transit time.
func (m *Mesh) Send(a, b int) sim.Time {
	h := m.Hops(a, b)
	m.msgs.Inc()
	m.hops.Add(uint64(h))
	m.maxHop.Set(int64(h)) // the gauge's high-water mark tracks the max
	return m.cfg.Base + sim.Time(h)*m.cfg.PerHop
}

// SendAt records one message from a to b injected at time now and returns
// its delivery time. With Config.PortTime > 0, the destination's ejection
// port serializes arrivals FCFS (in event order); otherwise delivery is
// purely latency-based, identical to now + Send's return.
func (m *Mesh) SendAt(now sim.Time, a, b int) sim.Time {
	arrive := now + m.Send(a, b)
	if m.cfg.PortTime == 0 {
		return arrive
	}
	if m.portFree[b] > arrive {
		arrive = m.portFree[b]
		m.stalls.Inc()
	}
	m.portFree[b] = arrive + m.cfg.PortTime
	return arrive
}

// PortBacklog returns how far past now node n's ejection port is already
// booked, in cycles — the input-queue depth a message arriving at now would
// wait behind. It is 0 when port modeling is off (PortTime == 0) or the
// port is idle. Reading the backlog does not record anything.
func (m *Mesh) PortBacklog(n int, now sim.Time) sim.Time {
	if m.cfg.PortTime == 0 || m.portFree[n] <= now {
		return 0
	}
	return m.portFree[n] - now
}

// Stats reports cumulative network accounting.
type Stats struct {
	Messages uint64
	Hops     uint64
	MaxHops  int
	Stalls   uint64 // deliveries delayed by ejection-port contention
}

// Stats returns cumulative counters.
func (m *Mesh) Stats() Stats {
	return Stats{
		Messages: m.msgs.Value(),
		Hops:     m.hops.Value(),
		MaxHops:  int(m.maxHop.Max()),
		Stalls:   m.stalls.Value(),
	}
}

// AvgHops returns the mean hops per message (0 if no messages were sent).
func (m *Mesh) AvgHops() float64 {
	if m.msgs.Value() == 0 {
		return 0
	}
	return float64(m.hops.Value()) / float64(m.msgs.Value())
}
