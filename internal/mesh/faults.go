package mesh

import (
	"fmt"
	"strconv"
	"strings"

	"dircoh/internal/obs"
	"dircoh/internal/rng"
	"dircoh/internal/sim"
)

// FaultConfig describes the unreliable-interconnect model: each message
// copy is independently dropped, duplicated or delayed, and whole links
// suffer transient outage windows. All draws come from one splitmix64
// stream seeded by Seed (outage decisions are stateless hashes of the
// link and window), so a run is exactly reproducible from its seed and
// two runs with different seeds are decorrelated.
//
// The zero value disables the model entirely: Enabled() is false, the
// mesh takes the reliable delivery path, draws nothing, and registers no
// fault counters — byte-identical to a build without the fault layer.
type FaultConfig struct {
	// Drop is the per-copy loss probability.
	Drop float64
	// Dup is the probability a message is sent as two independent copies.
	Dup float64
	// DelayP is the probability a surviving copy is jittered by an extra
	// uniform 1..DelayMax cycles (enough to reorder it behind later
	// traffic on the same link).
	DelayP   float64
	DelayMax sim.Time
	// OutageP is the probability a given (link, window) pair is down.
	// Time is cut into windows of OutageEvery cycles; a down window
	// swallows every copy injected during its first OutageLen cycles.
	OutageP     float64
	OutageLen   sim.Time
	OutageEvery sim.Time
	// Seed drives every probabilistic draw. 0 lets the machine derive one
	// from its own seed.
	Seed int64
}

// Enabled reports whether any fault class has a nonzero rate.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || (c.DelayP > 0 && c.DelayMax > 0) || c.OutageP > 0
}

// Validate checks rates and window geometry.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"dup", c.Dup}, {"delay", c.DelayP}, {"outage", c.OutageP}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("mesh: fault %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DelayP > 0 && c.DelayMax == 0 {
		return fmt.Errorf("mesh: delay probability %v needs a positive max jitter (delay=P:MAX)", c.DelayP)
	}
	if c.OutageP > 0 {
		if c.OutageEvery == 0 || c.OutageLen == 0 {
			return fmt.Errorf("mesh: outage probability %v needs positive LEN and EVERY (outage=P:LEN:EVERY)", c.OutageP)
		}
		if c.OutageLen > c.OutageEvery {
			return fmt.Errorf("mesh: outage length %d exceeds its window period %d", c.OutageLen, c.OutageEvery)
		}
	}
	return nil
}

// String renders the configuration in ParseFaults' grammar, canonically
// ordered, so a replay line round-trips. The zero value renders "none".
func (c FaultConfig) String() string {
	var parts []string
	if c.Drop > 0 {
		parts = append(parts, "drop="+formatRate(c.Drop))
	}
	if c.Dup > 0 {
		parts = append(parts, "dup="+formatRate(c.Dup))
	}
	if c.DelayP > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s:%d", formatRate(c.DelayP), c.DelayMax))
	}
	if c.OutageP > 0 {
		parts = append(parts, fmt.Sprintf("outage=%s:%d:%d", formatRate(c.OutageP), c.OutageLen, c.OutageEvery))
	}
	if len(parts) == 0 {
		return "none"
	}
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	return strings.Join(parts, ",")
}

func formatRate(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseFaults parses the -faults flag grammar: a comma-separated list of
//
//	drop=P                per-copy loss probability
//	dup=P                 duplication probability
//	delay=P:MAX           jitter probability and max extra cycles
//	outage=P:LEN:EVERY    per-(link,window) outage probability, outage
//	                      length and window period in cycles
//	seed=N                fault-stream seed (default: derived from -seed)
//
// "" and "none" return the zero (disabled) configuration.
func ParseFaults(s string) (FaultConfig, error) {
	var c FaultConfig
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return c, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return c, fmt.Errorf("mesh: fault field %q is not key=value", field)
		}
		bad := func() error {
			return fmt.Errorf("mesh: bad fault value %q for %s", val, key)
		}
		switch key {
		case "drop", "dup":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return c, bad()
			}
			if key == "drop" {
				c.Drop = p
			} else {
				c.Dup = p
			}
		case "delay":
			p, rest, ok := cutRate(val)
			if !ok || len(rest) != 1 {
				return c, bad()
			}
			c.DelayP, c.DelayMax = p, rest[0]
		case "outage":
			p, rest, ok := cutRate(val)
			if !ok || len(rest) != 2 {
				return c, bad()
			}
			c.OutageP, c.OutageLen, c.OutageEvery = p, rest[0], rest[1]
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, bad()
			}
			c.Seed = n
		default:
			return c, fmt.Errorf("mesh: unknown fault class %q (want drop, dup, delay, outage or seed)", key)
		}
	}
	return c, c.Validate()
}

// cutRate parses "P:T1[:T2...]" into the probability and the cycle
// arguments.
func cutRate(val string) (p float64, times []sim.Time, ok bool) {
	fields := strings.Split(val, ":")
	if len(fields) < 2 {
		return 0, nil, false
	}
	p, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, nil, false
	}
	for _, f := range fields[1:] {
		t, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return 0, nil, false
		}
		times = append(times, sim.Time(t))
	}
	return p, times, true
}

// faultState is the mesh's live fault machinery, nil when the model is
// disabled so the reliable path pays exactly one pointer test.
type faultState struct {
	cfg    FaultConfig
	stream *rng.Stream
	drops  *obs.Counter // "mesh.fault.drop"
	dups   *obs.Counter // "mesh.fault.dup"
	delays *obs.Counter // "mesh.fault.delay"
	outage *obs.Counter // "mesh.fault.outage"
}

// FaultsEnabled reports whether the unreliable-interconnect model is
// active on this mesh.
func (m *Mesh) FaultsEnabled() bool { return m.faults != nil }

// FaultSpec returns the active fault configuration ("none" via String
// when disabled).
func (m *Mesh) FaultSpec() FaultConfig {
	if m.faults == nil {
		return FaultConfig{}
	}
	return m.faults.cfg
}

// linkDown reports whether the a->b link is inside an outage window at
// time now. The decision is a stateless hash of (seed, link, window), so
// it is identical no matter how many other draws preceded it — both
// endpoints of a retry sequence observe the same outage.
func (f *faultState) linkDown(now sim.Time, a, b, nodes int) bool {
	if f.cfg.OutageP == 0 {
		return false
	}
	window := now / f.cfg.OutageEvery
	if now-window*f.cfg.OutageEvery >= f.cfg.OutageLen {
		return false
	}
	link := uint64(a*nodes+b) + 1
	key := link*0x100000001B3 + uint64(window)
	return rng.Hash01(f.cfg.Seed, key) < f.cfg.OutageP
}

// SendFaulty injects one message from a to b at time now under the fault
// model and returns the delivery times of the copies that survive
// (0, 1 or 2 of them). Every attempt — delivered or not — is recorded in
// the mesh.msgs/mesh.hops traffic counters, because the wire carried it;
// only surviving copies book the destination's ejection port. Draw order
// is fixed (dup, then per-copy drop, then per-copy delay) so a seeded run
// replays exactly. Panics if the fault model is disabled: callers switch
// on FaultsEnabled.
func (m *Mesh) SendFaulty(now sim.Time, a, b int) (arrivals [2]sim.Time, n int) {
	f := m.faults
	copies := 1
	if f.cfg.Dup > 0 && f.stream.Float64() < f.cfg.Dup {
		copies = 2
		f.dups.Inc()
	}
	down := f.linkDown(now, a, b, m.cfg.Nodes)
	for i := 0; i < copies; i++ {
		// The wire carried the copy whether or not it survives.
		lat := m.Send(a, b)
		if down {
			f.outage.Inc()
			continue
		}
		if f.cfg.Drop > 0 && f.stream.Float64() < f.cfg.Drop {
			f.drops.Inc()
			continue
		}
		arrive := now + lat
		if f.cfg.DelayP > 0 && f.stream.Float64() < f.cfg.DelayP {
			arrive += 1 + sim.Time(f.stream.Uint64n(uint64(f.cfg.DelayMax)))
			f.delays.Inc()
		}
		if m.cfg.PortTime > 0 {
			if m.portFree[b] > arrive {
				arrive = m.portFree[b]
				m.stalls.Inc()
			}
			m.portFree[b] = arrive + m.cfg.PortTime
		}
		arrivals[n] = arrive
		n++
	}
	return arrivals, n
}

// FaultCounterNames lists the counters the fault model registers, in
// the order reporting code renders them.
func FaultCounterNames() []string {
	return []string{"mesh.fault.drop", "mesh.fault.dup", "mesh.fault.delay", "mesh.fault.outage"}
}
