package mesh

import (
	"testing"
	"testing/quick"
)

func TestDims(t *testing.T) {
	cases := []struct{ nodes, w, h int }{
		{1, 1, 1},
		{4, 2, 2},
		{16, 4, 4},
		{32, 6, 6}, // 6x6=36 >= 32; cannot shrink to 5x6=30
		{12, 4, 3},
		{64, 8, 8},
		{15, 4, 4},
	}
	for _, c := range cases {
		m := New(Config{Nodes: c.nodes, Base: 1, PerHop: 1})
		w, h := m.Dims()
		if w*h < c.nodes {
			t.Errorf("nodes=%d: %dx%d does not fit", c.nodes, w, h)
		}
		if w != c.w || h != c.h {
			t.Errorf("nodes=%d: dims = %dx%d, want %dx%d", c.nodes, w, h, c.w, c.h)
		}
	}
}

func TestHops(t *testing.T) {
	m := New(Config{Nodes: 16, Base: 5, PerHop: 2}) // 4x4
	if got := m.Hops(0, 0); got != 0 {
		t.Fatalf("Hops(0,0) = %d", got)
	}
	if got := m.Hops(0, 3); got != 3 { // same row
		t.Fatalf("Hops(0,3) = %d, want 3", got)
	}
	if got := m.Hops(0, 15); got != 6 { // corner to corner
		t.Fatalf("Hops(0,15) = %d, want 6", got)
	}
	if got := m.Hops(5, 10); got != 2 { // (1,1)->(2,2)
		t.Fatalf("Hops(5,10) = %d, want 2", got)
	}
}

func TestLatencyAndSend(t *testing.T) {
	m := New(Config{Nodes: 16, Base: 10, PerHop: 2})
	if got := m.Latency(0, 15); got != 10+6*2 {
		t.Fatalf("Latency = %d, want 22", got)
	}
	if m.Stats().Messages != 0 {
		t.Fatal("Latency must not record traffic")
	}
	lat := m.Send(0, 15)
	if lat != 22 {
		t.Fatalf("Send latency = %d, want 22", lat)
	}
	st := m.Stats()
	if st.Messages != 1 || st.Hops != 6 || st.MaxHops != 6 {
		t.Fatalf("stats = %+v", st)
	}
	m.Send(0, 1)
	if got := m.AvgHops(); got != 3.5 {
		t.Fatalf("AvgHops = %v, want 3.5", got)
	}
}

func TestAvgHopsEmpty(t *testing.T) {
	m := New(Config{Nodes: 4})
	if m.AvgHops() != 0 {
		t.Fatal("AvgHops on empty mesh should be 0")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(Config{Nodes: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Hops(0, 4)
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Nodes: 0})
}

func TestSendAtWithoutPortTime(t *testing.T) {
	m := New(Config{Nodes: 4, Base: 10, PerHop: 2})
	if got := m.SendAt(100, 0, 1); got != 100+12 {
		t.Fatalf("SendAt = %d, want 112", got)
	}
	// Back-to-back sends do not queue without PortTime.
	if got := m.SendAt(100, 0, 1); got != 112 {
		t.Fatalf("second SendAt = %d, want 112", got)
	}
	if m.Stats().Stalls != 0 {
		t.Fatal("no stalls expected")
	}
}

func TestSendAtPortContention(t *testing.T) {
	m := New(Config{Nodes: 4, Base: 10, PerHop: 2, PortTime: 5})
	first := m.SendAt(100, 0, 1)
	if first != 112 {
		t.Fatalf("first = %d, want 112", first)
	}
	second := m.SendAt(100, 2, 1) // same destination, same instant
	if second != first+5 {
		t.Fatalf("second = %d, want %d (queued behind the port)", second, first+5)
	}
	// A different destination is unaffected.
	if got := m.SendAt(100, 0, 2); got != 112 {
		t.Fatalf("other dest = %d, want 112", got)
	}
	if m.Stats().Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", m.Stats().Stalls)
	}
	// After the burst drains, delivery is latency-bound again.
	if got := m.SendAt(1000, 0, 1); got != 1012 {
		t.Fatalf("post-burst = %d, want 1012", got)
	}
}

// Property: hops form a metric — symmetric, zero iff equal (for distinct
// coordinates), triangle inequality.
func TestQuickHopsMetric(t *testing.T) {
	m := New(Config{Nodes: 30, Base: 1, PerHop: 1})
	f := func(ar, br, cr uint8) bool {
		a, b, c := int(ar)%30, int(br)%30, int(cr)%30
		if m.Hops(a, b) != m.Hops(b, a) {
			return false
		}
		if a == b && m.Hops(a, b) != 0 {
			return false
		}
		if a != b && m.Hops(a, b) == 0 {
			return false
		}
		return m.Hops(a, c) <= m.Hops(a, b)+m.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
