// Package stats provides the measurement containers the simulator and the
// benchmark harness share: invalidation-distribution histograms (Figures
// 3–6 of the paper), message-class counters (§5), and plain-text table
// rendering for paper-style output.
package stats

import (
	"fmt"
	"strings"
)

// MsgClass is one of the four message classes of §5 of the paper.
type MsgClass int

const (
	// Request messages are sent by caches to request data or ownership;
	// the paper folds writebacks into this class.
	Request MsgClass = iota
	// Reply messages are sent by directories to grant ownership and/or
	// return data.
	Reply
	// Invalidation messages are sent by directories to invalidate a
	// block.
	Invalidation
	// Ack messages are sent by caches in response to invalidations.
	Ack
	// NumClasses is the number of message classes.
	NumClasses
)

func (c MsgClass) String() string {
	switch c {
	case Request:
		return "request"
	case Reply:
		return "reply"
	case Invalidation:
		return "invalidation"
	case Ack:
		return "acknowledgement"
	default:
		return fmt.Sprintf("MsgClass(%d)", int(c))
	}
}

// MsgCounts tallies messages by class.
type MsgCounts [NumClasses]uint64

// Add records n messages of class c.
func (m *MsgCounts) Add(c MsgClass, n uint64) { m[c] += n }

// Total returns the total message count.
func (m *MsgCounts) Total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// InvalAck returns the combined invalidation + acknowledgement count, the
// grouping the paper's figures use.
func (m *MsgCounts) InvalAck() uint64 { return m[Invalidation] + m[Ack] }

// Histogram is a distribution over small non-negative integers — the
// number of invalidations per invalidation event.
type Histogram struct {
	counts []uint64
	events uint64
	total  uint64
}

// Add records one event with value k.
func (h *Histogram) Add(k int) {
	if k < 0 {
		panic("stats: negative histogram value")
	}
	for len(h.counts) <= k {
		h.counts = append(h.counts, 0)
	}
	h.counts[k]++
	h.events++
	h.total += uint64(k)
}

// Merge folds o's events into h — used by the sharded machine core to
// combine per-cluster histograms at quiescence.
func (h *Histogram) Merge(o *Histogram) {
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, 0)
	}
	for k, c := range o.counts {
		h.counts[k] += c
	}
	h.events += o.events
	h.total += o.total
}

// Events returns the number of recorded events.
func (h *Histogram) Events() uint64 { return h.events }

// Total returns the sum of all recorded values (total invalidations).
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the average value per event (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.events == 0 {
		return 0
	}
	return float64(h.total) / float64(h.events)
}

// Count returns the number of events with value k.
func (h *Histogram) Count(k int) uint64 {
	if k < 0 || k >= len(h.counts) {
		return 0
	}
	return h.counts[k]
}

// Max returns the largest recorded value.
func (h *Histogram) Max() int {
	for k := len(h.counts) - 1; k >= 0; k-- {
		if h.counts[k] != 0 {
			return k
		}
	}
	return 0
}

// Percent returns the percentage of events with value k.
func (h *Histogram) Percent(k int) float64 {
	if h.events == 0 {
		return 0
	}
	return 100 * float64(h.Count(k)) / float64(h.events)
}

// Render draws the histogram as a text bar chart in the style of the
// paper's Figures 3–6.
func (h *Histogram) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  invalidation events: %d, avg invalidations/event: %.2f\n", h.events, h.Mean())
	maxPct := 0.0
	for k := 0; k <= h.Max(); k++ {
		if p := h.Percent(k); p > maxPct {
			maxPct = p
		}
	}
	for k := 0; k <= h.Max(); k++ {
		p := h.Percent(k)
		bar := 0
		if maxPct > 0 {
			bar = int(p / maxPct * 50)
		}
		fmt.Fprintf(&b, "  %3d | %-50s %6.2f%%\n", k, strings.Repeat("#", bar), p)
	}
	return b.String()
}

// LatHist is a coarse latency histogram with power-of-two buckets,
// suitable for read/write completion times.
type LatHist struct {
	buckets [32]uint64
	count   uint64
	total   uint64
	max     uint64
}

// Add records one latency sample.
func (h *LatHist) Add(lat uint64) {
	b := 0
	for v := lat; v > 1 && b < len(h.buckets)-1; v >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.total += lat
	if lat > h.max {
		h.max = lat
	}
}

// Merge folds o's samples into h — used by the sharded machine core to
// combine per-cluster latency histograms at quiescence.
func (h *LatHist) Merge(o *LatHist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.total += o.total
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of samples.
func (h *LatHist) Count() uint64 { return h.count }

// Mean returns the average latency.
func (h *LatHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.total) / float64(h.count)
}

// Max returns the largest sample.
func (h *LatHist) Max() uint64 { return h.max }

// Bucket returns the number of samples with latency in [2^i, 2^(i+1)).
func (h *LatHist) Bucket(i int) uint64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// Render draws the latency histogram as text.
func (h *LatHist) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d samples, mean %.1f, max %d\n", title, h.count, h.Mean(), h.max)
	for i := 0; i < len(h.buckets); i++ {
		if h.buckets[i] == 0 {
			continue
		}
		pct := 100 * float64(h.buckets[i]) / float64(h.count)
		fmt.Fprintf(&b, "  <%7d | %-50s %6.2f%%\n", 1<<uint(i+1), strings.Repeat("#", int(pct/2)), pct)
	}
	return b.String()
}

// Table renders rows of columns with right-aligned numeric-ish formatting,
// used for paper-style tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hdr := range t.header {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
