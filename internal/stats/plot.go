package stats

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders multiple y-series over a shared integer x-axis as an ASCII
// chart, used to draw the paper's figure curves (e.g. Figure 2's
// invalidations-vs-sharers lines) in terminal output.
type Plot struct {
	title  string
	xlabel string
	ylabel string
	series []series
}

type series struct {
	name string
	mark byte
	xs   []int
	ys   []float64
}

var plotMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{title: title, xlabel: xlabel, ylabel: ylabel}
}

// AddSeries adds one named curve. xs and ys must have equal lengths.
func (p *Plot) AddSeries(name string, xs []int, ys []float64) {
	if len(xs) != len(ys) {
		panic("stats: series length mismatch")
	}
	mark := plotMarks[len(p.series)%len(plotMarks)]
	p.series = append(p.series, series{name: name, mark: mark, xs: xs, ys: ys})
}

// Render draws the chart with the given dimensions (columns × rows of the
// plotting area, borders excluded).
func (p *Plot) Render(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.MaxInt, math.MinInt
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			if s.xs[i] < minX {
				minX = s.xs[i]
			}
			if s.xs[i] > maxX {
				maxX = s.xs[i]
			}
			if s.ys[i] < minY {
				minY = s.ys[i]
			}
			if s.ys[i] > maxY {
				maxY = s.ys[i]
			}
		}
	}
	var b strings.Builder
	if p.title != "" {
		fmt.Fprintf(&b, "%s\n", p.title)
	}
	if len(p.series) == 0 || minX > maxX {
		b.WriteString("  (no data)\n")
		return b.String()
	}
	if minY == maxY {
		maxY = minY + 1
	}
	if minY > 0 && minY < (maxY-minY) {
		minY = 0 // anchor at zero when it is close, like the paper's axes
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x int) int {
		if maxX == minX {
			return 0
		}
		return (x - minX) * (width - 1) / (maxX - minX)
	}
	row := func(y float64) int {
		fr := (y - minY) / (maxY - minY)
		r := height - 1 - int(math.Round(fr*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for _, s := range p.series {
		for i := range s.xs {
			grid[row(s.ys[i])][col(s.xs[i])] = s.mark
		}
	}

	yHi := fmt.Sprintf("%.4g", maxY)
	yLo := fmt.Sprintf("%.4g", minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, yHi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*d%*d  (%s)\n", strings.Repeat(" ", margin), width/2, minX, width-width/2, maxX, p.xlabel)
	if p.ylabel != "" {
		fmt.Fprintf(&b, "y: %s\n", p.ylabel)
	}
	for _, s := range p.series {
		fmt.Fprintf(&b, "  %c %s\n", s.mark, s.name)
	}
	return b.String()
}
