package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMsgCounts(t *testing.T) {
	var m MsgCounts
	m.Add(Request, 3)
	m.Add(Reply, 2)
	m.Add(Invalidation, 5)
	m.Add(Ack, 5)
	if m.Total() != 15 {
		t.Fatalf("Total = %d, want 15", m.Total())
	}
	if m.InvalAck() != 10 {
		t.Fatalf("InvalAck = %d, want 10", m.InvalAck())
	}
}

func TestMsgClassString(t *testing.T) {
	names := map[MsgClass]string{
		Request:      "request",
		Reply:        "reply",
		Invalidation: "invalidation",
		Ack:          "acknowledgement",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if MsgClass(99).String() == "" {
		t.Error("unknown class should render")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Events() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Add(0)
	h.Add(2)
	h.Add(2)
	h.Add(5)
	if h.Events() != 4 {
		t.Fatalf("Events = %d", h.Events())
	}
	if h.Total() != 9 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Mean() != 2.25 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Count(2) != 2 || h.Count(3) != 0 || h.Count(100) != 0 {
		t.Fatal("Count wrong")
	}
	if h.Max() != 5 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Percent(2) != 50 {
		t.Fatalf("Percent(2) = %v", h.Percent(2))
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var h Histogram
	h.Add(-1)
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(1)
	h.Add(3)
	out := h.Render("Fig X")
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "events: 3") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("render missing bars")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22", "extra-dropped")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator wrong: %q", lines[1])
	}
	if strings.Contains(out, "extra-dropped") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestTableEmptyAndSingleRow(t *testing.T) {
	// A header-only table (an empty run set) renders header + separator.
	empty := NewTable("a", "bb")
	lines := strings.Split(strings.TrimRight(empty.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("empty table: want 2 lines, got %d:\n%s", len(lines), empty.String())
	}
	// A single-row table keeps column alignment with a short header.
	one := NewTable("x", "longheader")
	one.AddRow("wider-cell", "1")
	out := one.String()
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(rows) != 3 {
		t.Fatalf("single-row table: want 3 lines, got %d:\n%s", len(rows), out)
	}
	if len(rows[0]) != len(rows[2]) {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	// A short row pads missing trailing cells.
	short := NewTable("a", "b", "c")
	short.AddRow("only")
	if got := short.String(); !strings.Contains(got, "only") {
		t.Fatalf("short row dropped:\n%s", got)
	}
}

func TestZeroMessageResult(t *testing.T) {
	// A run with no traffic at all must render cleanly everywhere it can
	// appear: counters, ratios' numerators, and histograms.
	var m MsgCounts
	if m.Total() != 0 || m.InvalAck() != 0 {
		t.Fatal("zero counts not zero")
	}
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Percent(0) != 0 || h.Count(5) != 0 {
		t.Fatal("empty histogram stats not zero")
	}
	out := h.Render("empty run")
	if !strings.Contains(out, "events: 0") {
		t.Fatalf("empty histogram render:\n%s", out)
	}
	var l LatHist
	if l.Mean() != 0 || l.Count() != 0 || l.Max() != 0 {
		t.Fatal("empty latency histogram stats not zero")
	}
	if got := l.Render("empty"); !strings.Contains(got, "0 samples") {
		t.Fatalf("empty latency render:\n%s", got)
	}
}

// Property: Mean * Events == Total for any sequence of adds.
func TestQuickHistogramAccounting(t *testing.T) {
	f := func(vals []uint8) bool {
		var h Histogram
		var total, events uint64
		for _, v := range vals {
			h.Add(int(v % 64))
			total += uint64(v % 64)
			events++
		}
		if h.Total() != total || h.Events() != events {
			return false
		}
		// Sum of counts equals events.
		var sum uint64
		for k := 0; k <= h.Max(); k++ {
			sum += h.Count(k)
		}
		return sum == events
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatHist(t *testing.T) {
	var h LatHist
	if h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty LatHist not zero")
	}
	h.Add(1)
	h.Add(23)
	h.Add(60)
	h.Add(80)
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 80 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Mean() != 41 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	// 23 lands in bucket [16,32): index 4.
	if h.Bucket(4) != 1 {
		t.Fatalf("Bucket(4) = %d, want 1", h.Bucket(4))
	}
	if h.Bucket(-1) != 0 || h.Bucket(99) != 0 {
		t.Fatal("out-of-range buckets must be 0")
	}
	out := h.Render("latencies")
	if !strings.Contains(out, "4 samples") || !strings.Contains(out, "mean 41.0") {
		t.Fatalf("render wrong:\n%s", out)
	}
}
