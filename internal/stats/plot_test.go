package stats

import (
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	p := NewPlot("curves", "sharers", "invals")
	p.AddSeries("diag", []int{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	p.AddSeries("flat", []int{1, 2, 3, 4}, []float64{4, 4, 4, 4})
	out := p.Render(40, 10)
	if !strings.Contains(out, "curves") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* diag") || !strings.Contains(out, "+ flat") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "sharers") {
		t.Fatal("missing x label")
	}
	// The diagonal's max and the flat line share the top row.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") && !strings.Contains(top, "+") {
		t.Fatalf("top row empty:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	if out := p.Render(20, 5); !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data marker:\n%s", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("", "x", "")
	p.AddSeries("c", []int{0, 1}, []float64{5, 5})
	out := p.Render(10, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestPlotSinglePoint(t *testing.T) {
	p := NewPlot("", "x", "")
	p.AddSeries("pt", []int{3}, []float64{2})
	out := p.Render(10, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestPlotMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlot("", "", "").AddSeries("bad", []int{1}, []float64{1, 2})
}

func TestPlotMinimumDimensions(t *testing.T) {
	p := NewPlot("", "x", "")
	p.AddSeries("s", []int{0, 10}, []float64{0, 10})
	out := p.Render(1, 1) // clamped up internally
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatalf("render too small:\n%s", out)
	}
}

func TestPlotNegativeValues(t *testing.T) {
	p := NewPlot("", "x", "")
	p.AddSeries("s", []int{0, 1, 2}, []float64{-3, 0, 3})
	out := p.Render(20, 6)
	if !strings.Contains(out, "-3") {
		t.Fatalf("negative minimum missing from y labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("points not drawn:\n%s", out)
	}
}

func TestPlotZeroValuedSeries(t *testing.T) {
	// An all-zero series (e.g. a zero-message result) must render without
	// dividing by a zero range.
	p := NewPlot("zeros", "x", "msgs")
	p.AddSeries("none", []int{0, 1, 2}, []float64{0, 0, 0})
	out := p.Render(20, 5)
	if !strings.Contains(out, "*") || !strings.Contains(out, "zeros") {
		t.Fatalf("zero series not drawn:\n%s", out)
	}
}

func TestPlotMarkCycle(t *testing.T) {
	// More series than distinct marks: the mark assignment wraps around
	// instead of running out.
	p := NewPlot("", "x", "")
	for i := 0; i < len(plotMarks)+2; i++ {
		p.AddSeries(string(rune('a'+i)), []int{i}, []float64{float64(i)})
	}
	out := p.Render(30, 8)
	if !strings.Contains(out, "* a") || !strings.Contains(out, "* i") {
		t.Fatalf("mark cycle broken:\n%s", out)
	}
}

func TestPlotAnchorsZero(t *testing.T) {
	// Values near zero should anchor the y-axis at 0 like paper figures.
	p := NewPlot("", "x", "")
	p.AddSeries("s", []int{0, 1, 2}, []float64{1, 5, 9})
	out := p.Render(20, 6)
	if !strings.Contains(out, " 0 +") && !strings.Contains(out, "0 |") {
		t.Fatalf("y-axis should anchor at zero:\n%s", out)
	}
}
