package stats

import (
	"fmt"
	"sync"
	"time"
)

// JobMeter aggregates per-job wall-clock and cycles-simulated metrics
// across concurrent simulation runs. The experiment drivers record one
// sample per machine run; the sweep footer compares the aggregate busy
// time against elapsed wall time to report the orchestrator's speedup.
// All methods are safe for concurrent use.
type JobMeter struct {
	mu     sync.Mutex
	jobs   int
	busy   time.Duration
	cycles uint64
}

// Record adds one finished job: its wall-clock duration and the number
// of machine cycles it simulated.
func (m *JobMeter) Record(wall time.Duration, cycles uint64) {
	m.mu.Lock()
	m.jobs++
	m.busy += wall
	m.cycles += cycles
	m.mu.Unlock()
}

// Reset clears all recorded samples.
func (m *JobMeter) Reset() {
	m.mu.Lock()
	m.jobs, m.busy, m.cycles = 0, 0, 0
	m.mu.Unlock()
}

// Summary returns a consistent snapshot of the recorded totals.
func (m *JobMeter) Summary() JobSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return JobSummary{Jobs: m.jobs, Busy: m.busy, Cycles: m.cycles}
}

// JobSummary is a point-in-time copy of a JobMeter's totals.
type JobSummary struct {
	Jobs   int           // simulations recorded
	Busy   time.Duration // aggregate per-job wall-clock time
	Cycles uint64        // machine cycles simulated across all jobs
}

// Speedup is the ratio of aggregate job time to elapsed wall time: the
// factor by which the pool beat a serial sweep (1.0 when serial, 0 when
// nothing ran or elapsed is non-positive).
func (s JobSummary) Speedup(elapsed time.Duration) float64 {
	if elapsed <= 0 || s.Busy <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(elapsed)
}

// Footer renders the one-line summary the sweep commands print after
// their tables.
func (s JobSummary) Footer(elapsed time.Duration) string {
	if s.Jobs == 0 {
		return fmt.Sprintf("no simulations run in %s", elapsed.Round(time.Millisecond))
	}
	return fmt.Sprintf("%d simulations, %.3g cycles simulated, %s aggregate sim time in %s wall (%.2fx speedup)",
		s.Jobs, float64(s.Cycles), s.Busy.Round(time.Millisecond),
		elapsed.Round(time.Millisecond), s.Speedup(elapsed))
}
