package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJobMeterRecordAndSummary(t *testing.T) {
	var m JobMeter
	m.Record(2*time.Second, 100)
	m.Record(3*time.Second, 250)
	s := m.Summary()
	if s.Jobs != 2 || s.Busy != 5*time.Second || s.Cycles != 350 {
		t.Fatalf("summary = %+v", s)
	}
	if got := s.Speedup(2500 * time.Millisecond); got != 2.0 {
		t.Fatalf("speedup = %v, want 2.0", got)
	}
	m.Reset()
	if s := m.Summary(); s.Jobs != 0 || s.Busy != 0 || s.Cycles != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestJobMeterConcurrent(t *testing.T) {
	var m JobMeter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Record(time.Millisecond, 10)
		}()
	}
	wg.Wait()
	if s := m.Summary(); s.Jobs != 50 || s.Cycles != 500 || s.Busy != 50*time.Millisecond {
		t.Fatalf("concurrent summary = %+v", s)
	}
}

func TestJobSummarySpeedupEdges(t *testing.T) {
	var s JobSummary
	if got := s.Speedup(time.Second); got != 0 {
		t.Fatalf("empty speedup = %v, want 0", got)
	}
	s.Busy = time.Second
	if got := s.Speedup(0); got != 0 {
		t.Fatalf("zero-elapsed speedup = %v, want 0", got)
	}
}

func TestJobSummaryFooter(t *testing.T) {
	s := JobSummary{Jobs: 4, Busy: 8 * time.Second, Cycles: 1_500_000}
	out := s.Footer(2 * time.Second)
	for _, want := range []string{"4 simulations", "4.00x speedup", "8s aggregate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("footer missing %q:\n%s", want, out)
		}
	}
	if out := (JobSummary{}).Footer(time.Second); !strings.Contains(out, "no simulations") {
		t.Fatalf("empty footer: %s", out)
	}
}
