package rng

import (
	"math"
	"testing"
)

// TestMixDecorrelatesAdjacentSeeds pins the property the mixer was
// introduced for: the additive collision Mix(s, c) == Mix(s+1, c-1)
// must not happen, for any small window of seeds and streams.
func TestMixDecorrelatesAdjacentSeeds(t *testing.T) {
	seen := make(map[int64][2]int64)
	for seed := int64(0); seed < 64; seed++ {
		for stream := int64(0); stream < 64; stream++ {
			v := Mix(seed, stream)
			if prev, ok := seen[v]; ok {
				t.Fatalf("Mix(%d,%d) == Mix(%d,%d) == %d", seed, stream, prev[0], prev[1], v)
			}
			seen[v] = [2]int64{seed, stream}
		}
	}
}

func TestMixDeterministic(t *testing.T) {
	if Mix(42, 7) != Mix(42, 7) {
		t.Fatal("Mix is not a pure function")
	}
	if Mix(0, 0) == 0 {
		t.Fatal("Mix(0,0) must not be the identity (zero seed would disable the Random policy)")
	}
}

func TestStreamDeterminismAndRange(t *testing.T) {
	a, b := NewStream(9), NewStream(9)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
	s := NewStream(9)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v far from 0.5 (broken scaling)", mean)
	}
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) returned %d", v)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewStream(1).Uint64n(0)
}

func TestHash01StatelessAndUniform(t *testing.T) {
	if Hash01(3, 12) != Hash01(3, 12) {
		t.Fatal("Hash01 is not stateless")
	}
	if Hash01(3, 12) == Hash01(4, 12) && Hash01(3, 13) == Hash01(3, 12) {
		t.Fatal("Hash01 ignores its inputs")
	}
	var sum float64
	for k := uint64(0); k < 10000; k++ {
		h := Hash01(11, k)
		if h < 0 || h >= 1 {
			t.Fatalf("Hash01 out of [0,1): %v", h)
		}
		sum += h
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Hash01 mean %v far from 0.5", mean)
	}
}
