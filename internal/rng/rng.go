// Package rng provides deterministic seed derivation and a small
// splitmix64 generator for the simulator's randomized components.
//
// The machine derives one sub-seed per cluster from a single campaign
// seed. Deriving them additively (seed + cluster) makes adjacent runs
// share overlapping streams: run seed 1's cluster 2 is run seed 2's
// cluster 1. Mix finalizes the combination through splitmix64's output
// permutation, so every (seed, stream) pair lands on a decorrelated
// point of the sequence.
package rng

// Mix derives a decorrelated sub-seed for the given stream index. It is
// the splitmix64 step: the golden-gamma increment separates streams, the
// xor-shift-multiply finalizer scatters them. Mix(seed, a) and
// Mix(seed+1, a-1) share nothing, unlike the additive derivation.
func Mix(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Stream is a splitmix64 sequence: tiny state, full 64-bit output, and
// cheap enough to draw several values per simulated message. It is not
// cryptographic; it exists to make fault injection deterministic and
// replayable from one int64 seed.
type Stream struct {
	state uint64
}

// NewStream returns a generator whose sequence is fully determined by
// seed.
func NewStream(seed int64) *Stream {
	return &Stream{state: uint64(seed)}
}

// Uint64 returns the next value of the sequence.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns the next value mapped uniformly onto [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uint64n returns the next value mapped onto [0, n). n must be positive.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	return s.Uint64() % n
}

// Hash01 maps an arbitrary (seed, key) pair onto [0, 1) without any
// state — the stateless draw behind per-link outage windows, where the
// decision for (link, window) must not depend on how many other draws
// the run made before asking.
func Hash01(seed int64, key uint64) float64 {
	z := uint64(seed) ^ (key+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
