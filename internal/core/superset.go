package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// Superset is the Dir_iX scheme (§3.2.3, terminology from the paper; the
// mechanism is from Agarwal et al. 1988): i exact pointers that collapse,
// on overflow, into a single composite pointer whose bits may be 0, 1, or X
// ("both"). The candidate sharer set is every node ID matching the
// composite pattern. The paper uses i = 2 and shows the scheme is only
// marginally better than broadcast (Figure 2b).
type Superset struct {
	nodes int
	ptrs  int
}

// NewSuperset returns a Dir_iX scheme with ptrs exact pointers, or a
// *GeometryError for an impossible geometry.
func NewSuperset(ptrs, nodes int) (*Superset, error) {
	if err := checkPtrGeometry(fmt.Sprintf("Dir%dX", ptrs), ptrs, 0, nodes); err != nil {
		return nil, err
	}
	return &Superset{nodes: nodes, ptrs: ptrs}, nil
}

// Name implements Scheme.
func (s *Superset) Name() string { return fmt.Sprintf("Dir%dX", s.ptrs) }

// Nodes implements Scheme.
func (s *Superset) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: the composite pointer needs two bits per
// pointer-bit position (value + X flag), which is exactly the storage of
// two plain pointers; plus a mode bit and the dirty bit.
func (s *Superset) BitsPerEntry() int {
	w := log2ceil(s.nodes)
	bits := s.ptrs * w
	if composite := 2 * w; composite > bits {
		bits = composite
	}
	return bits + 2
}

// EntryBytes implements Scheme: packed pointers, the composite pattern
// words and the sharer scratch.
func (s *Superset) EntryBytes() int {
	return (s.ptrs*log2ceil(s.nodes)+63)/64*8 + 16 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *Superset) NewEntry() Entry {
	return &supersetEntry{s: s, ptrs: newPackedPtrs(s.ptrs, s.nodes)}
}

type supersetEntry struct {
	s         *Superset
	ptrs      packedPtrs
	scratch   sharerScratch
	composite bool
	value     uint64 // pattern bits (bits under xmask are irrelevant)
	xmask     uint64 // bits in the X ("both") state
	dirty     bool
	owner     NodeID
}

func (e *supersetEntry) AddSharer(n NodeID) []NodeID {
	if e.composite {
		e.xmask |= e.value ^ uint64(n)
		return nil
	}
	if e.ptrs.Index(n) >= 0 {
		return nil
	}
	if !e.ptrs.Full() {
		e.ptrs.Append(n)
		return nil
	}
	// Overflow: fold all pointers plus the newcomer into one composite.
	e.composite = true
	e.value = uint64(n)
	e.ptrs.ForEach(func(p NodeID) { e.xmask |= e.value ^ uint64(p) })
	e.ptrs.Reset()
	return nil
}

func (e *supersetEntry) RemoveSharer(n NodeID) {
	if e.composite {
		return // composite pointers cannot express removal
	}
	if k := e.ptrs.Index(n); k >= 0 {
		e.ptrs.RemoveSwap(k)
	}
}

// matches reports whether node id n matches the composite pattern.
func (e *supersetEntry) matches(n NodeID) bool {
	return (uint64(n)^e.value)&^e.xmask == 0
}

func (e *supersetEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.s.nodes)
	if !e.composite {
		e.ptrs.ForEach(func(p NodeID) { set.Add(p) })
		return set
	}
	// Expand every X bit to both values; enumerate matching node IDs.
	for n := 0; n < e.s.nodes; n++ {
		if e.matches(n) {
			set.Add(n)
		}
	}
	return set
}

func (e *supersetEntry) IsSharer(n NodeID) bool {
	if e.composite {
		return e.matches(n)
	}
	return e.ptrs.Index(n) >= 0
}

func (e *supersetEntry) Count() int {
	if !e.composite {
		return e.ptrs.Len()
	}
	// Enumerate matches directly rather than via Sharers so counting does
	// not clobber a view the caller may still hold.
	c := 0
	for n := 0; n < e.s.nodes; n++ {
		if e.matches(n) {
			c++
		}
	}
	return c
}

func (e *supersetEntry) Dirty() bool { return e.dirty }

func (e *supersetEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *supersetEntry) SetDirty(owner NodeID) {
	e.composite = false
	e.value, e.xmask = 0, 0
	e.ptrs.Reset()
	e.ptrs.Append(owner)
	e.dirty = true
	e.owner = owner
}

func (e *supersetEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *supersetEntry) Reset() {
	e.ptrs.Reset()
	e.composite = false
	e.value, e.xmask = 0, 0
	e.dirty = false
	e.owner = None
}

func (e *supersetEntry) Empty() bool { return !e.dirty && !e.composite && e.ptrs.Len() == 0 }

func (e *supersetEntry) Precise() bool { return !e.composite }

func (e *supersetEntry) PopGrant() []NodeID {
	if e.composite {
		// Enumerate matches directly — going through Sharers would rebuild
		// the scratch and invalidate a view the caller may still hold.
		var out []NodeID
		for n := 0; n < e.s.nodes; n++ {
			if e.matches(n) {
				out = append(out, n)
			}
		}
		e.composite = false
		e.value, e.xmask = 0, 0
		return out
	}
	if e.ptrs.Len() == 0 {
		return nil
	}
	n := e.ptrs.At(0)
	e.ptrs.RemoveSwap(0)
	return []NodeID{n}
}
