package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// Superset is the Dir_iX scheme (§3.2.3, terminology from the paper; the
// mechanism is from Agarwal et al. 1988): i exact pointers that collapse,
// on overflow, into a single composite pointer whose bits may be 0, 1, or X
// ("both"). The candidate sharer set is every node ID matching the
// composite pattern. The paper uses i = 2 and shows the scheme is only
// marginally better than broadcast (Figure 2b).
type Superset struct {
	nodes int
	ptrs  int
}

// NewSuperset returns a Dir_iX scheme with ptrs exact pointers.
func NewSuperset(ptrs, nodes int) *Superset {
	if ptrs <= 0 || nodes <= 0 {
		panic("core: ptrs and nodes must be positive")
	}
	return &Superset{nodes: nodes, ptrs: ptrs}
}

// Name implements Scheme.
func (s *Superset) Name() string { return fmt.Sprintf("Dir%dX", s.ptrs) }

// Nodes implements Scheme.
func (s *Superset) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: the composite pointer needs two bits per
// pointer-bit position (value + X flag), which is exactly the storage of
// two plain pointers; plus a mode bit and the dirty bit.
func (s *Superset) BitsPerEntry() int {
	w := log2ceil(s.nodes)
	bits := s.ptrs * w
	if composite := 2 * w; composite > bits {
		bits = composite
	}
	return bits + 2
}

// NewEntry implements Scheme.
func (s *Superset) NewEntry() Entry {
	return &supersetEntry{s: s, ptrs: make([]NodeID, 0, s.ptrs)}
}

type supersetEntry struct {
	s         *Superset
	ptrs      []NodeID
	composite bool
	value     uint64 // pattern bits (bits under xmask are irrelevant)
	xmask     uint64 // bits in the X ("both") state
	dirty     bool
	owner     NodeID
}

func (e *supersetEntry) AddSharer(n NodeID) []NodeID {
	if e.composite {
		e.xmask |= e.value ^ uint64(n)
		return nil
	}
	if idIndex(e.ptrs, n) >= 0 {
		return nil
	}
	if len(e.ptrs) < cap(e.ptrs) {
		e.ptrs = append(e.ptrs, n)
		return nil
	}
	// Overflow: fold all pointers plus the newcomer into one composite.
	e.composite = true
	e.value = uint64(n)
	for _, p := range e.ptrs {
		e.xmask |= e.value ^ uint64(p)
	}
	e.ptrs = e.ptrs[:0]
	return nil
}

func (e *supersetEntry) RemoveSharer(n NodeID) {
	if e.composite {
		return // composite pointers cannot express removal
	}
	if k := idIndex(e.ptrs, n); k >= 0 {
		e.ptrs = popID(e.ptrs, k)
	}
}

// matches reports whether node id n matches the composite pattern.
func (e *supersetEntry) matches(n NodeID) bool {
	return (uint64(n)^e.value)&^e.xmask == 0
}

func (e *supersetEntry) Sharers() bitset.Set {
	set := bitset.New(e.s.nodes)
	if !e.composite {
		for _, p := range e.ptrs {
			set.Add(p)
		}
		return set
	}
	// Expand every X bit to both values; enumerate matching node IDs.
	for n := 0; n < e.s.nodes; n++ {
		if e.matches(n) {
			set.Add(n)
		}
	}
	return set
}

func (e *supersetEntry) IsSharer(n NodeID) bool {
	if e.composite {
		return e.matches(n)
	}
	return idIndex(e.ptrs, n) >= 0
}

func (e *supersetEntry) Count() int {
	if !e.composite {
		return len(e.ptrs)
	}
	return e.Sharers().Count()
}

func (e *supersetEntry) Dirty() bool { return e.dirty }

func (e *supersetEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *supersetEntry) SetDirty(owner NodeID) {
	e.composite = false
	e.value, e.xmask = 0, 0
	e.ptrs = append(e.ptrs[:0], owner)
	e.dirty = true
	e.owner = owner
}

func (e *supersetEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *supersetEntry) Reset() {
	e.ptrs = e.ptrs[:0]
	e.composite = false
	e.value, e.xmask = 0, 0
	e.dirty = false
	e.owner = None
}

func (e *supersetEntry) Empty() bool { return !e.dirty && !e.composite && len(e.ptrs) == 0 }

func (e *supersetEntry) Precise() bool { return !e.composite }

func (e *supersetEntry) PopGrant() []NodeID {
	if e.composite {
		out := e.Sharers().Elems()
		e.composite = false
		e.value, e.xmask = 0, 0
		return out
	}
	if len(e.ptrs) == 0 {
		return nil
	}
	n := e.ptrs[0]
	e.ptrs = popID(e.ptrs, 0)
	return []NodeID{n}
}
