package core_test

import (
	"fmt"

	"dircoh/internal/core"
)

// The coarse vector keeps exact pointers until they overflow, then tracks
// regions of processors instead of broadcasting.
func ExampleNewCoarseVector() {
	scheme := core.Must(core.NewCoarseVector(3, 2, 32)) // Dir3CV2 over 32 clusters
	e := scheme.NewEntry()

	for _, n := range []core.NodeID{4, 9, 17} {
		e.AddSharer(n)
	}
	fmt.Println("precise:", e.Precise(), e.Sharers())

	e.AddSharer(26) // fourth sharer: switch to the coarse vector
	fmt.Println("coarse: ", e.Precise(), e.Sharers())
	// Output:
	// precise: true {4, 9, 17}
	// coarse:  false {4, 5, 8, 9, 16, 17, 26, 27}
}

// A broadcast entry loses all precision on overflow.
func ExampleNewLimitedBroadcast() {
	e := core.Must(core.NewLimitedBroadcast(2, 8)).NewEntry()
	e.AddSharer(1)
	e.AddSharer(2)
	e.AddSharer(3) // overflow
	fmt.Println(e.Count(), "invalidation targets")
	// Output:
	// 8 invalidation targets
}

// A write resets any representation to a single exclusive owner.
func ExampleEntry_setDirty() {
	e := core.Must(core.NewFullVector(8)).NewEntry()
	e.AddSharer(2)
	e.AddSharer(5)
	e.SetDirty(7)
	fmt.Println(e.Dirty(), e.Owner(), e.Sharers())
	// Output:
	// true 7 {7}
}
