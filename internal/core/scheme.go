// Package core implements the directory entry schemes studied in Gupta,
// Weber & Mowry, "Reducing Memory and Traffic Requirements for Scalable
// Directory-Based Cache Coherence Schemes" (ICPP 1990):
//
//   - Dir_P    — full bit vector (one bit per node)            [§3.1]
//   - Dir_iB   — i limited pointers, broadcast on overflow     [§3.2.1]
//   - Dir_iNB  — i limited pointers, never broadcast           [§3.2.2]
//   - Dir_iX   — superset / composite-pointer scheme           [§3.2.3]
//   - Dir_iCV_r — coarse vector: i pointers that degrade to a
//     coarse bit vector with region size r (the paper's first
//     contribution)                                            [§4.1]
//
// A directory entry tracks, for one memory block, the set of nodes
// (clusters, in DASH terms) that may hold a cached copy, plus a dirty bit
// and owner. Every scheme guarantees that the set it reports via Sharers
// is a superset of the sharers it was told about via AddSharer — that is,
// invalidations sent to Sharers() reach every cached copy; imprecise
// schemes merely send extra ("extraneous") invalidations.
package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// NodeID identifies a node (a DASH cluster) at directory granularity.
type NodeID = int

// None is the owner value of a non-dirty entry.
const None NodeID = -1

// Entry is the sharing state a directory keeps for one memory block.
//
// Entries are not safe for concurrent use; the simulator serializes all
// accesses at the block's home node, as the hardware does.
type Entry interface {
	// AddSharer records node n as holding a copy. If the representation
	// must drop an existing sharer to make room (Dir_iNB pointer
	// overflow), the dropped nodes are returned and the caller must
	// invalidate their cached copies.
	AddSharer(n NodeID) (evicted []NodeID)

	// RemoveSharer removes node n if the representation can express the
	// removal precisely; otherwise it is a no-op (the entry keeps a
	// stale superset, as DASH does for silent cache replacements).
	RemoveSharer(n NodeID)

	// Sharers returns the candidate sharer set: a superset of every node
	// recorded via AddSharer (and not precisely removed). Invalidations
	// on a write are sent to this set.
	//
	// The returned set is a mutable view backed by per-entry scratch
	// storage: it is valid (and may be freely mutated by the caller)
	// until the next Sharers call on the same entry. State mutations
	// (AddSharer, SetDirty, Reset, ...) never write the scratch, so a
	// view taken before them keeps its contents. This keeps the fanout
	// hot path allocation-free at any node count.
	Sharers() bitset.Set

	// IsSharer reports whether n is in the candidate set.
	IsSharer(n NodeID) bool

	// Count returns the size of the candidate set.
	Count() int

	// Dirty reports whether one node holds the block exclusively.
	Dirty() bool

	// Owner returns the dirty owner, or None.
	Owner() NodeID

	// SetDirty makes owner the sole, exclusive holder. The previous
	// sharer representation is discarded (the caller has already sent
	// the invalidations).
	SetDirty(owner NodeID)

	// ClearDirty downgrades a dirty entry to shared; the former owner
	// remains a sharer.
	ClearDirty()

	// Reset empties the entry entirely.
	Reset()

	// Empty reports whether the entry tracks nothing (safe to reclaim).
	Empty() bool

	// Precise reports whether the candidate set is exactly the recorded
	// sharers (false once a limited scheme has overflowed).
	Precise() bool

	// PopGrant removes and returns a minimal releasable subset of the
	// candidate set, used by queued directory locks (§7 of the paper):
	// a precise representation yields a single node; a coarse vector
	// yields one region; a broadcast yields everything.
	PopGrant() []NodeID
}

// Scheme is a factory for directory entries of one flavor.
type Scheme interface {
	// Name returns the paper's notation for the scheme, e.g. "Dir3CV2".
	Name() string

	// Nodes returns the number of nodes entries of this scheme track.
	Nodes() int

	// NewEntry returns a fresh, empty entry.
	NewEntry() Entry

	// BitsPerEntry returns the directory state storage cost of one
	// entry in bits, including the dirty bit and any mode flags but
	// excluding sparse-directory tags.
	BitsPerEntry() int

	// EntryBytes returns the approximate resident heap bytes one entry
	// of this scheme occupies in this simulator — the packed pointer
	// words, bit-vector words and scratch the implementation actually
	// allocates, as opposed to BitsPerEntry, the hardware storage the
	// paper accounts. Drivers surface it so memory claims at 1K–4K
	// nodes are regression-guarded numbers, not estimates.
	EntryBytes() int
}

// GeometryError reports an impossible directory-entry geometry — the
// typed form of what the constructors used to panic with, mirroring
// cache.GeometryError. Parse and ParseSpec surface it for notation whose
// parameters only become checkable once the machine size is known.
type GeometryError struct {
	Scheme string // scheme notation or family name
	Ptrs   int    // pointer count (0 when not applicable)
	Region int    // region size (0 when not applicable)
	Nodes  int
	Reason string
}

func (e *GeometryError) Error() string {
	return fmt.Sprintf("core: bad %s geometry (ptrs=%d region=%d nodes=%d): %s",
		e.Scheme, e.Ptrs, e.Region, e.Nodes, e.Reason)
}

// Must unwraps a scheme-constructor result, panicking on error. For
// geometries known good statically — tests, examples, registry defaults.
func Must[S Scheme](s S, err error) S {
	if err != nil {
		panic(err)
	}
	return s
}

// log2ceil returns ceil(log2(n)) for n >= 1; pointer width in bits.
func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1 // a pointer needs at least one bit
	}
	return b
}

// sharerScratch is the per-entry scratch bit vector Sharers views are
// built in: allocated lazily on the first Sharers call, cleared and
// refilled on every subsequent one, and never touched by state mutations
// (so views taken before a SetDirty/Reset stay intact — see
// Entry.Sharers).
type sharerScratch struct {
	set bitset.Set
}

// view returns the scratch cleared to width nodes, allocating on first use.
func (s *sharerScratch) view(nodes int) bitset.Set {
	if s.set.Width() != nodes {
		s.set = bitset.New(nodes)
	} else {
		s.set.Clear()
	}
	return s.set
}

// bytes returns the resident size of the scratch once allocated.
func scratchBytes(nodes int) int { return (nodes + 63) / 64 * 8 }
