package core

import (
	"errors"
	"testing"
)

// TestRegistryRoundTrip checks that every registered scheme parses back
// from the name it reports: Parse(f(n).Name()) rebuilds an identical
// configuration.
func TestRegistryRoundTrip(t *testing.T) {
	const nodes = 32
	for _, name := range SchemeNames() {
		f, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		s := Must(f(nodes))
		f2, err := Parse(s.Name())
		if err != nil {
			t.Fatalf("%s: Parse(%q) failed round trip: %v", name, s.Name(), err)
		}
		s2 := Must(f2(nodes))
		if s2.Name() != s.Name() {
			t.Errorf("%s: round trip %q -> %q", name, s.Name(), s2.Name())
		}
		if s2.BitsPerEntry() != s.BitsPerEntry() {
			t.Errorf("%s: round trip changed BitsPerEntry %d -> %d", name, s.BitsPerEntry(), s2.BitsPerEntry())
		}
	}
}

func TestParseNotation(t *testing.T) {
	cases := []struct {
		in   string
		name string // Name() at 32 nodes
	}{
		{"Dir32", "Dir32"},
		{"Dir64", "Dir32"}, // width follows the machine, not the label
		{"dir4b", "Dir4B"},
		{"Dir4NB", "Dir4NB"},
		{"Dir3X", "Dir3X"},
		{"Dir4CV8", "Dir4CV8"},
		{"Dir4R8", "Dir4R8"},
		{"dir2r16", "Dir2R16"},
		{"full", "Dir32"},
		{"CV", "Dir3CV2"},
		{"broadcast", "Dir3B"},
		{"tl", "Dir4R8"}, // adaptive default: region ~ sqrt(32) -> 8
	}
	for _, c := range cases {
		f, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := Must(f(32)).Name(); got != c.name {
			t.Errorf("Parse(%q)(32).Name() = %q, want %q", c.in, got, c.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	var unknown *UnknownSchemeError
	if _, err := Parse("bogus"); !errors.As(err, &unknown) {
		t.Fatalf("Parse(bogus) = %v, want *UnknownSchemeError", err)
	} else if len(unknown.Valid) == 0 {
		t.Fatal("UnknownSchemeError lists no valid names")
	}
	var notation *NotationError
	for _, bad := range []string{"Dir3CVx", "Dir0B", "Dir3CV0", "Dir3Q", "Dir3Rx", "Dir3R0"} {
		if _, err := Parse(bad); !errors.As(err, &notation) {
			t.Errorf("Parse(%q) = %v, want *NotationError", bad, err)
		}
	}
	// "Dirty" is not notation: no digits after Dir — unknown, not malformed.
	if _, err := Parse("Dirty"); !errors.As(err, &unknown) {
		t.Errorf("Parse(Dirty) = %v, want *UnknownSchemeError", err)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		kind         string
		ptrs, region int
		name         string
	}{
		{"full", 5, 9, "Dir32"},
		{"", 0, 0, "Dir32"},
		{"cv", 0, 0, "Dir3CV2"},
		{"cv", 4, 8, "Dir4CV8"},
		{"b", 5, 0, "Dir5B"},
		{"nb", 0, 0, "Dir3NB"},
		{"x", 0, 0, "Dir2X"},
		{"tl", 0, 0, "Dir4R8"}, // adaptive region at 32 nodes
		{"tl", 2, 0, "Dir2R8"}, // explicit slots, adaptive region
		{"tl", 2, 16, "Dir2R16"},
		{"twolevel", 3, 4, "Dir3R4"},
		{"Dir6B", 3, 2, "Dir6B"}, // full notation passes through
	}
	for _, c := range cases {
		f, err := ParseSpec(c.kind, c.ptrs, c.region)
		if err != nil {
			t.Errorf("ParseSpec(%q,%d,%d): %v", c.kind, c.ptrs, c.region, err)
			continue
		}
		if got := Must(f(32)).Name(); got != c.name {
			t.Errorf("ParseSpec(%q,%d,%d) = %q, want %q", c.kind, c.ptrs, c.region, got, c.name)
		}
	}
	if _, err := ParseSpec("nope", 0, 0); err == nil {
		t.Fatal("ParseSpec(nope) did not error")
	}
}

// TestFactoryGeometryErrors pins the typed-error path the panic sweep
// replaced: structurally valid notation whose parameters are impossible
// for the machine size must surface a *GeometryError from the factory —
// including at the 4096-node scale specs the large figures use.
func TestFactoryGeometryErrors(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
	}{
		{"Dir5000R2", 4096}, // more slots than regions
		{"Dir3R8192", 4096}, // one region, three slots
		{"Dir3R2", 3},       // two regions, three slots
	}
	for _, c := range cases {
		f, err := Parse(c.name)
		if err != nil {
			t.Errorf("Parse(%q): %v (geometry should fail at the factory, not Parse)", c.name, err)
			continue
		}
		_, err = f(c.nodes)
		var geo *GeometryError
		if !errors.As(err, &geo) {
			t.Errorf("%s at %d nodes: err = %v, want *GeometryError", c.name, c.nodes, err)
		}
	}
	// Every registered scheme must reject a nonsensical node count with
	// the typed error, not a panic.
	var geo *GeometryError
	for _, name := range SchemeNames() {
		if _, err := MustParse(name)(0); !errors.As(err, &geo) {
			t.Errorf("%s at 0 nodes: err = %v, want *GeometryError", name, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse(bogus) did not panic")
		}
	}()
	MustParse("bogus")
}
