package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// CoarseVector is the Dir_iCV_r scheme — the paper's first contribution
// (§4.1). While a block has at most i sharers the entry holds i exact
// pointers, identical to the other limited-pointer schemes. On overflow the
// same storage is reinterpreted as a coarse bit vector in which each bit
// stands for a region of r consecutive nodes. Invalidations then go to
// whole regions rather than to the entire machine, so the scheme degrades
// far more gracefully than Dir_iB while never dropping sharers like
// Dir_iNB.
//
// With all region bits set the entry is equivalent to a broadcast, so
// Dir_iCV_r is never worse than Dir_iB for the same storage.
type CoarseVector struct {
	nodes   int
	ptrs    int
	region  int
	regions int // ceil(nodes/region)
}

// NewCoarseVector returns a Dir_iCV_r scheme with ptrs pointers and
// region-size region, or a *GeometryError for an impossible geometry.
func NewCoarseVector(ptrs, region, nodes int) (*CoarseVector, error) {
	name := fmt.Sprintf("Dir%dCV%d", ptrs, region)
	if err := checkPtrGeometry(name, ptrs, region, nodes); err != nil {
		return nil, err
	}
	if region <= 0 {
		return nil, &GeometryError{Scheme: name, Ptrs: ptrs, Region: region, Nodes: nodes, Reason: "region size must be positive"}
	}
	// region > nodes is allowed: the vector degenerates to one region bit,
	// i.e. a broadcast (RegionSweep probes exactly that endpoint).
	return &CoarseVector{
		nodes:   nodes,
		ptrs:    ptrs,
		region:  region,
		regions: (nodes + region - 1) / region,
	}, nil
}

// RegionFor returns the region index that node n belongs to.
func (s *CoarseVector) RegionFor(n NodeID) int { return n / s.region }

// Region returns the configured region size r.
func (s *CoarseVector) Region() int { return s.region }

// Name implements Scheme.
func (s *CoarseVector) Name() string { return fmt.Sprintf("Dir%dCV%d", s.ptrs, s.region) }

// Nodes implements Scheme.
func (s *CoarseVector) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: the larger of the pointer storage and
// the coarse vector, plus a mode bit and the dirty bit.
func (s *CoarseVector) BitsPerEntry() int {
	bits := s.ptrs * log2ceil(s.nodes)
	if s.regions > bits {
		bits = s.regions
	}
	return bits + 2
}

// EntryBytes implements Scheme: packed pointers, the region vector and
// the sharer scratch.
func (s *CoarseVector) EntryBytes() int {
	return (s.ptrs*log2ceil(s.nodes)+63)/64*8 + (s.regions+63)/64*8 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *CoarseVector) NewEntry() Entry {
	return &coarseEntry{s: s, ptrs: newPackedPtrs(s.ptrs, s.nodes)}
}

type coarseEntry struct {
	s       *CoarseVector
	ptrs    packedPtrs
	scratch sharerScratch
	coarse  bool
	vec     bitset.Set // region bits; allocated lazily on first overflow
	dirty   bool
	owner   NodeID
}

func (e *coarseEntry) AddSharer(n NodeID) []NodeID {
	if e.coarse {
		e.vec.Add(e.s.RegionFor(n))
		return nil
	}
	if e.ptrs.Index(n) >= 0 {
		return nil
	}
	if !e.ptrs.Full() {
		e.ptrs.Append(n)
		return nil
	}
	// Overflow: reinterpret the storage as a coarse vector covering the
	// existing pointers plus the newcomer.
	e.coarse = true
	if e.vec.Width() == 0 {
		e.vec = bitset.New(e.s.regions)
	} else {
		e.vec.Clear()
	}
	e.ptrs.ForEach(func(p NodeID) { e.vec.Add(e.s.RegionFor(p)) })
	e.vec.Add(e.s.RegionFor(n))
	e.ptrs.Reset()
	return nil
}

func (e *coarseEntry) RemoveSharer(n NodeID) {
	if e.coarse {
		return // a region bit may cover other sharers; keep the superset
	}
	if k := e.ptrs.Index(n); k >= 0 {
		e.ptrs.RemoveSwap(k)
	}
}

// expandRegion adds every node of region ri to set.
func (e *coarseEntry) expandRegion(set bitset.Set, ri int) {
	lo := ri * e.s.region
	hi := lo + e.s.region
	if hi > e.s.nodes {
		hi = e.s.nodes
	}
	set.AddRange(lo, hi)
}

func (e *coarseEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.s.nodes)
	if !e.coarse {
		e.ptrs.ForEach(func(p NodeID) { set.Add(p) })
		return set
	}
	e.vec.ForEach(func(ri int) { e.expandRegion(set, ri) })
	return set
}

func (e *coarseEntry) IsSharer(n NodeID) bool {
	if e.coarse {
		return e.vec.Contains(e.s.RegionFor(n))
	}
	return e.ptrs.Index(n) >= 0
}

func (e *coarseEntry) Count() int {
	if !e.coarse {
		return e.ptrs.Len()
	}
	// Every region is full-sized except possibly the last.
	c := 0
	e.vec.ForEach(func(ri int) {
		lo := ri * e.s.region
		hi := lo + e.s.region
		if hi > e.s.nodes {
			hi = e.s.nodes
		}
		c += hi - lo
	})
	return c
}

func (e *coarseEntry) Dirty() bool { return e.dirty }

func (e *coarseEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *coarseEntry) SetDirty(owner NodeID) {
	e.coarse = false
	e.ptrs.Reset()
	e.ptrs.Append(owner)
	e.dirty = true
	e.owner = owner
}

func (e *coarseEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *coarseEntry) Reset() {
	e.ptrs.Reset()
	e.coarse = false
	if e.vec.Width() != 0 {
		e.vec.Clear()
	}
	e.dirty = false
	e.owner = None
}

func (e *coarseEntry) Empty() bool { return !e.dirty && !e.coarse && e.ptrs.Len() == 0 }

func (e *coarseEntry) Precise() bool { return !e.coarse }

// PopGrant pops one node in pointer mode, or one whole region in coarse
// mode — the §7 lock-grant behaviour: all waiters of a region are released
// and re-contend.
func (e *coarseEntry) PopGrant() []NodeID {
	if e.coarse {
		ri := -1
		e.vec.ForEach(func(i int) {
			if ri < 0 {
				ri = i
			}
		})
		if ri < 0 {
			return nil
		}
		e.vec.Remove(ri)
		lo := ri * e.s.region
		hi := lo + e.s.region
		if hi > e.s.nodes {
			hi = e.s.nodes
		}
		out := make([]NodeID, 0, hi-lo)
		for n := lo; n < hi; n++ {
			out = append(out, n)
		}
		if e.vec.Empty() {
			e.coarse = false
		}
		return out
	}
	if e.ptrs.Len() == 0 {
		return nil
	}
	n := e.ptrs.At(0)
	e.ptrs.RemoveSwap(0)
	return []NodeID{n}
}
