package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// CoarseVector is the Dir_iCV_r scheme — the paper's first contribution
// (§4.1). While a block has at most i sharers the entry holds i exact
// pointers, identical to the other limited-pointer schemes. On overflow the
// same storage is reinterpreted as a coarse bit vector in which each bit
// stands for a region of r consecutive nodes. Invalidations then go to
// whole regions rather than to the entire machine, so the scheme degrades
// far more gracefully than Dir_iB while never dropping sharers like
// Dir_iNB.
//
// With all region bits set the entry is equivalent to a broadcast, so
// Dir_iCV_r is never worse than Dir_iB for the same storage.
type CoarseVector struct {
	nodes   int
	ptrs    int
	region  int
	regions int // ceil(nodes/region)
}

// NewCoarseVector returns a Dir_iCV_r scheme with ptrs pointers and
// region-size region.
func NewCoarseVector(ptrs, region, nodes int) *CoarseVector {
	if ptrs <= 0 || nodes <= 0 || region <= 0 {
		panic("core: ptrs, region and nodes must be positive")
	}
	return &CoarseVector{
		nodes:   nodes,
		ptrs:    ptrs,
		region:  region,
		regions: (nodes + region - 1) / region,
	}
}

// RegionFor returns the region index that node n belongs to.
func (s *CoarseVector) RegionFor(n NodeID) int { return n / s.region }

// Region returns the configured region size r.
func (s *CoarseVector) Region() int { return s.region }

// Name implements Scheme.
func (s *CoarseVector) Name() string { return fmt.Sprintf("Dir%dCV%d", s.ptrs, s.region) }

// Nodes implements Scheme.
func (s *CoarseVector) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: the larger of the pointer storage and
// the coarse vector, plus a mode bit and the dirty bit.
func (s *CoarseVector) BitsPerEntry() int {
	bits := s.ptrs * log2ceil(s.nodes)
	if s.regions > bits {
		bits = s.regions
	}
	return bits + 2
}

// NewEntry implements Scheme.
func (s *CoarseVector) NewEntry() Entry {
	return &coarseEntry{s: s, ptrs: make([]NodeID, 0, s.ptrs)}
}

type coarseEntry struct {
	s      *CoarseVector
	ptrs   []NodeID
	coarse bool
	vec    bitset.Set // region bits; allocated lazily on first overflow
	dirty  bool
	owner  NodeID
}

func (e *coarseEntry) AddSharer(n NodeID) []NodeID {
	if e.coarse {
		e.vec.Add(e.s.RegionFor(n))
		return nil
	}
	if idIndex(e.ptrs, n) >= 0 {
		return nil
	}
	if len(e.ptrs) < cap(e.ptrs) {
		e.ptrs = append(e.ptrs, n)
		return nil
	}
	// Overflow: reinterpret the storage as a coarse vector covering the
	// existing pointers plus the newcomer.
	e.coarse = true
	if e.vec.Width() == 0 {
		e.vec = bitset.New(e.s.regions)
	} else {
		e.vec.Clear()
	}
	for _, p := range e.ptrs {
		e.vec.Add(e.s.RegionFor(p))
	}
	e.vec.Add(e.s.RegionFor(n))
	e.ptrs = e.ptrs[:0]
	return nil
}

func (e *coarseEntry) RemoveSharer(n NodeID) {
	if e.coarse {
		return // a region bit may cover other sharers; keep the superset
	}
	if k := idIndex(e.ptrs, n); k >= 0 {
		e.ptrs = popID(e.ptrs, k)
	}
}

// expandRegion adds every node of region ri to set.
func (e *coarseEntry) expandRegion(set bitset.Set, ri int) {
	lo := ri * e.s.region
	hi := lo + e.s.region
	if hi > e.s.nodes {
		hi = e.s.nodes
	}
	set.AddRange(lo, hi)
}

func (e *coarseEntry) Sharers() bitset.Set {
	set := bitset.New(e.s.nodes)
	if !e.coarse {
		for _, p := range e.ptrs {
			set.Add(p)
		}
		return set
	}
	e.vec.ForEach(func(ri int) { e.expandRegion(set, ri) })
	return set
}

func (e *coarseEntry) IsSharer(n NodeID) bool {
	if e.coarse {
		return e.vec.Contains(e.s.RegionFor(n))
	}
	return idIndex(e.ptrs, n) >= 0
}

func (e *coarseEntry) Count() int {
	if !e.coarse {
		return len(e.ptrs)
	}
	// Every region is full-sized except possibly the last.
	c := 0
	e.vec.ForEach(func(ri int) {
		lo := ri * e.s.region
		hi := lo + e.s.region
		if hi > e.s.nodes {
			hi = e.s.nodes
		}
		c += hi - lo
	})
	return c
}

func (e *coarseEntry) Dirty() bool { return e.dirty }

func (e *coarseEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *coarseEntry) SetDirty(owner NodeID) {
	e.coarse = false
	e.ptrs = append(e.ptrs[:0], owner)
	e.dirty = true
	e.owner = owner
}

func (e *coarseEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *coarseEntry) Reset() {
	e.ptrs = e.ptrs[:0]
	e.coarse = false
	if e.vec.Width() != 0 {
		e.vec.Clear()
	}
	e.dirty = false
	e.owner = None
}

func (e *coarseEntry) Empty() bool { return !e.dirty && !e.coarse && len(e.ptrs) == 0 }

func (e *coarseEntry) Precise() bool { return !e.coarse }

// PopGrant pops one node in pointer mode, or one whole region in coarse
// mode — the §7 lock-grant behaviour: all waiters of a region are released
// and re-contend.
func (e *coarseEntry) PopGrant() []NodeID {
	if e.coarse {
		ri := -1
		e.vec.ForEach(func(i int) {
			if ri < 0 {
				ri = i
			}
		})
		if ri < 0 {
			return nil
		}
		e.vec.Remove(ri)
		set := bitset.New(e.s.nodes)
		e.expandRegion(set, ri)
		if e.vec.Empty() {
			e.coarse = false
		}
		return set.Elems()
	}
	if len(e.ptrs) == 0 {
		return nil
	}
	n := e.ptrs[0]
	e.ptrs = popID(e.ptrs, 0)
	return []NodeID{n}
}
