package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// FullVector is the Dir_P scheme (§3.1): one presence bit per node plus a
// dirty bit. It is precise — the best any invalidation-based directory can
// do — but its storage grows linearly per entry and quadratically for the
// machine.
type FullVector struct {
	nodes int
}

// NewFullVector returns the full-bit-vector scheme for the given node
// count, or a *GeometryError for an impossible geometry.
func NewFullVector(nodes int) (*FullVector, error) {
	if nodes <= 0 {
		return nil, &GeometryError{Scheme: "DirP", Nodes: nodes, Reason: "nodes must be positive"}
	}
	return &FullVector{nodes: nodes}, nil
}

// Name implements Scheme.
func (s *FullVector) Name() string { return fmt.Sprintf("Dir%d", s.nodes) }

// Nodes implements Scheme.
func (s *FullVector) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: one bit per node plus the dirty bit.
func (s *FullVector) BitsPerEntry() int { return s.nodes + 1 }

// EntryBytes implements Scheme: the presence vector plus the sharer
// scratch it is copied into.
func (s *FullVector) EntryBytes() int {
	return (s.nodes+63)/64*8 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *FullVector) NewEntry() Entry {
	return &fullVecEntry{vec: bitset.New(s.nodes)}
}

type fullVecEntry struct {
	vec     bitset.Set
	scratch sharerScratch
	dirty   bool
	owner   NodeID
}

func (e *fullVecEntry) AddSharer(n NodeID) []NodeID {
	e.vec.Add(n)
	return nil
}

func (e *fullVecEntry) RemoveSharer(n NodeID) { e.vec.Remove(n) }

func (e *fullVecEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.vec.Width())
	set.CopyFrom(e.vec)
	return set
}

func (e *fullVecEntry) IsSharer(n NodeID) bool { return e.vec.Contains(n) }

func (e *fullVecEntry) Count() int { return e.vec.Count() }

func (e *fullVecEntry) Dirty() bool { return e.dirty }

func (e *fullVecEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *fullVecEntry) SetDirty(owner NodeID) {
	e.vec.Clear()
	e.vec.Add(owner)
	e.dirty = true
	e.owner = owner
}

func (e *fullVecEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *fullVecEntry) Reset() {
	e.vec.Clear()
	e.dirty = false
	e.owner = None
}

func (e *fullVecEntry) Empty() bool { return !e.dirty && e.vec.Empty() }

func (e *fullVecEntry) Precise() bool { return true }

func (e *fullVecEntry) PopGrant() []NodeID {
	var out []NodeID
	e.vec.ForEach(func(i int) {
		if out == nil {
			out = []NodeID{i}
		}
	})
	if out != nil {
		e.vec.Remove(out[0])
	}
	return out
}
