package core

// packedPtrs is a memory-compact pointer array: up to cap pointers of
// width bits each, packed contiguously into uint64 words. It replaces the
// []NodeID slices the limited-pointer entries used to carry — at 4096
// nodes a pointer costs 12 bits here instead of a 64-bit int, so a
// Dir8... entry's pointer storage drops from 64 to 16 bytes (two words)
// and the per-entry footprint tracks the hardware cost the paper argues
// from rather than Go's word size.
//
// Operations mirror the slice idioms the entries were written with:
// append, index-of, swap-remove (popID) and order-preserving shift-remove,
// so converting an entry changes its representation and nothing else.
type packedPtrs struct {
	words []uint64
	width uint16 // bits per pointer
	len   uint16
	cap   uint16
}

// newPackedPtrs returns an empty packed array able to hold capacity
// pointers for a machine of the given node count.
func newPackedPtrs(capacity, nodes int) packedPtrs {
	w := log2ceil(nodes)
	return packedPtrs{
		words: make([]uint64, (capacity*w+63)/64),
		width: uint16(w),
		cap:   uint16(capacity),
	}
}

// bytes returns the resident heap size of the packed storage.
func (p *packedPtrs) bytes() int { return len(p.words) * 8 }

func (p *packedPtrs) Len() int { return int(p.len) }

func (p *packedPtrs) Cap() int { return int(p.cap) }

func (p *packedPtrs) Full() bool { return p.len == p.cap }

// At returns the pointer at index k.
func (p *packedPtrs) At(k int) NodeID {
	w := int(p.width)
	bit := k * w
	wi, off := bit/64, uint(bit%64)
	v := p.words[wi] >> off
	if off+uint(w) > 64 {
		v |= p.words[wi+1] << (64 - off)
	}
	return NodeID(v & (1<<uint(w) - 1))
}

// Set overwrites the pointer at index k.
func (p *packedPtrs) Set(k int, n NodeID) {
	w := int(p.width)
	bit := k * w
	wi, off := bit/64, uint(bit%64)
	mask := uint64(1<<uint(w) - 1)
	p.words[wi] = p.words[wi]&^(mask<<off) | uint64(n)<<off
	if off+uint(w) > 64 {
		rem := off + uint(w) - 64
		p.words[wi+1] = p.words[wi+1]&^(mask>>(uint(w)-rem)) | uint64(n)>>(uint(w)-rem)
	}
}

// Append adds n at the end; the caller checks Full() first.
func (p *packedPtrs) Append(n NodeID) {
	p.Set(int(p.len), n)
	p.len++
}

// Index returns the index of n, or -1 — the packed idIndex.
func (p *packedPtrs) Index(n NodeID) int {
	for k := 0; k < int(p.len); k++ {
		if p.At(k) == n {
			return k
		}
	}
	return -1
}

// RemoveSwap deletes index k by moving the last pointer into its place —
// the packed form of popID, preserving its exact ordering behaviour.
func (p *packedPtrs) RemoveSwap(k int) {
	p.len--
	p.Set(k, p.At(int(p.len)))
}

// RemoveShift deletes index k and shifts the tail down, preserving
// insertion order (the Dir_iNB FIFO policy depends on it).
func (p *packedPtrs) RemoveShift(k int) {
	for i := k; i < int(p.len)-1; i++ {
		p.Set(i, p.At(i+1))
	}
	p.len--
}

// Reset empties the array.
func (p *packedPtrs) Reset() { p.len = 0 }

// ForEach calls fn for every pointer in storage order.
func (p *packedPtrs) ForEach(fn func(NodeID)) {
	for k := 0; k < int(p.len); k++ {
		fn(p.At(k))
	}
}
