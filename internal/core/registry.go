package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Factory builds a Scheme for a machine with the given node count. The
// error is a *GeometryError when the scheme's parameters are impossible
// for that node count — parameters parse structurally long before the
// machine size is known, so geometry is only checkable here.
type Factory func(nodes int) (Scheme, error)

// UnknownSchemeError reports a scheme name that is neither registered nor
// valid paper notation. Valid lists the registered names so flag errors
// can enumerate the choices.
type UnknownSchemeError struct {
	Name  string
	Valid []string
}

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("unknown scheme %q (want one of %s, or paper notation like Dir3CV2, Dir3B, Dir3NB, Dir2X, Dir4R8, Dir32)",
		e.Name, strings.Join(e.Valid, ", "))
}

// NotationError reports paper notation that parsed structurally but has
// invalid parameters.
type NotationError struct {
	Name   string
	Reason string
}

func (e *NotationError) Error() string {
	return fmt.Sprintf("bad scheme notation %q: %s", e.Name, e.Reason)
}

// The package registry maps canonical names and aliases to factories.
// Registration happens at init time; lookups after that are read-only, so
// no locking is needed.
var (
	schemeNames     []string // canonical names, registration order
	schemeFactories = make(map[string]Factory)
)

// Register adds a scheme factory under a canonical name plus optional
// aliases. Lookups are case-insensitive. Register panics on an empty or
// duplicate name — registration is a program-integrity matter, not input
// validation.
func Register(name string, f Factory, aliases ...string) {
	if f == nil {
		panic("core: Register with nil factory")
	}
	canon := strings.ToLower(name)
	if canon == "" {
		panic("core: Register with empty name")
	}
	if _, dup := schemeFactories[canon]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", name))
	}
	schemeFactories[canon] = f
	schemeNames = append(schemeNames, name)
	for _, a := range aliases {
		a = strings.ToLower(a)
		if _, dup := schemeFactories[a]; dup {
			panic(fmt.Sprintf("core: scheme alias %q registered twice", a))
		}
		schemeFactories[a] = f
	}
}

// SchemeNames returns the canonical registered scheme names in
// registration order (aliases are not listed).
func SchemeNames() []string {
	return append([]string(nil), schemeNames...)
}

// Parse resolves a scheme name to its factory. It accepts registered
// names and aliases ("full", "cv", ...) and the paper's notation:
//
//	Dir<P>       full bit vector (Dir32; P is fixed by the machine size)
//	Dir<i>B      i pointers, broadcast on overflow
//	Dir<i>NB     i pointers, never broadcast
//	Dir<i>X      superset / composite pointers
//	Dir<i>CV<r>  i pointers degrading to a coarse vector of region r
//	Dir<i>R<r>   two-level: i region slots of r nodes, each with an
//	             exact in-region vector, degrading to a coarse vector
//
// Unknown names return *UnknownSchemeError; structurally valid notation
// with bad parameters returns *NotationError. Parameters that are only
// checkable against the machine size (e.g. more pointers than nodes)
// surface as *GeometryError when the factory runs.
func Parse(name string) (Factory, error) {
	if f, ok := schemeFactories[strings.ToLower(name)]; ok {
		return f, nil
	}
	if f, ok, err := parseNotation(name); ok {
		return f, err
	}
	valid := SchemeNames()
	sort.Strings(valid)
	return nil, &UnknownSchemeError{Name: name, Valid: valid}
}

// MustParse is Parse for statically known names; it panics on error.
func MustParse(name string) Factory {
	f, err := Parse(name)
	if err != nil {
		panic(fmt.Sprintf("core: MustParse(%q): %v", name, err))
	}
	return f
}

// parseNotation recognizes the paper's Dir... notation. ok reports
// whether name is structurally notation (so the caller can fall back to
// an unknown-name error when it is not).
func parseNotation(name string) (f Factory, ok bool, err error) {
	rest, found := cutPrefixFold(name, "Dir")
	if !found || rest == "" {
		return nil, false, nil
	}
	digits := rest
	suffix := ""
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			digits, suffix = rest[:i], rest[i:]
			break
		}
	}
	if digits == "" {
		return nil, false, nil
	}
	i, convErr := strconv.Atoi(digits)
	if convErr != nil {
		return nil, false, nil
	}
	bad := func(reason string) (Factory, bool, error) {
		return nil, true, &NotationError{Name: name, Reason: reason}
	}
	if i < 1 {
		return bad("pointer count must be at least 1")
	}
	switch strings.ToUpper(suffix) {
	case "":
		// DirP: the full bit vector. P documents the machine size; the
		// actual width always follows the machine the factory builds for.
		return func(n int) (Scheme, error) { return NewFullVector(n) }, true, nil
	case "B":
		return func(n int) (Scheme, error) { return NewLimitedBroadcast(i, n) }, true, nil
	case "NB":
		return func(n int) (Scheme, error) { return NewLimitedNoBroadcast(i, n, VictimRandom, 11) }, true, nil
	case "X":
		return func(n int) (Scheme, error) { return NewSuperset(i, n) }, true, nil
	}
	if cvRest, isCV := cutPrefixFold(suffix, "CV"); isCV {
		r, convErr := strconv.Atoi(cvRest)
		if convErr != nil {
			return bad(fmt.Sprintf("coarse vector region %q is not a number", cvRest))
		}
		if r < 1 {
			return bad("coarse vector region must be at least 1")
		}
		return func(n int) (Scheme, error) { return NewCoarseVector(i, r, n) }, true, nil
	}
	if rRest, isR := cutPrefixFold(suffix, "R"); isR {
		r, convErr := strconv.Atoi(rRest)
		if convErr != nil {
			return bad(fmt.Sprintf("two-level region %q is not a number", rRest))
		}
		if r < 1 {
			return bad("two-level region must be at least 1")
		}
		return func(n int) (Scheme, error) { return NewTwoLevel(i, r, n) }, true, nil
	}
	return bad(fmt.Sprintf("unknown suffix %q", suffix))
}

// cutPrefixFold is strings.CutPrefix with ASCII case folding.
func cutPrefixFold(s, prefix string) (rest string, ok bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

// AdaptiveRegion returns the registry's default two-level region size for
// an n-node
// machine: the smallest power of two r with r*r >= n, i.e. roughly sqrt(n)
// (8 at 64 nodes, 32 at 1K, 64 at 4K) — regions and region vectors then
// cost about the same bits.
func AdaptiveRegion(n int) int {
	r := 1
	for r*r < n {
		r <<= 1
	}
	return r
}

// newAdaptiveTwoLevel builds the registry-default two-level scheme for an
// n-node machine: region ~ sqrt(n) and up to 4 region slots, clamped so
// tiny machines stay constructible.
func newAdaptiveTwoLevel(n int) (Scheme, error) {
	if n <= 0 {
		return nil, &GeometryError{Scheme: "Dir4R", Nodes: n, Reason: "nodes must be positive"}
	}
	r := AdaptiveRegion(n)
	regions := (n + r - 1) / r
	ptrs := 4
	if ptrs > regions {
		ptrs = regions
	}
	return NewTwoLevel(ptrs, r, n)
}

// ParseSpec resolves a scheme from a short kind plus explicit parameters
// — the form command-line flags and JSON specs use. Full notation names
// are also accepted (the parameters are then ignored). Non-positive
// parameters select the paper's defaults: 3 pointers (2 for Dir_iX, 4 for
// the two-level scheme) and region 2 (~sqrt(nodes) for two-level).
func ParseSpec(kind string, ptrs, region int) (Factory, error) {
	regionSet := region >= 1
	if !regionSet {
		region = 2
	}
	defPtrs := func(def int) int {
		if ptrs < 1 {
			return def
		}
		return ptrs
	}
	switch strings.ToLower(kind) {
	case "", "full", "fullvec", "dir":
		return Parse("full")
	case "cv", "coarse":
		return Parse(fmt.Sprintf("Dir%dCV%d", defPtrs(3), region))
	case "b", "broadcast":
		return Parse(fmt.Sprintf("Dir%dB", defPtrs(3)))
	case "nb", "nobroadcast":
		return Parse(fmt.Sprintf("Dir%dNB", defPtrs(3)))
	case "x", "superset":
		return Parse(fmt.Sprintf("Dir%dX", defPtrs(2)))
	case "tl", "twolevel", "region":
		if !regionSet {
			if ptrs < 1 {
				return Parse("tl") // fully adaptive default
			}
			i := ptrs
			return func(n int) (Scheme, error) { return NewTwoLevel(i, AdaptiveRegion(n), n) }, nil
		}
		return Parse(fmt.Sprintf("Dir%dR%d", defPtrs(4), region))
	default:
		return Parse(kind)
	}
}

func init() {
	// The §5 roster under its short names. The parameterized families are
	// reachable through notation (Dir4CV8, Dir5B, Dir4R8, ...) via Parse.
	Register("full", func(n int) (Scheme, error) { return NewFullVector(n) }, "fullvec", "dir")
	Register("cv", func(n int) (Scheme, error) { return NewCoarseVector(3, 2, n) }, "coarse")
	Register("b", func(n int) (Scheme, error) { return NewLimitedBroadcast(3, n) }, "broadcast")
	Register("nb", func(n int) (Scheme, error) { return NewLimitedNoBroadcast(3, n, VictimRandom, 11) }, "nobroadcast")
	Register("x", func(n int) (Scheme, error) { return NewSuperset(2, n) }, "superset")
	Register("tl", newAdaptiveTwoLevel, "twolevel", "region")
}
