package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Factory builds a Scheme for a machine with the given node count.
type Factory func(nodes int) Scheme

// UnknownSchemeError reports a scheme name that is neither registered nor
// valid paper notation. Valid lists the registered names so flag errors
// can enumerate the choices.
type UnknownSchemeError struct {
	Name  string
	Valid []string
}

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("unknown scheme %q (want one of %s, or paper notation like Dir3CV2, Dir3B, Dir3NB, Dir2X, Dir32)",
		e.Name, strings.Join(e.Valid, ", "))
}

// NotationError reports paper notation that parsed structurally but has
// invalid parameters.
type NotationError struct {
	Name   string
	Reason string
}

func (e *NotationError) Error() string {
	return fmt.Sprintf("bad scheme notation %q: %s", e.Name, e.Reason)
}

// The package registry maps canonical names and aliases to factories.
// Registration happens at init time; lookups after that are read-only, so
// no locking is needed.
var (
	schemeNames     []string // canonical names, registration order
	schemeFactories = make(map[string]Factory)
)

// Register adds a scheme factory under a canonical name plus optional
// aliases. Lookups are case-insensitive. Register panics on an empty or
// duplicate name — registration is a program-integrity matter, not input
// validation.
func Register(name string, f Factory, aliases ...string) {
	if f == nil {
		panic("core: Register with nil factory")
	}
	canon := strings.ToLower(name)
	if canon == "" {
		panic("core: Register with empty name")
	}
	if _, dup := schemeFactories[canon]; dup {
		panic(fmt.Sprintf("core: scheme %q registered twice", name))
	}
	schemeFactories[canon] = f
	schemeNames = append(schemeNames, name)
	for _, a := range aliases {
		a = strings.ToLower(a)
		if _, dup := schemeFactories[a]; dup {
			panic(fmt.Sprintf("core: scheme alias %q registered twice", a))
		}
		schemeFactories[a] = f
	}
}

// SchemeNames returns the canonical registered scheme names in
// registration order (aliases are not listed).
func SchemeNames() []string {
	return append([]string(nil), schemeNames...)
}

// Parse resolves a scheme name to its factory. It accepts registered
// names and aliases ("full", "cv", ...) and the paper's notation:
//
//	Dir<P>       full bit vector (Dir32; P is fixed by the machine size)
//	Dir<i>B      i pointers, broadcast on overflow
//	Dir<i>NB     i pointers, never broadcast
//	Dir<i>X      superset / composite pointers
//	Dir<i>CV<r>  i pointers degrading to a coarse vector of region r
//
// Unknown names return *UnknownSchemeError; structurally valid notation
// with bad parameters returns *NotationError.
func Parse(name string) (Factory, error) {
	if f, ok := schemeFactories[strings.ToLower(name)]; ok {
		return f, nil
	}
	if f, ok, err := parseNotation(name); ok {
		return f, err
	}
	valid := SchemeNames()
	sort.Strings(valid)
	return nil, &UnknownSchemeError{Name: name, Valid: valid}
}

// MustParse is Parse for statically known names; it panics on error.
func MustParse(name string) Factory {
	f, err := Parse(name)
	if err != nil {
		panic(fmt.Sprintf("core: MustParse(%q): %v", name, err))
	}
	return f
}

// parseNotation recognizes the paper's Dir... notation. ok reports
// whether name is structurally notation (so the caller can fall back to
// an unknown-name error when it is not).
func parseNotation(name string) (f Factory, ok bool, err error) {
	rest, found := cutPrefixFold(name, "Dir")
	if !found || rest == "" {
		return nil, false, nil
	}
	digits := rest
	suffix := ""
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			digits, suffix = rest[:i], rest[i:]
			break
		}
	}
	if digits == "" {
		return nil, false, nil
	}
	i, convErr := strconv.Atoi(digits)
	if convErr != nil {
		return nil, false, nil
	}
	bad := func(reason string) (Factory, bool, error) {
		return nil, true, &NotationError{Name: name, Reason: reason}
	}
	if i < 1 {
		return bad("pointer count must be at least 1")
	}
	switch strings.ToUpper(suffix) {
	case "":
		// DirP: the full bit vector. P documents the machine size; the
		// actual width always follows the machine the factory builds for.
		return func(n int) Scheme { return NewFullVector(n) }, true, nil
	case "B":
		return func(n int) Scheme { return NewLimitedBroadcast(i, n) }, true, nil
	case "NB":
		return func(n int) Scheme { return NewLimitedNoBroadcast(i, n, VictimRandom, 11) }, true, nil
	case "X":
		return func(n int) Scheme { return NewSuperset(i, n) }, true, nil
	}
	cvRest, isCV := cutPrefixFold(suffix, "CV")
	if !isCV {
		return bad(fmt.Sprintf("unknown suffix %q", suffix))
	}
	r, convErr := strconv.Atoi(cvRest)
	if convErr != nil {
		return bad(fmt.Sprintf("coarse vector region %q is not a number", cvRest))
	}
	if r < 1 {
		return bad("coarse vector region must be at least 1")
	}
	return func(n int) Scheme { return NewCoarseVector(i, r, n) }, true, nil
}

// cutPrefixFold is strings.CutPrefix with ASCII case folding.
func cutPrefixFold(s, prefix string) (rest string, ok bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

// ParseSpec resolves a scheme from a short kind plus explicit parameters
// — the form command-line flags and JSON specs use. Full notation names
// are also accepted (the parameters are then ignored). Non-positive
// parameters select the paper's defaults: 3 pointers (2 for Dir_iX) and
// region 2.
func ParseSpec(kind string, ptrs, region int) (Factory, error) {
	if region < 1 {
		region = 2
	}
	defPtrs := func(def int) int {
		if ptrs < 1 {
			return def
		}
		return ptrs
	}
	switch strings.ToLower(kind) {
	case "", "full", "fullvec", "dir":
		return Parse("full")
	case "cv", "coarse":
		return Parse(fmt.Sprintf("Dir%dCV%d", defPtrs(3), region))
	case "b", "broadcast":
		return Parse(fmt.Sprintf("Dir%dB", defPtrs(3)))
	case "nb", "nobroadcast":
		return Parse(fmt.Sprintf("Dir%dNB", defPtrs(3)))
	case "x", "superset":
		return Parse(fmt.Sprintf("Dir%dX", defPtrs(2)))
	default:
		return Parse(kind)
	}
}

func init() {
	// The §5 roster under its short names. The parameterized families are
	// reachable through notation (Dir4CV8, Dir5B, ...) via Parse.
	Register("full", func(n int) Scheme { return NewFullVector(n) }, "fullvec", "dir")
	Register("cv", func(n int) Scheme { return NewCoarseVector(3, 2, n) }, "coarse")
	Register("b", func(n int) Scheme { return NewLimitedBroadcast(3, n) }, "broadcast")
	Register("nb", func(n int) Scheme { return NewLimitedNoBroadcast(3, n, VictimRandom, 11) }, "nobroadcast")
	Register("x", func(n int) Scheme { return NewSuperset(2, n) }, "superset")
}
