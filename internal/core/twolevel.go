package core

import (
	"fmt"

	"dircoh/internal/bitset"
)

// TwoLevel is the Dir_iR_r two-level (region-grain) directory: the §4.1
// coarse-vector idea applied hierarchically so that precision survives past
// i sharers. The entry holds up to i region slots; each slot names a region
// of r consecutive nodes and carries an exact r-bit vector of the sharers
// inside that region. While sharing stays clustered in at most i regions
// the entry is fully precise — unlike Dir_iCV_r, whose precision ends at i
// individual sharers. Only when sharing spreads across more than i regions
// does the entry degrade to Dir_iCV_r's coarse region bitmap.
//
// This is the natural encoding for 1K–4K-node machines built from
// r-node clusters: i*(log2(N/r)+r) bits buys region-exact tracking where a
// full vector would need N bits and Dir_iCV_r would already be coarse.
type TwoLevel struct {
	nodes   int
	ptrs    int // region slots (the i in Dir_iR_r)
	region  int // nodes per region (the r)
	regions int // ceil(nodes/region)
}

// NewTwoLevel returns a Dir_iR_r scheme with ptrs region slots of
// region-size region, or a *GeometryError for an impossible geometry.
func NewTwoLevel(ptrs, region, nodes int) (*TwoLevel, error) {
	name := fmt.Sprintf("Dir%dR%d", ptrs, region)
	if err := checkPtrGeometry(name, ptrs, region, nodes); err != nil {
		return nil, err
	}
	if region <= 0 {
		return nil, &GeometryError{Scheme: name, Ptrs: ptrs, Region: region, Nodes: nodes, Reason: "region size must be positive"}
	}
	regions := (nodes + region - 1) / region
	if ptrs > regions {
		return nil, &GeometryError{Scheme: name, Ptrs: ptrs, Region: region, Nodes: nodes, Reason: "more region slots than regions"}
	}
	return &TwoLevel{nodes: nodes, ptrs: ptrs, region: region, regions: regions}, nil
}

// RegionFor returns the region index that node n belongs to.
func (s *TwoLevel) RegionFor(n NodeID) int { return n / s.region }

// Region returns the configured region size r.
func (s *TwoLevel) Region() int { return s.region }

// Name implements Scheme.
func (s *TwoLevel) Name() string { return fmt.Sprintf("Dir%dR%d", s.ptrs, s.region) }

// Nodes implements Scheme.
func (s *TwoLevel) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: the larger of i region slots (region
// pointer plus an exact r-bit vector each) and the coarse region bitmap,
// plus a mode bit and the dirty bit.
func (s *TwoLevel) BitsPerEntry() int {
	bits := s.ptrs * (log2ceil(s.regions) + s.region)
	if s.regions > bits {
		bits = s.regions
	}
	return bits + 2
}

// EntryBytes implements Scheme: packed region ids, the per-slot vectors,
// the coarse bitmap and the sharer scratch.
func (s *TwoLevel) EntryBytes() int {
	slotVec := (s.region + 63) / 64 * 8
	return (s.ptrs*log2ceil(s.regions)+63)/64*8 + s.ptrs*slotVec + (s.regions+63)/64*8 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *TwoLevel) NewEntry() Entry {
	e := &twoLevelEntry{
		s:     s,
		regs:  newPackedPtrs(s.ptrs, s.regions),
		slots: make([]bitset.Set, s.ptrs),
	}
	for i := range e.slots {
		e.slots[i] = bitset.New(s.region)
	}
	return e
}

type twoLevelEntry struct {
	s       *TwoLevel
	regs    packedPtrs   // region id of slot k (len = live slots)
	slots   []bitset.Set // slot k's exact in-region sharer vector
	scratch sharerScratch
	coarse  bool
	vec     bitset.Set // coarse region bits; allocated lazily on overflow
	dirty   bool
	owner   NodeID
}

// slotFor returns the slot index holding region ri, or -1.
func (e *twoLevelEntry) slotFor(ri int) int { return e.regs.Index(ri) }

func (e *twoLevelEntry) AddSharer(n NodeID) []NodeID {
	ri := e.s.RegionFor(n)
	if e.coarse {
		e.vec.Add(ri)
		return nil
	}
	if k := e.slotFor(ri); k >= 0 {
		e.slots[k].Add(n % e.s.region)
		return nil
	}
	if !e.regs.Full() {
		k := e.regs.Len()
		e.regs.Append(ri)
		e.slots[k].Clear()
		e.slots[k].Add(n % e.s.region)
		return nil
	}
	// Slot overflow: degrade to the coarse region bitmap covering every
	// slot region plus the newcomer's — exactly Dir_iCV_r's fallback.
	e.coarse = true
	if e.vec.Width() == 0 {
		e.vec = bitset.New(e.s.regions)
	} else {
		e.vec.Clear()
	}
	e.regs.ForEach(func(r NodeID) { e.vec.Add(r) })
	e.vec.Add(ri)
	e.regs.Reset()
	return nil
}

func (e *twoLevelEntry) RemoveSharer(n NodeID) {
	if e.coarse {
		return // a region bit may cover other sharers; keep the superset
	}
	ri := e.s.RegionFor(n)
	k := e.slotFor(ri)
	if k < 0 {
		return
	}
	e.slots[k].Remove(n % e.s.region)
	if e.slots[k].Empty() {
		e.freeSlot(k)
	}
}

// freeSlot releases slot k, moving the last live slot into its place so
// the live slots stay contiguous (the slot analogue of RemoveSwap).
func (e *twoLevelEntry) freeSlot(k int) {
	last := e.regs.Len() - 1
	if k != last {
		e.regs.Set(k, e.regs.At(last))
		e.slots[k].CopyFrom(e.slots[last])
	}
	e.regs.RemoveShift(last) // removing the tail: shift == swap, len--
}

// expandRegion adds every node of region ri to set.
func (e *twoLevelEntry) expandRegion(set bitset.Set, ri int) {
	lo := ri * e.s.region
	hi := lo + e.s.region
	if hi > e.s.nodes {
		hi = e.s.nodes
	}
	set.AddRange(lo, hi)
}

func (e *twoLevelEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.s.nodes)
	if !e.coarse {
		for k := 0; k < e.regs.Len(); k++ {
			base := e.regs.At(k) * e.s.region
			e.slots[k].ForEach(func(b int) { set.Add(base + b) })
		}
		return set
	}
	e.vec.ForEach(func(ri int) { e.expandRegion(set, ri) })
	return set
}

func (e *twoLevelEntry) IsSharer(n NodeID) bool {
	ri := e.s.RegionFor(n)
	if e.coarse {
		return e.vec.Contains(ri)
	}
	k := e.slotFor(ri)
	return k >= 0 && e.slots[k].Contains(n%e.s.region)
}

func (e *twoLevelEntry) Count() int {
	if !e.coarse {
		c := 0
		for k := 0; k < e.regs.Len(); k++ {
			c += e.slots[k].Count()
		}
		return c
	}
	c := 0
	e.vec.ForEach(func(ri int) {
		lo := ri * e.s.region
		hi := lo + e.s.region
		if hi > e.s.nodes {
			hi = e.s.nodes
		}
		c += hi - lo
	})
	return c
}

func (e *twoLevelEntry) Dirty() bool { return e.dirty }

func (e *twoLevelEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *twoLevelEntry) SetDirty(owner NodeID) {
	e.coarse = false
	e.regs.Reset()
	e.regs.Append(e.s.RegionFor(owner))
	e.slots[0].Clear()
	e.slots[0].Add(owner % e.s.region)
	e.dirty = true
	e.owner = owner
}

func (e *twoLevelEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *twoLevelEntry) Reset() {
	e.regs.Reset()
	e.coarse = false
	if e.vec.Width() != 0 {
		e.vec.Clear()
	}
	e.dirty = false
	e.owner = None
}

func (e *twoLevelEntry) Empty() bool { return !e.dirty && !e.coarse && e.regs.Len() == 0 }

func (e *twoLevelEntry) Precise() bool { return !e.coarse }

// PopGrant pops one node while precise, or one whole region once coarse —
// matching Dir_iCV_r's §7 queued-lock behaviour in the degraded mode.
func (e *twoLevelEntry) PopGrant() []NodeID {
	if e.coarse {
		ri := -1
		e.vec.ForEach(func(i int) {
			if ri < 0 {
				ri = i
			}
		})
		if ri < 0 {
			return nil
		}
		e.vec.Remove(ri)
		lo := ri * e.s.region
		hi := lo + e.s.region
		if hi > e.s.nodes {
			hi = e.s.nodes
		}
		out := make([]NodeID, 0, hi-lo)
		for n := lo; n < hi; n++ {
			out = append(out, n)
		}
		if e.vec.Empty() {
			e.coarse = false
		}
		return out
	}
	if e.regs.Len() == 0 {
		return nil
	}
	base := e.regs.At(0) * e.s.region
	b := -1
	e.slots[0].ForEach(func(i int) {
		if b < 0 {
			b = i
		}
	})
	e.slots[0].Remove(b)
	if e.slots[0].Empty() {
		e.freeSlot(0)
	}
	return []NodeID{base + b}
}
