package core

import (
	"fmt"
	"math/rand"

	"dircoh/internal/bitset"
)

// VictimPolicy selects which pointer a Dir_iNB entry drops on overflow.
type VictimPolicy int

const (
	// VictimRandom drops a uniformly random pointer (default; what the
	// paper's replacement discussion assumes for pointer overflow).
	VictimRandom VictimPolicy = iota
	// VictimOldest drops the pointer that was inserted first (FIFO).
	VictimOldest
)

func (p VictimPolicy) String() string {
	switch p {
	case VictimRandom:
		return "random"
	case VictimOldest:
		return "oldest"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", int(p))
	}
}

// checkPtrGeometry validates the common (ptrs, nodes) geometry of the
// limited-pointer families. More pointers than nodes is deliberately NOT
// an error: tiny conformance configs run Dir3CV2 on 2 clusters, where the
// pointers simply never overflow.
func checkPtrGeometry(scheme string, ptrs, region, nodes int) error {
	switch {
	case nodes <= 0:
		return &GeometryError{Scheme: scheme, Ptrs: ptrs, Region: region, Nodes: nodes, Reason: "nodes must be positive"}
	case ptrs <= 0:
		return &GeometryError{Scheme: scheme, Ptrs: ptrs, Region: region, Nodes: nodes, Reason: "pointer count must be positive"}
	}
	return nil
}

// LimitedBroadcast is the Dir_iB scheme (§3.2.1): i pointers plus a
// broadcast bit. Pointer overflow sets the broadcast bit; subsequent writes
// invalidate every node.
type LimitedBroadcast struct {
	nodes int
	ptrs  int
}

// NewLimitedBroadcast returns a Dir_iB scheme with ptrs pointers, or a
// *GeometryError for an impossible geometry.
func NewLimitedBroadcast(ptrs, nodes int) (*LimitedBroadcast, error) {
	if err := checkPtrGeometry(fmt.Sprintf("Dir%dB", ptrs), ptrs, 0, nodes); err != nil {
		return nil, err
	}
	return &LimitedBroadcast{nodes: nodes, ptrs: ptrs}, nil
}

// Name implements Scheme.
func (s *LimitedBroadcast) Name() string { return fmt.Sprintf("Dir%dB", s.ptrs) }

// Nodes implements Scheme.
func (s *LimitedBroadcast) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: i pointers, a broadcast bit, a dirty bit.
func (s *LimitedBroadcast) BitsPerEntry() int {
	return s.ptrs*log2ceil(s.nodes) + 2
}

// EntryBytes implements Scheme: the packed pointer words plus the sharer
// scratch, the entry struct itself excluded.
func (s *LimitedBroadcast) EntryBytes() int {
	return (s.ptrs*log2ceil(s.nodes)+63)/64*8 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *LimitedBroadcast) NewEntry() Entry {
	return &broadcastEntry{s: s, ptrs: newPackedPtrs(s.ptrs, s.nodes)}
}

type broadcastEntry struct {
	s       *LimitedBroadcast
	ptrs    packedPtrs
	scratch sharerScratch
	bcast   bool
	dirty   bool
	owner   NodeID
}

func (e *broadcastEntry) AddSharer(n NodeID) []NodeID {
	if e.bcast {
		return nil
	}
	if e.ptrs.Index(n) >= 0 {
		return nil
	}
	if e.ptrs.Full() {
		e.bcast = true
		e.ptrs.Reset()
		return nil
	}
	e.ptrs.Append(n)
	return nil
}

func (e *broadcastEntry) RemoveSharer(n NodeID) {
	if e.bcast {
		return // cannot express removal once broadcasting
	}
	if k := e.ptrs.Index(n); k >= 0 {
		e.ptrs.RemoveSwap(k)
	}
}

func (e *broadcastEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.s.nodes)
	if e.bcast {
		set.Fill()
		return set
	}
	e.ptrs.ForEach(func(p NodeID) { set.Add(p) })
	return set
}

func (e *broadcastEntry) IsSharer(n NodeID) bool {
	return e.bcast || e.ptrs.Index(n) >= 0
}

func (e *broadcastEntry) Count() int {
	if e.bcast {
		return e.s.nodes
	}
	return e.ptrs.Len()
}

func (e *broadcastEntry) Dirty() bool { return e.dirty }

func (e *broadcastEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *broadcastEntry) SetDirty(owner NodeID) {
	e.bcast = false
	e.ptrs.Reset()
	e.ptrs.Append(owner)
	e.dirty = true
	e.owner = owner
}

func (e *broadcastEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *broadcastEntry) Reset() {
	e.ptrs.Reset()
	e.bcast = false
	e.dirty = false
	e.owner = None
}

func (e *broadcastEntry) Empty() bool { return !e.dirty && !e.bcast && e.ptrs.Len() == 0 }

func (e *broadcastEntry) Precise() bool { return !e.bcast }

func (e *broadcastEntry) PopGrant() []NodeID {
	if e.bcast {
		out := make([]NodeID, e.s.nodes)
		for i := range out {
			out[i] = i
		}
		e.bcast = false
		return out
	}
	if e.ptrs.Len() == 0 {
		return nil
	}
	n := e.ptrs.At(0)
	e.ptrs.RemoveSwap(0)
	return []NodeID{n}
}

// LimitedNoBroadcast is the Dir_iNB scheme (§3.2.2): i pointers and no
// overflow mechanism — adding an (i+1)-th sharer forces one existing sharer
// to be invalidated. A block can therefore never be cached by more than i
// nodes, which devastates widely read-shared data.
type LimitedNoBroadcast struct {
	nodes  int
	ptrs   int
	policy VictimPolicy
	rng    *rand.Rand
}

// NewLimitedNoBroadcast returns a Dir_iNB scheme, or a *GeometryError for
// an impossible geometry. The seed drives the random victim policy so
// runs are reproducible.
func NewLimitedNoBroadcast(ptrs, nodes int, policy VictimPolicy, seed int64) (*LimitedNoBroadcast, error) {
	if err := checkPtrGeometry(fmt.Sprintf("Dir%dNB", ptrs), ptrs, 0, nodes); err != nil {
		return nil, err
	}
	return &LimitedNoBroadcast{
		nodes:  nodes,
		ptrs:   ptrs,
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements Scheme.
func (s *LimitedNoBroadcast) Name() string { return fmt.Sprintf("Dir%dNB", s.ptrs) }

// Nodes implements Scheme.
func (s *LimitedNoBroadcast) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: i pointers plus a dirty bit.
func (s *LimitedNoBroadcast) BitsPerEntry() int {
	return s.ptrs*log2ceil(s.nodes) + 1
}

// EntryBytes implements Scheme.
func (s *LimitedNoBroadcast) EntryBytes() int {
	return (s.ptrs*log2ceil(s.nodes)+63)/64*8 + scratchBytes(s.nodes)
}

// NewEntry implements Scheme.
func (s *LimitedNoBroadcast) NewEntry() Entry {
	return &noBroadcastEntry{s: s, ptrs: newPackedPtrs(s.ptrs, s.nodes)}
}

type noBroadcastEntry struct {
	s       *LimitedNoBroadcast
	ptrs    packedPtrs // insertion order preserved except after random eviction
	scratch sharerScratch
	dirty   bool
	owner   NodeID
}

func (e *noBroadcastEntry) AddSharer(n NodeID) []NodeID {
	if e.ptrs.Index(n) >= 0 {
		return nil
	}
	if !e.ptrs.Full() {
		e.ptrs.Append(n)
		return nil
	}
	var k int
	switch e.s.policy {
	case VictimOldest:
		k = 0
	default:
		k = e.s.rng.Intn(e.ptrs.Len())
	}
	victim := e.ptrs.At(k)
	// Preserve order for the FIFO policy by shifting.
	e.ptrs.RemoveShift(k)
	e.ptrs.Append(n)
	return []NodeID{victim}
}

func (e *noBroadcastEntry) RemoveSharer(n NodeID) {
	if k := e.ptrs.Index(n); k >= 0 {
		e.ptrs.RemoveShift(k)
	}
}

func (e *noBroadcastEntry) Sharers() bitset.Set {
	set := e.scratch.view(e.s.nodes)
	e.ptrs.ForEach(func(p NodeID) { set.Add(p) })
	return set
}

func (e *noBroadcastEntry) IsSharer(n NodeID) bool { return e.ptrs.Index(n) >= 0 }

func (e *noBroadcastEntry) Count() int { return e.ptrs.Len() }

func (e *noBroadcastEntry) Dirty() bool { return e.dirty }

func (e *noBroadcastEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *noBroadcastEntry) SetDirty(owner NodeID) {
	e.ptrs.Reset()
	e.ptrs.Append(owner)
	e.dirty = true
	e.owner = owner
}

func (e *noBroadcastEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *noBroadcastEntry) Reset() {
	e.ptrs.Reset()
	e.dirty = false
	e.owner = None
}

func (e *noBroadcastEntry) Empty() bool { return !e.dirty && e.ptrs.Len() == 0 }

func (e *noBroadcastEntry) Precise() bool { return true }

func (e *noBroadcastEntry) PopGrant() []NodeID {
	if e.ptrs.Len() == 0 {
		return nil
	}
	n := e.ptrs.At(0)
	e.ptrs.RemoveShift(0)
	return []NodeID{n}
}
