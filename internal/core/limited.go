package core

import (
	"fmt"
	"math/rand"

	"dircoh/internal/bitset"
)

// VictimPolicy selects which pointer a Dir_iNB entry drops on overflow.
type VictimPolicy int

const (
	// VictimRandom drops a uniformly random pointer (default; what the
	// paper's replacement discussion assumes for pointer overflow).
	VictimRandom VictimPolicy = iota
	// VictimOldest drops the pointer that was inserted first (FIFO).
	VictimOldest
)

func (p VictimPolicy) String() string {
	switch p {
	case VictimRandom:
		return "random"
	case VictimOldest:
		return "oldest"
	default:
		return fmt.Sprintf("VictimPolicy(%d)", int(p))
	}
}

// LimitedBroadcast is the Dir_iB scheme (§3.2.1): i pointers plus a
// broadcast bit. Pointer overflow sets the broadcast bit; subsequent writes
// invalidate every node.
type LimitedBroadcast struct {
	nodes int
	ptrs  int
}

// NewLimitedBroadcast returns a Dir_iB scheme with ptrs pointers.
func NewLimitedBroadcast(ptrs, nodes int) *LimitedBroadcast {
	if ptrs <= 0 || nodes <= 0 {
		panic("core: ptrs and nodes must be positive")
	}
	return &LimitedBroadcast{nodes: nodes, ptrs: ptrs}
}

// Name implements Scheme.
func (s *LimitedBroadcast) Name() string { return fmt.Sprintf("Dir%dB", s.ptrs) }

// Nodes implements Scheme.
func (s *LimitedBroadcast) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: i pointers, a broadcast bit, a dirty bit.
func (s *LimitedBroadcast) BitsPerEntry() int {
	return s.ptrs*log2ceil(s.nodes) + 2
}

// NewEntry implements Scheme.
func (s *LimitedBroadcast) NewEntry() Entry {
	return &broadcastEntry{s: s, ptrs: make([]NodeID, 0, s.ptrs)}
}

type broadcastEntry struct {
	s     *LimitedBroadcast
	ptrs  []NodeID
	bcast bool
	dirty bool
	owner NodeID
}

func (e *broadcastEntry) AddSharer(n NodeID) []NodeID {
	if e.bcast {
		return nil
	}
	if idIndex(e.ptrs, n) >= 0 {
		return nil
	}
	if len(e.ptrs) == cap(e.ptrs) {
		e.bcast = true
		e.ptrs = e.ptrs[:0]
		return nil
	}
	e.ptrs = append(e.ptrs, n)
	return nil
}

func (e *broadcastEntry) RemoveSharer(n NodeID) {
	if e.bcast {
		return // cannot express removal once broadcasting
	}
	if k := idIndex(e.ptrs, n); k >= 0 {
		e.ptrs = popID(e.ptrs, k)
	}
}

func (e *broadcastEntry) Sharers() bitset.Set {
	set := bitset.New(e.s.nodes)
	if e.bcast {
		set.Fill()
		return set
	}
	for _, p := range e.ptrs {
		set.Add(p)
	}
	return set
}

func (e *broadcastEntry) IsSharer(n NodeID) bool {
	return e.bcast || idIndex(e.ptrs, n) >= 0
}

func (e *broadcastEntry) Count() int {
	if e.bcast {
		return e.s.nodes
	}
	return len(e.ptrs)
}

func (e *broadcastEntry) Dirty() bool { return e.dirty }

func (e *broadcastEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *broadcastEntry) SetDirty(owner NodeID) {
	e.bcast = false
	e.ptrs = append(e.ptrs[:0], owner)
	e.dirty = true
	e.owner = owner
}

func (e *broadcastEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *broadcastEntry) Reset() {
	e.ptrs = e.ptrs[:0]
	e.bcast = false
	e.dirty = false
	e.owner = None
}

func (e *broadcastEntry) Empty() bool { return !e.dirty && !e.bcast && len(e.ptrs) == 0 }

func (e *broadcastEntry) Precise() bool { return !e.bcast }

func (e *broadcastEntry) PopGrant() []NodeID {
	if e.bcast {
		out := make([]NodeID, e.s.nodes)
		for i := range out {
			out[i] = i
		}
		e.bcast = false
		return out
	}
	if len(e.ptrs) == 0 {
		return nil
	}
	n := e.ptrs[0]
	e.ptrs = popID(e.ptrs, 0)
	return []NodeID{n}
}

// LimitedNoBroadcast is the Dir_iNB scheme (§3.2.2): i pointers and no
// overflow mechanism — adding an (i+1)-th sharer forces one existing sharer
// to be invalidated. A block can therefore never be cached by more than i
// nodes, which devastates widely read-shared data.
type LimitedNoBroadcast struct {
	nodes  int
	ptrs   int
	policy VictimPolicy
	rng    *rand.Rand
}

// NewLimitedNoBroadcast returns a Dir_iNB scheme. The seed drives the
// random victim policy so runs are reproducible.
func NewLimitedNoBroadcast(ptrs, nodes int, policy VictimPolicy, seed int64) *LimitedNoBroadcast {
	if ptrs <= 0 || nodes <= 0 {
		panic("core: ptrs and nodes must be positive")
	}
	return &LimitedNoBroadcast{
		nodes:  nodes,
		ptrs:   ptrs,
		policy: policy,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Name implements Scheme.
func (s *LimitedNoBroadcast) Name() string { return fmt.Sprintf("Dir%dNB", s.ptrs) }

// Nodes implements Scheme.
func (s *LimitedNoBroadcast) Nodes() int { return s.nodes }

// BitsPerEntry implements Scheme: i pointers plus a dirty bit.
func (s *LimitedNoBroadcast) BitsPerEntry() int {
	return s.ptrs*log2ceil(s.nodes) + 1
}

// NewEntry implements Scheme.
func (s *LimitedNoBroadcast) NewEntry() Entry {
	return &noBroadcastEntry{s: s, ptrs: make([]NodeID, 0, s.ptrs)}
}

type noBroadcastEntry struct {
	s     *LimitedNoBroadcast
	ptrs  []NodeID // insertion order preserved except after random eviction
	dirty bool
	owner NodeID
}

func (e *noBroadcastEntry) AddSharer(n NodeID) []NodeID {
	if idIndex(e.ptrs, n) >= 0 {
		return nil
	}
	if len(e.ptrs) < cap(e.ptrs) {
		e.ptrs = append(e.ptrs, n)
		return nil
	}
	var k int
	switch e.s.policy {
	case VictimOldest:
		k = 0
	default:
		k = e.s.rng.Intn(len(e.ptrs))
	}
	victim := e.ptrs[k]
	// Preserve order for the FIFO policy by shifting.
	copy(e.ptrs[k:], e.ptrs[k+1:])
	e.ptrs[len(e.ptrs)-1] = n
	return []NodeID{victim}
}

func (e *noBroadcastEntry) RemoveSharer(n NodeID) {
	if k := idIndex(e.ptrs, n); k >= 0 {
		copy(e.ptrs[k:], e.ptrs[k+1:])
		e.ptrs = e.ptrs[:len(e.ptrs)-1]
	}
}

func (e *noBroadcastEntry) Sharers() bitset.Set {
	set := bitset.New(e.s.nodes)
	for _, p := range e.ptrs {
		set.Add(p)
	}
	return set
}

func (e *noBroadcastEntry) IsSharer(n NodeID) bool { return idIndex(e.ptrs, n) >= 0 }

func (e *noBroadcastEntry) Count() int { return len(e.ptrs) }

func (e *noBroadcastEntry) Dirty() bool { return e.dirty }

func (e *noBroadcastEntry) Owner() NodeID {
	if !e.dirty {
		return None
	}
	return e.owner
}

func (e *noBroadcastEntry) SetDirty(owner NodeID) {
	e.ptrs = append(e.ptrs[:0], owner)
	e.dirty = true
	e.owner = owner
}

func (e *noBroadcastEntry) ClearDirty() {
	e.dirty = false
	e.owner = None
}

func (e *noBroadcastEntry) Reset() {
	e.ptrs = e.ptrs[:0]
	e.dirty = false
	e.owner = None
}

func (e *noBroadcastEntry) Empty() bool { return !e.dirty && len(e.ptrs) == 0 }

func (e *noBroadcastEntry) Precise() bool { return true }

func (e *noBroadcastEntry) PopGrant() []NodeID {
	if len(e.ptrs) == 0 {
		return nil
	}
	n := e.ptrs[0]
	copy(e.ptrs, e.ptrs[1:])
	e.ptrs = e.ptrs[:len(e.ptrs)-1]
	return []NodeID{n}
}
