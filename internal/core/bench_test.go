package core

import "testing"

func benchAddSharer(b *testing.B, s Scheme) {
	b.ReportAllocs()
	n := s.Nodes()
	for i := 0; i < b.N; i++ {
		e := s.NewEntry()
		for j := 0; j < n; j++ {
			e.AddSharer(j % n)
		}
	}
}

func BenchmarkAddSharerFullVector(b *testing.B) { benchAddSharer(b, NewFullVector(64)) }
func BenchmarkAddSharerBroadcast(b *testing.B)  { benchAddSharer(b, NewLimitedBroadcast(3, 64)) }
func BenchmarkAddSharerNoBroadcast(b *testing.B) {
	benchAddSharer(b, NewLimitedNoBroadcast(3, 64, VictimRandom, 1))
}
func BenchmarkAddSharerSuperset(b *testing.B)     { benchAddSharer(b, NewSuperset(2, 64)) }
func BenchmarkAddSharerCoarseVector(b *testing.B) { benchAddSharer(b, NewCoarseVector(3, 4, 64)) }

func benchSharers(b *testing.B, s Scheme) {
	e := s.NewEntry()
	for j := 0; j < s.Nodes(); j += 3 {
		e.AddSharer(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += e.Sharers().Count()
	}
	_ = total
}

func BenchmarkSharersFullVector(b *testing.B)   { benchSharers(b, NewFullVector(64)) }
func BenchmarkSharersSuperset(b *testing.B)     { benchSharers(b, NewSuperset(2, 64)) }
func BenchmarkSharersCoarseVector(b *testing.B) { benchSharers(b, NewCoarseVector(3, 4, 64)) }
