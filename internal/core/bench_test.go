package core

import "testing"

func benchAddSharer(b *testing.B, s Scheme) {
	b.ReportAllocs()
	n := s.Nodes()
	for i := 0; i < b.N; i++ {
		e := s.NewEntry()
		for j := 0; j < n; j++ {
			e.AddSharer(j % n)
		}
	}
}

func BenchmarkAddSharerFullVector(b *testing.B) { benchAddSharer(b, Must(NewFullVector(64))) }
func BenchmarkAddSharerBroadcast(b *testing.B)  { benchAddSharer(b, Must(NewLimitedBroadcast(3, 64))) }
func BenchmarkAddSharerNoBroadcast(b *testing.B) {
	benchAddSharer(b, Must(NewLimitedNoBroadcast(3, 64, VictimRandom, 1)))
}
func BenchmarkAddSharerSuperset(b *testing.B)     { benchAddSharer(b, Must(NewSuperset(2, 64))) }
func BenchmarkAddSharerCoarseVector(b *testing.B) { benchAddSharer(b, Must(NewCoarseVector(3, 4, 64))) }
func BenchmarkAddSharerTwoLevel(b *testing.B)     { benchAddSharer(b, Must(NewTwoLevel(4, 8, 64))) }

func benchSharers(b *testing.B, s Scheme) {
	e := s.NewEntry()
	for j := 0; j < s.Nodes(); j += 3 {
		e.AddSharer(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += e.Sharers().Count()
	}
	_ = total
}

func BenchmarkSharersFullVector(b *testing.B)   { benchSharers(b, Must(NewFullVector(64))) }
func BenchmarkSharersSuperset(b *testing.B)     { benchSharers(b, Must(NewSuperset(2, 64))) }
func BenchmarkSharersCoarseVector(b *testing.B) { benchSharers(b, Must(NewCoarseVector(3, 4, 64))) }
func BenchmarkSharersTwoLevel(b *testing.B)     { benchSharers(b, Must(NewTwoLevel(4, 8, 64))) }

func BenchmarkSharersFullVector4096(b *testing.B) { benchSharers(b, Must(NewFullVector(4096))) }
func BenchmarkSharersTwoLevel4096(b *testing.B)   { benchSharers(b, Must(NewTwoLevel(4, 64, 4096))) }

// TestSharersAllocFree pins the scratch-view contract: after the first
// Sharers call allocates the per-entry scratch, every further call must
// be allocation-free at every machine size the schemes are built for —
// the per-call garbage this view replaced is what made large sweeps
// allocation-bound.
func TestSharersAllocFree(t *testing.T) {
	for _, nodes := range []int{64, 1024, 4096} {
		for _, s := range scaleSchemes(nodes) {
			e := s.NewEntry()
			for j := 0; j < nodes; j += 7 {
				e.AddSharer(j)
			}
			e.Sharers() // first call may allocate the scratch
			if n := testing.AllocsPerRun(50, func() { e.Sharers() }); n != 0 {
				t.Errorf("n=%d %s: Sharers allocates %.1f objects per call after warm-up", nodes, s.Name(), n)
			}
		}
	}
}
