package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dircoh/internal/bitset"
)

const testNodes = 32

// allSchemes returns one instance of every scheme, sized for n nodes.
func allSchemes(n int) []Scheme {
	return []Scheme{
		Must(NewFullVector(n)),
		Must(NewLimitedBroadcast(3, n)),
		Must(NewLimitedNoBroadcast(3, n, VictimRandom, 1)),
		Must(NewLimitedNoBroadcast(3, n, VictimOldest, 1)),
		Must(NewSuperset(2, n)),
		Must(NewCoarseVector(3, 2, n)),
		Must(NewCoarseVector(8, 4, n)),
		Must(NewTwoLevel(3, 4, n)),
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[string]Scheme{
		"Dir32":   Must(NewFullVector(32)),
		"Dir3B":   Must(NewLimitedBroadcast(3, 32)),
		"Dir3NB":  Must(NewLimitedNoBroadcast(3, 32, VictimRandom, 1)),
		"Dir2X":   Must(NewSuperset(2, 32)),
		"Dir3CV2": Must(NewCoarseVector(3, 2, 32)),
		"Dir8CV4": Must(NewCoarseVector(8, 4, 256)),
		"Dir16":   Must(NewFullVector(16)),
		"Dir12NB": Must(NewLimitedNoBroadcast(12, 64, VictimOldest, 1)),
	}
	for name, s := range want {
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
}

func TestBitsPerEntry(t *testing.T) {
	// Paper §3.1: DASH prototype, 16 clusters, full vector: 16+1 = 17 bits.
	if got := Must(NewFullVector(16)).BitsPerEntry(); got != 17 {
		t.Errorf("Dir16 bits = %d, want 17", got)
	}
	// §5: 32 nodes, 3 pointers of 5 bits each.
	if got := Must(NewLimitedNoBroadcast(3, 32, VictimRandom, 1)).BitsPerEntry(); got != 16 {
		t.Errorf("Dir3NB bits = %d, want 16", got)
	}
	if got := Must(NewLimitedBroadcast(3, 32)).BitsPerEntry(); got != 17 {
		t.Errorf("Dir3B bits = %d, want 17", got)
	}
	// Dir3CV2 at 32 nodes: max(15, 16) + 2 = 18.
	if got := Must(NewCoarseVector(3, 2, 32)).BitsPerEntry(); got != 18 {
		t.Errorf("Dir3CV2 bits = %d, want 18", got)
	}
	// Dir2X at 32 nodes: composite = 2*5 = pointer storage, +2.
	if got := Must(NewSuperset(2, 32)).BitsPerEntry(); got != 12 {
		t.Errorf("Dir2X bits = %d, want 12", got)
	}
}

func TestEmptyEntryInvariants(t *testing.T) {
	for _, s := range allSchemes(testNodes) {
		e := s.NewEntry()
		if !e.Empty() {
			t.Errorf("%s: new entry not empty", s.Name())
		}
		if e.Dirty() {
			t.Errorf("%s: new entry dirty", s.Name())
		}
		if e.Owner() != None {
			t.Errorf("%s: new entry has owner %d", s.Name(), e.Owner())
		}
		if e.Count() != 0 {
			t.Errorf("%s: new entry Count = %d", s.Name(), e.Count())
		}
		if !e.Precise() {
			t.Errorf("%s: new entry imprecise", s.Name())
		}
		if g := e.PopGrant(); g != nil {
			t.Errorf("%s: PopGrant on empty = %v", s.Name(), g)
		}
	}
}

func TestAddThenSharersContains(t *testing.T) {
	for _, s := range allSchemes(testNodes) {
		e := s.NewEntry()
		e.AddSharer(7)
		if !e.IsSharer(7) {
			t.Errorf("%s: 7 not a sharer after AddSharer", s.Name())
		}
		if !e.Sharers().Contains(7) {
			t.Errorf("%s: Sharers() missing 7", s.Name())
		}
		if e.Empty() {
			t.Errorf("%s: empty after AddSharer", s.Name())
		}
	}
}

func TestSetDirtyResetsToOwner(t *testing.T) {
	for _, s := range allSchemes(testNodes) {
		e := s.NewEntry()
		for n := 0; n < 10; n++ {
			e.AddSharer(n)
		}
		e.SetDirty(13)
		if !e.Dirty() || e.Owner() != 13 {
			t.Errorf("%s: Dirty/Owner wrong after SetDirty", s.Name())
		}
		sh := e.Sharers()
		if sh.Count() != 1 || !sh.Contains(13) {
			t.Errorf("%s: Sharers after SetDirty = %v, want {13}", s.Name(), sh)
		}
		if !e.Precise() {
			t.Errorf("%s: imprecise after SetDirty", s.Name())
		}
		e.ClearDirty()
		if e.Dirty() || e.Owner() != None {
			t.Errorf("%s: still dirty after ClearDirty", s.Name())
		}
		if !e.IsSharer(13) {
			t.Errorf("%s: former owner dropped by ClearDirty", s.Name())
		}
	}
}

func TestResetEmpties(t *testing.T) {
	for _, s := range allSchemes(testNodes) {
		e := s.NewEntry()
		for n := 0; n < testNodes; n++ {
			e.AddSharer(n)
		}
		e.SetDirty(3)
		e.Reset()
		if !e.Empty() || e.Dirty() || e.Count() != 0 {
			t.Errorf("%s: Reset did not empty entry", s.Name())
		}
	}
}

func TestFullVectorPrecision(t *testing.T) {
	s := Must(NewFullVector(testNodes))
	e := s.NewEntry()
	for n := 0; n < testNodes; n += 3 {
		e.AddSharer(n)
	}
	want := 0
	for n := 0; n < testNodes; n += 3 {
		want++
	}
	if e.Count() != want {
		t.Fatalf("Count = %d, want %d", e.Count(), want)
	}
	e.RemoveSharer(3)
	if e.IsSharer(3) {
		t.Fatal("RemoveSharer failed")
	}
	if !e.Precise() {
		t.Fatal("full vector must always be precise")
	}
}

func TestBroadcastOverflow(t *testing.T) {
	s := Must(NewLimitedBroadcast(3, testNodes))
	e := s.NewEntry()
	for n := 0; n < 3; n++ {
		e.AddSharer(n)
	}
	if !e.Precise() || e.Count() != 3 {
		t.Fatal("should still be precise with 3 sharers")
	}
	e.AddSharer(3) // overflow -> broadcast
	if e.Precise() {
		t.Fatal("should be imprecise after overflow")
	}
	if e.Count() != testNodes {
		t.Fatalf("broadcast Count = %d, want %d", e.Count(), testNodes)
	}
	for n := 0; n < testNodes; n++ {
		if !e.IsSharer(n) {
			t.Fatalf("node %d not in broadcast set", n)
		}
	}
	// Removal in broadcast mode is a no-op.
	e.RemoveSharer(5)
	if !e.IsSharer(5) {
		t.Fatal("RemoveSharer should be a no-op in broadcast mode")
	}
}

func TestNoBroadcastEviction(t *testing.T) {
	s := Must(NewLimitedNoBroadcast(3, testNodes, VictimOldest, 1))
	e := s.NewEntry()
	for n := 0; n < 3; n++ {
		if ev := e.AddSharer(n); ev != nil {
			t.Fatalf("unexpected eviction %v", ev)
		}
	}
	ev := e.AddSharer(10)
	if len(ev) != 1 || ev[0] != 0 {
		t.Fatalf("eviction = %v, want [0] (oldest)", ev)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d, want 3", e.Count())
	}
	if e.IsSharer(0) || !e.IsSharer(10) {
		t.Fatal("wrong sharers after eviction")
	}
	// NB never exceeds its pointer count.
	for n := 11; n < 20; n++ {
		e.AddSharer(n)
		if e.Count() > 3 {
			t.Fatalf("Count = %d exceeds pointers", e.Count())
		}
	}
}

func TestNoBroadcastRandomEvictionIsMember(t *testing.T) {
	s := Must(NewLimitedNoBroadcast(3, testNodes, VictimRandom, 42))
	e := s.NewEntry()
	members := map[NodeID]bool{}
	for n := 0; n < 3; n++ {
		e.AddSharer(n)
		members[n] = true
	}
	for n := 3; n < 30; n++ {
		ev := e.AddSharer(n)
		if len(ev) != 1 {
			t.Fatalf("want exactly one eviction, got %v", ev)
		}
		if !members[ev[0]] {
			t.Fatalf("evicted %d was not a member", ev[0])
		}
		delete(members, ev[0])
		members[n] = true
	}
}

func TestSupersetComposite(t *testing.T) {
	s := Must(NewSuperset(2, testNodes))
	e := s.NewEntry()
	e.AddSharer(0) // 00000
	e.AddSharer(1) // 00001
	if !e.Precise() {
		t.Fatal("precise with 2 sharers")
	}
	e.AddSharer(2) // 00010 -> overflow; X pattern 000XX => {0,1,2,3}
	if e.Precise() {
		t.Fatal("imprecise after overflow")
	}
	sh := e.Sharers()
	want := bitset.FromSlice(testNodes, []int{0, 1, 2, 3})
	if !sh.Equal(want) {
		t.Fatalf("Sharers = %v, want %v", sh, want)
	}
	// Adding a distant node explodes the candidate set.
	e.AddSharer(16) // 10000 -> pattern X00XX
	if got := e.Sharers().Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
}

func TestSupersetWorseOrEqualCoarse(t *testing.T) {
	// Figure 2b: Dir3X behaves almost like broadcast, much worse than CV.
	// Deterministically: for any sharer set, Dir2X candidates ⊇ sharers,
	// and typically |Dir2X| grows toward N much faster than |Dir3CV2|.
	rng := rand.New(rand.NewSource(7))
	xTotal, cvTotal := 0, 0
	for trial := 0; trial < 200; trial++ {
		x := Must(NewSuperset(2, 64)).NewEntry()
		cv := Must(NewCoarseVector(3, 2, 64)).NewEntry()
		for k := 0; k < 8; k++ {
			n := rng.Intn(64)
			x.AddSharer(n)
			cv.AddSharer(n)
		}
		xTotal += x.Count()
		cvTotal += cv.Count()
	}
	if xTotal <= cvTotal {
		t.Fatalf("expected superset scheme to send more invalidations: X=%d CV=%d", xTotal, cvTotal)
	}
}

func TestCoarseVectorRegions(t *testing.T) {
	s := Must(NewCoarseVector(3, 2, testNodes))
	e := s.NewEntry()
	e.AddSharer(0)
	e.AddSharer(5)
	e.AddSharer(9)
	if !e.Precise() || e.Count() != 3 {
		t.Fatal("precise with 3 sharers")
	}
	e.AddSharer(20) // overflow: regions {0,1},{4,5},{8,9},{20,21}
	if e.Precise() {
		t.Fatal("imprecise after overflow")
	}
	want := bitset.FromSlice(testNodes, []int{0, 1, 4, 5, 8, 9, 20, 21})
	if got := e.Sharers(); !got.Equal(want) {
		t.Fatalf("Sharers = %v, want %v", got, want)
	}
	// Coarse adds stay region-granular.
	e.AddSharer(31)
	if !e.IsSharer(30) || !e.IsSharer(31) {
		t.Fatal("region {30,31} should be covered")
	}
}

func TestCoarseVectorNeverWorseThanBroadcast(t *testing.T) {
	// §4.1: with all bits set the CV equals a broadcast; before that it is
	// strictly better. Check |CV targets| <= |B targets| for random adds.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		cv := Must(NewCoarseVector(3, 2, testNodes)).NewEntry()
		b := Must(NewLimitedBroadcast(3, testNodes)).NewEntry()
		k := 1 + rng.Intn(testNodes)
		for j := 0; j < k; j++ {
			n := rng.Intn(testNodes)
			cv.AddSharer(n)
			b.AddSharer(n)
		}
		if cv.Count() > b.Count() {
			t.Fatalf("CV=%d > B=%d after %d adds", cv.Count(), b.Count(), k)
		}
	}
}

func TestCoarseVectorOddRegion(t *testing.T) {
	// 10 nodes, region 3 -> regions {0-2},{3-5},{6-8},{9}.
	s := Must(NewCoarseVector(1, 3, 10))
	e := s.NewEntry()
	e.AddSharer(9)
	e.AddSharer(0) // overflow
	want := bitset.FromSlice(10, []int{0, 1, 2, 9})
	if got := e.Sharers(); !got.Equal(want) {
		t.Fatalf("Sharers = %v, want %v", got, want)
	}
	if e.Count() != 4 {
		t.Fatalf("Count = %d, want 4", e.Count())
	}
}

func TestPopGrantDrainsEntry(t *testing.T) {
	for _, s := range allSchemes(testNodes) {
		e := s.NewEntry()
		added := map[NodeID]bool{}
		for _, n := range []NodeID{2, 9, 17, 25, 30} {
			e.AddSharer(n)
			added[n] = true
		}
		seen := map[NodeID]bool{}
		for i := 0; i < 100; i++ {
			g := e.PopGrant()
			if g == nil {
				break
			}
			for _, n := range g {
				seen[n] = true
			}
		}
		if !e.Empty() && e.Count() != 0 {
			t.Errorf("%s: entry not drained by PopGrant", s.Name())
		}
		for n := range added {
			if !seen[n] {
				// NB may have evicted some sharers; eviction is allowed
				// to drop them from the grant set.
				if _, nb := s.(*LimitedNoBroadcast); nb {
					continue
				}
				t.Errorf("%s: added sharer %d never granted", s.Name(), n)
			}
		}
	}
}

func TestCoarsePopGrantReleasesOneRegion(t *testing.T) {
	s := Must(NewCoarseVector(3, 4, testNodes))
	e := s.NewEntry()
	for _, n := range []NodeID{0, 5, 10, 15} { // overflow into regions 0,1,2,3
		e.AddSharer(n)
	}
	g := e.PopGrant()
	if len(g) != 4 {
		t.Fatalf("grant = %v, want one region of 4", g)
	}
	for i, n := range []NodeID{0, 1, 2, 3} {
		if g[i] != n {
			t.Fatalf("grant = %v, want [0 1 2 3]", g)
		}
	}
}

// Property: for every scheme, the candidate set reported by Sharers is a
// superset of all sharers added (minus NB evictions and explicit removals
// honored precisely). This is the correctness invariant of the whole paper:
// invalidations must reach every cached copy.
func TestQuickSupersetInvariant(t *testing.T) {
	type op struct {
		node   uint8
		remove bool
	}
	f := func(rawOps []uint16) bool {
		for _, s := range allSchemes(testNodes) {
			e := s.NewEntry()
			tracked := bitset.New(testNodes) // what a precise directory would hold
			for _, raw := range rawOps {
				o := op{node: uint8(raw % testNodes), remove: raw&0x8000 != 0}
				n := NodeID(o.node)
				if o.remove {
					// Model a precise removal request: the entry may
					// ignore it, but if it honors it the tracked set
					// must drop it too only when the entry is precise.
					if e.Precise() {
						e.RemoveSharer(n)
						tracked.Remove(n)
					}
				} else {
					ev := e.AddSharer(n)
					tracked.Add(n)
					for _, v := range ev {
						tracked.Remove(v) // caller invalidates evictees
					}
				}
				if !e.Sharers().SupersetOf(tracked) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count always equals the cardinality of Sharers().
func TestQuickCountMatchesSharers(t *testing.T) {
	f := func(nodes []uint8) bool {
		for _, s := range allSchemes(testNodes) {
			e := s.NewEntry()
			for _, n := range nodes {
				e.AddSharer(NodeID(n % testNodes))
				if e.Count() != e.Sharers().Count() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the coarse vector candidate set is always a subset of the
// broadcast candidate set and a superset of the full-vector (true) set.
func TestQuickCVBetweenFullAndBroadcast(t *testing.T) {
	f := func(nodes []uint8) bool {
		full := Must(NewFullVector(testNodes)).NewEntry()
		cv := Must(NewCoarseVector(3, 2, testNodes)).NewEntry()
		b := Must(NewLimitedBroadcast(3, testNodes)).NewEntry()
		for _, raw := range nodes {
			n := NodeID(raw % testNodes)
			full.AddSharer(n)
			cv.AddSharer(n)
			b.AddSharer(n)
		}
		cvSet := cv.Sharers()
		return cvSet.SupersetOf(full.Sharers()) && b.Sharers().SupersetOf(cvSet)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { Must(NewFullVector(0)) },
		func() { Must(NewLimitedBroadcast(0, 4)) },
		func() { Must(NewLimitedNoBroadcast(2, 0, VictimRandom, 1)) },
		func() { Must(NewSuperset(-1, 4)) },
		func() { Must(NewCoarseVector(1, 0, 4)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestVictimPolicyString(t *testing.T) {
	if VictimRandom.String() != "random" || VictimOldest.String() != "oldest" {
		t.Fatal("VictimPolicy String broken")
	}
	if VictimPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 16: 4, 17: 5, 32: 5, 33: 6, 1024: 10}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
