package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dircoh/internal/bitset"
)

// refModel is the golden semantics every Entry must refine: the exact
// sharer set and dirty/owner state a perfect directory would keep.
type refModel struct {
	sharers map[NodeID]bool
	dirty   bool
	owner   NodeID
}

func newRefModel() *refModel {
	return &refModel{sharers: map[NodeID]bool{}, owner: None}
}

func (r *refModel) set(n int) bitset.Set {
	s := bitset.New(n)
	for k := range r.sharers {
		s.Add(k)
	}
	return s
}

// conformanceTrial drives one entry of s through steps random operations
// against the golden model and checks, after every step, the refinement
// obligations:
//
//  1. Sharers() ⊇ golden sharers (invalidation safety).
//  2. Dirty/Owner match the golden state exactly.
//  3. While Precise(), Sharers() == golden sharers exactly.
//  4. Empty() implies the golden state is empty.
func conformanceTrial(t *testing.T, s Scheme, rng *rand.Rand, steps int) {
	t.Helper()
	nodes := s.Nodes()
	e := s.NewEntry()
	ref := newRefModel()
	for step := 0; step < steps; step++ {
		n := NodeID(rng.Intn(nodes))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // read: add a sharer
			// The protocol downgrades a dirty entry before
			// adding sharers (serveRemoteRead); mirror it.
			if e.Dirty() {
				e.ClearDirty()
				ref.dirty = false
				ref.owner = None
			}
			ev := e.AddSharer(n)
			ref.sharers[n] = true
			for _, v := range ev {
				delete(ref.sharers, v)
			}
		case 5, 6, 7: // write: exclusive ownership
			e.SetDirty(n)
			ref.sharers = map[NodeID]bool{n: true}
			ref.dirty = true
			ref.owner = n
		case 8: // downgrade
			if e.Dirty() {
				e.ClearDirty()
				ref.dirty = false
				ref.owner = None
			}
		case 9: // precise removal
			if e.Precise() {
				e.RemoveSharer(n)
				delete(ref.sharers, n)
			}
		}
		if e.Dirty() != ref.dirty {
			t.Fatalf("step %d: Dirty = %v, golden %v", step, e.Dirty(), ref.dirty)
		}
		if ref.dirty && e.Owner() != ref.owner {
			t.Fatalf("step %d: Owner = %d, golden %d", step, e.Owner(), ref.owner)
		}
		golden := ref.set(nodes)
		if !e.Sharers().SupersetOf(golden) {
			t.Fatalf("step %d: Sharers %v not superset of golden %v",
				step, e.Sharers(), golden)
		}
		if e.Precise() && !e.Sharers().Equal(golden) {
			t.Fatalf("step %d: precise entry %v != golden %v",
				step, e.Sharers(), golden)
		}
		if e.Empty() && (len(ref.sharers) != 0 || ref.dirty) {
			t.Fatalf("step %d: Empty but golden has state", step)
		}
	}
}

// TestReferenceModelConformance drives every scheme through long random
// operation sequences against the golden model at a small machine size.
func TestReferenceModelConformance(t *testing.T) {
	const nodes = 24
	for _, s := range allSchemes(nodes) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 30; trial++ {
				conformanceTrial(t, s, rng, 200)
			}
		})
	}
}

// scaleSchemes is the large-machine differential roster: one scheme per
// compact-encoding family, with region sizes that track the machine (the
// adaptive two-level geometry and a matching coarse vector) so the packed
// representations are exercised at the widths they exist for.
func scaleSchemes(n int) []Scheme {
	r := AdaptiveRegion(n)
	return []Scheme{
		Must(NewFullVector(n)),
		Must(NewLimitedBroadcast(3, n)),
		Must(NewLimitedNoBroadcast(3, n, VictimOldest, 1)),
		Must(NewSuperset(2, n)),
		Must(NewCoarseVector(3, 2, n)),
		Must(NewCoarseVector(4, r, n)),
		Must(NewTwoLevel(4, r, n)),
		Must(MustParse("tl")(n)),
	}
}

// TestReferenceModelConformanceAtScale runs the same differential check
// at the beyond-64 sizes the compact encodings exist for. Fewer, shorter
// trials than the 24-node test: the point is width-dependent packing bugs
// (word boundaries, region arithmetic, pointer overflow at thousands of
// nodes), which surface early in a trial or not at all.
func TestReferenceModelConformanceAtScale(t *testing.T) {
	for _, nodes := range []int{64, 1024, 4096} {
		for _, s := range scaleSchemes(nodes) {
			s := s
			t.Run(fmt.Sprintf("n%d/%s", nodes, s.Name()), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(nodes)))
				for trial := 0; trial < 5; trial++ {
					conformanceTrial(t, s, rng, 150)
				}
			})
		}
	}
}

// TestReferenceModelPopGrantDrain checks that repeatedly popping grants
// from any representation eventually empties it and that every popped
// node was in the candidate set at pop time.
func TestReferenceModelPopGrantDrain(t *testing.T) {
	const nodes = 24
	rng := rand.New(rand.NewSource(9))
	for _, s := range allSchemes(nodes) {
		for trial := 0; trial < 20; trial++ {
			e := s.NewEntry()
			k := 1 + rng.Intn(nodes)
			for i := 0; i < k; i++ {
				e.AddSharer(NodeID(rng.Intn(nodes)))
			}
			for rounds := 0; rounds < nodes+2; rounds++ {
				before := e.Sharers()
				g := e.PopGrant()
				if g == nil {
					break
				}
				for _, n := range g {
					if !before.Contains(n) {
						t.Fatalf("%s: granted %d not in candidate set %v", s.Name(), n, before)
					}
				}
			}
			if e.Count() != 0 {
				t.Fatalf("%s: %d candidates left after full drain", s.Name(), e.Count())
			}
		}
	}
}
