// Package check is the runtime coherence oracle: an opt-in shadow of the
// simulated machine that asserts protocol invariants at every state
// transition instead of only at quiescence. The machine drives a Recorder
// with shadow bookkeeping (in-flight invalidations, outstanding
// acknowledgements, span trees) and reports each broken invariant as a
// structured Violation — counted under check.violation.* in the metrics
// registry and, when a Sink is attached, written as a JSONL record
// composable with the event-trace and span streams.
//
// The package deliberately knows nothing about the machine: it holds only
// the generic invariant state, so it stays always-compilable and testable
// on its own.
package check

import (
	"fmt"
	"io"
	"sync"
)

// Rule identifies one checked invariant class.
type Rule uint8

const (
	// RuleSingleWriter is single-writer/multiple-reader: a block is dirty
	// in at most one cache machine-wide, and a dirty copy excludes every
	// other copy.
	RuleSingleWriter Rule = iota
	// RuleCoverage is directory-entry/cache-state agreement: every actual
	// cacher outside the home cluster is covered by the home entry's
	// candidate sharer set (or recorded as the dirty owner).
	RuleCoverage
	// RuleRecall is sparse-recall completeness: when a reclaimed entry's
	// invalidations have all been acknowledged, no cluster outside the
	// home may still cache the victim block — unless the block was
	// re-allocated behind the recall's back, in which case the copy must
	// be covered by the current entry or by a still-pending later recall.
	RuleRecall
	// RuleAck is acknowledgement conservation: no double-ack, no lost
	// ack, and a drained fence sees exactly zero outstanding
	// acknowledgements.
	RuleAck
	// RuleProtocol is a Gate/RAC state-machine anomaly (ack on an
	// untracked block, unlock of a non-busy block, a double fence).
	RuleProtocol
	// RuleSpan is span-tree consistency: a transaction's synchronous
	// child spans must tile its root exactly, and every child needs a
	// root.
	RuleSpan
	// RuleAccounting is metric cross-checking: the checker's independent
	// extraneous-invalidation count must match dir.inval.extraneous.
	RuleAccounting
	// RuleLatency is cycle-delta sanity: a latency observation whose end
	// precedes its start (uint64 underflow on a tx.lat.* or read/write
	// latency pair).
	RuleLatency
	// RuleLiveness is forward progress: the liveness watchdog found a
	// processor stuck beyond its cycle budget (a transaction the recovery
	// machinery could not complete), or a run's event queue drained with
	// work remaining.
	RuleLiveness

	numRules
)

// NumRules is the number of invariant classes; rules are the contiguous
// range [0, NumRules).
const NumRules = int(numRules)

var ruleNames = [numRules]string{
	"single.writer", "dir.coverage", "recall", "ack",
	"protocol", "span.tiling", "accounting", "latency", "liveness",
}

func (r Rule) String() string {
	if r >= numRules {
		return fmt.Sprintf("Rule(%d)", int(r))
	}
	return ruleNames[r]
}

// MetricName returns the registry counter name for the rule,
// "check.violation.<rule>".
func (r Rule) MetricName() string { return "check.violation." + r.String() }

// Violation is one broken invariant, carrying enough transaction context
// to debug it: the offending rule, the open transaction on the block (0
// when none or unknown), the block and cluster, the simulation cycle, and
// a human-readable description of the offending transition.
type Violation struct {
	Rule   Rule
	Tx     uint64 // open transaction ID on the block, 0 if none
	Block  int64  // block number (or lock address), -1 when not block-scoped
	Node   int32  // offending cluster, -1 when machine-wide
	Cycle  uint64 // simulation cycle the violation was detected
	Detail string // the offending transition
}

// Error renders the violation as a one-line message, so a Violation can
// travel inside an error or a panic without losing context.
func (v Violation) Error() string {
	return fmt.Sprintf("check: %s violation at t=%d node=%d block=%d tx=%d: %s",
		v.Rule, v.Cycle, v.Node, v.Block, v.Tx, v.Detail)
}

// Sink consumes violation records. Implementations shared by concurrent
// recorders must serialize WriteViolation internally.
type Sink interface {
	WriteViolation(v Violation) error
}

// LineWriter is the single-line output contract the JSONL sink writes
// through; obs.JSONLSink implements it, so violation records interleave
// with event and span lines in one file under one lock.
type LineWriter interface {
	WriteLine(line string) error
}

// jsonlSink encodes each violation as one JSON object per line:
//
//	{"run":"LU/Dir32","check":"dir.coverage","t":412,"node":3,"block":97,"tx":12,"detail":"..."}
type jsonlSink struct {
	w   LineWriter
	run string
}

// NewJSONLSink returns a sink writing one JSON object per violation
// through w, tagged with the given run label (empty omits the field).
func NewJSONLSink(w LineWriter, run string) Sink {
	return &jsonlSink{w: w, run: run}
}

func (s *jsonlSink) WriteViolation(v Violation) error {
	if s.run != "" {
		return s.w.WriteLine(fmt.Sprintf(`{"run":%q,"check":%q,"t":%d,"node":%d,"block":%d,"tx":%d,"detail":%q}`,
			s.run, v.Rule.String(), v.Cycle, v.Node, v.Block, v.Tx, v.Detail))
	}
	return s.w.WriteLine(fmt.Sprintf(`{"check":%q,"t":%d,"node":%d,"block":%d,"tx":%d,"detail":%q}`,
		v.Rule.String(), v.Cycle, v.Node, v.Block, v.Tx, v.Detail))
}

// writerSink writes one line per violation straight to an io.Writer
// (unbuffered, so records survive an imminent abort), serialized for
// concurrent recorders.
type writerSink struct {
	mu  sync.Mutex
	w   io.Writer
	run string
}

// NewWriterSink returns a sink printing violations to w, one line each,
// prefixed with the run label when non-empty. It is the stderr default
// when -check is given without -check-out.
func NewWriterSink(w io.Writer, run string) Sink {
	return &writerSink{w: w, run: run}
}

func (s *writerSink) WriteViolation(v Violation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.run != "" {
		_, err := fmt.Fprintf(s.w, "%s: %s\n", s.run, v.Error())
		return err
	}
	_, err := fmt.Fprintln(s.w, v.Error())
	return err
}

// MemSink collects violations in memory, for tests.
type MemSink struct {
	mu         sync.Mutex
	Violations []Violation
}

// WriteViolation implements Sink.
func (s *MemSink) WriteViolation(v Violation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Violations = append(s.Violations, v)
	return nil
}
