package check

import "fmt"

// This file holds the invariant predicates as pure functions over a
// minimal, machine-independent view of one block's globally visible state.
// The runtime oracle (internal/machine) and the exhaustive model checker
// (internal/model) both call them, so a rule tightened for one is
// automatically tightened for the other, and the predicates get direct
// table-driven unit tests instead of being reachable only through full
// machine runs.

// CopyState is the MSI state of one cached copy as the predicates see it.
// The String forms match cache.State so violation messages are identical
// whichever layer built the view.
type CopyState uint8

const (
	// CopyInvalid means no copy (never appears in a Copy slice; it exists
	// so CopyState zero-values are explicit).
	CopyInvalid CopyState = iota
	// CopyShared is a clean copy.
	CopyShared
	// CopyDirty is the (supposedly unique) modified copy.
	CopyDirty
)

func (s CopyState) String() string {
	switch s {
	case CopyInvalid:
		return "I"
	case CopyShared:
		return "S"
	case CopyDirty:
		return "D"
	default:
		return fmt.Sprintf("CopyState(%d)", uint8(s))
	}
}

// Copy is one live cached copy of the block under test: which processor
// holds it, which cluster that processor belongs to, and the MSI state.
// Invalid lines are omitted from the slice, not listed.
type Copy struct {
	Proc    int
	Cluster int
	State   CopyState
}

// EntryView is the observable state of the block's home directory entry.
// Present false means the home has no entry at all (nil IsSharer is then
// allowed). IsSharer reports candidate-set membership for a cluster.
type EntryView struct {
	Present  bool
	Dirty    bool
	Owner    int
	IsSharer func(cluster int) bool
}

// Emit receives one violation: the offending cluster (-1 when
// machine-wide) and the human-readable detail.
type Emit func(cluster int, detail string)

// SingleWriter asserts the single-writer/multiple-reader invariant over
// the block's copies: at most one cache holds the block dirty, and a dirty
// copy excludes every other copy.
func SingleWriter(copies []Copy, emit Emit) {
	dirty, dirtyCl := -1, -1
	for _, c := range copies {
		if c.State != CopyDirty {
			continue
		}
		if dirty >= 0 {
			emit(c.Cluster, fmt.Sprintf("block dirty in procs %d and %d at once", dirty, c.Proc))
		}
		dirty, dirtyCl = c.Proc, c.Cluster
	}
	if dirty >= 0 && len(copies) > 1 {
		emit(dirtyCl, fmt.Sprintf("proc %d holds the block dirty while %d other caches keep copies",
			dirty, len(copies)-1))
	}
}

// Coverage asserts directory-entry/cache-state agreement: every copy
// cached outside the home cluster must be covered by the home entry —
// recorded as a candidate sharer or as the dirty owner — and a remote
// dirty copy must be recorded as exactly the dirty owner. Home-cluster
// copies need no entry, and over-recording (stale sharer bits, coarse
// regions, broadcast sets) is the protocol's documented slack, so only
// under-recording is flagged.
func Coverage(home int, copies []Copy, e EntryView, emit Emit) {
	for _, c := range copies {
		if c.Cluster == home {
			continue
		}
		if !e.Present {
			emit(c.Cluster, fmt.Sprintf("proc %d (cluster %d) caches the block but the home directory has no entry",
				c.Proc, c.Cluster))
			continue
		}
		if !e.IsSharer(c.Cluster) && !(e.Dirty && e.Owner == c.Cluster) {
			emit(c.Cluster, fmt.Sprintf("proc %d (cluster %d) caches the block but is neither a recorded sharer nor the dirty owner",
				c.Proc, c.Cluster))
		}
		if c.State == CopyDirty && !(e.Dirty && e.Owner == c.Cluster) {
			emit(c.Cluster, fmt.Sprintf("proc %d holds the block dirty but the directory does not record cluster %d as owner",
				c.Proc, c.Cluster))
		}
	}
}

// RecallClean asserts sparse-recall completeness at the moment a
// replacement recall's last acknowledgement arrives: no cluster outside
// the home may still cache the victim block, unless the copy is covered by
// the current entry (the block was re-allocated behind the recall's back
// by a request replayed off the gate). Callers are responsible for the
// still-pending-overlapping-recall and invalidation-in-flight exemptions,
// which depend on bookkeeping the pure view does not carry.
func RecallClean(home int, copies []Copy, e EntryView, emit Emit) {
	for _, c := range copies {
		if c.Cluster == home {
			continue
		}
		if e.Present && (e.IsSharer(c.Cluster) || (e.Dirty && e.Owner == c.Cluster)) {
			continue
		}
		emit(c.Cluster, fmt.Sprintf("replacement recall completed but proc %d (cluster %d) still caches the victim (%v) with no covering entry or pending recall",
			c.Proc, c.Cluster, c.State))
	}
}
