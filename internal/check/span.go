package check

import "dircoh/internal/obs"

// txSpans accumulates one transaction's span tree for the tiling check:
// the synchronous children must partition [root.Start, root.End] exactly,
// in emission order, and every child needs a root — the same contract
// cmd/tracelens verifies offline, re-checked here live so a span-emission
// bug is caught in the run that introduces it.
type txSpans struct {
	class      obs.TxClass
	rootSeen   bool
	firstStart uint64 // start of the first synchronous child
	cursor     uint64 // end of the last synchronous child
	sync       int    // synchronous children seen
	ackSeen    bool   // an asynchronous ack.gather child already arrived
	waitAck    bool   // an asynchronous ack.gather child is still due
}

// Span feeds one emitted span to the tiling verifier. The machine funnels
// every span through here (including when span output is discarded), so
// the cross-check runs whenever the checker is enabled.
func (r *Recorder) Span(s obs.Span) {
	if s.End < s.Start {
		r.Violationf(RuleSpan, s.Node, s.Block, s.End,
			"span %d (%s/%s) ends at %d before it starts at %d", s.ID, s.Class, s.Phase, s.End, s.Start)
		return
	}
	if s.Phase == obs.PhRecovery {
		// Recovery episodes are free-floating annotations under the fault
		// model: any number may occur per transaction, before or after the
		// root, so they take no part in the tiling or the async-ack
		// bookkeeping below (which assumes exactly one owed ack.gather).
		return
	}
	tx := r.spanTx[s.Tx]
	if tx == nil {
		tx = &txSpans{class: s.Class}
		r.spanTx[s.Tx] = tx
	}
	if s.Parent == 0 { // root span
		if tx.rootSeen {
			r.Violationf(RuleSpan, s.Node, s.Block, s.End, "transaction %d emitted two root spans", s.Tx)
			return
		}
		tx.rootSeen = true
		if tx.sync > 0 && (tx.firstStart != s.Start || tx.cursor != s.End) {
			r.Violationf(RuleSpan, s.Node, s.Block, s.End,
				"transaction %d (%s) children tile [%d,%d] but root covers [%d,%d]",
				s.Tx, s.Class, tx.firstStart, tx.cursor, s.Start, s.End)
		}
		// Non-eviction transactions with fan-out owe an asynchronous
		// ack.gather child that may land after the root.
		if s.N > 0 && s.Class != obs.TxEvict && !tx.ackSeen {
			tx.waitAck = true
			return
		}
		delete(r.spanTx, s.Tx)
		return
	}
	if s.Phase.Async(s.Class) {
		// Asynchronous child: it overlaps the root rather than tiling it.
		if tx.rootSeen {
			delete(r.spanTx, s.Tx) // the awaited ack.gather arrived
		} else {
			tx.ackSeen = true // arrived before the root; nothing more owed
		}
		return
	}
	if tx.rootSeen {
		r.Violationf(RuleSpan, s.Node, s.Block, s.End,
			"transaction %d emitted a synchronous %s child after its root", s.Tx, s.Phase)
		return
	}
	if tx.sync == 0 {
		tx.firstStart = s.Start
	} else if s.Start != tx.cursor {
		r.Violationf(RuleSpan, s.Node, s.Block, s.End,
			"transaction %d phase %s starts at %d but the previous phase ended at %d (gap or overlap)",
			s.Tx, s.Phase, s.Start, tx.cursor)
	}
	tx.cursor = s.End
	tx.sync++
}

// finishSpans reports transactions whose span trees never completed.
func (r *Recorder) finishSpans(cycle uint64) {
	for id, tx := range r.spanTx {
		switch {
		case !tx.rootSeen:
			r.Violationf(RuleSpan, -1, -1, cycle,
				"transaction %d (%s) emitted %d child spans but no root (orphaned transaction)", id, tx.class, tx.sync)
		case tx.waitAck:
			r.Violationf(RuleSpan, -1, -1, cycle,
				"transaction %d (%s) ended without its ack.gather span (lost acknowledgements)", id, tx.class)
		}
	}
}
