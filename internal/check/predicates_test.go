package check

import (
	"strings"
	"testing"
)

// collect runs pred and returns the emitted details, tagged with the
// offending cluster, as "c<cluster>: <detail>" lines.
func collect(pred func(Emit)) []string {
	var out []string
	pred(func(cluster int, detail string) {
		out = append(out, strings.Join([]string{clusterTag(cluster), detail}, ": "))
	})
	return out
}

func clusterTag(c int) string {
	switch c {
	case 0:
		return "c0"
	case 1:
		return "c1"
	case 2:
		return "c2"
	case 3:
		return "c3"
	default:
		return "c?"
	}
}

// maskEntry builds an EntryView whose candidate set is the given cluster
// bitmask.
func maskEntry(dirty bool, owner int, mask uint) EntryView {
	return EntryView{
		Present:  true,
		Dirty:    dirty,
		Owner:    owner,
		IsSharer: func(c int) bool { return mask&(1<<uint(c)) != 0 },
	}
}

func TestSingleWriter(t *testing.T) {
	cases := []struct {
		name   string
		copies []Copy
		want   []string
	}{
		{name: "empty", copies: nil, want: nil},
		{name: "one shared", copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}}, want: nil},
		{name: "many shared", copies: []Copy{
			{Proc: 0, Cluster: 0, State: CopyShared},
			{Proc: 1, Cluster: 1, State: CopyShared},
			{Proc: 2, Cluster: 2, State: CopyShared},
		}, want: nil},
		{name: "lone dirty", copies: []Copy{{Proc: 2, Cluster: 2, State: CopyDirty}}, want: nil},
		{name: "two dirty", copies: []Copy{
			{Proc: 0, Cluster: 0, State: CopyDirty},
			{Proc: 3, Cluster: 3, State: CopyDirty},
		}, want: []string{
			"c3: block dirty in procs 0 and 3 at once",
			"c3: proc 3 holds the block dirty while 1 other caches keep copies",
		}},
		{name: "dirty plus shared", copies: []Copy{
			{Proc: 1, Cluster: 1, State: CopyDirty},
			{Proc: 2, Cluster: 2, State: CopyShared},
		}, want: []string{
			"c1: proc 1 holds the block dirty while 1 other caches keep copies",
		}},
		{name: "three dirty", copies: []Copy{
			{Proc: 0, Cluster: 0, State: CopyDirty},
			{Proc: 1, Cluster: 1, State: CopyDirty},
			{Proc: 2, Cluster: 2, State: CopyDirty},
		}, want: []string{
			"c1: block dirty in procs 0 and 1 at once",
			"c2: block dirty in procs 1 and 2 at once",
			"c2: proc 2 holds the block dirty while 2 other caches keep copies",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(func(emit Emit) { SingleWriter(tc.copies, emit) })
			assertDetails(t, got, tc.want)
		})
	}
}

func TestCoverage(t *testing.T) {
	cases := []struct {
		name   string
		home   int
		copies []Copy
		entry  EntryView
		want   []string
	}{
		{name: "home copy needs no entry", home: 0,
			copies: []Copy{{Proc: 0, Cluster: 0, State: CopyDirty}},
			entry:  EntryView{}, want: nil},
		{name: "remote copy no entry", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}},
			entry:  EntryView{},
			want:   []string{"c1: proc 1 (cluster 1) caches the block but the home directory has no entry"}},
		{name: "remote copy covered as sharer", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}},
			entry:  maskEntry(false, -1, 0b10), want: nil},
		{name: "remote copy covered by over-recording superset", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}},
			entry:  maskEntry(false, -1, 0b1110), want: nil},
		{name: "remote copy uncovered", home: 0,
			copies: []Copy{{Proc: 2, Cluster: 2, State: CopyShared}},
			entry:  maskEntry(false, -1, 0b10),
			want:   []string{"c2: proc 2 (cluster 2) caches the block but is neither a recorded sharer nor the dirty owner"}},
		{name: "remote dirty recorded owner", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyDirty}},
			entry:  maskEntry(true, 1, 0), want: nil},
		{name: "remote dirty recorded only as sharer", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyDirty}},
			entry:  maskEntry(false, -1, 0b10),
			want:   []string{"c1: proc 1 holds the block dirty but the directory does not record cluster 1 as owner"}},
		{name: "remote dirty wrong owner", home: 0,
			copies: []Copy{{Proc: 2, Cluster: 2, State: CopyDirty}},
			entry:  maskEntry(true, 1, 0),
			want: []string{
				"c2: proc 2 (cluster 2) caches the block but is neither a recorded sharer nor the dirty owner",
				"c2: proc 2 holds the block dirty but the directory does not record cluster 2 as owner",
			}},
		{name: "mixed home and remote", home: 1,
			copies: []Copy{
				{Proc: 1, Cluster: 1, State: CopyShared},
				{Proc: 2, Cluster: 2, State: CopyShared},
			},
			entry: maskEntry(false, -1, 0b100), want: nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(func(emit Emit) { Coverage(tc.home, tc.copies, tc.entry, emit) })
			assertDetails(t, got, tc.want)
		})
	}
}

func TestRecallClean(t *testing.T) {
	cases := []struct {
		name   string
		home   int
		copies []Copy
		entry  EntryView
		want   []string
	}{
		{name: "no survivors", home: 0, copies: nil, entry: EntryView{}, want: nil},
		{name: "home survivor is fine", home: 0,
			copies: []Copy{{Proc: 0, Cluster: 0, State: CopyDirty}},
			entry:  EntryView{}, want: nil},
		{name: "orphaned remote shared", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}},
			entry:  EntryView{},
			want:   []string{"c1: replacement recall completed but proc 1 (cluster 1) still caches the victim (S) with no covering entry or pending recall"}},
		{name: "orphaned remote dirty", home: 0,
			copies: []Copy{{Proc: 2, Cluster: 2, State: CopyDirty}},
			entry:  EntryView{},
			want:   []string{"c2: replacement recall completed but proc 2 (cluster 2) still caches the victim (D) with no covering entry or pending recall"}},
		{name: "survivor covered by re-allocated entry", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyShared}},
			entry:  maskEntry(false, -1, 0b10), want: nil},
		{name: "survivor covered as fresh dirty owner", home: 0,
			copies: []Copy{{Proc: 1, Cluster: 1, State: CopyDirty}},
			entry:  maskEntry(true, 1, 0), want: nil},
		{name: "fresh entry covering someone else", home: 0,
			copies: []Copy{{Proc: 2, Cluster: 2, State: CopyShared}},
			entry:  maskEntry(false, -1, 0b10),
			want:   []string{"c2: replacement recall completed but proc 2 (cluster 2) still caches the victim (S) with no covering entry or pending recall"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(func(emit Emit) { RecallClean(tc.home, tc.copies, tc.entry, emit) })
			assertDetails(t, got, tc.want)
		})
	}
}

func TestCopyStateString(t *testing.T) {
	// The recall message embeds the state; the short forms must match
	// cache.State's so machine- and model-built views read the same.
	for st, want := range map[CopyState]string{
		CopyInvalid: "I", CopyShared: "S", CopyDirty: "D", CopyState(9): "CopyState(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("CopyState(%d).String() = %q, want %q", uint8(st), got, want)
		}
	}
}

func assertDetails(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d violations, want %d:\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("violation %d:\n got: %s\nwant: %s", i, got[i], want[i])
		}
	}
}
