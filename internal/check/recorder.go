package check

import (
	"fmt"

	"dircoh/internal/obs"
)

// maxStored bounds the violations a Recorder keeps in memory; every
// violation is still counted and written to the sink.
const maxStored = 64

// Recorder accumulates the shadow state the invariant checks need and
// records violations. A Recorder belongs to exactly one machine (it is
// single-writer, like the machine's metrics registry); the machine calls
// the bookkeeping methods from its protocol transitions and the check
// methods after each transition settles.
type Recorder struct {
	sink    Sink
	ctr     [numRules]*obs.Counter
	stored  []Violation
	total   uint64
	sinkErr error // sticky first sink error

	// inflight counts invalidations dispatched but not yet applied, per
	// block. While a block has in-flight invalidations its invariants are
	// legitimately in transition and the per-block checks stand down.
	inflight map[int64]int

	// acks shadows each processor's outstanding invalidation
	// acknowledgements, maintained independently from the machine's own
	// count so the two can be cross-checked at fences and at the end of
	// the run.
	acks map[int]int

	// extra is the checker's independent recount of extraneous
	// invalidations (directed invalidations that found no copy), compared
	// against the dir.inval.extraneous counter when the run finishes.
	extra uint64

	// openTx maps a block to the most recently opened transaction on it,
	// giving violations best-effort transaction context (concurrent
	// transactions on one block — e.g. two read misses from different
	// clusters — keep only the latest).
	openTx map[int64]uint64

	// spanTx tracks the span tree of every transaction for the tiling
	// cross-check.
	spanTx map[uint64]*txSpans

	// Scratch buffer reused by the machine's per-block cache scans.
	Scratch []int32
}

// NewRecorder returns a recorder registering its violation counters in
// reg (nil creates a private registry) and writing records to sink (nil
// counts violations without writing records).
func NewRecorder(reg *obs.Registry, sink Sink) *Recorder {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Recorder{
		sink:     sink,
		inflight: make(map[int64]int),
		acks:     make(map[int]int),
		openTx:   make(map[int64]uint64),
		spanTx:   make(map[uint64]*txSpans),
	}
	for i := range r.ctr {
		r.ctr[i] = reg.Counter(Rule(i).MetricName())
	}
	return r
}

// Record counts one violation and writes it to the sink.
func (r *Recorder) Record(v Violation) {
	r.total++
	r.ctr[v.Rule].Inc()
	if len(r.stored) < maxStored {
		r.stored = append(r.stored, v)
	}
	if r.sink != nil {
		if err := r.sink.WriteViolation(v); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
}

// Violationf records a violation with a formatted detail.
func (r *Recorder) Violationf(rule Rule, node int32, block int64, cycle uint64, format string, args ...any) {
	r.Record(Violation{
		Rule: rule, Tx: r.openTx[block], Block: block, Node: node,
		Cycle: cycle, Detail: fmt.Sprintf(format, args...),
	})
}

// Count returns the total number of violations recorded.
func (r *Recorder) Count() uint64 { return r.total }

// Violations returns the stored violations (capped at an internal limit;
// Count reports the true total).
func (r *Recorder) Violations() []Violation { return r.stored }

// SinkErr returns the first sink write error, if any.
func (r *Recorder) SinkErr() error { return r.sinkErr }

// InvalSent records n invalidations dispatched for block.
func (r *Recorder) InvalSent(block int64, n int) {
	if n > 0 {
		r.inflight[block] += n
	}
}

// InvalApplied records one invalidation arriving (and being applied, or
// deliberately dropped by fault injection) at its target for block.
func (r *Recorder) InvalApplied(block int64, cycle uint64) {
	n := r.inflight[block]
	if n <= 0 {
		r.Violationf(RuleAck, -1, block, cycle, "invalidation applied with none in flight")
		return
	}
	if n == 1 {
		delete(r.inflight, block)
	} else {
		r.inflight[block] = n - 1
	}
}

// Inflight returns the number of in-flight invalidations for block.
func (r *Recorder) Inflight(block int64) int { return r.inflight[block] }

// AckExpect shadows proc gaining n outstanding acknowledgements.
func (r *Recorder) AckExpect(proc, n int) {
	if n > 0 {
		r.acks[proc] += n
	}
}

// AckArrived shadows one acknowledgement arriving at proc; a count going
// negative is a double-ack.
func (r *Recorder) AckArrived(proc int, cycle uint64) {
	r.acks[proc]--
	if r.acks[proc] < 0 {
		r.Violationf(RuleAck, -1, -1, cycle, "proc %d acknowledged more invalidations than were sent", proc)
		r.acks[proc] = 0
	}
}

// Drained cross-checks a release-consistency fence: the machine believes
// proc's acknowledgements have fully drained; the shadow count must agree.
func (r *Recorder) Drained(proc int, cycle uint64) {
	if n := r.acks[proc]; n != 0 {
		r.Violationf(RuleAck, -1, -1, cycle, "fence drained with %d acknowledgements still outstanding for proc %d", n, proc)
		r.acks[proc] = 0
	}
}

// ExtraInval records one extraneous invalidation found by the checker's
// independent pre-scan.
func (r *Recorder) ExtraInval() { r.extra++ }

// OpenTx associates block with a newly opened transaction.
func (r *Recorder) OpenTx(block int64, tx uint64) { r.openTx[block] = tx }

// CloseTx clears block's transaction association if tx is still current.
func (r *Recorder) CloseTx(block int64, tx uint64) {
	if r.openTx[block] == tx {
		delete(r.openTx, block)
	}
}

// TxOf returns the open transaction on block, or 0.
func (r *Recorder) TxOf(block int64) uint64 { return r.openTx[block] }

// Finish runs the end-of-run checks: no invalidation still in flight, no
// acknowledgement lost, the extraneous-invalidation recount matching the
// machine's counter, and no unterminated span trees. extraneous is the
// machine's dir.inval.extraneous counter value; cycle is the final cycle.
func (r *Recorder) Finish(extraneous, cycle uint64) {
	for b, n := range r.inflight {
		r.Violationf(RuleAck, -1, b, cycle, "%d invalidations still in flight at end of run", n)
	}
	for p, n := range r.acks {
		if n > 0 {
			r.Violationf(RuleAck, -1, -1, cycle, "proc %d finished with %d acknowledgements never received (lost ack)", p, n)
		}
	}
	if r.extra != extraneous {
		r.Violationf(RuleAccounting, -1, -1, cycle,
			"dir.inval.extraneous=%d but the checker counted %d", extraneous, r.extra)
	}
	r.finishSpans(cycle)
}
