package check

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dircoh/internal/obs"
)

func TestRuleNamesAndMetrics(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumRules; i++ {
		r := Rule(i)
		name := r.String()
		if name == "" || strings.HasPrefix(name, "Rule(") {
			t.Errorf("rule %d has no name", i)
		}
		if seen[name] {
			t.Errorf("duplicate rule name %q", name)
		}
		seen[name] = true
		if got, want := r.MetricName(), "check.violation."+name; got != want {
			t.Errorf("MetricName() = %q, want %q", got, want)
		}
	}
	if got := Rule(200).String(); got != "Rule(200)" {
		t.Errorf("out-of-range rule: %q", got)
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Rule: RuleCoverage, Tx: 12, Block: 97, Node: 3, Cycle: 412, Detail: "stale copy"}
	msg := v.Error()
	for _, want := range []string{"dir.coverage", "t=412", "node=3", "block=97", "tx=12", "stale copy"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

// lineBuf implements LineWriter, collecting lines.
type lineBuf struct {
	lines []string
	err   error
}

func (b *lineBuf) WriteLine(line string) error {
	if b.err != nil {
		return b.err
	}
	b.lines = append(b.lines, line)
	return nil
}

func TestJSONLSink(t *testing.T) {
	buf := &lineBuf{}
	s := NewJSONLSink(buf, "LU/Dir32")
	v := Violation{Rule: RuleRecall, Tx: 7, Block: 5, Node: 1, Cycle: 99, Detail: `quoted "detail"`}
	if err := s.WriteViolation(v); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Run    string `json:"run"`
		Check  string `json:"check"`
		T      uint64 `json:"t"`
		Node   int32  `json:"node"`
		Block  int64  `json:"block"`
		Tx     uint64 `json:"tx"`
		Detail string `json:"detail"`
	}
	if err := json.Unmarshal([]byte(buf.lines[0]), &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v\n%s", err, buf.lines[0])
	}
	if rec.Run != "LU/Dir32" || rec.Check != "recall" || rec.T != 99 ||
		rec.Node != 1 || rec.Block != 5 || rec.Tx != 7 || rec.Detail != `quoted "detail"` {
		t.Fatalf("bad record: %+v", rec)
	}

	// Empty run label omits the field entirely.
	buf2 := &lineBuf{}
	if err := NewJSONLSink(buf2, "").WriteViolation(v); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.lines[0], `"run"`) {
		t.Fatalf("empty run label should omit the field: %s", buf2.lines[0])
	}
}

func TestWriterSink(t *testing.T) {
	var sb strings.Builder
	s := NewWriterSink(&sb, "MP3D/full")
	if err := s.WriteViolation(Violation{Rule: RuleAck, Detail: "lost ack"}); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); !strings.HasPrefix(got, "MP3D/full: check: ack") || !strings.Contains(got, "lost ack") {
		t.Fatalf("writer sink line: %q", got)
	}
}

func TestRecorderCountersAndCap(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(reg, nil)
	for i := 0; i < maxStored+10; i++ {
		r.Violationf(RuleSingleWriter, 0, int64(i), uint64(i), "v%d", i)
	}
	if r.Count() != uint64(maxStored+10) {
		t.Fatalf("Count = %d, want %d", r.Count(), maxStored+10)
	}
	if len(r.Violations()) != maxStored {
		t.Fatalf("stored %d violations, cap is %d", len(r.Violations()), maxStored)
	}
	if got := reg.Counter(RuleSingleWriter.MetricName()).Value(); got != uint64(maxStored+10) {
		t.Fatalf("registry counter = %d, want %d", got, maxStored+10)
	}
}

func TestRecorderStickySinkErr(t *testing.T) {
	buf := &lineBuf{err: errors.New("disk full")}
	r := NewRecorder(nil, NewJSONLSink(buf, ""))
	r.Violationf(RuleProtocol, -1, -1, 0, "first")
	buf.err = fmt.Errorf("second error")
	r.Violationf(RuleProtocol, -1, -1, 0, "second")
	if r.SinkErr() == nil || r.SinkErr().Error() != "disk full" {
		t.Fatalf("SinkErr = %v, want the first error to stick", r.SinkErr())
	}
}

func TestInvalBookkeeping(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.InvalSent(9, 2)
	if r.Inflight(9) != 2 {
		t.Fatalf("Inflight = %d, want 2", r.Inflight(9))
	}
	r.InvalApplied(9, 10)
	r.InvalApplied(9, 11)
	if r.Inflight(9) != 0 || r.Count() != 0 {
		t.Fatalf("drain should be clean: inflight=%d count=%d", r.Inflight(9), r.Count())
	}
	// An application with none in flight is an ack-conservation violation.
	r.InvalApplied(9, 12)
	if r.Count() != 1 || r.Violations()[0].Rule != RuleAck {
		t.Fatalf("unexpected violations: %v", r.Violations())
	}
	// Non-positive sends are ignored, not stored as zero entries.
	r.InvalSent(10, 0)
	if r.Inflight(10) != 0 {
		t.Fatal("zero send must not track")
	}
}

func TestAckBookkeeping(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.AckExpect(2, 2)
	r.AckArrived(2, 5)
	r.Drained(2, 6) // one still outstanding: violation
	if r.Count() != 1 || !strings.Contains(r.Violations()[0].Detail, "1 acknowledgements") {
		t.Fatalf("expected a premature-drain violation, got %v", r.Violations())
	}
	// Drained resets the shadow count; a further ack is now a double-ack.
	r.AckArrived(2, 7)
	if r.Count() != 2 || !strings.Contains(r.Violations()[1].Detail, "more invalidations than were sent") {
		t.Fatalf("expected a double-ack violation, got %v", r.Violations())
	}
}

func TestFinishChecks(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.InvalSent(3, 1) // never applied
	r.AckExpect(1, 2) // never acknowledged
	r.ExtraInval()    // checker counted 1, machine will claim 5
	r.Finish(5, 1000)
	var rules []Rule
	for _, v := range r.Violations() {
		rules = append(rules, v.Rule)
	}
	want := map[Rule]int{RuleAck: 2, RuleAccounting: 1}
	got := map[Rule]int{}
	for _, ru := range rules {
		got[ru]++
	}
	for ru, n := range want {
		if got[ru] != n {
			t.Fatalf("Finish violations by rule: got %v, want %v (all: %v)", got, want, r.Violations())
		}
	}
}

func TestOpenTxContext(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.OpenTx(4, 17)
	r.Violationf(RuleCoverage, 0, 4, 50, "while tx open")
	if r.Violations()[0].Tx != 17 {
		t.Fatalf("violation should carry the open tx, got %d", r.Violations()[0].Tx)
	}
	r.CloseTx(4, 16) // stale close: must not clear tx 17
	if r.TxOf(4) != 17 {
		t.Fatal("stale CloseTx cleared a newer transaction")
	}
	r.CloseTx(4, 17)
	if r.TxOf(4) != 0 {
		t.Fatal("CloseTx did not clear")
	}
}

// span returns a well-formed span for the tiling tests.
func span(tx uint64, parent uint64, phase obs.Phase, start, end uint64) obs.Span {
	return obs.Span{Tx: tx, ID: tx*10 + uint64(phase), Parent: parent, Class: obs.TxWrite,
		Phase: phase, Start: start, End: end}
}

func TestSpanTilingClean(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.Span(span(1, 0o1, obs.PhReqTravel, 10, 14))
	r.Span(span(1, 0o1, obs.PhDirWait, 14, 20))
	r.Span(span(1, 0o1, obs.PhReplyTravel, 20, 26))
	root := span(1, 0, obs.PhTotal, 10, 26)
	r.Span(root)
	r.Finish(0, 100)
	if r.Count() != 0 {
		t.Fatalf("clean tiling flagged: %v", r.Violations())
	}
}

func TestSpanViolations(t *testing.T) {
	cases := []struct {
		name string
		feed func(r *Recorder)
		want string
	}{
		{"end before start", func(r *Recorder) {
			r.Span(span(1, 0, obs.PhTotal, 10, 5))
		}, "before it starts"},
		{"gap between children", func(r *Recorder) {
			r.Span(span(1, 01, obs.PhReqTravel, 10, 14))
			r.Span(span(1, 01, obs.PhDirWait, 16, 20)) // gap at 14..16
		}, "gap or overlap"},
		{"children don't tile root", func(r *Recorder) {
			r.Span(span(1, 01, obs.PhReqTravel, 10, 14))
			r.Span(span(1, 0, obs.PhTotal, 10, 26))
		}, "children tile"},
		// A completed tree is forgotten, so duplicate-root and
		// child-after-root are only detectable while the tx still owes its
		// asynchronous ack.gather child (root.N > 0).
		{"two roots", func(r *Recorder) {
			root := span(1, 0, obs.PhTotal, 10, 26)
			root.N = 2
			r.Span(root)
			r.Span(root)
		}, "two root spans"},
		{"sync child after root", func(r *Recorder) {
			root := span(1, 0, obs.PhTotal, 10, 26)
			root.N = 2
			r.Span(root)
			r.Span(span(1, 01, obs.PhReqTravel, 10, 26))
		}, "after its root"},
		{"orphaned children", func(r *Recorder) {
			r.Span(span(1, 01, obs.PhReqTravel, 10, 14))
			r.Finish(0, 100)
		}, "no root"},
		{"lost ack.gather", func(r *Recorder) {
			root := span(1, 0, obs.PhTotal, 10, 26)
			root.N = 2 // fan-out: owes an async ack.gather child
			r.Span(root)
			r.Finish(0, 100)
		}, "without its ack.gather"},
	}
	for _, tc := range cases {
		r := NewRecorder(nil, nil)
		tc.feed(r)
		found := false
		for _, v := range r.Violations() {
			if v.Rule == RuleSpan && strings.Contains(v.Detail, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no span violation containing %q (got %v)", tc.name, tc.want, r.Violations())
		}
	}
}

// TestSpanAckGatherOrder: the asynchronous ack.gather child may land
// before or after the root; both orders complete the tree cleanly.
func TestSpanAckGatherOrder(t *testing.T) {
	for _, ackFirst := range []bool{true, false} {
		r := NewRecorder(nil, nil)
		root := span(1, 0, obs.PhTotal, 10, 26)
		root.N = 2
		ack := span(1, 01, obs.PhAckGather, 12, 40)
		if ackFirst {
			r.Span(ack)
			r.Span(root)
		} else {
			r.Span(root)
			r.Span(ack)
		}
		r.Finish(0, 100)
		if r.Count() != 0 {
			t.Fatalf("ackFirst=%v: clean ack.gather flagged: %v", ackFirst, r.Violations())
		}
	}
}
