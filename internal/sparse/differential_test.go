package sparse

import (
	"math/rand"
	"testing"

	"dircoh/internal/core"
)

// refDir is an independently written brute-force model of the sparse
// directory's storage semantics: per-set slot arrays, first-free-slot
// installation, and the three victim policies with lowest-index
// tie-breaking. The differential tests drive it in lockstep with Sparse
// and require every observable — hit/miss, victim identity, occupancy —
// to agree. For Random it consumes an identically seeded rng, which
// stays in sync exactly when the eviction decisions coincide.
type refDir struct {
	sets, assoc int
	policy      ReplacePolicy
	rng         *rand.Rand
	slots       [][]refSlot
	live, peak  int
}

type refSlot struct {
	valid          bool
	block          int64
	lastUse, birth uint64
}

func newRefDir(entries, assoc int, policy ReplacePolicy, seed int64) *refDir {
	if assoc <= 0 {
		assoc = 1
	}
	sets := (entries + assoc - 1) / assoc
	d := &refDir{sets: sets, assoc: assoc, policy: policy, rng: rand.New(rand.NewSource(seed))}
	d.slots = make([][]refSlot, sets)
	for i := range d.slots {
		d.slots[i] = make([]refSlot, assoc)
	}
	return d
}

func (d *refDir) set(block int64) []refSlot {
	return d.slots[int(uint64(block)%uint64(d.sets))]
}

func (d *refDir) find(block int64) *refSlot {
	set := d.set(block)
	for i := range set {
		if set[i].valid && set[i].block == block {
			return &set[i]
		}
	}
	return nil
}

// lookup returns whether block is live, touching recency like Lookup.
func (d *refDir) lookup(block int64, now uint64) bool {
	if s := d.find(block); s != nil {
		s.lastUse = now
		return true
	}
	return false
}

// allocate returns (hit, evicted victim block or -1).
func (d *refDir) allocate(block int64, now uint64) (bool, int64) {
	if s := d.find(block); s != nil {
		s.lastUse = now
		return true, -1
	}
	set := d.set(block)
	slot := -1
	for i := range set {
		if !set[i].valid {
			slot = i
			break
		}
	}
	victim := int64(-1)
	if slot < 0 {
		slot = 0
		for i := 1; i < len(set); i++ {
			switch d.policy {
			case LRA:
				if set[i].birth < set[slot].birth {
					slot = i
				}
			case LRU:
				if set[i].lastUse < set[slot].lastUse {
					slot = i
				}
			}
		}
		if d.policy == Random {
			slot = d.rng.Intn(len(set))
		}
		victim = set[slot].block
	} else {
		d.live++
		if d.live > d.peak {
			d.peak = d.live
		}
	}
	set[slot] = refSlot{valid: true, block: block, lastUse: now, birth: now}
	return false, victim
}

func (d *refDir) release(block int64) {
	if s := d.find(block); s != nil {
		s.valid = false
		d.live--
	}
}

// step drives one operation against both directories and fails on any
// observable divergence. Returns the evicted block (or -1).
func step(t *testing.T, d *Sparse, ref *refDir, op int, block int64, now uint64) int64 {
	t.Helper()
	switch op {
	case 0: // Lookup
		got := d.Lookup(block, now) != nil
		want := ref.lookup(block, now)
		if got != want {
			t.Fatalf("t=%d Lookup(%d): hit=%v, reference says %v", now, block, got, want)
		}
	case 1: // Allocate
		gotHit := d.Peek(block) != nil
		e, v := d.Allocate(block, now)
		wantHit, wantVictim := ref.allocate(block, now)
		if gotHit != wantHit {
			t.Fatalf("t=%d Allocate(%d): hit=%v, reference says %v", now, block, gotHit, wantHit)
		}
		if e == nil {
			t.Fatalf("t=%d Allocate(%d) returned nil entry", now, block)
		}
		gotVictim := int64(-1)
		if v != nil {
			gotVictim = v.Block
		}
		if gotVictim != wantVictim {
			t.Fatalf("t=%d Allocate(%d) policy=%v: evicted %d, reference evicts %d",
				now, block, d.policy, gotVictim, wantVictim)
		}
		if v != nil && d.Peek(v.Block) != nil {
			t.Fatalf("t=%d evicted block %d still present", now, v.Block)
		}
		if d.Peek(block) == nil {
			t.Fatalf("t=%d Allocate(%d) left the block absent", now, block)
		}
		return gotVictim
	default: // Release
		d.Release(block)
		ref.release(block)
	}
	if got, want := d.Peek(block) != nil, ref.find(block) != nil; got != want {
		t.Fatalf("t=%d Peek(%d)=%v, reference says %v", now, block, got, want)
	}
	if d.LiveEntries() != ref.live {
		t.Fatalf("t=%d live=%d, reference says %d", now, d.LiveEntries(), ref.live)
	}
	return -1
}

// TestDifferentialVictimSelection runs long random op streams against
// every policy × geometry and requires Sparse and the brute-force
// reference to agree on every hit, miss, victim, and occupancy count.
// Repeated timestamps force lastUse/allocTime ties, exercising the
// lowest-index tie-break.
func TestDifferentialVictimSelection(t *testing.T) {
	for _, pol := range []ReplacePolicy{LRU, Random, LRA} {
		for _, geo := range []struct{ entries, assoc int }{{4, 1}, {8, 2}, {16, 4}, {6, 4}} {
			for seed := int64(0); seed < 4; seed++ {
				d := New(Config{Scheme: scheme(), Entries: geo.entries, Assoc: geo.assoc, Policy: pol, Seed: seed})
				ref := newRefDir(geo.entries, geo.assoc, pol, seed)
				rng := rand.New(rand.NewSource(seed*977 + int64(pol)))
				now := uint64(0)
				for i := 0; i < 4000; i++ {
					if rng.Intn(3) > 0 { // ties on ~1/3 of steps
						now++
					}
					block := int64(rng.Intn(5 * geo.entries))
					step(t, d, ref, rng.Intn(4)%3, block, now)
				}
				if d.PeakEntries() != ref.peak {
					t.Fatalf("policy=%v geo=%+v seed=%d: peak=%d, reference says %d",
						pol, geo, seed, d.PeakEntries(), ref.peak)
				}
			}
		}
	}
}

// FuzzSparseAlloc feeds byte-driven op streams through the same
// differential harness, letting the fuzzer hunt for sequences where
// Sparse and the reference model disagree.
func FuzzSparseAlloc(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x87, 0x13, 0xff, 0x00, 0x55, 0xaa}, uint8(0), uint8(7))
	f.Add([]byte{0x10, 0x20, 0x30, 0x40}, uint8(1), uint8(3))
	f.Add([]byte{0xee, 0xdd, 0xcc}, uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, ops []byte, polByte, geoByte uint8) {
		pol := ReplacePolicy(polByte % 3)
		entries := 2 + int(geoByte%15)
		assoc := 1 << (geoByte % 3)
		d := New(Config{Scheme: core.Must(core.NewFullVector(8)), Entries: entries, Assoc: assoc, Policy: pol, Seed: 1})
		ref := newRefDir(entries, assoc, pol, 1)
		now := uint64(0)
		for i, b := range ops {
			if b&0x80 != 0 {
				now++
			}
			block := int64(b & 0x1f)
			step(t, d, ref, (int(b)>>5)&0x3, block, now)
			if d.LiveEntries() > d.Entries() {
				t.Fatalf("op %d: live %d exceeds capacity %d", i, d.LiveEntries(), d.Entries())
			}
		}
	})
}
