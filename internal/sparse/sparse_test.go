package sparse

import (
	"testing"
	"testing/quick"

	"dircoh/internal/core"
)

func scheme() core.Scheme { return core.Must(core.NewFullVector(16)) }

func TestFullMapLookupAllocate(t *testing.T) {
	d := NewFullMap(scheme(), nil)
	if d.Lookup(5, 0) != nil {
		t.Fatal("Lookup on empty map should return nil")
	}
	e, v := d.Allocate(5, 0)
	if e == nil || v != nil {
		t.Fatal("Allocate should create entry without victim")
	}
	e.AddSharer(3)
	e2 := d.Lookup(5, 1)
	if e2 != e {
		t.Fatal("Lookup should return the same entry")
	}
	e3, _ := d.Allocate(5, 2)
	if e3 != e {
		t.Fatal("Allocate should return the existing entry")
	}
	d.Release(5)
	if d.Lookup(5, 3) != nil {
		t.Fatal("entry should be gone after Release")
	}
	if d.Entries() != 0 {
		t.Fatal("FullMap should report unbounded entries")
	}
	st := d.Stats()
	if st.Allocations != 1 || st.Replacements != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSparseBasicAllocate(t *testing.T) {
	d := New(Config{Scheme: scheme(), Entries: 8, Assoc: 2, Policy: LRU})
	if d.Entries() != 8 {
		t.Fatalf("Entries = %d, want 8", d.Entries())
	}
	e, v := d.Allocate(100, 1)
	if e == nil || v != nil {
		t.Fatal("first allocation should not evict")
	}
	if got := d.Lookup(100, 2); got != e {
		t.Fatal("Lookup should find the allocated entry")
	}
	if d.Lookup(101, 2) != nil {
		t.Fatal("Lookup of absent block should return nil")
	}
	if d.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", d.Occupancy())
	}
}

func TestSparseConflictEviction(t *testing.T) {
	// 4 sets, assoc 1: blocks 0, 4, 8 all map to set 0.
	d := New(Config{Scheme: scheme(), Entries: 4, Assoc: 1, Policy: LRU})
	e0, _ := d.Allocate(0, 1)
	e0.AddSharer(2)
	_, v := d.Allocate(4, 2)
	if v == nil {
		t.Fatal("conflicting allocation should evict")
	}
	if v.Block != 0 {
		t.Fatalf("victim block = %d, want 0", v.Block)
	}
	if !v.Entry.IsSharer(2) {
		t.Fatal("victim entry should carry its sharing state")
	}
	if d.Lookup(0, 3) != nil {
		t.Fatal("evicted block should be gone")
	}
	if d.Stats().Replacements != 1 {
		t.Fatalf("Replacements = %d, want 1", d.Stats().Replacements)
	}
}

func TestSparseLRUVictim(t *testing.T) {
	// 1 set, assoc 4. Touch order decides the victim.
	d := New(Config{Scheme: scheme(), Entries: 4, Assoc: 4, Policy: LRU})
	for i, b := range []int64{10, 20, 30, 40} {
		d.Allocate(b, uint64(i+1))
	}
	d.Lookup(10, 10) // 10 is now most recent; 20 is LRU
	_, v := d.Allocate(50, 11)
	if v == nil || v.Block != 20 {
		t.Fatalf("victim = %+v, want block 20", v)
	}
}

func TestSparseLRAVictim(t *testing.T) {
	d := New(Config{Scheme: scheme(), Entries: 4, Assoc: 4, Policy: LRA})
	for i, b := range []int64{10, 20, 30, 40} {
		d.Allocate(b, uint64(i+1))
	}
	// Touching 10 must NOT save it under LRA: allocation time rules.
	d.Lookup(10, 10)
	_, v := d.Allocate(50, 11)
	if v == nil || v.Block != 10 {
		t.Fatalf("victim = %+v, want block 10 (oldest allocation)", v)
	}
}

func TestSparseRandomVictimIsValidAndDeterministic(t *testing.T) {
	run := func() []int64 {
		d := New(Config{Scheme: scheme(), Entries: 4, Assoc: 4, Policy: Random, Seed: 99})
		for i, b := range []int64{10, 20, 30, 40} {
			d.Allocate(b, uint64(i+1))
		}
		var victims []int64
		for i, b := range []int64{50, 60, 70} {
			_, v := d.Allocate(b, uint64(10+i))
			if v == nil {
				return nil
			}
			victims = append(victims, v.Block)
		}
		return victims
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("expected evictions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic for equal seeds")
		}
	}
}

func TestSparseRelease(t *testing.T) {
	d := New(Config{Scheme: scheme(), Entries: 2, Assoc: 2, Policy: LRU})
	d.Allocate(1, 1)
	d.Allocate(3, 2)
	d.Release(1)
	if d.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", d.Occupancy())
	}
	// Freed slot is reused without eviction.
	_, v := d.Allocate(5, 3)
	if v != nil {
		t.Fatal("allocation into freed slot should not evict")
	}
	// Releasing an absent block is harmless.
	d.Release(999)
}

func TestSparseEntriesRounding(t *testing.T) {
	d := New(Config{Scheme: scheme(), Entries: 7, Assoc: 4, Policy: LRU})
	if d.Entries() != 8 {
		t.Fatalf("Entries = %d, want rounded to 8", d.Entries())
	}
	if d.Assoc() != 4 {
		t.Fatalf("Assoc = %d, want 4", d.Assoc())
	}
}

func TestSparseZeroAssocDefaultsToDirect(t *testing.T) {
	d := New(Config{Scheme: scheme(), Entries: 4, Policy: LRU})
	if d.Assoc() != 1 {
		t.Fatalf("Assoc = %d, want 1", d.Assoc())
	}
}

func TestNewPanics(t *testing.T) {
	for i, cfg := range []Config{
		{Scheme: nil, Entries: 4},
		{Scheme: scheme(), Entries: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || Random.String() != "Rand" || LRA.String() != "LRA" {
		t.Fatal("policy names wrong")
	}
	if ReplacePolicy(7).String() == "" {
		t.Fatal("unknown policy should render")
	}
}

// Property: the sparse directory never holds more than Entries live
// entries, never holds two entries for one block, and every Lookup after
// an un-evicted Allocate hits.
func TestQuickSparseInvariants(t *testing.T) {
	f := func(blocks []int16, assocRaw uint8) bool {
		assoc := 1 << (assocRaw % 3) // 1, 2, 4
		d := New(Config{Scheme: scheme(), Entries: 16, Assoc: assoc, Policy: LRU})
		live := map[int64]bool{}
		for i, braw := range blocks {
			b := int64(braw & 0x3f)
			_, v := d.Allocate(b, uint64(i))
			if v != nil {
				if v.Block == b {
					return false // must never evict the block being allocated
				}
				delete(live, v.Block)
			}
			live[b] = true
			if d.Lookup(b, uint64(i)) == nil {
				return false
			}
			if d.Occupancy() > d.Entries() || d.Occupancy() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats are consistent — hits <= lookups, replacements <= allocations.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(blocks []int16) bool {
		d := New(Config{Scheme: scheme(), Entries: 8, Assoc: 2, Policy: Random, Seed: 5})
		for i, braw := range blocks {
			d.Allocate(int64(braw&0xff), uint64(i))
		}
		st := d.Stats()
		return st.Hits <= st.Lookups && st.Replacements <= st.Allocations &&
			st.Allocations <= st.Lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
