package sparse

import (
	"testing"
	"testing/quick"

	"dircoh/internal/bitset"
	"dircoh/internal/core"
)

func overflowDir() *Overflow {
	return NewOverflow(OverflowConfig{Ptrs: 2, Nodes: 16, WideEntries: 2, Assoc: 1, Policy: LRU})
}

func TestOverflowSmallEntryLifecycle(t *testing.T) {
	d := overflowDir()
	if d.Lookup(5, 0) != nil {
		t.Fatal("empty directory should miss")
	}
	e, v := d.Allocate(5, 1)
	if e == nil || v != nil {
		t.Fatal("allocate should create a small entry without victims")
	}
	e.AddSharer(3)
	e.AddSharer(7)
	if !e.Precise() || e.Count() != 2 {
		t.Fatalf("small entry state wrong: count=%d", e.Count())
	}
	if d.Overflows() != 0 {
		t.Fatal("no overflow expected")
	}
	if got := d.Lookup(5, 2); got != e {
		t.Fatal("lookup should return the same entry")
	}
	d.Release(5)
	if d.Lookup(5, 3) != nil {
		t.Fatal("release should remove the entry")
	}
}

func TestOverflowMigration(t *testing.T) {
	d := overflowDir()
	e, _ := d.Allocate(5, 1)
	e.AddSharer(1)
	e.AddSharer(2)
	e.AddSharer(3) // third sharer: overflow into the wide cache
	if d.Overflows() != 1 {
		t.Fatalf("Overflows = %d, want 1", d.Overflows())
	}
	want := bitset.FromSlice(16, []int{1, 2, 3})
	if got := e.Sharers(); !got.Equal(want) {
		t.Fatalf("Sharers = %v, want %v", got, want)
	}
	// Wide entries are full vectors: still precise, removals work.
	if !e.Precise() {
		t.Fatal("wide entry should be precise")
	}
	e.AddSharer(9)
	e.RemoveSharer(2)
	if e.IsSharer(2) || !e.IsSharer(9) {
		t.Fatal("wide entry mutation broken")
	}
	if len(d.TakeVictims()) != 0 {
		t.Fatal("no victims while the wide cache has room")
	}
}

func TestOverflowWideVictim(t *testing.T) {
	// Wide cache has 2 direct-mapped slots; three overflowing blocks with
	// colliding slots produce a victim.
	d := NewOverflow(OverflowConfig{Ptrs: 1, Nodes: 8, WideEntries: 1, Assoc: 1, Policy: LRU})
	a, _ := d.Allocate(10, 1)
	a.AddSharer(1)
	a.AddSharer(2) // overflows into the only wide slot
	b, _ := d.Allocate(11, 2)
	b.AddSharer(3)
	b.AddSharer(4) // overflow evicts block 10's wide entry
	victims := d.TakeVictims()
	if len(victims) != 1 || victims[0].Block != 10 {
		t.Fatalf("victims = %+v, want block 10", victims)
	}
	if !victims[0].Entry.IsSharer(1) || !victims[0].Entry.IsSharer(2) {
		t.Fatal("victim entry lost its sharer state")
	}
	// Block 10 is gone from the directory entirely (its state will be
	// discarded after the invalidations, like any sparse victim).
	if d.Lookup(10, 3) != nil {
		t.Fatal("victim block should have been dropped")
	}
	if d.Lookup(11, 3) == nil {
		t.Fatal("block 11 should hold the wide slot now")
	}
	// Victims are drained exactly once.
	if len(d.TakeVictims()) != 0 {
		t.Fatal("victims should clear after TakeVictims")
	}
}

func TestOverflowDemotionOnWrite(t *testing.T) {
	d := overflowDir()
	e, _ := d.Allocate(5, 1)
	for _, n := range []int{1, 2, 3, 4} {
		e.AddSharer(n)
	}
	if d.Overflows() != 1 {
		t.Fatal("expected overflow")
	}
	e.SetDirty(7)
	if d.Demotions() != 1 {
		t.Fatalf("Demotions = %d, want 1", d.Demotions())
	}
	if !e.Dirty() || e.Owner() != 7 || e.Count() != 1 {
		t.Fatal("dirty state wrong after demotion")
	}
	// The freed wide slot is reusable without victims.
	f, _ := d.Allocate(6, 2)
	for _, n := range []int{1, 2, 3} {
		f.AddSharer(n)
	}
	g, _ := d.Allocate(7, 3)
	for _, n := range []int{4, 5, 6} {
		g.AddSharer(n)
	}
	if len(d.TakeVictims()) != 0 {
		t.Fatalf("two wide slots should fit both overflows")
	}
}

func TestOverflowResetReleasesWideSlot(t *testing.T) {
	d := NewOverflow(OverflowConfig{Ptrs: 1, Nodes: 8, WideEntries: 1, Assoc: 1, Policy: LRU})
	e, _ := d.Allocate(10, 1)
	e.AddSharer(1)
	e.AddSharer(2)
	e.Reset()
	if !e.Empty() {
		t.Fatal("entry should be empty after Reset")
	}
	// The wide slot must be free again.
	f, _ := d.Allocate(11, 2)
	f.AddSharer(3)
	f.AddSharer(4)
	if len(d.TakeVictims()) != 0 {
		t.Fatal("Reset should have freed the wide slot")
	}
}

func TestOverflowPopGrant(t *testing.T) {
	d := overflowDir()
	e, _ := d.Allocate(5, 1)
	for _, n := range []int{1, 2, 3, 4} {
		e.AddSharer(n)
	}
	seen := map[int]bool{}
	for {
		g := e.PopGrant()
		if g == nil {
			break
		}
		for _, n := range g {
			seen[n] = true
		}
	}
	for _, n := range []int{1, 2, 3, 4} {
		if !seen[n] {
			t.Fatalf("sharer %d never granted", n)
		}
	}
}

func TestOverflowStats(t *testing.T) {
	d := overflowDir()
	d.Allocate(1, 1)
	d.Lookup(1, 2)
	d.Lookup(2, 2)
	st := d.Stats()
	if st.Lookups != 3 || st.Hits != 1 || st.Allocations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Entries() != 2 {
		t.Fatalf("Entries = %d, want wide capacity 2", d.Entries())
	}
}

func TestOverflowConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOverflow(OverflowConfig{Ptrs: 0, Nodes: 8, WideEntries: 1})
}

// Property: the overflow directory never loses a sharer — every node added
// since the entry's creation (without intervening SetDirty/Reset or a
// wide-cache eviction of that block) is reported by Sharers.
func TestQuickOverflowSupersetInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		d := NewOverflow(OverflowConfig{Ptrs: 2, Nodes: 16, WideEntries: 4, Assoc: 2, Policy: LRU})
		tracked := map[int64]bitset.Set{}
		now := uint64(0)
		for _, op := range ops {
			now++
			block := int64(op % 8)
			node := core.NodeID((op >> 3) % 16)
			e, _ := d.Allocate(block, now)
			e.AddSharer(node)
			set, ok := tracked[block]
			if !ok {
				set = bitset.New(16)
				tracked[block] = set
			}
			set.Add(node)
			// Wide-cache victims lose their state legitimately.
			for _, v := range d.TakeVictims() {
				delete(tracked, v.Block)
			}
			for b, want := range tracked {
				le := d.Lookup(b, now)
				if le == nil {
					return false
				}
				if !le.Sharers().SupersetOf(want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
