package sparse

import (
	"fmt"

	"dircoh/internal/bitset"
	"dircoh/internal/core"
	"dircoh/internal/obs"
)

// Overflow implements the §7 alternative the paper sketches for future
// work ("associate small directory entries with each memory block and
// allow these to overflow into a small cache of much wider entries"):
// every memory block owns a small limited-pointer entry; a block whose
// sharer set outgrows the pointers migrates into a small set-associative
// cache of full-bit-vector entries. If the wide cache must evict a victim
// to make room, the victim block's cached copies are invalidated exactly
// like a sparse-directory replacement — the victims surface through
// TakeVictims, which the machine drains after every directory operation.
type Overflow struct {
	smallScheme core.Scheme // limited-pointer representation (per block)
	wideScheme  core.Scheme // full-vector representation (cached)
	ptrs        int
	entries     map[int64]*ovEntry
	wide        *Sparse
	pending     []*Victim
	now         uint64
	peak        int
	m           dirMetrics
	overflows   *obs.Counter
	demotions   *obs.Counter
}

// OverflowConfig configures an Overflow directory.
type OverflowConfig struct {
	Ptrs        int // pointers in each small per-block entry
	Nodes       int // directory width (clusters)
	WideEntries int // slots in the wide-entry cache
	Assoc       int // wide cache associativity
	Policy      ReplacePolicy
	Seed        int64
	Metrics     *obs.Registry // nil creates a private registry
}

// Validate checks the configuration for every error NewOverflow would
// otherwise panic over, mirroring Config.Validate.
func (cfg OverflowConfig) Validate() error {
	if cfg.Ptrs <= 0 {
		return fmt.Errorf("sparse: Overflow Ptrs must be positive (got %d)", cfg.Ptrs)
	}
	if cfg.Nodes <= 0 {
		return fmt.Errorf("sparse: Overflow Nodes must be positive (got %d)", cfg.Nodes)
	}
	if cfg.WideEntries <= 0 {
		return fmt.Errorf("sparse: Overflow WideEntries must be positive (got %d)", cfg.WideEntries)
	}
	return nil
}

// NewOverflow builds the two-level directory.
func NewOverflow(cfg OverflowConfig) *Overflow {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	wideScheme := core.Must(core.NewFullVector(cfg.Nodes))
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &Overflow{
		smallScheme: core.Must(core.NewLimitedNoBroadcast(cfg.Ptrs, cfg.Nodes, core.VictimOldest, cfg.Seed)),
		wideScheme:  wideScheme,
		ptrs:        cfg.Ptrs,
		entries:     make(map[int64]*ovEntry),
		m:           newDirMetrics(reg),
		overflows:   reg.Counter("dir.overflow"),
		demotions:   reg.Counter("dir.demotion"),
		wide: New(Config{
			Scheme:  wideScheme,
			Entries: cfg.WideEntries,
			Assoc:   max(cfg.Assoc, 1),
			Policy:  cfg.Policy,
			Seed:    cfg.Seed,
			// The wide cache keeps a private registry: its recency
			// refreshes are internal bookkeeping, not directory lookups,
			// and must not pollute the shared dir.* counters.
		}),
	}
	// Wide-cache evictions ARE this directory's replacements, though: route
	// them to the shared "sparse.evict" counter.
	d.wide.m.evicts = d.m.evicts
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Lookup implements Directory.
func (d *Overflow) Lookup(block int64, now uint64) core.Entry {
	d.now = now
	d.m.lookups.Inc()
	e, ok := d.entries[block]
	if !ok {
		return nil
	}
	d.m.hits.Inc()
	if e.wideE != nil {
		d.wide.Lookup(block, now) // refresh recency in the wide cache
	}
	return e
}

// Peek implements Directory.
func (d *Overflow) Peek(block int64) core.Entry {
	if e, ok := d.entries[block]; ok {
		return e
	}
	return nil
}

// Allocate implements Directory. Small entries are backed by main memory,
// so allocation never evicts directly; wide-cache victims appear later via
// TakeVictims when a migration displaces one.
func (d *Overflow) Allocate(block int64, now uint64) (core.Entry, *Victim) {
	d.now = now
	d.m.lookups.Inc()
	if e, ok := d.entries[block]; ok {
		d.m.hits.Inc()
		if e.wideE != nil {
			d.wide.Lookup(block, now)
		}
		return e, nil
	}
	d.m.allocs.Inc()
	e := &ovEntry{d: d, block: block, small: d.smallScheme.NewEntry()}
	d.entries[block] = e
	if len(d.entries) > d.peak {
		d.peak = len(d.entries)
	}
	return e, nil
}

// Release implements Directory.
func (d *Overflow) Release(block int64) {
	if e, ok := d.entries[block]; ok {
		if e.wideE != nil {
			d.wide.Release(block)
		}
		delete(d.entries, block)
	}
}

// Entries implements Directory: the bounded storage is the wide cache.
func (d *Overflow) Entries() int { return d.wide.Entries() }

// PeakEntries implements Directory: peak live per-block entries.
func (d *Overflow) PeakEntries() int { return d.peak }

// LiveEntries implements Directory: currently live per-block entries.
func (d *Overflow) LiveEntries() int { return len(d.entries) }

// Stats implements Directory. Replacements are the wide cache's evictions,
// which route to this directory's "sparse.evict" counter.
func (d *Overflow) Stats() Stats { return d.m.stats() }

// Overflows returns how many small entries migrated to wide entries.
func (d *Overflow) Overflows() uint64 { return d.overflows.Value() }

// Demotions returns how many wide entries collapsed back to small ones
// (on writes, when the sharer set shrinks to one owner).
func (d *Overflow) Demotions() uint64 { return d.demotions.Value() }

// TakeVictims returns and clears the wide-cache victims produced by
// migrations since the last call. The caller must invalidate their cached
// copies, exactly as for sparse-directory replacements.
func (d *Overflow) TakeVictims() []*Victim {
	v := d.pending
	d.pending = nil
	return v
}

// ovEntry is the per-block view: a small limited-pointer representation
// that transparently migrates to a wide cached entry on pointer overflow.
type ovEntry struct {
	d     *Overflow
	block int64
	small core.Entry // active when wideE == nil
	wideE core.Entry
}

func (e *ovEntry) active() core.Entry {
	if e.wideE != nil {
		return e.wideE
	}
	return e.small
}

func (e *ovEntry) AddSharer(n core.NodeID) []core.NodeID {
	if e.wideE != nil {
		return e.wideE.AddSharer(n)
	}
	if e.small.IsSharer(n) || e.small.Count() < e.d.ptrs {
		return e.small.AddSharer(n)
	}
	// Pointer overflow: migrate into the wide cache.
	e.d.overflows.Inc()
	w, victim := e.d.wide.Allocate(e.block, e.d.now)
	if victim != nil {
		// A different block lost its wide entry; its whole sharing
		// state is discarded after invalidation, like a sparse victim.
		if ve, ok := e.d.entries[victim.Block]; ok && ve.wideE == victim.Entry {
			delete(e.d.entries, victim.Block)
		}
		e.d.pending = append(e.d.pending, victim)
	}
	e.small.Sharers().ForEach(func(s int) { w.AddSharer(s) })
	w.AddSharer(n)
	e.wideE = w
	e.small = nil
	return nil
}

func (e *ovEntry) RemoveSharer(n core.NodeID) { e.active().RemoveSharer(n) }

func (e *ovEntry) Sharers() bitset.Set { return e.active().Sharers() }

func (e *ovEntry) IsSharer(n core.NodeID) bool { return e.active().IsSharer(n) }

func (e *ovEntry) Count() int { return e.active().Count() }

func (e *ovEntry) Dirty() bool { return e.active().Dirty() }

func (e *ovEntry) Owner() core.NodeID { return e.active().Owner() }

// SetDirty demotes a wide entry back to a small one: a single owner always
// fits the pointers, freeing the precious wide slot.
func (e *ovEntry) SetDirty(owner core.NodeID) {
	if e.wideE != nil {
		e.d.demotions.Inc()
		e.d.wide.Release(e.block)
		e.wideE = nil
		e.small = e.d.smallScheme.NewEntry()
	}
	e.small.SetDirty(owner)
}

func (e *ovEntry) ClearDirty() { e.active().ClearDirty() }

// Reset empties the entry, releasing any wide slot.
func (e *ovEntry) Reset() {
	if e.wideE != nil {
		e.d.wide.Release(e.block)
		e.wideE = nil
		e.small = e.d.smallScheme.NewEntry()
		return
	}
	e.small.Reset()
}

func (e *ovEntry) Empty() bool { return e.active().Empty() }

func (e *ovEntry) Precise() bool { return e.active().Precise() }

func (e *ovEntry) PopGrant() []core.NodeID { return e.active().PopGrant() }

var _ core.Entry = (*ovEntry)(nil)
var _ Directory = (*Overflow)(nil)
