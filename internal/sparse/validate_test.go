package sparse

import "testing"

func TestConfigValidate(t *testing.T) {
	ok := Config{Scheme: scheme(), Entries: 8, Assoc: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil scheme", Config{Entries: 8}},
		{"zero entries", Config{Scheme: scheme()}},
		{"negative entries", Config{Scheme: scheme(), Entries: -4}},
		{"negative assoc", Config{Scheme: scheme(), Entries: 8, Assoc: -1}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
		}
	}
}

func TestOverflowConfigValidate(t *testing.T) {
	ok := OverflowConfig{Ptrs: 2, Nodes: 8, WideEntries: 4}
	if err := ok.Validate(); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  OverflowConfig
	}{
		{"zero ptrs", OverflowConfig{Nodes: 8, WideEntries: 4}},
		{"zero nodes", OverflowConfig{Ptrs: 2, WideEntries: 4}},
		{"zero wide entries", OverflowConfig{Ptrs: 2, Nodes: 8}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
		}
	}
	// The constructor still panics on the same input.
	defer func() {
		if recover() == nil {
			t.Fatal("NewOverflow with zero Ptrs should panic")
		}
	}()
	NewOverflow(OverflowConfig{Nodes: 8, WideEntries: 4})
}
