package sparse

import (
	"testing"

	"dircoh/internal/core"
)

func BenchmarkSparseAllocate(b *testing.B) {
	d := New(Config{Scheme: core.Must(core.NewFullVector(32)), Entries: 1024, Assoc: 4, Policy: LRU})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Allocate(int64(i%4096), uint64(i))
	}
}

func BenchmarkSparseLookupHit(b *testing.B) {
	d := New(Config{Scheme: core.Must(core.NewFullVector(32)), Entries: 1024, Assoc: 4, Policy: LRU})
	for i := int64(0); i < 1024; i++ {
		d.Allocate(i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(int64(i%1024), uint64(i))
	}
}

func BenchmarkFullMapAllocate(b *testing.B) {
	d := NewFullMap(core.Must(core.NewFullVector(32)), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Allocate(int64(i%4096), uint64(i))
	}
}
