package sparse

import "testing"

func TestSetIndex(t *testing.T) {
	cases := []struct {
		block int64
		sets  int
		want  int
	}{
		{0, 4, 0}, {3, 4, 3}, {4, 4, 0}, {7, 4, 3},
		{5, 1, 0}, {9, 2, 1}, {10, 3, 1},
	}
	for _, c := range cases {
		if got := SetIndex(c.block, c.sets); got != c.want {
			t.Errorf("SetIndex(%d, %d) = %d, want %d", c.block, c.sets, got, c.want)
		}
	}
}

func TestPickVictimIndex(t *testing.T) {
	cases := []struct {
		name string
		keys []uint64
		want int
	}{
		{"single", []uint64{7}, 0},
		{"min in middle", []uint64{5, 2, 9}, 1},
		{"min last", []uint64{5, 4, 3}, 2},
		{"tie takes first", []uint64{4, 2, 2, 7}, 1},
		{"all equal", []uint64{6, 6, 6}, 0},
	}
	for _, c := range cases {
		if got := PickVictimIndex(len(c.keys), func(i int) uint64 { return c.keys[i] }); got != c.want {
			t.Errorf("%s: PickVictimIndex(%v) = %d, want %d", c.name, c.keys, got, c.want)
		}
	}
}

// TestPickVictimMatchesDirectory pins the refactor: the directory's LRU
// and LRA victims must be exactly what the pure rule selects over the
// corresponding recency keys.
func TestPickVictimMatchesDirectory(t *testing.T) {
	for _, pol := range []ReplacePolicy{LRU, LRA} {
		d := New(Config{Scheme: scheme(), Entries: 2, Assoc: 2, Policy: pol})
		// Fill both ways of the single set with keys 0 and 2, touching 0
		// last so LRU and LRA disagree about the victim.
		d.Allocate(0, 1)
		d.Allocate(2, 2)
		d.Lookup(0, 3)
		_, v := d.Allocate(4, 4)
		if v == nil {
			t.Fatalf("%v: expected a victim", pol)
		}
		want := int64(2) // LRU: key 2 was used least recently
		if pol == LRA {
			want = 0 // LRA: key 0 was allocated first
		}
		if v.Block != want {
			t.Errorf("%v victim = block %d, want %d", pol, v.Block, want)
		}
	}
}
