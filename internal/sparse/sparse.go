// Package sparse implements the paper's second contribution (§4.2): the
// sparse directory, a set-associative directory cache with no backing
// store. One directory entry serves many memory blocks; when an entry must
// be reclaimed, the protocol invalidates every cached copy of the victim
// block, after which the state can safely be discarded.
//
// The package also provides FullMap, a conventional one-entry-per-block
// directory used as the non-sparse baseline.
package sparse

import (
	"fmt"
	"math/rand"

	"dircoh/internal/core"
	"dircoh/internal/obs"
)

// Victim describes a directory entry that was reclaimed to make room.
// The protocol layer must send invalidations to Entry's sharers (or the
// dirty owner) for block Block before reusing the slot.
type Victim struct {
	Block int64
	Entry core.Entry
}

// Directory is the storage abstraction the directory controller talks to.
// now is the current simulation cycle, used for recency bookkeeping.
type Directory interface {
	// Lookup returns the live entry for block, or nil if none is present.
	Lookup(block int64, now uint64) core.Entry

	// Peek returns the live entry for block without touching recency
	// state or metrics — the read-only lookup validators and samplers
	// use, guaranteed not to perturb replacement decisions.
	Peek(block int64) core.Entry

	// Allocate returns the entry for block, creating one if necessary.
	// If creating one required reclaiming a different block's entry, the
	// reclaimed state is returned as victim.
	Allocate(block int64, now uint64) (e core.Entry, victim *Victim)

	// Release informs the directory that block's entry is empty and its
	// slot may be reused without invalidations.
	Release(block int64)

	// Entries returns the total number of entry slots (0 = unbounded).
	Entries() int

	// PeakEntries returns the maximum number of simultaneously live
	// entries observed — the quantity behind §4.2's observation that a
	// full directory is almost entirely empty at any instant.
	PeakEntries() int

	// LiveEntries returns the number of currently live entries, cheap
	// enough to call from a periodic occupancy sampler.
	LiveEntries() int

	// Stats returns cumulative counters.
	Stats() Stats
}

// Stats counts directory storage events.
type Stats struct {
	Lookups      uint64 // Lookup + Allocate calls
	Hits         uint64 // calls that found a live entry
	Allocations  uint64 // entries created
	Replacements uint64 // allocations that reclaimed a live victim
}

// dirMetrics holds a directory's registry-backed counter handles, resolved
// once at construction ("dir.lookup", "dir.hit", "dir.alloc",
// "sparse.evict"). With a shared registry the counters aggregate over every
// directory wired to it (the machine's per-cluster directories); Stats()
// then reports that aggregate, not a per-instance count.
type dirMetrics struct {
	lookups *obs.Counter
	hits    *obs.Counter
	allocs  *obs.Counter
	evicts  *obs.Counter
}

func newDirMetrics(reg *obs.Registry) dirMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return dirMetrics{
		lookups: reg.Counter("dir.lookup"),
		hits:    reg.Counter("dir.hit"),
		allocs:  reg.Counter("dir.alloc"),
		evicts:  reg.Counter("sparse.evict"),
	}
}

func (m dirMetrics) stats() Stats {
	return Stats{
		Lookups:      m.lookups.Value(),
		Hits:         m.hits.Value(),
		Allocations:  m.allocs.Value(),
		Replacements: m.evicts.Value(),
	}
}

// ReplacePolicy selects the victim within a set.
type ReplacePolicy int

const (
	// LRU replaces the least-recently-used entry (best, hardest to build).
	LRU ReplacePolicy = iota
	// Random replaces a uniformly random entry (easiest in hardware; the
	// paper shows it beats LRA).
	Random
	// LRA replaces the least-recently-allocated entry.
	LRA
)

func (p ReplacePolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "Rand"
	case LRA:
		return "LRA"
	default:
		return fmt.Sprintf("ReplacePolicy(%d)", int(p))
	}
}

// FullMap is the non-sparse baseline: one (lazily materialized) entry per
// memory block, never any replacement.
type FullMap struct {
	scheme  core.Scheme
	entries map[int64]core.Entry
	peak    int
	m       dirMetrics
}

// NewFullMap returns an unbounded directory using the given entry scheme,
// recording into reg (nil creates a private registry).
func NewFullMap(scheme core.Scheme, reg *obs.Registry) *FullMap {
	return &FullMap{scheme: scheme, entries: make(map[int64]core.Entry), m: newDirMetrics(reg)}
}

// Lookup implements Directory.
func (d *FullMap) Lookup(block int64, _ uint64) core.Entry {
	d.m.lookups.Inc()
	if e, ok := d.entries[block]; ok {
		d.m.hits.Inc()
		return e
	}
	return nil
}

// Allocate implements Directory.
func (d *FullMap) Allocate(block int64, _ uint64) (core.Entry, *Victim) {
	d.m.lookups.Inc()
	if e, ok := d.entries[block]; ok {
		d.m.hits.Inc()
		return e, nil
	}
	e := d.scheme.NewEntry()
	d.entries[block] = e
	if len(d.entries) > d.peak {
		d.peak = len(d.entries)
	}
	d.m.allocs.Inc()
	return e, nil
}

// Peek implements Directory.
func (d *FullMap) Peek(block int64) core.Entry { return d.entries[block] }

// Release implements Directory.
func (d *FullMap) Release(block int64) { delete(d.entries, block) }

// Entries implements Directory: a full map is unbounded.
func (d *FullMap) Entries() int { return 0 }

// PeakEntries implements Directory.
func (d *FullMap) PeakEntries() int { return d.peak }

// LiveEntries implements Directory.
func (d *FullMap) LiveEntries() int { return len(d.entries) }

// Stats implements Directory.
func (d *FullMap) Stats() Stats { return d.m.stats() }

// Sparse is the set-associative sparse directory.
type Sparse struct {
	scheme core.Scheme
	sets   int
	assoc  int
	policy ReplacePolicy
	rng    *rand.Rand
	lines  []line // sets*assoc lines; set i occupies lines[i*assoc : (i+1)*assoc]
	live   int
	peak   int
	m      dirMetrics
}

type line struct {
	valid     bool
	block     int64
	entry     core.Entry
	lastUse   uint64
	allocTime uint64
}

// Config configures a sparse directory.
type Config struct {
	Scheme  core.Scheme
	Entries int           // total entry slots; rounded up to a multiple of Assoc
	Assoc   int           // associativity (1 = direct mapped)
	Policy  ReplacePolicy // victim selection within a set
	Seed    int64         // drives the Random policy
	Metrics *obs.Registry // nil creates a private registry
}

// Validate checks the configuration for every error New would otherwise
// panic over, so flag-derived entry counts fail with a message instead of
// a stack trace. New still panics: direct library misuse is a programming
// error.
func (cfg Config) Validate() error {
	if cfg.Scheme == nil {
		return fmt.Errorf("sparse: a directory entry scheme is required")
	}
	if cfg.Entries <= 0 {
		return fmt.Errorf("sparse: Entries must be positive (got %d)", cfg.Entries)
	}
	if cfg.Assoc < 0 {
		return fmt.Errorf("sparse: Assoc must not be negative (got %d)", cfg.Assoc)
	}
	return nil
}

// New returns a sparse directory with cfg.Entries slots.
func New(cfg Config) *Sparse {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 1
	}
	sets := (cfg.Entries + cfg.Assoc - 1) / cfg.Assoc
	return &Sparse{
		scheme: cfg.Scheme,
		sets:   sets,
		assoc:  cfg.Assoc,
		policy: cfg.Policy,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		lines:  make([]line, sets*cfg.Assoc),
		m:      newDirMetrics(cfg.Metrics),
	}
}

// Entries implements Directory.
func (d *Sparse) Entries() int { return d.sets * d.assoc }

// Assoc returns the directory's associativity.
func (d *Sparse) Assoc() int { return d.assoc }

// Stats implements Directory.
func (d *Sparse) Stats() Stats { return d.m.stats() }

// SetIndex returns the set a directory key maps to in a directory with
// sets sets — the pure indexing rule behind Sparse, shared with the model
// checker's directory mirror.
func SetIndex(block int64, sets int) int {
	return int(uint64(block) % uint64(sets))
}

// PickVictimIndex returns the index in [0, n) whose recency key is
// smallest, the first index winning ties — the pure victim-selection rule
// behind the LRU (lastUse keys) and LRA (allocTime keys) policies, shared
// with the model checker's normalized-rank directory.
func PickVictimIndex(n int, key func(int) uint64) int {
	best := 0
	for i := 1; i < n; i++ {
		if key(i) < key(best) {
			best = i
		}
	}
	return best
}

func (d *Sparse) set(block int64) []line {
	return d.lines[SetIndex(block, d.sets)*d.assoc : (SetIndex(block, d.sets)+1)*d.assoc]
}

// Lookup implements Directory.
func (d *Sparse) Lookup(block int64, now uint64) core.Entry {
	d.m.lookups.Inc()
	set := d.set(block)
	for i := range set {
		if set[i].valid && set[i].block == block {
			d.m.hits.Inc()
			set[i].lastUse = now
			return set[i].entry
		}
	}
	return nil
}

// Peek implements Directory.
func (d *Sparse) Peek(block int64) core.Entry {
	set := d.set(block)
	for i := range set {
		if set[i].valid && set[i].block == block {
			return set[i].entry
		}
	}
	return nil
}

// Allocate implements Directory.
func (d *Sparse) Allocate(block int64, now uint64) (core.Entry, *Victim) {
	d.m.lookups.Inc()
	set := d.set(block)
	free := -1
	for i := range set {
		if set[i].valid && set[i].block == block {
			d.m.hits.Inc()
			set[i].lastUse = now
			return set[i].entry, nil
		}
		if !set[i].valid && free < 0 {
			free = i
		}
	}
	d.m.allocs.Inc()
	if free >= 0 {
		return d.install(&set[free], block, now), nil
	}
	// All ways live: reclaim one according to policy.
	vi := d.pickVictim(set)
	d.m.evicts.Inc()
	victim := &Victim{Block: set[vi].block, Entry: set[vi].entry}
	d.install(&set[vi], block, now)
	return set[vi].entry, victim
}

func (d *Sparse) install(l *line, block int64, now uint64) core.Entry {
	if !l.valid {
		d.live++
		if d.live > d.peak {
			d.peak = d.live
		}
	}
	l.valid = true
	l.block = block
	l.entry = d.scheme.NewEntry()
	l.lastUse = now
	l.allocTime = now
	return l.entry
}

func (d *Sparse) pickVictim(set []line) int {
	switch d.policy {
	case Random:
		return d.rng.Intn(len(set))
	case LRA:
		return PickVictimIndex(len(set), func(i int) uint64 { return set[i].allocTime })
	default: // LRU
		return PickVictimIndex(len(set), func(i int) uint64 { return set[i].lastUse })
	}
}

// Release implements Directory.
func (d *Sparse) Release(block int64) {
	set := d.set(block)
	for i := range set {
		if set[i].valid && set[i].block == block {
			set[i].valid = false
			set[i].entry = nil
			d.live--
			return
		}
	}
}

// PeakEntries implements Directory.
func (d *Sparse) PeakEntries() int { return d.peak }

// LiveEntries implements Directory.
func (d *Sparse) LiveEntries() int { return d.live }

// Occupancy returns the number of live entries (for tests and reports).
func (d *Sparse) Occupancy() int {
	n := 0
	for i := range d.lines {
		if d.lines[i].valid {
			n++
		}
	}
	return n
}
