// Package apps generates the four workloads of the paper's evaluation
// (§5): LU (dense L-U factorization, numerical), DWF (wavefront string
// matching against a library, medical), MP3D (3-D particle simulation,
// aeronautics) and LocusRoute (standard-cell routing, VLSI-CAD).
//
// Each generator emits the application's real sharing skeleton — the
// property the directory schemes are sensitive to — at configurable
// problem sizes:
//
//   - LU: the pivot column is read by every processor right after the
//     pivot step (widely read-shared data, §6.2).
//   - DWF: pattern and library arrays are constantly read by all
//     processes; the wavefront keeps the instantaneous working set small.
//   - MP3D: space cells are shared by one or two processors at a time
//     (migratory data).
//   - LocusRoute: the central cost array is shared among the several
//     processors working on the same geographical region, protected by
//     region locks.
package apps

import (
	"math/rand"

	"dircoh/internal/tango"
)

// BlockBytes is the cache block size the allocators align to (the paper
// uses 16-byte blocks throughout).
const BlockBytes = 16

// syncSpace reserves a region for barrier and lock words so they never
// share blocks with data.
func syncSpace(a *tango.Allocator, words int64) tango.Region {
	return a.Words(words)
}

// LUConfig sizes the LU workload.
type LUConfig struct {
	Procs int
	N     int // matrix dimension (N x N)
	Seed  int64
}

// DefaultLU returns the standard benchmark size for procs processors.
func DefaultLU(procs int) LUConfig { return LUConfig{Procs: procs, N: 96} }

// LU generates a column-interleaved dense L-U factorization without
// pivoting. At step k the owner of column k normalizes it; after a
// barrier, every processor updates its own columns j > k, re-reading the
// pivot column for each — the widely-read-shared pattern that devastates
// Dir_iNB (§6.2).
func LU(cfg LUConfig) *tango.Workload {
	p, n := cfg.Procs, cfg.N
	if p <= 0 || n <= 0 {
		panic("apps: LU needs positive Procs and N")
	}
	alloc := tango.NewAllocator(BlockBytes)
	matrix := alloc.Words(int64(n) * int64(n)) // column-major
	sync := syncSpace(alloc, int64(n)+1)

	at := func(col, row int) int64 { return matrix.Word(int64(col)*int64(n) + int64(row)) }

	builders := make([]tango.Builder, p)
	for k := 0; k < n; k++ {
		owner := k % p
		// Normalize column k below the diagonal.
		b := &builders[owner]
		b.Read(at(k, k))
		for i := k + 1; i < n; i++ {
			b.Read(at(k, i))
			b.Write(at(k, i))
		}
		// Everyone waits for the pivot column.
		for q := 0; q < p; q++ {
			builders[q].Barrier(sync.Word(int64(k)))
		}
		// Update phase: each processor updates its own columns, reading
		// the pivot column afresh for each.
		for j := k + 1; j < n; j++ {
			b := &builders[j%p]
			for i := k + 1; i < n; i++ {
				b.Read(at(k, i))
				b.Read(at(j, i))
				b.Write(at(j, i))
			}
		}
	}
	return workload("LU", builders, alloc)
}

// DWFConfig sizes the DWF workload.
type DWFConfig struct {
	Procs      int
	Pattern    int // pattern length in words (read by everyone, constantly)
	Chunks     int // library chunks (wavefront width)
	ChunkWords int // words per library chunk
	RowWords   int // words of DP state per processor per tile
	Seed       int64
}

// DefaultDWF returns the standard benchmark size for procs processors.
func DefaultDWF(procs int) DWFConfig {
	return DWFConfig{Procs: procs, Pattern: 48, Chunks: 16, ChunkWords: 48, RowWords: 16}
}

// DWF generates the wavefront string-matching workload: processor p works
// on library chunk t-p during phase t, re-reading the whole (read-only)
// pattern and the chunk, consuming the boundary row its predecessor wrote
// in the previous phase, and writing its own row of DP state.
func DWF(cfg DWFConfig) *tango.Workload {
	p := cfg.Procs
	if p <= 0 || cfg.Chunks <= 0 {
		panic("apps: DWF needs positive Procs and Chunks")
	}
	alloc := tango.NewAllocator(BlockBytes)
	pattern := alloc.Words(int64(cfg.Pattern))
	library := alloc.Words(int64(cfg.Chunks) * int64(cfg.ChunkWords))
	rows := alloc.Words(int64(p) * int64(cfg.Chunks) * int64(cfg.RowWords))
	sync := syncSpace(alloc, int64(p+cfg.Chunks))

	rowAt := func(proc, chunk int) (lo int64) {
		return (int64(proc)*int64(cfg.Chunks) + int64(chunk)) * int64(cfg.RowWords)
	}

	builders := make([]tango.Builder, p)
	phases := p + cfg.Chunks - 1
	for t := 0; t < phases; t++ {
		for q := 0; q < p; q++ {
			c := t - q
			if c < 0 || c >= cfg.Chunks {
				continue
			}
			b := &builders[q]
			// The whole pattern is re-read every phase by every active
			// process: widely read-shared, never written.
			b.ReadRange(pattern, 0, pattern.Words())
			// The library chunk: over the run every chunk is read by
			// every processor.
			lo := int64(c) * int64(cfg.ChunkWords)
			b.ReadRange(library, lo, lo+int64(cfg.ChunkWords))
			// Consume the boundary row the predecessor wrote last phase.
			if q > 0 {
				prev := rowAt(q-1, c)
				b.ReadRange(rows, prev, prev+int64(cfg.RowWords))
			}
			// Compute this tile's DP row.
			own := rowAt(q, c)
			for w := int64(0); w < int64(cfg.RowWords); w++ {
				b.Read(rows.Word(own + w))
				b.Write(rows.Word(own + w))
			}
		}
		for q := 0; q < p; q++ {
			builders[q].Barrier(sync.Word(int64(t % (p + cfg.Chunks))))
		}
	}
	return workload("DWF", builders, alloc)
}

// MP3DConfig sizes the MP3D workload.
type MP3DConfig struct {
	Procs     int
	Particles int // particles per processor
	Cells     int // space cells
	Steps     int
	Seed      int64
}

// DefaultMP3D returns the standard benchmark size for procs processors.
func DefaultMP3D(procs int) MP3DConfig {
	return MP3DConfig{Procs: procs, Particles: 96, Cells: 512, Steps: 10, Seed: 1}
}

// MP3D generates the particle simulation: each processor advances its own
// particles every step, reading and writing the space cell each particle
// occupies. Cells migrate between the one or two processors whose
// particles pass through them — the sharing pattern every scheme handles
// well (§6.2).
func MP3D(cfg MP3DConfig) *tango.Workload {
	p := cfg.Procs
	if p <= 0 || cfg.Particles <= 0 || cfg.Cells <= 0 {
		panic("apps: MP3D needs positive sizes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alloc := tango.NewAllocator(BlockBytes)
	particles := alloc.Words(int64(p) * int64(cfg.Particles) * 3) // 3 words of state each
	cells := alloc.Words(int64(cfg.Cells) * 2)                    // 2 words per cell
	sync := syncSpace(alloc, 1)

	// Each particle moves through a drifting window of cells, so a cell
	// is touched by few processors at any one time.
	pos := make([][]int, p)
	for q := range pos {
		pos[q] = make([]int, cfg.Particles)
		for i := range pos[q] {
			pos[q][i] = rng.Intn(cfg.Cells)
		}
	}

	builders := make([]tango.Builder, p)
	for s := 0; s < cfg.Steps; s++ {
		for q := 0; q < p; q++ {
			b := &builders[q]
			base := int64(q) * int64(cfg.Particles) * 3
			for i := 0; i < cfg.Particles; i++ {
				pb := base + int64(i)*3
				b.Read(particles.Word(pb))
				b.Read(particles.Word(pb + 1))
				b.Write(particles.Word(pb + 2))
				// Drift to a nearby cell and collide there.
				pos[q][i] = (pos[q][i] + 1 + rng.Intn(3)) % cfg.Cells
				cw := int64(pos[q][i]) * 2
				b.Read(cells.Word(cw))
				b.Write(cells.Word(cw + 1))
			}
		}
		for q := 0; q < p; q++ {
			builders[q].Barrier(sync.Word(0))
		}
	}
	return workload("MP3D", builders, alloc)
}

// LocusRouteConfig sizes the LocusRoute workload.
type LocusRouteConfig struct {
	Procs       int
	Regions     int // geographical regions of the cost array
	RegionWords int
	Wires       int // wires routed per processor
	Window      int // regions a processor works in (overlap -> sharing)
	Seed        int64
}

// DefaultLocusRoute returns the standard benchmark size for procs
// processors.
func DefaultLocusRoute(procs int) LocusRouteConfig {
	return LocusRouteConfig{
		Procs:       procs,
		Regions:     max(2, procs/2),
		RegionWords: 128,
		Wires:       48,
		Window:      3,
		Seed:        1,
	}
}

// LocusRoute generates the standard-cell router: each processor routes
// wires within a window of geographical regions of the central cost
// array. Several processors share each region (more than the limited
// schemes' three pointers), so writes to routed paths produce mid-sized
// invalidation events — the pattern where Dir_iNB beats Dir_iB because
// pointer-overflow invalidations rarely cause re-reads (§6.2).
func LocusRoute(cfg LocusRouteConfig) *tango.Workload {
	p := cfg.Procs
	if p <= 0 || cfg.Regions <= 0 || cfg.Window <= 0 {
		panic("apps: LocusRoute needs positive sizes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alloc := tango.NewAllocator(BlockBytes)
	grid := alloc.Words(int64(cfg.Regions) * int64(cfg.RegionWords))
	locks := syncSpace(alloc, int64(cfg.Regions)*2) // one lock word per region, block-spread

	builders := make([]tango.Builder, p)
	for q := 0; q < p; q++ {
		b := &builders[q]
		base := q * cfg.Regions / p
		for w := 0; w < cfg.Wires; w++ {
			region := (base + rng.Intn(cfg.Window)) % cfg.Regions
			rbase := int64(region) * int64(cfg.RegionWords)
			// Evaluate a few candidate segments: reads of the shared
			// cost array.
			for c := 0; c < 3; c++ {
				seg := rbase + int64(rng.Intn(cfg.RegionWords-8))
				b.ReadRange(grid, seg, seg+8)
			}
			// Commit the best route under the region lock.
			lock := locks.Word(int64(region) * 2)
			b.Lock(lock)
			seg := rbase + int64(rng.Intn(cfg.RegionWords-8))
			for i := int64(0); i < 4; i++ {
				b.Read(grid.Word(seg + i))
				b.Write(grid.Word(seg + i))
			}
			b.Unlock(lock)
		}
	}
	return workload("LocusRoute", builders, alloc)
}

// FFTConfig sizes the FFT workload (an extension beyond the paper's four
// applications).
type FFTConfig struct {
	Procs  int
	Points int // total points; must be a power of two and a multiple of Procs
}

// DefaultFFT returns the standard benchmark size for procs processors.
func DefaultFFT(procs int) FFTConfig { return FFTConfig{Procs: procs, Points: 64 * procs} }

// FFT generates a radix-2 butterfly: each processor owns a contiguous
// band of points; early stages are processor-local, later stages exchange
// whole bands pairwise — producer–consumer sharing between exactly two
// processors at a time, a pattern every limited-pointer scheme handles
// precisely (useful as a control workload).
func FFT(cfg FFTConfig) *tango.Workload {
	p, n := cfg.Procs, cfg.Points
	if p <= 0 || n <= 0 || n%p != 0 || n&(n-1) != 0 {
		panic("apps: FFT needs Points a power of two and a multiple of Procs")
	}
	alloc := tango.NewAllocator(BlockBytes)
	data := alloc.Words(int64(n))
	sync := syncSpace(alloc, 1)
	per := n / p

	builders := make([]tango.Builder, p)
	for span := 1; span < n; span <<= 1 {
		for q := 0; q < p; q++ {
			b := &builders[q]
			lo := q * per
			for i := lo; i < lo+per; i++ {
				partner := i ^ span
				// Butterfly: read both inputs, write the own output.
				b.Read(data.Word(int64(i)))
				b.Read(data.Word(int64(partner)))
				b.Write(data.Word(int64(i)))
			}
		}
		for q := 0; q < p; q++ {
			builders[q].Barrier(sync.Word(0))
		}
	}
	return workload("FFT", builders, alloc)
}

// UniformConfig sizes the synthetic uniform workload used by tests and the
// quickstart example.
type UniformConfig struct {
	Procs     int
	Blocks    int // shared blocks touched
	Refs      int // references per processor
	WriteFrac int // writes per 10 references
	Seed      int64
}

// Uniform generates uniformly random reads and writes over a small shared
// array — not one of the paper's applications, but a convenient smoke
// workload.
func Uniform(cfg UniformConfig) *tango.Workload {
	if cfg.Procs <= 0 || cfg.Blocks <= 0 {
		panic("apps: Uniform needs positive sizes")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	alloc := tango.NewAllocator(BlockBytes)
	words := alloc.Words(int64(cfg.Blocks) * BlockBytes / tango.WordBytes)
	builders := make([]tango.Builder, cfg.Procs)
	for q := range builders {
		for i := 0; i < cfg.Refs; i++ {
			w := int64(rng.Intn(int(words.Words())))
			if rng.Intn(10) < cfg.WriteFrac {
				builders[q].Write(words.Word(w))
			} else {
				builders[q].Read(words.Word(w))
			}
		}
	}
	return workload("Uniform", builders, alloc)
}

// workload assembles the final Workload from per-proc builders.
func workload(name string, builders []tango.Builder, alloc *tango.Allocator) *tango.Workload {
	streams := make([][]tango.Ref, len(builders))
	for i := range builders {
		streams[i] = builders[i].Refs()
	}
	return &tango.Workload{Name: name, Streams: streams, SharedBytes: alloc.TotalBytes()}
}
