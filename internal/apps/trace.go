package apps

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"dircoh/internal/tango"
)

// This file gives externally captured reference traces first-class
// workload status: the "trace" application replays per-core text files in
// the RD/WR format both SNIPPETS exemplar simulators consume, so traces
// recorded elsewhere can run through every experiment driver and become
// submittable campaign workloads.
//
// The on-disk layout follows the exemplars: a directory holding one file
// per simulated processor, core_0.txt … core_<procs-1>.txt, each a list of
// instructions:
//
//	RD <addr>          # shared-data load
//	WR <addr> <value>  # shared-data store (the value is validated and
//	                   # discarded — the simulator is reference-driven)
//
// Addresses and values accept decimal or 0x-prefixed hex. Blank lines and
// lines starting with '#' are skipped.

// TraceParseError reports a malformed trace line with its position.
type TraceParseError struct {
	File string
	Line int
	Msg  string
}

func (e *TraceParseError) Error() string {
	return fmt.Sprintf("trace %s:%d: %s", e.File, e.Line, e.Msg)
}

// ParseTrace reads one core's RD/WR instruction stream. The name is used
// in error messages only.
func ParseTrace(r io.Reader, name string) ([]tango.Ref, error) {
	var refs []tango.Ref
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	fail := func(msg string) error {
		return &TraceParseError{File: name, Line: lineNo, Msg: msg}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := strings.ToUpper(fields[0])
		parseAddr := func(s string) (int64, error) {
			addr, err := strconv.ParseInt(s, 0, 64)
			if err != nil {
				return 0, fail(fmt.Sprintf("bad address %q", s))
			}
			if addr < 0 {
				return 0, fail(fmt.Sprintf("negative address %q", s))
			}
			return addr, nil
		}
		switch op {
		case "RD":
			if len(fields) != 2 {
				return nil, fail("RD wants exactly one operand: RD <addr>")
			}
			addr, err := parseAddr(fields[1])
			if err != nil {
				return nil, err
			}
			refs = append(refs, tango.Ref{Op: tango.Read, Addr: addr})
		case "WR":
			if len(fields) != 3 {
				return nil, fail("WR wants exactly two operands: WR <addr> <value>")
			}
			addr, err := parseAddr(fields[1])
			if err != nil {
				return nil, err
			}
			if _, err := strconv.ParseInt(fields[2], 0, 64); err != nil {
				return nil, fail(fmt.Sprintf("bad value %q", fields[2]))
			}
			refs = append(refs, tango.Ref{Op: tango.Write, Addr: addr})
		default:
			return nil, fail(fmt.Sprintf("unknown instruction %q (want RD or WR)", fields[0]))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace %s: %w", name, err)
	}
	return refs, nil
}

// LoadTraceDir builds a workload from dir's core_0.txt … core_<procs-1>.txt.
// Every file up to procs must exist: a missing core is a hole in the
// machine, not an idle processor, so it fails loudly. SharedBytes is the
// extent of the touched address space.
func LoadTraceDir(dir string, procs int) (*tango.Workload, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("trace %s: procs must be positive (got %d)", dir, procs)
	}
	wl := &tango.Workload{Name: "trace:" + filepath.Base(dir)}
	var maxAddr int64 = -1
	for p := 0; p < procs; p++ {
		path := filepath.Join(dir, fmt.Sprintf("core_%d.txt", p))
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("trace %s: core %d of %d: %w", dir, p, procs, err)
		}
		refs, perr := ParseTrace(f, path)
		f.Close()
		if perr != nil {
			return nil, perr
		}
		for _, r := range refs {
			if r.Addr > maxAddr {
				maxAddr = r.Addr
			}
		}
		wl.Streams = append(wl.Streams, refs)
	}
	wl.SharedBytes = maxAddr + tango.WordBytes
	if maxAddr < 0 {
		wl.SharedBytes = 0
	}
	return wl, nil
}

// The directory the registered "trace" application replays. Guarded so
// long-running services can point concurrent campaigns at a configured
// default; per-run directories use the "trace:<dir>" app syntax instead.
var (
	traceDirMu sync.RWMutex
	traceDir   = "examples/traces/pingpong"
)

// SetTraceDir points the registered "trace" application at dir and
// returns the previous value.
func SetTraceDir(dir string) string {
	traceDirMu.Lock()
	defer traceDirMu.Unlock()
	prev := traceDir
	traceDir = dir
	return prev
}

// TraceDir returns the directory the registered "trace" application
// replays.
func TraceDir() string {
	traceDirMu.RLock()
	defer traceDirMu.RUnlock()
	return traceDir
}

func init() {
	// The registry factory signature cannot return an error; a bad trace
	// directory panics with the parse error, which experiment supervisors
	// (the campaign job runner) recover into typed failure records.
	Register("trace", false, func(procs int) *tango.Workload {
		wl, err := LoadTraceDir(TraceDir(), procs)
		if err != nil {
			panic(fmt.Sprintf("apps: %v", err))
		}
		return wl
	})
}
