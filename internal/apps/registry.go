package apps

import (
	"fmt"
	"strings"

	"dircoh/internal/tango"
)

// Factory builds a workload at its default experiment size for the given
// processor count.
type Factory func(procs int) *tango.Workload

// UnknownAppError reports an application name that is not registered.
// Valid lists every registered application so flag validation can
// enumerate the choices.
type UnknownAppError struct {
	Name  string
	Valid []string
}

func (e *UnknownAppError) Error() string {
	return fmt.Sprintf("unknown application %q (want one of %s)", e.Name, strings.Join(e.Valid, ", "))
}

// The package registry. Registration happens at init time; lookups after
// that are read-only, so no locking is needed.
var (
	paperApps     []string // the paper's evaluation set, registration order
	extensionApps []string // extra workloads beyond the paper
	appFactories  = make(map[string]Factory)
)

// Register adds a workload factory under a canonical name plus optional
// aliases; lookups are case-insensitive. Workloads registered with paper
// set appear in Names() — the evaluation set every sweep iterates — while
// extensions are reachable by name only. Register panics on a duplicate
// name: registration is a program-integrity matter, not input validation.
func Register(name string, paper bool, f Factory, aliases ...string) {
	if f == nil {
		panic("apps: Register with nil factory")
	}
	canon := strings.ToLower(name)
	if canon == "" {
		panic("apps: Register with empty name")
	}
	if _, dup := appFactories[canon]; dup {
		panic(fmt.Sprintf("apps: workload %q registered twice", name))
	}
	appFactories[canon] = f
	if paper {
		paperApps = append(paperApps, name)
	} else {
		extensionApps = append(extensionApps, name)
	}
	for _, a := range aliases {
		a = strings.ToLower(a)
		if _, dup := appFactories[a]; dup {
			panic(fmt.Sprintf("apps: workload alias %q registered twice", a))
		}
		appFactories[a] = f
	}
}

// Lookup resolves an application name to its factory. Unknown names
// return *UnknownAppError listing the valid choices.
func Lookup(name string) (Factory, error) {
	if f, ok := appFactories[strings.ToLower(name)]; ok {
		return f, nil
	}
	return nil, &UnknownAppError{Name: name, Valid: All()}
}

// ByName builds a default-sized workload by its paper name. It returns
// nil for unknown names; callers that want the error message should use
// Lookup.
func ByName(name string, procs int) *tango.Workload {
	f, err := Lookup(name)
	if err != nil {
		return nil
	}
	return f(procs)
}

// Names lists the paper's evaluation applications in the paper's order.
// Extension workloads (FFT) are available via Lookup/ByName but are not
// part of the evaluation set.
func Names() []string { return append([]string(nil), paperApps...) }

// All lists every registered application: the paper set first, then the
// extensions.
func All() []string {
	return append(Names(), extensionApps...)
}

func init() {
	Register("LU", true, func(procs int) *tango.Workload { return LU(DefaultLU(procs)) })
	Register("DWF", true, func(procs int) *tango.Workload { return DWF(DefaultDWF(procs)) })
	Register("MP3D", true, func(procs int) *tango.Workload { return MP3D(DefaultMP3D(procs)) })
	Register("LocusRoute", true, func(procs int) *tango.Workload { return LocusRoute(DefaultLocusRoute(procs)) }, "locus")
	Register("FFT", false, func(procs int) *tango.Workload { return FFT(DefaultFFT(procs)) })
}
