package apps

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestNamesIsPaperOrder(t *testing.T) {
	want := []string{"LU", "DWF", "MP3D", "LocusRoute"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestAllIncludesExtensions(t *testing.T) {
	all := All()
	found := false
	for _, n := range all {
		if n == "FFT" {
			found = true
		}
	}
	if !found {
		t.Fatalf("All() = %v, want FFT included", all)
	}
	if len(all) != len(Names())+2 {
		t.Fatalf("All() = %v: want paper set plus FFT and trace", all)
	}
}

func TestLookupRoundTrip(t *testing.T) {
	// The trace app replays files from its configured directory; point it
	// at a temporary four-core trace for the round trip.
	dir := writeTraceDir(t, "RD 0\n", "RD 8\n", "RD 16\n", "RD 24\n")
	prev := SetTraceDir(dir)
	defer SetTraceDir(prev)
	for _, name := range All() {
		f, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		w := f(4)
		if w == nil || w.Procs() != 4 {
			t.Fatalf("%s: factory built %v", name, w)
		}
		if name == "trace" {
			if !strings.HasPrefix(w.Name, "trace:") {
				t.Errorf("trace: workload reports Name %q", w.Name)
			}
			continue
		}
		if w.Name != name {
			t.Errorf("%s: workload reports Name %q", name, w.Name)
		}
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for _, alias := range []string{"lu", "locus", "locusroute", "fft", "mp3d"} {
		if _, err := Lookup(alias); err != nil {
			t.Errorf("Lookup(%q): %v", alias, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	var unknown *UnknownAppError
	_, err := Lookup("Water")
	if !errors.As(err, &unknown) {
		t.Fatalf("Lookup(Water) = %v, want *UnknownAppError", err)
	}
	if len(unknown.Valid) == 0 {
		t.Fatal("UnknownAppError lists no valid names")
	}
	if ByName("Water", 4) != nil {
		t.Fatal("ByName(Water) != nil")
	}
}
