package apps

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dircoh/internal/tango"
)

func TestParseTrace(t *testing.T) {
	in := `
# ping-pong over one block
WR 0x15 100
RD 0x17
rd 32
wr 0x20 0x7f
`
	refs, err := ParseTrace(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	want := []tango.Ref{
		{Op: tango.Write, Addr: 0x15},
		{Op: tango.Read, Addr: 0x17},
		{Op: tango.Read, Addr: 32},
		{Op: tango.Write, Addr: 0x20},
	}
	if len(refs) != len(want) {
		t.Fatalf("got %d refs, want %d", len(refs), len(want))
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("ref %d = %+v, want %+v", i, refs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		in, wantMsg string
	}{
		{"LD 0x10", `unknown instruction "LD"`},
		{"RD", "exactly one operand"},
		{"RD 0x10 5", "exactly one operand"},
		{"WR 0x10", "exactly two operands"},
		{"WR 0x10 5 6", "exactly two operands"},
		{"RD zebra", `bad address "zebra"`},
		{"RD -8", "negative address"},
		{"WR 0x10 many", `bad value "many"`},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in), "t")
		var pe *TraceParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%q: want *TraceParseError, got %v", c.in, err)
		}
		if !strings.Contains(pe.Error(), c.wantMsg) {
			t.Errorf("%q: error %q lacks %q", c.in, pe.Error(), c.wantMsg)
		}
		if pe.Line != 1 {
			t.Errorf("%q: line = %d, want 1", c.in, pe.Line)
		}
	}
}

func writeTraceDir(t *testing.T, cores ...string) string {
	t.Helper()
	dir := t.TempDir()
	for i, c := range cores {
		path := filepath.Join(dir, "core_"+string(rune('0'+i))+".txt")
		if err := os.WriteFile(path, []byte(c), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadTraceDir(t *testing.T) {
	dir := writeTraceDir(t,
		"WR 0x10 1\nRD 0x40\n",
		"RD 0x10\nWR 0x40 2\n")
	wl, err := LoadTraceDir(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Procs() != 2 {
		t.Fatalf("procs = %d, want 2", wl.Procs())
	}
	c := wl.Characterize()
	if c.SharedRefs != 4 || c.SharedReads != 2 || c.SharedWrites != 2 {
		t.Fatalf("characterize = %+v", c)
	}
	if wl.SharedBytes != 0x40+tango.WordBytes {
		t.Fatalf("SharedBytes = %d, want %d", wl.SharedBytes, 0x40+tango.WordBytes)
	}
}

func TestLoadTraceDirMissingCore(t *testing.T) {
	dir := writeTraceDir(t, "RD 0x10\n")
	if _, err := LoadTraceDir(dir, 2); err == nil || !strings.Contains(err.Error(), "core 1 of 2") {
		t.Fatalf("want missing-core error, got %v", err)
	}
	if _, err := LoadTraceDir(dir, 0); err == nil {
		t.Fatal("want procs error")
	}
}

// TestTraceAppRegistered: the "trace" app resolves through the registry
// and replays the configured directory.
func TestTraceAppRegistered(t *testing.T) {
	dir := writeTraceDir(t, "RD 0x10\n", "WR 0x10 7\n")
	prev := SetTraceDir(dir)
	defer SetTraceDir(prev)
	f, err := Lookup("trace")
	if err != nil {
		t.Fatal(err)
	}
	wl := f(2)
	if wl.Procs() != 2 || len(wl.Streams[0]) != 1 {
		t.Fatalf("unexpected workload: procs=%d", wl.Procs())
	}
	// Extension apps are reachable by name but stay out of the paper set.
	for _, name := range Names() {
		if name == "trace" {
			t.Fatal("trace leaked into the paper evaluation set")
		}
	}
}
