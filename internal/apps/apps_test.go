package apps

import (
	"testing"

	"dircoh/internal/tango"
)

func TestLUPivotReadByAll(t *testing.T) {
	const procs = 4
	w := LU(LUConfig{Procs: procs, N: 8})
	if w.Procs() != procs {
		t.Fatalf("Procs = %d", w.Procs())
	}
	// Column 0 occupies words [0,8): every processor must read some of it
	// (the pivot column is read by all just after the pivot step).
	for q := 0; q < procs; q++ {
		found := false
		for _, r := range w.Streams[q] {
			if r.Op == tango.Read && r.Addr < 8*tango.WordBytes {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("proc %d never reads the pivot column", q)
		}
	}
}

func TestLUHasBarriersAndWrites(t *testing.T) {
	w := LU(LUConfig{Procs: 2, N: 6})
	c := w.Characterize()
	if c.SyncOps == 0 {
		t.Fatal("LU needs barriers")
	}
	if c.SharedWrites == 0 || c.SharedReads <= c.SharedWrites {
		t.Fatalf("LU should be read-dominated: %+v", c)
	}
	if c.SharedBytes < 6*6*tango.WordBytes {
		t.Fatalf("SharedBytes = %d too small", c.SharedBytes)
	}
}

func TestDWFPatternReadOnlyAndShared(t *testing.T) {
	cfg := DWFConfig{Procs: 3, Pattern: 8, Chunks: 4, ChunkWords: 8, RowWords: 4}
	w := DWF(cfg)
	patEnd := int64(8 * tango.WordBytes)
	for q, s := range w.Streams {
		reads := 0
		for _, r := range s {
			if r.Addr < patEnd {
				if r.Op == tango.Write {
					t.Fatalf("proc %d writes the read-only pattern", q)
				}
				if r.Op == tango.Read {
					reads++
				}
			}
		}
		if reads == 0 {
			t.Fatalf("proc %d never reads the pattern", q)
		}
	}
}

func TestDWFWavefrontActivity(t *testing.T) {
	// Every processor eventually works on every chunk's worth of phases:
	// stream lengths must be roughly equal.
	w := DWF(DWFConfig{Procs: 4, Pattern: 8, Chunks: 6, ChunkWords: 8, RowWords: 4})
	min, max := len(w.Streams[0]), len(w.Streams[0])
	for _, s := range w.Streams {
		if len(s) < min {
			min = len(s)
		}
		if len(s) > max {
			max = len(s)
		}
	}
	if min == 0 || max-min > max/2 {
		t.Fatalf("unbalanced wavefront: min=%d max=%d", min, max)
	}
}

func TestMP3DMigratoryCells(t *testing.T) {
	w := MP3D(MP3DConfig{Procs: 4, Particles: 8, Cells: 32, Steps: 3, Seed: 1})
	c := w.Characterize()
	if c.SharedWrites == 0 || c.SharedReads == 0 {
		t.Fatalf("MP3D refs missing: %+v", c)
	}
	// Roughly 2 writes per 5 data refs (particle update + cell update).
	ratio := float64(c.SharedWrites) / float64(c.SharedRefs)
	if ratio < 0.3 || ratio > 0.5 {
		t.Fatalf("write ratio %.2f out of MP3D's range", ratio)
	}
}

func TestMP3DDeterministicForSeed(t *testing.T) {
	a := MP3D(MP3DConfig{Procs: 2, Particles: 4, Cells: 16, Steps: 2, Seed: 7})
	b := MP3D(MP3DConfig{Procs: 2, Particles: 4, Cells: 16, Steps: 2, Seed: 7})
	for q := range a.Streams {
		if len(a.Streams[q]) != len(b.Streams[q]) {
			t.Fatal("stream lengths differ for equal seeds")
		}
		for i := range a.Streams[q] {
			if a.Streams[q][i] != b.Streams[q][i] {
				t.Fatal("streams differ for equal seeds")
			}
		}
	}
}

func TestLocusRouteLocksBalanced(t *testing.T) {
	w := LocusRoute(LocusRouteConfig{Procs: 4, Regions: 4, RegionWords: 32, Wires: 5, Window: 2, Seed: 1})
	c := w.Characterize()
	if c.SyncOps == 0 || c.SyncOps%2 != 0 {
		t.Fatalf("lock/unlock must pair up: %d", c.SyncOps)
	}
	// Locks must strictly alternate lock/unlock per processor.
	for q, s := range w.Streams {
		depth := 0
		for _, r := range s {
			switch r.Op {
			case tango.Lock:
				depth++
			case tango.Unlock:
				depth--
			}
			if depth < 0 || depth > 1 {
				t.Fatalf("proc %d lock nesting broken", q)
			}
		}
		if depth != 0 {
			t.Fatalf("proc %d leaves a lock held", q)
		}
	}
}

func TestLocusRouteRegionsShared(t *testing.T) {
	// With overlapping windows, some region must be touched by more than
	// 3 processors (to exceed the limited schemes' pointers).
	cfg := LocusRouteConfig{Procs: 8, Regions: 4, RegionWords: 64, Wires: 20, Window: 3, Seed: 1}
	w := LocusRoute(cfg)
	gridEnd := int64(cfg.Regions*cfg.RegionWords) * tango.WordBytes
	byRegion := map[int64]map[int]bool{}
	for q, s := range w.Streams {
		for _, r := range s {
			if r.Addr >= gridEnd || r.Op.IsSync() {
				continue
			}
			region := r.Addr / (int64(cfg.RegionWords) * tango.WordBytes)
			if byRegion[region] == nil {
				byRegion[region] = map[int]bool{}
			}
			byRegion[region][q] = true
		}
	}
	maxSharers := 0
	for _, procs := range byRegion {
		if len(procs) > maxSharers {
			maxSharers = len(procs)
		}
	}
	if maxSharers <= 3 {
		t.Fatalf("max region sharers = %d, want > 3", maxSharers)
	}
}

func TestUniform(t *testing.T) {
	w := Uniform(UniformConfig{Procs: 2, Blocks: 8, Refs: 100, WriteFrac: 3, Seed: 1})
	c := w.Characterize()
	if c.SharedRefs != 200 {
		t.Fatalf("SharedRefs = %d, want 200", c.SharedRefs)
	}
	if c.SharedWrites == 0 {
		t.Fatal("expected writes")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		if w := ByName(name, 2); w == nil || w.Name != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if ByName("nosuch", 2) != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { LU(LUConfig{Procs: 0, N: 4}) },
		func() { DWF(DWFConfig{Procs: 1, Chunks: 0}) },
		func() { MP3D(MP3DConfig{Procs: 1}) },
		func() { LocusRoute(LocusRouteConfig{Procs: 1}) },
		func() { Uniform(UniformConfig{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFFTPairwiseSharing(t *testing.T) {
	const procs = 4
	w := FFT(FFTConfig{Procs: procs, Points: 32})
	if w.Procs() != procs {
		t.Fatalf("Procs = %d", w.Procs())
	}
	c := w.Characterize()
	// log2(32) = 5 stages, 8 points per proc: 5*8 = 40 writes per proc.
	if c.SharedWrites != 4*40 {
		t.Fatalf("writes = %d, want 160", c.SharedWrites)
	}
	if c.SharedReads != 2*c.SharedWrites {
		t.Fatalf("reads = %d, want 2x writes", c.SharedReads)
	}
	if c.SyncOps != 4*5 {
		t.Fatalf("sync = %d, want 20 barriers", c.SyncOps)
	}
	// Every proc must read outside its own band in the last stage.
	per := int64(8 * tango.WordBytes)
	for q, s := range w.Streams {
		foreign := false
		for _, r := range s {
			if r.Op == tango.Read && (r.Addr < int64(q)*per || r.Addr >= int64(q+1)*per) {
				foreign = true
				break
			}
		}
		if !foreign {
			t.Fatalf("proc %d never exchanges with a partner", q)
		}
	}
}

func TestFFTByNameAndValidation(t *testing.T) {
	if w := ByName("FFT", 4); w == nil || w.Name != "FFT" {
		t.Fatal("ByName(FFT) failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two points")
		}
	}()
	FFT(FFTConfig{Procs: 4, Points: 48})
}
