package config

import (
	"strings"
	"testing"

	"dircoh/internal/apps"
	"dircoh/internal/core"
	"dircoh/internal/machine"
)

func TestLoadMinimal(t *testing.T) {
	s, err := Load(strings.NewReader(`{"runs":[{"app":"LU"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 1 || s.Runs[0].Name != "LU/full" {
		t.Fatalf("suite = %+v", s)
	}
	cfg, err := s.Runs[0].Machine.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 32 || cfg.Block != 16 || cfg.ProcsPerCluster != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestLoadFull(t *testing.T) {
	src := `{
	  "runs": [{
	    "name": "sparse cv",
	    "app": "MP3D",
	    "machine": {
	      "procs": 16,
	      "procsPerCluster": 4,
	      "block": 32,
	      "scheme": {"kind": "cv", "ptrs": 4, "region": 4},
	      "cache": {"l1": 1024, "l2": 4096, "l2Assoc": 2},
	      "sparse": {"entries": 64, "assoc": 2, "policy": "rand"},
	      "barrier": "tree",
	      "portTime": 4,
	      "seed": 7
	    }
	  }]
	}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Runs[0].Machine.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Procs != 16 || cfg.ProcsPerCluster != 4 || cfg.Block != 32 {
		t.Fatalf("machine wrong: %+v", cfg)
	}
	if cfg.Cache.L2Size != 4096 || cfg.Cache.L2Assoc != 2 || cfg.Cache.L1Size != 1024 {
		t.Fatalf("cache wrong: %+v", cfg.Cache)
	}
	if cfg.Sparse.Entries != 64 || cfg.Sparse.Assoc != 2 {
		t.Fatalf("sparse wrong: %+v", cfg.Sparse)
	}
	if cfg.Barrier != machine.TreeBarrier || cfg.Mesh.PortTime != 4 || cfg.Seed != 7 {
		t.Fatalf("options wrong: %+v", cfg)
	}
	if got := core.Must(cfg.Scheme(cfg.Clusters())).Name(); got != "Dir4CV4" {
		t.Fatalf("scheme = %q", got)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty runs":    `{"runs":[]}`,
		"no app":        `{"runs":[{}]}`,
		"unknown field": `{"runs":[{"app":"LU","typo":1}]}`,
		"invalid json":  `{`,
	}
	for name, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []MachineSpec{
		{Scheme: SchemeSpec{Kind: "bogus"}},
		{Sparse: &SparseSpec{Entries: 8, Policy: "bogus"}},
		{Barrier: "bogus"},
		{Overflow: &OverflowSpec{Ptrs: 2, WideEntries: 8, Policy: "bogus"}},
	}
	for i, spec := range cases {
		if _, err := spec.Build(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestOverflowSpec(t *testing.T) {
	spec := MachineSpec{Overflow: &OverflowSpec{Ptrs: 2, WideEntries: 16, Assoc: 2}}
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Overflow == nil || cfg.Overflow.WideEntries != 16 {
		t.Fatalf("overflow wrong: %+v", cfg.Overflow)
	}
}

// TestEndToEnd builds and runs a tiny suite-defined machine.
func TestEndToEnd(t *testing.T) {
	s, err := Load(strings.NewReader(
		`{"runs":[{"app":"FFT","machine":{"procs":4,"scheme":{"kind":"cv"}}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	run := s.Runs[0]
	cfg, err := run.Machine.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := apps.ByName(run.App, cfg.Procs)
	if w == nil {
		t.Fatalf("unknown app %q", run.App)
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if r.ExecTime == 0 {
		t.Fatal("no work done")
	}
}
