// Package config loads machine and experiment-suite descriptions from
// JSON, so whole evaluation campaigns can be specified declaratively and
// replayed (cmd/suite). Every field has the paper's defaults; a minimal
// spec like {"app":"LU"} is a valid run.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dircoh/internal/cache"
	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
)

// SchemeSpec selects a directory entry scheme.
type SchemeSpec struct {
	Kind   string `json:"kind"`   // full | cv | b | nb | x or notation like Dir3CV2 (default full)
	Ptrs   int    `json:"ptrs"`   // pointers for limited schemes (default 3; 2 for x)
	Region int    `json:"region"` // coarse vector region size (default 2)
}

// Factory resolves the spec to a machine.SchemeFactory via the core
// scheme registry.
func (s SchemeSpec) Factory() (machine.SchemeFactory, error) {
	f, err := core.ParseSpec(s.Kind, s.Ptrs, s.Region)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return f, nil
}

// CacheSpec sizes the processor cache hierarchy (bytes).
type CacheSpec struct {
	L1      int `json:"l1"`      // default 64 KiB
	L1Assoc int `json:"l1Assoc"` // default 1
	L2      int `json:"l2"`      // default 256 KiB
	L2Assoc int `json:"l2Assoc"` // default 1
}

// SparseSpec enables the sparse directory.
type SparseSpec struct {
	Entries int    `json:"entries"`
	Assoc   int    `json:"assoc"`  // default 4
	Policy  string `json:"policy"` // lru | rand | lra (default lru)
}

// OverflowSpec enables the §7 two-level directory.
type OverflowSpec struct {
	Ptrs        int    `json:"ptrs"`
	WideEntries int    `json:"wideEntries"`
	Assoc       int    `json:"assoc"`
	Policy      string `json:"policy"`
}

func policy(name string) (sparse.ReplacePolicy, error) {
	switch strings.ToLower(name) {
	case "", "lru":
		return sparse.LRU, nil
	case "rand", "random":
		return sparse.Random, nil
	case "lra":
		return sparse.LRA, nil
	default:
		return 0, fmt.Errorf("config: unknown replacement policy %q", name)
	}
}

// MachineSpec is the JSON form of machine.Config.
type MachineSpec struct {
	Procs           int           `json:"procs"`           // default 32
	ProcsPerCluster int           `json:"procsPerCluster"` // default 1
	Block           int           `json:"block"`           // default 16
	Scheme          SchemeSpec    `json:"scheme"`
	Cache           *CacheSpec    `json:"cache"`
	Sparse          *SparseSpec   `json:"sparse"`
	Overflow        *OverflowSpec `json:"overflow"`
	Barrier         string        `json:"barrier"`  // central | tree
	PortTime        uint64        `json:"portTime"` // network ejection occupancy
	Seed            int64         `json:"seed"`
}

// Build resolves the spec into a validated machine.Config.
func (s *MachineSpec) Build() (machine.Config, error) {
	f, err := s.Scheme.Factory()
	if err != nil {
		return machine.Config{}, err
	}
	cfg := machine.DefaultConfig(f)
	if s.Procs > 0 {
		cfg.Procs = s.Procs
	}
	if s.ProcsPerCluster > 0 {
		cfg.ProcsPerCluster = s.ProcsPerCluster
	}
	if s.Block > 0 {
		cfg.Block = s.Block
		cfg.Cache.Block = s.Block
	}
	if s.Cache != nil {
		cc := cache.Config{
			L1Size: 64 << 10, L1Assoc: 1,
			L2Size: 256 << 10, L2Assoc: 1,
			Block: cfg.Block,
		}
		if s.Cache.L1 > 0 {
			cc.L1Size = s.Cache.L1
		}
		if s.Cache.L1Assoc > 0 {
			cc.L1Assoc = s.Cache.L1Assoc
		}
		if s.Cache.L2 > 0 {
			cc.L2Size = s.Cache.L2
		}
		if s.Cache.L2Assoc > 0 {
			cc.L2Assoc = s.Cache.L2Assoc
		}
		cfg.Cache = cc
	}
	if s.Sparse != nil {
		pol, err := policy(s.Sparse.Policy)
		if err != nil {
			return machine.Config{}, err
		}
		assoc := s.Sparse.Assoc
		if assoc <= 0 {
			assoc = 4
		}
		cfg.Sparse = machine.SparseConfig{Entries: s.Sparse.Entries, Assoc: assoc, Policy: pol}
	}
	if s.Overflow != nil {
		pol, err := policy(s.Overflow.Policy)
		if err != nil {
			return machine.Config{}, err
		}
		cfg.Overflow = &machine.OverflowDirConfig{
			Ptrs:        s.Overflow.Ptrs,
			WideEntries: s.Overflow.WideEntries,
			Assoc:       s.Overflow.Assoc,
			Policy:      pol,
		}
	}
	switch strings.ToLower(s.Barrier) {
	case "", "central":
		cfg.Barrier = machine.CentralBarrier
	case "tree":
		cfg.Barrier = machine.TreeBarrier
	default:
		return machine.Config{}, fmt.Errorf("config: unknown barrier kind %q", s.Barrier)
	}
	cfg.Mesh.PortTime = sim.Time(s.PortTime)
	cfg.Seed = s.Seed
	return cfg, nil
}

// RunSpec is one experiment: an application on a machine.
type RunSpec struct {
	Name    string      `json:"name"` // display label (default: app + scheme)
	App     string      `json:"app"`  // LU | DWF | MP3D | LocusRoute | FFT
	Machine MachineSpec `json:"machine"`
}

// Suite is a list of runs.
type Suite struct {
	Runs []RunSpec `json:"runs"`
}

// Load parses a suite from JSON, rejecting unknown fields so typos fail
// loudly.
func Load(r io.Reader) (*Suite, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if len(s.Runs) == 0 {
		return nil, fmt.Errorf("config: suite has no runs")
	}
	for i := range s.Runs {
		if s.Runs[i].App == "" {
			return nil, fmt.Errorf("config: run %d has no app", i)
		}
		if s.Runs[i].Name == "" {
			kind := s.Runs[i].Machine.Scheme.Kind
			if kind == "" {
				kind = "full"
			}
			s.Runs[i].Name = s.Runs[i].App + "/" + kind
		}
	}
	return &s, nil
}
