package machine

import (
	"math/rand"
	"strings"
	"testing"

	"dircoh/internal/apps"
	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/obs"
	"dircoh/internal/sparse"
	"dircoh/internal/tango"
)

// stressStreams builds a seeded adversarial workload: short streams of
// reads, writes, locks and barriers over a small block pool, maximizing
// invalidations, recalls and gate contention.
func stressStreams(rng *rand.Rand, procs, refs, blocks int, sync bool) [][]tango.Ref {
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for i := 0; i < refs; i++ {
			blk := int64(rng.Intn(blocks))
			switch rng.Intn(12) {
			case 0, 1, 2, 3:
				b.Write(addr(blk))
			case 4:
				if sync {
					lock := addr(int64(blocks) + int64(rng.Intn(4)))
					b.Lock(lock)
					b.Write(addr(blk))
					b.Unlock(lock)
				} else {
					b.Write(addr(blk))
				}
			default:
				b.Read(addr(blk))
			}
		}
		if sync {
			b.Barrier(addr(int64(blocks) + 8))
		}
		streams[p] = b.Refs()
	}
	return streams
}

// checkedRun runs cfg with the invariant checker on and returns the machine.
func checkedRun(t *testing.T, cfg Config, w *tango.Workload) *Machine {
	t.Helper()
	cfg.Check = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCheckerCleanRuns asserts the oracle reports zero violations across
// the scheme/directory/clustering matrix on a correct protocol — the
// soundness half of the checker's contract.
func TestCheckerCleanRuns(t *testing.T) {
	schemes := []SchemeFactory{FullVec, CoarseVec2, Broadcast, NoBroadcast, SupersetX}
	// The direct-mapped geometry matters: single-way sets thrash hardest,
	// so an entry can be reclaimed, re-allocated by a replayed request and
	// reclaimed again while the first recall is still in flight (the
	// overlapping-recall case checkRecallClean must exempt).
	geoms := []SparseConfig{
		{},
		{Entries: 4, Assoc: 2, Policy: sparse.LRU},
		{Entries: 16, Assoc: 2, Policy: sparse.LRU},
		{Entries: 16, Assoc: 1, Policy: sparse.LRU},
	}
	for si, schemeF := range schemes {
		for gi, geom := range geoms {
			for seed := int64(0); seed < 2; seed++ {
				rng := rand.New(rand.NewSource(seed*131 + int64(si)))
				const procs = 6
				streams := stressStreams(rng, procs, 300, 40, true)
				cfg := testConfig(procs, schemeF)
				cfg.Seed = seed
				cfg.Sparse = geom
				for _, ppc := range []int{1, 2} {
					ccfg := cfg
					ccfg.ProcsPerCluster = ppc
					m := checkedRun(t, ccfg, wl(streams...))
					if err := m.CheckErr(); err != nil {
						t.Fatalf("scheme %d geom %d seed=%d ppc=%d: %v\nall: %v",
							si, gi, seed, ppc, err, m.Violations())
					}
					if err := m.CheckCoherence(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

// TestCheckerCleanRecallRace pins the overlapping-recall regression found
// by the checker itself: on LU with a direct-mapped 16-entry sparse
// directory, a hot set reclaims a block's entry mid-transaction, a read
// replayed off the block's gate re-allocates it and installs a fresh copy,
// and the set reclaims the fresh entry again before the first recall's
// acknowledgements drain. The first recall to complete must attribute the
// surviving copy to the covering entry or the still-pending second recall
// instead of flagging it.
func TestCheckerCleanRecallRace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second application run")
	}
	build, err := apps.Lookup("LU")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(CoarseVec2)
	cfg.Procs = 8
	cfg.ProcsPerCluster = 1
	cfg.Cache = cache.Config{L1Size: 64 << 10, L1Assoc: 1, L2Size: 256 << 10, L2Assoc: 1, Block: 16}
	cfg.Seed = 1
	cfg.Sparse = SparseConfig{Entries: 16, Assoc: 1, Policy: sparse.LRU}
	m := checkedRun(t, cfg, build(8))
	if err := m.CheckErr(); err != nil {
		t.Fatalf("recall race regression: %v\nall: %v", err, m.Violations())
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerCleanOverflowDir covers the two-level overflow directory.
func TestCheckerCleanOverflowDir(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const procs = 6
	streams := stressStreams(rng, procs, 400, 32, false)
	cfg := testConfig(procs, FullVec)
	cfg.Overflow = &OverflowDirConfig{Ptrs: 1, WideEntries: 4, Assoc: 2}
	m := checkedRun(t, cfg, wl(streams...))
	if err := m.CheckErr(); err != nil {
		t.Fatalf("overflow dir: %v", err)
	}
}

// TestCheckerResultsUnchanged asserts enabling the checker never changes
// what the simulation computes, only observes it.
func TestCheckerResultsUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	streams := stressStreams(rng, 4, 300, 24, true)
	cfg := testConfig(4, CoarseVec2)
	cfg.Sparse = SparseConfig{Entries: 8, Assoc: 2, Policy: sparse.LRU}
	_, base := mustRun(t, cfg, wl(streams...))
	ccfg := cfg
	ccfg.Check = true
	m, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(wl(streams...))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckErr(); err != nil {
		t.Fatal(err)
	}
	if r.ExecTime != base.ExecTime || r.Msgs != base.Msgs {
		t.Fatalf("checker changed results: exec %d vs %d, msgs %v vs %v",
			r.ExecTime, base.ExecTime, r.Msgs, base.Msgs)
	}
}

// TestCheckerCatchesDroppedInval seeds the drop-inval fault and requires
// the oracle to flag the stale copy — the completeness half of the
// contract. CheckCoherence's quiescence sweep must agree.
func TestCheckerCatchesDroppedInval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const procs = 4
	streams := stressStreams(rng, procs, 200, 12, false)
	cfg := testConfig(procs, FullVec)
	cfg.Fault = FaultDropInval
	m := checkedRun(t, cfg, wl(streams...))
	if m.ViolationCount() == 0 {
		t.Fatal("dropped invalidation went undetected")
	}
	var sawState bool
	for _, v := range m.Violations() {
		if v.Rule == check.RuleSingleWriter || v.Rule == check.RuleCoverage {
			sawState = true
		}
	}
	if !sawState {
		t.Fatalf("expected a single-writer or coverage violation, got %v", m.Violations())
	}
	// Note CheckCoherence (the quiescence sweep) may or may not still see
	// the stale copy: a later invalidation of the same block can clean it
	// up before the run ends. Catching the transient window is exactly
	// what the runtime oracle adds.
}

// TestCheckerCatchesSkippedRecall seeds the skip-recall fault on a tiny
// sparse directory and requires a recall violation.
func TestCheckerCatchesSkippedRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const procs = 6
	streams := stressStreams(rng, procs, 400, 48, false)
	cfg := testConfig(procs, FullVec)
	cfg.Sparse = SparseConfig{Entries: 4, Assoc: 1, Policy: sparse.LRU}
	cfg.Fault = FaultSkipRecallInval
	m := checkedRun(t, cfg, wl(streams...))
	var sawRecall bool
	for _, v := range m.Violations() {
		if v.Rule == check.RuleRecall {
			sawRecall = true
		}
	}
	if !sawRecall {
		t.Fatalf("skipped recall invalidation went undetected (violations: %v)", m.Violations())
	}
}

// TestCheckerViolationSink verifies violations reach a configured sink as
// JSONL records.
func TestCheckerViolationSink(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	streams := stressStreams(rng, 4, 200, 12, false)
	cfg := testConfig(4, FullVec)
	cfg.Fault = FaultDropInval
	sink := &check.MemSink{}
	cfg.CheckSink = sink
	m := checkedRun(t, cfg, wl(streams...))
	if got, want := uint64(len(sink.Violations)), m.ViolationCount(); got != want {
		t.Fatalf("sink saw %d violations, recorder counted %d", got, want)
	}
}

// TestCycleDeltaClamps is the regression test for the uint64 underflow on
// the latency paths: a reversed interval must clamp to zero and be
// reported, not wrap to ~2^64 and poison the histogram.
func TestCycleDeltaClamps(t *testing.T) {
	cfg := testConfig(1, FullVec)
	cfg.Check = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.cycleDelta(5, 5, "tx.lat.read"); got != 0 {
		t.Fatalf("zero-length phase: got %d, want 0", got)
	}
	if m.ViolationCount() != 0 {
		t.Fatal("zero-length phase must not be a violation")
	}
	if got := m.cycleDelta(4, 9, "tx.lat.read"); got != 0 {
		t.Fatalf("reversed interval: got %d, want 0 (underflow!)", got)
	}
	if m.ViolationCount() != 1 {
		t.Fatalf("reversed interval not reported: %v", m.Violations())
	}
	v := m.Violations()[0]
	if v.Rule != check.RuleLatency || !strings.Contains(v.Detail, "tx.lat.read") {
		t.Fatalf("violation should name the counter pair: %+v", v)
	}
	// Without the checker the clamp still applies (the bugfix proper).
	m2, err := New(testConfig(1, FullVec))
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.cycleDelta(4, 9, "read latency"); got != 0 {
		t.Fatalf("unchecked clamp: got %d, want 0", got)
	}
}

// TestCheckerForcesSpanMachinery: with Check on and Spans nil the span
// verifier must still see the transaction stream (via a discarding
// recorder), exercising the tiling checks.
func TestCheckerForcesSpanMachinery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	streams := stressStreams(rng, 4, 150, 16, true)
	cfg := testConfig(4, FullVec)
	cfg.Check = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.spans == nil {
		t.Fatal("checker did not force the span recorder on")
	}
	if _, err := m.Run(wl(streams...)); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckErr(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerSpanTamper feeds the span verifier a corrupted span directly
// and expects a tiling violation — guarding the verifier itself.
func TestCheckerSpanTamper(t *testing.T) {
	r := check.NewRecorder(nil, nil)
	r.Span(obs.Span{Tx: 1, ID: 1, Parent: 0, Class: obs.TxRead, Phase: obs.PhTotal, Start: 10, End: 5})
	if r.Count() == 0 {
		t.Fatal("end-before-start span not flagged")
	}
}
