package machine

import (
	"math/rand"
	"testing"
	"time"

	"dircoh/internal/obs"
	"dircoh/internal/tango"
)

// overheadWorkload is the mixed random workload the overhead measurements
// run: enough references that one run takes tens of milliseconds, so the
// timing ratio is meaningful.
func overheadWorkload() *tango.Workload {
	const procs = 16
	const refsPerProc = 4000
	rng := rand.New(rand.NewSource(7))
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var bl tango.Builder
		for i := 0; i < refsPerProc; i++ {
			blk := int64(rng.Intn(512))
			if rng.Intn(4) == 0 {
				bl.Write(addr(blk))
			} else {
				bl.Read(addr(blk))
			}
		}
		streams[p] = bl.Refs()
	}
	return wl(streams...)
}

// TestTraceOverheadDisabled guards the observability layer's zero-cost
// claim: simulating with event tracing AND span recording enabled on the
// discard sinks must stay
// within 25% of the nil-tracer run (the acceptance budget is 2% on the
// long benchmarks; the slack here absorbs timer noise on a short run).
// Runs are interleaved and the minimum of several rounds is compared, so
// one scheduling hiccup cannot fail the test.
func TestTraceOverheadDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	w := overheadWorkload()
	run := func(tr *obs.Tracer, sp *obs.SpanRecorder) time.Duration {
		cfg := testConfig(16, CoarseVec2)
		cfg.Trace = tr
		cfg.Spans = sp
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := m.Run(w); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(nil, nil) // warm up caches and the allocator

	minOff := time.Duration(1<<63 - 1)
	minOn := minOff
	for round := 0; round < 5; round++ {
		if d := run(nil, nil); d < minOff {
			minOff = d
		}
		if d := run(obs.NewTracer(obs.Discard, 0), obs.NewSpanRecorder(obs.DiscardSpans, 0)); d < minOn {
			minOn = d
		}
	}
	ratio := float64(minOn) / float64(minOff)
	t.Logf("disabled %v, discard sink %v, ratio %.3f", minOff, minOn, ratio)
	if ratio > 1.25 {
		t.Errorf("discard-sink tracing is %.0f%% slower than disabled (want <= 25%%)", 100*(ratio-1))
	}
}

// TestShardedObsOverhead holds the overhead guard on the sharded core at
// width 4. The budget is wider than the serial test's: the serial discard
// path recycles a fixed ring and retains nothing, while the sharded core
// must retain every record in per-shard chunks until the canonical
// (time, key) merge at quiescence — tens of megabytes written, re-read,
// and emitted on this workload — so byte-identical output has a real
// memory-traffic floor (measured ~1.25-1.35x; see DESIGN.md). The guard
// catches regressions in the chunked buffering, not a zero-cost claim.
func TestShardedObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	w := overheadWorkload()
	run := func(tr *obs.Tracer, sp *obs.SpanRecorder) time.Duration {
		cfg := testConfig(16, CoarseVec2)
		cfg.Shards = 4
		cfg.Trace = tr
		cfg.Spans = sp
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Shards() != 4 {
			t.Fatalf("fell back to serial: %s", m.FallbackReason())
		}
		start := time.Now()
		if _, err := m.Run(w); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(nil, nil)

	minOff := time.Duration(1<<63 - 1)
	minOn := minOff
	for round := 0; round < 5; round++ {
		if d := run(nil, nil); d < minOff {
			minOff = d
		}
		if d := run(obs.NewTracer(obs.Discard, 0), obs.NewSpanRecorder(obs.DiscardSpans, 0)); d < minOn {
			minOn = d
		}
	}
	ratio := float64(minOn) / float64(minOff)
	t.Logf("width 4: obs off %v, obs on %v, ratio %.3f", minOff, minOn, ratio)
	if ratio > 1.5 {
		t.Errorf("width-4 observability is %.0f%% slower than disabled (want <= 50%%)", 100*(ratio-1))
	}
}

// BenchmarkMachineTraceDiscard is BenchmarkMachineRefsPerSec with tracing
// enabled on the discard sink, for before/after comparison of the
// instrumentation's cost.
func BenchmarkMachineTraceDiscard(b *testing.B) {
	w := overheadWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := testConfig(16, CoarseVec2)
		cfg.Trace = obs.NewTracer(obs.Discard, 0)
		cfg.Spans = obs.NewSpanRecorder(obs.DiscardSpans, 0)
		m, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(w); err != nil {
			b.Fatal(err)
		}
	}
}
