package machine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dircoh/internal/check"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
	"dircoh/internal/sim"
)

// End-to-end delivery recovery over the unreliable mesh (Mesh.Faults).
// Every protocol message becomes a sequence-numbered envelope: the sender
// schedules the copies the fault model lets through plus a retransmit
// timer, the receiver's delivered latch makes the handler idempotent
// (duplicates are counted, not executed), and a message whose timer fires
// undelivered is re-sent with exponential backoff until the retry budget
// runs out. A transaction the recovery machinery still cannot complete is
// caught by the liveness watchdog below. With faults off none of this
// exists: send takes the exact pre-fault-layer path.

const (
	// DefaultMaxRetries is the retransmit budget per message when
	// Config.Retry.MaxRetries is 0.
	DefaultMaxRetries = 8
	// DefaultStuckBudget is the watchdog's no-progress budget (in cycles)
	// when faults are enabled and Config.StuckBudget is 0. Generous: the
	// full backoff sequence of a congested message plus heavy lock
	// contention stays well inside it.
	DefaultStuckBudget sim.Time = 1 << 20
	// backoffCap bounds the retransmit timeout at backoffCap times the
	// base timeout.
	backoffCap = 64
)

// netMsg is one logical protocol message in flight under the fault model.
// id is the machine-wide sequence number duplicates are recognized by.
type netMsg struct {
	id        uint64
	kind      protocol.MsgKind
	from, to  int
	attempt   int      // send attempts so far (1 = the original)
	first     sim.Time // injection time of the first attempt
	sent      sim.Time // injection time of the latest attempt
	timeout   sim.Time // current retransmit timeout
	delivered bool     // receiver-side dedup latch: the handler ran
	failed    bool     // retry budget exhausted, message abandoned
	deliver   func()
	tx        *txState // transaction for net.recovery spans, may be nil
}

// sendReliable wraps arrive in an envelope and dispatches the first
// attempt.
func (m *Machine) sendReliable(kind protocol.MsgKind, from, to int, tx *txState, arrive func()) {
	now := m.eng.Now()
	m.msgSeq++
	env := &netMsg{
		id: m.msgSeq, kind: kind, from: from, to: to,
		first: now, timeout: m.baseTimeout(from, to),
		deliver: arrive, tx: tx,
	}
	m.inflight[env.id] = env
	m.dispatch(env)
}

// baseTimeout is the first-attempt retransmit timeout toward to: several
// one-way latencies plus directory service slack, so queueing alone
// rarely triggers a spurious (but harmless) retry.
func (m *Machine) baseTimeout(from, to int) sim.Time {
	if m.cfg.Retry.Timeout > 0 {
		return m.cfg.Retry.Timeout
	}
	return 4*m.net.Latency(from, to) + 4*m.t.Dir + 16
}

// dispatch injects one attempt of env into the faulty mesh: the copies
// that survive are scheduled for delivery, and a retransmit timer guards
// the attempt. Stale timers (the attempt was superseded or the message
// delivered) fall through timeoutMsg as no-ops.
func (m *Machine) dispatch(env *netMsg) {
	env.attempt++
	env.sent = m.eng.Now()
	arrivals, n := m.net.SendFaulty(env.sent, env.from, env.to)
	for i := 0; i < n; i++ {
		m.eng.At(arrivals[i], func() { m.deliverMsg(env) })
	}
	att := env.attempt
	m.eng.At(env.sent+env.timeout, func() { m.timeoutMsg(env, att) })
}

// deliverMsg runs env's handler exactly once; every further copy (a
// duplicate, or a retry racing a delayed original) is suppressed.
func (m *Machine) deliverMsg(env *netMsg) {
	if env.delivered {
		m.dupSuppressed.Inc()
		return
	}
	env.delivered = true
	delete(m.inflight, env.id)
	env.deliver()
}

// timeoutMsg handles attempt att's retransmit timer: re-send with doubled
// timeout while the budget lasts, then abandon the message for the
// watchdog to report.
func (m *Machine) timeoutMsg(env *netMsg, att int) {
	if env.delivered || env.failed || att != env.attempt {
		return
	}
	if env.attempt > m.cfg.Retry.MaxRetries {
		env.failed = true
		m.retryGiveup.Inc()
		return
	}
	m.retryCnt.Inc()
	m.emitRecovery(env)
	if next := env.timeout * 2; next <= m.baseTimeout(env.from, env.to)*backoffCap {
		env.timeout = next
	}
	m.dispatch(env)
}

// emitRecovery annotates env.tx with one recovery episode: an async child
// span covering the lost attempt's injection to the retry, its N carrying
// the attempt number so tracelens can show retry-inflated tails. Fault
// recovery only runs on the serial engine, so the sender cluster passed to
// emitSpan is never used for shard buffering.
func (m *Machine) emitRecovery(env *netMsg) {
	tx := env.tx
	if tx == nil || m.spans == nil {
		return
	}
	m.emitSpan(m.clusters[env.from], obs.Span{
		Tx: tx.id, ID: m.spans.NextID(), Parent: tx.id,
		Class: tx.class, Phase: obs.PhRecovery, Node: tx.node, Block: tx.block,
		Start: uint64(env.sent), End: uint64(m.eng.Now()), N: int64(env.attempt),
	})
}

// StuckError reports a run aborted without completing: the liveness
// watchdog found stuck processors, the wall-clock deadline expired, or
// the event queue drained with work remaining (undeliverable messages).
// Dump carries the full diagnostic: per-processor state and pending
// acknowledgements, gate/RAC/MSHR occupancy per cluster, and every
// in-flight or abandoned network envelope with its transaction context.
type StuckError struct {
	Reason string
	Dump   string
}

func (e *StuckError) Error() string {
	return "machine: " + e.Reason + "\n" + e.Dump
}

// watchdogEnabled reports whether the liveness watchdog runs (armed
// explicitly, or defaulted on by the fault model).
func (m *Machine) watchdogEnabled() bool { return m.cfg.StuckBudget > 0 }

// watchdogScan is the periodic forward-progress check: any unfinished
// processor idle past the budget aborts the run via m.aborted. It
// rescans at a quarter of the budget while unfinished work remains, and
// falls silent when every processor is done so it cannot keep the event
// queue alive on its own.
func (m *Machine) watchdogScan() {
	if m.aborted != nil {
		return
	}
	now := m.eng.Now()
	budget := m.cfg.StuckBudget
	allDone := true
	stuck := -1
	for _, p := range m.procs {
		if p.done {
			continue
		}
		allDone = false
		if now-p.lastProgress > budget && stuck < 0 {
			stuck = p.id
		}
	}
	if stuck >= 0 {
		m.abort(fmt.Sprintf("liveness watchdog: proc %d made no progress for over %d cycles (budget exceeded at t=%d)",
			stuck, budget, now))
		return
	}
	if !allDone && m.eng.Pending() > 0 {
		step := budget / 4
		if step == 0 {
			step = 1
		}
		m.eng.After(step, m.watchdogScan)
	}
}

// abort records the liveness failure (as a checker violation when the
// checker is on) and arms m.aborted so the run loop stops after the
// current event.
func (m *Machine) abort(reason string) {
	if m.chk != nil {
		m.chk.Violationf(check.RuleLiveness, -1, -1, uint64(m.simNow()), "%s", reason)
	}
	m.aborted = &StuckError{Reason: reason, Dump: m.diagnosticDump()}
}

// runEngine drives the event loop, honoring watchdog aborts and the
// wall-clock deadline. The deadline and the live-snapshot throttle are
// sampled every few thousand events so the time syscall never shows up in
// profiles; neither can change simulation results.
func (m *Machine) runEngine() error {
	if m.watchdogEnabled() {
		m.eng.After(m.cfg.StuckBudget, m.watchdogScan)
	}
	deadline := m.cfg.Deadline
	sampleWall := deadline > 0 || m.cfg.Live != nil
	var start, lastPub time.Time
	if sampleWall {
		start = time.Now()
		lastPub = start
	}
	var n uint64
	for m.aborted == nil && m.eng.Step() {
		if sampleWall {
			if n++; n&0x3FFF == 0 {
				if deadline > 0 && time.Since(start) > deadline {
					m.abort(fmt.Sprintf("wall-clock deadline %s exceeded at t=%d", deadline, m.eng.Now()))
				}
				if m.cfg.Live != nil && time.Since(lastPub) >= livePublishEvery {
					m.publishLive(false)
					lastPub = time.Now()
				}
			}
		}
	}
	if m.aborted != nil {
		return m.aborted
	}
	return nil
}

// diagnosticDump renders the machine's stuck state for StuckError.
func (m *Machine) diagnosticDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  t=%d events_fired=%d events_pending=%d\n", m.simNow(), m.simFired(), m.simPending())
	for _, p := range m.procs {
		if p.done {
			continue
		}
		fmt.Fprintf(&b, "  proc %d (cluster %d): %d refs remaining, %d acks pending, last progress t=%d",
			p.id, p.cl.id, p.stream.Remaining(), p.pendingAcks, p.lastProgress)
		if p.opPending {
			op := "read"
			if p.opWrite {
				op = "write"
			}
			fmt.Fprintf(&b, ", %s in flight since t=%d", op, p.opStart)
		}
		if p.afterDrain != nil {
			b.WriteString(", fenced")
		}
		if p.drainToFinish {
			b.WriteString(", draining to finish")
		}
		if tx := m.lockTxOf(p); tx != nil {
			fmt.Fprintf(&b, ", lock tx %d on addr %d open since t=%d", tx.id, tx.block, tx.start)
		}
		b.WriteByte('\n')
	}
	for _, c := range m.clusters {
		var parts []string
		for _, blk := range c.gate.BusyBlocks() {
			parts = append(parts, fmt.Sprintf("gate@%d(+%d queued)", blk, c.gate.Pending(blk)))
		}
		for _, blk := range c.rac.TrackedBlocks() {
			parts = append(parts, fmt.Sprintf("rac@%d(%d acks owed)", blk, c.rac.Outstanding(blk)))
		}
		for _, blk := range sortedKeys(c.pendingReads) {
			parts = append(parts, fmt.Sprintf("pendingRead@%d(%d merged)", blk, len(c.pendingReads[blk])))
		}
		for _, blk := range sortedKeys(c.pendingWrite) {
			parts = append(parts, fmt.Sprintf("pendingWrite@%d", blk))
		}
		if len(parts) > 0 {
			fmt.Fprintf(&b, "  cluster %d: %s\n", c.id, strings.Join(parts, " "))
		}
	}
	if m.faultsOn {
		ids := sortedKeys(m.inflight)
		for _, id := range ids {
			env := m.inflight[id]
			status := "in flight"
			if env.failed {
				status = "given up"
			}
			fmt.Fprintf(&b, "  msg %d %v %d->%d: %s, attempt %d, first sent t=%d, last sent t=%d, timeout %d",
				id, env.kind, env.from, env.to, status, env.attempt, env.first, env.sent, env.timeout)
			if tx := env.tx; tx != nil {
				fmt.Fprintf(&b, " [tx %d %v block %d, open since t=%d, in phase since t=%d, %d acks outstanding]",
					tx.id, tx.class, tx.block, tx.start, tx.mark, tx.acks)
			}
			b.WriteByte('\n')
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// sortedKeys returns m's keys in ascending order (diagnostics must render
// deterministically).
func sortedKeys[K int64 | uint64, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
