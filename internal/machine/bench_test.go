package machine

import (
	"math/rand"
	"testing"

	"dircoh/internal/tango"
)

// BenchmarkMachineRefsPerSec measures end-to-end simulation throughput:
// simulated shared references per wall-clock second on a 16-processor
// machine with a mixed workload.
func BenchmarkMachineRefsPerSec(b *testing.B) {
	const procs = 16
	const refsPerProc = 2000
	mkWorkload := func(seed int64) *tango.Workload {
		rng := rand.New(rand.NewSource(seed))
		streams := make([][]tango.Ref, procs)
		for p := range streams {
			var bl tango.Builder
			for i := 0; i < refsPerProc; i++ {
				blk := int64(rng.Intn(512))
				if rng.Intn(4) == 0 {
					bl.Write(addr(blk))
				} else {
					bl.Read(addr(blk))
				}
			}
			streams[p] = bl.Refs()
		}
		return wl(streams...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(testConfig(procs, CoarseVec2))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(mkWorkload(7)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*refsPerProc*b.N)/b.Elapsed().Seconds(), "refs/s")
}
