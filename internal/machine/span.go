package machine

import (
	"dircoh/internal/obs"
	"dircoh/internal/sim"
)

// txState tracks one in-flight remote transaction for span emission. It
// exists only while span tracing is enabled (Config.Spans non-nil); every
// helper below treats a nil receiver argument as tracing-off and costs one
// branch, so the simulation hot path is untouched when spans are disabled.
//
// The machine emits child spans as the transaction crosses phase
// boundaries: mark carries the start of the phase currently in progress, so
// the synchronous children tile [start, end of root] exactly — the
// invariant tracelens verifies. Acknowledgement gathering is the one
// exception: it overlaps the reply (release consistency), so its span is
// emitted when the last ack arrives, possibly after the root.
type txState struct {
	id    uint64
	class obs.TxClass
	node  int32
	block int64
	start sim.Time
	mark  sim.Time

	// Invalidation fan-out bookkeeping: acks counts outstanding
	// acknowledgements, ackStart the dispatch time. endOnAcks marks
	// transactions (evictions) whose root ends with the last ack.
	acks      int
	ackStart  sim.Time
	fanout    int64
	endOnAcks bool
}

// txStart opens a transaction at the current cycle, or returns nil when
// span tracing is off.
func (m *Machine) txStart(class obs.TxClass, node int, block int64) *txState {
	if m.spans == nil {
		return nil
	}
	now := m.eng.Now()
	tx := &txState{id: m.spans.NextID(), class: class, node: int32(node), block: block, start: now, mark: now}
	if m.chk != nil {
		m.chk.OpenTx(block, tx.id)
	}
	return tx
}

// emitSpan hands one span to the recorder and, when checking is on, to the
// checker's span-tiling verifier.
func (m *Machine) emitSpan(s obs.Span) {
	m.spans.Emit(s)
	if m.chk != nil {
		m.chk.Span(s)
	}
}

// txPhase closes the phase that began at tx.mark, emitting its child span,
// and starts the next phase at the current cycle.
func (m *Machine) txPhase(tx *txState, ph obs.Phase) {
	if tx == nil {
		return
	}
	now := m.eng.Now()
	m.emitSpan(obs.Span{
		Tx: tx.id, ID: m.spans.NextID(), Parent: tx.id,
		Class: tx.class, Phase: ph, Node: tx.node, Block: tx.block,
		Start: uint64(tx.mark), End: uint64(now),
	})
	tx.mark = now
}

// txFanout registers n outstanding invalidation acknowledgements dispatched
// at the current cycle. When endOnAcks is set the transaction's root span
// ends at the last ack (eviction recalls); otherwise the acks drain
// asynchronously and only the ack.gather child depends on them.
func (m *Machine) txFanout(tx *txState, n int, endOnAcks bool) {
	if tx == nil || n <= 0 {
		return
	}
	tx.acks += n
	tx.fanout += int64(n)
	tx.ackStart = m.eng.Now()
	tx.endOnAcks = endOnAcks
}

// txAck records one acknowledgement; the last one emits the ack.gather span
// and, for endOnAcks transactions, the root.
func (m *Machine) txAck(tx *txState) {
	if tx == nil {
		return
	}
	tx.acks--
	if tx.acks > 0 {
		return
	}
	now := m.eng.Now()
	m.emitSpan(obs.Span{
		Tx: tx.id, ID: m.spans.NextID(), Parent: tx.id,
		Class: tx.class, Phase: obs.PhAckGather, Node: tx.node, Block: tx.block,
		Start: uint64(tx.ackStart), End: uint64(now), N: tx.fanout,
	})
	if tx.endOnAcks {
		tx.mark = now
		m.txEnd(tx)
	}
}

// txEnd emits the transaction's root span and records its latency in the
// class histogram.
func (m *Machine) txEnd(tx *txState) {
	if tx == nil {
		return
	}
	now := m.eng.Now()
	m.emitSpan(obs.Span{
		Tx: tx.id, ID: tx.id, Parent: 0,
		Class: tx.class, Phase: obs.PhTotal, Node: tx.node, Block: tx.block,
		Start: uint64(tx.start), End: uint64(now), N: tx.fanout,
	})
	m.txLat[tx.class].Observe(m.cycleDelta(now, tx.start, "tx.lat."+tx.class.String()))
	if m.chk != nil {
		m.chk.CloseTx(tx.block, tx.id)
	}
}

// lockTxSet remembers p's open lock-round transaction so the grant or wake
// path (which reaches p through the lock table, not a closure) can close
// it. A processor has at most one lock acquisition in flight.
func (m *Machine) lockTxSet(p *proc, tx *txState) {
	if tx != nil {
		m.lockTx[p.id] = tx
	}
}

// lockTxOf returns p's open lock-round transaction, or nil.
func (m *Machine) lockTxOf(p *proc) *txState {
	if m.spans == nil {
		return nil
	}
	return m.lockTx[p.id]
}

// lockTxEnd closes p's open lock-round transaction, if any.
func (m *Machine) lockTxEnd(p *proc) {
	if m.spans == nil {
		return
	}
	if tx := m.lockTx[p.id]; tx != nil {
		delete(m.lockTx, p.id)
		m.txEnd(tx)
	}
}

// sampleQueues is the periodic queue-depth sampler (Config.SampleEvery). It
// only reads simulator state — directory-controller backlog, live directory
// entries, network ejection-port backlog — so enabling it never changes
// simulation results. It reschedules itself while the machine still has
// work pending and falls silent when the event queue drains.
func (m *Machine) sampleQueues() {
	now := m.eng.Now()
	for _, c := range m.clusters {
		var backlog sim.Time
		if c.dirFree > now {
			backlog = c.dirFree - now
		}
		m.dirDepth.Observe(uint64(backlog))
		m.dirLive.Observe(uint64(c.dir.LiveEntries()))
	}
	for n := 0; n < m.net.Nodes(); n++ {
		m.portDepth.Observe(uint64(m.net.PortBacklog(n, now)))
	}
	if m.eng.Pending() > 0 {
		m.eng.After(m.cfg.SampleEvery, m.sampleQueues)
	}
}
