package machine

import (
	"dircoh/internal/obs"
	"dircoh/internal/sim"
)

// txState tracks one in-flight remote transaction for span emission. It
// exists only while span tracing is enabled (Config.Spans non-nil); every
// helper below treats a nil receiver argument as tracing-off and costs one
// branch, so the simulation hot path is untouched when spans are disabled.
//
// The machine emits child spans as the transaction crosses phase
// boundaries: mark carries the start of the phase currently in progress, so
// the synchronous children tile [start, end of root] exactly — the
// invariant tracelens verifies. Acknowledgement gathering is the one
// exception: it overlaps the reply (release consistency), so its span is
// emitted when the last ack arrives, possibly after the root.
//
// On the sharded core the txState travels along the transaction's message
// chain: at any simulation instant exactly one cluster's events touch it,
// and consecutive touches from different shards are separated by at least
// one cross-shard message hop — which crosses a window barrier — so the
// accesses are ordered without locks, the same discipline the protocol's
// own per-proc state follows. Every helper therefore takes the executing
// cluster, which also anchors span-ID allocation and buffer stamping.
type txState struct {
	id    uint64
	class obs.TxClass
	node  int32
	block int64
	start sim.Time
	mark  sim.Time

	// Invalidation fan-out bookkeeping: acks counts outstanding
	// acknowledgements, ackStart the dispatch time. endOnAcks marks
	// transactions (evictions) whose root ends with the last ack.
	acks      int
	ackStart  sim.Time
	fanout    int64
	endOnAcks bool
}

// spanID allocates the next span identifier in cluster c's context. The
// serial engine hands out the recorder's sequential IDs; the sharded core
// derives IDs from the executing cluster and its private sequence
// (cluster in the high bits, like event ordering keys), so the IDs a run
// emits are independent of the shard count. Sharded IDs are never zero —
// Parent == 0 stays the root marker.
func (m *Machine) spanID(c *clusterNode) uint64 {
	if m.shard != nil {
		c.spanSeq++
		return uint64(c.id)<<40 | c.spanSeq
	}
	return m.spans.NextID()
}

// txStart opens a transaction at the current cycle in cluster c's context
// (always the requesting cluster), or returns nil when span tracing is off.
func (m *Machine) txStart(class obs.TxClass, c *clusterNode, block int64) *txState {
	if m.spans == nil {
		return nil
	}
	now := m.now(c)
	tx := &txState{id: m.spanID(c), class: class, node: int32(c.id), block: block, start: now, mark: now}
	if m.chk != nil {
		m.chk.OpenTx(block, tx.id)
	}
	return tx
}

// emitSpan hands one span to the recorder (and, when checking is on, to
// the checker's span-tiling verifier). On the sharded core the span is
// buffered in the executing shard's cell, stamped with the firing event's
// (time, key) position, and replayed into the recorder in the canonical
// global order at quiescence — see shardobs.go.
func (m *Machine) emitSpan(c *clusterNode, s obs.Span) {
	if sh := m.shard; sh != nil {
		w := sh.wheels[c.shard]
		sh.obsBuf[c.shard].pushSp(keyedSpan{t: w.Now(), key: w.FiringKey(), sp: s})
		return
	}
	m.spans.Emit(s)
	if m.chk != nil {
		m.chk.Span(s)
	}
}

// txPhase closes the phase that began at tx.mark, emitting its child span,
// and starts the next phase at the current cycle. c is the cluster whose
// event is crossing the phase boundary.
func (m *Machine) txPhase(c *clusterNode, tx *txState, ph obs.Phase) {
	if tx == nil {
		return
	}
	now := m.now(c)
	m.emitSpan(c, obs.Span{
		Tx: tx.id, ID: m.spanID(c), Parent: tx.id,
		Class: tx.class, Phase: ph, Node: tx.node, Block: tx.block,
		Start: uint64(tx.mark), End: uint64(now),
	})
	tx.mark = now
}

// txFanout registers n outstanding invalidation acknowledgements dispatched
// at the current cycle in cluster c's context (the home). When endOnAcks is
// set the transaction's root span ends at the last ack (eviction recalls);
// otherwise the acks drain asynchronously and only the ack.gather child
// depends on them.
func (m *Machine) txFanout(c *clusterNode, tx *txState, n int, endOnAcks bool) {
	if tx == nil || n <= 0 {
		return
	}
	tx.acks += n
	tx.fanout += int64(n)
	tx.ackStart = m.now(c)
	tx.endOnAcks = endOnAcks
}

// txAck records one acknowledgement arriving at cluster c; the last one
// emits the ack.gather span and, for endOnAcks transactions, the root.
func (m *Machine) txAck(c *clusterNode, tx *txState) {
	if tx == nil {
		return
	}
	tx.acks--
	if tx.acks > 0 {
		return
	}
	now := m.now(c)
	m.emitSpan(c, obs.Span{
		Tx: tx.id, ID: m.spanID(c), Parent: tx.id,
		Class: tx.class, Phase: obs.PhAckGather, Node: tx.node, Block: tx.block,
		Start: uint64(tx.ackStart), End: uint64(now), N: tx.fanout,
	})
	if tx.endOnAcks {
		tx.mark = now
		m.txEnd(c, tx)
	}
}

// txEnd emits the transaction's root span and records its latency in the
// executing cluster's class histogram.
func (m *Machine) txEnd(c *clusterNode, tx *txState) {
	if tx == nil {
		return
	}
	now := m.now(c)
	m.emitSpan(c, obs.Span{
		Tx: tx.id, ID: tx.id, Parent: 0,
		Class: tx.class, Phase: obs.PhTotal, Node: tx.node, Block: tx.block,
		Start: uint64(tx.start), End: uint64(now), N: tx.fanout,
	})
	c.res.txLat[tx.class].Observe(m.cycleDelta(now, tx.start, "tx.lat."+tx.class.String()))
	if m.chk != nil {
		m.chk.CloseTx(tx.block, tx.id)
	}
}

// lockTxSet remembers p's open lock-round transaction so the grant or wake
// path (which reaches p through the lock table, not a closure) can close
// it. A processor has at most one lock acquisition in flight; the state
// lives on the proc itself so the home's grant path reads it without
// touching any shared map (p is parked until the grant arrives, so the
// home-side read is ordered after the requester-side write by the request
// message itself).
func (m *Machine) lockTxSet(p *proc, tx *txState) {
	if tx != nil {
		p.lockTx = tx
	}
}

// lockTxOf returns p's open lock-round transaction, or nil.
func (m *Machine) lockTxOf(p *proc) *txState {
	if m.spans == nil {
		return nil
	}
	return p.lockTx
}

// lockTxEnd closes p's open lock-round transaction, if any. It runs in
// p's own cluster context (the grant or wake has arrived at p's cluster).
func (m *Machine) lockTxEnd(p *proc) {
	if m.spans == nil {
		return
	}
	if tx := p.lockTx; tx != nil {
		p.lockTx = nil
		m.txEnd(p.cl, tx)
	}
}

// sampleQueues is the serial engine's periodic queue-depth sampler
// (Config.SampleEvery). It only reads simulator state — directory-
// controller backlog, live directory entries, network ejection-port
// backlog — so enabling it never changes simulation results. It
// reschedules itself while the machine still has work pending and falls
// silent when the event queue drains. The sharded core samples per
// cluster instead; see sampleCluster.
func (m *Machine) sampleQueues() {
	now := m.eng.Now()
	for _, c := range m.clusters {
		var backlog sim.Time
		if c.dirFree > now {
			backlog = c.dirFree - now
		}
		c.res.dirDepth.Observe(uint64(backlog))
		c.res.dirLive.Observe(uint64(c.dir.LiveEntries()))
	}
	for n := 0; n < m.net.Nodes(); n++ {
		m.clusters[n].res.portDepth.Observe(uint64(m.net.PortBacklog(n, now)))
	}
	if m.eng.Pending() > 0 {
		m.eng.After(m.cfg.SampleEvery, m.sampleQueues)
	}
}
