package machine

import (
	"math/rand"
	"testing"

	"dircoh/internal/sparse"
	"dircoh/internal/tango"
)

// TestWideSoak crosses every scheme, cluster arrangement and directory
// organization with mixed read/write/lock traffic and validates machine-wide
// coherence at quiescence.
func TestWideSoak(t *testing.T) {
	schemes := []SchemeFactory{FullVec, CoarseVec2, Broadcast, NoBroadcast, SupersetX}
	for si, schemeF := range schemes {
		for _, ppc := range []int{1, 2, 4} {
			for _, dir := range []string{"full", "sparse", "overflow"} {
				for seed := int64(0); seed < 8; seed++ {
					rng := rand.New(rand.NewSource(seed*1000 + int64(si*10)))
					const procs = 8
					streams := make([][]tango.Ref, procs)
					for p := range streams {
						var b tango.Builder
						for i := 0; i < 600; i++ {
							blk := int64(rng.Intn(40))
							switch rng.Intn(10) {
							case 0, 1, 2:
								b.Write(addr(blk))
							case 3:
								if rng.Intn(20) == 0 {
									b.Lock(addr(900))
									b.Write(addr(800))
									b.Unlock(addr(900))
									continue
								}
								b.Read(addr(blk))
							default:
								b.Read(addr(blk))
							}
						}
						streams[p] = b.Refs()
					}
					cfg := testConfig(procs, schemeF)
					cfg.ProcsPerCluster = ppc
					cfg.Seed = seed
					switch dir {
					case "sparse":
						cfg.Sparse = SparseConfig{Entries: 6, Assoc: 2, Policy: sparse.Random}
					case "overflow":
						cfg.Overflow = &OverflowDirConfig{Ptrs: 2, WideEntries: 4, Assoc: 2, Policy: sparse.LRU}
					}
					mustRun(t, cfg, wl(streams...))
				}
			}
		}
	}
}
