package machine

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"dircoh/internal/check"
	"dircoh/internal/mesh"
	"dircoh/internal/tango"
)

// faultWorkload builds a deterministic pseudo-random mix of reads and
// writes over a small shared block set, sized to keep plenty of remote
// traffic (and therefore recovery machinery) in flight.
func faultWorkload(procs, refs, blocks int, seed int64) *tango.Workload {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]tango.Ref, procs)
	for p := 0; p < procs; p++ {
		var b tango.Builder
		for i := 0; i < refs; i++ {
			a := addr(int64(rng.Intn(blocks)))
			if rng.Intn(3) == 0 {
				b.Write(a)
			} else {
				b.Read(a)
			}
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{Name: "faults", Streams: streams}
}

// runFaulty runs cfg against w without mustRun's invalidation==ack
// conservation assertion, which retransmitted messages legitimately break.
func runFaulty(t *testing.T, cfg Config, w *tango.Workload) (*Machine, *Result) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatalf("run under faults failed: %v", err)
	}
	return m, r
}

// TestFaultRecoveryClean: under every class of injected fault the
// retry/dedup recovery must finish the workload with the invariant
// checker silent and final coherence intact.
func TestFaultRecoveryClean(t *testing.T) {
	mixes := []mesh.FaultConfig{
		{Drop: 0.05},
		{Dup: 0.1},
		{DelayP: 0.3, DelayMax: 200},
		{OutageP: 0.5, OutageLen: 256, OutageEvery: 4096},
		{Drop: 0.02, Dup: 0.05, DelayP: 0.1, DelayMax: 100, OutageP: 0.2, OutageLen: 128, OutageEvery: 8192},
	}
	for i, f := range mixes {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := testConfig(4, FullVec)
			cfg.ProcsPerCluster = 2
			cfg.Seed = int64(100 + i)
			cfg.Mesh.Faults = f
			cfg.Check = true
			m, r := runFaulty(t, cfg, faultWorkload(4, 200, 12, int64(7+i)))
			if err := m.CheckCoherence(); err != nil {
				t.Fatalf("final coherence violated: %v", err)
			}
			if n := m.ViolationCount(); n != 0 {
				t.Fatalf("%d invariant violations under faults (first: %v)", n, m.Violations()[0])
			}
			if r.ExecTime == 0 {
				t.Fatal("zero execution time")
			}
		})
	}
}

// TestFaultRecoveryCounters: the recovery layer's own telemetry must show
// the machinery actually exercised — duplicates suppressed under dup
// faults, retries fired under drop faults — and never a give-up.
func TestFaultRecoveryCounters(t *testing.T) {
	cfg := testConfig(4, FullVec)
	cfg.Seed = 11
	cfg.Mesh.Faults = mesh.FaultConfig{Drop: 0.1, Dup: 0.3}
	cfg.Check = true
	m, _ := runFaulty(t, cfg, faultWorkload(4, 200, 10, 3))
	snap := m.MetricsSnapshot()
	if snap.Counter("net.dup.suppressed") == 0 {
		t.Error("dup=0.3 run suppressed no duplicates")
	}
	if snap.Counter("net.retry.count") == 0 {
		t.Error("drop=0.1 run retransmitted nothing")
	}
	if n := snap.Counter("net.retry.giveup"); n != 0 {
		t.Errorf("%d messages abandoned despite the default retry budget", n)
	}
	if snap.Counter("mesh.fault.drop") == 0 || snap.Counter("mesh.fault.dup") == 0 {
		t.Error("mesh fault counters silent under nonzero rates")
	}
	if n := m.ViolationCount(); n != 0 {
		t.Fatalf("%d invariant violations (first: %v)", n, m.Violations()[0])
	}
}

// TestFaultDeterminism: the same configuration and seed must replay the
// identical run — execution time and every metric — and a different seed
// must not.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed int64) (*Result, map[string]uint64) {
		cfg := testConfig(6, CoarseVec2)
		cfg.ProcsPerCluster = 2
		cfg.Seed = seed
		cfg.Mesh.Faults = mesh.FaultConfig{Drop: 0.05, Dup: 0.05, DelayP: 0.2, DelayMax: 150}
		m, r := runFaulty(t, cfg, faultWorkload(6, 150, 12, 19))
		return r, m.MetricsSnapshot().Counters
	}
	r1, c1 := run(5)
	r2, c2 := run(5)
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("same seed, different exec time: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("same seed, different metric counters")
	}
	r3, _ := run(6)
	if r1.ExecTime == r3.ExecTime && reflect.DeepEqual(r1.Msgs, r3.Msgs) {
		t.Fatal("different fault seeds replayed an identical run")
	}
}

// TestWatchdogNoPerturbation: arming the liveness watchdog on a
// fault-free run must not change a single simulated outcome — its scans
// ride the event queue but touch no protocol state.
func TestWatchdogNoPerturbation(t *testing.T) {
	w := faultWorkload(4, 150, 10, 23)
	base := testConfig(4, FullVec)
	_, r1 := mustRun(t, base, w)

	guarded := testConfig(4, FullVec)
	guarded.StuckBudget = 1 << 14
	_, r2 := mustRun(t, guarded, w)

	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("watchdog changed exec time: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
	if !reflect.DeepEqual(r1.Msgs, r2.Msgs) {
		t.Fatalf("watchdog changed message counts: %+v vs %+v", r1.Msgs, r2.Msgs)
	}
	if r1.Net != r2.Net {
		t.Fatalf("watchdog changed network stats: %+v vs %+v", r1.Net, r2.Net)
	}
}

// TestWedgeStuckError: a link that never delivers must wedge the run,
// and the wedge must surface as a StuckError carrying the diagnostic
// dump (stuck procs, in-flight messages) plus a liveness violation.
func TestWedgeStuckError(t *testing.T) {
	var b tango.Builder
	b.Read(addr(0)) // block 0 homes at cluster 0; this is a remote read
	cfg := testConfig(2, FullVec)
	cfg.Seed = 2
	cfg.Mesh.Faults = mesh.FaultConfig{Drop: 1}
	cfg.Retry = RetryConfig{Timeout: 64, MaxRetries: 2}
	cfg.StuckBudget = 1 << 12
	cfg.Check = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(wl(nil, b.Refs()))
	if err == nil {
		t.Fatal("drop=1 run completed")
	}
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Fatalf("error is %T, want *StuckError: %v", err, err)
	}
	if !strings.Contains(stuck.Dump, "refs remaining") {
		t.Errorf("dump lacks stuck-processor lines:\n%s", stuck.Dump)
	}
	if !strings.Contains(stuck.Dump, "msg ") {
		t.Errorf("dump lacks in-flight message lines:\n%s", stuck.Dump)
	}
	found := false
	for _, v := range m.Violations() {
		if v.Rule == check.RuleLiveness {
			found = true
			break
		}
	}
	if !found {
		t.Error("wedge recorded no liveness violation")
	}
}

// TestDeadlineAborts: a wall-clock deadline the run cannot meet must cut
// it short with the same StuckError/dump reporting as a watchdog catch.
func TestDeadlineAborts(t *testing.T) {
	cfg := testConfig(8, FullVec)
	cfg.ProcsPerCluster = 2
	cfg.Seed = 3
	cfg.Deadline = time.Nanosecond
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(faultWorkload(8, 2500, 64, 31))
	if err == nil {
		t.Fatal("1ns deadline did not abort the run")
	}
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Fatalf("error is %T, want *StuckError: %v", err, err)
	}
	if !strings.Contains(stuck.Reason, "deadline") {
		t.Errorf("abort reason %q does not mention the deadline", stuck.Reason)
	}
}
