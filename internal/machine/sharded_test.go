package machine

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dircoh/internal/obs"
	"dircoh/internal/sparse"
	"dircoh/internal/tango"
)

// stressWorkload mirrors cmd/protostress's adversarial mix: reads, writes,
// lock-protected writes and a closing barrier over a small block pool, all
// drawn from one seeded rng so every run of a seed is the same workload.
func stressWorkload(seed int64, procs, refs, blocks int, sync bool) *tango.Workload {
	rng := rand.New(rand.NewSource(seed))
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for i := 0; i < refs; i++ {
			blk := int64(rng.Intn(blocks))
			switch rng.Intn(12) {
			case 0, 1, 2, 3:
				b.Write(addr(blk))
			case 4:
				if sync {
					lock := addr(int64(blocks) + int64(rng.Intn(4)))
					b.Lock(lock)
					b.Write(addr(blk))
					b.Unlock(lock)
				} else {
					b.Write(addr(blk))
				}
			default:
				b.Read(addr(blk))
			}
		}
		if sync {
			b.Barrier(addr(int64(blocks) + 8))
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{Name: "stress", Streams: streams}
}

// runSharded runs cfg/w at the given shard width and returns the result
// plus the frozen metrics text.
func runSharded(t *testing.T, cfg Config, w *tango.Workload, shards int) (*Result, string) {
	t.Helper()
	cfg.Shards = shards
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 0 && m.Shards() == 0 {
		t.Fatalf("shards=%d fell back to serial: %s", shards, m.FallbackReason())
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatalf("shards=%d: coherence violated: %v", shards, err)
	}
	var buf bytes.Buffer
	if err := m.MetricsSnapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return r, buf.String()
}

// TestShardedWidthIndependence is the core equivalence claim of the
// sharded engine: every measurement — the full Result and every metric in
// the registry — is byte-identical at shard widths 1, 2, 4 and 8, across
// schemes, directory geometries and both barrier kinds, on a seeded
// protostress-style mix with locks and barriers.
func TestShardedWidthIndependence(t *testing.T) {
	type tc struct {
		name string
		cfg  Config
	}
	cases := []tc{
		{"fullvec", testConfig(16, FullVec)},
		{"coarse", testConfig(16, CoarseVec2)},
		{"broadcast", testConfig(13, Broadcast)},
		{"nb-sparse", func() Config {
			c := testConfig(16, NoBroadcast)
			c.Sparse = SparseConfig{Entries: 8, Assoc: 2, Policy: sparse.LRU}
			return c
		}()},
		{"superset-overflow", func() Config {
			c := testConfig(16, SupersetX)
			c.Overflow = &OverflowDirConfig{Ptrs: 1, WideEntries: 4, Assoc: 2}
			return c
		}()},
		{"tree-barrier-ppc2", func() Config {
			c := testConfig(16, CoarseVec2)
			c.ProcsPerCluster = 2
			c.Barrier = TreeBarrier
			return c
		}()},
	}
	for i, c := range cases {
		c := c
		seed := int64(1000 + i)
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			c.cfg.Seed = seed
			w := stressWorkload(seed, c.cfg.Procs, 120, 48, true)
			base, baseTxt := runSharded(t, c.cfg, w, 1)
			for _, shards := range []int{2, 4, 8} {
				r, txt := runSharded(t, c.cfg, w, shards)
				if !reflect.DeepEqual(base, r) {
					t.Errorf("shards=%d result differs from shards=1:\n  1: %s\n  %d: %s",
						shards, base.Summary(), shards, r.Summary())
				}
				if txt != baseTxt {
					t.Errorf("shards=%d metrics differ from shards=1", shards)
				}
			}
		})
	}
}

// TestShardedFigureWorkloadDeterminism repeats a sharded run and demands
// bit-identical results — the same run-to-run determinism the serial
// engine guarantees, now with goroutines in the loop.
func TestShardedFigureWorkloadDeterminism(t *testing.T) {
	cfg := testConfig(32, CoarseVec2)
	cfg.Seed = 7
	w := stressWorkload(7, 32, 100, 64, true)
	r1, t1 := runSharded(t, cfg, w, 4)
	r2, t2 := runSharded(t, cfg, w, 4)
	if !reflect.DeepEqual(r1, r2) || t1 != t2 {
		t.Fatal("sharded run is not deterministic across repeats")
	}
}

// TestShardedSingleCluster exercises the degenerate shapes: one cluster
// (no cross-shard traffic exists at all) and more shards than clusters
// (the width clamps to the cluster count).
func TestShardedSingleCluster(t *testing.T) {
	cfg := testConfig(1, FullVec)
	cfg.Shards = 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want clamp to 1", got)
	}
	var b tango.Builder
	b.Read(addr(0))
	b.Write(addr(0))
	if _, err := m.Run(wl(b.Refs())); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFallbackReasons: every configuration the sharded core cannot
// honor must fall back to the serial engine with a reason naming the
// offending flag and a workaround — and observability features, which the
// core now shards, must NOT fall back.
func TestShardedFallbackReasons(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		cfg := testConfig(4, FullVec)
		cfg.Shards = 2
		mut(&cfg)
		return cfg
	}
	blocked := map[string]Config{
		"checker":  mk(func(c *Config) { c.Check = true }),
		"porttime": mk(func(c *Config) { c.Mesh.PortTime = 2 }),
		"fault":    mk(func(c *Config) { c.Fault = FaultDropInval }),
	}
	for name, cfg := range blocked {
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Shards() != 0 {
			t.Errorf("%s: expected serial fallback, running with %d shards", name, m.Shards())
		}
		reason := m.FallbackReason()
		if reason == "" {
			t.Errorf("%s: fallback with no reason", name)
		}
		if !strings.Contains(reason, "-shards 0") {
			t.Errorf("%s: reason %q names no workaround", name, reason)
		}
	}
	// Observability configurations shard (the whole point of the per-shard
	// recording cells), as does a plain sharded config.
	sharded := map[string]Config{
		"clean":    mk(func(*Config) {}),
		"trace":    mk(func(c *Config) { c.Trace = obs.NewTracer(obs.Discard, 0) }),
		"spans":    mk(func(c *Config) { c.Spans = obs.NewSpanRecorder(obs.DiscardSpans, 0) }),
		"sampling": mk(func(c *Config) { c.SampleEvery = 64 }),
		"metrics":  mk(func(c *Config) { c.Metrics = obs.NewRegistry() }),
	}
	for name, cfg := range sharded {
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Shards() != 2 || m.FallbackReason() != "" {
			t.Errorf("%s: Shards()=%d reason=%q, want a 2-shard run", name, m.Shards(), m.FallbackReason())
		}
	}
}

// TestShardedWatchdog: the deterministic sharded watchdog must abort a
// wedged run (a processor waiting on a lock that is never released) the
// same way the serial one does, with a diagnostic dump.
func TestShardedWatchdog(t *testing.T) {
	cfg := testConfig(2, FullVec)
	cfg.Shards = 2
	cfg.StuckBudget = 1 << 14
	var b0, b1 tango.Builder
	b0.Lock(addr(100))
	// proc 0 never unlocks; proc 1 waits forever.
	b1.Lock(addr(100))
	b1.Unlock(addr(100))
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(wl(b0.Refs(), b1.Refs()))
	se, ok := err.(*StuckError)
	if !ok {
		t.Fatalf("wedged sharded run returned %v, want *StuckError", err)
	}
	if se.Dump == "" {
		t.Fatal("stuck error carries no diagnostic dump")
	}
}

// BenchmarkMachineParallel compares the sharded core's throughput across
// widths on a 64-processor machine — the BENCH trajectory's
// cycles-per-second source.
func BenchmarkMachineParallel(b *testing.B) {
	const procs = 64
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := testConfig(procs, CoarseVec2)
			cfg.Shards = shards
			w := stressWorkload(11, procs, 2000, 512, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err := m.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.ExecTime), "cycles")
			}
		})
	}
}
