package machine

import (
	"testing"

	"dircoh/internal/model"
)

// FuzzModelMachineConformance decodes an arbitrary byte string into a
// conformance script — geometry, scheme and up to 12 steps — and demands
// the model and the machine agree on the quiescent view. See
// conformance_test.go for why the oracle is full-map, <= 3 clusters.
func FuzzModelMachineConformance(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 5, 2})                         // 2 clusters, 1 block, full: write/read bounce
	f.Add([]byte{1, 1, 1, 0, 2, 4, 9, 3})                   // 3 clusters, 2 blocks, cv
	f.Add([]byte{2, 2, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})    // 3 clusters, 3 blocks, b
	f.Add([]byte{3, 1, 0, 7, 7, 1})                         // nb, repeated writes
	f.Add([]byte{4, 0, 2, 11, 6, 0, 3, 10, 2, 8, 5, 1, 12}) // x, 3 clusters
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip("too short to encode a script")
		}
		schemes := []struct {
			name    string
			factory SchemeFactory
		}{
			{"full", FullVec}, {"cv", CoarseVec2}, {"b", Broadcast},
			{"nb", NoBroadcast}, {"x", SupersetX},
		}
		s := schemes[int(data[0])%len(schemes)]
		clusters := 2 + int(data[1])%2
		blocks := 1 + int(data[2])%3
		raw := data[3:]
		if len(raw) > 12 {
			raw = raw[:12]
		}
		steps := make([]model.Step, len(raw))
		for i, b := range raw {
			// One byte per step: cluster x block x read/write.
			steps[i] = model.Step{
				Cluster: int(b) % clusters,
				Block:   int(b/2) % blocks,
				Write:   (b/uint8(2*blocks))%2 == 1,
			}
		}
		if err := conformanceDiff(s.factory, clusters, blocks, steps); err != nil {
			t.Fatalf("scheme %s clusters=%d blocks=%d steps=%+v: %v", s.name, clusters, blocks, steps, err)
		}
	})
}
