// Package machine assembles the full DASH-style multiprocessor simulator.
// This file documents the protocol flows; see config.go for configuration
// and memory.go / msync.go for the implementations.
//
// # Machine model
//
// A machine is a set of clusters connected by a 2-D mesh. Each cluster
// holds ProcsPerCluster processors (each with an inclusive L1+L2 cache
// hierarchy), a snoopy bus, a slice of main memory (blocks are assigned
// round-robin by block number), and the directory for its memory. The
// directory stores one entry per home-local block (full map), a bounded
// set-associative cache of entries (sparse), or small per-block entries
// with a wide-entry overflow cache (§7).
//
// # Reads
//
//   - Cache hit: 1 cycle.
//   - Miss: a bus transaction snoops the cluster. A sibling's dirty copy
//     supplies the data (and a sharing writeback informs a remote home);
//     a shared copy supplies it directly.
//   - Home-local miss: the directory is consulted under the block's gate;
//     a remotely-dirty block is fetched by forwarding to the owner.
//   - Remote miss: a ReadReq goes to the home. Clean data is returned
//     with a DataReply and the requester is added to the sharer set;
//     dirty data is forwarded (FwdReadReq) to the owner, which replies to
//     the requester and sends a SharingWB home — the paper's 3-cluster
//     path (~80 cycles).
//
// # Writes
//
// A write needs exclusivity. The bus invalidates sibling copies; a
// sibling's dirty copy transfers ownership locally. Otherwise the home
// serves a WriteReq/UpgradeReq: it invalidates every cluster in the
// directory entry's candidate sharer set (the active scheme decides how
// precise that set is — this is where Dir_iB pays its broadcasts and
// Dir_iCV_r its regions), replies with the invalidation count, and the
// acknowledgements flow directly to the writer. Under release consistency
// the write completes at the ownership reply; the acks drain
// asynchronously and are fenced at the next synchronization operation.
//
// # Serialization and races
//
// Directory state updates are atomic at the home and serialized per block
// by a Gate; transactions that move ownership hold the gate until the
// requester's reply lands. Races that reach beyond the gate are handled
// by the requester-side RAC functions: read merging, MSHR parking behind
// outstanding writes, poisoning of reads overtaken by invalidations, and
// expectation counting for writebacks superseded by an ownership
// re-grant. CheckCoherence validates the global invariants at quiescence;
// the soak tests drive random traffic through every scheme, cluster
// arrangement and directory organization.
//
// # Sparse replacement
//
// When a sparse directory must reclaim an entry, the victim block's
// cached copies are invalidated; the home's RAC counts the
// acknowledgements and the block's gate stays locked until they arrive,
// so racing requests queue rather than observe half-dead state. The
// reclaimed entry's sharer set decides the invalidation fan-out — a
// broadcast-mode Dir_iB entry costs N-1 messages where a coarse vector
// costs a few regions, which is exactly the Figure 11 effect.
package machine
