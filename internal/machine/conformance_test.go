package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/model"
	"dircoh/internal/tango"
)

// Model/machine conformance: the same strictly sequential script runs on
// internal/model's transition rules and on the full machine (one proc per
// cluster, every step separated by a global barrier so the machine
// executes it serially too), and the quiescent views must be identical —
// every cache state and every directory entry. This is the fidelity
// argument for cmd/modelcheck: the rules it explores are the machine's.
//
// The oracle is exact only for full-map directories on <= 3 clusters:
// sparse replacement recalls and Dir_iNB pointer-eviction invalidations
// are not fenced by any proc's barrier arrival, so their traffic can
// straddle a barrier and land after a later step's local hit. Sparse
// geometries are covered by the model's own exploration and RunScript
// tests.

// confCache is large enough that scripts never evict, since the model's
// scripted steps have no spontaneous evictions either.
func confCache() cache.Config {
	return cache.Config{L1Size: 4096, L1Assoc: 4, L2Size: 16384, L2Assoc: 8, Block: 16}
}

// confSchemes pairs every registered scheme with itself: SchemeFactory is
// core.Factory, so one factory drives both the machine and the model.
var confSchemes = map[string]SchemeFactory{
	"full": FullVec, "cv": CoarseVec2, "b": Broadcast, "nb": NoBroadcast, "x": SupersetX,
}

// barrierBase keeps barrier words far from the scripted data blocks.
const barrierBase = 1 << 20

// conformanceDiff runs steps on model and machine and returns the first
// divergence (or any error either side reports).
func conformanceDiff(scheme SchemeFactory, clusters, blocks int, steps []model.Step) error {
	mod, err := model.New(model.Config{Clusters: clusters, Blocks: blocks, Scheme: scheme})
	if err != nil {
		return err
	}
	view, err := mod.RunScript(steps)
	if err != nil {
		return fmt.Errorf("model: %v", err)
	}

	streams := make([][]tango.Ref, clusters)
	for p := 0; p < clusters; p++ {
		var b tango.Builder
		for k, st := range steps {
			if st.Cluster == p {
				if st.Write {
					b.Write(int64(st.Block) * 16)
				} else {
					b.Read(int64(st.Block) * 16)
				}
			}
			b.Barrier(int64(barrierBase+k) * 16)
		}
		streams[p] = b.Refs()
	}
	m, err := New(Config{
		Procs: clusters, ProcsPerCluster: 1, Block: 16,
		Cache: confCache(), Scheme: scheme, Timing: DefaultTiming(), Check: true,
	})
	if err != nil {
		return err
	}
	if _, err := m.Run(&tango.Workload{Name: "conformance", Streams: streams}); err != nil {
		return fmt.Errorf("machine: %v", err)
	}
	if vs := m.Violations(); len(vs) > 0 {
		return fmt.Errorf("machine: runtime checker: %v", vs[0])
	}
	if err := m.CheckCoherence(); err != nil {
		return fmt.Errorf("machine: %v", err)
	}

	for _, p := range m.procs {
		c := p.cl.id
		for b := 0; b < blocks; b++ {
			var got check.CopyState
			switch p.h.State(int64(b)) {
			case cache.Shared:
				got = check.CopyShared
			case cache.Dirty:
				got = check.CopyDirty
			}
			if want := view.Cache[c][b]; got != want {
				return fmt.Errorf("cluster %d block %d: machine cache %v, model %v", c, b, got, want)
			}
		}
	}
	for b := 0; b < blocks; b++ {
		e := m.dirEntry(int64(b))
		want := view.Entry[b]
		if (e != nil) != want.Present {
			return fmt.Errorf("block %d: machine entry present=%v, model present=%v", b, e != nil, want.Present)
		}
		if e == nil {
			continue
		}
		if e.Dirty() != want.Dirty {
			return fmt.Errorf("block %d: machine dirty=%v, model dirty=%v", b, e.Dirty(), want.Dirty)
		}
		if want.Dirty && e.Owner() != want.Owner {
			return fmt.Errorf("block %d: machine owner=%d, model owner=%d", b, e.Owner(), want.Owner)
		}
		for c := 0; c < clusters; c++ {
			if got, wantS := e.IsSharer(c), want.Sharers&(1<<c) != 0; got != wantS {
				return fmt.Errorf("block %d cluster %d: machine sharer=%v, model sharer=%v", b, c, got, wantS)
			}
		}
	}
	return nil
}

func TestModelMachineConformanceScripts(t *testing.T) {
	w := func(c, b int) model.Step { return model.Step{Cluster: c, Write: true, Block: b} }
	r := func(c, b int) model.Step { return model.Step{Cluster: c, Block: b} }
	cases := []struct {
		name     string
		clusters int
		blocks   int
		steps    []model.Step
	}{
		{"ping-pong", 2, 1, []model.Step{w(0, 0), w(1, 0), w(0, 0), r(1, 0)}},
		{"read-share-inval", 3, 2, []model.Step{
			r(0, 0), r(1, 0), r(2, 0), w(1, 0), r(2, 1), w(2, 1), r(0, 1),
		}},
		{"home-local", 2, 2, []model.Step{
			w(0, 0), r(1, 0), w(0, 0), w(1, 1), r(1, 1), r(0, 1), w(1, 1),
		}},
		{"migratory", 3, 3, []model.Step{
			w(0, 0), w(1, 0), w(2, 0), r(0, 0),
			w(1, 1), r(2, 1), r(0, 1), w(2, 2), w(0, 2), r(1, 2),
		}},
		{"upgrade", 3, 1, []model.Step{r(0, 0), r(1, 0), r(2, 0), w(0, 0), w(2, 0)}},
	}
	for name, scheme := range confSchemes {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				if err := conformanceDiff(scheme, tc.clusters, tc.blocks, tc.steps); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestModelMachineConformanceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, scheme := range confSchemes {
		for trial := 0; trial < 10; trial++ {
			clusters := 2 + rng.Intn(2)
			blocks := 1 + rng.Intn(3)
			steps := make([]model.Step, 4+rng.Intn(9))
			for i := range steps {
				steps[i] = model.Step{
					Cluster: rng.Intn(clusters),
					Write:   rng.Intn(2) == 1,
					Block:   rng.Intn(blocks),
				}
			}
			if err := conformanceDiff(scheme, clusters, blocks, steps); err != nil {
				t.Fatalf("scheme %s trial %d (clusters=%d blocks=%d steps=%+v): %v",
					name, trial, clusters, blocks, steps, err)
			}
		}
	}
}
