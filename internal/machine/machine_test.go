package machine

import (
	"math/rand"
	"strings"
	"testing"

	"dircoh/internal/cache"
	"dircoh/internal/core"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// tinyCache is a small hierarchy so tests exercise evictions.
func tinyCache() cache.Config {
	return cache.Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16}
}

func testConfig(procs int, scheme SchemeFactory) Config {
	return Config{
		Procs:           procs,
		ProcsPerCluster: 1,
		Block:           16,
		Cache:           tinyCache(),
		Scheme:          scheme,
		Timing:          DefaultTiming(),
	}
}

// wl builds a workload from explicit per-proc streams.
func wl(streams ...[]tango.Ref) *tango.Workload {
	return &tango.Workload{Name: "test", Streams: streams}
}

// addr returns the byte address of block b (block size 16).
func addr(b int64) int64 { return b * 16 }

func mustRun(t *testing.T, cfg Config, w *tango.Workload) (*Machine, *Result) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatalf("coherence violated: %v", err)
	}
	// Global conservation law: every invalidation (including flushes)
	// produces exactly one acknowledgement.
	if r.Msgs[stats.Invalidation] != r.Msgs[stats.Ack] {
		t.Fatalf("invalidations (%d) != acknowledgements (%d)",
			r.Msgs[stats.Invalidation], r.Msgs[stats.Ack])
	}
	return m, r
}

func TestSingleProcLocalOnly(t *testing.T) {
	var b tango.Builder
	b.Read(addr(0))
	b.Write(addr(0))
	b.Read(addr(0)) // hit
	_, r := mustRun(t, testConfig(1, FullVec), wl(b.Refs()))
	if r.Msgs.Total() != 0 {
		t.Fatalf("single-cluster run sent %d messages", r.Msgs.Total())
	}
	if r.ExecTime == 0 {
		t.Fatal("zero execution time")
	}
	if r.Cache.Reads != 2 || r.Cache.Writes != 1 {
		t.Fatalf("cache stats = %+v", r.Cache)
	}
}

func TestRemoteReadMessagePair(t *testing.T) {
	// 2 clusters; block 0 homed at cluster 0; proc 1 reads it remotely.
	var b1 tango.Builder
	b1.Read(addr(0))
	_, r := mustRun(t, testConfig(2, FullVec), wl(nil, b1.Refs()))
	if r.Msgs[stats.Request] != 1 || r.Msgs[stats.Reply] != 1 {
		t.Fatalf("msgs = %v, want 1 request + 1 reply", r.Msgs)
	}
	if r.Msgs.InvalAck() != 0 {
		t.Fatalf("unexpected invalidations: %v", r.Msgs)
	}
}

func TestHomeSnoopInvalidatesWithoutMessages(t *testing.T) {
	// Proc 0 (home cluster of block 0) caches it; proc 1 writes it.
	// The home copy is invalidated by bus snooping: no Inval messages.
	var b0, b1 tango.Builder
	b0.Read(addr(0))
	b0.Barrier(addr(100))
	b1.Barrier(addr(100))
	b1.Write(addr(0))
	_, r := mustRun(t, testConfig(2, FullVec), wl(b0.Refs(), b1.Refs()))
	if r.Msgs.InvalAck() != 0 {
		t.Fatalf("home snoop should not use network invalidations: %v", r.Msgs)
	}
}

func TestRemoteWriteInvalidatesSharer(t *testing.T) {
	// 3 clusters. Block 0 homed at 0. Proc 1 reads it, then proc 2
	// writes it: exactly one Inval (to 1) and one Ack (1 -> 2).
	var b0, b1, b2 tango.Builder
	b0.Barrier(addr(99))
	b1.Read(addr(0))
	b1.Barrier(addr(99))
	b2.Barrier(addr(99))
	b2.Write(addr(0))
	m, r := mustRun(t, testConfig(3, FullVec), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	if r.Msgs[stats.Invalidation] != 1 || r.Msgs[stats.Ack] != 1 {
		t.Fatalf("msgs = %v, want 1 inval + 1 ack", r.Msgs)
	}
	// Directory must record cluster 2 as dirty owner.
	e := m.dirEntry(0)
	if e == nil || !e.Dirty() || e.Owner() != 2 {
		t.Fatalf("directory entry wrong after remote write: %v", e)
	}
	// The histogram recorded a 1-invalidation event.
	if r.InvalHist.Count(1) == 0 {
		t.Fatalf("invalidation histogram missing the event: %v", r.InvalHist)
	}
}

func TestThreeHopRead(t *testing.T) {
	// Proc 1 dirties block 0 (home 0); proc 2 then reads it: the home
	// forwards to cluster 1, which replies to 2 and writes back to 0.
	var b0, b1, b2 tango.Builder
	b0.Barrier(addr(99))
	b1.Write(addr(0))
	b1.Barrier(addr(99))
	b2.Barrier(addr(99))
	b2.Read(addr(0))
	m, r := mustRun(t, testConfig(3, FullVec), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	e := m.dirEntry(0)
	if e == nil || e.Dirty() {
		t.Fatalf("entry should be clean-shared after 3-hop read: %v", e)
	}
	if !e.IsSharer(1) || !e.IsSharer(2) {
		t.Fatalf("both clusters should be sharers: %v", e.Sharers())
	}
	if r.Msgs[stats.Request] < 3 { // ReadReq + FwdReadReq + SharingWB (+ WriteReq + barrier)
		t.Fatalf("requests = %d, want >= 3", r.Msgs[stats.Request])
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	// Proc 1's tiny cache (64 L2 lines) overflows while writing blocks
	// homed at cluster 0, forcing writebacks.
	var b1 tango.Builder
	for i := int64(0); i < 200; i += 2 { // even blocks -> home 0
		b1.Write(addr(i))
	}
	m, r := mustRun(t, testConfig(2, FullVec), wl(nil, b1.Refs()))
	if r.Cache.DirtyEv == 0 {
		t.Fatal("expected dirty evictions")
	}
	// Writebacks release home directory entries: evicted blocks must no
	// longer be recorded as dirty at cluster 1.
	stale := 0
	for b := int64(0); b < 200; b += 2 {
		if e := m.dirEntry(b); e != nil && e.Dirty() {
			if m.procs[1].h.State(b) != cache.Dirty {
				stale++
			}
		}
	}
	if stale != 0 {
		t.Fatalf("%d stale dirty directory entries after writebacks", stale)
	}
}

func TestNBPointerOverflowInvalidates(t *testing.T) {
	// Dir1NB: one pointer. Cluster 1 reads block 0, then cluster 2 reads
	// it: the directory must evict cluster 1 (Inval + Ack), and the
	// read-caused invalidation is an invalidation event (Figure 4).
	nb1 := func(n int) (core.Scheme, error) {
		return core.NewLimitedNoBroadcast(1, n, core.VictimOldest, 1)
	}
	var b0, b1, b2 tango.Builder
	b0.Barrier(addr(99))
	b1.Read(addr(0))
	b1.Barrier(addr(99))
	b2.Barrier(addr(99))
	b2.Read(addr(0))
	m, r := mustRun(t, testConfig(3, nb1), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	if r.Msgs[stats.Invalidation] != 1 || r.Msgs[stats.Ack] != 1 {
		t.Fatalf("msgs = %v, want exactly 1 inval + 1 ack", r.Msgs)
	}
	if m.procs[1].h.State(0) != cache.Invalid {
		t.Fatal("evicted sharer should have been invalidated")
	}
	if m.procs[2].h.State(0) != cache.Shared {
		t.Fatal("new sharer should hold the block")
	}
	if r.InvalHist.Count(1) != 1 {
		t.Fatalf("read-caused eviction should be one 1-inval event: %v", r.InvalHist)
	}
}

func TestBroadcastWriteInvalidatesAll(t *testing.T) {
	// Dir1B with 4 clusters: clusters 1, 2, 3 read block 0 (overflow to
	// broadcast at the second read); then proc 0 (home) writes it.
	// Targets = everyone except home: 3 invalidations.
	b1scheme := func(n int) (core.Scheme, error) { return core.NewLimitedBroadcast(1, n) }
	var b0, b1, b2, b3 tango.Builder
	for _, b := range []*tango.Builder{&b1, &b2, &b3} {
		b.Read(addr(0))
		b.Barrier(addr(99))
	}
	b0.Barrier(addr(99))
	b0.Write(addr(0))
	_, r := mustRun(t, testConfig(4, b1scheme), wl(b0.Refs(), b1.Refs(), b2.Refs(), b3.Refs()))
	if r.Msgs[stats.Invalidation] != 3 || r.Msgs[stats.Ack] != 3 {
		t.Fatalf("msgs = %v, want 3 invals + 3 acks (broadcast minus home)", r.Msgs)
	}
	if r.InvalHist.Count(3) != 1 {
		t.Fatalf("expected one 3-invalidation event: %v", r.InvalHist)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Result {
		rng := rand.New(rand.NewSource(7))
		streams := make([][]tango.Ref, 4)
		for p := range streams {
			var b tango.Builder
			for i := 0; i < 200; i++ {
				blk := int64(rng.Intn(32))
				if rng.Intn(3) == 0 {
					b.Write(addr(blk))
				} else {
					b.Read(addr(blk))
				}
			}
			streams[p] = b.Refs()
		}
		_, r := mustRun(t, testConfig(4, CoarseVec2), wl(streams...))
		return r
	}
	r1, r2 := mk(), mk()
	if r1.ExecTime != r2.ExecTime || r1.Msgs != r2.Msgs {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", r1.ExecTime, r1.Msgs, r2.ExecTime, r2.Msgs)
	}
}

func TestLocksAllSchemesComplete(t *testing.T) {
	schemes := map[string]SchemeFactory{
		"full":  FullVec,
		"cv":    CoarseVec2,
		"bcast": Broadcast,
		"nb":    NoBroadcast,
		"super": SupersetX,
	}
	for name, s := range schemes {
		t.Run(name, func(t *testing.T) {
			const procs = 8
			streams := make([][]tango.Ref, procs)
			for p := range streams {
				var b tango.Builder
				for i := 0; i < 5; i++ {
					b.Lock(addr(1000))
					b.Read(addr(500))
					b.Write(addr(500))
					b.Unlock(addr(1000))
				}
				streams[p] = b.Refs()
			}
			_, r := mustRun(t, testConfig(procs, s), wl(streams...))
			if r.ExecTime == 0 {
				t.Fatal("no work done")
			}
		})
	}
}

func TestCoarseLockRegionWakeRetries(t *testing.T) {
	// Many contenders force the coarse waiter vector to overflow; region
	// wakes cause retries.
	const procs = 12
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		b.Lock(addr(1000))
		b.Write(addr(2000))
		b.Unlock(addr(1000))
		streams[p] = b.Refs()
	}
	_, r := mustRun(t, testConfig(procs, CoarseVec2), wl(streams...))
	if r.LockRetries == 0 {
		t.Fatal("expected coarse-vector lock wakes to cause retries")
	}
}

func TestBarrierAligns(t *testing.T) {
	// Proc 0 does lots of work before the barrier; proc 1 none. Both
	// finish after proc 0's work.
	var b0, b1 tango.Builder
	for i := int64(0); i < 100; i++ {
		b0.Write(addr(i*2 + 1)) // odd blocks homed at cluster 1: remote traffic
	}
	b0.Barrier(addr(99))
	b1.Barrier(addr(99))
	b1.Read(addr(3))
	m, _ := mustRun(t, testConfig(2, FullVec), wl(b0.Refs(), b1.Refs()))
	if m.procs[1].finish <= m.procs[0].finish/2 {
		t.Fatalf("proc 1 finished at %d, long before proc 0 at %d — barrier ignored?",
			m.procs[1].finish, m.procs[0].finish)
	}
}

func TestSparseReplacementFlow(t *testing.T) {
	// One-entry directory per cluster: two remotely-shared blocks with
	// the same home must knock each other out, invalidating sharers.
	var b1 tango.Builder
	b1.Read(addr(0)) // home 0, allocates entry
	b1.Read(addr(2)) // home 0, replaces it -> Inval+Ack for block 0
	cfg := testConfig(2, FullVec)
	cfg.Sparse = SparseConfig{Entries: 1, Assoc: 1, Policy: sparse.LRU}
	m, r := mustRun(t, cfg, wl(nil, b1.Refs()))
	if r.Replacements == 0 {
		t.Fatal("expected a sparse replacement")
	}
	if r.Msgs[stats.Invalidation] == 0 || r.Msgs[stats.Ack] == 0 {
		t.Fatalf("replacement should invalidate sharers: %v", r.Msgs)
	}
	// Block 0 must be gone from proc 1's cache.
	if m.procs[1].h.State(0) != cache.Invalid {
		t.Fatal("replaced block still cached")
	}
	if r.ReplHist.Events() == 0 {
		t.Fatal("replacement histogram empty")
	}
}

func TestSparseDirtyReplacementFlush(t *testing.T) {
	var b1 tango.Builder
	b1.Write(addr(0)) // dirty at cluster 1
	b1.Read(addr(2))  // replaces entry -> Flush to cluster 1
	cfg := testConfig(2, FullVec)
	cfg.Sparse = SparseConfig{Entries: 1, Assoc: 1, Policy: sparse.LRU}
	m, r := mustRun(t, cfg, wl(nil, b1.Refs()))
	if r.Replacements == 0 {
		t.Fatal("expected a replacement")
	}
	if m.procs[1].h.State(0) != cache.Invalid {
		t.Fatal("flushed block still cached")
	}
	if r.RACPeak == 0 {
		t.Fatal("RAC never tracked the replacement")
	}
}

func TestResultSummary(t *testing.T) {
	var b tango.Builder
	b.Read(addr(0))
	_, r := mustRun(t, testConfig(1, FullVec), wl(b.Refs()))
	s := r.Summary()
	if !strings.Contains(s, "Dir1") || !strings.Contains(s, "messages") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Procs: 0, ProcsPerCluster: 1, Block: 16, Scheme: FullVec},
		{Procs: 5, ProcsPerCluster: 2, Block: 16, Scheme: FullVec},
		{Procs: 4, ProcsPerCluster: 1, Block: 0, Scheme: FullVec},
		{Procs: 4, ProcsPerCluster: 1, Block: 16, Scheme: nil},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWorkloadProcMismatch(t *testing.T) {
	m, err := New(testConfig(2, FullVec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(wl(nil)); err == nil {
		t.Fatal("expected proc-count mismatch error")
	}
}

// TestCoherenceSoak runs random workloads across every scheme and both
// directory organizations and validates the machine-wide coherence
// invariants at quiescence. This is the system's main property test.
func TestCoherenceSoak(t *testing.T) {
	schemes := []SchemeFactory{FullVec, CoarseVec2, Broadcast, NoBroadcast, SupersetX}
	for si, schemeF := range schemes {
		for _, sparseEntries := range []int{0, 4, 16} {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed*100 + int64(si)))
				const procs = 6
				streams := make([][]tango.Ref, procs)
				for p := range streams {
					var b tango.Builder
					for i := 0; i < 400; i++ {
						blk := int64(rng.Intn(48))
						switch rng.Intn(10) {
						case 0, 1, 2:
							b.Write(addr(blk))
						default:
							b.Read(addr(blk))
						}
					}
					streams[p] = b.Refs()
				}
				cfg := testConfig(procs, schemeF)
				cfg.Seed = seed
				if sparseEntries > 0 {
					cfg.Sparse = SparseConfig{Entries: sparseEntries, Assoc: 2, Policy: sparse.Random}
				}
				mustRun(t, cfg, wl(streams...))
				// And the same traffic on a clustered machine (3
				// clusters of 2), exercising bus snooping, request
				// merging and the writeback-epoch races.
				ccfg := cfg
				ccfg.ProcsPerCluster = 2
				cw := wl(streams...)
				mustRun(t, ccfg, cw)
			}
		}
	}
}

// TestClustered runs with 4 processors per cluster, exercising the snoopy
// bus paths (local supply, local invalidation, cache-to-cache transfer).
func TestClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const procs = 8 // 2 clusters of 4
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for i := 0; i < 300; i++ {
			blk := int64(rng.Intn(24))
			if rng.Intn(4) == 0 {
				b.Write(addr(blk))
			} else {
				b.Read(addr(blk))
			}
		}
		streams[p] = b.Refs()
	}
	cfg := testConfig(procs, CoarseVec2)
	cfg.ProcsPerCluster = 4
	_, r := mustRun(t, cfg, wl(streams...))
	if r.Msgs.Total() == 0 {
		t.Fatal("expected inter-cluster traffic")
	}
}
