package machine

import (
	"math/rand"
	"testing"

	"dircoh/internal/cache"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

func overflowConfig(procs int) Config {
	cfg := testConfig(procs, FullVec)
	cfg.Overflow = &OverflowDirConfig{Ptrs: 2, WideEntries: 4, Assoc: 2, Policy: sparse.LRU}
	return cfg
}

func TestOverflowDirectoryBasicRun(t *testing.T) {
	// Four remote clusters read one block: 2 pointers overflow into a
	// wide entry; a write then invalidates everyone precisely.
	const procs = 6
	streams := make([][]tango.Ref, procs)
	for p := 1; p <= 4; p++ {
		var b tango.Builder
		b.Read(addr(0))
		b.Barrier(addr(99))
		streams[p] = b.Refs()
	}
	var b0, b5 tango.Builder
	b0.Barrier(addr(99))
	b5.Barrier(addr(99))
	b5.Write(addr(0))
	streams[0] = b0.Refs()
	streams[5] = b5.Refs()
	m, r := mustRun(t, overflowConfig(procs), wl(streams...))
	// All four readers must have been invalidated (precise wide entry:
	// exactly 4 invals, no broadcast).
	if r.Msgs[stats.Invalidation] != 4 {
		t.Fatalf("invalidations = %d, want exactly 4 (precise wide entry)", r.Msgs[stats.Invalidation])
	}
	for p := 1; p <= 4; p++ {
		if m.procs[p].h.State(0) != cache.Invalid {
			t.Fatalf("proc %d still caches the block", p)
		}
	}
}

func TestOverflowDirectoryWideVictimInvalidates(t *testing.T) {
	// One wide slot; two blocks overflow in turn. The first block's
	// sharers must be invalidated when the second migration steals the
	// slot.
	cfg := testConfig(6, FullVec)
	cfg.Overflow = &OverflowDirConfig{Ptrs: 1, WideEntries: 1, Assoc: 1, Policy: sparse.LRU}
	streams := make([][]tango.Ref, 6)
	// Blocks 0 and 6 are both homed at cluster 0 (6 clusters).
	var b1, b2, b3, b4 tango.Builder
	b1.Read(addr(0))
	b1.Barrier(addr(97))
	b2.Read(addr(0)) // overflow: block 0 -> wide slot
	b2.Barrier(addr(97))
	b3.Barrier(addr(97))
	b3.Read(addr(6))
	b3.Barrier(addr(95))
	b4.Barrier(addr(97))
	b4.Read(addr(6)) // overflow: block 6 steals the slot -> invalidate block 0's sharers
	b4.Barrier(addr(95))
	var rest tango.Builder
	rest.Barrier(addr(97))
	rest.Barrier(addr(95))
	var b1f, b2f tango.Builder
	b1f.Read(addr(0))
	b1f.Barrier(addr(97))
	b1f.Barrier(addr(95))
	b2f.Read(addr(0))
	b2f.Barrier(addr(97))
	b2f.Barrier(addr(95))
	streams[0] = rest.Refs()
	streams[1] = b1f.Refs()
	streams[2] = b2f.Refs()
	var b3f, b4f tango.Builder
	b3f.Barrier(addr(97))
	b3f.Read(addr(6))
	b3f.Barrier(addr(95))
	b4f.Barrier(addr(97))
	b4f.Read(addr(6))
	b4f.Barrier(addr(95))
	streams[3] = b3f.Refs()
	streams[4] = b4f.Refs()
	var b5 tango.Builder
	b5.Barrier(addr(97))
	b5.Barrier(addr(95))
	streams[5] = b5.Refs()

	m, r := mustRun(t, cfg, wl(streams...))
	if r.Replacements == 0 {
		t.Fatal("expected a wide-cache replacement")
	}
	// Block 0's remote copies must be gone (invalidated by the victim
	// flow) — coherence was already checked in mustRun; verify teeth:
	if m.procs[1].h.State(0) != cache.Invalid || m.procs[2].h.State(0) != cache.Invalid {
		t.Fatal("victim block's sharers were not invalidated")
	}
}

// TestOverflowSoak runs random traffic against the overflow directory and
// checks machine-wide coherence at quiescence.
func TestOverflowSoak(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const procs = 6
		streams := make([][]tango.Ref, procs)
		for p := range streams {
			var b tango.Builder
			for i := 0; i < 500; i++ {
				blk := int64(rng.Intn(36))
				if rng.Intn(4) == 0 {
					b.Write(addr(blk))
				} else {
					b.Read(addr(blk))
				}
			}
			streams[p] = b.Refs()
		}
		cfg := overflowConfig(procs)
		cfg.Seed = seed
		mustRun(t, cfg, wl(streams...))
	}
}

func TestOverflowConfigValidation(t *testing.T) {
	cfg := testConfig(4, FullVec)
	cfg.Overflow = &OverflowDirConfig{Ptrs: 0, WideEntries: 4}
	if _, err := New(cfg); err == nil {
		t.Fatal("want error for zero pointers")
	}
	cfg = testConfig(4, FullVec)
	cfg.Overflow = &OverflowDirConfig{Ptrs: 2, WideEntries: 4}
	cfg.Sparse = SparseConfig{Entries: 8}
	if _, err := New(cfg); err == nil {
		t.Fatal("want error for sparse+overflow")
	}
}
