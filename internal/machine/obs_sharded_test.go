package machine

import (
	"bytes"
	"reflect"
	"testing"

	"dircoh/internal/obs"
	"dircoh/internal/tango"
)

// runObs runs cfg/w at the given shard width with every observability
// feature attached — event tracing, span tracing, queue-depth sampling,
// and an external metrics registry — and returns the result, the metrics
// text, and the full trace and span streams.
func runObs(t *testing.T, cfg Config, w *tango.Workload, shards int) (*Result, string, []obs.Event, []obs.Span) {
	t.Helper()
	ms := &obs.MemSink{}
	sp := &obs.MemSpanSink{}
	cfg.Shards = shards
	cfg.Trace = obs.NewTracer(ms, 0)
	cfg.Spans = obs.NewSpanRecorder(sp, 0)
	cfg.SampleEvery = 64
	cfg.Metrics = obs.NewRegistry()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shards > 0 && m.Shards() == 0 {
		t.Fatalf("shards=%d fell back to serial: %s", shards, m.FallbackReason())
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if err := m.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushSpans(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.MetricsSnapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	// The external registry must carry the same merged view the machine
	// reports — that is what makes Config.Metrics usable under sharding.
	var ext bytes.Buffer
	if err := cfg.Metrics.Snapshot().WriteText(&ext); err != nil {
		t.Fatal(err)
	}
	if ext.String() != buf.String() {
		t.Fatalf("shards=%d: external registry diverges from MetricsSnapshot", shards)
	}
	return r, buf.String(), ms.Events, sp.Spans
}

// TestShardedObsWidthIndependence is the tentpole claim of shard-safe
// observability: with tracing, spans, sampling and an external registry
// all enabled, every byte of observability output — the trace event
// stream, the span stream (IDs included), the metrics text — and the
// simulation Result itself are identical at shard widths 1, 2 and 4.
func TestShardedObsWidthIndependence(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fullvec", testConfig(16, FullVec)},
		{"coarse-sparse", func() Config {
			c := testConfig(16, CoarseVec2)
			c.Sparse = SparseConfig{Entries: 8, Assoc: 2}
			return c
		}()},
	}
	for i, c := range cases {
		c := c
		seed := int64(4000 + i)
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			c.cfg.Seed = seed
			w := stressWorkload(seed, c.cfg.Procs, 100, 40, true)
			base, baseTxt, baseEv, baseSp := runObs(t, c.cfg, w, 1)
			if len(baseEv) == 0 || len(baseSp) == 0 {
				t.Fatal("width-1 run emitted no events or no spans")
			}
			verifySpanTree(t, baseSp)
			for _, shards := range []int{2, 4} {
				r, txt, ev, sp := runObs(t, c.cfg, w, shards)
				if !reflect.DeepEqual(base, r) {
					t.Errorf("shards=%d result differs from shards=1", shards)
				}
				if txt != baseTxt {
					t.Errorf("shards=%d metrics differ from shards=1", shards)
				}
				if !reflect.DeepEqual(baseEv, ev) {
					t.Errorf("shards=%d trace stream differs from shards=1 (%d vs %d events)",
						shards, len(ev), len(baseEv))
				}
				if !reflect.DeepEqual(baseSp, sp) {
					t.Errorf("shards=%d span stream differs from shards=1 (%d vs %d spans)",
						shards, len(sp), len(baseSp))
				}
			}
		})
	}
}

// TestShardedObsNoPerturbation: enabling every observability feature must
// not change what a sharded run simulates — only what it records.
func TestShardedObsNoPerturbation(t *testing.T) {
	cfg := testConfig(16, FullVec)
	cfg.Seed = 4100
	w := stressWorkload(4100, cfg.Procs, 100, 40, true)
	bare, _ := runSharded(t, cfg, w, 4)
	obsOn, _, _, _ := runObs(t, cfg, w, 4)
	if !reflect.DeepEqual(bare, obsOn) {
		t.Fatalf("observability perturbed the sharded run:\n  bare: %s\n  obs:  %s",
			bare.Summary(), obsOn.Summary())
	}
}

// TestLiveSnapshots: a run with a live slot attached publishes a final
// Done sample carrying the run's metrics, on both cores; the sharded
// sample reports one wheel time per shard.
func TestLiveSnapshots(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := testConfig(16, FullVec)
		cfg.Seed = 4200
		cfg.Shards = shards
		live := obs.NewLive()
		cfg.Live = live.Run("t/live")
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(stressWorkload(4200, cfg.Procs, 60, 40, true)); err != nil {
			t.Fatal(err)
		}
		s := cfg.Live.Latest()
		if s == nil || !s.Done {
			t.Fatalf("shards=%d: no final Done sample (got %+v)", shards, s)
		}
		if s.Cycles == 0 || s.Events == 0 {
			t.Fatalf("shards=%d: empty progress in final sample: %+v", shards, s)
		}
		if want := cfg.Shards; len(s.Shards) != want {
			t.Fatalf("shards=%d: sample reports %d shard times", shards, len(s.Shards))
		}
		if s.Metrics.Counter("msg.readreq") == 0 {
			t.Fatalf("shards=%d: final sample carries no metrics", shards)
		}
	}
}
