package machine

import (
	"testing"

	"dircoh/internal/cache"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// TestLatencyCalibration checks the §5 latency constants: a local miss
// costs ~23 cycles; a two-cluster remote read ~60; a three-cluster
// (dirty-remote) read ~80. We accept the paper's numbers ±40%.
func TestLatencyCalibration(t *testing.T) {
	run := func(streams [][]tango.Ref) *Machine {
		m, err := New(testConfig(len(streams), FullVec))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(wl(streams...)); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Local miss: proc 0 reads a block homed at its own cluster.
	var b0 tango.Builder
	b0.Read(addr(0))
	m := run([][]tango.Ref{b0.Refs(), nil})
	local := m.procs[0].finish
	if local < 20 || local > 35 {
		t.Errorf("local miss latency = %d cycles, want ~23 (§5)", local)
	}

	// Two-cluster read: proc 1 reads a block homed at cluster 0.
	var b1 tango.Builder
	b1.Read(addr(0))
	m = run([][]tango.Ref{nil, b1.Refs()})
	twoCluster := m.procs[1].finish
	if twoCluster < 45 || twoCluster > 85 {
		t.Errorf("2-cluster read latency = %d cycles, want ~60 (§5)", twoCluster)
	}

	// Three-cluster read: proc 1 dirties a block homed at cluster 0,
	// then proc 2 reads it. Measure proc 2's read alone by subtracting
	// its barrier exit.
	var w1, r2, s0 tango.Builder
	w1.Write(addr(0))
	w1.Barrier(addr(99))
	r2.Barrier(addr(99))
	r2.Read(addr(0))
	s0.Barrier(addr(99))
	m = run([][]tango.Ref{s0.Refs(), w1.Refs(), r2.Refs()})
	three := m.procs[2].finish - m.procs[0].finish // barrier exits together
	if three < 60 || three > 115 {
		t.Errorf("3-cluster read latency = %d cycles, want ~80 (§5)", three)
	}
	if three <= twoCluster {
		t.Errorf("3-cluster (%d) should cost more than 2-cluster (%d)", three, twoCluster)
	}
}

// TestUpgradeRace: proc 1 and proc 2 both hold a shared copy and write
// "simultaneously"; one side's copy is invalidated while its upgrade is in
// flight, so the home must supply data, not just ownership. The run must
// complete coherently.
func TestUpgradeRace(t *testing.T) {
	var b0, b1, b2 tango.Builder
	// Both remote procs read first (shared copies), then both write at
	// the same barrier-released instant.
	b0.Barrier(addr(99))
	b0.Barrier(addr(98))
	for _, b := range []*tango.Builder{&b1, &b2} {
		b.Read(addr(0))
		b.Barrier(addr(99))
		b.Write(addr(0))
		b.Barrier(addr(98))
	}
	m, _ := mustRun(t, testConfig(3, FullVec), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	// Exactly one cluster may end up dirty.
	e := m.dirEntry(0)
	if e == nil || !e.Dirty() {
		t.Fatal("block should be dirty at one of the writers")
	}
	if e.Owner() != 1 && e.Owner() != 2 {
		t.Fatalf("owner = %d, want 1 or 2", e.Owner())
	}
}

// TestWritebackRace: the owner writes back (cache eviction) while a write
// request from another cluster is racing to the home. The guarded
// writeback must not clobber the new owner's state.
func TestWritebackRace(t *testing.T) {
	// Tiny cache: proc 1 dirties block 0, then floods its cache to force
	// the writeback, while proc 2 writes block 0.
	var b0, b1, b2 tango.Builder
	b0.Barrier(addr(199))
	b1.Write(addr(0))
	b1.Barrier(addr(199))
	for i := int64(2); i < 140; i += 2 {
		b1.Write(addr(i)) // evicts block 0 eventually -> writeback
	}
	b2.Barrier(addr(199))
	b2.Write(addr(0))
	m, _ := mustRun(t, testConfig(3, FullVec), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	e := m.dirEntry(0)
	if e != nil && e.Dirty() && e.Owner() == 1 {
		// Only acceptable if cluster 1 really still holds it dirty.
		if m.procs[1].h.State(0) != cache.Dirty {
			t.Fatal("directory says cluster 1 owns block 0 but its cache lost it")
		}
	}
}

// TestRequestQueuedBehindReplacement: a request for a block whose sparse
// entry was just replaced must wait for the replacement invalidations to
// be acknowledged (RAC gating), then proceed correctly.
func TestRequestQueuedBehindReplacement(t *testing.T) {
	// Cluster 1 reads blocks 0 and 3 (same home 0, 1-entry directory):
	// reading 3 replaces 0's entry. Cluster 2 immediately reads 0 —
	// this request races the replacement invalidations.
	var b1, b2 tango.Builder
	b1.Read(addr(0))
	b1.Read(addr(3)) // same home (cluster 0) with 3 clusters
	b2.Read(addr(0))
	b2.Read(addr(0)) // hit after refetch
	cfg := testConfig(3, FullVec)
	cfg.Sparse = SparseConfig{Entries: 1, Assoc: 1, Policy: sparse.LRU}
	m, r := mustRun(t, cfg, wl(nil, b1.Refs(), b2.Refs()))
	if r.Replacements == 0 {
		t.Fatal("expected replacements")
	}
	// Whatever the interleaving, coherence held (mustRun checked) and
	// cluster 2 ends with a shared copy recorded in some entry.
	if m.procs[2].h.State(0) == cache.Shared {
		e := m.dirEntry(0)
		if e == nil || !e.IsSharer(2) {
			t.Fatal("cluster 2 holds block 0 but the directory does not know")
		}
	}
}

// TestClusterLocalSupply: with several processors per cluster, a miss
// that another local cache can satisfy must not generate any network
// traffic.
func TestClusterLocalSupply(t *testing.T) {
	// 1 cluster of 4 procs: all sharing stays on the bus.
	var b0, b1, b2, b3 tango.Builder
	b0.Write(addr(5))
	b0.Barrier(addr(99))
	for _, b := range []*tango.Builder{&b1, &b2, &b3} {
		b.Barrier(addr(99))
		b.Read(addr(5)) // local dirty supply, then local shared supply
	}
	cfg := testConfig(4, FullVec)
	cfg.ProcsPerCluster = 4
	_, r := mustRun(t, cfg, wl(b0.Refs(), b1.Refs(), b2.Refs(), b3.Refs()))
	if r.Msgs.Total() != 0 {
		t.Fatalf("intra-cluster sharing sent %d network messages", r.Msgs.Total())
	}
}

// TestClusterLocalOwnershipTransfer: a write hitting another local cache's
// dirty copy transfers ownership over the bus without network messages,
// even when the block's home is remote.
func TestClusterLocalOwnershipTransfer(t *testing.T) {
	// 2 clusters of 2. Block 1 homed at cluster 1; procs 0 and 1 are
	// cluster 0.
	var b0, b1 tango.Builder
	b0.Write(addr(1)) // remote miss: messages
	b0.Barrier(addr(98))
	b1.Barrier(addr(98))
	b1.Write(addr(1)) // local dirty transfer: no new messages
	var b2, b3 tango.Builder
	b2.Barrier(addr(98))
	b3.Barrier(addr(98))
	cfg := testConfig(4, FullVec)
	cfg.ProcsPerCluster = 2
	m, r := mustRun(t, cfg, wl(b0.Refs(), b1.Refs(), b2.Refs(), b3.Refs()))
	// Block 1's home is cluster 1: the first write costs WriteReq+Reply
	// plus barrier traffic; the second costs nothing further.
	wantMax := uint64(2) /* write */ + 4 /* barrier arrive/release for procs 0,1 */
	if r.Msgs.Total() > wantMax {
		t.Fatalf("messages = %d, want <= %d (local transfer must be free)", r.Msgs.Total(), wantMax)
	}
	if m.procs[1].h.State(m.block(addr(1))) != cache.Dirty {
		t.Fatal("proc 1 should own the block")
	}
	if m.procs[0].h.State(m.block(addr(1))) != cache.Invalid {
		t.Fatal("proc 0's copy should have been invalidated on the bus")
	}
}

// TestSharingWBGuard: a sharing writeback arriving after ownership moved
// must not clear the new owner's dirty state.
func TestSharingWBGuard(t *testing.T) {
	// Cluster 1 dirties block 0 (home 0); a local read inside cluster 1
	// (2 procs per cluster) triggers a sharing writeback; meanwhile
	// cluster... exercise via ppc=2 machine and follow-up write.
	cfg := testConfig(6, FullVec)
	cfg.ProcsPerCluster = 2
	var b2, b3, b4 tango.Builder // procs 2,3 = cluster 1; proc 4 = cluster 2
	b2.Write(addr(0))
	b2.Barrier(addr(99))
	b3.Barrier(addr(99))
	b3.Read(addr(0)) // local dirty supply -> SharingWB to home
	b4.Barrier(addr(99))
	b4.Write(addr(0)) // races the SharingWB
	streams := make([][]tango.Ref, 6)
	var bb tango.Builder
	bb.Barrier(addr(99))
	for i := range streams {
		streams[i] = bb.Refs()
	}
	streams[2] = b2.Refs()
	streams[3] = b3.Refs()
	streams[4] = b4.Refs()
	mustRun(t, cfg, wl(streams...)) // coherence check inside mustRun is the assertion
}

// TestExecutionTimeIsMaxFinish: the reported execution time equals the
// latest processor's finish.
func TestExecutionTimeIsMaxFinish(t *testing.T) {
	var b0, b1 tango.Builder
	b0.Read(addr(0))
	for i := int64(0); i < 50; i++ {
		b1.Write(addr(i*2 + 1))
	}
	m, r := mustRun(t, testConfig(2, FullVec), wl(b0.Refs(), b1.Refs()))
	want := m.procs[0].finish
	if m.procs[1].finish > want {
		want = m.procs[1].finish
	}
	if r.ExecTime != want {
		t.Fatalf("ExecTime = %d, want %d", r.ExecTime, want)
	}
}

// TestAcksDrainBeforeUnlock: release consistency requires the fence at
// unlock to wait for outstanding invalidation acknowledgements.
func TestAcksDrainBeforeUnlock(t *testing.T) {
	// Proc 2 writes a block shared by proc 1 while holding a lock; the
	// unlock must not complete before the ack arrives. We verify
	// indirectly: the run completes and no proc finishes with pending
	// acks (Run would have reported a deadlock otherwise), plus acks
	// were actually generated.
	var b0, b1, b2 tango.Builder
	b0.Barrier(addr(97))
	b1.Read(addr(0))
	b1.Barrier(addr(97))
	b2.Barrier(addr(97))
	b2.Lock(addr(301))
	b2.Write(addr(0))
	b2.Unlock(addr(301))
	_, r := mustRun(t, testConfig(3, FullVec), wl(b0.Refs(), b1.Refs(), b2.Refs()))
	if r.Msgs[stats.Ack] == 0 {
		t.Fatal("expected an acknowledgement")
	}
}
