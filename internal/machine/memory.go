package machine

import (
	"dircoh/internal/bitset"
	"dircoh/internal/cache"
	"dircoh/internal/core"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
)

// access handles one read or write reference by p.
func (m *Machine) access(p *proc, write bool, addr int64) {
	m.accessBlock(p, write, m.block(addr))
}

// accessBlock runs one access by block number (used directly when MSHR
// waiters retry).
func (m *Machine) accessBlock(p *proc, write bool, b int64) {
	now := m.now(p.cl)
	if !p.opPending {
		p.opPending = true
		p.opWrite = write
		p.opStart = now
	}
	switch p.h.Access(b, write, now) {
	case cache.Hit:
		m.complete(p, now+m.t.Hit)
	case cache.MissUpgrade:
		done := m.busOp(p.cl, m.t.Bus)
		m.at(p.cl, done, func() { m.busMiss(p, write, b, true) })
	default: // Miss
		done := m.busOp(p.cl, m.t.Bus)
		m.at(p.cl, done, func() { m.busMiss(p, write, b, false) })
	}
}

// fill installs block b in p's caches and handles any writeback the fill
// displaces.
func (m *Machine) fill(p *proc, b int64, st cache.State) {
	m.debugf(b, "fill p%d/c%d %v", p.id, p.cl.id, st)
	v := p.h.Fill(b, st, m.now(p.cl))
	m.handleVictim(p, v)
}

// handleVictim sends a writeback for a dirty cache victim; shared victims
// are dropped silently (the directory keeps a stale, superset sharer bit,
// as DASH does).
func (m *Machine) handleVictim(p *proc, v cache.Victim) {
	if !v.Valid || !v.Dirty {
		return
	}
	vb := v.Block
	home := m.home(vb)
	if home == p.cl.id {
		return // local memory updated over the bus; no network traffic
	}
	hc := m.clusters[home]
	from := p.cl.id
	m.send(protocol.WritebackReq, from, home, func() {
		// A writeback superseded by a re-grant of ownership to the same
		// cluster (the home counted it when serving that request) is
		// stale: drop it.
		if n := hc.wbExpected[vb]; n > 0 {
			if n == 1 {
				delete(hc.wbExpected, vb)
			} else {
				hc.wbExpected[vb] = n - 1
			}
			return
		}
		// Guarded update: only clear ownership if the directory still
		// believes we own the block (a racing transaction may already
		// have moved ownership; its forwarded request found no copy) and
		// the cluster has not re-acquired the block dirty meanwhile
		// (ownership bouncing away and back via a third cluster arms no
		// wbExpected, so a fault-delayed writeback can arrive here stale).
		// A busy gate with the entry dirty-owned by the sender can only
		// mean an undelivered ownership grant back to the sender, which
		// this writeback predates — treat it as stale too.
		if e := hc.dir.Lookup(m.dirKey(vb), m.now(hc)); e != nil && e.Dirty() && e.Owner() == from &&
			!m.clusterHoldsDirty(m.clusters[from], vb) && !hc.gate.Busy(vb) {
			e.Reset()
			hc.dir.Release(m.dirKey(vb))
		}
		m.checkBlock(vb)
	})
}

// busMiss runs after p's local bus transaction: snoop the cluster's other
// caches, then involve the home directory if the cluster cannot satisfy
// the access by itself.
func (m *Machine) busMiss(p *proc, write bool, b int64, upgrade bool) {
	c := p.cl
	now := m.now(c)
	home := m.home(b)
	if write {
		localDirty := false
		for _, q := range c.procs {
			if q == p {
				continue
			}
			if _, d := q.h.Invalidate(b); d {
				localDirty = true
			}
		}
		// A sibling's outstanding read must not install a copy after
		// this write: poison it (bus-order serialization).
		if _, ok := c.pendingReads[b]; ok {
			c.poisonedReads[b] = true
		}
		if localDirty {
			// Cache-to-cache ownership transfer within the cluster; the
			// directory state (dirty at this cluster, or home-local) is
			// unchanged.
			m.debugf(b, "localDirty transfer to p%d/c%d", p.id, p.cl.id)
			m.fill(p, b, cache.Dirty)
			m.complete(p, now+m.t.Fill)
			return
		}
		if home == c.id {
			m.homeLocalWrite(p, b)
			return
		}
		if c.pendingWrite[b] {
			// Another local processor's ownership request is in flight;
			// retry over the bus when it completes.
			c.writeWaiters[b] = append(c.writeWaiters[b], mshrWaiter{p: p, write: true})
			c.res.mergedReads.Inc()
			return
		}
		c.pendingWrite[b] = true
		kind := protocol.WriteReq
		class := obs.TxWrite
		if upgrade {
			kind = protocol.UpgradeReq
			class = obs.TxUpgrade
		}
		tx := m.txStart(class, c, b)
		m.trace(obs.EvReqIssue, c.id, b, int64(kind))
		m.sendTx(kind, c.id, home, tx, func() { m.remoteWriteAtHome(p, b, upgrade, tx) })
		return
	}
	// Read. An ownership request in flight from this cluster wins the
	// MSHR check before any bus supply: the sibling's copy is about to
	// be superseded, so park and retry once the write lands.
	if c.pendingWrite[b] {
		c.writeWaiters[b] = append(c.writeWaiters[b], mshrWaiter{p: p})
		c.res.mergedReads.Inc()
		return
	}
	// Another local cache can supply the data directly.
	for _, q := range c.procs {
		if q == p {
			continue
		}
		switch q.h.State(b) {
		case cache.Dirty:
			m.debugf(b, "local dirty supply q%d -> p%d (c%d)", q.id, p.id, c.id)
			q.h.Downgrade(b)
			m.fill(p, b, cache.Shared)
			if home != c.id {
				m.sendSharingWB(c.id, home, b)
			}
			m.complete(p, now+m.t.Fill)
			return
		case cache.Shared:
			m.fill(p, b, cache.Shared)
			m.complete(p, now+m.t.Fill)
			return
		}
	}
	if home == c.id {
		m.homeLocalRead(p, b)
		return
	}
	// RAC request merging: if another local processor already has a read
	// outstanding for this block, ride its reply instead of sending a
	// second request.
	if followers, ok := c.pendingReads[b]; ok {
		c.pendingReads[b] = append(followers, p)
		c.res.mergedReads.Inc()
		return
	}
	c.pendingReads[b] = nil
	tx := m.txStart(obs.TxRead, c, b)
	m.trace(obs.EvReqIssue, c.id, b, int64(protocol.ReadReq))
	m.sendTx(protocol.ReadReq, c.id, home, tx, func() { m.remoteReadAtHome(p, b, tx) })
}

// remoteReadDone fills p and every merged follower, completing them all.
// A poisoned read delivers its data without caching it.
func (m *Machine) remoteReadDone(p *proc, b int64, tx *txState) {
	m.txPhase(p.cl, tx, obs.PhReplyTravel)
	m.txEnd(p.cl, tx)
	now := m.now(p.cl)
	poisoned := p.cl.poisonedReads[b]
	m.debugf(b, "remoteReadDone p%d/c%d poisoned=%v followers=%d", p.id, p.cl.id, poisoned, len(p.cl.pendingReads[b]))
	procs := append([]*proc{p}, p.cl.pendingReads[b]...)
	delete(p.cl.pendingReads, b)
	delete(p.cl.poisonedReads, b)
	for _, q := range procs {
		if !poisoned {
			m.fill(q, b, cache.Shared)
		}
		m.complete(q, now+m.t.Fill)
	}
	m.checkBlock(b)
}

// invalidateCluster removes block b from every cache of cluster c and, if
// c has a read outstanding for b, poisons it so the in-flight reply is
// consumed without caching (the invalidation logically follows the read).
// A directed invalidation that finds neither a cached copy nor a pending
// read was extraneous — sent only because the directory's sharer
// information is imprecise (coarse regions, broadcasts, stale bits).
// directed is false for the home-bus snoop, which is issued
// unconditionally and so says nothing about directory precision.
func (m *Machine) invalidateCluster(c *clusterNode, b int64, directed bool) {
	m.debugf(b, "invalidateCluster c%d", c.id)
	hit := false
	for _, q := range c.procs {
		if present, _ := q.h.Invalidate(b); present {
			hit = true
		}
	}
	if _, ok := c.pendingReads[b]; ok {
		c.poisonedReads[b] = true
		hit = true
	}
	if directed && !hit {
		c.res.extraInval.Inc()
	}
}

// sendSharingWB tells the home that cluster `from` downgraded its dirty
// copy and memory is current again.
func (m *Machine) sendSharingWB(from, home int, b int64) {
	hc := m.clusters[home]
	m.send(protocol.SharingWB, from, home, func() {
		// Stale with respect to a re-granted ownership (see wbExpected)?
		if n := hc.wbExpected[b]; n > 0 {
			if n == 1 {
				delete(hc.wbExpected, b)
			} else {
				hc.wbExpected[b] = n - 1
			}
			return
		}
		// Guarded downgrade: ownership may have moved away and back since
		// this writeback was sent (delay or retry reordering via a third
		// cluster arms no wbExpected). If the cluster holds the block
		// dirty again — or a grant back to it is still in flight (gate
		// busy with the entry dirty-owned by the sender) — the downgrade
		// this message reports is ancient.
		if e := hc.dir.Lookup(m.dirKey(b), m.now(hc)); e != nil && e.Dirty() && e.Owner() == from &&
			!m.clusterHoldsDirty(m.clusters[from], b) && !hc.gate.Busy(b) {
			e.ClearDirty()
		}
		m.checkBlock(b)
	})
}

// homeLocalRead serves a read whose home is the requester's own cluster.
func (m *Machine) homeLocalRead(p *proc, b int64) {
	h := p.cl
	if h.gate.Busy(b) {
		h.gate.Wait(b, func() { m.homeLocalRead(p, b) })
		return
	}
	now := m.now(h)
	// Re-snoop: a sibling may have obtained a copy while this request
	// waited on the gate; the bus supplies it directly.
	for _, q := range h.procs {
		if q == p {
			continue
		}
		switch q.h.State(b) {
		case cache.Dirty:
			q.h.Downgrade(b)
			m.fill(p, b, cache.Shared)
			m.complete(p, now+m.t.Fill)
			return
		case cache.Shared:
			m.fill(p, b, cache.Shared)
			m.complete(p, now+m.t.Fill)
			return
		}
	}
	e := h.dir.Lookup(m.dirKey(b), now)
	if e == nil || !e.Dirty() {
		m.fill(p, b, cache.Shared)
		m.complete(p, now+m.t.Fill)
		return
	}
	// Dirty in a remote cluster: forward there; the reply to the home
	// doubles as the sharing writeback.
	owner := e.Owner()
	e.ClearDirty()
	h.gate.Lock(b)
	m.send(protocol.FwdReadReq, h.id, owner, func() {
		oc := m.clusters[owner]
		done := m.busOp(oc, m.t.Fwd)
		m.at(oc, done, func() {
			for _, q := range oc.procs {
				q.h.Downgrade(b)
			}
			m.send(protocol.DataReply, owner, h.id, func() {
				m.fill(p, b, cache.Shared)
				m.complete(p, m.now(h)+m.t.Fill)
				h.gate.Unlock(b)
				m.checkBlock(b)
			})
		})
	})
}

// homeLocalWrite serves a write whose home is the requester's own cluster.
// The local bus snoop has already invalidated other local copies.
func (m *Machine) homeLocalWrite(p *proc, b int64) {
	h := p.cl
	if h.gate.Busy(b) {
		h.gate.Wait(b, func() { m.homeLocalWrite(p, b) })
		return
	}
	now := m.now(h)
	// Re-snoop: siblings may have picked up copies while this request
	// waited on the gate; a sibling's dirty copy transfers ownership
	// over the bus, shared copies are invalidated.
	localDirty := false
	for _, q := range h.procs {
		if q == p {
			continue
		}
		if _, d := q.h.Invalidate(b); d {
			localDirty = true
		}
	}
	if localDirty {
		m.fill(p, b, cache.Dirty)
		m.complete(p, now+m.t.Fill)
		return
	}
	e := h.dir.Lookup(m.dirKey(b), now)
	if e == nil || e.Empty() {
		if e != nil {
			h.dir.Release(m.dirKey(b))
		}
		h.res.invalHist.Add(0)
		h.res.invalFan.Observe(0)
		m.fill(p, b, cache.Dirty)
		m.complete(p, now+m.t.Fill)
		return
	}
	if e.Dirty() {
		// Recall from the remote owner; afterwards the block is dirty in
		// the home cluster and needs no directory entry.
		owner := e.Owner()
		e.Reset()
		h.dir.Release(m.dirKey(b))
		h.gate.Lock(b)
		m.send(protocol.FwdWriteReq, h.id, owner, func() {
			oc := m.clusters[owner]
			done := m.busOp(oc, m.t.InvalBus)
			m.at(oc, done, func() {
				m.applyInval(oc, b, false)
				m.send(protocol.OwnershipReply, owner, h.id, func() {
					m.fill(p, b, cache.Dirty)
					m.complete(p, m.now(h)+m.t.Fill)
					h.gate.Unlock(b)
					m.checkBlock(b)
				})
			})
		})
		return
	}
	// Remote sharers: invalidate them; ownership is granted immediately
	// (acknowledgements drain asynchronously under release consistency).
	targets := e.Sharers()
	targets.Remove(h.id)
	n := targets.Count()
	h.res.invalHist.Add(n)
	h.res.invalFan.Observe(uint64(n))
	if n > 0 && !e.Precise() {
		m.trace(obs.EvOverflow, h.id, b, int64(n))
	}
	e.Reset()
	h.dir.Release(m.dirKey(b))
	p.pendingAcks += n
	if m.chk != nil {
		m.chk.AckExpect(p.id, n)
	}
	m.fill(p, b, cache.Dirty)
	m.complete(p, now+m.t.Fill)
	m.sendInvals(h, b, targets, p, nil)
	m.checkBlock(b)
}

// sendInvals sends invalidations for block b to every cluster in targets;
// each target acknowledges to ackTo's cluster and the ack is credited to
// ackTo. The requester's own cluster is never a target (callers exclude
// it), so acknowledgements always travel the network, as in DASH.
func (m *Machine) sendInvals(h *clusterNode, b int64, targets bitset.Set, ackTo *proc, tx *txState) {
	if n := targets.Count(); n > 0 {
		m.trace(obs.EvInvalFanout, h.id, b, int64(n))
	}
	m.txFanout(h, tx, targets.Count(), false)
	if m.chk != nil {
		m.chk.InvalSent(b, targets.Count())
	}
	// The directory injects invalidations at a finite rate; a broadcast
	// keeps the controller busy and delays requests queued behind it.
	m.occupyDir(h, m.t.InvalSend*sim.Time(targets.Count()))
	targets.ForEach(func(t int) {
		tc := m.clusters[t]
		m.sendTx(protocol.Inval, h.id, t, tx, func() {
			done := m.busOp(tc, m.t.InvalBus)
			m.at(tc, done, func() {
				m.applyInval(tc, b, false)
				m.invalApplied(b)
				if tx == nil {
					// Hot path: the pre-bound ack handler avoids allocating
					// a closure per invalidation.
					m.sendTx(protocol.AckMsg, t, ackTo.cl.id, nil, ackTo.ackFn)
					return
				}
				m.sendTx(protocol.AckMsg, t, ackTo.cl.id, tx, func() {
					m.ackArrived(ackTo)
					m.txAck(ackTo.cl, tx)
				})
			})
		})
	})
}

// remoteReadAtHome runs when a ReadReq arrives at the home cluster.
func (m *Machine) remoteReadAtHome(p *proc, b int64, tx *txState) {
	h := m.clusters[m.home(b)]
	m.txPhase(h, tx, obs.PhReqTravel)
	m.trace(obs.EvDirLookup, h.id, b, 0)
	done := m.dirOp(h, m.t.Dir)
	m.at(h, done, func() { m.serveRemoteRead(p, b, h, tx) })
}

func (m *Machine) serveRemoteRead(p *proc, b int64, h *clusterNode, tx *txState) {
	m.debugf(b, "serveRemoteRead p%d/c%d gateBusy=%v", p.id, p.cl.id, h.gate.Busy(b))
	if h.gate.Busy(b) {
		h.gate.Wait(b, func() { m.serveRemoteRead(p, b, h, tx) })
		return
	}
	now := m.now(h)
	rc := p.cl.id
	e := h.dir.Lookup(m.dirKey(b), now)
	if e != nil && e.Dirty() && e.Owner() != rc {
		// Three-cluster read: forward to the owner, which replies to the
		// requester and sends a sharing writeback home.
		owner := e.Owner()
		e.ClearDirty()
		m.handleNBEvictions(h, b, e.AddSharer(rc), tx)
		m.drainDirVictims(h)
		h.gate.Lock(b)
		m.txPhase(h, tx, obs.PhDirWait)
		m.sendTx(protocol.FwdReadReq, h.id, owner, tx, func() {
			oc := m.clusters[owner]
			done := m.busOp(oc, m.t.Fwd)
			m.at(oc, done, func() {
				for _, q := range oc.procs {
					q.h.Downgrade(b)
				}
				m.txPhase(oc, tx, obs.PhFanout)
				if m.shard != nil {
					// The serial engine unlocks the home gate from inside the
					// reply closure at the requester; a shard must not reach
					// into another shard's gate, so the home unlocks itself
					// at the same instant via an uncounted cross-shard event.
					m.sendTx(protocol.DataReply, owner, rc, tx, func() {
						m.remoteReadDone(p, b, tx)
					})
					m.xat(oc, h, m.now(oc)+m.net.Latency(owner, rc), func() {
						h.gate.Unlock(b)
					})
				} else {
					m.sendTx(protocol.DataReply, owner, rc, tx, func() {
						m.remoteReadDone(p, b, tx)
						h.gate.Unlock(b)
						m.checkBlock(b)
					})
				}
				m.sendTx(protocol.SharingWB, owner, h.id, tx, func() {})
			})
		})
		return
	}
	// Clean at home (or owned by the requester after a writeback race).
	e2, victim := h.dir.Allocate(m.dirKey(b), now)
	if victim != nil {
		m.replaceEntry(h, victim)
	}
	if e2.Dirty() && e2.Owner() == rc {
		if m.clusterHoldsDirty(p.cl, b) {
			// Stale request: fault-injected delay (or a retry) let the
			// cluster's own later write overtake this read, and ownership
			// has already been granted back. A real home would NAK;
			// here the entry is left untouched and the reply merely
			// completes the read, which the overtaking write poisoned.
			m.debugf(b, "stale read from owner c%d, entry untouched", rc)
			p.cl.poisonedReads[b] = true
			m.txPhase(h, tx, obs.PhDirWait)
			m.sendTx(protocol.DataReply, h.id, rc, tx, func() {
				m.remoteReadDone(p, b, tx)
			})
			return
		}
		// The owner itself is asking: its copy was evicted, so a
		// writeback is in flight and now stale.
		e2.ClearDirty()
		h.wbExpected[b]++
	}
	// Home-bus snoop: a home cache may hold the block dirty with no
	// directory entry; downgrade it so memory supplies current data.
	for _, q := range h.procs {
		q.h.Downgrade(b)
	}
	m.handleNBEvictions(h, b, e2.AddSharer(rc), tx)
	m.drainDirVictims(h)
	m.txPhase(h, tx, obs.PhDirWait)
	m.sendTx(protocol.DataReply, h.id, rc, tx, func() {
		m.remoteReadDone(p, b, tx)
	})
}

// remoteWriteAtHome runs when a WriteReq/UpgradeReq arrives at the home.
func (m *Machine) remoteWriteAtHome(p *proc, b int64, upgrade bool, tx *txState) {
	h := m.clusters[m.home(b)]
	m.txPhase(h, tx, obs.PhReqTravel)
	m.trace(obs.EvDirLookup, h.id, b, 1)
	done := m.dirOp(h, m.t.Dir)
	m.at(h, done, func() { m.serveRemoteWrite(p, b, h, upgrade, tx) })
}

func (m *Machine) serveRemoteWrite(p *proc, b int64, h *clusterNode, upgrade bool, tx *txState) {
	m.debugf(b, "serveRemoteWrite p%d/c%d upgrade=%v gateBusy=%v", p.id, p.cl.id, upgrade, h.gate.Busy(b))
	if h.gate.Busy(b) {
		h.gate.Wait(b, func() { m.serveRemoteWrite(p, b, h, upgrade, tx) })
		return
	}
	now := m.now(h)
	rc := p.cl.id
	e, victim := h.dir.Allocate(m.dirKey(b), now)
	if victim != nil {
		m.replaceEntry(h, victim)
	}
	if e.Dirty() && e.Owner() != rc {
		// Ownership transfer between two remote clusters.
		owner := e.Owner()
		e.SetDirty(rc)
		h.gate.Lock(b)
		m.txPhase(h, tx, obs.PhDirWait)
		m.sendTx(protocol.FwdWriteReq, h.id, owner, tx, func() {
			oc := m.clusters[owner]
			done := m.busOp(oc, m.t.InvalBus)
			m.at(oc, done, func() {
				m.applyInval(oc, b, false)
				m.txPhase(oc, tx, obs.PhFanout)
				if m.shard != nil {
					// See serveRemoteRead: the home gate unlocks via its own
					// event at the reply's arrival instant instead of from
					// the requester-side closure.
					m.sendTx(protocol.OwnershipReply, owner, rc, tx, func() {
						m.remoteWriteDone(p, b, upgrade, tx)
					})
					m.xat(oc, h, m.now(oc)+m.net.Latency(owner, rc), func() {
						h.gate.Unlock(b)
					})
				} else {
					m.sendTx(protocol.OwnershipReply, owner, rc, tx, func() {
						m.remoteWriteDone(p, b, upgrade, tx)
						h.gate.Unlock(b)
						m.checkBlock(b)
					})
				}
			})
		})
		return
	}
	if e.Dirty() && e.Owner() == rc && !m.clusterHoldsDirty(p.cl, b) {
		// Re-granting to the recorded owner: its in-flight writeback is
		// stale (see wbExpected). If the cluster still holds the block
		// dirty the request itself is the stale artifact (delay or retry
		// reordering) and no writeback is coming — don't expect one.
		h.wbExpected[b]++
	}
	// Clean (or requester-owned): invalidate the sharers. The ownership
	// reply carries the invalidation count; acknowledgements go straight
	// to the requester.
	targets := e.Sharers()
	targets.Remove(rc)
	targets.Remove(h.id)
	// Home-bus snoop invalidates home-cluster copies without messages.
	m.invalidateCluster(h, b, false)
	n := targets.Count()
	h.res.invalHist.Add(n)
	h.res.invalFan.Observe(uint64(n))
	if n > 0 && !e.Precise() {
		m.trace(obs.EvOverflow, h.id, b, int64(n))
	}
	e.SetDirty(rc)
	m.drainDirVictims(h)
	h.gate.Lock(b)
	m.txPhase(h, tx, obs.PhDirWait)
	if m.shard != nil {
		// The requester's ack count is carried by the ownership reply (the
		// reply strictly precedes every acknowledgement: each ack travels
		// home->target->requester plus a bus transaction, which the
		// degenerate-timing fallback keeps strictly longer than the direct
		// reply), and the home unlocks its own gate at the reply's arrival
		// instant rather than from the requester-side closure.
		m.sendTx(protocol.OwnershipReply, h.id, rc, tx, func() {
			p.pendingAcks += n
			m.remoteWriteDone(p, b, upgrade, tx)
		})
		m.at(h, now+m.net.Latency(h.id, rc), func() {
			h.gate.Unlock(b)
		})
	} else {
		p.pendingAcks += n
		if m.chk != nil {
			m.chk.AckExpect(p.id, n)
		}
		m.sendTx(protocol.OwnershipReply, h.id, rc, tx, func() {
			m.remoteWriteDone(p, b, upgrade, tx)
			h.gate.Unlock(b)
			m.checkBlock(b)
		})
	}
	m.sendInvals(h, b, targets, p, tx)
}

// clusterHoldsDirty reports whether any cache in c currently holds b
// dirty. The home uses it to tell a genuine eviction race (owner's copy
// gone, writeback in flight) from a stale request that message delay or
// retransmission let the cluster's own later ownership acquisition
// overtake — the case a real protocol rejects with a NAK. Impossible
// without fault injection: the fault-free mesh never reorders requests
// on a pair, so the fault-free answer is constant false — which also
// keeps the sharded core from peeking at another shard's caches.
func (m *Machine) clusterHoldsDirty(c *clusterNode, b int64) bool {
	if !m.faultsOn {
		return false
	}
	for _, q := range c.procs {
		if q.h.State(b) == cache.Dirty {
			return true
		}
	}
	return false
}

// fillExclusive installs an exclusive copy after an ownership reply.
func (m *Machine) fillExclusive(p *proc, b int64, upgrade bool) {
	if upgrade && p.h.State(b) != cache.Invalid {
		p.h.Upgrade(b, m.now(p.cl))
		return
	}
	m.fill(p, b, cache.Dirty)
}

// remoteWriteDone completes p's outstanding write and retries any local
// accesses that were parked behind it (they now hit the fresh dirty copy
// over the bus).
func (m *Machine) remoteWriteDone(p *proc, b int64, upgrade bool, tx *txState) {
	m.txPhase(p.cl, tx, obs.PhReplyTravel)
	m.txEnd(p.cl, tx)
	m.debugf(b, "remoteWriteDone p%d/c%d waiters=%d", p.id, p.cl.id, len(p.cl.writeWaiters[b]))
	m.fillExclusive(p, b, upgrade)
	c := p.cl
	m.complete(p, m.now(c)+m.t.Fill)
	delete(c.pendingWrite, b)
	waiters := c.writeWaiters[b]
	delete(c.writeWaiters, b)
	for _, w := range waiters {
		w := w
		m.after(c, m.t.Fill, func() { m.accessBlock(w.p, w.write, b) })
	}
}

// handleNBEvictions invalidates sharers dropped by a Dir_iNB pointer
// overflow. These are the paper's read-caused invalidation events (Fig 4).
func (m *Machine) handleNBEvictions(h *clusterNode, b int64, ev []core.NodeID, tx *txState) {
	if len(ev) == 0 {
		return
	}
	h.res.invalHist.Add(len(ev))
	h.res.invalFan.Observe(uint64(len(ev)))
	m.trace(obs.EvInvalFanout, h.id, b, int64(len(ev)))
	sent := 0
	for _, v := range ev {
		if v != h.id {
			sent++
		}
	}
	m.txFanout(h, tx, sent, false)
	if m.chk != nil {
		m.chk.InvalSent(b, sent)
	}
	m.occupyDir(h, m.t.InvalSend*sim.Time(len(ev)))
	for _, v := range ev {
		if v == h.id {
			continue
		}
		vc := m.clusters[v]
		v := v
		m.sendTx(protocol.Inval, h.id, v, tx, func() {
			done := m.busOp(vc, m.t.InvalBus)
			m.at(vc, done, func() {
				m.applyInval(vc, b, false)
				m.invalApplied(b)
				m.sendTx(protocol.AckMsg, v, h.id, tx, func() { m.txAck(h, tx) })
			})
		})
	}
}

// drainDirVictims collects wide-entry victims an Overflow directory
// produced during entry migrations and runs the replacement-invalidation
// flow for each.
func (m *Machine) drainDirVictims(h *clusterNode) {
	src, ok := h.dir.(interface{ TakeVictims() []*sparse.Victim })
	if !ok {
		return
	}
	for _, v := range src.TakeVictims() {
		m.replaceEntry(h, v)
	}
}

// replaceEntry handles a sparse-directory replacement: the victim block's
// cached copies are invalidated, tracked by the home's RAC; requests for
// the victim block are gated until all acknowledgements arrive (§7).
func (m *Machine) replaceEntry(h *clusterNode, victim *sparse.Victim) {
	// The directory stores home-local keys; recover the global block.
	vb, ve := m.keyBlock(victim.Block, h.id), victim.Entry
	m.recallPending(vb, +1)
	act := func() { m.sendReplacementInvals(h, vb, ve) }
	if h.gate.Busy(vb) {
		// The victim block has a transaction in flight; its state keeps
		// evolving in ve, so run the replacement when the gate clears.
		h.gate.Wait(vb, act)
		return
	}
	act()
}

func (m *Machine) sendReplacementInvals(h *clusterNode, vb int64, ve core.Entry) {
	m.debugf(vb, "recall start h=c%d empty=%v dirty=%v", h.id, ve.Empty(), ve.Dirty())
	if ve.Empty() {
		m.recallPending(vb, -1)
		return
	}
	if ve.Dirty() {
		owner := ve.Owner()
		h.res.replHist.Add(1)
		h.res.replFan.Observe(1)
		m.trace(obs.EvDirEvict, h.id, vb, 1)
		tx := m.txStart(obs.TxEvict, h, vb)
		m.txFanout(h, tx, 1, true)
		m.occupyDir(h, m.t.InvalSend)
		h.gate.Lock(vb)
		h.rac.Start(vb, 1)
		oc := m.clusters[owner]
		m.sendTx(protocol.Flush, h.id, owner, tx, func() {
			done := m.busOp(oc, m.t.InvalBus)
			m.at(oc, done, func() {
				m.applyInval(oc, vb, true)
				m.sendTx(protocol.AckMsg, owner, h.id, tx, func() {
					m.racAck(h, vb)
					m.txAck(h, tx)
				})
			})
		})
		return
	}
	targets := ve.Sharers()
	targets.Remove(h.id)
	n := targets.Count()
	if n == 0 {
		m.recallPending(vb, -1)
		return
	}
	h.res.replHist.Add(n)
	h.res.replFan.Observe(uint64(n))
	m.trace(obs.EvDirEvict, h.id, vb, int64(n))
	tx := m.txStart(obs.TxEvict, h, vb)
	m.txFanout(h, tx, n, true)
	m.occupyDir(h, m.t.InvalSend*sim.Time(n))
	h.gate.Lock(vb)
	h.rac.Start(vb, n)
	targets.ForEach(func(t int) {
		tc := m.clusters[t]
		m.sendTx(protocol.Inval, h.id, t, tx, func() {
			done := m.busOp(tc, m.t.InvalBus)
			m.at(tc, done, func() {
				m.applyInval(tc, vb, true)
				m.sendTx(protocol.AckMsg, t, h.id, tx, func() {
					m.racAck(h, vb)
					m.txAck(h, tx)
				})
			})
		})
	})
}

func (m *Machine) racAck(h *clusterNode, vb int64) {
	if h.rac.Ack(vb) {
		m.debugf(vb, "recall complete h=c%d", h.id)
		m.recallPending(vb, -1)
		m.checkRecallClean(h, vb)
		h.gate.Unlock(vb)
		m.checkBlock(vb)
	}
}

// recallPending adjusts the per-block count of replacement recalls queued
// or in flight. Checker bookkeeping only: it feeds checkRecallClean's
// exemption for blocks that owe a second recall (see recallsPending).
func (m *Machine) recallPending(vb int64, d int) {
	if m.chk == nil {
		return
	}
	m.recallsPending[vb] += d
	if m.recallsPending[vb] <= 0 {
		delete(m.recallsPending, vb)
	}
}
