package machine

import (
	"sort"
	"testing"

	"dircoh/internal/apps"
	"dircoh/internal/obs"
	"dircoh/internal/tango"
)

// runSpans runs w on cfg with span recording into a memory sink and
// returns the machine, result and collected spans.
func runSpans(t *testing.T, cfg Config, w *tango.Workload) (*Machine, *Result, []obs.Span) {
	t.Helper()
	sink := &obs.MemSpanSink{}
	cfg.Spans = obs.NewSpanRecorder(sink, 64)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushSpans(); err != nil {
		t.Fatal(err)
	}
	return m, r, sink.Spans
}

// verifySpanTree checks the structural invariants tracelens relies on:
// every span parents to a root, roots have ID == Tx and Phase total, and
// each root's synchronous children tile [Start, End] exactly. It returns
// the per-class root counts.
func verifySpanTree(t *testing.T, spans []obs.Span) [obs.NumTxClasses]int {
	t.Helper()
	roots := make(map[uint64]obs.Span)
	children := make(map[uint64][]obs.Span)
	for _, s := range spans {
		if s.Parent == 0 {
			if s.ID != s.Tx || s.Phase != obs.PhTotal {
				t.Fatalf("malformed root span %+v", s)
			}
			if _, dup := roots[s.ID]; dup {
				t.Fatalf("duplicate root %d", s.ID)
			}
			roots[s.ID] = s
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	var counts [obs.NumTxClasses]int
	for id, root := range roots {
		counts[root.Class]++
		sync := []obs.Span{}
		for _, c := range children[id] {
			if c.Tx != root.Tx || c.Class != root.Class {
				t.Fatalf("child %+v disagrees with root %+v", c, root)
			}
			if c.Phase.Async(root.Class) {
				if c.Start < root.Start {
					t.Fatalf("async child %+v starts before root %+v", c, root)
				}
				continue
			}
			sync = append(sync, c)
		}
		sort.Slice(sync, func(i, j int) bool { return sync[i].Start < sync[j].Start })
		at := root.Start
		for _, c := range sync {
			if c.Start != at {
				t.Fatalf("tx %d: phase %s starts at %d, want %d (root %+v)",
					id, c.Phase, c.Start, at, root)
			}
			at = c.End
		}
		if at != root.End {
			t.Fatalf("tx %d: synchronous phases end at %d, root ends at %d", id, at, root.End)
		}
	}
	for parent := range children {
		if _, ok := roots[parent]; !ok {
			t.Fatalf("orphan spans: parent %d has no root", parent)
		}
	}
	return counts
}

// TestSpanTreeLU runs the golden LU workload with spans enabled and checks
// the emitted tree is complete: no orphans, and the synchronous phase
// spans of every transaction partition its root exactly.
func TestSpanTreeLU(t *testing.T) {
	w := apps.LU(apps.LUConfig{Procs: 4, N: 16})
	m, _, spans := runSpans(t, testConfig(4, CoarseVec2), w)
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	counts := verifySpanTree(t, spans)
	if counts[obs.TxRead] == 0 || counts[obs.TxWrite]+counts[obs.TxUpgrade] == 0 {
		t.Fatalf("expected read and write/upgrade transactions, got %v", counts)
	}
	// The per-class latency histograms must count exactly the roots.
	snap := m.MetricsSnapshot()
	for c := 0; c < obs.NumTxClasses; c++ {
		h, ok := snap.Hists["tx.lat."+obs.TxClass(c).String()]
		if !ok {
			t.Fatalf("missing tx.lat.%s histogram", obs.TxClass(c))
		}
		if int(h.N) != counts[c] {
			t.Fatalf("tx.lat.%s count %d, want %d roots", obs.TxClass(c), h.N, counts[c])
		}
	}
}

// TestSpanLockRounds drives a contended remote lock and checks lock-round
// transactions are opened and closed (grant or wake, never leaked).
func TestSpanLockRounds(t *testing.T) {
	var p0, p1 tango.Builder
	lock := addr(0) // homed at cluster 0
	for i := 0; i < 4; i++ {
		p1.Lock(lock)
		p1.Write(addr(100))
		p1.Unlock(lock)
	}
	p0.Lock(lock)
	p0.Write(addr(100))
	p0.Unlock(lock)
	m, _, spans := runSpans(t, testConfig(2, FullVec), wl(p0.Refs(), p1.Refs()))
	counts := verifySpanTree(t, spans)
	if counts[obs.TxLock] == 0 {
		t.Fatalf("expected lock transactions, got %v", counts)
	}
	leaked := 0
	for _, p := range m.procs {
		if p.lockTx != nil {
			leaked++
		}
	}
	if leaked != 0 {
		t.Fatalf("%d lock transactions leaked past the run", leaked)
	}
}

// TestSpanEvictRecall forces sparse-directory replacements and checks the
// recall transactions: class evict, nonzero fan-out, and the ack.gather
// child tiling the root (for evictions it IS the critical path).
func TestSpanEvictRecall(t *testing.T) {
	cfg := testConfig(4, FullVec)
	cfg.Sparse = SparseConfig{Entries: 4, Assoc: 1}
	streams := make([][]tango.Ref, 4)
	for p := range streams {
		var b tango.Builder
		for blk := int64(0); blk < 32; blk++ {
			b.Read(addr(blk))
		}
		streams[p] = b.Refs()
	}
	_, r, spans := runSpans(t, cfg, wl(streams...))
	if r.Replacements == 0 {
		t.Fatal("workload produced no sparse replacements")
	}
	counts := verifySpanTree(t, spans)
	if counts[obs.TxEvict] == 0 {
		t.Fatalf("expected evict transactions, got %v", counts)
	}
	for _, s := range spans {
		if s.Parent == 0 && s.Class == obs.TxEvict && s.N == 0 {
			t.Fatalf("evict root with zero fan-out: %+v", s)
		}
	}
}

// TestSpansDoNotPerturbSimulation compares a run with spans and queue
// sampling enabled against a bare run: simulation results must be
// identical, cycle for cycle and message for message.
func TestSpansDoNotPerturbSimulation(t *testing.T) {
	w := apps.LU(apps.LUConfig{Procs: 4, N: 16})
	_, bare := mustRun(t, testConfig(4, CoarseVec2), w)
	cfg := testConfig(4, CoarseVec2)
	cfg.SampleEvery = 64
	_, instrumented, _ := runSpans(t, cfg, w)
	if bare.ExecTime != instrumented.ExecTime {
		t.Fatalf("ExecTime changed: bare %d, instrumented %d", bare.ExecTime, instrumented.ExecTime)
	}
	if bare.Msgs != instrumented.Msgs {
		t.Fatalf("message counts changed: bare %+v, instrumented %+v", bare.Msgs, instrumented.Msgs)
	}
}

// TestQueueSampler checks SampleEvery fills the depth histograms.
func TestQueueSampler(t *testing.T) {
	w := apps.LU(apps.LUConfig{Procs: 4, N: 16})
	cfg := testConfig(4, CoarseVec2)
	cfg.SampleEvery = 32
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w); err != nil {
		t.Fatal(err)
	}
	snap := m.MetricsSnapshot()
	for _, name := range []string{"dir.queue.depth", "dir.entries.live", "mesh.port.backlog"} {
		h, ok := snap.Hists[name]
		if !ok || h.N == 0 {
			t.Fatalf("sampler histogram %s empty (present=%v)", name, ok)
		}
	}
	// Sampler histograms must not exist when sampling is off, so default
	// metrics output is unchanged.
	m2, _ := mustRun(t, testConfig(4, CoarseVec2), w)
	if _, ok := m2.MetricsSnapshot().Hists["dir.queue.depth"]; ok {
		t.Fatal("dir.queue.depth registered with sampling disabled")
	}
}
