package machine

// The sharded event-wheel core: a conservative-lookahead parallel discrete
// event simulator for the fault-free machine.
//
// Clusters are partitioned round-robin across N worker shards, each owning
// a timing wheel (sim.Wheel). All shards advance in lockstep windows
// [W, W+look), where look is the minimum cross-cluster mesh latency: an
// event at time t can only affect another cluster at t+latency >= t+look,
// so everything inside the current window is causally independent across
// shards and can run in parallel. Cross-shard messages are buffered in
// per-(src,dst) outboxes during a window and exchanged at the barrier; the
// receiver inserts them keyed by (arrival time, origin cluster, origin
// sequence), and since the wheel fires equal-time events in ascending key
// order, the total event order — and therefore every simulation result —
// is byte-identical at every shard count.
//
// Observability shards with the simulation: every cluster records metrics
// into its private registry (merged at quiescence), and trace events and
// spans are buffered per shard with (time, key) stamps and replayed in the
// canonical global order — see shardobs.go — so metrics, traces, spans,
// and queue-depth samples are byte-identical at every shard width.
//
// Configurations the core cannot honor (anything that shares mutable state
// across clusters outside this protocol: fault injection, the invariant
// checker, mesh port contention, deliberate protocol faults, or a latency
// model where a reply can tie with the acknowledgements it logically
// precedes) fall back to the serial heap engine; Machine.FallbackReason
// says why.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
	"dircoh/internal/sim"
	"dircoh/internal/stats"
)

// never is the "no pending event" sentinel for window arithmetic.
const never = ^sim.Time(0)

// shardBlockReason reports why cfg cannot run on the sharded core, or ""
// when it can. Called after New has applied timing/mesh defaults. Each
// message names the offending flag and the workaround. Observability
// (tracing, spans, sampling, external metrics) never blocks sharding: the
// per-shard buffers and registry merge reproduce the serial byte stream.
func shardBlockReason(cfg *Config) string {
	switch {
	case cfg.Mesh.Faults.Enabled():
		return "fault injection enabled (-faults): delivery recovery tracks in-flight messages machine-wide; drop -faults or run serial with -shards 0"
	case cfg.Check:
		return "invariant checker enabled (-check): the checker oracle reads machine-wide state at every transition; drop -check or run serial with -shards 0"
	case cfg.Mesh.PortTime > 0:
		return "mesh port contention modeled (mesh PortTime > 0): ejection ports serialize arrivals across shards; set PortTime to 0 or run serial with -shards 0"
	case cfg.Fault != FaultNone:
		return "deliberate protocol fault injected (-fault): fault mutations perturb cross-cluster state; drop -fault or run serial with -shards 0"
	case cfg.Timing.InvalBus == 0 && cfg.Mesh.Base == 0:
		// With both zero an ownership reply can tie with an invalidation
		// acknowledgement, and the reply-carried ack count would go
		// negative if the ack fires first.
		return "degenerate timing (InvalBus and Mesh.Base both zero) lets a reply tie with the acks it must precede; use nonzero timing or run serial with -shards 0"
	}
	return ""
}

// newClusterRes builds one cluster's private facility bundle for a sharded
// run: its own registry, mesh accounting instance, scheme instance (some
// schemes carry per-instance RNG state), lock and barrier tables, and
// figure histograms. Names match the shared serial registry exactly so the
// per-cluster snapshots merge back into the same metric namespace.
func newClusterRes(cfg *Config, clusters int) *clusterRes {
	reg := obs.NewRegistry()
	mc := cfg.Mesh
	mc.Metrics = reg
	scheme, err := cfg.Scheme(clusters)
	if err != nil {
		// Config.Validate already ran the factory once; factories are
		// deterministic, so failing here is a program bug, not input.
		panic(err)
	}
	res := &clusterRes{
		reg:         reg,
		net:         mesh.New(mc),
		scheme:      scheme,
		lockRetries: reg.Counter("lock.retries"),
		mergedReads: reg.Counter("rac.merged.reads"),
		extraInval:  reg.Counter("dir.inval.extraneous"),
		invalFan:    reg.Histogram("dir.inval.fanout", nil),
		replFan:     reg.Histogram("dir.repl.fanout", nil),
		invalHist:   &stats.Histogram{},
		replHist:    &stats.Histogram{},
		readLat:     &stats.LatHist{},
		writeLat:    &stats.LatHist{},
	}
	res.locks = protocol.NewLockTable(res.scheme)
	res.barriers = protocol.NewBarrierTable(cfg.Procs)
	for k := range res.kindCtr {
		res.kindCtr[k] = reg.Counter(protocol.MsgKind(k).MetricName())
	}
	res.initObsHists(cfg)
	return res
}

// initObsHists registers the transaction-latency and queue-depth
// histograms in the bundle's registry when the corresponding feature is
// on. The conditionals keep the metric namespace identical across cores
// and widths: a disabled feature must contribute no zero-valued series to
// the merged snapshot.
func (r *clusterRes) initObsHists(cfg *Config) {
	if cfg.Spans != nil {
		for c := range r.txLat {
			r.txLat[c] = r.reg.Histogram("tx.lat."+obs.TxClass(c).String(), obs.LatBuckets)
		}
	}
	if cfg.SampleEvery > 0 {
		r.dirDepth = r.reg.Histogram("dir.queue.depth", obs.QueueBuckets)
		r.dirLive = r.reg.Histogram("dir.entries.live", obs.QueueBuckets)
		r.portDepth = r.reg.Histogram("mesh.port.backlog", obs.QueueBuckets)
	}
}

// relayEv is one cross-shard event in transit through an outbox.
type relayEv struct {
	at  sim.Time
	key uint64
	fn  sim.Event
}

// shardedCore drives the parallel run.
type shardedCore struct {
	m      *Machine
	n      int
	look   sim.Time
	wheels []*sim.Wheel

	// out[src][dst] buffers events shard src scheduled into shard dst's
	// clusters during the current window; dst drains its column at the
	// barrier. Only src appends, only dst drains, and the two phases are
	// barrier-separated.
	out [][][]relayEv

	// nextT[s] is shard s's earliest pending event after the exchange;
	// every worker computes the identical next window from it.
	nextT []sim.Time

	// obsBuf[s] is shard s's private trace-event and span buffer cell,
	// stamped with firing positions and merged into the canonical order at
	// quiescence (shardobs.go). Only shard s appends; the merge runs after
	// the workers join. Cells are cache-line padded: appends rewrite the
	// slice headers constantly, and adjacent headers would false-share.
	obsBuf []shardObsCell

	barrier  spinBarrier
	deadline time.Duration
	start    time.Time
	wallHit  bool // worker 0 samples the wall clock; read after the barrier
	budget   sim.Time
	lastPub  time.Time // worker 0's live-publish throttle (Config.Live)

	// Initial watchdog verdict, computed before the workers start (every
	// worker seeds its local copy from these, then rescans between the
	// barriers where no shard is mutating processor state).
	wdLimit sim.Time
	wdStuck int
}

func newShardedCore(m *Machine, n int) *shardedCore {
	clusters := len(m.clusters)
	look := never
	for a := 0; a < clusters; a++ {
		for b := 0; b < clusters; b++ {
			if a != b {
				if l := m.net.Latency(a, b); l < look {
					look = l
				}
			}
		}
	}
	if clusters == 1 {
		look = 1 // no cross-cluster traffic exists; any positive window works
	}
	if look == 0 || look == never {
		panic("machine: sharded core needs a positive minimum mesh latency")
	}
	s := &shardedCore{
		m:        m,
		n:        n,
		look:     look,
		wheels:   make([]*sim.Wheel, n),
		out:      make([][][]relayEv, n),
		nextT:    make([]sim.Time, n),
		obsBuf:   make([]shardObsCell, n),
		deadline: m.cfg.Deadline,
		budget:   m.cfg.StuckBudget,
	}
	for i := range s.wheels {
		s.wheels[i] = sim.NewWheel(0)
		s.out[i] = make([][]relayEv, n)
	}
	s.barrier.parties = int32(n)
	return s
}

// relay schedules fn at absolute time t in cluster to's context from
// cluster from's context, with from's next deterministic ordering key.
// Same-shard targets insert directly; cross-shard targets go through the
// outbox and must lie beyond the conservative lookahead.
func (s *shardedCore) relay(from, to *clusterNode, t sim.Time, fn sim.Event) {
	key := from.nextKey()
	if to.shard == from.shard {
		s.wheels[from.shard].AtKey(t, key, fn)
		return
	}
	if t < s.wheels[from.shard].Now()+s.look {
		panic(fmt.Sprintf("machine: cross-shard event at t=%d inside the lookahead window (now=%d, look=%d)",
			t, s.wheels[from.shard].Now(), s.look))
	}
	s.out[from.shard][to.shard] = append(s.out[from.shard][to.shard], relayEv{at: t, key: key, fn: fn})
}

// run executes the window loop to completion (or abort) and reports the
// abort error, if any.
func (s *shardedCore) run() error {
	for i, w := range s.wheels {
		if t, ok := w.NextTime(); ok {
			s.nextT[i] = t
		} else {
			s.nextT[i] = never
		}
	}
	if s.deadline > 0 {
		s.start = time.Now()
	}
	if s.m.cfg.Live != nil {
		s.lastPub = time.Now()
	}
	s.wdLimit, s.wdStuck = s.watchdogScan()
	if s.n == 1 {
		s.worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(s.n)
		for i := 0; i < s.n; i++ {
			go func(id int) {
				defer wg.Done()
				s.worker(id)
			}(i)
		}
		wg.Wait()
	}
	if s.m.aborted != nil {
		return s.m.aborted
	}
	return nil
}

// worker is one shard's loop. Each iteration: every worker independently
// computes the identical next window from the shared nextT array (and the
// identical watchdog verdict, so all workers stop together without any
// shared decision variable), runs its wheel through the window, then
// exchanges outboxes and republishes its next event time between two
// barriers.
//
// Memory discipline: processor and cluster state is only written while a
// shard runs its wheel (between the loop top and the first barrier), and
// only read machine-wide between the two barriers or at the loop top
// using values captured there. The watchdog verdict therefore cannot be
// computed at the loop top (another shard may already be firing events);
// each worker rescans between the barriers and carries the verdict into
// the next iteration in locals.
func (s *shardedCore) worker(id int) {
	m := s.m
	limit, stuck := s.wdLimit, s.wdStuck
	for {
		window := never
		for _, t := range s.nextT {
			if t < window {
				window = t
			}
		}
		if window == never {
			return
		}
		if s.wallHit {
			if id == 0 {
				m.abort(fmt.Sprintf("wall-clock deadline %s exceeded at t=%d", s.deadline, window))
			}
			return
		}
		if s.budget > 0 && window > limit {
			// Deterministic liveness watchdog: the next window starting
			// more than a budget past a processor's last progress is the
			// sharded equivalent of the serial watchdog's periodic scan
			// firing during the idle gap.
			if id == 0 {
				m.abort(fmt.Sprintf("liveness watchdog: proc %d made no progress for over %d cycles (budget exceeded at t=%d)",
					stuck, s.budget, window))
			}
			return
		}
		s.wheels[id].RunUntil(window + s.look - 1)
		s.barrier.wait()
		w := s.wheels[id]
		for src := range s.out {
			box := s.out[src][id]
			if len(box) == 0 {
				continue
			}
			for _, r := range box {
				w.AtKey(r.at, r.key, r.fn)
			}
			s.out[src][id] = box[:0]
		}
		if t, ok := w.NextTime(); ok {
			s.nextT[id] = t
		} else {
			s.nextT[id] = never
		}
		if s.budget > 0 {
			limit, stuck = s.watchdogScan()
		}
		if id == 0 && s.deadline > 0 && time.Since(s.start) > s.deadline {
			s.wallHit = true
		}
		if id == 0 && m.cfg.Live != nil && time.Since(s.lastPub) >= livePublishEvery {
			// Between the barriers every shard is quiescent, so worker 0
			// can read all per-cluster registries for a consistent live
			// snapshot.
			m.publishLive(false)
			s.lastPub = time.Now()
		}
		s.barrier.wait()
	}
}

// watchdogScan computes the watchdog verdict over every processor: the
// earliest time an unfinished processor runs out of its no-progress
// budget, and which processor that is. A window opening strictly past the
// limit aborts the run. Only called where no shard is mutating processor
// state (before the workers start, or between the exchange barriers).
func (s *shardedCore) watchdogScan() (limit sim.Time, stuck int) {
	limit, stuck = never, -1
	for _, p := range s.m.procs {
		if p.done {
			continue
		}
		if l := p.lastProgress + s.budget; l < limit {
			limit = l
			stuck = p.id
		}
	}
	return limit, stuck
}

// runCore drives the machine's event processing to completion on whichever
// core the configuration selected.
func (m *Machine) runCore() error {
	if m.shard != nil {
		if err := m.shard.run(); err != nil {
			return err
		}
		m.finalizeSharded()
		return nil
	}
	return m.runEngine()
}

// finalizeSharded folds the per-cluster registries and histograms into the
// machine-level views Result and MetricsSnapshot read, and replays the
// per-shard trace/span buffers in canonical order. The registries merge
// into m.reg itself — which is Config.Metrics when the caller supplied an
// external registry, so external registries see sharded runs exactly as
// they see serial ones. Counter sums and bucket-wise histogram merges are
// order-independent, so the result is deterministic.
func (m *Machine) finalizeSharded() {
	m.flushShardObs()
	for _, c := range m.clusters {
		m.reg.Merge(c.res.reg)
		m.invalHist.Merge(c.res.invalHist)
		m.replHist.Merge(c.res.replHist)
		m.readLat.Merge(c.res.readLat)
		m.writeLat.Merge(c.res.writeLat)
	}
	merged := m.reg.Snapshot()
	m.merged = &merged
}

// simNow returns the machine's current (or final) simulation time across
// cores: the serial engine's clock, or the furthest shard wheel.
func (m *Machine) simNow() sim.Time {
	if s := m.shard; s != nil {
		var t sim.Time
		for _, w := range s.wheels {
			if w.Now() > t {
				t = w.Now()
			}
		}
		return t
	}
	return m.eng.Now()
}

// simFired returns total events executed across cores.
func (m *Machine) simFired() uint64 {
	if s := m.shard; s != nil {
		var n uint64
		for _, w := range s.wheels {
			n += w.Fired()
		}
		return n
	}
	return m.eng.Fired()
}

// simPending returns total scheduled-but-unfired events across cores
// (outbox events in transit included).
func (m *Machine) simPending() int {
	if s := m.shard; s != nil {
		n := 0
		for _, w := range s.wheels {
			n += w.Pending()
		}
		for _, row := range s.out {
			for _, box := range row {
				n += len(box)
			}
		}
		return n
	}
	return m.eng.Pending()
}

// spinBarrier is a sense-reversing spin barrier. Windows are short (often
// a handful of events), so parking on a sync primitive per phase would
// dominate the run; spinning with periodic yields keeps the barrier in the
// tens-of-nanoseconds range. All operations go through sync/atomic, so the
// race detector understands the ordering.
type spinBarrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

func (b *spinBarrier) wait() {
	if b.parties == 1 {
		return
	}
	s := b.sense.Load()
	if b.count.Add(1) == b.parties {
		b.count.Store(0)
		b.sense.Store(s + 1)
		return
	}
	for spins := 0; b.sense.Load() == s; spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}
