package machine

// Shard-safe observability for the sharded event-wheel core.
//
// The serial engine emits traces and spans in the order its heap fires
// events. The sharded core cannot: shards interleave nondeterministically
// in wall-clock time. Instead, each shard appends its records to a private
// buffer, stamping every record with the firing event's (wheel time,
// ordering key) position. Keys are globally unique (cluster id in the high
// bits, a per-cluster sequence below), and cross-cluster messages always
// travel at least the conservative lookahead, so the (time, key) order of
// fired events is identical at every shard count — it IS the width-1
// firing order. At quiescence a k-way merge over the per-shard buffers,
// popping the smallest (time, key) head, therefore replays the records in
// exactly the order a width-1 run emitted them, making trace and span
// output byte-identical across widths.
//
// Records a single callback emits share one stamp; they stay adjacent in
// one buffer and the merge preserves their relative order (ties across
// buffers cannot happen because keys are globally unique).
//
// Note the serial heap engine (-shards 0) resolves equal-time ties by
// insertion order, not by key, so its event interleaving — and hence its
// observability byte stream — legitimately differs from the sharded
// widths. Width 1 is the canonical sharded order; see DESIGN.md.

import (
	"sync"
	"time"

	"dircoh/internal/obs"
	"dircoh/internal/sim"
)

// keyedEvent is one trace event stamped with its firing position (the
// event's own T field carries the emission time).
type keyedEvent struct {
	key uint64
	ev  obs.Event
}

// keyedSpan is one span stamped with its firing position. Spans need an
// explicit time stamp: a span's End field is its semantic endpoint, which
// for ack-gather children can differ from the cycle it was emitted at.
type keyedSpan struct {
	t   sim.Time
	key uint64
	sp  obs.Span
}

// obsChunkLen is the per-shard record chunk size. Chunks are sealed and a
// fresh one allocated when full, so a record is written exactly once and
// never moved: growing one flat slice instead would memmove the whole
// buffer on every geometric regrowth, which profiles as the single
// largest cost of sharded observability.
const obsChunkLen = 1 << 15

// Chunk pools recycle record chunks across runs: a retained buffer is hot
// for exactly one run, and allocating fresh chunks every run pays the
// allocator's zeroing for tens of megabytes each time.
var (
	evChunkPool = sync.Pool{New: func() any { return make([]keyedEvent, 0, obsChunkLen) }}
	spChunkPool = sync.Pool{New: func() any { return make([]keyedSpan, 0, obsChunkLen) }}
)

// shardObsCell is one shard's record buffers, padded to its own cache
// lines: the hot path rewrites the active-chunk headers on every append,
// and without padding four shards' headers would share a line and thrash
// it. ev/sp are the active chunks; evFull/spFull the sealed ones, in
// append order.
type shardObsCell struct {
	ev     []keyedEvent
	sp     []keyedSpan
	evFull [][]keyedEvent
	spFull [][]keyedSpan
	_      [128 - 96]byte
}

// pushEv appends one trace record; the in-chunk path is small enough to
// inline into the trace hot path, the chunk-seal path is split out.
func (c *shardObsCell) pushEv(e keyedEvent) {
	if len(c.ev) < cap(c.ev) {
		c.ev = append(c.ev, e)
		return
	}
	c.growEv(e)
}

func (c *shardObsCell) growEv(e keyedEvent) {
	if c.ev != nil {
		c.evFull = append(c.evFull, c.ev)
	}
	c.ev = append(evChunkPool.Get().([]keyedEvent)[:0], e)
}

// pushSp appends one span record; same split as pushEv.
func (c *shardObsCell) pushSp(e keyedSpan) {
	if len(c.sp) < cap(c.sp) {
		c.sp = append(c.sp, e)
		return
	}
	c.growSp(e)
}

func (c *shardObsCell) growSp(e keyedSpan) {
	if c.sp != nil {
		c.spFull = append(c.spFull, c.sp)
	}
	c.sp = append(spChunkPool.Get().([]keyedSpan)[:0], e)
}

// evCursor walks one shard's sealed+active event chunks in append order.
type evCursor struct {
	chunks [][]keyedEvent
	i      int
}

func (c *evCursor) head() *keyedEvent {
	for len(c.chunks) > 0 && c.i >= len(c.chunks[0]) {
		c.chunks = c.chunks[1:]
		c.i = 0
	}
	if len(c.chunks) == 0 {
		return nil
	}
	return &c.chunks[0][c.i]
}

// spCursor is evCursor for span chunks.
type spCursor struct {
	chunks [][]keyedSpan
	i      int
}

func (c *spCursor) head() *keyedSpan {
	for len(c.chunks) > 0 && c.i >= len(c.chunks[0]) {
		c.chunks = c.chunks[1:]
		c.i = 0
	}
	if len(c.chunks) == 0 {
		return nil
	}
	return &c.chunks[0][c.i]
}

// flushShardObs replays the per-shard trace and span buffers into the
// machine's recorders in canonical (time, key) order. Called once at
// sharded quiescence, before the registries merge.
func (m *Machine) flushShardObs() {
	s := m.shard
	var wg sync.WaitGroup
	if m.tr != nil && m.spans != nil {
		// The two merges touch disjoint recorders; overlap them.
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.mergeShardSpans()
		}()
	} else if m.spans != nil {
		m.mergeShardSpans()
	}
	if m.tr != nil {
		cur := make([]evCursor, s.n)
		heads := make([]*keyedEvent, s.n)
		live := 0
		for sh := range cur {
			cell := &s.obsBuf[sh]
			cur[sh].chunks = append(cell.evFull, cell.ev)
			if heads[sh] = cur[sh].head(); heads[sh] != nil {
				live++
			}
		}
		for live > 1 {
			best, bh := -1, (*keyedEvent)(nil)
			for sh, h := range heads {
				if h == nil {
					continue
				}
				if best < 0 || h.ev.T < bh.ev.T || (h.ev.T == bh.ev.T && h.key < bh.key) {
					best, bh = sh, h
				}
			}
			m.tr.Emit(bh.ev)
			cur[best].i++
			if heads[best] = cur[best].head(); heads[best] == nil {
				live--
			}
		}
		// One buffer left: drain its chunks without per-record compares.
		for sh, h := range heads {
			if h == nil {
				continue
			}
			for h != nil {
				m.tr.Emit(h.ev)
				cur[sh].i++
				h = cur[sh].head()
			}
		}
	}
	wg.Wait()
	for i := range s.obsBuf {
		cell := &s.obsBuf[i]
		for _, ch := range cell.evFull {
			evChunkPool.Put(ch[:0])
		}
		if cell.ev != nil {
			evChunkPool.Put(cell.ev[:0])
		}
		for _, ch := range cell.spFull {
			spChunkPool.Put(ch[:0])
		}
		if cell.sp != nil {
			spChunkPool.Put(cell.sp[:0])
		}
		*cell = shardObsCell{}
	}
}

// mergeShardSpans is flushShardObs's span half: the k-way (time, key)
// merge of the per-shard span buffers into the machine recorder.
func (m *Machine) mergeShardSpans() {
	s := m.shard
	cur := make([]spCursor, s.n)
	heads := make([]*keyedSpan, s.n)
	live := 0
	for sh := range cur {
		cell := &s.obsBuf[sh]
		cur[sh].chunks = append(cell.spFull, cell.sp)
		if heads[sh] = cur[sh].head(); heads[sh] != nil {
			live++
		}
	}
	for live > 1 {
		best, bh := -1, (*keyedSpan)(nil)
		for sh, h := range heads {
			if h == nil {
				continue
			}
			if best < 0 || h.t < bh.t || (h.t == bh.t && h.key < bh.key) {
				best, bh = sh, h
			}
		}
		m.spans.Emit(bh.sp)
		cur[best].i++
		if heads[best] = cur[best].head(); heads[best] == nil {
			live--
		}
	}
	for sh, h := range heads {
		if h == nil {
			continue
		}
		for h != nil {
			m.spans.Emit(h.sp)
			cur[sh].i++
			h = cur[sh].head()
		}
	}
}

// sampleCluster is the sharded core's per-cluster queue-depth sampler: the
// counterpart of the serial sampleQueues, split so each cluster's chain
// reads only that cluster's state and records into that cluster's private
// histograms (merged at quiescence). The chain is scheduled on the
// reserved ordering key cluster<<40|0 — below every real event key, never
// consumed by nextKey — so enabling sampling shifts no protocol event's
// position and results stay byte-identical across widths.
//
// The chain continues while any of the cluster's own processors is
// unfinished (a width-independent condition; the wheel's Pending count is
// not). A genuinely deadlocked run with no watchdog budget would sample
// forever — but genuine deadlocks require fault injection, which forces
// the serial engine, and the sharded tests always set a budget.
func (m *Machine) sampleCluster(c *clusterNode) {
	w := m.shard.wheels[c.shard]
	now := w.Now()
	var backlog sim.Time
	if c.dirFree > now {
		backlog = c.dirFree - now
	}
	c.res.dirDepth.Observe(uint64(backlog))
	c.res.dirLive.Observe(uint64(c.dir.LiveEntries()))
	c.res.portDepth.Observe(uint64(c.res.net.PortBacklog(c.id, now)))
	for _, p := range c.procs {
		if !p.done {
			w.AtKey(now+m.cfg.SampleEvery, uint64(c.id)<<40, func() { m.sampleCluster(c) })
			return
		}
	}
}

// livePublishEvery throttles in-run snapshot publishing: a sample per
// ~100ms is ample for a human or a poller watching /progress, and the
// wall-clock read happens only when a live slot is attached.
const livePublishEvery = 100 * time.Millisecond

// liveMetrics returns the registry view a live snapshot should carry: the
// final merged snapshot when available, a read-only merge of the
// per-cluster registries mid-run on the sharded core (callers must hold
// the run quiescent — worker 0 publishes between the window barriers), and
// the plain registry otherwise.
func (m *Machine) liveMetrics() obs.Snapshot {
	if m.shard != nil && m.merged == nil {
		snaps := make([]obs.Snapshot, 0, len(m.clusters))
		for _, c := range m.clusters {
			snaps = append(snaps, c.res.reg.Snapshot())
		}
		return obs.MergeSnapshots(snaps...)
	}
	return m.MetricsSnapshot()
}

// publishLive installs a fresh sample in the run's live slot, if one is
// attached (Config.Live).
func (m *Machine) publishLive(done bool) {
	lr := m.cfg.Live
	if lr == nil {
		return
	}
	s := &obs.LiveSample{
		Cycles:  uint64(m.simNow()),
		Events:  m.simFired(),
		Done:    done,
		Metrics: m.liveMetrics(),
	}
	if sh := m.shard; sh != nil {
		s.Shards = make([]uint64, sh.n)
		for i, w := range sh.wheels {
			s.Shards[i] = uint64(w.Now())
			// Report the trailing shard as the simulation's reached time:
			// ahead-of-window wheel times are speculative progress.
			if i == 0 || s.Shards[i] < s.Cycles {
				s.Cycles = s.Shards[i]
			}
		}
	}
	lr.Publish(s)
}
