package machine

import (
	"fmt"

	"dircoh/internal/cache"
)

// CheckCoherence validates the machine's coherence invariants. It must be
// called at quiescence (after Run returns): in-flight messages may
// transiently violate the invariants, exactly as release consistency
// permits on real DASH hardware.
//
// Invariants checked:
//  1. A block is dirty in at most one cache machine-wide.
//  2. A block dirty in a cluster other than its home is recorded as dirty
//     with that owner in the home directory.
//  3. Every remote cluster holding a copy is covered by the home
//     directory entry's candidate sharer set (the superset property that
//     makes invalidation-based coherence correct).
func (m *Machine) CheckCoherence() error {
	type holder struct {
		cluster int
		state   cache.State
	}
	blocks := make(map[int64][]holder)
	for _, p := range m.procs {
		cl := p.cl.id
		p.h.ForEach(func(b int64, st cache.State) {
			blocks[b] = append(blocks[b], holder{cluster: cl, state: st})
		})
	}
	for b, hs := range blocks {
		dirty := 0
		var dirtyCluster int
		for _, h := range hs {
			if h.state == cache.Dirty {
				dirty++
				dirtyCluster = h.cluster
			}
		}
		if dirty > 1 {
			return fmt.Errorf("block %d dirty in %d caches", b, dirty)
		}
		if dirty == 1 {
			for _, h := range hs {
				if h.state != cache.Dirty {
					return fmt.Errorf("block %d dirty in cluster %d but also cached in cluster %d", b, dirtyCluster, h.cluster)
				}
			}
		}
		home := m.home(b)
		needEntry := false
		for _, h := range hs {
			if h.cluster != home {
				needEntry = true
			}
		}
		if !needEntry {
			continue // blocks cached only at home need no directory entry
		}
		e := m.clusters[home].dir.Lookup(m.dirKey(b), m.simNow())
		if e == nil {
			return fmt.Errorf("block %d cached remotely but home %d has no directory entry", b, home)
		}
		for _, h := range hs {
			if h.cluster == home {
				continue
			}
			if h.state == cache.Dirty {
				if !e.Dirty() || e.Owner() != h.cluster {
					return fmt.Errorf("block %d dirty in cluster %d but directory says dirty=%v owner=%d",
						b, h.cluster, e.Dirty(), e.Owner())
				}
				continue
			}
			if !e.IsSharer(h.cluster) {
				return fmt.Errorf("block %d cached in cluster %d but not in directory sharer set %v",
					b, h.cluster, e.Sharers())
			}
		}
	}
	return nil
}
