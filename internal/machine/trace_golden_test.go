package machine

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dircoh/internal/apps"
	"dircoh/internal/core"
	"dircoh/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceGoldenLU runs a small LU decomposition under Dir3CV2 and
// compares the JSONL event trace byte-for-byte against the checked-in
// golden. The simulator is deterministic, so any drift in event content,
// ordering or encoding is a real behavior change. Regenerate with:
//
//	go test ./internal/machine -run TraceGoldenLU -update
func TestTraceGoldenLU(t *testing.T) {
	w := apps.LU(apps.LUConfig{Procs: 4, N: 16})
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	cfg := testConfig(4, CoarseVec2)
	cfg.Trace = obs.NewTracer(sink.Sub("LU/"+core.Must(CoarseVec2(4)).Name()), 64)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_lu4.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotLines := bytes.Split(got, []byte("\n"))
	wantLines := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("trace differs from golden at line %d:\n got: %s\nwant: %s",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("trace differs from golden in length: got %d lines, want %d",
		len(gotLines), len(wantLines))
}
