package machine

import (
	"dircoh/internal/core"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
)

// lockTable returns the lock table holding addr's queue — it lives at the
// lock's home cluster. The serial engine shares one table between all
// clusters, so the distinction only matters on the sharded core.
func (m *Machine) lockTable(addr int64) *protocol.LockTable {
	return m.clusters[m.home(m.block(addr))].res.locks
}

// lockAcquire runs a Lock reference (after the release-consistency fence).
// Locks are queued in the directory (§7): the home records waiters using
// the machine's directory scheme, so coarse-vector lock grants wake whole
// regions that then re-contend.
func (m *Machine) lockAcquire(p *proc, addr int64, retry bool) {
	if retry {
		p.cl.res.lockRetries.Inc()
		m.trace(obs.EvRetry, p.cl.id, addr, 0)
	}
	home := m.home(m.block(addr))
	if home == p.cl.id {
		granted, woken := p.cl.res.locks.Acquire(addr, p.cl.id, p.id)
		m.wakeNodes(addr, home, woken)
		if granted {
			m.complete(p, m.now(p.cl)+m.t.Bus)
		}
		// Otherwise p blocks until granted or woken.
		return
	}
	// One lock transaction per remote acquisition round: it ends at the
	// grant (or the wake that triggers a retry, which opens a new round).
	tx := m.txStart(obs.TxLock, p.cl, addr)
	m.lockTxSet(p, tx)
	m.sendTx(protocol.LockReq, p.cl.id, home, tx, func() {
		hc := m.clusters[home]
		m.txPhase(hc, tx, obs.PhReqTravel)
		done := m.dirOp(hc, m.t.Dir)
		m.at(hc, done, func() {
			granted, woken := hc.res.locks.Acquire(addr, p.cl.id, p.id)
			m.wakeNodes(addr, home, woken)
			if granted {
				m.txPhase(hc, tx, obs.PhDirWait)
				m.sendTx(protocol.LockGrant, home, p.cl.id, tx, func() {
					m.txPhase(p.cl, tx, obs.PhReplyTravel)
					m.lockTxEnd(p)
					m.complete(p, m.now(p.cl)+m.t.Hit)
				})
			}
		})
	})
}

// lockRelease runs an Unlock reference. The releasing processor proceeds
// as soon as the release is issued (release consistency); the grant logic
// runs at the lock's home.
func (m *Machine) lockRelease(p *proc, addr int64) {
	home := m.home(m.block(addr))
	if home == p.cl.id {
		g := p.cl.res.locks.Release(addr)
		m.handleGrant(addr, home, g)
		m.complete(p, m.now(p.cl)+m.t.Bus)
		return
	}
	m.send(protocol.UnlockReq, p.cl.id, home, func() {
		hc := m.clusters[home]
		done := m.dirOp(hc, m.t.Dir)
		m.at(hc, done, func() {
			g := hc.res.locks.Release(addr)
			m.handleGrant(addr, home, g)
		})
	})
	m.complete(p, m.now(p.cl)+m.t.Hit)
}

// handleGrant delivers the outcome of a lock release: either a direct
// grant to a single waiter (precise waiter set) or wake messages to the
// popped region (coarse waiter set), whose waiters retry.
func (m *Machine) handleGrant(addr int64, home int, g protocol.Grant) {
	if g.Direct {
		q := m.procs[g.Proc]
		if g.Node == home {
			m.complete(q, m.now(q.cl)+m.t.Hit)
			return
		}
		tx := m.lockTxOf(q)
		m.txPhase(m.clusters[home], tx, obs.PhDirWait)
		m.sendTx(protocol.LockGrant, home, g.Node, tx, func() {
			m.txPhase(q.cl, tx, obs.PhReplyTravel)
			m.lockTxEnd(q)
			m.complete(q, m.now(q.cl)+m.t.Hit)
		})
		return
	}
	m.wakeNodes(addr, home, g.Wake)
}

// wakeNodes tells each node's waiters to retry acquisition. Nodes in a
// coarse region that never had waiters still receive (and ignore) the
// message — that traffic is the coarse vector's imprecision at work. It
// runs at the lock's home; on the sharded core the waiter list for a
// remote node is snapshotted here (the table lives at the home) and
// carried inside the wake message, so the remote shard never touches the
// home's table. A waiter that registers while the wake is in flight misses
// this round and is woken at the next release — a timing the serial
// engine can also produce, and identical at every shard count.
func (m *Machine) wakeNodes(addr int64, home int, nodes []core.NodeID) {
	hc := m.clusters[home]
	for _, w := range nodes {
		w := w
		if w == home {
			m.retryWaiters(addr, hc.res.locks.TakeWaiters(addr, w))
			continue
		}
		if m.shard != nil {
			ws := hc.res.locks.TakeWaiters(addr, w)
			m.send(protocol.LockWake, home, w, func() { m.retryWaiters(addr, ws) })
			continue
		}
		m.send(protocol.LockWake, home, w, func() {
			m.retryWaiters(addr, m.lockTable(addr).TakeWaiters(addr, w))
		})
	}
}

// retryWaiters re-runs lock acquisition for each woken processor. It runs
// at the waiters' own cluster.
func (m *Machine) retryWaiters(addr int64, procIDs []int) {
	for _, procID := range procIDs {
		q := m.procs[procID]
		// A wake ends the waiter's current lock round (the retry opens a
		// fresh transaction, linked by the lock.retry trace event).
		if tx := m.lockTxOf(q); tx != nil {
			m.txPhase(q.cl, tx, obs.PhDirWait)
			m.lockTxEnd(q)
		}
		m.lockAcquire(q, addr, true)
	}
}

// treeFanout is the combining-tree branching factor.
const treeFanout = 4

// treeParent returns c's parent cluster in the combining tree (root: 0).
func treeParent(c int) int { return (c - 1) / treeFanout }

// treeChildren calls fn for each child cluster of c.
func (m *Machine) treeChildren(c int, fn func(child int)) {
	for i := 1; i <= treeFanout; i++ {
		child := c*treeFanout + i
		if child < len(m.clusters) {
			fn(child)
		}
	}
}

// treeExpected returns the number of arrivals cluster c's tree node
// combines: its own processors plus one per child subtree.
func (m *Machine) treeExpected(c int) int {
	n := len(m.clusters[c].procs)
	m.treeChildren(c, func(int) { n++ })
	return n
}

// treeArrive records one arrival (a local processor or a completed child
// subtree) at cluster c's node of the combining tree for barrier addr.
func (m *Machine) treeArrive(c int, addr int64) {
	cl := m.clusters[c]
	cl.treeArrived[addr]++
	if cl.treeArrived[addr] < m.treeExpected(c) {
		return
	}
	delete(cl.treeArrived, addr)
	if c == 0 {
		m.treeRelease(c, addr)
		return
	}
	parent := treeParent(c)
	m.send(protocol.BarrierArrive, c, parent, func() { m.treeArrive(parent, addr) })
}

// treeRelease fans the barrier release down cluster c's subtree.
func (m *Machine) treeRelease(c int, addr int64) {
	cl := m.clusters[c]
	for _, q := range cl.treeWaiting[addr] {
		m.complete(q, m.now(cl)+m.t.Hit)
	}
	delete(cl.treeWaiting, addr)
	m.treeChildren(c, func(child int) {
		m.send(protocol.BarrierRelease, c, child, func() { m.treeRelease(child, addr) })
	})
}

// barrierArrive runs a Barrier reference: the arrival is sent to the
// barrier's home; the last arrival releases every participant.
func (m *Machine) barrierArrive(p *proc, addr int64) {
	if m.cfg.Barrier == TreeBarrier {
		cl := p.cl
		cl.treeWaiting[addr] = append(cl.treeWaiting[addr], p)
		m.treeArrive(cl.id, addr)
		return
	}
	m.centralBarrierArrive(p, addr)
}

// centralBarrierArrive implements the default single-home barrier.
func (m *Machine) centralBarrierArrive(p *proc, addr int64) {
	home := m.home(m.block(addr))
	hc := m.clusters[home]
	deliver := func() {
		for _, qid := range hc.res.barriers.Arrive(addr, p.id) {
			q := m.procs[qid]
			if q.cl.id == home {
				m.complete(q, m.now(hc)+m.t.Hit)
				continue
			}
			m.send(protocol.BarrierRelease, home, q.cl.id, func() {
				m.complete(q, m.now(q.cl)+m.t.Hit)
			})
		}
	}
	if home == p.cl.id {
		deliver()
		return
	}
	m.send(protocol.BarrierArrive, p.cl.id, home, deliver)
}
