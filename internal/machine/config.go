package machine

import (
	"fmt"
	"time"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/core"
	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
)

// SchemeFactory builds a directory entry scheme for a given cluster count.
// It is the registry's factory type, so anything core.Parse returns plugs
// straight into Config.Scheme.
type SchemeFactory = core.Factory

// Standard scheme factories matching the paper's §5 roster, resolved
// through the core registry.
var (
	// FullVec is Dir_P, the full bit vector.
	FullVec = core.MustParse("full")
	// CoarseVec2 is Dir3CV2, the paper's coarse vector configuration.
	CoarseVec2 = core.MustParse("cv")
	// Broadcast is Dir3B.
	Broadcast = core.MustParse("b")
	// NoBroadcast is Dir3NB with random victim pointers.
	NoBroadcast = core.MustParse("nb")
	// SupersetX is Dir2X.
	SupersetX = core.MustParse("x")
	// TwoLevel is Dir_iR_r with the adaptive region size (region ~ sqrt of
	// the cluster count, at most 4 slots).
	TwoLevel = core.MustParse("tl")
)

// SparseConfig enables the sparse directory when Entries > 0.
type SparseConfig struct {
	Entries int // entry slots per cluster (0 = full-map directory)
	Assoc   int // associativity (default 4, the paper's main setting)
	Policy  sparse.ReplacePolicy
}

// OverflowDirConfig enables the §7 two-level directory: small
// limited-pointer entries per block backed by a per-cluster cache of wide
// full-vector entries.
type OverflowDirConfig struct {
	Ptrs        int // pointers per small entry
	WideEntries int // wide-entry cache slots per cluster
	Assoc       int
	Policy      sparse.ReplacePolicy
}

// BarrierKind selects the barrier implementation.
type BarrierKind int

const (
	// CentralBarrier counts arrivals at the barrier word's home cluster
	// (simple, but a hot spot at scale).
	CentralBarrier BarrierKind = iota
	// TreeBarrier combines arrivals up a tree of clusters and fans the
	// release back down, spreading the traffic.
	TreeBarrier
)

func (k BarrierKind) String() string {
	if k == TreeBarrier {
		return "tree"
	}
	return "central"
}

// RetryConfig tunes the end-to-end delivery recovery that runs when the
// mesh fault model (Config.Mesh.Faults) is enabled. With faults off it
// is ignored entirely.
type RetryConfig struct {
	// Timeout is the first-attempt retransmit timeout in cycles. 0
	// derives a per-destination default of several one-way latencies
	// plus directory service slack, so a merely-queued reply rarely
	// triggers a spurious retry.
	Timeout sim.Time
	// MaxRetries bounds the retransmit attempts per message (0 selects
	// DefaultMaxRetries). Each retry doubles the timeout, capped at 64x
	// the base; a message still undelivered after the last retry is
	// abandoned (net.retry.giveup) and the liveness watchdog reports the
	// stuck transaction.
	MaxRetries int
}

// Timing holds the latency model in processor cycles, calibrated to the
// paper's §5 constants (local ≈23, 2-cluster ≈60, 3-cluster ≈80).
type Timing struct {
	Hit       sim.Time // cache hit
	Bus       sim.Time // full local bus transaction incl. memory
	Dir       sim.Time // directory controller occupancy per remote request
	InvalBus  sim.Time // bus occupancy of an invalidation at a remote cluster
	InvalSend sim.Time // directory occupancy per invalidation sent ("as fast as the network can accept them", §3.3)
	Fwd       sim.Time // cache access of a forwarded request at the owner
	Fill      sim.Time // cache fill after a reply arrives
}

// DefaultTiming returns the calibrated latency constants.
func DefaultTiming() Timing {
	return Timing{Hit: 1, Bus: 23, Dir: 8, InvalBus: 8, InvalSend: 2, Fwd: 8, Fill: 2}
}

// Config describes one simulated machine.
type Config struct {
	Procs           int // total processors
	ProcsPerCluster int // DASH prototype: 4; the paper's runs: 1
	Block           int // cache block size in bytes (paper: 16)
	Cache           cache.Config
	Scheme          SchemeFactory
	Sparse          SparseConfig
	Overflow        *OverflowDirConfig // mutually exclusive with Sparse
	Barrier         BarrierKind
	Mesh            mesh.Config // zero value -> mesh.DefaultConfig
	Timing          Timing      // zero value -> DefaultTiming
	Seed            int64

	// Shards, when > 0, runs the machine on the sharded event-wheel core:
	// clusters are partitioned across Shards worker goroutines, each with
	// its own timing wheel, advancing in lockstep windows bounded by the
	// minimum cross-shard mesh latency (conservative lookahead). Results —
	// including metrics, traces, spans and queue-depth samples — are
	// byte-identical at every Shards value >= 1, but differ from the
	// Shards == 0 serial engine in event tie-breaking: the sharded core
	// orders equal-time events by (scheduling cluster, per-cluster
	// sequence) instead of global insertion order, the property that makes
	// the order independent of the shard count. Configurations the sharded
	// core cannot honor (fault injection, the invariant checker, mesh port
	// contention, deliberate protocol faults, degenerate timing) fall back
	// to the serial engine; Machine.FallbackReason names the offending
	// flag and the workaround. 0 is the serial default.
	Shards int

	// Retry tunes the timeout/retry delivery recovery active while
	// Mesh.Faults is enabled.
	Retry RetryConfig
	// StuckBudget, when > 0, arms the liveness watchdog: any unfinished
	// processor that makes no forward progress for StuckBudget cycles
	// aborts the run with a *StuckError carrying a full diagnostic dump
	// (and a liveness violation when the checker is on). 0 disables the
	// watchdog unless Mesh.Faults is enabled, which defaults it to
	// DefaultStuckBudget.
	StuckBudget sim.Time
	// Deadline, when > 0, bounds the run in wall-clock time: a run still
	// going after Deadline aborts with the same diagnostic dump instead
	// of hanging the caller. Checked between events only, so it never
	// perturbs simulation results.
	Deadline time.Duration

	// Metrics, when non-nil, is the registry the machine (and its mesh,
	// directories, gates and RACs) records into; a private registry is
	// created when nil, readable via Machine.MetricsSnapshot. A machine is
	// single-writer and reads its own counters back into Result, so a
	// registry must not be shared between machines. Sharded runs record
	// into private per-cluster registries and merge them into Metrics at
	// quiescence, so external registries see sharded runs exactly as they
	// see serial ones.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured coherence events (request
	// issues, directory lookups, invalidation fan-outs, overflow bursts,
	// directory evictions, lock retries). nil disables tracing at the cost
	// of one pointer test per would-be event. Sharded runs buffer events
	// per shard and flush them in the canonical (time, key) order at
	// quiescence, so the event stream is byte-identical at every width.
	Trace *obs.Tracer
	// Spans, when non-nil, receives parented transaction spans: every
	// remote memory transaction (read miss, write miss, upgrade, lock
	// round, directory-eviction recall) gets a TxID at issue, a root span
	// covering issue to completion, and child spans for each latency
	// phase (request travel, directory wait, fanout, ack gather, reply
	// travel). Enabling spans also fills the tx.lat.<class> latency
	// histograms. nil disables span tracing at the cost of one pointer
	// test per would-be transaction. Sharded runs allocate width-
	// independent span IDs and flush buffered spans in canonical order at
	// quiescence, so span output is byte-identical at every width.
	Spans *obs.SpanRecorder
	// SampleEvery, when > 0, samples queue depths every SampleEvery
	// cycles into the dir.queue.depth, dir.entries.live and
	// mesh.port.backlog histograms: per-cluster directory-controller
	// backlog, live directory entries, and network ejection-port backlog.
	// Sampling reads simulator state without mutating it, so results are
	// identical with sampling on or off, at every shard width.
	SampleEvery sim.Time
	// Live, when non-nil, receives atomically-published in-run progress
	// snapshots (cycles simulated, events fired, per-shard wheel times,
	// merged metrics) roughly every 100ms of wall clock, plus a final
	// sample with Done set. Sharded runs publish from the window barriers
	// where every shard is quiescent; publishing reads simulator state
	// without mutating it, so results are unchanged.
	Live *obs.LiveRun
	// Check enables the runtime coherence invariant checker: a shadow
	// oracle asserting single-writer/multiple-reader, directory coverage,
	// recall completeness, acknowledgement conservation and span tiling at
	// every protocol transition. Violations are counted in the
	// check.violation.* registry counters and reported through
	// Machine.Violations / Machine.CheckErr. Enabling the checker forces
	// the transaction-span machinery on (with a discarding sink when Spans
	// is nil) but never alters protocol decisions; disabled, its entire
	// cost is one nil test per would-be assertion.
	Check bool
	// CheckSink, when non-nil (and Check is set), additionally receives
	// every violation as a structured record — typically a
	// check.NewJSONLSink over the same writer as the trace or span sink.
	CheckSink check.Sink
	// Fault selects a deliberate protocol mutation for exercising the
	// checker and the stress harness (see the Fault constants). FaultNone
	// for every real measurement.
	Fault Fault
}

// DefaultConfig returns the paper's main experimental setup: 32 processors
// in 32 clusters, 64 KB + 256 KB caches, 16-byte blocks, full-map
// directory with the given scheme.
func DefaultConfig(scheme SchemeFactory) Config {
	return Config{
		Procs:           32,
		ProcsPerCluster: 1,
		Block:           16,
		Cache:           cache.DefaultConfig(),
		Scheme:          scheme,
		Timing:          DefaultTiming(),
	}
}

// Clusters returns the cluster count implied by the configuration.
func (c *Config) Clusters() int { return c.Procs / c.ProcsPerCluster }

// Validate checks the configuration for every error New would otherwise
// trip over, so drivers can report bad flag combinations before building
// anything.
func (c *Config) Validate() error {
	if c.Procs <= 0 || c.ProcsPerCluster <= 0 {
		return fmt.Errorf("machine: Procs and ProcsPerCluster must be positive")
	}
	if c.Procs%c.ProcsPerCluster != 0 {
		return fmt.Errorf("machine: Procs (%d) not divisible by ProcsPerCluster (%d)", c.Procs, c.ProcsPerCluster)
	}
	if c.Block <= 0 {
		return fmt.Errorf("machine: Block must be positive")
	}
	if c.Scheme == nil {
		return fmt.Errorf("machine: Scheme factory is required")
	}
	if _, err := c.Scheme(c.Clusters()); err != nil {
		// Scheme geometry (e.g. more pointers than clusters) is only
		// checkable once the machine size is known; surface it here as a
		// flag-level error instead of deep inside New.
		return fmt.Errorf("machine: %w", err)
	}
	if c.Overflow != nil && c.Sparse.Entries > 0 {
		return fmt.Errorf("machine: Sparse and Overflow directories are mutually exclusive")
	}
	if c.Overflow != nil && (c.Overflow.Ptrs <= 0 || c.Overflow.WideEntries <= 0) {
		return fmt.Errorf("machine: Overflow needs positive Ptrs and WideEntries")
	}
	if c.Sparse.Entries < 0 {
		return fmt.Errorf("machine: Sparse.Entries must not be negative")
	}
	if c.Sparse.Entries > 0 && c.Sparse.Assoc < 0 {
		return fmt.Errorf("machine: Sparse.Assoc must not be negative")
	}
	if c.Cache.Block != 0 && c.Cache.Block != c.Block {
		return fmt.Errorf("machine: cache block (%d) differs from machine block (%d)", c.Cache.Block, c.Block)
	}
	if err := c.Mesh.Faults.Validate(); err != nil {
		return err
	}
	if c.Retry.MaxRetries < 0 {
		return fmt.Errorf("machine: Retry.MaxRetries must not be negative")
	}
	if c.Shards < 0 {
		return fmt.Errorf("machine: Shards must not be negative")
	}
	if c.Cache != (cache.Config{}) {
		// Pre-check the cache geometry so a bad flag combination is an
		// error here rather than a panic inside cache.NewHierarchy.
		cc := c.Cache
		if cc.Block == 0 {
			cc.Block = c.Block
		}
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return nil
}
