package machine

import (
	"fmt"
	"strings"

	"dircoh/internal/cache"
	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
)

// Result holds every measurement of one simulation run.
type Result struct {
	Scheme       string
	ExecTime     sim.Time        // max processor finish time (cycles)
	Msgs         stats.MsgCounts // the paper's four message classes
	InvalHist    stats.Histogram // invalidations per invalidation event
	ReplHist     stats.Histogram // invalidations per sparse replacement
	Net          mesh.Stats
	Dir          sparse.Stats // aggregated over clusters
	Cache        cache.Stats  // aggregated over processors
	Replacements uint64       // sparse-directory entry replacements
	LockRetries  uint64
	MergedReads  uint64  // read misses merged onto an outstanding request (RAC)
	BusUtil      float64 // mean cluster-bus occupancy over the run
	DirUtil      float64 // mean directory-controller occupancy over the run
	ReadLat      stats.LatHist
	WriteLat     stats.LatHist
	RACPeak      int
	DirPeak      int // peak simultaneously-live directory entries, machine-wide

	// Directory-entry cost of the scheme this machine ran, so sweeps and
	// benches can report memory overhead next to traffic without
	// re-deriving the scheme from its name.
	DirEntryBits  int // architectural bits per entry (Scheme.BitsPerEntry)
	DirEntryBytes int // simulator heap bytes per entry (Scheme.EntryBytes)
}

// result builds the Result from the machine's metrics-registry snapshot
// plus the exact per-count histograms the figures need. The paper's four
// message classes are sums of the per-kind "msg.<kind>" counters; the
// directory aggregate reads the shared "dir.*" counters (summing the
// per-cluster directories' Stats() would double-count, since they all
// record into the machine registry). After a sharded run the snapshot is
// the merge of the per-cluster registries and the histograms were folded
// together at quiescence, so the same reads work for both cores.
func (m *Machine) result() *Result {
	snap := m.MetricsSnapshot()
	var msgs stats.MsgCounts
	for k := 0; k < protocol.NumMsgKinds; k++ {
		kind := protocol.MsgKind(k)
		msgs[kind.Class()] += snap.Counter(kind.MetricName())
	}
	r := &Result{
		Scheme:        m.scheme.Name(),
		DirEntryBits:  m.scheme.BitsPerEntry(),
		DirEntryBytes: m.scheme.EntryBytes(),
		Msgs:          msgs,
		InvalHist:     m.invalHist,
		ReplHist:      m.replHist,
		Net:           m.netStats(snap),
		LockRetries:   snap.Counter("lock.retries"),
		MergedReads:   snap.Counter("rac.merged.reads"),
		ReadLat:       m.readLat,
		WriteLat:      m.writeLat,
		Dir: sparse.Stats{
			Lookups:      snap.Counter("dir.lookup"),
			Hits:         snap.Counter("dir.hit"),
			Allocations:  snap.Counter("dir.alloc"),
			Replacements: snap.Counter("sparse.evict"),
		},
	}
	for _, p := range m.procs {
		if p.finish > r.ExecTime {
			r.ExecTime = p.finish
		}
		cs := p.h.Stats()
		r.Cache.Reads += cs.Reads
		r.Cache.Writes += cs.Writes
		r.Cache.L1Hits += cs.L1Hits
		r.Cache.L2Hits += cs.L2Hits
		r.Cache.Misses += cs.Misses
		r.Cache.Upgrades += cs.Upgrades
		r.Cache.Evictions += cs.Evictions
		r.Cache.DirtyEv += cs.DirtyEv
	}
	for _, c := range m.clusters {
		if peak := c.rac.Peak(); peak > r.RACPeak {
			r.RACPeak = peak
		}
		r.DirPeak += c.dir.PeakEntries()
		r.BusUtil += float64(c.busBusy)
		r.DirUtil += float64(c.dirBusy)
	}
	if r.ExecTime > 0 {
		denom := float64(r.ExecTime) * float64(len(m.clusters))
		r.BusUtil /= denom
		r.DirUtil /= denom
	}
	r.Replacements = r.Dir.Replacements
	return r
}

// netStats reconstructs the mesh accounting from the metrics snapshot, so
// a sharded run (where each cluster sent through its own mesh instance)
// reports the same machine-wide totals the serial engine reads off its
// single mesh.
func (m *Machine) netStats(snap obs.Snapshot) mesh.Stats {
	if m.merged == nil {
		return m.net.Stats()
	}
	return mesh.Stats{
		Messages: snap.Counter("mesh.msgs"),
		Hops:     snap.Counter("mesh.hops"),
		MaxHops:  int(snap.GaugeMax["mesh.maxhops"]),
		Stalls:   snap.Counter("mesh.stalls"),
	}
}

// Summary renders the run in the style of the paper's figures: execution
// time plus the message breakdown (requests incl. writebacks, replies,
// invalidations + acknowledgements).
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme %s: exec %d cycles\n", r.Scheme, r.ExecTime)
	fmt.Fprintf(&b, "  messages: total %d  requests %d  replies %d  inval+ack %d\n",
		r.Msgs.Total(), r.Msgs[stats.Request], r.Msgs[stats.Reply], r.Msgs.InvalAck())
	fmt.Fprintf(&b, "  invalidation events %d, avg invals/event %.2f\n",
		r.InvalHist.Events(), r.InvalHist.Mean())
	if r.Replacements > 0 {
		fmt.Fprintf(&b, "  sparse replacements %d (RAC peak %d)\n", r.Replacements, r.RACPeak)
	}
	fmt.Fprintf(&b, "  latency: reads %.1f cycles avg, writes %.1f; bus util %.1f%%, dir util %.1f%%\n",
		r.ReadLat.Mean(), r.WriteLat.Mean(), 100*r.BusUtil, 100*r.DirUtil)
	return b.String()
}
