package machine

import (
	"testing"

	"dircoh/internal/cache"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// TestReadMerging: two processors of one cluster read the same remote
// block back to back; the second must ride the first's reply (one
// ReadReq + one DataReply on the wire).
func TestReadMerging(t *testing.T) {
	var b0, b1 tango.Builder
	b0.Read(addr(1)) // block 1 homed at cluster 1 (2 clusters)
	b1.Read(addr(1))
	cfg := testConfig(4, FullVec)
	cfg.ProcsPerCluster = 2
	m, r := mustRun(t, cfg, wl(b0.Refs(), b1.Refs(), nil, nil))
	if r.Msgs[stats.Request] != 1 || r.Msgs[stats.Reply] != 1 {
		t.Fatalf("msgs = %v, want a single merged request/reply pair", r.Msgs)
	}
	if r.MergedReads != 1 {
		t.Fatalf("MergedReads = %d, want 1", r.MergedReads)
	}
	for p := 0; p < 2; p++ {
		if m.procs[p].h.State(m.block(addr(1))) != cache.Shared {
			t.Fatalf("proc %d missing its merged copy", p)
		}
	}
}

// TestWriteParking: a sibling's read issued while an ownership request is
// outstanding parks and is served locally by the fresh dirty copy — no
// second network request.
func TestWriteParking(t *testing.T) {
	var b0, b1 tango.Builder
	b0.Write(addr(1))
	b1.Read(addr(1))
	cfg := testConfig(4, FullVec)
	cfg.ProcsPerCluster = 2
	m, r := mustRun(t, cfg, wl(b0.Refs(), b1.Refs(), nil, nil))
	// Exactly one WriteReq + one OwnershipReply; the read never touches
	// the network (either it parked, or it ran first and the write
	// upgraded — both stay at 2 network messages for this pair at most
	// 4 if the read beat the write to the bus).
	if r.Msgs.Total() > 4 {
		t.Fatalf("msgs = %v, want the read resolved inside the cluster", r.Msgs)
	}
	b := m.block(addr(1))
	st0, st1 := m.procs[0].h.State(b), m.procs[1].h.State(b)
	switch {
	case st0 == cache.Dirty && st1 == cache.Invalid:
		// Read ran first, write invalidated it afterwards — legal.
	case st0 == cache.Shared && st1 == cache.Shared:
		// Write completed first, read downgraded it over the bus.
	default:
		t.Fatalf("unexpected final states: p0=%v p1=%v", st0, st1)
	}
}

// TestPoisonedRead: an invalidation overtaking an outstanding read reply
// must prevent the stale fill. Construct the window: cluster 1 reads a
// block homed at distant cluster 0 while cluster 2 immediately writes it.
func TestPoisonedRead(t *testing.T) {
	// Run many interleavings; whatever the timing, coherence must hold
	// (mustRun checks) — this is a directed stress for the poison path.
	for seed := int64(0); seed < 5; seed++ {
		var b1, b2 tango.Builder
		b1.Read(addr(0))
		b1.Read(addr(3))
		b2.Write(addr(0))
		b2.Write(addr(3))
		cfg := testConfig(3, FullVec)
		cfg.Seed = seed
		mustRun(t, cfg, wl(nil, b1.Refs(), b2.Refs()))
	}
}

// TestWritebackEpochGuard: ownership re-granted to a cluster whose
// writeback is still in flight must survive the writeback's arrival.
func TestWritebackEpochGuard(t *testing.T) {
	// Proc 1 (cluster 1) dirties block 0 (home 0), floods its tiny cache
	// to evict it (writeback in flight), then immediately re-writes
	// block 0. The final state must be dirty at cluster 1 with the
	// directory agreeing.
	var b1 tango.Builder
	b1.Write(addr(0))
	for i := int64(1); i <= 64; i++ {
		b1.Write(addr(i * 2)) // same L2 sets, forces eviction of block 0
	}
	b1.Write(addr(0))
	m, _ := mustRun(t, testConfig(2, FullVec), wl(nil, b1.Refs()))
	b := m.block(addr(0))
	if m.procs[1].h.State(b) != cache.Dirty {
		t.Skip("eviction pattern did not hit block 0; geometry changed")
	}
	e := m.dirEntry(b)
	if e == nil || !e.Dirty() || e.Owner() != 1 {
		t.Fatalf("directory lost re-granted ownership: %v", e)
	}
}

// TestLatencyHistograms: a run records read and write latencies whose
// means sit between the hit time and the worst remote path.
func TestLatencyHistograms(t *testing.T) {
	var b1 tango.Builder
	b1.Read(addr(0))  // remote miss ~60
	b1.Read(addr(0))  // hit ~1
	b1.Write(addr(0)) // upgrade ~60
	_, r := mustRun(t, testConfig(2, FullVec), wl(nil, b1.Refs()))
	if r.ReadLat.Count() != 2 || r.WriteLat.Count() != 1 {
		t.Fatalf("latency sample counts = %d/%d, want 2/1", r.ReadLat.Count(), r.WriteLat.Count())
	}
	if r.ReadLat.Max() < 40 || r.ReadLat.Max() > 120 {
		t.Fatalf("remote read latency %d out of expected band", r.ReadLat.Max())
	}
	if mean := r.WriteLat.Mean(); mean < 40 || mean > 120 {
		t.Fatalf("write latency mean %.1f out of expected band", mean)
	}
}

// TestTreeBarrier: the combining-tree barrier synchronizes all processors
// and spreads its traffic — no single cluster receives every arrival.
func TestTreeBarrier(t *testing.T) {
	const procs = 8
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for r := 0; r < 5; r++ {
			b.Read(addr(int64(p)))
			b.Barrier(addr(500))
		}
		streams[p] = b.Refs()
	}
	cfg := testConfig(procs, FullVec)
	cfg.Barrier = TreeBarrier
	m, r := mustRun(t, cfg, wl(streams...))
	// Everyone finished all 5 rounds (deadlock would have failed Run).
	for _, p := range m.procs {
		if !p.done {
			t.Fatalf("proc %d not done", p.id)
		}
	}
	// Tree traffic: 2*(clusters-1) messages per round = 14*5 = 70.
	if got := r.Msgs.Total(); got != 70 {
		t.Fatalf("messages = %d, want 70 (2*(C-1) per round)", got)
	}
}

// TestTreeBarrierMatchesCentralSemantics: with work of different lengths,
// both barrier kinds align every processor to the slowest one.
func TestTreeBarrierMatchesCentralSemantics(t *testing.T) {
	build := func() [][]tango.Ref {
		streams := make([][]tango.Ref, 4)
		for p := range streams {
			var b tango.Builder
			for i := 0; i <= p*20; i++ {
				b.Read(addr(int64(4*i + p)))
			}
			b.Barrier(addr(600))
			b.Read(addr(700))
			streams[p] = b.Refs()
		}
		return streams
	}
	for _, kind := range []BarrierKind{CentralBarrier, TreeBarrier} {
		cfg := testConfig(4, FullVec)
		cfg.Barrier = kind
		m, _ := mustRun(t, cfg, wl(build()...))
		slowest := m.procs[3].finish
		for _, p := range m.procs {
			if p.finish+200 < slowest {
				t.Fatalf("%v barrier: proc %d finished at %d, long before %d",
					kind, p.id, p.finish, slowest)
			}
		}
	}
}
