package machine

import (
	"fmt"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/core"
	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/protocol"
	"dircoh/internal/rng"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// Machine is one simulated DASH-style multiprocessor.
type Machine struct {
	cfg      Config
	t        Timing
	eng      sim.Scheduler
	net      *mesh.Mesh
	scheme   core.Scheme
	clusters []*clusterNode
	procs    []*proc
	locks    *protocol.LockTable
	barriers *protocol.BarrierTable

	// shard is non-nil when the run uses the sharded event-wheel core
	// (Config.Shards > 0 and nothing blocked it); fallback carries the
	// reason a requested sharded run fell back to the serial engine.
	// merged is filled at sharded quiescence with the merge of the
	// per-cluster metrics registries.
	shard    *shardedCore
	fallback string
	merged   *obs.Snapshot

	// Observability. Metric handles are resolved once in New; recording
	// is a plain increment. The tracer is nil when tracing is off.
	reg         *obs.Registry
	tr          *obs.Tracer
	kindCtr     [protocol.NumMsgKinds]*obs.Counter // per-message-kind counters ("msg.<kind>")
	lockRetries *obs.Counter                       // "lock.retries"
	mergedReads *obs.Counter                       // "rac.merged.reads": misses merged onto an outstanding request
	extraInval  *obs.Counter                       // "dir.inval.extraneous": invalidations that found no copy
	invalFan    *obs.Histogram                     // "dir.inval.fanout"
	replFan     *obs.Histogram                     // "dir.repl.fanout"

	// Transaction tracing (nil when Config.Spans is nil). The per-class
	// latency histograms and the queue-depth sampling histograms live on
	// clusterRes — shared across clusters on the serial engine, private
	// per cluster on the sharded core — and each processor carries its
	// own open lock-round transaction (proc.lockTx).
	spans *obs.SpanRecorder

	invalHist stats.Histogram // invalidations per invalidation event (Figs 3-6)
	replHist  stats.Histogram // invalidations per sparse replacement
	readLat   stats.LatHist   // read completion latency
	writeLat  stats.LatHist   // write completion latency (to ownership)

	// chk is the runtime invariant checker (nil when Config.Check is off;
	// the nil test is the whole disabled-path cost). faultFired latches the
	// single-shot fault injection (Config.Fault). copyBuf is the scratch
	// slice blockCopies reuses to build predicate views.
	chk        *check.Recorder
	faultFired bool
	copyBuf    []check.Copy

	// Delivery recovery, active only when the mesh fault model is on
	// (faultsOn): every message becomes a sequence-numbered netMsg envelope
	// in inflight until delivered, with retry and duplicate-suppression
	// counters; aborted carries the watchdog's or deadline's verdict and
	// stops the run loop. See net.go.
	faultsOn      bool
	msgSeq        uint64
	inflight      map[uint64]*netMsg
	retryCnt      *obs.Counter // "net.retry.count"
	retryGiveup   *obs.Counter // "net.retry.giveup"
	dupSuppressed *obs.Counter // "net.dup.suppressed"
	aborted       *StuckError

	// recallsPending counts replacement recalls queued or in flight per
	// global block (checker bookkeeping only, nil when Check is off). A
	// block whose directory entry is reclaimed, re-allocated by a request
	// replayed off the gate, and reclaimed again can owe two recalls at
	// once; the first to complete must not be blamed for copies the second
	// snapshotted and will invalidate.
	recallsPending map[int64]int

	// debugBlock, when >= 0, records a timeline of events touching that
	// block (test diagnostics only).
	debugBlock int64
	debugLog   []string
}

// clusterRes bundles the machine-wide facilities a cluster's protocol
// events record into and act through. The serial engine shares ONE
// clusterRes between all clusters (pointing at the machine-level objects,
// so behavior and counting are exactly the single-registry machine's); the
// sharded core gives every cluster its own, making each cluster
// single-writer so shards never touch each other's state, and merges the
// per-cluster registries and histograms at quiescence.
type clusterRes struct {
	reg      *obs.Registry
	net      *mesh.Mesh
	scheme   core.Scheme
	locks    *protocol.LockTable
	barriers *protocol.BarrierTable

	kindCtr     [protocol.NumMsgKinds]*obs.Counter
	lockRetries *obs.Counter
	mergedReads *obs.Counter
	extraInval  *obs.Counter
	invalFan    *obs.Histogram
	replFan     *obs.Histogram

	// Transaction latency histograms ("tx.lat.<class>"; entries nil when
	// Config.Spans is nil) and queue-depth sampling histograms (nil when
	// Config.SampleEvery is 0).
	txLat     [obs.NumTxClasses]*obs.Histogram
	dirDepth  *obs.Histogram // "dir.queue.depth"
	dirLive   *obs.Histogram // "dir.entries.live"
	portDepth *obs.Histogram // "mesh.port.backlog"

	invalHist *stats.Histogram
	replHist  *stats.Histogram
	readLat   *stats.LatHist
	writeLat  *stats.LatHist
}

// clusterNode is one processing node: processors, bus, memory+directory.
type clusterNode struct {
	id      int
	res     *clusterRes
	shard   int    // owning shard (always 0 on the serial engine)
	evSeq   uint64 // per-cluster event sequence, the wheel ordering key
	spanSeq uint64 // per-cluster span-ID sequence (sharded runs; see spanID)
	dir     sparse.Directory
	gate    *protocol.Gate
	rac     *protocol.RAC
	busFree sim.Time
	dirFree sim.Time
	busBusy sim.Time // cumulative bus occupancy (utilization accounting)
	dirBusy sim.Time // cumulative directory occupancy
	procs   []*proc
	// pendingReads merges outstanding read misses to the same block from
	// different processors of the cluster (the RAC's request-merging
	// function in DASH): followers wait for the leader's reply instead
	// of sending their own request.
	pendingReads map[int64][]*proc
	// poisonedReads marks pending reads whose block was invalidated
	// while the reply was in flight: the data is delivered to the
	// processor but must not be cached (the invalidation logically
	// follows the read) — the RAC's conflict-resolution function.
	poisonedReads map[int64]bool
	// pendingWrite marks blocks with an outstanding remote ownership
	// request from this cluster; writeWaiters holds local accesses that
	// missed meanwhile and retry when the write completes (MSHR
	// merging, as the DASH RAC does).
	pendingWrite map[int64]bool
	writeWaiters map[int64][]mshrWaiter
	// treeBarrier tracks this cluster's node of the combining tree:
	// arrival counts and locally parked processors, per barrier address.
	treeArrived map[int64]int
	treeWaiting map[int64][]*proc
	// wbExpected counts writebacks known to be in flight to this home:
	// when a request arrives from the very cluster the directory records
	// as dirty owner, the owner must have evicted its copy, so a
	// writeback is on the way. The next writeback for the block is then
	// stale with respect to the re-granted ownership and must be
	// dropped, not applied.
	wbExpected map[int64]int
}

// mshrWaiter is a local access parked behind an outstanding write.
type mshrWaiter struct {
	p     *proc
	write bool
}

// proc is one simulated processor.
type proc struct {
	id            int
	cl            *clusterNode
	h             *cache.Hierarchy
	stream        *tango.Stream
	stepFn        func() // pre-bound m.stepProc(p): the hot path schedules it without allocating a closure per event
	ackFn         func() // pre-bound m.ackArrived(p), for invalidation acks
	pendingAcks   int
	afterDrain    func()
	drainToFinish bool
	done          bool
	finish        sim.Time
	opPending     bool // a data reference is in flight (latency accounting)
	opWrite       bool
	opStart       sim.Time
	lastProgress  sim.Time // last cycle this processor advanced (liveness watchdog)
	lockTx        *txState // open lock-round transaction (span tracing only)
}

// New builds a machine from cfg. Configurations that fail Validate are
// reported as errors, never panics.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming()
	}
	if cfg.Cache == (cache.Config{}) {
		cfg.Cache = cache.DefaultConfig()
	}
	cfg.Cache.Block = cfg.Block
	clusters := cfg.Clusters()
	if cfg.Mesh.Base == 0 && cfg.Mesh.PerHop == 0 {
		// Keep a caller-specified PortTime and fault model while
		// defaulting latencies.
		port, faults := cfg.Mesh.PortTime, cfg.Mesh.Faults
		cfg.Mesh = mesh.DefaultConfig(clusters)
		cfg.Mesh.PortTime = port
		cfg.Mesh.Faults = faults
	}
	cfg.Mesh.Nodes = clusters

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Mesh.Metrics = reg
	if cfg.Mesh.Faults.Enabled() && cfg.Mesh.Faults.Seed == 0 {
		// Derive the fault stream from the machine seed (stream -1 keeps it
		// clear of the per-cluster directory streams) so one -seed flag
		// still pins the whole run.
		cfg.Mesh.Faults.Seed = rng.Mix(cfg.Seed, -1)
	}
	if cfg.Check && cfg.Spans == nil {
		// The checker cross-checks span tiling, so the transaction
		// machinery must run even when the caller wants no span output.
		cfg.Spans = obs.NewSpanRecorder(obs.DiscardSpans, 0)
	}

	scheme, err := cfg.Scheme(clusters)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m := &Machine{
		cfg:         cfg,
		t:           cfg.Timing,
		eng:         &sim.Engine{},
		net:         mesh.New(cfg.Mesh),
		scheme:      scheme,
		reg:         reg,
		tr:          cfg.Trace,
		lockRetries: reg.Counter("lock.retries"),
		mergedReads: reg.Counter("rac.merged.reads"),
		extraInval:  reg.Counter("dir.inval.extraneous"),
		invalFan:    reg.Histogram("dir.inval.fanout", nil),
		replFan:     reg.Histogram("dir.repl.fanout", nil),
		debugBlock:  -1,
	}
	for k := range m.kindCtr {
		m.kindCtr[k] = reg.Counter(protocol.MsgKind(k).MetricName())
	}
	if cfg.Check {
		m.chk = check.NewRecorder(reg, cfg.CheckSink)
		m.recallsPending = make(map[int64]int)
	}
	if cfg.Spans != nil {
		m.spans = cfg.Spans
	}
	m.locks = protocol.NewLockTable(m.scheme)
	m.barriers = protocol.NewBarrierTable(cfg.Procs)

	// The serial engine runs every cluster against one shared clusterRes
	// wrapping the machine-level objects; the sharded core needs each
	// cluster single-writer, so each gets a private one.
	shared := &clusterRes{
		reg: reg, net: m.net, scheme: m.scheme,
		locks: m.locks, barriers: m.barriers,
		kindCtr:     m.kindCtr,
		lockRetries: m.lockRetries, mergedReads: m.mergedReads, extraInval: m.extraInval,
		invalFan: m.invalFan, replFan: m.replFan,
		invalHist: &m.invalHist, replHist: &m.replHist,
		readLat: &m.readLat, writeLat: &m.writeLat,
	}
	shared.initObsHists(&cfg)
	shards := 0
	if cfg.Shards > 0 {
		if r := shardBlockReason(&cfg); r != "" {
			m.fallback = r
		} else {
			shards = cfg.Shards
			if shards > clusters {
				shards = clusters
			}
		}
	}

	for c := 0; c < clusters; c++ {
		res := shared
		if shards > 0 {
			res = newClusterRes(&cfg, clusters)
		}
		var dir sparse.Directory
		if cfg.Overflow != nil {
			dir = sparse.NewOverflow(sparse.OverflowConfig{
				Ptrs:        cfg.Overflow.Ptrs,
				Nodes:       clusters,
				WideEntries: cfg.Overflow.WideEntries,
				Assoc:       cfg.Overflow.Assoc,
				Policy:      cfg.Overflow.Policy,
				Seed:        rng.Mix(cfg.Seed, int64(c)),
				Metrics:     res.reg,
			})
		} else if cfg.Sparse.Entries > 0 {
			assoc := cfg.Sparse.Assoc
			if assoc == 0 {
				assoc = 4 // the paper's main sparse setting
			}
			dir = sparse.New(sparse.Config{
				Scheme:  res.scheme,
				Entries: cfg.Sparse.Entries,
				Assoc:   assoc,
				Policy:  cfg.Sparse.Policy,
				Seed:    rng.Mix(cfg.Seed, int64(c)),
				Metrics: res.reg,
			})
		} else {
			dir = sparse.NewFullMap(res.scheme, res.reg)
		}
		gate := protocol.NewGate()
		gate.Waits = res.reg.Counter("gate.waits")
		rac := protocol.NewRAC()
		rac.Pend = res.reg.Gauge("rac.pending")
		if m.chk != nil {
			cid := c
			gate.Anomaly = func(op string, block int64) { m.protoAnomaly(cid, op, block) }
			rac.Anomaly = func(op string, block int64) { m.protoAnomaly(cid, op, block) }
		}
		cl := &clusterNode{
			id:            c,
			res:           res,
			dir:           dir,
			gate:          gate,
			rac:           rac,
			pendingReads:  make(map[int64][]*proc),
			poisonedReads: make(map[int64]bool),
			pendingWrite:  make(map[int64]bool),
			writeWaiters:  make(map[int64][]mshrWaiter),
			treeArrived:   make(map[int64]int),
			treeWaiting:   make(map[int64][]*proc),
			wbExpected:    make(map[int64]int),
		}
		if shards > 0 {
			cl.shard = c % shards
		}
		m.clusters = append(m.clusters, cl)
	}
	for p := 0; p < cfg.Procs; p++ {
		cl := m.clusters[p/cfg.ProcsPerCluster]
		pr := &proc{id: p, cl: cl, h: cache.NewHierarchy(cfg.Cache)}
		pr.stepFn = func() { m.stepProc(pr) }
		pr.ackFn = func() { m.ackArrived(pr) }
		cl.procs = append(cl.procs, pr)
		m.procs = append(m.procs, pr)
	}
	if shards > 0 {
		m.shard = newShardedCore(m, shards)
	}
	if m.net.FaultsEnabled() {
		m.faultsOn = true
		m.inflight = make(map[uint64]*netMsg)
		m.retryCnt = reg.Counter("net.retry.count")
		m.retryGiveup = reg.Counter("net.retry.giveup")
		m.dupSuppressed = reg.Counter("net.dup.suppressed")
		if m.cfg.Retry.MaxRetries == 0 {
			m.cfg.Retry.MaxRetries = DefaultMaxRetries
		}
		if m.cfg.StuckBudget == 0 {
			m.cfg.StuckBudget = DefaultStuckBudget
		}
	}
	return m, nil
}

// debugf records a diagnostic event for the debugged block.
func (m *Machine) debugf(b int64, format string, args ...any) {
	if b != m.debugBlock {
		return
	}
	m.debugLog = append(m.debugLog, fmt.Sprintf("t=%d: ", m.eng.Now())+fmt.Sprintf(format, args...))
}

// Scheme returns the machine's directory entry scheme.
func (m *Machine) Scheme() core.Scheme { return m.scheme }

// Shards reports the worker count the machine actually runs with (0 = the
// serial engine).
func (m *Machine) Shards() int {
	if m.shard == nil {
		return 0
	}
	return m.shard.n
}

// FallbackReason reports why a requested sharded run (Config.Shards > 0)
// fell back to the serial engine, or "" if it did not.
func (m *Machine) FallbackReason() string { return m.fallback }

// nextKey returns the cluster's next event ordering key: the scheduling
// cluster in the high bits, its per-cluster sequence below. Keys are unique
// per cluster and ordered first by cluster id on ties, so the total
// (time, key) event order depends only on per-cluster scheduling order —
// never on which shard ran first — which is what makes sharded results
// independent of the shard count.
func (c *clusterNode) nextKey() uint64 {
	c.evSeq++
	return uint64(c.id)<<40 | c.evSeq
}

// now returns the current simulation time in cluster c's context: the
// owning shard's wheel time on the sharded core, the global engine time on
// the serial engine. Every protocol event runs in the context of exactly
// one cluster, so passing that cluster is always possible.
func (m *Machine) now(c *clusterNode) sim.Time {
	if s := m.shard; s != nil {
		return s.wheels[c.shard].Now()
	}
	return m.eng.Now()
}

// at schedules fn at absolute time t in cluster c's context.
func (m *Machine) at(c *clusterNode, t sim.Time, fn sim.Event) {
	if s := m.shard; s != nil {
		s.wheels[c.shard].AtKey(t, c.nextKey(), fn)
		return
	}
	m.eng.At(t, fn)
}

// after schedules fn delay cycles from now in cluster c's context.
func (m *Machine) after(c *clusterNode, delay sim.Time, fn sim.Event) {
	m.at(c, m.now(c)+delay, fn)
}

// xat schedules fn at absolute time t in cluster to's context, from
// cluster from's context — the one legal way to cross clusters without a
// counted protocol message (used where the serial engine runs home-side
// bookkeeping inside a reply closure at the requester). On the sharded
// core t must be at least the conservative lookahead past from's current
// time; callers derive t from a mesh latency, which guarantees it.
func (m *Machine) xat(from, to *clusterNode, t sim.Time, fn sim.Event) {
	if s := m.shard; s != nil {
		s.relay(from, to, t, fn)
		return
	}
	m.eng.At(t, fn)
}

// block converts a byte address to a block number.
func (m *Machine) block(addr int64) int64 { return addr / int64(m.cfg.Block) }

// home returns the cluster holding block's memory and directory entry.
// Memory is distributed round-robin by block, as in the paper's simulator.
func (m *Machine) home(block int64) int {
	return int(uint64(block) % uint64(len(m.clusters)))
}

// dirKey converts a global block number to the home-local block index the
// directory is addressed with. Blocks homed at cluster c are exactly those
// congruent to c modulo the cluster count, so the low bits carry no
// information; a sparse directory indexed by the raw block number would
// alias every local block into one set.
func (m *Machine) dirKey(block int64) int64 {
	return block / int64(len(m.clusters))
}

// keyBlock is the inverse of dirKey for blocks homed at cluster c.
func (m *Machine) keyBlock(key int64, c int) int64 {
	return key*int64(len(m.clusters)) + int64(c)
}

// dirEntry returns the directory entry for a global block number (a
// convenience for tests and validators). It peeks: recency state and the
// dir.* counters are untouched, so validators never perturb the run.
func (m *Machine) dirEntry(block int64) core.Entry {
	h := m.clusters[m.home(block)]
	return h.dir.Peek(m.dirKey(block))
}

// busOp reserves cluster c's bus for dur cycles starting no earlier than
// now, FCFS, and returns the completion time.
func (m *Machine) busOp(c *clusterNode, dur sim.Time) sim.Time {
	start := m.now(c)
	if c.busFree > start {
		start = c.busFree
	}
	c.busFree = start + dur
	c.busBusy += dur
	return c.busFree
}

// dirOp reserves cluster c's directory controller, FCFS.
func (m *Machine) dirOp(c *clusterNode, dur sim.Time) sim.Time {
	start := m.now(c)
	if c.dirFree > start {
		start = c.dirFree
	}
	c.dirFree = start + dur
	c.dirBusy += dur
	return c.dirFree
}

// occupyDir extends cluster c's directory busy window by dur without
// waiting for it (used to model the finite invalidation send rate).
func (m *Machine) occupyDir(c *clusterNode, dur sim.Time) {
	if now := m.now(c); c.dirFree < now {
		c.dirFree = now
	}
	c.dirFree += dur
	c.dirBusy += dur
}

// send counts one protocol message and schedules its arrival.
func (m *Machine) send(kind protocol.MsgKind, from, to int, arrive func()) {
	m.sendTx(kind, from, to, nil, arrive)
}

// sendTx is send with transaction context: under the fault model the
// message travels as a recoverable envelope (see net.go) whose retries are
// annotated onto tx as net.recovery spans. With faults off it is exactly
// the pre-fault-layer path — no envelope, no extra state, no RNG draws —
// so fault-free runs stay byte-identical.
func (m *Machine) sendTx(kind protocol.MsgKind, from, to int, tx *txState, arrive func()) {
	if from == to {
		panic(fmt.Sprintf("machine: message %v from cluster %d to itself", kind, from))
	}
	fc := m.clusters[from]
	fc.res.kindCtr[kind].Inc()
	if m.faultsOn {
		m.sendReliable(kind, from, to, tx, arrive)
		return
	}
	if s := m.shard; s != nil {
		now := s.wheels[fc.shard].Now()
		s.relay(fc, m.clusters[to], fc.res.net.SendAt(now, from, to), arrive)
		return
	}
	m.eng.At(m.net.SendAt(m.eng.Now(), from, to), arrive)
}

// trace emits one structured event when tracing is on. The nil test is the
// whole disabled-path cost. node is always the executing cluster, so on
// the sharded core the event is buffered in that cluster's shard, stamped
// with the firing position, and replayed in canonical order at quiescence
// (see shardobs.go).
func (m *Machine) trace(kind obs.EventKind, node int, block, arg int64) {
	if m.tr == nil {
		return
	}
	if s := m.shard; s != nil {
		c := m.clusters[node]
		w := s.wheels[c.shard]
		s.obsBuf[c.shard].pushEv(keyedEvent{
			key: w.FiringKey(),
			ev:  obs.Event{T: uint64(w.Now()), Node: int32(node), Kind: kind, Block: block, Arg: arg},
		})
		return
	}
	m.tr.Emit(obs.Event{T: uint64(m.eng.Now()), Node: int32(node), Kind: kind, Block: block, Arg: arg})
}

// MetricsSnapshot freezes the machine's metrics registry — every named
// counter, gauge and histogram the run recorded. After a sharded run it is
// the merge of the per-cluster registries.
func (m *Machine) MetricsSnapshot() obs.Snapshot {
	if m.merged != nil {
		return *m.merged
	}
	return m.reg.Snapshot()
}

// FlushTrace drains the tracer's pending events to its sink and reports
// the first sink error. It is safe to call with tracing disabled.
func (m *Machine) FlushTrace() error { return m.tr.Flush() }

// FlushSpans drains the span recorder's pending spans to its sink and
// reports the first sink error. It is safe to call with spans disabled.
func (m *Machine) FlushSpans() error { return m.spans.Flush() }

// complete schedules p's next reference at time at.
func (m *Machine) complete(p *proc, at sim.Time) {
	m.at(p.cl, at, p.stepFn)
}

// stepProc issues p's next reference, or retires p.
func (m *Machine) stepProc(p *proc) {
	now := m.now(p.cl)
	p.lastProgress = now
	if p.opPending {
		p.opPending = false
		if p.opWrite {
			p.cl.res.writeLat.Add(m.cycleDelta(now, p.opStart, "write latency"))
		} else {
			p.cl.res.readLat.Add(m.cycleDelta(now, p.opStart, "read latency"))
		}
	}
	ref, ok := p.stream.Next()
	if !ok {
		if p.pendingAcks > 0 {
			p.drainToFinish = true
			return
		}
		m.finishProc(p)
		return
	}
	switch ref.Op {
	case tango.Read:
		m.access(p, false, ref.Addr)
	case tango.Write:
		m.access(p, true, ref.Addr)
	case tango.Lock:
		m.fence(p, func() { m.lockAcquire(p, ref.Addr, false) })
	case tango.Unlock:
		m.fence(p, func() { m.lockRelease(p, ref.Addr) })
	case tango.Barrier:
		m.fence(p, func() { m.barrierArrive(p, ref.Addr) })
	default:
		panic(fmt.Sprintf("machine: unknown op %v", ref.Op))
	}
}

func (m *Machine) finishProc(p *proc) {
	p.done = true
	p.finish = m.now(p.cl)
}

// fence runs fn once p's outstanding invalidation acknowledgements have
// drained — DASH's release-consistency fence at synchronization points.
func (m *Machine) fence(p *proc, fn func()) {
	if p.pendingAcks == 0 {
		if m.chk != nil {
			m.chk.Drained(p.id, uint64(m.eng.Now()))
		}
		fn()
		return
	}
	if p.afterDrain != nil {
		if m.chk != nil {
			m.chk.Violationf(check.RuleProtocol, int32(p.cl.id), -1, uint64(m.eng.Now()),
				"double fence: proc %d reached a second synchronization point with one already pending", p.id)
		}
		panic(fmt.Sprintf("machine: double fence at proc %d", p.id))
	}
	p.afterDrain = fn
}

// ackArrived records one invalidation acknowledgement for p's oldest write.
func (m *Machine) ackArrived(p *proc) {
	p.lastProgress = m.now(p.cl)
	p.pendingAcks--
	if m.chk != nil {
		m.chk.AckArrived(p.id, uint64(m.eng.Now()))
	}
	if p.pendingAcks < 0 {
		panic(fmt.Sprintf("machine: negative pending acks at proc %d", p.id))
	}
	if p.pendingAcks == 0 {
		if m.chk != nil {
			m.chk.Drained(p.id, uint64(m.eng.Now()))
		}
		if fn := p.afterDrain; fn != nil {
			p.afterDrain = nil
			fn()
		}
		if p.drainToFinish {
			p.drainToFinish = false
			m.finishProc(p)
		}
	}
}

// Run executes workload w to completion and returns the measurements.
func (m *Machine) Run(w *tango.Workload) (*Result, error) {
	if w.Procs() != m.cfg.Procs {
		return nil, fmt.Errorf("machine: workload has %d streams, machine has %d procs", w.Procs(), m.cfg.Procs)
	}
	for i, p := range m.procs {
		p.stream = tango.NewStream(w.Streams[i])
		m.at(p.cl, 0, p.stepFn)
	}
	if m.cfg.SampleEvery > 0 {
		if s := m.shard; s != nil {
			for _, c := range m.clusters {
				c := c
				s.wheels[c.shard].AtKey(m.cfg.SampleEvery, uint64(c.id)<<40, func() { m.sampleCluster(c) })
			}
		} else {
			m.eng.At(m.cfg.SampleEvery, m.sampleQueues)
		}
	}
	if m.cfg.Live != nil {
		defer m.publishLive(true)
	}
	if err := m.runCore(); err != nil {
		return nil, err
	}
	for _, p := range m.procs {
		if !p.done {
			if m.faultsOn || m.cfg.StuckBudget > 0 {
				// The event queue drained with work remaining: a message was
				// abandoned after its retry budget, so the dependent
				// transaction can never complete. Report it like a watchdog
				// catch, with the full dump.
				m.abort(fmt.Sprintf("event queue drained with proc %d unfinished (%d refs remaining, %d acks pending) — undeliverable message",
					p.id, p.stream.Remaining(), p.pendingAcks))
				return nil, m.aborted
			}
			return nil, fmt.Errorf("machine: deadlock — proc %d stuck with %d refs remaining, %d acks pending",
				p.id, p.stream.Remaining(), p.pendingAcks)
		}
	}
	m.finishChecks()
	return m.result(), nil
}
