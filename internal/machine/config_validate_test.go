package machine

import (
	"strings"
	"testing"

	"dircoh/internal/cache"
)

// TestConfigValidate covers the flag-boundary rejections Validate added
// for the typed-error sweep: each bad configuration must produce an error
// naming the offending field, and New must refuse the same input.
func TestConfigValidate(t *testing.T) {
	base := testConfig(4, FullVec)
	if err := base.Validate(); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := base
		f(&c)
		return c
	}
	cases := []struct {
		name, want string
		cfg        Config
	}{
		{"zero procs", "Procs", mut(func(c *Config) { c.Procs = 0 })},
		{"indivisible clustering", "divisible", mut(func(c *Config) { c.ProcsPerCluster = 3 })},
		{"zero block", "Block", mut(func(c *Config) { c.Block = 0; c.Cache = cache.Config{} })},
		{"nil scheme", "Scheme", mut(func(c *Config) { c.Scheme = nil })},
		{"sparse+overflow", "mutually exclusive", mut(func(c *Config) {
			c.Sparse = SparseConfig{Entries: 4}
			c.Overflow = &OverflowDirConfig{Ptrs: 1, WideEntries: 4}
		})},
		{"negative sparse entries", "Sparse.Entries", mut(func(c *Config) { c.Sparse.Entries = -1 })},
		{"cache/machine block mismatch", "differs", mut(func(c *Config) { c.Cache.Block = 32 })},
		{"bad cache geometry", "L1", mut(func(c *Config) { c.Cache.L1Assoc = 3 })},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error mentioning %q", tc.name, err, tc.want)
			continue
		}
		if _, nerr := New(tc.cfg); nerr == nil {
			t.Errorf("%s: New accepted a config Validate rejects", tc.name)
		}
	}
}

func TestParseFault(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Fault
	}{{"", FaultNone}, {"none", FaultNone}, {"drop-inval", FaultDropInval}, {"skip-recall", FaultSkipRecallInval}} {
		f, err := ParseFault(tc.in)
		if err != nil || f != tc.want {
			t.Errorf("ParseFault(%q) = %v, %v; want %v", tc.in, f, err, tc.want)
		}
		if tc.in != "" && f.String() != tc.in && tc.in != "none" {
			t.Errorf("round trip: %q -> %v -> %q", tc.in, f, f.String())
		}
	}
	if _, err := ParseFault("explode"); err == nil {
		t.Error("unknown fault accepted")
	}
}
