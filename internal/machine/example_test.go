package machine_test

import (
	"fmt"

	"dircoh/internal/apps"
	"dircoh/internal/machine"
)

// Build the paper's machine, run a workload, and read the measurements.
func Example() {
	cfg := machine.DefaultConfig(machine.CoarseVec2)
	cfg.Procs = 8

	m, err := machine.New(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	w := apps.Uniform(apps.UniformConfig{Procs: 8, Blocks: 64, Refs: 500, WriteFrac: 2, Seed: 3})
	r, err := m.Run(w)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := m.CheckCoherence(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("scheme:", r.Scheme)
	fmt.Println("completed:", r.ExecTime > 0 && r.Msgs.Total() > 0)
	// Output:
	// scheme: Dir3CV2
	// completed: true
}
