package machine

import (
	"fmt"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/sim"
)

// Fault selects a deliberate protocol mutation, used by the stress harness
// and the checker's own tests to prove the invariant checks actually fire.
// A fault is injected exactly once per run (the first opportunity), keeps
// the acknowledgement flowing so the machine never deadlocks, and leaves a
// stale cached copy for the checker to find.
type Fault int

const (
	// FaultNone runs the protocol unmodified.
	FaultNone Fault = iota
	// FaultDropInval drops the cache update of the first directed
	// invalidation (ownership grants and write fan-outs), leaving a stale
	// shared or dirty copy behind while the acknowledgement is still sent.
	FaultDropInval
	// FaultSkipRecallInval drops the cache update of the first
	// replacement-recall invalidation (sparse directory evictions), so the
	// victim block stays cached after its directory entry is reused.
	FaultSkipRecallInval
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDropInval:
		return "drop-inval"
	case FaultSkipRecallInval:
		return "skip-recall"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// ParseFault parses the -fault flag syntax used by protostress.
func ParseFault(s string) (Fault, error) {
	switch s {
	case "", "none":
		return FaultNone, nil
	case "drop-inval":
		return FaultDropInval, nil
	case "skip-recall":
		return FaultSkipRecallInval, nil
	default:
		return FaultNone, fmt.Errorf("machine: unknown fault %q (want none, drop-inval or skip-recall)", s)
	}
}

// Violations returns the violations the run's invariant checker recorded
// (empty when checking is off; capped at an internal limit —
// ViolationCount reports the true total).
func (m *Machine) Violations() []check.Violation {
	if m.chk == nil {
		return nil
	}
	return m.chk.Violations()
}

// ViolationCount returns the total number of invariant violations recorded.
func (m *Machine) ViolationCount() uint64 {
	if m.chk == nil {
		return 0
	}
	return m.chk.Count()
}

// CheckErr summarizes the run's invariant checking as an error: nil when
// checking is off or clean, otherwise the first sink write error or a
// description of the first violation.
func (m *Machine) CheckErr() error {
	if m.chk == nil {
		return nil
	}
	if err := m.chk.SinkErr(); err != nil {
		return err
	}
	if n := m.chk.Count(); n > 0 {
		v := m.chk.Violations()[0]
		return fmt.Errorf("machine: %d coherence invariant violations (first: %v)", n, v)
	}
	return nil
}

// protoAnomaly reports a Gate/RAC state-machine anomaly through the checker
// (the protocol package then panics, so the violation record carries the
// cycle and transaction context the bare panic string cannot).
func (m *Machine) protoAnomaly(cluster int, op string, block int64) {
	m.chk.Violationf(check.RuleProtocol, int32(cluster), block, uint64(m.eng.Now()), "%s", op)
}

// cycleDelta returns end-start for a latency observation, clamping the
// negative deltas that previously underflowed uint64 (a zero-length or
// misordered phase) to 0 and, when checking is on, recording which counter
// pair went backwards.
func (m *Machine) cycleDelta(end, start sim.Time, what string) uint64 {
	if end < start {
		if m.chk != nil {
			m.chk.Violationf(check.RuleLatency, -1, -1, uint64(end),
				"%s observation ends at t=%d before its start t=%d; clamped to 0", what, end, start)
		}
		return 0
	}
	return uint64(end - start)
}

// applyInval is invalidateCluster for directed invalidations when fault
// injection or checking may be active: it drops the cache update once if
// the configured fault matches (recall tells replacement recalls apart
// from ownership/write-fan-out invalidations), and replays the extraneous
// test independently so Finish can audit dir.inval.extraneous.
func (m *Machine) applyInval(c *clusterNode, b int64, recall bool) {
	if m.cfg.Fault != FaultNone && !m.faultFired {
		want := FaultDropInval
		if recall {
			want = FaultSkipRecallInval
		}
		if m.cfg.Fault == want {
			m.faultFired = true
			m.debugf(b, "fault %v: dropped invalidation at c%d", m.cfg.Fault, c.id)
			return
		}
	}
	if m.chk != nil && m.shadowMiss(c, b) {
		m.chk.ExtraInval()
	}
	m.invalidateCluster(c, b, true)
}

// shadowMiss reports whether a directed invalidation of b at c is about to
// find neither a cached copy nor a pending read — the checker's independent
// recount of invalidateCluster's extraneous-invalidation test. Inclusion
// makes the L2 state authoritative for presence.
func (m *Machine) shadowMiss(c *clusterNode, b int64) bool {
	for _, q := range c.procs {
		if q.h.State(b) != cache.Invalid {
			return false
		}
	}
	if _, ok := c.pendingReads[b]; ok {
		return false
	}
	return true
}

// invalApplied records a directed invalidation arriving at its target and
// re-checks the block (a no-op until the last in-flight invalidation for
// the block has landed).
func (m *Machine) invalApplied(b int64) {
	if m.chk == nil {
		return
	}
	m.chk.InvalApplied(b, uint64(m.eng.Now()))
	m.checkBlock(b)
}

// checkBlock asserts block b's steady-state invariants. Blocks with a
// transaction in flight — gated at the home, tracked by the home's RAC, or
// with directed invalidations still traveling — are legitimately in
// transition and are skipped; every transition's settle point calls back
// here, so the assertions still run as soon as the block quiesces.
//
// Two invariant families are checked:
//
//   - Single writer: at most one cache anywhere holds the block Dirty, and
//     a dirty copy excludes every other copy.
//   - Directory coverage: a copy cached outside the home cluster must be
//     recorded at the home directory, either as a sharer or as the dirty
//     owner (imprecise schemes over-record, never under-record), and a
//     remote dirty copy must be recorded as exactly the dirty owner.
//
// The directions left unchecked are the protocol's documented slack: the
// directory may over-record (stale sharer bits for silently dropped clean
// victims, coarse regions, broadcast sets), and home-cluster copies need no
// entry at all.
func (m *Machine) checkBlock(b int64) {
	chk := m.chk
	if chk == nil {
		return
	}
	h := m.clusters[m.home(b)]
	if h.gate.Busy(b) || h.rac.Tracking(b) || chk.Inflight(b) > 0 {
		return
	}
	now := uint64(m.eng.Now())
	copies := m.blockCopies(b)
	check.SingleWriter(copies, func(cl int, detail string) {
		chk.Violationf(check.RuleSingleWriter, int32(cl), b, now, "%s", detail)
	})
	if len(copies) == 0 {
		return
	}
	check.Coverage(h.id, copies, m.entryView(h, b), func(cl int, detail string) {
		chk.Violationf(check.RuleCoverage, int32(cl), b, now, "%s", detail)
	})
}

// blockCopies collects every live cached copy of block b into the pure
// view the check predicates consume, reusing a scratch buffer.
func (m *Machine) blockCopies(b int64) []check.Copy {
	m.copyBuf = m.copyBuf[:0]
	for _, p := range m.procs {
		st := p.h.State(b)
		if st == cache.Invalid {
			continue
		}
		cs := check.CopyShared
		if st == cache.Dirty {
			cs = check.CopyDirty
		}
		m.copyBuf = append(m.copyBuf, check.Copy{Proc: p.id, Cluster: p.cl.id, State: cs})
	}
	return m.copyBuf
}

// entryView projects block b's home directory entry into the predicates'
// observable form. It peeks, so building the view never perturbs the run.
func (m *Machine) entryView(h *clusterNode, b int64) check.EntryView {
	e := h.dir.Peek(m.dirKey(b))
	if e == nil {
		return check.EntryView{}
	}
	return check.EntryView{
		Present:  true,
		Dirty:    e.Dirty(),
		Owner:    e.Owner(),
		IsSharer: e.IsSharer,
	}
}

// checkRecallClean asserts that a completed directory-entry recall left no
// orphaned copy of the victim block outside the home cluster: the entry's
// slot was reused and the remaining state discarded, so a surviving remote
// copy nothing tracks is permanently incoherent (§4.2's correctness
// condition for sparse replacement).
//
// Two kinds of surviving copy are legitimate, not orphaned. While the
// recall sat queued behind the block's gate, a replayed request may have
// re-allocated the block into a fresh directory entry and installed a copy
// that entry covers. And under heavy set pressure that fresh entry may
// itself already be reclaimed, so the copy's tracking has moved to a
// second, still-pending recall for the same block (recallsPending).
func (m *Machine) checkRecallClean(h *clusterNode, vb int64) {
	chk := m.chk
	if chk == nil {
		return
	}
	if m.recallsPending[vb] > 0 {
		return
	}
	if chk.Inflight(vb) > 0 {
		// A directed invalidation for the block is still traveling (a
		// write fan-out acknowledged to the requester, not the home, or
		// a fault-delayed retry) and will collect the surviving copy;
		// invalApplied re-checks when the last one lands.
		return
	}
	now := uint64(m.eng.Now())
	check.RecallClean(h.id, m.blockCopies(vb), m.entryView(h, vb), func(cl int, detail string) {
		chk.Violationf(check.RuleRecall, int32(cl), vb, now, "%s", detail)
	})
}

// finishChecks runs the end-of-run conservation audits (no invalidation in
// flight, no acknowledgement lost, extraneous-invalidation recount, span
// trees terminated) and a final sweep of every cached block's invariants.
func (m *Machine) finishChecks() {
	if m.chk == nil {
		return
	}
	seen := make(map[int64]bool)
	for _, p := range m.procs {
		p.h.ForEach(func(b int64, _ cache.State) {
			if !seen[b] {
				seen[b] = true
				m.checkBlock(b)
			}
		})
	}
	m.chk.Finish(m.extraInval.Value(), uint64(m.eng.Now()))
}
