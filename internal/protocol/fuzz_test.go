package protocol

import (
	"strings"
	"testing"
)

// TestGateAnomalyCallback verifies the Anomaly hook fires with the
// offending op and block before each gate panic, so the machine can
// attach transaction context to the abort.
func TestGateAnomalyCallback(t *testing.T) {
	cases := []struct {
		name, wantOp string
		trip         func(g *Gate)
	}{
		{"double lock", "Gate.Lock", func(g *Gate) { g.Lock(3); g.Lock(3) }},
		{"wait free", "Gate.Wait", func(g *Gate) { g.Wait(3, func() {}) }},
		{"unlock free", "Gate.Unlock", func(g *Gate) { g.Unlock(3) }},
	}
	for _, tc := range cases {
		g := NewGate()
		var gotOp string
		var gotBlock int64
		g.Anomaly = func(op string, block int64) { gotOp, gotBlock = op, block }
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic expected even with Anomaly set", tc.name)
				}
			}()
			tc.trip(g)
		}()
		if !strings.Contains(gotOp, tc.wantOp) || gotBlock != 3 {
			t.Errorf("%s: Anomaly saw (%q, %d), want (%s*, 3)", tc.name, gotOp, gotBlock, tc.wantOp)
		}
	}
}

// TestRACAnomalyCallback mirrors TestGateAnomalyCallback for the RAC.
func TestRACAnomalyCallback(t *testing.T) {
	cases := []struct {
		name, wantOp string
		trip         func(r *RAC)
	}{
		{"zero count", "RAC.Start", func(r *RAC) { r.Start(5, 0) }},
		{"double start", "RAC.Start", func(r *RAC) { r.Start(5, 1); r.Start(5, 2) }},
		{"untracked ack", "RAC.Ack", func(r *RAC) { r.Ack(5) }},
	}
	for _, tc := range cases {
		r := NewRAC()
		var gotOp string
		var gotBlock int64
		r.Anomaly = func(op string, block int64) { gotOp, gotBlock = op, block }
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: panic expected even with Anomaly set", tc.name)
				}
			}()
			tc.trip(r)
		}()
		if !strings.Contains(gotOp, tc.wantOp) || gotBlock != 5 {
			t.Errorf("%s: Anomaly saw (%q, %d), want (%s*, 5)", tc.name, gotOp, gotBlock, tc.wantOp)
		}
	}
}

// FuzzGate drives byte-encoded legal op sequences — locks, waiters that
// may re-lock on replay, unlocks — over a few blocks, against a direct
// model of the gate's contract: waiters replay FIFO until one re-locks;
// state is garbage-collected once idle.
func FuzzGate(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0x01, 0x42, 0x02})
	f.Add([]byte{0x10, 0x51, 0x92, 0xd1, 0x12})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const blocks = 4
		g := NewGate()
		type waiter struct {
			id, block int
			relock    bool
		}
		var ran, wantRan []int
		busy := [blocks]bool{}       // model lock state
		queues := [blocks][]waiter{} // model FIFO queues
		modelUnlock := func(b int) {
			busy[b] = false
			for !busy[b] && len(queues[b]) > 0 {
				w := queues[b][0]
				queues[b] = queues[b][1:]
				wantRan = append(wantRan, w.id)
				if w.relock {
					busy[b] = true
				}
			}
		}
		nextID := 0
		addWaiter := func(b int, relock bool) {
			id := nextID
			nextID++
			queues[b] = append(queues[b], waiter{id: id, block: b, relock: relock})
			g.Wait(int64(b), func() {
				ran = append(ran, id)
				if relock {
					g.Lock(int64(b))
				}
			})
		}
		for _, op := range ops {
			b := int(op) & 0x3
			relock := op&0x80 != 0
			switch (op >> 4) & 0x7 {
			case 0, 1: // lock if free
				if !busy[b] {
					g.Lock(int64(b))
					busy[b] = true
				}
			case 2, 3: // enqueue a waiter while busy
				if busy[b] {
					addWaiter(b, relock)
				}
			default: // unlock if held
				if busy[b] {
					g.Unlock(int64(b))
					modelUnlock(b)
				}
			}
			for i := 0; i < blocks; i++ {
				if got := g.Busy(int64(i)); got != busy[i] {
					t.Fatalf("block %d: Busy=%v, model says %v", i, got, busy[i])
				}
				if got, want := g.Pending(int64(i)), len(queues[i]); got != want {
					t.Fatalf("block %d: Pending=%d, model says %d", i, got, want)
				}
			}
		}
		// Drain: every queued waiter must eventually run, in FIFO order.
		for b := 0; b < blocks; b++ {
			for busy[b] {
				g.Unlock(int64(b))
				modelUnlock(b)
			}
		}
		if len(ran) != len(wantRan) {
			t.Fatalf("%d waiters ran, model ran %d", len(ran), len(wantRan))
		}
		for i := range ran {
			if ran[i] != wantRan[i] {
				t.Fatalf("replay order %v, model says %v", ran, wantRan)
			}
		}
	})
}

// FuzzRAC drives legal Start/Ack sequences against a plain counter map,
// checking completion signalling, Tracking, and the peak watermark.
func FuzzRAC(f *testing.F) {
	f.Add([]byte{0x13, 0x01, 0x01, 0x23, 0x02})
	f.Add([]byte{0x41, 0x04, 0x04, 0x04, 0x04})
	f.Fuzz(func(t *testing.T, ops []byte) {
		r := NewRAC()
		model := map[int64]int{}
		peak := 0
		for _, op := range ops {
			b := int64(op & 0x7)
			if _, tracked := model[b]; !tracked {
				n := 1 + int(op>>3)&0x3
				r.Start(b, n)
				model[b] = n
				if len(model) > peak {
					peak = len(model)
				}
			} else {
				done := r.Ack(b)
				model[b]--
				wantDone := model[b] == 0
				if wantDone {
					delete(model, b)
				}
				if done != wantDone {
					t.Fatalf("Ack(%d): done=%v, model says %v", b, done, wantDone)
				}
			}
			for blk := int64(0); blk < 8; blk++ {
				_, want := model[blk]
				if got := r.Tracking(blk); got != want {
					t.Fatalf("Tracking(%d)=%v, model says %v", blk, got, want)
				}
			}
		}
		if r.Peak() != peak {
			t.Fatalf("Peak=%d, model says %d", r.Peak(), peak)
		}
	})
}
