package protocol

import "dircoh/internal/core"

// LockTable implements DASH's queued directory locks (§7 of the paper).
// Waiters are recorded in a directory entry of the machine's active scheme,
// so the grant behaviour degrades exactly as the paper describes: a full
// bit vector grants a single node; a coarse vector in coarse mode wakes a
// whole region, whose nodes re-contend.
type LockTable struct {
	scheme core.Scheme
	locks  map[int64]*lockState
}

type lockState struct {
	held      bool
	holder    core.NodeID
	waiters   core.Entry
	waitProcs map[core.NodeID][]int // node -> procs blocked there
}

// NewLockTable returns a lock table whose waiter sets use scheme.
func NewLockTable(scheme core.Scheme) *LockTable {
	return &LockTable{scheme: scheme, locks: make(map[int64]*lockState)}
}

func (t *LockTable) state(addr int64) *lockState {
	st, ok := t.locks[addr]
	if !ok {
		st = &lockState{waitProcs: make(map[core.NodeID][]int)}
		t.locks[addr] = st
	}
	return st
}

// Held reports whether the lock at addr is held.
func (t *LockTable) Held(addr int64) bool {
	st, ok := t.locks[addr]
	return ok && st.held
}

// Acquire attempts to take the lock for proc running on node. On success
// granted is true. On failure the proc is queued; any waiters evicted from
// the waiter entry (Dir_iNB overflow) are returned in woken and must be
// sent LockWake messages so they retry (otherwise they would be lost).
func (t *LockTable) Acquire(addr int64, node core.NodeID, proc int) (granted bool, woken []core.NodeID) {
	st := t.state(addr)
	if !st.held {
		st.held = true
		st.holder = node
		return true, nil
	}
	if st.waiters == nil {
		st.waiters = t.scheme.NewEntry()
	}
	evicted := st.waiters.AddSharer(node)
	st.waitProcs[node] = append(st.waitProcs[node], proc)
	for _, ev := range evicted {
		if len(st.waitProcs[ev]) > 0 {
			woken = append(woken, ev)
		}
	}
	return false, woken
}

// Grant describes the outcome of a Release.
type Grant struct {
	// Direct, when true, means the lock was handed straight to Proc on
	// Node (precise waiter representation, §7's full-vector case).
	Direct bool
	Node   core.NodeID
	Proc   int
	// Wake lists nodes that must be told to retry (coarse region or
	// broadcast waiter representation). Nodes without actual waiters
	// still receive a message — that is the coarse vector's imprecision.
	Wake []core.NodeID
}

// Release releases the lock at addr. If waiters exist, the grant set is
// popped from the waiter entry and returned. TakeWaiters below converts
// woken nodes into runnable procs.
func (t *LockTable) Release(addr int64) Grant {
	st := t.state(addr)
	if !st.held {
		panic("protocol: Release of free lock")
	}
	st.held = false
	if st.waiters == nil || st.waiters.Empty() {
		return Grant{}
	}
	nodes := st.waiters.PopGrant()
	if len(nodes) == 1 && len(st.waitProcs[nodes[0]]) > 0 {
		// Precise single-node grant: hand the lock over directly.
		n := nodes[0]
		proc := st.waitProcs[n][0]
		st.waitProcs[n] = st.waitProcs[n][1:]
		if len(st.waitProcs[n]) > 0 {
			// Other procs on n still wait: keep the node queued.
			st.waiters.AddSharer(n)
		}
		st.held = true
		st.holder = n
		return Grant{Direct: true, Node: n, Proc: proc}
	}
	return Grant{Wake: nodes}
}

// TakeWaiters removes and returns the procs blocked on addr at node; they
// must retry acquisition. Called when a LockWake arrives at node.
func (t *LockTable) TakeWaiters(addr int64, node core.NodeID) []int {
	st := t.state(addr)
	procs := st.waitProcs[node]
	delete(st.waitProcs, node)
	return procs
}

// BarrierTable implements a centralized barrier: each participant sends an
// arrival to the barrier's home; the last arrival releases everyone.
type BarrierTable struct {
	expected int
	m        map[int64]*barrierState
}

type barrierState struct {
	procs []int
}

// NewBarrierTable returns a table expecting n participants per barrier.
func NewBarrierTable(n int) *BarrierTable {
	if n <= 0 {
		panic("protocol: barrier needs positive participant count")
	}
	return &BarrierTable{expected: n, m: make(map[int64]*barrierState)}
}

// Arrive records proc's arrival at the barrier at addr. When the last
// participant arrives, the full list of procs to release is returned and
// the barrier resets for reuse.
func (t *BarrierTable) Arrive(addr int64, proc int) (release []int) {
	st, ok := t.m[addr]
	if !ok {
		st = &barrierState{}
		t.m[addr] = st
	}
	st.procs = append(st.procs, proc)
	if len(st.procs) == t.expected {
		release = st.procs
		delete(t.m, addr)
	}
	return release
}

// Waiting returns the number of procs currently waiting at addr.
func (t *BarrierTable) Waiting(addr int64) int {
	if st, ok := t.m[addr]; ok {
		return len(st.procs)
	}
	return 0
}
