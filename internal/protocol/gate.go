package protocol

import (
	"fmt"

	"dircoh/internal/obs"
)

// Gate serializes conflicting transactions on the same memory block at its
// home. A transaction that moves ownership (or a sparse-directory
// replacement with outstanding invalidations) locks the block; requests
// arriving meanwhile are queued and replayed, in order, when the gate
// unlocks. This models DASH's pending/RAC-based serialization without its
// NAK-and-retry traffic.
type Gate struct {
	m map[int64]*gateState

	// Waits, when non-nil, counts transactions queued behind a busy
	// block ("gate.waits" in the machine registry).
	Waits *obs.Counter

	// Anomaly, when non-nil, is called just before the gate panics on a
	// state-machine violation (locking a busy block, waiting on or
	// unlocking a non-busy one), giving the owner a chance to record a
	// structured check.Violation with transaction context before the
	// abort. The panic still happens: an inconsistent gate cannot
	// continue.
	Anomaly func(op string, block int64)
}

type gateState struct {
	busy bool
	q    []func()
}

// NewGate returns an empty gate table.
func NewGate() *Gate { return &Gate{m: make(map[int64]*gateState)} }

// Busy reports whether block is currently locked.
func (g *Gate) Busy(block int64) bool {
	st, ok := g.m[block]
	return ok && st.busy
}

// Lock marks block busy. It panics if already busy — callers must check
// Busy (or be running as the replayed head of the queue).
func (g *Gate) Lock(block int64) {
	st := g.m[block]
	if st == nil {
		st = &gateState{}
		g.m[block] = st
	}
	if st.busy {
		g.anomaly("Gate.Lock on busy block", block)
	}
	st.busy = true
}

// Wait enqueues fn to be replayed when block unlocks.
func (g *Gate) Wait(block int64, fn func()) {
	st := g.m[block]
	if st == nil || !st.busy {
		g.anomaly("Gate.Wait on non-busy block", block)
	}
	if g.Waits != nil {
		g.Waits.Inc()
	}
	st.q = append(st.q, fn)
}

// Unlock clears the busy state and replays queued transactions in order
// until one of them re-locks the block (or the queue drains).
func (g *Gate) Unlock(block int64) {
	st := g.m[block]
	if st == nil || !st.busy {
		g.anomaly("Gate.Unlock on non-busy block", block)
	}
	st.busy = false
	for !st.busy && len(st.q) > 0 {
		fn := st.q[0]
		st.q = st.q[1:]
		fn()
	}
	if !st.busy && len(st.q) == 0 {
		delete(g.m, block)
	}
}

// anomaly reports a gate state-machine violation and aborts.
func (g *Gate) anomaly(op string, block int64) {
	if g.Anomaly != nil {
		g.Anomaly(op, block)
	}
	panic(fmt.Sprintf("protocol: %s %d", op, block))
}

// Pending returns the number of queued transactions for block.
func (g *Gate) Pending(block int64) int {
	if st, ok := g.m[block]; ok {
		return len(st.q)
	}
	return 0
}

// BusyBlocks returns every currently locked block, sorted — diagnostic
// introspection for the liveness watchdog's dump.
func (g *Gate) BusyBlocks() []int64 {
	var out []int64
	for b, st := range g.m {
		if st.busy {
			out = append(out, b)
		}
	}
	sortInt64s(out)
	return out
}

// RAC is the Remote Access Cache bookkeeping used when a sparse directory
// replaces an entry (§7): it tracks, per block, how many invalidation
// acknowledgements are still outstanding before the replacement completes.
type RAC struct {
	pending map[int64]int
	peak    int

	// Pend, when non-nil, mirrors the number of tracked blocks
	// ("rac.pending" in the machine registry); its high-water mark
	// equals Peak.
	Pend *obs.Gauge

	// Anomaly, when non-nil, is called just before the RAC panics on a
	// state-machine violation (starting a non-positive or duplicate
	// tracking, acknowledging an untracked block), mirroring Gate.Anomaly.
	Anomaly func(op string, block int64)
}

// NewRAC returns an empty RAC.
func NewRAC() *RAC { return &RAC{pending: make(map[int64]int)} }

// Start begins tracking n outstanding acknowledgements for block. n must
// be positive and the block must not already be tracked.
func (r *RAC) Start(block int64, n int) {
	if n <= 0 {
		r.anomaly("RAC.Start needs a positive count for block", block)
	}
	if _, ok := r.pending[block]; ok {
		r.anomaly("RAC.Start on already-tracked block", block)
	}
	r.pending[block] = n
	if len(r.pending) > r.peak {
		r.peak = len(r.pending)
	}
	if r.Pend != nil {
		r.Pend.Set(int64(len(r.pending)))
	}
}

// Ack records one acknowledgement; it reports whether the block's
// replacement is now complete.
func (r *RAC) Ack(block int64) (done bool) {
	n, ok := r.pending[block]
	if !ok {
		r.anomaly("RAC.Ack on untracked block", block)
	}
	n--
	if n == 0 {
		delete(r.pending, block)
		if r.Pend != nil {
			r.Pend.Set(int64(len(r.pending)))
		}
		return true
	}
	r.pending[block] = n
	return false
}

// anomaly reports a RAC state-machine violation and aborts.
func (r *RAC) anomaly(op string, block int64) {
	if r.Anomaly != nil {
		r.Anomaly(op, block)
	}
	panic(fmt.Sprintf("protocol: %s %d", op, block))
}

// Tracking reports whether block has outstanding acknowledgements.
func (r *RAC) Tracking(block int64) bool {
	_, ok := r.pending[block]
	return ok
}

// Peak returns the maximum number of simultaneously tracked blocks.
func (r *RAC) Peak() int { return r.peak }

// Outstanding returns the acknowledgements still owed for block (0 when
// untracked).
func (r *RAC) Outstanding(block int64) int { return r.pending[block] }

// TrackedBlocks returns every block with outstanding acknowledgements,
// sorted — diagnostic introspection for the liveness watchdog's dump.
func (r *RAC) TrackedBlocks() []int64 {
	var out []int64
	for b := range r.pending {
		out = append(out, b)
	}
	sortInt64s(out)
	return out
}

// sortInt64s is an allocation-free insertion sort: the diagnostic lists
// it orders are tiny.
func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
