// Package protocol holds the building blocks of the DASH-style directory
// protocol that are independent of event scheduling: the message taxonomy
// and its mapping onto the paper's four accounting classes, per-block
// serialization gates, the Remote Access Cache (RAC) bookkeeping used for
// sparse-directory replacement, and the queued lock and barrier tables.
//
// The machine package drives these structures from the event simulator.
package protocol

import (
	"fmt"
	"strings"

	"dircoh/internal/stats"
)

// MsgKind is a fine-grained protocol message type.
type MsgKind int

const (
	// ReadReq asks the home for a shared copy.
	ReadReq MsgKind = iota
	// WriteReq asks the home for an exclusive copy (data + ownership).
	WriteReq
	// UpgradeReq asks the home for ownership of an already-shared copy.
	UpgradeReq
	// WritebackReq returns a dirty victim's data to the home.
	WritebackReq
	// SharingWB returns dirty data to the home while keeping a shared
	// copy (sent by a dirty cluster serving a remote read).
	SharingWB
	// FwdReadReq is a read forwarded by the home to the dirty cluster.
	FwdReadReq
	// FwdWriteReq is a write forwarded by the home to the dirty cluster.
	FwdWriteReq
	// LockReq asks the lock's home for acquisition.
	LockReq
	// UnlockReq releases a lock at its home.
	UnlockReq
	// BarrierArrive announces arrival at a barrier.
	BarrierArrive

	// DataReply carries a shared copy to the requester.
	DataReply
	// OwnershipReply carries data/ownership and the invalidation count.
	OwnershipReply
	// LockGrant informs a waiter it now holds the lock.
	LockGrant
	// LockWake tells a region of waiters to retry acquisition.
	LockWake
	// BarrierRelease releases a barrier participant.
	BarrierRelease

	// Inval invalidates cached copies of a block at one cluster.
	Inval
	// Flush recalls a dirty block (sparse-directory victim).
	Flush

	// AckMsg acknowledges an Inval or Flush.
	AckMsg

	numMsgKinds
)

// NumMsgKinds is the number of fine-grained message kinds; kinds are the
// contiguous range [0, NumMsgKinds), so callers can build per-kind tables.
const NumMsgKinds = int(numMsgKinds)

var msgKindNames = [numMsgKinds]string{
	"ReadReq", "WriteReq", "UpgradeReq", "WritebackReq", "SharingWB",
	"FwdReadReq", "FwdWriteReq", "LockReq", "UnlockReq", "BarrierArrive",
	"DataReply", "OwnershipReply", "LockGrant", "LockWake", "BarrierRelease",
	"Inval", "Flush", "AckMsg",
}

func (k MsgKind) String() string {
	if k < 0 || k >= numMsgKinds {
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
	return msgKindNames[k]
}

// ParseMsgKind parses a MsgKind's String form ("ReadReq", "AckMsg", ...).
// It is the inverse of String over the valid range, so message names in
// stored traces and model-checker counterexamples stay loadable.
func ParseMsgKind(s string) (MsgKind, error) {
	for k, name := range msgKindNames {
		if name == s {
			return MsgKind(k), nil
		}
	}
	return 0, fmt.Errorf("protocol: unknown message kind %q", s)
}

// msgMetricNames caches the per-kind registry counter names so hot paths
// never build strings.
var msgMetricNames = func() [numMsgKinds]string {
	var names [numMsgKinds]string
	for k := range names {
		names[k] = "msg." + strings.ToLower(msgKindNames[k])
	}
	return names
}()

// MetricName returns the kind's metrics-registry counter name, e.g.
// "msg.readreq" for ReadReq.
func (k MsgKind) MetricName() string {
	if k < 0 || k >= numMsgKinds {
		panic(fmt.Sprintf("protocol: unknown message kind %d", int(k)))
	}
	return msgMetricNames[k]
}

// Class maps a message kind to the paper's §5 accounting class.
func (k MsgKind) Class() stats.MsgClass {
	switch k {
	case ReadReq, WriteReq, UpgradeReq, WritebackReq, SharingWB,
		FwdReadReq, FwdWriteReq, LockReq, UnlockReq, BarrierArrive:
		return stats.Request
	case DataReply, OwnershipReply, LockGrant, LockWake, BarrierRelease:
		return stats.Reply
	case Inval, Flush:
		return stats.Invalidation
	case AckMsg:
		return stats.Ack
	default:
		panic(fmt.Sprintf("protocol: unknown message kind %d", int(k)))
	}
}
