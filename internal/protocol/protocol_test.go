package protocol

import (
	"math/rand"
	"testing"

	"dircoh/internal/core"
	"dircoh/internal/stats"
)

func TestMsgKindClassTotalCoverage(t *testing.T) {
	// Every kind maps to a class and renders a name.
	for k := MsgKind(0); k < numMsgKinds; k++ {
		_ = k.Class()
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	if MsgKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestMsgKindClasses(t *testing.T) {
	cases := map[MsgKind]stats.MsgClass{
		ReadReq:        stats.Request,
		WritebackReq:   stats.Request, // paper: writebacks count as requests
		LockReq:        stats.Request,
		DataReply:      stats.Reply,
		OwnershipReply: stats.Reply,
		LockGrant:      stats.Reply,
		Inval:          stats.Invalidation,
		Flush:          stats.Invalidation,
		AckMsg:         stats.Ack,
	}
	for k, want := range cases {
		if got := k.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", k, got, want)
		}
	}
}

func TestGateSerialization(t *testing.T) {
	g := NewGate()
	if g.Busy(1) {
		t.Fatal("fresh gate busy")
	}
	g.Lock(1)
	if !g.Busy(1) {
		t.Fatal("gate should be busy")
	}
	var order []int
	g.Wait(1, func() { order = append(order, 1) })
	g.Wait(1, func() { order = append(order, 2); g.Lock(1) }) // re-locks
	g.Wait(1, func() { order = append(order, 3) })
	if g.Pending(1) != 3 {
		t.Fatalf("Pending = %d, want 3", g.Pending(1))
	}
	g.Unlock(1)
	// 1 and 2 ran; 2 re-locked so 3 is still queued.
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if !g.Busy(1) || g.Pending(1) != 1 {
		t.Fatal("gate state wrong after partial drain")
	}
	g.Unlock(1)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if g.Busy(1) {
		t.Fatal("gate should be free")
	}
}

func TestGatePanics(t *testing.T) {
	g := NewGate()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Lock should panic")
			}
		}()
		g.Lock(5)
		g.Lock(5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Wait on free block should panic")
			}
		}()
		g.Wait(6, func() {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Unlock on free block should panic")
			}
		}()
		g.Unlock(7)
	}()
}

func TestRAC(t *testing.T) {
	r := NewRAC()
	r.Start(10, 3)
	if !r.Tracking(10) {
		t.Fatal("should track block 10")
	}
	if r.Ack(10) || r.Ack(10) {
		t.Fatal("not done yet")
	}
	if !r.Ack(10) {
		t.Fatal("third ack should complete")
	}
	if r.Tracking(10) {
		t.Fatal("should be done")
	}
	r.Start(11, 1)
	r.Start(12, 1)
	if r.Peak() < 2 {
		t.Fatalf("Peak = %d, want >= 2", r.Peak())
	}
}

func TestRACPanics(t *testing.T) {
	r := NewRAC()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero count should panic")
			}
		}()
		r.Start(1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Start should panic")
			}
		}()
		r.Start(2, 1)
		r.Start(2, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Ack on untracked should panic")
			}
		}()
		r.Ack(99)
	}()
}

func TestLockBasicAcquireRelease(t *testing.T) {
	lt := NewLockTable(core.Must(core.NewFullVector(8)))
	granted, woken := lt.Acquire(100, 2, 20)
	if !granted || woken != nil {
		t.Fatal("free lock should grant immediately")
	}
	if !lt.Held(100) {
		t.Fatal("lock should be held")
	}
	g := lt.Release(100)
	if g.Direct || g.Wake != nil {
		t.Fatalf("grant = %+v, want empty", g)
	}
	if lt.Held(100) {
		t.Fatal("lock should be free")
	}
}

func TestLockDirectGrantFullVector(t *testing.T) {
	lt := NewLockTable(core.Must(core.NewFullVector(8)))
	lt.Acquire(100, 0, 0)
	if granted, _ := lt.Acquire(100, 3, 30); granted {
		t.Fatal("held lock should queue")
	}
	g := lt.Release(100)
	if !g.Direct || g.Node != 3 || g.Proc != 30 {
		t.Fatalf("grant = %+v, want direct to node 3 proc 30", g)
	}
	if !lt.Held(100) {
		t.Fatal("direct grant should keep lock held")
	}
	// Released again with no waiters: free.
	g = lt.Release(100)
	if g.Direct || g.Wake != nil {
		t.Fatalf("grant = %+v", g)
	}
}

func TestLockMultipleProcsSameNode(t *testing.T) {
	lt := NewLockTable(core.Must(core.NewFullVector(8)))
	lt.Acquire(100, 0, 0)
	lt.Acquire(100, 3, 30)
	lt.Acquire(100, 3, 31)
	g := lt.Release(100)
	if !g.Direct || g.Proc != 30 {
		t.Fatalf("grant = %+v, want proc 30", g)
	}
	g = lt.Release(100)
	if !g.Direct || g.Proc != 31 {
		t.Fatalf("grant = %+v, want proc 31 (requeued node)", g)
	}
}

func TestLockCoarseRegionWake(t *testing.T) {
	// Coarse vector with 1 pointer, region 2: two waiters overflow into
	// coarse mode; release wakes a whole region.
	lt := NewLockTable(core.Must(core.NewCoarseVector(1, 2, 8)))
	lt.Acquire(100, 0, 0)
	lt.Acquire(100, 4, 40)
	lt.Acquire(100, 6, 60) // overflow: waiters now coarse {region 2, region 3}
	g := lt.Release(100)
	if g.Direct {
		t.Fatalf("grant = %+v, want region wake", g)
	}
	if len(g.Wake) != 2 || g.Wake[0] != 4 || g.Wake[1] != 5 {
		t.Fatalf("Wake = %v, want region [4 5]", g.Wake)
	}
	// Node 4 has a real waiter; node 5 does not.
	if procs := lt.TakeWaiters(100, 4); len(procs) != 1 || procs[0] != 40 {
		t.Fatalf("TakeWaiters(4) = %v", procs)
	}
	if procs := lt.TakeWaiters(100, 5); len(procs) != 0 {
		t.Fatalf("TakeWaiters(5) = %v, want none", procs)
	}
	if lt.Held(100) {
		t.Fatal("region wake leaves lock free for re-contention")
	}
}

func TestLockNBEvictionWakes(t *testing.T) {
	lt := NewLockTable(core.Must(core.NewLimitedNoBroadcast(1, 8, core.VictimOldest, 1)))
	lt.Acquire(100, 0, 0)
	lt.Acquire(100, 1, 10)
	_, woken := lt.Acquire(100, 2, 20) // evicts node 1 from waiter entry
	if len(woken) != 1 || woken[0] != 1 {
		t.Fatalf("woken = %v, want [1]", woken)
	}
}

func TestReleaseFreeLockPanics(t *testing.T) {
	lt := NewLockTable(core.Must(core.NewFullVector(4)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lt.Release(55)
}

func TestBarrier(t *testing.T) {
	bt := NewBarrierTable(3)
	if rel := bt.Arrive(7, 0); rel != nil {
		t.Fatal("early release")
	}
	if rel := bt.Arrive(7, 1); rel != nil {
		t.Fatal("early release")
	}
	if bt.Waiting(7) != 2 {
		t.Fatalf("Waiting = %d", bt.Waiting(7))
	}
	rel := bt.Arrive(7, 2)
	if len(rel) != 3 {
		t.Fatalf("release = %v", rel)
	}
	if bt.Waiting(7) != 0 {
		t.Fatal("barrier should reset")
	}
	// Reusable.
	bt.Arrive(7, 5)
	if bt.Waiting(7) != 1 {
		t.Fatal("barrier not reusable")
	}
}

func TestBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrierTable(0)
}

// TestQuickGateReference drives the gate with random lock/wait/unlock
// sequences against a reference queue: waiters run in FIFO order, exactly
// once, and only while the gate is free.
func TestQuickGateReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		g := NewGate()
		const block = int64(7)
		var ran []int
		next := 0
		enqueued := 0
		locked := false
		for step := 0; step < 50; step++ {
			switch rng.Intn(3) {
			case 0: // lock if free
				if !locked && !g.Busy(block) {
					g.Lock(block)
					locked = true
				}
			case 1: // enqueue a waiter while busy
				if locked {
					id := enqueued
					enqueued++
					g.Wait(block, func() { ran = append(ran, id) })
				}
			case 2: // unlock and drain
				if locked {
					locked = false
					g.Unlock(block)
				}
			}
		}
		if locked {
			g.Unlock(block)
		}
		if len(ran) != enqueued {
			t.Fatalf("trial %d: %d waiters ran, %d enqueued", trial, len(ran), enqueued)
		}
		for _, id := range ran {
			if id != next {
				t.Fatalf("trial %d: waiter order %v not FIFO", trial, ran)
			}
			next++
		}
	}
}
