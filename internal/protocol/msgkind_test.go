package protocol

import "testing"

func TestParseMsgKindRoundTrip(t *testing.T) {
	for k := MsgKind(0); k < numMsgKinds; k++ {
		got, err := ParseMsgKind(k.String())
		if err != nil {
			t.Fatalf("ParseMsgKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseMsgKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestParseMsgKindUnknown(t *testing.T) {
	for _, s := range []string{"", "readreq", "MsgKind(3)", "Nak"} {
		if k, err := ParseMsgKind(s); err == nil {
			t.Errorf("ParseMsgKind(%q) = %v, want error", s, k)
		}
	}
}
