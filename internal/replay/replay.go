// Package replay pins the textual grammar of cmd/protostress replay
// lines. protostress prints a Line for every failing trial, and
// cmd/modelcheck prints one next to each counterexample so a model-level
// finding can immediately be hammered dynamically; the parser keeps the
// grammar honest (a printed line always loads back), so reproduction
// lines stored in bug reports survive flag refactors.
package replay

import (
	"fmt"
	"strconv"
	"strings"
)

// Line is one protostress invocation in replay-line form. The zero value
// is not meaningful; build lines with explicit fields or Parse. Field
// defaults applied by Parse mirror the command's flag defaults, so a
// hand-shortened line means what the command would do.
type Line struct {
	Trials   int
	Seed     int64
	Procs    []int
	Refs     int
	Blocks   int
	Fault    string // "none", "drop-inval" or "skip-recall"
	Faults   string // mesh fault spec or "campaign"; empty omits the flag
	Wedge    bool
	NoCheck  bool // renders as -check=false; the checker is on by default
	Shards   int  // 0 omits the flag
	Parallel int  // 0 omits the flag
	Verbose  bool
}

// String renders the line exactly as protostress prints it.
func (l Line) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protostress -trials %d -seed %d -procs %s -refs %d -blocks %d -fault %s",
		l.Trials, l.Seed, joinInts(l.Procs), l.Refs, l.Blocks, l.Fault)
	if l.Faults != "" {
		fmt.Fprintf(&b, " -faults %s", l.Faults)
	}
	if l.Wedge {
		b.WriteString(" -wedge")
	}
	if l.NoCheck {
		b.WriteString(" -check=false")
	}
	if l.Shards > 0 {
		fmt.Fprintf(&b, " -shards %d", l.Shards)
	}
	if l.Parallel > 0 {
		fmt.Fprintf(&b, " -parallel %d", l.Parallel)
	}
	if l.Verbose {
		b.WriteString(" -v")
	}
	return b.String()
}

// Parse loads a replay line back into its fields. Unset flags take the
// command's defaults. Unknown flags, malformed values and out-of-range
// parameters are errors — the grammar is pinned, not merely suggested.
func Parse(s string) (Line, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || fields[0] != "protostress" {
		return Line{}, fmt.Errorf("replay: line must start with \"protostress\"")
	}
	l := Line{Trials: 64, Seed: 1, Procs: []int{4, 6, 8}, Refs: 300, Blocks: 24, Fault: "none"}
	i := 1
	value := func(flag string) (string, error) {
		if i >= len(fields) {
			return "", fmt.Errorf("replay: flag %s needs a value", flag)
		}
		v := fields[i]
		i++
		return v, nil
	}
	intValue := func(flag string) (int, error) {
		v, err := value(flag)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("replay: flag %s wants a positive integer, got %q", flag, v)
		}
		return n, nil
	}
	for i < len(fields) {
		flag := fields[i]
		i++
		var err error
		switch flag {
		case "-trials":
			l.Trials, err = intValue(flag)
		case "-seed":
			var v string
			if v, err = value(flag); err == nil {
				l.Seed, err = strconv.ParseInt(v, 10, 64)
				if err != nil {
					err = fmt.Errorf("replay: flag -seed wants an integer, got %q", v)
				}
			}
		case "-procs":
			var v string
			if v, err = value(flag); err == nil {
				l.Procs, err = parseInts(v)
			}
		case "-refs":
			l.Refs, err = intValue(flag)
		case "-blocks":
			l.Blocks, err = intValue(flag)
		case "-fault":
			if l.Fault, err = value(flag); err == nil {
				switch l.Fault {
				case "none", "drop-inval", "skip-recall":
				default:
					err = fmt.Errorf("replay: unknown -fault %q (want none, drop-inval or skip-recall)", l.Fault)
				}
			}
		case "-faults":
			l.Faults, err = value(flag)
		case "-wedge":
			l.Wedge = true
		case "-check=false":
			l.NoCheck = true
		case "-check", "-check=true":
			l.NoCheck = false
		case "-shards":
			l.Shards, err = intValue(flag)
		case "-parallel":
			l.Parallel, err = intValue(flag)
		case "-v":
			l.Verbose = true
		default:
			err = fmt.Errorf("replay: unknown flag %q", flag)
		}
		if err != nil {
			return Line{}, err
		}
	}
	return l, nil
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("replay: bad -procs entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
