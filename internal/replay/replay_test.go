package replay

import (
	"reflect"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	lines := []Line{
		{Trials: 1, Seed: 7, Procs: []int{4, 6, 8}, Refs: 300, Blocks: 24, Fault: "none", Verbose: true},
		{Trials: 1, Seed: -3, Procs: []int{2}, Refs: 40, Blocks: 3, Fault: "drop-inval", Verbose: true},
		{Trials: 64, Seed: 1, Procs: []int{4, 6, 8}, Refs: 300, Blocks: 24, Fault: "skip-recall",
			Faults: "campaign", Verbose: true},
		{Trials: 2, Seed: 11, Procs: []int{8}, Refs: 100, Blocks: 12, Fault: "none", Wedge: true},
		{Trials: 5, Seed: 9, Procs: []int{4}, Refs: 50, Blocks: 8, Fault: "none", Parallel: 2},
	}
	for _, want := range lines {
		s := want.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip of %q:\n got %+v\nwant %+v", s, got, want)
		}
	}
}

// TestParsePinnedGrammar loads the exact line shape cmd/protostress
// prints (see its report function); a change there must update this test
// and the parser together.
func TestParsePinnedGrammar(t *testing.T) {
	got, err := Parse("protostress -trials 1 -seed 1186580211934150 -procs 4,6,8 -refs 300 -blocks 24 -fault none -faults campaign -v")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Line{Trials: 1, Seed: 1186580211934150, Procs: []int{4, 6, 8}, Refs: 300, Blocks: 24,
		Fault: "none", Faults: "campaign", Verbose: true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v\nwant %+v", got, want)
	}
}

func TestParseDefaults(t *testing.T) {
	got, err := Parse("protostress")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Line{Trials: 64, Seed: 1, Procs: []int{4, 6, 8}, Refs: 300, Blocks: 24, Fault: "none"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v\nwant %+v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"stress -trials 1",
		"protostress -trials",
		"protostress -trials x",
		"protostress -trials 0",
		"protostress -seed",
		"protostress -seed seven",
		"protostress -procs 4,,8",
		"protostress -fault explode",
		"protostress -frobnicate 3",
	}
	for _, s := range bad {
		if l, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, l)
		}
	}
}
