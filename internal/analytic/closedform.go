package analytic

import "fmt"

// This file gives closed-form counterparts to the Monte-Carlo model of
// Figure 2: the expected size of the candidate sharer set ("invalidation
// targets before writer/home exclusion") for s uniformly random distinct
// sharers out of n nodes, under each representation. The property tests
// cross-validate InvalCurve against these formulas.

// ExpectedCandidatesFull returns E[|candidates|] for the full bit vector:
// the representation is exact.
func ExpectedCandidatesFull(n, s int) float64 {
	checkNS(n, s)
	return float64(s)
}

// ExpectedCandidatesBroadcast returns E[|candidates|] for Dir_iB: exact up
// to i sharers, the whole machine afterwards.
func ExpectedCandidatesBroadcast(ptrs, n, s int) float64 {
	checkNS(n, s)
	if s <= ptrs {
		return float64(s)
	}
	return float64(n)
}

// ExpectedCandidatesCV returns E[|candidates|] for Dir_iCV_r. Past the
// pointer capacity, each region of size r_j is covered iff at least one of
// the s sharers falls into it:
//
//	E = Σ_j r_j · (1 − C(n−r_j, s)/C(n, s))
func ExpectedCandidatesCV(ptrs, region, n, s int) float64 {
	checkNS(n, s)
	if region <= 0 {
		panic(&ArgError{Name: "region", Value: region})
	}
	if s <= ptrs {
		return float64(s)
	}
	e := 0.0
	for lo := 0; lo < n; lo += region {
		size := region
		if lo+size > n {
			size = n - lo
		}
		e += float64(size) * (1 - hypergeomMissProb(n, s, size))
	}
	return e
}

// hypergeomMissProb returns C(n-k, s)/C(n, s): the probability that none
// of s uniform distinct draws out of n lands in a fixed set of k elements.
func hypergeomMissProb(n, s, k int) float64 {
	if s > n-k {
		return 0
	}
	p := 1.0
	for j := 0; j < k; j++ {
		p *= float64(n-s-j) / float64(n-j)
	}
	return p
}

func checkNS(n, s int) {
	if n <= 0 || s < 0 || s > n {
		panic(fmt.Sprintf("analytic: invalid nodes=%d sharers=%d", n, s))
	}
}
