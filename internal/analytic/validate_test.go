package analytic

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateTrials(t *testing.T) {
	if err := ValidateTrials(1); err != nil {
		t.Fatalf("1 trial is legal: %v", err)
	}
	for _, n := range []int{0, -5} {
		err := ValidateTrials(n)
		var ae *ArgError
		if !errors.As(err, &ae) || ae.Name != "trials" || ae.Value != n {
			t.Fatalf("ValidateTrials(%d) = %v, want *ArgError{trials,%d}", n, err, n)
		}
		if !strings.Contains(err.Error(), "trials") {
			t.Fatalf("error should name the parameter: %v", err)
		}
	}
}

func TestValidateRegion(t *testing.T) {
	if err := ValidateRegion(2); err != nil {
		t.Fatalf("region 2 is legal: %v", err)
	}
	var ae *ArgError
	if err := ValidateRegion(0); !errors.As(err, &ae) || ae.Name != "region" {
		t.Fatalf("ValidateRegion(0) = %v, want *ArgError{region,0}", err)
	}
}
