package analytic

import (
	"strings"
	"testing"

	"dircoh/internal/core"
)

func TestInvalCurveFullVectorIsIdeal(t *testing.T) {
	// The full bit vector sends invalidations to exactly the sharers
	// (minus the home when it happens to be one): s-1 <= avg <= s.
	curve := InvalCurve(core.Must(core.NewFullVector(16)), 400, 1)
	for s := 1; s < 16; s++ {
		if curve[s] > float64(s) || curve[s] < float64(s)-1 {
			t.Fatalf("full vector curve[%d] = %.2f, want within [s-1, s]", s, curve[s])
		}
	}
}

func TestInvalCurveBroadcastSaturates(t *testing.T) {
	// Dir3B with 32 nodes: once sharers exceed 3 pointers every event is
	// a broadcast to ~N-2 clusters (§6.1: "For most broadcasts, 30
	// clusters have to be invalidated" at 32 clusters).
	curve := InvalCurve(core.Must(core.NewLimitedBroadcast(3, 32)), 400, 1)
	for s := 1; s <= 3; s++ {
		if curve[s] > float64(s) {
			t.Fatalf("below-overflow curve[%d] = %.2f too high", s, curve[s])
		}
	}
	for s := 4; s < 32; s++ {
		// ~N-2, slightly above when the random home coincides with the
		// writer (then only one exclusion applies).
		if curve[s] < 29 || curve[s] > 30.2 {
			t.Fatalf("broadcast curve[%d] = %.2f, want ~30", s, curve[s])
		}
	}
}

func TestInvalCurveOrdering(t *testing.T) {
	// Figure 2's headline: full <= CV <= X <= B for every sharer count
	// beyond overflow (X is "only marginally better than broadcast").
	const n = 64
	full := InvalCurve(core.Must(core.NewFullVector(n)), 300, 1)
	cv := InvalCurve(core.Must(core.NewCoarseVector(3, 4, n)), 300, 1)
	x := InvalCurve(core.Must(core.NewSuperset(3, n)), 300, 1)
	b := InvalCurve(core.Must(core.NewLimitedBroadcast(3, n)), 300, 1)
	for s := 4; s < n; s++ {
		if !(full[s] <= cv[s]+0.5 && cv[s] <= x[s]+0.5 && x[s] <= b[s]+0.5) {
			t.Fatalf("ordering violated at s=%d: full=%.1f cv=%.1f x=%.1f b=%.1f",
				s, full[s], cv[s], x[s], b[s])
		}
	}
	// And the gaps are material in the middle of the range.
	if cv[16] >= x[16] || x[32] < b[32]*0.8 {
		t.Fatalf("expected CV well below X and X close to B: cv=%.1f x=%.1f b=%.1f",
			cv[16], x[16], b[32])
	}
}

func TestInvalCurveDeterministic(t *testing.T) {
	a := InvalCurve(core.Must(core.NewCoarseVector(3, 2, 16)), 100, 9)
	b := InvalCurve(core.Must(core.NewCoarseVector(3, 2, 16)), 100, 9)
	for s := range a {
		if a[s] != b[s] {
			t.Fatal("curve not deterministic for equal seeds")
		}
	}
}

func TestInvalCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InvalCurve(core.Must(core.NewFullVector(4)), 0, 1)
}

func TestFig2Table(t *testing.T) {
	tb := Fig2Table(32, 50, 1)
	s := tb.String()
	if !strings.Contains(s, "Dir3CV2") || !strings.Contains(s, "Dir32") {
		t.Fatalf("table missing schemes:\n%s", s)
	}
	tb64 := Fig2Table(64, 50, 1)
	if !strings.Contains(tb64.String(), "Dir3CV4") {
		t.Fatal("64-node table should use region 4")
	}
}

func TestOverheadDASHPrototype(t *testing.T) {
	// §3.1: 17 bits per 16-byte block = 13.3%.
	cfg := OverheadConfig{
		Procs: 64, ProcsPerCluster: 4,
		MemBytesPerProc: 16 << 20, CacheBytesPerProc: 256 << 10,
		BlockBytes: 16, Scheme: core.Must(core.NewFullVector(16)),
	}
	r := Overhead(cfg)
	if r.StateBits != 17 || r.TagBits != 0 {
		t.Fatalf("bits = %d+%d, want 17+0", r.StateBits, r.TagBits)
	}
	if r.OverheadPct < 13.2 || r.OverheadPct > 13.4 {
		t.Fatalf("overhead = %.2f%%, want 13.3%%", r.OverheadPct)
	}
	if r.Savings != 1 {
		t.Fatalf("non-sparse savings = %v, want 1", r.Savings)
	}
}

func TestSparseSavingsExample(t *testing.T) {
	// §5: 33 state bits + 6 tag bits per 64 blocks -> savings factor ~54.
	r := SparseSavingsExample()
	if r.StateBits != 33 || r.TagBits != 6 {
		t.Fatalf("bits = %d+%d, want 33+6", r.StateBits, r.TagBits)
	}
	if r.Savings < 54 || r.Savings > 55 {
		t.Fatalf("savings = %.1f, want ~54", r.Savings)
	}
}

func TestTable1RowsNearThirteenPercent(t *testing.T) {
	s := Table1().String()
	if !strings.Contains(s, "Dir16") || !strings.Contains(s, "sparse Dir8CV4") {
		t.Fatalf("table missing rows:\n%s", s)
	}
	// All three configurations were designed to stay around 13%.
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, "%") {
			continue
		}
		if !strings.Contains(line, "13.") && !strings.Contains(line, "12.") {
			t.Fatalf("overhead drifted from ~13%%: %q", line)
		}
	}
}

func TestOverheadSparsityReducesStorage(t *testing.T) {
	base := OverheadConfig{
		Procs: 256, ProcsPerCluster: 4,
		MemBytesPerProc: 16 << 20, CacheBytesPerProc: 256 << 10,
		BlockBytes: 16, Scheme: core.Must(core.NewFullVector(64)),
	}
	full := Overhead(base)
	base.Sparsity = 16
	sp := Overhead(base)
	if sp.OverheadPct >= full.OverheadPct/10 {
		t.Fatalf("sparsity 16 should cut overhead >10x: %.2f%% vs %.2f%%",
			sp.OverheadPct, full.OverheadPct)
	}
	if sp.Savings < 10 {
		t.Fatalf("savings = %.1f, want > 10", sp.Savings)
	}
}
