package analytic

import "fmt"

// ArgError reports a non-positive model parameter — the typed form of the
// package's argument panics, so command-line drivers can validate trials
// and region sizes at the flag boundary and print a usage message instead
// of a stack trace. The model functions themselves still panic (carrying
// an *ArgError as the panic value): direct library misuse is a programming
// error.
type ArgError struct {
	Name  string
	Value int
}

func (e *ArgError) Error() string {
	return fmt.Sprintf("analytic: %s must be positive (got %d)", e.Name, e.Value)
}

// ValidateTrials checks a Monte-Carlo trial count.
func ValidateTrials(trials int) error {
	if trials <= 0 {
		return &ArgError{Name: "trials", Value: trials}
	}
	return nil
}

// ValidateRegion checks a coarse-vector region size.
func ValidateRegion(region int) error {
	if region <= 0 {
		return &ArgError{Name: "region", Value: region}
	}
	return nil
}
