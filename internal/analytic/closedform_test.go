package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dircoh/internal/core"
)

// candidateMC measures E[|Sharers()|] for s random distinct sharers under
// the given scheme — the empirical counterpart of the closed forms.
func candidateMC(s core.Scheme, sharers, trials int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := s.Nodes()
	perm := make([]int, n)
	var total uint64
	for t := 0; t < trials; t++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		e := s.NewEntry()
		for _, node := range perm[:sharers] {
			e.AddSharer(node)
		}
		total += uint64(e.Count())
	}
	return float64(total) / float64(trials)
}

func TestClosedFormFullMatchesMC(t *testing.T) {
	scheme := core.Must(core.NewFullVector(24))
	for s := 1; s < 24; s += 4 {
		mc := candidateMC(scheme, s, 200, 1)
		cf := ExpectedCandidatesFull(24, s)
		if mc != cf {
			t.Fatalf("s=%d: MC=%v formula=%v", s, mc, cf)
		}
	}
}

func TestClosedFormBroadcastMatchesMC(t *testing.T) {
	scheme := core.Must(core.NewLimitedBroadcast(3, 24))
	for s := 1; s < 24; s += 3 {
		mc := candidateMC(scheme, s, 200, 1)
		cf := ExpectedCandidatesBroadcast(3, 24, s)
		if mc != cf {
			t.Fatalf("s=%d: MC=%v formula=%v", s, mc, cf)
		}
	}
}

func TestClosedFormCVMatchesMC(t *testing.T) {
	cases := []struct{ ptrs, region, n int }{
		{3, 2, 32},
		{3, 4, 64},
		{2, 3, 10}, // odd last region
		{1, 8, 20},
	}
	for _, c := range cases {
		scheme := core.Must(core.NewCoarseVector(c.ptrs, c.region, c.n))
		for s := 1; s <= c.n; s += 3 {
			mc := candidateMC(scheme, s, 3000, 7)
			cf := ExpectedCandidatesCV(c.ptrs, c.region, c.n, s)
			if math.Abs(mc-cf) > 0.35 {
				t.Fatalf("Dir%dCV%d n=%d s=%d: MC=%.3f formula=%.3f", c.ptrs, c.region, c.n, s, mc, cf)
			}
		}
	}
}

func TestClosedFormCVBoundaries(t *testing.T) {
	// All sharers: every region covered exactly.
	if got := ExpectedCandidatesCV(3, 2, 32, 32); got != 32 {
		t.Fatalf("full coverage = %v, want 32", got)
	}
	// At the pointer limit the representation is exact.
	if got := ExpectedCandidatesCV(3, 2, 32, 3); got != 3 {
		t.Fatalf("pointer mode = %v, want 3", got)
	}
	// Monotone in s.
	prev := 0.0
	for s := 1; s <= 32; s++ {
		cur := ExpectedCandidatesCV(3, 2, 32, s)
		if cur+1e-9 < prev {
			t.Fatalf("not monotone at s=%d: %v < %v", s, cur, prev)
		}
		prev = cur
	}
}

func TestHypergeomMissProb(t *testing.T) {
	// P(no draw hits a k-set) with s = n-k draws must still be positive;
	// with s > n-k it is impossible to miss.
	if p := hypergeomMissProb(10, 8, 3); p != 0 {
		t.Fatalf("miss prob = %v, want 0 (pigeonhole)", p)
	}
	// s=1: probability = (n-k)/n.
	if p := hypergeomMissProb(10, 1, 3); math.Abs(p-0.7) > 1e-12 {
		t.Fatalf("miss prob = %v, want 0.7", p)
	}
	// k=0: always misses.
	if p := hypergeomMissProb(10, 5, 0); p != 1 {
		t.Fatalf("miss prob = %v, want 1", p)
	}
}

// Property: CV expectation is sandwiched between exact and broadcast.
func TestQuickCVBetweenFullAndBroadcastClosedForm(t *testing.T) {
	f := func(sr, rr uint8) bool {
		n := 32
		s := 1 + int(sr)%n
		r := 1 + int(rr)%8
		cv := ExpectedCandidatesCV(3, r, n, s)
		return cv >= ExpectedCandidatesFull(n, s)-1e-9 &&
			cv <= ExpectedCandidatesBroadcast(3, n, s)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: larger regions never shrink the CV candidate set expectation
// (coarser regions are less precise) for region sizes dividing n.
func TestQuickCVMonotoneInRegion(t *testing.T) {
	f := func(sr uint8) bool {
		n := 32
		s := 4 + int(sr)%(n-4) // past the pointers
		prev := -1.0
		for _, r := range []int{1, 2, 4, 8, 16, 32} {
			cur := ExpectedCandidatesCV(3, r, n, s)
			if cur+1e-9 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClosedFormPanics(t *testing.T) {
	cases := []func(){
		func() { ExpectedCandidatesFull(0, 0) },
		func() { ExpectedCandidatesFull(4, 5) },
		func() { ExpectedCandidatesCV(3, 0, 8, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
