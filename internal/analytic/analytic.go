// Package analytic implements the paper's closed-form/Monte-Carlo models:
// the average-invalidations-vs-sharers curves of Figure 2 and the
// directory-memory-overhead arithmetic of Table 1 (and of the §5 sparse
// savings example).
package analytic

import (
	"fmt"
	"math/rand"

	"dircoh/internal/core"
	"dircoh/internal/stats"
)

// InvalCurve estimates, for each sharer count s = 1..nodes-1, the average
// number of invalidation messages a write to a block with s random sharers
// produces under the given scheme (Figure 2's methodology: "for each
// invalidation event, the sharers were randomly chosen and the number of
// invalidations required was recorded").
//
// The writer is drawn from the non-sharers; the writer's own cluster and
// the home cluster are excluded from the targets, as DASH excludes them
// ("the home cluster and the new owning cluster do not require an
// invalidation", §6.1).
func InvalCurve(scheme core.Scheme, trials int, seed int64) []float64 {
	n := scheme.Nodes()
	if trials <= 0 {
		panic(&ArgError{Name: "trials", Value: trials})
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n) // out[s] = average invals with s sharers
	perm := make([]int, n)
	for s := 1; s < n; s++ {
		var total uint64
		for t := 0; t < trials; t++ {
			// Random sharer set of size s plus a distinct writer.
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			e := scheme.NewEntry()
			for _, node := range perm[:s] {
				e.AddSharer(node)
			}
			writer := perm[s]
			home := rng.Intn(n)
			targets := e.Sharers()
			targets.Remove(writer)
			if home != writer {
				targets.Remove(home)
			}
			total += uint64(targets.Count())
		}
		out[s] = float64(total) / float64(trials)
	}
	return out
}

// Fig2Table renders Figure 2 (a: 32 nodes with Dir3CV2, b: 64 nodes with
// Dir3CV4) as a table of average invalidations per sharer count.
func Fig2Table(nodes, trials int, seed int64) *stats.Table {
	region := 2
	if nodes >= 64 {
		region = 4
	}
	schemes := []core.Scheme{
		core.NewLimitedBroadcast(3, nodes),
		core.NewSuperset(3, nodes),
		core.NewCoarseVector(3, region, nodes),
		core.NewFullVector(nodes),
	}
	header := []string{"sharers"}
	curves := make([][]float64, len(schemes))
	for i, s := range schemes {
		header = append(header, s.Name())
		curves[i] = InvalCurve(s, trials, seed)
	}
	tb := stats.NewTable(header...)
	for s := 1; s < nodes; s++ {
		row := []string{fmt.Sprintf("%d", s)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.2f", c[s]))
		}
		tb.AddRow(row...)
	}
	return tb
}

// OverheadConfig describes one machine row of Table 1.
type OverheadConfig struct {
	Procs             int
	ProcsPerCluster   int
	MemBytesPerProc   int64
	CacheBytesPerProc int64
	BlockBytes        int
	Scheme            core.Scheme // sized for Clusters() nodes
	Sparsity          int         // main-memory blocks per directory entry (0 or 1 = full directory)
}

// Clusters returns the cluster count of the configuration.
func (c *OverheadConfig) Clusters() int { return c.Procs / c.ProcsPerCluster }

// OverheadResult is the computed storage accounting.
type OverheadResult struct {
	StateBits   int     // directory state bits per entry (incl. dirty)
	TagBits     int     // sparse tag bits per entry (0 for full directories)
	EntryBits   int     // total bits per entry
	Entries     int64   // directory entries per cluster
	OverheadPct float64 // directory bits as % of main-memory bits
	Savings     float64 // storage ratio vs the same scheme non-sparse
}

func log2ceil(v int64) int {
	b := 0
	for x := v - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// Overhead computes the Table 1 accounting for one configuration.
func Overhead(cfg OverheadConfig) OverheadResult {
	if cfg.Sparsity <= 0 {
		cfg.Sparsity = 1
	}
	blocksPerCluster := cfg.MemBytesPerProc * int64(cfg.ProcsPerCluster) / int64(cfg.BlockBytes)
	var r OverheadResult
	r.StateBits = cfg.Scheme.BitsPerEntry()
	if cfg.Sparsity > 1 {
		r.TagBits = log2ceil(int64(cfg.Sparsity))
	}
	r.EntryBits = r.StateBits + r.TagBits
	r.Entries = blocksPerCluster / int64(cfg.Sparsity)
	memBits := blocksPerCluster * int64(cfg.BlockBytes) * 8
	dirBits := r.Entries * int64(r.EntryBits)
	r.OverheadPct = 100 * float64(dirBits) / float64(memBits)
	nonSparseBits := blocksPerCluster * int64(r.StateBits)
	r.Savings = float64(nonSparseBits) / float64(dirBits)
	return r
}

// Table1 reproduces the paper's Table 1: sample machine configurations
// with 16 MB of memory and 256 KB of cache per processor, 16-byte blocks
// and ≈13% directory overhead throughout.
func Table1() *stats.Table {
	tb := stats.NewTable("clusters", "procs", "memory(MB)", "cache(MB)", "block(B)", "scheme", "sparsity", "overhead")
	rows := []struct {
		procs    int
		scheme   func(clusters int) core.Scheme
		sparsity int
		label    string
	}{
		{64, func(n int) core.Scheme { return core.NewFullVector(n) }, 1, "Dir16"},
		{256, func(n int) core.Scheme { return core.NewFullVector(n) }, 4, "sparse Dir64"},
		{1024, func(n int) core.Scheme { return core.NewCoarseVector(8, 4, n) }, 4, "sparse Dir8CV4"},
	}
	for _, row := range rows {
		cfg := OverheadConfig{
			Procs:             row.procs,
			ProcsPerCluster:   4,
			MemBytesPerProc:   16 << 20,
			CacheBytesPerProc: 256 << 10,
			BlockBytes:        16,
			Sparsity:          row.sparsity,
		}
		cfg.Scheme = row.scheme(cfg.Clusters())
		r := Overhead(cfg)
		tb.AddRow(
			fmt.Sprintf("%d", cfg.Clusters()),
			fmt.Sprintf("%d", row.procs),
			fmt.Sprintf("%d", int64(row.procs)*16),
			fmt.Sprintf("%.0f", float64(row.procs)*0.25),
			"16",
			row.label,
			fmt.Sprintf("%d", row.sparsity),
			fmt.Sprintf("%.1f%%", r.OverheadPct),
		)
	}
	return tb
}

// SparseSavingsExample reproduces the §5 worked example: a full bit vector
// directory for 32 clusters at sparsity 64 keeps 32+1 state bits plus a
// 6-bit tag per entry, one entry per 64 blocks — a storage savings factor
// of about 54 versus the non-sparse directory.
func SparseSavingsExample() OverheadResult {
	cfg := OverheadConfig{
		Procs:             32,
		ProcsPerCluster:   1,
		MemBytesPerProc:   16 << 20,
		CacheBytesPerProc: 256 << 10,
		BlockBytes:        16,
		Scheme:            core.NewFullVector(32),
		Sparsity:          64,
	}
	return Overhead(cfg)
}
