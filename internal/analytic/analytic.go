// Package analytic implements the paper's closed-form/Monte-Carlo models:
// the average-invalidations-vs-sharers curves of Figure 2 and the
// directory-memory-overhead arithmetic of Table 1 (and of the §5 sparse
// savings example).
package analytic

import (
	"fmt"
	"math/rand"

	"dircoh/internal/core"
	"dircoh/internal/stats"
)

// InvalCurve estimates, for each sharer count s = 1..nodes-1, the average
// number of invalidation messages a write to a block with s random sharers
// produces under the given scheme (Figure 2's methodology: "for each
// invalidation event, the sharers were randomly chosen and the number of
// invalidations required was recorded").
//
// The writer is drawn from the non-sharers; the writer's own cluster and
// the home cluster are excluded from the targets, as DASH excludes them
// ("the home cluster and the new owning cluster do not require an
// invalidation", §6.1).
func InvalCurve(scheme core.Scheme, trials int, seed int64) []float64 {
	n := scheme.Nodes()
	if trials <= 0 {
		panic(&ArgError{Name: "trials", Value: trials})
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n) // out[s] = average invals with s sharers
	perm := make([]int, n)
	for s := 1; s < n; s++ {
		var total uint64
		for t := 0; t < trials; t++ {
			// Random sharer set of size s plus a distinct writer.
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			e := scheme.NewEntry()
			for _, node := range perm[:s] {
				e.AddSharer(node)
			}
			writer := perm[s]
			home := rng.Intn(n)
			targets := e.Sharers()
			targets.Remove(writer)
			if home != writer {
				targets.Remove(home)
			}
			total += uint64(targets.Count())
		}
		out[s] = float64(total) / float64(trials)
	}
	return out
}

// Fig2Table renders Figure 2 (a: 32 nodes with Dir3CV2, b: 64 nodes with
// Dir3CV4) as a table of average invalidations per sharer count.
func Fig2Table(nodes, trials int, seed int64) *stats.Table {
	region := 2
	if nodes >= 64 {
		region = 4
	}
	schemes := []core.Scheme{
		core.Must(core.NewLimitedBroadcast(3, nodes)),
		core.Must(core.NewSuperset(3, nodes)),
		core.Must(core.NewCoarseVector(3, region, nodes)),
		core.Must(core.NewFullVector(nodes)),
	}
	header := []string{"sharers"}
	curves := make([][]float64, len(schemes))
	for i, s := range schemes {
		header = append(header, s.Name())
		curves[i] = InvalCurve(s, trials, seed)
	}
	tb := stats.NewTable(header...)
	for s := 1; s < nodes; s++ {
		row := []string{fmt.Sprintf("%d", s)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.2f", c[s]))
		}
		tb.AddRow(row...)
	}
	return tb
}

// OverheadConfig describes one machine row of Table 1.
type OverheadConfig struct {
	Procs             int
	ProcsPerCluster   int
	MemBytesPerProc   int64
	CacheBytesPerProc int64
	BlockBytes        int
	Scheme            core.Scheme // sized for Clusters() nodes
	Sparsity          int         // main-memory blocks per directory entry (0 or 1 = full directory)
}

// Clusters returns the cluster count of the configuration.
func (c *OverheadConfig) Clusters() int { return c.Procs / c.ProcsPerCluster }

// OverheadResult is the computed storage accounting.
type OverheadResult struct {
	StateBits   int     // directory state bits per entry (incl. dirty)
	TagBits     int     // sparse tag bits per entry (0 for full directories)
	EntryBits   int     // total bits per entry
	Entries     int64   // directory entries per cluster
	OverheadPct float64 // directory bits as % of main-memory bits
	Savings     float64 // storage ratio vs the same scheme non-sparse
}

func log2ceil(v int64) int {
	b := 0
	for x := v - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// Overhead computes the Table 1 accounting for one configuration.
func Overhead(cfg OverheadConfig) OverheadResult {
	if cfg.Sparsity <= 0 {
		cfg.Sparsity = 1
	}
	blocksPerCluster := cfg.MemBytesPerProc * int64(cfg.ProcsPerCluster) / int64(cfg.BlockBytes)
	var r OverheadResult
	r.StateBits = cfg.Scheme.BitsPerEntry()
	if cfg.Sparsity > 1 {
		r.TagBits = log2ceil(int64(cfg.Sparsity))
	}
	r.EntryBits = r.StateBits + r.TagBits
	r.Entries = blocksPerCluster / int64(cfg.Sparsity)
	memBits := blocksPerCluster * int64(cfg.BlockBytes) * 8
	dirBits := r.Entries * int64(r.EntryBits)
	r.OverheadPct = 100 * float64(dirBits) / float64(memBits)
	nonSparseBits := blocksPerCluster * int64(r.StateBits)
	r.Savings = float64(nonSparseBits) / float64(dirBits)
	return r
}

// Table1Scheme returns the paper's Table 1 scheme choice and sparsity for
// a machine of the given processor count (4 processors per cluster): small
// machines afford a full, non-sparse bit vector; mid-size machines keep
// the full vector but go sparse; large machines need both sparsity and a
// coarse vector. This is the rule the paper's three sample rows instantiate
// at 64, 256 and 1024 processors, stated once so the table extends to any
// machine size instead of hardcoding the 1024-processor endpoint.
func Table1Scheme(procs int) (scheme core.Scheme, sparsity int, label string) {
	clusters := procs / 4
	switch {
	case procs <= 64:
		return core.Must(core.NewFullVector(clusters)), 1, fmt.Sprintf("Dir%d", clusters)
	case procs <= 256:
		return core.Must(core.NewFullVector(clusters)), 4, fmt.Sprintf("sparse Dir%d", clusters)
	default:
		return core.Must(core.NewCoarseVector(8, 4, clusters)), 4, "sparse Dir8CV4"
	}
}

// Table1 reproduces the paper's Table 1: sample machine configurations
// with 16 MB of memory and 256 KB of cache per processor, 16-byte blocks
// and ≈13% directory overhead throughout.
func Table1() *stats.Table {
	return Table1For([]int{64, 256, 1024})
}

// Table1For renders the Table 1 accounting for an arbitrary axis of
// processor counts, choosing each row's scheme via Table1Scheme — the
// parameterized form that extends the paper's table to 4096 processors
// and beyond.
func Table1For(procAxis []int) *stats.Table {
	tb := stats.NewTable("clusters", "procs", "memory(MB)", "cache(MB)", "block(B)", "scheme", "sparsity", "overhead")
	for _, procs := range procAxis {
		scheme, sparsity, label := Table1Scheme(procs)
		cfg := OverheadConfig{
			Procs:             procs,
			ProcsPerCluster:   4,
			MemBytesPerProc:   16 << 20,
			CacheBytesPerProc: 256 << 10,
			BlockBytes:        16,
			Scheme:            scheme,
			Sparsity:          sparsity,
		}
		r := Overhead(cfg)
		tb.AddRow(
			fmt.Sprintf("%d", cfg.Clusters()),
			fmt.Sprintf("%d", procs),
			fmt.Sprintf("%d", int64(procs)*16),
			fmt.Sprintf("%.0f", float64(procs)*0.25),
			"16",
			label,
			fmt.Sprintf("%d", sparsity),
			fmt.Sprintf("%.1f%%", r.OverheadPct),
		)
	}
	return tb
}

// EntryCostTable tabulates, for each cluster count on the axis, the
// hardware bits (BitsPerEntry) and simulator resident bytes (EntryBytes)
// of one directory entry under every registered scheme — the storage side
// of the scale story, regression-guarded by the sweep goldens.
func EntryCostTable(clusterAxis []int) *stats.Table {
	tb := stats.NewTable("clusters", "scheme", "bits/entry", "sim bytes/entry")
	for _, n := range clusterAxis {
		for _, name := range core.SchemeNames() {
			f := core.MustParse(name)
			s, err := f(n)
			if err != nil {
				tb.AddRow(fmt.Sprintf("%d", n), name, "-", "-")
				continue
			}
			tb.AddRow(
				fmt.Sprintf("%d", n),
				s.Name(),
				fmt.Sprintf("%d", s.BitsPerEntry()),
				fmt.Sprintf("%d", s.EntryBytes()),
			)
		}
	}
	return tb
}

// InvalAt estimates the average invalidation count for a single sharer
// count — one point of InvalCurve. The scale figures sample it at
// power-of-two sharer counts so the 1K–4K-node curves stay affordable
// (a full InvalCurve is O(nodes · trials · nodes)).
func InvalAt(scheme core.Scheme, sharers, trials int, seed int64) float64 {
	n := scheme.Nodes()
	if trials <= 0 {
		panic(&ArgError{Name: "trials", Value: trials})
	}
	if sharers < 1 || sharers >= n {
		panic(&ArgError{Name: "sharers", Value: sharers})
	}
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int, n)
	var total uint64
	for t := 0; t < trials; t++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		e := scheme.NewEntry()
		for _, node := range perm[:sharers] {
			e.AddSharer(node)
		}
		writer := perm[sharers]
		home := rng.Intn(n)
		targets := e.Sharers()
		targets.Remove(writer)
		if home != writer {
			targets.Remove(home)
		}
		total += uint64(targets.Count())
	}
	return float64(total) / float64(trials)
}

// SparseSavingsExample reproduces the §5 worked example: a full bit vector
// directory for 32 clusters at sparsity 64 keeps 32+1 state bits plus a
// 6-bit tag per entry, one entry per 64 blocks — a storage savings factor
// of about 54 versus the non-sparse directory.
func SparseSavingsExample() OverheadResult {
	cfg := OverheadConfig{
		Procs:             32,
		ProcsPerCluster:   1,
		MemBytesPerProc:   16 << 20,
		CacheBytesPerProc: 256 << 10,
		BlockBytes:        16,
		Scheme:            core.Must(core.NewFullVector(32)),
		Sparsity:          64,
	}
	return Overhead(cfg)
}
