package cache

import "testing"

func BenchmarkHierarchyHit(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	h.Fill(42, Shared, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(42, false, uint64(i))
	}
}

func BenchmarkHierarchyMissFill(b *testing.B) {
	h := NewHierarchy(Config{L1Size: 1 << 10, L1Assoc: 1, L2Size: 4 << 10, L2Assoc: 2, Block: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := int64(i % 4096)
		if h.Access(blk, false, uint64(i)) == Miss {
			h.Fill(blk, Shared, uint64(i))
		}
	}
}
