package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache { return NewCache(64, 16, 2) } // 4 lines, 2 sets of 2

func TestNewCacheGeometry(t *testing.T) {
	c := NewCache(256<<10, 16, 1)
	if c.Lines() != 16384 {
		t.Fatalf("Lines = %d, want 16384", c.Lines())
	}
}

func TestNewCachePanics(t *testing.T) {
	cases := []func(){
		func() { NewCache(0, 16, 1) },
		func() { NewCache(64, 0, 1) },
		func() { NewCache(64, 16, 0) },
		func() { NewCache(48, 16, 2) }, // 3 lines not divisible by 2-way
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFillLookupInvalidate(t *testing.T) {
	c := small()
	if c.State(5) != Invalid {
		t.Fatal("expected Invalid for absent block")
	}
	v := c.Fill(5, Shared, 1)
	if v.Valid {
		t.Fatal("no victim expected")
	}
	if c.State(5) != Shared {
		t.Fatal("expected Shared")
	}
	c.SetState(5, Dirty)
	if c.State(5) != Dirty {
		t.Fatal("expected Dirty")
	}
	p, d := c.Invalidate(5)
	if !p || !d {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", p, d)
	}
	if c.State(5) != Invalid {
		t.Fatal("still present after Invalidate")
	}
	p, d = c.Invalidate(5)
	if p || d {
		t.Fatal("second Invalidate should be a no-op")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 sets; even blocks -> set 0
	c.Fill(0, Shared, 1)
	c.Fill(2, Shared, 2)
	c.Touch(0, 3) // 2 becomes LRU
	v := c.Fill(4, Dirty, 4)
	if !v.Valid || v.Block != 2 || v.Dirty {
		t.Fatalf("victim = %+v, want clean block 2", v)
	}
	if c.State(0) != Shared || c.State(4) != Dirty {
		t.Fatal("wrong contents after eviction")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := small()
	c.Fill(0, Dirty, 1)
	c.Fill(2, Shared, 2)
	v := c.Fill(4, Shared, 3)
	if !v.Valid || v.Block != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
}

func TestFillPresentUpdatesState(t *testing.T) {
	c := small()
	c.Fill(0, Shared, 1)
	v := c.Fill(0, Dirty, 2)
	if v.Valid {
		t.Fatal("re-fill must not evict")
	}
	if c.State(0) != Dirty {
		t.Fatal("re-fill should update state")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", c.Occupancy())
	}
}

func TestDowngrade(t *testing.T) {
	c := small()
	c.Fill(0, Dirty, 1)
	if !c.Downgrade(0) {
		t.Fatal("Downgrade of dirty line should report true")
	}
	if c.State(0) != Shared {
		t.Fatal("expected Shared after Downgrade")
	}
	if c.Downgrade(0) {
		t.Fatal("Downgrade of shared line should report false")
	}
	if c.Downgrade(99) {
		t.Fatal("Downgrade of absent line should report false")
	}
}

func TestSetStateAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	small().SetState(123, Dirty)
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Dirty.String() != "D" {
		t.Fatal("state names wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func hier() *Hierarchy {
	return NewHierarchy(Config{L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 2, Block: 16})
}

func TestHierarchyMissFillHit(t *testing.T) {
	h := hier()
	if r := h.Access(7, false, 1); r != Miss {
		t.Fatalf("first read = %v, want Miss", r)
	}
	h.Fill(7, Shared, 1)
	if r := h.Access(7, false, 2); r != Hit {
		t.Fatalf("second read = %v, want Hit", r)
	}
	st := h.Stats()
	if st.Reads != 2 || st.Misses != 1 || st.L1Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchyWriteUpgrade(t *testing.T) {
	h := hier()
	h.Fill(7, Shared, 1)
	if r := h.Access(7, true, 2); r != MissUpgrade {
		t.Fatalf("write on shared = %v, want MissUpgrade", r)
	}
	h.Upgrade(7, 2)
	if r := h.Access(7, true, 3); r != Hit {
		t.Fatalf("write on dirty = %v, want Hit", r)
	}
	if h.State(7) != Dirty {
		t.Fatal("expected Dirty in L2")
	}
}

func TestHierarchyInclusionOnL2Eviction(t *testing.T) {
	// L1: 4 lines direct; L2: 8 lines 2-way (4 sets).
	h := NewHierarchy(Config{L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 2, Block: 16})
	// Blocks 0, 4, 8 map to L2 set 0 (8 lines/2-way = 4 sets).
	h.Fill(0, Dirty, 1)
	h.Fill(4, Shared, 2)
	v := h.Fill(8, Shared, 3) // evicts block 0 (LRU) from L2
	if !v.Valid || v.Block != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
	// Inclusion: block 0 must be gone from L1 too.
	if r := h.Access(0, false, 4); r != Miss {
		t.Fatalf("evicted block should miss, got %v", r)
	}
	st := h.Stats()
	if st.Evictions != 1 || st.DirtyEv != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHierarchyL1DirtyFoldsIntoL2(t *testing.T) {
	// L1 direct-mapped 4 lines: blocks 0 and 4 conflict in L1 but
	// coexist in 2-way L2 set 0.
	h := NewHierarchy(Config{L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 2, Block: 16})
	h.Fill(0, Dirty, 1)
	h.Fill(4, Shared, 2) // L1 evicts dirty 0; L2 keeps it, must stay Dirty
	if h.State(0) != Dirty {
		t.Fatal("L1 dirty victim state lost")
	}
	// A later L2 eviction of 0 must report dirty.
	v := h.Fill(8, Shared, 3)
	if !v.Valid || v.Block != 0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty block 0", v)
	}
}

func TestHierarchyL2HitRefillsL1(t *testing.T) {
	h := NewHierarchy(Config{L1Size: 64, L1Assoc: 1, L2Size: 128, L2Assoc: 2, Block: 16})
	h.Fill(0, Shared, 1)
	h.Fill(4, Shared, 2) // evicts 0 from L1 only
	if r := h.Access(0, false, 3); r != Hit {
		t.Fatalf("read = %v, want Hit from L2", r)
	}
	if h.Stats().L2Hits != 1 {
		t.Fatalf("L2Hits = %d, want 1", h.Stats().L2Hits)
	}
}

func TestHierarchyInvalidateAndDowngrade(t *testing.T) {
	h := hier()
	h.Fill(3, Dirty, 1)
	if !h.Downgrade(3) {
		t.Fatal("Downgrade should report dirty")
	}
	if h.State(3) != Shared {
		t.Fatal("expected Shared")
	}
	p, d := h.Invalidate(3)
	if !p || d {
		t.Fatalf("Invalidate = (%v,%v), want (true,false)", p, d)
	}
	if h.State(3) != Invalid {
		t.Fatal("expected Invalid")
	}
}

func TestHierarchyInclusionViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHierarchy(Config{L1Size: 128, L1Assoc: 1, L2Size: 64, L2Assoc: 1, Block: 16})
}

func TestDefaultConfig(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	if h.Lines() != (256<<10)/16 {
		t.Fatalf("Lines = %d", h.Lines())
	}
}

// Property: inclusion — any block readable via Access is present in L2;
// and Invalidate always removes it from both levels.
func TestQuickInclusion(t *testing.T) {
	f := func(ops []uint16) bool {
		h := NewHierarchy(Config{L1Size: 64, L1Assoc: 1, L2Size: 256, L2Assoc: 2, Block: 16})
		for i, op := range ops {
			b := int64(op % 64)
			switch op >> 14 {
			case 0: // read
				if h.Access(b, false, uint64(i)) == Miss {
					h.Fill(b, Shared, uint64(i))
				}
			case 1: // write
				switch h.Access(b, true, uint64(i)) {
				case Miss:
					h.Fill(b, Dirty, uint64(i))
				case MissUpgrade:
					h.Upgrade(b, uint64(i))
				}
			case 2:
				h.Invalidate(b)
				if h.State(b) != Invalid {
					return false
				}
			case 3:
				h.Downgrade(b)
			}
			// Inclusion: L1 content must be a subset of L2 content —
			// probe via the public API: a block that hits for read must
			// be in L2.
			if h.Access(b, false, uint64(i)) != Miss && h.State(b) == Invalid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
