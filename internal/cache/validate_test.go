package cache

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	ok := Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16}
	if err := ok.Validate(); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	cases := []struct {
		name, level string
		cfg         Config
	}{
		{"zero block", "L1", Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2}},
		{"L1 not set-divisible", "L1", Config{L1Size: 256, L1Assoc: 3, L2Size: 1024, L2Assoc: 2, Block: 16}},
		{"L2 zero assoc", "L2", Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, Block: 16}},
		{"inclusion violated", "L2", Config{L1Size: 1024, L1Assoc: 1, L2Size: 256, L2Assoc: 1, Block: 16}},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		var ge *GeometryError
		if !errors.As(err, &ge) {
			t.Errorf("%s: Validate = %v, want *GeometryError", tc.name, err)
			continue
		}
		if ge.Level != tc.level {
			t.Errorf("%s: blamed level %q, want %q (%v)", tc.name, ge.Level, tc.level, err)
		}
	}
}

// TestValidateMatchesConstructor: any config Validate accepts must build,
// and any it rejects must panic — the two must never disagree.
func TestValidateMatchesConstructor(t *testing.T) {
	cfgs := []Config{
		{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16},
		{L1Size: 512, L1Assoc: 2, L2Size: 512, L2Assoc: 4, Block: 32},
		{L1Size: 100, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16},
		{L1Size: 1 << 20, L1Assoc: 1, L2Size: 1024, L2Assoc: 1, Block: 16},
	}
	for _, cfg := range cfgs {
		wantErr := cfg.Validate() != nil
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			NewHierarchy(cfg)
			return false
		}()
		if wantErr != panicked {
			t.Errorf("config %+v: Validate err=%v but constructor panic=%v", cfg, wantErr, panicked)
		}
	}
}
