package cache

import "fmt"

// Config sizes a two-level hierarchy. Sizes are in bytes.
type Config struct {
	L1Size  int
	L1Assoc int
	L2Size  int
	L2Assoc int
	Block   int
}

// DefaultConfig mirrors the DASH prototype (§5): 64 KB primary and 256 KB
// secondary caches with 16-byte blocks.
func DefaultConfig() Config {
	return Config{L1Size: 64 << 10, L1Assoc: 1, L2Size: 256 << 10, L2Assoc: 1, Block: 16}
}

// Validate checks the geometry for every error NewHierarchy (and the
// NewCache calls under it) would otherwise panic over, so flag-derived
// configurations can be rejected with a message instead of a stack trace.
// Constructors still panic on invalid input: direct library misuse is a
// programming error.
func (c Config) Validate() error {
	if err := checkGeometry("L1", c.L1Size, c.Block, c.L1Assoc); err != nil {
		return err
	}
	if err := checkGeometry("L2", c.L2Size, c.Block, c.L2Assoc); err != nil {
		return err
	}
	if c.L2Size < c.L1Size {
		return &GeometryError{Level: "L2", Size: c.L2Size, Block: c.Block, Assoc: c.L2Assoc,
			Reason: fmt.Sprintf("L2 (%d bytes) smaller than L1 (%d bytes) violates inclusion", c.L2Size, c.L1Size)}
	}
	return nil
}

// Stats counts hierarchy accesses.
type Stats struct {
	Reads     uint64
	Writes    uint64
	L1Hits    uint64
	L2Hits    uint64 // L1 miss, L2 sufficient
	Misses    uint64 // needed the directory protocol
	Upgrades  uint64 // write hit on a Shared copy (needs ownership)
	Evictions uint64 // L2 victims
	DirtyEv   uint64 // L2 victims that needed writeback
}

// Hierarchy is an inclusive L1+L2 pair, as in a DASH processor.
type Hierarchy struct {
	l1, l2 *Cache
	stats  Stats
}

// NewHierarchy builds the two levels from cfg. L2 must be at least as
// large as L1 (inclusion).
func NewHierarchy(cfg Config) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{
		l1: NewCache(cfg.L1Size, cfg.Block, cfg.L1Assoc),
		l2: NewCache(cfg.L2Size, cfg.Block, cfg.L2Assoc),
	}
}

// Stats returns cumulative counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Lines returns the number of L2 lines (the unit the sparse directory is
// sized against).
func (h *Hierarchy) Lines() int { return h.l2.Lines() }

// State returns the authoritative (L2) state for block.
func (h *Hierarchy) State(block int64) State { return h.l2.State(block) }

// AccessResult says what the hierarchy could satisfy locally.
type AccessResult int

const (
	// Hit means the access completed in-cache.
	Hit AccessResult = iota
	// MissUpgrade means a write found a Shared copy: ownership (but no
	// data) is needed.
	MissUpgrade
	// Miss means no usable copy: data (and ownership, for writes) is
	// needed from the protocol.
	Miss
)

// Access performs a read or write lookup. On Hit the line states are
// updated (a write hit on Dirty stays Dirty). On MissUpgrade/Miss the
// caller must run the protocol and then call FillShared/FillDirty or
// Upgrade.
func (h *Hierarchy) Access(block int64, write bool, now uint64) AccessResult {
	if write {
		h.stats.Writes++
	} else {
		h.stats.Reads++
	}
	st1 := h.l1.State(block)
	if st1 == Dirty || (st1 == Shared && !write) {
		h.stats.L1Hits++
		h.l1.Touch(block, now)
		h.l2.Touch(block, now)
		return Hit
	}
	st2 := h.l2.State(block)
	if st2 == Dirty || (st2 == Shared && !write) {
		h.stats.L2Hits++
		h.l2.Touch(block, now)
		// Refill L1 from L2 (inclusion guarantees L2 keeps the block;
		// an L1 victim's dirtiness is already reflected in L2 state).
		h.fillL1(block, st2, now)
		return Hit
	}
	if st2 == Shared && write {
		h.stats.Upgrades++
		return MissUpgrade
	}
	h.stats.Misses++
	return Miss
}

// fillL1 installs block in L1, folding any dirty victim state into L2.
func (h *Hierarchy) fillL1(block int64, st State, now uint64) {
	v := h.l1.Fill(block, st, now)
	if v.Valid && v.Dirty {
		// Inclusion: the victim must still be in L2; record dirtiness.
		h.l2.SetState(v.Block, Dirty)
	}
}

// Fill installs block with state st in both levels and returns the L2
// victim (if any) so the machine can send a writeback or drop it silently.
func (h *Hierarchy) Fill(block int64, st State, now uint64) Victim {
	v2 := h.l2.Fill(block, st, now)
	if v2.Valid {
		h.stats.Evictions++
		// Inclusion: purge the victim from L1; its dirtiness wins.
		if _, d1 := h.l1.Invalidate(v2.Block); d1 {
			v2.Dirty = true
		}
		if v2.Dirty {
			h.stats.DirtyEv++
		}
	}
	h.fillL1(block, st, now)
	return v2
}

// Upgrade marks an existing Shared copy Dirty after ownership arrives.
func (h *Hierarchy) Upgrade(block int64, now uint64) {
	h.l2.SetState(block, Dirty)
	h.fillL1(block, Dirty, now)
}

// Invalidate removes block from both levels; reports presence and whether
// any level held it dirty.
func (h *Hierarchy) Invalidate(block int64) (present, dirty bool) {
	p1, d1 := h.l1.Invalidate(block)
	p2, d2 := h.l2.Invalidate(block)
	return p1 || p2, d1 || d2
}

// ForEach calls fn for every block present in the hierarchy with its
// authoritative (L2) state.
func (h *Hierarchy) ForEach(fn func(block int64, st State)) {
	h.l2.ForEach(fn)
}

// Downgrade demotes a dirty copy to shared in both levels; reports whether
// it was dirty.
func (h *Hierarchy) Downgrade(block int64) bool {
	d1 := h.l1.Downgrade(block)
	d2 := h.l2.Downgrade(block)
	return d1 || d2
}
