// Package cache models the processor cache hierarchy of a DASH node: a
// primary (L1) and an inclusive secondary (L2) set-associative cache with
// MSI states, LRU replacement within a set, writeback of dirty victims and
// silent drop of shared victims.
//
// Addresses are pre-divided block numbers: the machine layer converts byte
// addresses to blocks before touching the caches.
package cache

import "fmt"

// State is an MSI cache line state.
type State uint8

const (
	// Invalid means no copy is present.
	Invalid State = iota
	// Shared means a clean copy is present; reads hit, writes need
	// ownership.
	Shared
	// Dirty means this cache holds the only, modified copy.
	Dirty
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Dirty:
		return "D"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

type line struct {
	valid   bool
	block   int64
	state   State
	lastUse uint64
}

// Cache is a single set-associative cache level.
type Cache struct {
	sets  int
	assoc int
	lines []line
}

// GeometryError reports an impossible cache geometry — the typed form of
// the constructor panics, returned by Config.Validate so user-supplied
// sizes fail with a message instead of a stack trace.
type GeometryError struct {
	Level  string // "L1" or "L2" (empty for a bare cache)
	Size   int
	Block  int
	Assoc  int
	Reason string
}

func (e *GeometryError) Error() string {
	if e.Level != "" {
		return fmt.Sprintf("cache: %s: %s", e.Level, e.Reason)
	}
	return "cache: " + e.Reason
}

// checkGeometry validates one cache level's geometry, mirroring the
// NewCache panic conditions.
func checkGeometry(level string, sizeBytes, blockBytes, assoc int) error {
	bad := func(reason string) error {
		return &GeometryError{Level: level, Size: sizeBytes, Block: blockBytes, Assoc: assoc, Reason: reason}
	}
	if sizeBytes <= 0 || blockBytes <= 0 || assoc <= 0 {
		return bad(fmt.Sprintf("size (%d), block (%d) and associativity (%d) must all be positive", sizeBytes, blockBytes, assoc))
	}
	nlines := sizeBytes / blockBytes
	if nlines == 0 || nlines%assoc != 0 {
		return bad(fmt.Sprintf("%d bytes / %d-byte blocks not divisible into %d-way sets", sizeBytes, blockBytes, assoc))
	}
	return nil
}

// NewCache builds a cache of sizeBytes with blockBytes lines and the given
// associativity. sizeBytes must be a multiple of blockBytes*assoc.
func NewCache(sizeBytes, blockBytes, assoc int) *Cache {
	if sizeBytes <= 0 || blockBytes <= 0 || assoc <= 0 {
		panic("cache: sizes must be positive")
	}
	nlines := sizeBytes / blockBytes
	if nlines == 0 || nlines%assoc != 0 {
		panic(fmt.Sprintf("cache: %d bytes / %d-byte blocks not divisible into %d-way sets", sizeBytes, blockBytes, assoc))
	}
	return &Cache{sets: nlines / assoc, assoc: assoc, lines: make([]line, nlines)}
}

// Lines returns the total number of cache lines.
func (c *Cache) Lines() int { return len(c.lines) }

func (c *Cache) set(block int64) []line {
	si := int(uint64(block) % uint64(c.sets))
	return c.lines[si*c.assoc : (si+1)*c.assoc]
}

func (c *Cache) find(block int64) *line {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].block == block {
			return &set[i]
		}
	}
	return nil
}

// State returns the line state for block (Invalid if absent).
func (c *Cache) State(block int64) State {
	if l := c.find(block); l != nil {
		return l.state
	}
	return Invalid
}

// Touch refreshes the LRU position of block if present.
func (c *Cache) Touch(block int64, now uint64) {
	if l := c.find(block); l != nil {
		l.lastUse = now
	}
}

// SetState changes the state of a present line; it panics if absent, since
// that indicates a protocol bug.
func (c *Cache) SetState(block int64, s State) {
	l := c.find(block)
	if l == nil {
		panic(fmt.Sprintf("cache: SetState(%d) on absent block", block))
	}
	l.state = s
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Valid bool
	Block int64
	Dirty bool
}

// Fill installs block with state st, evicting the LRU line of the set if
// needed, and returns the displaced victim (Victim.Valid false if a free
// way was used). Filling an already-present block just updates its state.
func (c *Cache) Fill(block int64, st State, now uint64) Victim {
	if l := c.find(block); l != nil {
		l.state = st
		l.lastUse = now
		return Victim{}
	}
	set := c.set(block)
	vi := -1
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
	}
	var v Victim
	if vi < 0 {
		vi = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[vi].lastUse {
				vi = i
			}
		}
		v = Victim{Valid: true, Block: set[vi].block, Dirty: set[vi].state == Dirty}
	}
	set[vi] = line{valid: true, block: block, state: st, lastUse: now}
	return v
}

// Invalidate removes block and reports its previous presence and dirtiness.
func (c *Cache) Invalidate(block int64) (present, dirty bool) {
	if l := c.find(block); l != nil {
		present, dirty = true, l.state == Dirty
		l.valid = false
	}
	return present, dirty
}

// Downgrade turns a Dirty line Shared, reporting whether it was dirty.
func (c *Cache) Downgrade(block int64) (wasDirty bool) {
	if l := c.find(block); l != nil && l.state == Dirty {
		l.state = Shared
		return true
	}
	return false
}

// ForEach calls fn for every valid line (used by coherence validators).
func (c *Cache) ForEach(fn func(block int64, st State)) {
	for i := range c.lines {
		if c.lines[i].valid {
			fn(c.lines[i].block, c.lines[i].state)
		}
	}
}

// Occupancy returns the number of valid lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
