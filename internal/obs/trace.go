package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
)

// EventKind classifies one coherence-protocol trace event.
type EventKind uint8

const (
	// EvReqIssue marks a cache sending a remote request; Arg is the
	// protocol message kind (protocol.MsgKind numbering).
	EvReqIssue EventKind = iota
	// EvDirLookup marks the home directory controller starting to serve
	// a remote request for Block; Arg is 0 for a read, 1 for a write.
	EvDirLookup
	// EvInvalFanout marks an invalidation burst for Block; Arg is the
	// number of clusters invalidated.
	EvInvalFanout
	// EvOverflow marks an imprecise directory action: an invalidation
	// burst sent from an overflowed (coarse/broadcast/superset) entry;
	// Arg is the number of clusters the imprecise burst invalidated.
	EvOverflow
	// EvDirEvict marks a sparse-directory replacement recalling Block;
	// Arg is the number of invalidations the recall sent.
	EvDirEvict
	// EvRetry marks a NAK-style retry (a woken lock waiter re-contending);
	// Block is the lock address.
	EvRetry

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"req.issue", "dir.lookup", "inval.fanout", "dir.overflow", "dir.evict", "lock.retry",
}

func (k EventKind) String() string {
	if k >= numEventKinds {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventKindNames[k]
}

// unknownNameMessage renders the registry-style unknown-name message shared
// by the package's typed parse errors (matching core.UnknownSchemeError and
// apps.UnknownAppError).
func unknownNameMessage(what, name string, valid []string) string {
	return fmt.Sprintf("unknown %s %q (want one of %s)", what, name, strings.Join(valid, ", "))
}

// UnknownEventKindError reports an event-kind name that ParseEventKind does
// not recognize. Valid lists the accepted names so flag and file errors can
// enumerate the choices.
type UnknownEventKindError struct {
	Name  string
	Valid []string
}

func (e *UnknownEventKindError) Error() string {
	return unknownNameMessage("event kind", e.Name, e.Valid)
}

// EventKindNames returns every event-kind name, in kind order.
func EventKindNames() []string {
	return append([]string(nil), eventKindNames[:]...)
}

// ParseEventKind resolves an event-kind name as rendered by String.
// Unknown names return *UnknownEventKindError.
func ParseEventKind(name string) (EventKind, error) {
	for i, n := range eventKindNames {
		if n == name {
			return EventKind(i), nil
		}
	}
	return 0, &UnknownEventKindError{Name: name, Valid: eventKindNames[:]}
}

// Event is one structured trace record.
type Event struct {
	T     uint64 // simulation cycle
	Node  int32  // cluster where the event happened
	Kind  EventKind
	Block int64 // block number (or lock address for EvRetry)
	Arg   int64 // kind-specific payload, see the EventKind docs
}

// Sink consumes batches of trace events. Write receives events in
// emission order; the batch slice is reused by the caller and must not be
// retained. Sinks shared by concurrent tracers must serialize Write
// internally.
type Sink interface {
	Write(batch []Event) error
	Close() error
}

// Discard is the disabled sink: it drops every batch.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Write([]Event) error { return nil }
func (discardSink) Close() error        { return nil }

// MemSink collects every event in memory, for tests.
type MemSink struct {
	Events []Event
}

// Write implements Sink.
func (s *MemSink) Write(batch []Event) error {
	s.Events = append(s.Events, batch...)
	return nil
}

// Close implements Sink.
func (s *MemSink) Close() error { return nil }

// JSONLSink encodes each event as one JSON object per line:
//
//	{"run":"LU/Dir32","t":412,"node":3,"ev":"inval.fanout","block":97,"n":5}
//
// The run field is set per tracer via Sub, so one file can interleave the
// traces of a whole experiment sweep. Write is serialized internally, so
// concurrently running machines may share one sink; each batch is written
// contiguously.
type JSONLSink struct {
	shared *jsonlShared
	run    string
}

// jsonlShared is the writer state all Sub views of one sink funnel into.
type jsonlShared struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // underlying file, if owned
	err error     // sticky first error
}

// NewJSONLSink wraps w. If w is an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	sh := &jsonlShared{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		sh.c = c
	}
	return &JSONLSink{shared: sh}
}

// Sub returns a view of the sink that tags every event with the given run
// label. All views share the parent's writer and lock.
func (s *JSONLSink) Sub(run string) *JSONLSink {
	return &JSONLSink{shared: s.shared, run: run}
}

// Write implements Sink.
func (s *JSONLSink) Write(batch []Event) error {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	for _, ev := range batch {
		if s.run != "" {
			_, sh.err = fmt.Fprintf(sh.w, `{"run":%q,"t":%d,"node":%d,"ev":%q,"block":%d,"n":%d}`+"\n",
				s.run, ev.T, ev.Node, ev.Kind, ev.Block, ev.Arg)
		} else {
			_, sh.err = fmt.Fprintf(sh.w, `{"t":%d,"node":%d,"ev":%q,"block":%d,"n":%d}`+"\n",
				ev.T, ev.Node, ev.Kind, ev.Block, ev.Arg)
		}
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// WriteLine appends one pre-rendered line to the sink's output under its
// shared lock, so foreign record streams (e.g. check-violation records)
// can interleave with event and span lines without tearing. The line must
// not contain a newline; one is appended.
func (s *JSONLSink) WriteLine(line string) error {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	if _, err := sh.w.WriteString(line); err != nil {
		sh.err = err
		return err
	}
	if err := sh.w.WriteByte('\n'); err != nil {
		sh.err = err
	}
	return sh.err
}

// Flush pushes buffered output through to the underlying writer without
// closing it, so a reader tailing the file (the campaign service's
// /stream endpoint) sees every completed line. Flushing any Sub view
// flushes the shared writer.
func (s *JSONLSink) Flush() error {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.w.Flush(); err != nil && sh.err == nil {
		sh.err = err
	}
	return sh.err
}

// Close flushes buffered output and closes the underlying writer if the
// sink owns it. Closing any Sub view closes the shared writer.
func (s *JSONLSink) Close() error {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.w.Flush(); err != nil && sh.err == nil {
		sh.err = err
	}
	if sh.c != nil {
		if err := sh.c.Close(); err != nil && sh.err == nil {
			sh.err = err
		}
	}
	return sh.err
}

// Tracer buffers events in a fixed ring and hands full batches to its
// sink. A nil *Tracer is the disabled state: call sites guard emission
// with a nil test, so tracing that is off costs one branch.
type Tracer struct {
	ring []Event
	n    int
	sink Sink
	err  error // sticky first sink error
}

// DefaultRingCap is the default tracer ring capacity.
const DefaultRingCap = 4096

// NewTracer returns a tracer writing to sink. ringCap <= 0 selects
// DefaultRingCap.
func NewTracer(sink Sink, ringCap int) *Tracer {
	if sink == nil {
		sink = Discard
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Tracer{ring: make([]Event, ringCap), sink: sink}
}

// Emit records one event. It never allocates; when the ring fills the
// pending batch is handed to the sink and the ring restarts.
func (t *Tracer) Emit(ev Event) {
	t.ring[t.n] = ev
	t.n++
	if t.n == len(t.ring) {
		t.flush()
	}
}

func (t *Tracer) flush() {
	if t.n == 0 {
		return
	}
	if err := t.sink.Write(t.ring[:t.n]); err != nil && t.err == nil {
		t.err = err
	}
	t.n = 0
}

// Flush drains the pending partial batch to the sink and returns the
// first error the sink ever reported.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.flush()
	return t.err
}

// Err returns the first sink error, without flushing.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}
