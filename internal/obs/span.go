package obs

import "fmt"

// TxClass classifies one remote memory transaction for latency accounting.
type TxClass uint8

const (
	// TxRead is a remote read miss (ReadReq round trip).
	TxRead TxClass = iota
	// TxWrite is a remote write miss (WriteReq round trip).
	TxWrite
	// TxUpgrade is a remote ownership upgrade (UpgradeReq round trip).
	TxUpgrade
	// TxLock is one remote lock-acquisition round: issue until the grant
	// arrives, or until a wake message tells the waiter to retry (the
	// retry is a new transaction; lock.retry events link the rounds).
	TxLock
	// TxEvict is a sparse-directory replacement recall: the home
	// invalidates the victim block's cached copies and gates requests
	// until every acknowledgement returns.
	TxEvict

	numTxClasses
)

// NumTxClasses is the number of transaction classes; classes are the
// contiguous range [0, NumTxClasses), so callers can build per-class tables.
const NumTxClasses = int(numTxClasses)

var txClassNames = [numTxClasses]string{"read", "write", "upgrade", "lock", "evict"}

func (c TxClass) String() string {
	if c >= numTxClasses {
		return fmt.Sprintf("TxClass(%d)", int(c))
	}
	return txClassNames[c]
}

// UnknownTxClassError reports a transaction-class name that ParseTxClass
// does not recognize. Valid lists the accepted names.
type UnknownTxClassError struct {
	Name  string
	Valid []string
}

func (e *UnknownTxClassError) Error() string {
	return unknownNameMessage("transaction class", e.Name, e.Valid)
}

// ParseTxClass resolves a class name as rendered by String. Unknown names
// return *UnknownTxClassError.
func ParseTxClass(name string) (TxClass, error) {
	for i, n := range txClassNames {
		if n == name {
			return TxClass(i), nil
		}
	}
	return 0, &UnknownTxClassError{Name: name, Valid: txClassNames[:]}
}

// Phase names one segment of a transaction's lifetime.
type Phase uint8

const (
	// PhTotal marks a transaction's root span, covering issue to
	// completion.
	PhTotal Phase = iota
	// PhReqTravel is the request's network transit to the home cluster.
	PhReqTravel
	// PhDirWait is time spent at the home directory: controller queueing,
	// per-block gate waits, and the lookup/allocate service itself. For
	// locks it also covers time queued waiting for the holder to release.
	PhDirWait
	// PhFanout is the forwarded leg on the critical path: the home's
	// forward to a dirty owner plus the owner's bus work, up to the
	// moment the owner sends its reply.
	PhFanout
	// PhAckGather covers invalidation dispatch until the last
	// acknowledgement arrives. For read/write/upgrade transactions the
	// acks drain asynchronously under release consistency, so this phase
	// overlaps the reply; for evictions it is the critical path.
	PhAckGather
	// PhReplyTravel is the reply's network transit back to the requester.
	PhReplyTravel
	// PhRecovery marks one delivery-recovery episode under the fault
	// model: a message of the transaction timed out and was re-sent, and
	// the span covers from the lost attempt's injection to the retry.
	// Recovery spans are always asynchronous — retries for different
	// messages of one transaction overlap its other phases freely — and
	// exist only when network fault injection is enabled.
	PhRecovery

	numPhases
)

// NumPhases is the number of span phases; phases are the contiguous range
// [0, NumPhases).
const NumPhases = int(numPhases)

var phaseNames = [numPhases]string{
	"total", "req.travel", "dir.wait", "fanout", "ack.gather", "reply.travel",
	"net.recovery",
}

func (p Phase) String() string {
	if p >= numPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// UnknownPhaseError reports a phase name that ParsePhase does not
// recognize. Valid lists the accepted names.
type UnknownPhaseError struct {
	Name  string
	Valid []string
}

func (e *UnknownPhaseError) Error() string {
	return unknownNameMessage("span phase", e.Name, e.Valid)
}

// ParsePhase resolves a phase name as rendered by String. Unknown names
// return *UnknownPhaseError.
func ParsePhase(name string) (Phase, error) {
	for i, n := range phaseNames {
		if n == name {
			return Phase(i), nil
		}
	}
	return 0, &UnknownPhaseError{Name: name, Valid: phaseNames[:]}
}

// Async reports whether the phase overlaps the parent span instead of
// tiling it: acknowledgement gathering runs concurrently with the reply for
// every class except evictions, where the recall is not complete (and the
// block stays gated) until the last ack arrives, and recovery episodes
// overlap whatever phase the lost message belonged to. Analyzers use this
// to decide which child spans must partition the root exactly.
func (p Phase) Async(c TxClass) bool {
	return p == PhRecovery || (p == PhAckGather && c != TxEvict)
}

// Span is one timed segment of a transaction. The root span (Parent == 0,
// Phase == PhTotal) covers the whole transaction; child spans carry the
// root's ID in Parent and the transaction's ID in Tx. The synchronous
// children of a root partition [Start, End] exactly, in emission order;
// asynchronous children (see Phase.Async) may extend past the root's End.
type Span struct {
	Tx     uint64  // transaction ID (equals the root span's ID)
	ID     uint64  // unique span ID within one recorder's lifetime
	Parent uint64  // parent span ID; 0 marks a root
	Class  TxClass // transaction class, repeated on every child
	Phase  Phase   // PhTotal for roots
	Node   int32   // requesting cluster (home cluster for evictions)
	Block  int64   // block number (lock address for TxLock)
	Start  uint64  // simulation cycle the segment began
	End    uint64  // simulation cycle the segment ended
	N      int64   // fan-out count for fanout/ack spans and roots; else 0
}

// Duration returns End - Start.
func (s Span) Duration() uint64 { return s.End - s.Start }

// SpanSink consumes batches of finished spans. WriteSpans receives spans in
// emission order; the batch slice is reused by the caller and must not be
// retained. Sinks shared by concurrent recorders must serialize WriteSpans
// internally.
type SpanSink interface {
	WriteSpans(batch []Span) error
	Close() error
}

// DiscardSpans is the disabled span sink: it drops every batch.
var DiscardSpans SpanSink = discardSpanSink{}

type discardSpanSink struct{}

func (discardSpanSink) WriteSpans([]Span) error { return nil }
func (discardSpanSink) Close() error            { return nil }

// MemSpanSink collects every span in memory, for tests.
type MemSpanSink struct {
	Spans []Span
}

// WriteSpans implements SpanSink.
func (s *MemSpanSink) WriteSpans(batch []Span) error {
	s.Spans = append(s.Spans, batch...)
	return nil
}

// Close implements SpanSink.
func (s *MemSpanSink) Close() error { return nil }

// WriteSpans implements SpanSink on the JSONL sink, one object per line:
//
//	{"run":"LU/Dir32","tx":7,"span":9,"parent":7,"class":"write","phase":"fanout","node":3,"block":97,"start":412,"end":440,"n":5}
//
// Span lines carry a "span" key and event lines an "ev" key, so one file
// (and one shared writer) can interleave both streams; see Sub for run
// labeling. WriteSpans is serialized against concurrent Write/WriteSpans
// calls on any view of the same sink.
func (s *JSONLSink) WriteSpans(batch []Span) error {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return sh.err
	}
	for _, sp := range batch {
		if s.run != "" {
			_, sh.err = fmt.Fprintf(sh.w, `{"run":%q,"tx":%d,"span":%d,"parent":%d,"class":%q,"phase":%q,"node":%d,"block":%d,"start":%d,"end":%d,"n":%d}`+"\n",
				s.run, sp.Tx, sp.ID, sp.Parent, sp.Class, sp.Phase, sp.Node, sp.Block, sp.Start, sp.End, sp.N)
		} else {
			_, sh.err = fmt.Fprintf(sh.w, `{"tx":%d,"span":%d,"parent":%d,"class":%q,"phase":%q,"node":%d,"block":%d,"start":%d,"end":%d,"n":%d}`+"\n",
				sp.Tx, sp.ID, sp.Parent, sp.Class, sp.Phase, sp.Node, sp.Block, sp.Start, sp.End, sp.N)
		}
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// SpanRecorder buffers finished spans in a fixed ring and hands full
// batches to its sink, mirroring Tracer. A nil *SpanRecorder is the
// disabled state: call sites guard emission with a nil test, so span
// tracing that is off costs one branch.
type SpanRecorder struct {
	ring   []Span
	n      int
	sink   SpanSink
	err    error // sticky first sink error
	nextID uint64
}

// NewSpanRecorder returns a recorder writing to sink. ringCap <= 0 selects
// DefaultRingCap.
func NewSpanRecorder(sink SpanSink, ringCap int) *SpanRecorder {
	if sink == nil {
		sink = DiscardSpans
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &SpanRecorder{ring: make([]Span, ringCap), sink: sink}
}

// NextID allocates a span ID. IDs start at 1 so that Parent == 0 always
// means "root".
func (r *SpanRecorder) NextID() uint64 {
	r.nextID++
	return r.nextID
}

// Emit records one finished span. It never allocates; when the ring fills
// the pending batch is handed to the sink and the ring restarts.
func (r *SpanRecorder) Emit(s Span) {
	r.ring[r.n] = s
	r.n++
	if r.n == len(r.ring) {
		r.flush()
	}
}

func (r *SpanRecorder) flush() {
	if r.n == 0 {
		return
	}
	if err := r.sink.WriteSpans(r.ring[:r.n]); err != nil && r.err == nil {
		r.err = err
	}
	r.n = 0
}

// Flush drains the pending partial batch to the sink and returns the first
// error the sink ever reported.
func (r *SpanRecorder) Flush() error {
	if r == nil {
		return nil
	}
	r.flush()
	return r.err
}

// Err returns the first sink error, without flushing.
func (r *SpanRecorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}
