package obs

import (
	"reflect"
	"testing"
)

// histEqual compares full histogram state: buckets, count, sum, max, and
// the derived quantiles.
func histEqual(t *testing.T, got, want *Histogram) {
	t.Helper()
	if !reflect.DeepEqual(got.counts, want.counts) {
		t.Fatalf("bucket counts %v, want %v", got.counts, want.counts)
	}
	if got.n != want.n || got.sum != want.sum || got.max != want.max {
		t.Fatalf("n/sum/max = %d/%d/%d, want %d/%d/%d",
			got.n, got.sum, got.max, want.n, want.sum, want.max)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("Quantile(%v) = %d, want %d", q, g, w)
		}
	}
}

func TestHistogramMergeEmptySource(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", DefBuckets)
	for _, v := range []uint64{1, 5, 9000} {
		h.Observe(v)
	}
	want := *h
	wantCounts := append([]uint64(nil), h.counts...)
	h.Merge(NewRegistry().Histogram("empty", DefBuckets))
	want.counts = wantCounts
	histEqual(t, h, &want)
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	r := NewRegistry()
	src := r.Histogram("src", DefBuckets)
	for _, v := range []uint64{0, 2, 1024, 5000} {
		src.Observe(v)
	}
	dst := r.Histogram("dst", DefBuckets)
	dst.Merge(src)
	histEqual(t, dst, src)
}

func TestHistogramMergeOverflowBucket(t *testing.T) {
	// Samples past the last bound land in the overflow bucket and must
	// survive the merge, including the max that Quantile reports for them.
	r := NewRegistry()
	a := r.Histogram("a", []uint64{1, 2})
	b := r.Histogram("b", []uint64{1, 2})
	a.Observe(100)
	b.Observe(500)
	a.Merge(b)
	if got := a.Bucket(2); got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
	if got := a.Quantile(1); got != 500 {
		t.Fatalf("Quantile(1) = %d, want 500 (merged max)", got)
	}
}

func TestHistogramMergeSingleObservation(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("a", LatBuckets)
	b := r.Histogram("b", LatBuckets)
	b.Observe(77)
	a.Merge(b)
	seq := r.Histogram("seq", LatBuckets)
	seq.Observe(77)
	histEqual(t, a, seq)
}

func TestHistogramMergeMismatchedBoundsPanics(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]uint64{
		"short":   {1, 2},
		"shifted": {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 2048},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("merge of mismatched layouts did not panic")
				}
			}()
			r.Histogram("dst-"+name, DefBuckets).Merge(r.Histogram("src-"+name, bounds))
		})
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only.b").Inc()
	a.Gauge("g").Set(10)
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5)
	b.Gauge("g").Set(1)
	a.Histogram("h", DefBuckets).Observe(7)
	b.Histogram("h", DefBuckets).Observe(9)
	b.Histogram("h.only.b", LatBuckets).Observe(100)

	a.Merge(b)
	if got := a.Counter("c").Value(); got != 7 {
		t.Fatalf("counter c = %d, want 7", got)
	}
	if got := a.Counter("only.b").Value(); got != 1 {
		t.Fatalf("counter only.b = %d, want 1", got)
	}
	if g := a.Gauge("g"); g.Value() != 3 || g.Max() != 10 {
		t.Fatalf("gauge g = %d (max %d), want 3 (max 10)", g.Value(), g.Max())
	}
	h := a.Histogram("h", DefBuckets)
	if h.Count() != 2 || h.Sum() != 16 || h.Max() != 9 {
		t.Fatalf("hist h n/sum/max = %d/%d/%d, want 2/16/9", h.Count(), h.Sum(), h.Max())
	}
	if got := a.Histogram("h.only.b", LatBuckets).Count(); got != 1 {
		t.Fatalf("hist h.only.b n = %d, want 1", got)
	}
}

// FuzzHistogramMerge asserts the merge identity the sharded machine core
// relies on: recording a sample sequence split across two histograms and
// merging them is indistinguishable — buckets, count, sum, max, quantiles —
// from recording the whole sequence into one histogram.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 255}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{7}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		cut := 0
		if len(data) > 0 {
			cut = int(split) % (len(data) + 1)
		}
		r := NewRegistry()
		whole := r.Histogram("whole", DefBuckets)
		left := r.Histogram("left", DefBuckets)
		right := r.Histogram("right", DefBuckets)
		for i, raw := range data {
			// Spread samples across the bucket range, overflow included.
			v := uint64(raw) * uint64(raw)
			whole.Observe(v)
			if i < cut {
				left.Observe(v)
			} else {
				right.Observe(v)
			}
		}
		left.Merge(right)
		histEqual(t, left, whole)
	})
}
