package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msg.request")
	c.Inc()
	c.Add(4)
	if got := r.Counter("msg.request").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("rac.pending")
	g.Add(3)
	g.Add(-1)
	g.Set(7)
	g.Add(-7)
	if g.Value() != 0 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 0 max 7", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inval.fanout", []uint64{0, 2, 8})
	for _, v := range []uint64{0, 1, 2, 3, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 2} // <=0, <=2, <=8, overflow
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Count() != 7 || h.Sum() != 123 {
		t.Fatalf("count %d sum %d, want 7, 123", h.Count(), h.Sum())
	}
}

// TestHistogramQuantileEdges covers the percentile estimator's corner
// cases: empty histogram, a single sample, every sample in the overflow
// bucket, and samples landing exactly on bucket boundaries.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()

	empty := r.Histogram("empty", []uint64{1, 2})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}

	// A single sample is every quantile, even though its bucket bound (4)
	// is looser than the sample itself.
	single := r.Histogram("single", []uint64{0, 1, 2, 4, 8})
	single.Observe(3)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 3 {
			t.Errorf("single.Quantile(%v) = %d, want 3", q, got)
		}
	}
	if single.Max() != 3 {
		t.Errorf("single.Max() = %d, want 3", single.Max())
	}

	// All samples beyond the last bound land in the overflow bucket; the
	// only honest answer there is the maximum observed.
	over := r.Histogram("over", []uint64{1, 2})
	over.Observe(100)
	over.Observe(200)
	over.Observe(300)
	if got := over.Quantile(0.5); got != 300 {
		t.Errorf("over.Quantile(0.5) = %d, want 300 (max)", got)
	}
	if got := over.Quantile(1); got != 300 {
		t.Errorf("over.Quantile(1) = %d, want 300", got)
	}

	// Boundary values: a sample equal to a bound counts inside that
	// bucket, so the quantile reports the bound exactly.
	edge := r.Histogram("edge", []uint64{10, 20, 30})
	for _, v := range []uint64{10, 20, 30} {
		edge.Observe(v)
	}
	for i, want := range []uint64{10, 20, 30} {
		q := float64(i+1) / 3
		if got := edge.Quantile(q); got != want {
			t.Errorf("edge.Quantile(%v) = %d, want %d", q, got, want)
		}
	}

	// Quantiles survive the snapshot.
	snap := r.Snapshot().Hists["edge"]
	if snap.Max != 30 || snap.Quantile(0.5) != 20 {
		t.Errorf("snapshot: max %d quantile(0.5) %d, want 30, 20", snap.Max, snap.Quantile(0.5))
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned different counters")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []uint64{1}) {
		t.Fatal("existing histogram was replaced")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	r.Counter("has space")
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", []uint64{1}).Observe(1)
	s := r.Snapshot()
	text := s.String()
	want := "a.one 1\nb.two 2\ng 3 (max 3)\nh count 1 sum 1 mean 1.00 p50 1 p95 1 p99 1 max 1\n"
	if text != want {
		t.Fatalf("snapshot text:\n%s\nwant:\n%s", text, want)
	}
	if s.Counter("a.one") != 1 || s.Counter("missing") != 0 {
		t.Fatal("snapshot counter lookup wrong")
	}
	// The snapshot is frozen: later increments must not leak in.
	r.Counter("a.one").Add(10)
	if s.Counter("a.one") != 1 {
		t.Fatal("snapshot not isolated from registry")
	}
}

func TestTracerRingFlush(t *testing.T) {
	mem := &MemSink{}
	tr := NewTracer(mem, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: uint64(i), Kind: EvReqIssue})
	}
	if len(mem.Events) != 8 {
		t.Fatalf("sink saw %d events before Flush, want 8 (two full rings)", len(mem.Events))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Events) != 10 {
		t.Fatalf("sink saw %d events after Flush, want 10", len(mem.Events))
	}
	for i, ev := range mem.Events {
		if ev.T != uint64(i) {
			t.Fatalf("event %d has T=%d; order not preserved", i, ev.T)
		}
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sub := sink.Sub("LU/Dir32")
	tr := NewTracer(sub, 2)
	tr.Emit(Event{T: 5, Node: 1, Kind: EvInvalFanout, Block: 9, Arg: 3})
	tr.Emit(Event{T: 6, Node: 2, Kind: EvRetry, Block: 64})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec struct {
		Run   string `json:"run"`
		T     uint64 `json:"t"`
		Node  int32  `json:"node"`
		Ev    string `json:"ev"`
		Block int64  `json:"block"`
		N     int64  `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.Run != "LU/Dir32" || rec.T != 5 || rec.Node != 1 || rec.Ev != "inval.fanout" || rec.Block != 9 || rec.N != 3 {
		t.Fatalf("decoded %+v", rec)
	}
	kind, err := ParseEventKind(rec.Ev)
	if err != nil || kind != EvInvalFanout {
		t.Fatalf("ParseEventKind(%q) = %v, %v", rec.Ev, kind, err)
	}
}

// TestJSONLSinkFlush: Flush pushes completed lines through the bufio
// layer without closing, so a reader tailing the output sees them; Sub
// views flush the shared writer.
func TestJSONLSinkFlush(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sub := sink.Sub("r")
	if err := sub.WriteLine(`{"k":1}`); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("line reached the writer before Flush: %q", buf.String())
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"k\":1}\n" {
		t.Fatalf("after Flush: %q", got)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindNamesRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseEventKind("nope"); err == nil {
		t.Fatal("unknown kind did not error")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTracerEmitDiscard(b *testing.B) {
	tr := NewTracer(Discard, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{T: uint64(i), Kind: EvDirLookup, Block: int64(i)})
	}
}
