package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msg.request")
	c.Inc()
	c.Add(4)
	if got := r.Counter("msg.request").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("rac.pending")
	g.Add(3)
	g.Add(-1)
	g.Set(7)
	g.Add(-7)
	if g.Value() != 0 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 0 max 7", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inval.fanout", []uint64{0, 2, 8})
	for _, v := range []uint64{0, 1, 2, 3, 8, 9, 100} {
		h.Observe(v)
	}
	want := []uint64{1, 2, 2, 2} // <=0, <=2, <=8, overflow
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Count() != 7 || h.Sum() != 123 {
		t.Fatalf("count %d sum %d, want 7, 123", h.Count(), h.Sum())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned different counters")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []uint64{1}) {
		t.Fatal("existing histogram was replaced")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name did not panic")
		}
	}()
	r.Counter("has space")
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	r.Gauge("g").Set(3)
	r.Histogram("h", []uint64{1}).Observe(1)
	s := r.Snapshot()
	text := s.String()
	want := "a.one 1\nb.two 2\ng 3 (max 3)\nh count 1 sum 1 mean 1.00\n"
	if text != want {
		t.Fatalf("snapshot text:\n%s\nwant:\n%s", text, want)
	}
	if s.Counter("a.one") != 1 || s.Counter("missing") != 0 {
		t.Fatal("snapshot counter lookup wrong")
	}
	// The snapshot is frozen: later increments must not leak in.
	r.Counter("a.one").Add(10)
	if s.Counter("a.one") != 1 {
		t.Fatal("snapshot not isolated from registry")
	}
}

func TestTracerRingFlush(t *testing.T) {
	mem := &MemSink{}
	tr := NewTracer(mem, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: uint64(i), Kind: EvReqIssue})
	}
	if len(mem.Events) != 8 {
		t.Fatalf("sink saw %d events before Flush, want 8 (two full rings)", len(mem.Events))
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Events) != 10 {
		t.Fatalf("sink saw %d events after Flush, want 10", len(mem.Events))
	}
	for i, ev := range mem.Events {
		if ev.T != uint64(i) {
			t.Fatalf("event %d has T=%d; order not preserved", i, ev.T)
		}
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sub := sink.Sub("LU/Dir32")
	tr := NewTracer(sub, 2)
	tr.Emit(Event{T: 5, Node: 1, Kind: EvInvalFanout, Block: 9, Arg: 3})
	tr.Emit(Event{T: 6, Node: 2, Kind: EvRetry, Block: 64})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec struct {
		Run   string `json:"run"`
		T     uint64 `json:"t"`
		Node  int32  `json:"node"`
		Ev    string `json:"ev"`
		Block int64  `json:"block"`
		N     int64  `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.Run != "LU/Dir32" || rec.T != 5 || rec.Node != 1 || rec.Ev != "inval.fanout" || rec.Block != 9 || rec.N != 3 {
		t.Fatalf("decoded %+v", rec)
	}
	kind, err := ParseEventKind(rec.Ev)
	if err != nil || kind != EvInvalFanout {
		t.Fatalf("ParseEventKind(%q) = %v, %v", rec.Ev, kind, err)
	}
}

func TestEventKindNamesRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, %v", k, got, err)
		}
	}
	if _, err := ParseEventKind("nope"); err == nil {
		t.Fatal("unknown kind did not error")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTracerEmitDiscard(b *testing.B) {
	tr := NewTracer(Discard, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(Event{T: uint64(i), Kind: EvDirLookup, Block: int64(i)})
	}
}
