package obs

import (
	"sync"
	"sync/atomic"
)

// LiveSample is one in-run progress snapshot: how far the simulation has
// advanced and what the metrics registry held at the publish point. A
// sample is immutable once published — publishers build a fresh one each
// time — so readers on other goroutines (the -pprof server's /metrics and
// /progress handlers) can walk it without locks.
type LiveSample struct {
	// Cycles is the simulation time reached (the minimum shard window
	// start for sharded runs, the engine clock for serial ones).
	Cycles uint64 `json:"cycles"`
	// Events is the number of simulation events fired so far.
	Events uint64 `json:"events"`
	// Shards holds each shard's wheel time at the publish barrier, so a
	// reader can see per-shard window lag. Empty for serial runs.
	Shards []uint64 `json:"shards,omitempty"`
	// Done is true on the final sample published when the run completes.
	Done bool `json:"done"`
	// Metrics is the registry snapshot at the publish point (merged
	// across shards for sharded runs).
	Metrics Snapshot `json:"metrics"`
}

// LiveRun is one run's atomically-published sample slot. The simulation
// goroutine publishes; any number of reader goroutines load. The zero
// value is not usable — obtain runs from a Live registry.
type LiveRun struct {
	label string
	cur   atomic.Pointer[LiveSample]
}

// Label returns the run label the slot was registered under.
func (r *LiveRun) Label() string { return r.label }

// Publish installs s as the latest sample. s must not be mutated after
// the call.
func (r *LiveRun) Publish(s *LiveSample) { r.cur.Store(s) }

// Latest returns the most recently published sample, or nil if the run
// has not published yet.
func (r *LiveRun) Latest() *LiveSample { return r.cur.Load() }

// Live is a registry of in-flight runs for live observation: each run a
// command starts registers a LiveRun slot here, and the command's HTTP
// endpoints list and read them. Safe for concurrent use.
type Live struct {
	mu   sync.Mutex
	runs map[string]*LiveRun
	// order preserves registration order for stable listings.
	order []string
}

// NewLive returns an empty live-run registry.
func NewLive() *Live {
	return &Live{runs: make(map[string]*LiveRun)}
}

// Run returns the slot registered under label, creating it if needed.
// Repeated runs under one label (reps of a benchmark cell, say) share a
// slot; the latest publisher wins, which is the right reading for "what
// is this run doing now".
func (l *Live) Run(label string) *LiveRun {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.runs[label]
	if !ok {
		r = &LiveRun{label: label}
		l.runs[label] = r
		l.order = append(l.order, label)
	}
	return r
}

// Runs returns every registered slot in registration order.
func (l *Live) Runs() []*LiveRun {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*LiveRun, len(l.order))
	for i, label := range l.order {
		out[i] = l.runs[label]
	}
	return out
}
