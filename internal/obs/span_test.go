package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestTxClassPhaseRoundTrip(t *testing.T) {
	for c := TxClass(0); c < numTxClasses; c++ {
		got, err := ParseTxClass(c.String())
		if err != nil || got != c {
			t.Fatalf("class round trip %v: got %v, %v", c, got, err)
		}
	}
	for p := Phase(0); p < numPhases; p++ {
		got, err := ParsePhase(p.String())
		if err != nil || got != p {
			t.Fatalf("phase round trip %v: got %v, %v", p, got, err)
		}
	}
	var ce *UnknownTxClassError
	if _, err := ParseTxClass("nope"); !errors.As(err, &ce) {
		t.Fatalf("ParseTxClass error = %v, want *UnknownTxClassError", err)
	} else if ce.Name != "nope" || len(ce.Valid) != NumTxClasses {
		t.Fatalf("error fields %+v", ce)
	}
	var pe *UnknownPhaseError
	if _, err := ParsePhase("nope"); !errors.As(err, &pe) {
		t.Fatalf("ParsePhase error = %v, want *UnknownPhaseError", err)
	}
}

func TestParseEventKindTypedError(t *testing.T) {
	var ke *UnknownEventKindError
	_, err := ParseEventKind("bogus")
	if !errors.As(err, &ke) {
		t.Fatalf("ParseEventKind error = %v, want *UnknownEventKindError", err)
	}
	if ke.Name != "bogus" {
		t.Fatalf("error Name = %q, want bogus", ke.Name)
	}
	if len(ke.Valid) != int(numEventKinds) {
		t.Fatalf("error Valid has %d names, want %d", len(ke.Valid), numEventKinds)
	}
	for _, name := range ke.Valid {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error message %q does not list %q", err.Error(), name)
		}
	}
}

func TestPhaseAsync(t *testing.T) {
	if !PhAckGather.Async(TxWrite) || !PhAckGather.Async(TxRead) {
		t.Fatal("ack.gather must be async for read/write transactions")
	}
	if PhAckGather.Async(TxEvict) {
		t.Fatal("ack.gather is the critical path of an eviction, not async")
	}
	if PhDirWait.Async(TxWrite) || PhReplyTravel.Async(TxEvict) {
		t.Fatal("only ack.gather is ever async")
	}
}

func TestSpanRecorderRingFlush(t *testing.T) {
	mem := &MemSpanSink{}
	r := NewSpanRecorder(mem, 4)
	for i := 0; i < 10; i++ {
		r.Emit(Span{Tx: r.NextID(), Start: uint64(i), End: uint64(i + 1)})
	}
	if len(mem.Spans) != 8 {
		t.Fatalf("sink saw %d spans before Flush, want 8", len(mem.Spans))
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(mem.Spans) != 10 {
		t.Fatalf("sink saw %d spans after Flush, want 10", len(mem.Spans))
	}
	for i, s := range mem.Spans {
		if s.Start != uint64(i) {
			t.Fatalf("span %d has Start=%d; order not preserved", i, s.Start)
		}
		if s.Tx != uint64(i+1) {
			t.Fatalf("span %d has Tx=%d; NextID not sequential from 1", i, s.Tx)
		}
	}
}

func TestNilSpanRecorder(t *testing.T) {
	var r *SpanRecorder
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLSpanEncoding(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sub := sink.Sub("LU/Dir3CV2")
	r := NewSpanRecorder(sub, 2)
	root := r.NextID()
	r.Emit(Span{Tx: root, ID: r.NextID(), Parent: root, Class: TxWrite, Phase: PhFanout,
		Node: 3, Block: 97, Start: 412, End: 440, N: 5})
	r.Emit(Span{Tx: root, ID: root, Class: TxWrite, Phase: PhTotal,
		Node: 3, Block: 97, Start: 400, End: 460, N: 5})
	// Events and spans share one writer without corrupting either stream.
	tr := NewTracer(sub, 2)
	tr.Emit(Event{T: 412, Node: 3, Kind: EvInvalFanout, Block: 97, Arg: 5})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var rec struct {
		Run    string `json:"run"`
		Tx     uint64 `json:"tx"`
		Span   uint64 `json:"span"`
		Parent uint64 `json:"parent"`
		Class  string `json:"class"`
		Phase  string `json:"phase"`
		Node   int32  `json:"node"`
		Block  int64  `json:"block"`
		Start  uint64 `json:"start"`
		End    uint64 `json:"end"`
		N      int64  `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("span line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.Run != "LU/Dir3CV2" || rec.Tx != 1 || rec.Span != 2 || rec.Parent != 1 ||
		rec.Class != "write" || rec.Phase != "fanout" || rec.Node != 3 || rec.Block != 97 ||
		rec.Start != 412 || rec.End != 440 || rec.N != 5 {
		t.Fatalf("decoded %+v", rec)
	}
	if c, err := ParseTxClass(rec.Class); err != nil || c != TxWrite {
		t.Fatalf("ParseTxClass(%q) = %v, %v", rec.Class, c, err)
	}
	if p, err := ParsePhase(rec.Phase); err != nil || p != PhFanout {
		t.Fatalf("ParsePhase(%q) = %v, %v", rec.Phase, p, err)
	}
	// The root line keeps parent 0; the event line is distinguishable by
	// its "ev" key.
	if !strings.Contains(lines[1], `"parent":0`) {
		t.Fatalf("root line lost parent 0: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"ev":"inval.fanout"`) {
		t.Fatalf("event line missing: %s", lines[2])
	}
}

func BenchmarkSpanEmitDiscard(b *testing.B) {
	r := NewSpanRecorder(DiscardSpans, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(Span{Tx: uint64(i), ID: uint64(i), Start: uint64(i), End: uint64(i + 9)})
	}
}
