package obs

import "fmt"

// MergeSnapshots combines snapshots taken from disjoint single-writer
// registries — the sharded machine core gives every cluster its own
// registry and merges at quiescence. Counters and gauge values are summed,
// gauge maxima take the maximum of the per-registry maxima (note a
// high-water mark merged this way is the max of per-shard peaks, not the
// peak of the machine-wide sum), and histograms add bucket counts. Merging
// the same histogram name with different bucket bounds panics: that is a
// registration bug, not a runtime condition.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		GaugeMax: make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if _, ok := out.Gauges[name]; !ok {
				out.Gauges[name] = 0
				out.GaugeMax[name] = s.GaugeMax[name]
			}
			out.Gauges[name] += v
			if m := s.GaugeMax[name]; m > out.GaugeMax[name] {
				out.GaugeMax[name] = m
			}
		}
		for name, h := range s.Hists {
			acc, ok := out.Hists[name]
			if !ok {
				out.Hists[name] = HistSnapshot{
					Bounds: append([]uint64(nil), h.Bounds...),
					Counts: append([]uint64(nil), h.Counts...),
					N:      h.N,
					Sum:    h.Sum,
					Max:    h.Max,
				}
				continue
			}
			if len(acc.Counts) != len(h.Counts) {
				panic(fmt.Sprintf("obs: merging histogram %q with mismatched bounds", name))
			}
			for i, c := range h.Counts {
				acc.Counts[i] += c
			}
			acc.N += h.N
			acc.Sum += h.Sum
			if h.Max > acc.Max {
				acc.Max = h.Max
			}
			out.Hists[name] = acc
		}
	}
	return out
}
