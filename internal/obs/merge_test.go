package obs

import "testing"

func TestMergeSnapshots(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("msgs").Add(3)
	b.Counter("msgs").Add(4)
	b.Counter("only.b").Inc()
	ga := a.Gauge("pend")
	ga.Add(5)
	ga.Add(-2) // value 3, max 5
	gb := b.Gauge("pend")
	gb.Add(9)
	gb.Add(-9) // value 0, max 9
	bounds := []uint64{1, 2, 4}
	a.Histogram("lat", bounds).Observe(1)
	a.Histogram("lat", bounds).Observe(3)
	b.Histogram("lat", bounds).Observe(100)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := m.Counters["msgs"]; got != 7 {
		t.Fatalf("msgs = %d, want 7", got)
	}
	if got := m.Counters["only.b"]; got != 1 {
		t.Fatalf("only.b = %d, want 1", got)
	}
	if got := m.Gauges["pend"]; got != 3 {
		t.Fatalf("pend value = %d, want 3", got)
	}
	if got := m.GaugeMax["pend"]; got != 9 {
		t.Fatalf("pend max = %d, want 9", got)
	}
	h := m.Hists["lat"]
	if h.N != 3 || h.Sum != 104 || h.Max != 100 {
		t.Fatalf("hist N=%d Sum=%d Max=%d, want 3/104/100", h.N, h.Sum, h.Max)
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("hist bucket total = %d, want 3", total)
	}

	// Merging must not alias the inputs.
	a2 := a.Snapshot()
	_ = MergeSnapshots(a2, b.Snapshot())
	if a2.Counters["msgs"] != 3 {
		t.Fatalf("merge mutated its input: msgs = %d", a2.Counters["msgs"])
	}
}

func TestMergeSnapshotsMismatchedBoundsPanics(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Histogram("h", []uint64{1, 2}).Observe(1)
	b.Histogram("h", []uint64{1, 2, 3}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	MergeSnapshots(a.Snapshot(), b.Snapshot())
}
