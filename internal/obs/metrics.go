// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) and a structured event-trace
// ring buffer with pluggable sinks.
//
// The design goal is zero allocation on the simulation hot path. Metric
// handles are resolved by name once, at machine construction; recording is
// a plain field increment on the returned pointer. Trace emission writes
// into a preallocated ring and only touches the sink when the ring fills.
// A nil *Tracer is the disabled state and call sites guard with a single
// pointer test, so observability costs nothing when it is off.
//
// Registries and tracers are single-writer by design, like the simulator
// itself: one machine, one goroutine. Sinks shared between concurrently
// running machines (the experiment pool) must serialize internally;
// JSONLSink does.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a metric that can move both ways, with high-water tracking.
type Gauge struct {
	v   int64
	max int64
}

// Set stores v and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// limits in ascending order; an implicit overflow bucket catches the rest.
// The bucket layout is fixed at creation so Observe never allocates.
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	n      uint64
	sum    uint64
	max    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bucket returns the count of bucket i (len(Bounds()) is the overflow
// bucket).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// Max returns the largest sample observed (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound on the q-quantile sample (q in [0,1]):
// the bound of the bucket holding the ceil(q*n)-th sample, tightened to the
// maximum observed sample. An empty histogram returns 0; samples in the
// overflow bucket report the maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	return bucketQuantile(h.bounds, h.counts, h.n, h.max, q)
}

// Merge folds src into h bucket by bucket. The result is exactly what h
// would hold had it observed every sample src did — Count, Sum, Max,
// Bucket, and therefore Quantile, all agree with sequential recording —
// which is what lets per-shard histograms merge into one deterministic
// whole. The bucket layouts must match; mismatched bounds panic, since
// silently re-binning would corrupt the quantile estimates.
func (h *Histogram) Merge(src *Histogram) {
	if len(src.bounds) != len(h.bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i, b := range src.bounds {
		if h.bounds[i] != b {
			panic("obs: merging histograms with different bucket layouts")
		}
	}
	for i, c := range src.counts {
		h.counts[i] += c
	}
	h.n += src.n
	h.sum += src.sum
	if src.max > h.max {
		h.max = src.max
	}
}

// bucketQuantile is the shared quantile estimator for Histogram and
// HistSnapshot.
func bucketQuantile(bounds, counts []uint64, n, max uint64, q float64) uint64 {
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) && bounds[i] < max {
				return bounds[i]
			}
			return max
		}
	}
	return max
}

// DefBuckets is the default histogram layout: power-of-two-ish bounds
// suited to invalidation fan-outs and hop counts on machines up to a few
// thousand nodes.
var DefBuckets = []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// LatBuckets is the histogram layout for transaction latencies in cycles:
// fine around the calibrated remote-access constants (~60-80 cycles) and
// geometric above, so contended locks and queued directories still resolve.
var LatBuckets = []uint64{
	16, 32, 48, 64, 80, 96, 128, 160, 192, 256, 384, 512,
	768, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// QueueBuckets is the histogram layout for queue-depth samples (cycles of
// backlog at a directory controller or network ejection port, or live
// directory entries).
var QueueBuckets = []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Registry holds named metrics. Lookup is get-or-create; the returned
// handles stay valid for the registry's lifetime, so hot paths resolve
// names once and then increment through the pointer.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func checkName(name string) {
	if name == "" || strings.ContainsAny(name, " \t\n\"") {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	checkName(name)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	checkName(name)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if needed (nil bounds selects DefBuckets). The
// bounds of an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	checkName(name)
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge folds every metric of src into r: counters add, gauges add with
// the high-water mark taken as the max of the two marks, histograms merge
// bucket-wise (created with src's bounds when absent from r). Merging the
// per-shard registries of a sharded run into one registry in shard order
// yields the same totals as serial recording into a single registry,
// independent of how recording was partitioned.
func (r *Registry) Merge(src *Registry) {
	for name, c := range src.counters {
		r.Counter(name).Add(c.v)
	}
	for name, g := range src.gauges {
		dst := r.Gauge(name)
		dst.v += g.v
		if g.max > dst.max {
			dst.max = g.max
		}
	}
	for name, h := range src.hists {
		r.Histogram(name, h.bounds).Merge(h)
	}
}

// HistSnapshot is the frozen state of one histogram.
type HistSnapshot struct {
	Bounds []uint64
	Counts []uint64
	N      uint64
	Sum    uint64
	Max    uint64
}

// Snapshot is a frozen, read-only copy of a registry's metrics.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]int64
	GaugeMax map[string]int64
	Hists    map[string]HistSnapshot
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		GaugeMax: make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
		s.GaugeMax[name] = g.max
	}
	for name, h := range r.hists {
		s.Hists[name] = HistSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			N:      h.n,
			Sum:    h.sum,
			Max:    h.max,
		}
	}
	return s
}

// Counter returns the snapshotted counter value (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// WriteText renders the snapshot as sorted "name value" lines, one metric
// per line — a stable format for -metrics dumps and tests.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d (max %d)", name, v, s.GaugeMax[name]))
	}
	for name, h := range s.Hists {
		lines = append(lines, fmt.Sprintf("%s count %d sum %d mean %.2f p50 %d p95 %d p99 %d max %d",
			name, h.N, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Mean returns the histogram snapshot's average sample.
func (h HistSnapshot) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an upper bound on the q-quantile sample, as
// Histogram.Quantile does.
func (h HistSnapshot) Quantile(q float64) uint64 {
	return bucketQuantile(h.Bounds, h.Counts, h.N, h.Max, q)
}

// String renders the snapshot as WriteText does.
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}
