package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dircoh/internal/obs"
)

// getJSON fetches url and decodes the body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: %v in %q", url, err, body)
	}
}

// TestLiveServerEndpoints drives the -pprof server's /metrics and
// /progress views: publish two runs' samples into the live registry and
// read them back over HTTP.
func TestLiveServerEndpoints(t *testing.T) {
	o := &Obs{tool: "clitest", pprofAddr: "127.0.0.1:0"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Stop()
	addr := o.ServerAddr()
	if addr == "" {
		t.Fatal("server did not report an address")
	}
	if o.Live() == nil {
		t.Fatal("Live() is nil with the server running")
	}

	// An in-flight sharded run and a finished serial one.
	reg := obs.NewRegistry()
	reg.Counter("msg.readreq").Add(41)
	o.Live().Run("sweep/cell-0").Publish(&obs.LiveSample{
		Cycles:  1000,
		Events:  5000,
		Shards:  []uint64{1000, 1010},
		Metrics: reg.Snapshot(),
	})
	reg2 := obs.NewRegistry()
	reg2.Counter("msg.readreq").Add(7)
	o.Live().Run("sweep/cell-1").Publish(&obs.LiveSample{
		Cycles:  2000,
		Events:  9000,
		Done:    true,
		Metrics: reg2.Snapshot(),
	})

	var prog map[string]progressEntry
	getJSON(t, fmt.Sprintf("http://%s/progress", addr), &prog)
	if len(prog) != 2 {
		t.Fatalf("/progress has %d runs, want 2: %v", len(prog), prog)
	}
	p0 := prog["sweep/cell-0"]
	if p0.Cycles != 1000 || p0.Events != 5000 || p0.Done || len(p0.Shards) != 2 {
		t.Fatalf("cell-0 progress = %+v", p0)
	}
	if p1 := prog["sweep/cell-1"]; !p1.Done || p1.Cycles != 2000 {
		t.Fatalf("cell-1 progress = %+v", p1)
	}

	var mets map[string]obs.Snapshot
	getJSON(t, fmt.Sprintf("http://%s/metrics", addr), &mets)
	if got := mets["sweep/cell-0"].Counter("msg.readreq"); got != 41 {
		t.Fatalf("cell-0 msg.readreq = %d, want 41", got)
	}
	if got := mets["sweep/cell-1"].Counter("msg.readreq"); got != 7 {
		t.Fatalf("cell-1 msg.readreq = %d, want 7", got)
	}

	// A run that has not published yet is listed in neither view.
	o.Live().Run("sweep/cell-2")
	getJSON(t, fmt.Sprintf("http://%s/progress", addr), &prog)
	if _, ok := prog["sweep/cell-2"]; ok {
		t.Fatal("unpublished run appeared in /progress")
	}

	// pprof rides on the same mux.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %s", resp.Status)
	}

	o.Stop()
	if o.ServerAddr() != "" {
		t.Fatal("ServerAddr nonempty after Stop")
	}
}

// TestStopDrainsInFlightRequest: Stop must let a request already being
// served finish (http.Server.Shutdown semantics) instead of abandoning
// the listener with connections open.
func TestStopDrainsInFlightRequest(t *testing.T) {
	o := &Obs{tool: "clitest", pprofAddr: "127.0.0.1:0"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	addr := o.ServerAddr()

	// Park a request inside a handler, then Stop concurrently.
	entered := make(chan struct{})
	release := make(chan struct{})
	o.srv.Handler.(*http.ServeMux).HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/slow", addr))
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- string(body)
	}()
	<-entered

	stopped := make(chan struct{})
	go func() { o.Stop(); close(stopped) }()

	// New connections are refused once Shutdown has begun, but the parked
	// request must still complete.
	select {
	case <-stopped:
		t.Fatal("Stop returned while a request was in flight")
	default:
	}
	close(release)
	if body := <-got; body != "done" {
		t.Fatalf("in-flight request got %q, want %q", body, "done")
	}
	<-stopped
	if o.ServerAddr() != "" {
		t.Fatal("ServerAddr nonempty after Stop")
	}
}

// TestStartBindError: a second server on the same address must fail with
// a typed *BindError naming the address.
func TestStartBindError(t *testing.T) {
	o := &Obs{tool: "clitest", pprofAddr: "127.0.0.1:0"}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Stop()

	o2 := &Obs{tool: "clitest", pprofAddr: o.ServerAddr()}
	err := o2.Start()
	var be *BindError
	if !errors.As(err, &be) {
		t.Fatalf("second Start = %v, want *BindError", err)
	}
	if be.Addr != o.ServerAddr() {
		t.Fatalf("BindError.Addr = %q, want %q", be.Addr, o.ServerAddr())
	}
	if !strings.Contains(err.Error(), "cannot bind") {
		t.Fatalf("error text %q lacks bind detail", err)
	}
}
