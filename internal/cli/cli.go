// Package cli holds the plumbing shared by every command: uniform error
// reporting and the observability flag set (-trace, -metrics, -cpuprofile,
// -memprofile, and optionally a -pprof server) with its start/stop
// lifecycle. Commands declare their own flags, add Obs, parse, then wrap
// the run in Start/Stop.
//
// The -pprof server doubles as the live-observation endpoint: alongside
// /debug/pprof it serves /metrics and /progress, JSON views over the
// in-run snapshots that simulations publish into the Live registry
// (machine.Config.Live), so a long sweep can be watched mid-flight with
// plain curl.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"dircoh/internal/check"
	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/sim"
)

// BindError reports that the -pprof (or any command's listen) address
// could not be bound — most often because another instance already holds
// it. It wraps the net error so callers can still reach the syscall
// detail with errors.As.
type BindError struct {
	Addr string
	Err  error
}

func (e *BindError) Error() string { return fmt.Sprintf("cannot bind %s: %v", e.Addr, e.Err) }
func (e *BindError) Unwrap() error { return e.Err }

// Listen binds addr, wrapping failures in *BindError so every command
// reports an already-taken address the same way.
func Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &BindError{Addr: addr, Err: err}
	}
	return ln, nil
}

// shutdownTimeout bounds how long Stop waits for in-flight -pprof
// requests to finish before closing connections hard.
const shutdownTimeout = 5 * time.Second

// Fatalf prints "tool: message" to stderr and exits with status 1 — the
// one way commands report runtime failures.
func Fatalf(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(1)
}

// Usagef is Fatalf for bad flag values; it exits with status 2, the
// convention flag.ExitOnError uses.
func Usagef(tool, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(2)
}

// Check is Fatalf(tool, "%v", err) when err is non-nil, a no-op otherwise.
func Check(tool string, err error) {
	if err != nil {
		Fatalf(tool, "%v", err)
	}
}

// Obs bundles the observability flags every simulation command shares.
type Obs struct {
	tool string

	tracePath   string
	spanPath    string
	checkOn     bool
	checkPath   string
	sampleEvery uint64
	metricsPath string
	cpuPath     string
	memPath     string
	pprofAddr   string
	faultSpec   string
	deadline    time.Duration
	shards      int

	sink      *obs.JSONLSink
	spanSink  *obs.JSONLSink
	checkSink *obs.JSONLSink

	serverOn bool      // EnableServer was called (the -pprof flag exists)
	live     *obs.Live // live-run registry the server reads; nil until Start
	ln       net.Listener
	srv      *http.Server
	srvDone  chan struct{} // closed when the serve loop returns

	mu      sync.Mutex // serializes metrics blocks from concurrent runs
	metrics *os.File
	cpu     *os.File
}

// NewObs registers the shared observability flags on the default flag set
// and returns the handle the command drives them through. Call before
// flag.Parse.
func NewObs(tool string) *Obs {
	o := &Obs{tool: tool}
	flag.StringVar(&o.tracePath, "trace-out", "", "write a JSONL coherence-event trace to this file ('-' for stdout)")
	flag.StringVar(&o.spanPath, "span-out", "", "write JSONL transaction spans to this file ('-' for stdout; may equal -trace-out to interleave both streams)")
	flag.BoolVar(&o.checkOn, "check", false, "run the coherence invariant checker alongside the simulation; violations go to stderr (or -check-out) and fail the command")
	flag.StringVar(&o.checkPath, "check-out", "", "write JSONL invariant-violation records to this file ('-' for stdout; may equal -trace-out/-span-out to interleave; implies -check)")
	flag.Uint64Var(&o.sampleEvery, "sample-every", 0, "sample queue depths every N cycles into histograms (0 disables)")
	flag.StringVar(&o.metricsPath, "metrics", "", "write per-run metrics dumps (name value lines) to this file")
	flag.StringVar(&o.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memPath, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&o.faultSpec, "faults", "", "inject network faults: drop=P,dup=P,delay=P:MAX,outage=P:LEN:EVERY[,seed=N] (see mesh.ParseFaults; empty disables)")
	flag.DurationVar(&o.deadline, "deadline", 0, "abort a run still going after this wall-clock duration, with the liveness watchdog's diagnostic dump (0 disables)")
	flag.IntVar(&o.shards, "shards", 0, "run each machine on N parallel event-wheel shards; results are bit-identical at any N >= 1 (0 = the legacy serial engine; runs needing serial-only features fall back automatically)")
	return o
}

// EnableServer additionally registers -pprof, which serves
// net/http/pprof's /debug/pprof endpoints plus the live /metrics and
// /progress JSON views while the command runs. Call before flag.Parse.
func (o *Obs) EnableServer() *Obs {
	o.serverOn = true
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve /debug/pprof, /metrics, and /progress on this address (e.g. localhost:6060)")
	return o
}

// Live returns the registry of in-flight runs the -pprof server reads, or
// nil when the server is off (EnableServer not called, or -pprof unset).
// Commands hand each simulation a slot via Live().Run(label) wired into
// machine.Config.Live; valid after Start.
func (o *Obs) Live() *obs.Live { return o.live }

// ServerAddr returns the address the -pprof server is listening on
// ("" when it is not running). With "-pprof 127.0.0.1:0" the kernel picks
// the port; this reports the resolved one.
func (o *Obs) ServerAddr() string {
	if o.ln == nil {
		return ""
	}
	return o.ln.Addr().String()
}

// serveMetrics renders label -> latest published metrics snapshot.
func (o *Obs) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]obs.Snapshot)
	for _, run := range o.live.Runs() {
		if s := run.Latest(); s != nil {
			out[run.Label()] = s.Metrics
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "%s: /metrics: %v\n", o.tool, err)
	}
}

// progressEntry is one run's row in the /progress view: the LiveSample
// minus its metrics payload.
type progressEntry struct {
	Cycles uint64   `json:"cycles"`
	Events uint64   `json:"events"`
	Shards []uint64 `json:"shards,omitempty"`
	Done   bool     `json:"done"`
}

// serveProgress renders label -> how far the run has advanced.
func (o *Obs) serveProgress(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]progressEntry)
	for _, run := range o.live.Runs() {
		if s := run.Latest(); s != nil {
			out[run.Label()] = progressEntry{
				Cycles: s.Cycles,
				Events: s.Events,
				Shards: s.Shards,
				Done:   s.Done,
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "%s: /progress: %v\n", o.tool, err)
	}
}

// Start opens the requested outputs and starts profiling. Call after
// flag.Parse; pair with a deferred Stop.
func (o *Obs) Start() error {
	if o.cpuPath != "" {
		f, err := os.Create(o.cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		o.cpu = f
	}
	if o.tracePath != "" {
		w, err := openOut(o.tracePath)
		if err != nil {
			return err
		}
		o.sink = obs.NewJSONLSink(w)
	}
	if o.spanPath != "" {
		if o.spanPath == o.tracePath {
			// Same file: share the writer and its lock so span and event
			// lines interleave without tearing.
			o.spanSink = o.sink
		} else {
			w, err := openOut(o.spanPath)
			if err != nil {
				return err
			}
			o.spanSink = obs.NewJSONLSink(w)
		}
	}
	if o.checkPath != "" {
		switch {
		case o.checkPath == o.tracePath:
			o.checkSink = o.sink
		case o.checkPath == o.spanPath:
			o.checkSink = o.spanSink
		default:
			w, err := openOut(o.checkPath)
			if err != nil {
				return err
			}
			o.checkSink = obs.NewJSONLSink(w)
		}
	}
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return err
		}
		o.metrics = f
	}
	if o.pprofAddr != "" {
		o.live = obs.NewLive()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.HandleFunc("/metrics", o.serveMetrics)
		mux.HandleFunc("/progress", o.serveProgress)
		ln, err := Listen(o.pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		o.ln = ln
		o.srv = &http.Server{Handler: mux}
		o.srvDone = make(chan struct{})
		go func() {
			defer close(o.srvDone)
			if err := o.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "%s: pprof server: %v\n", o.tool, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "%s: serving /debug/pprof, /metrics, /progress on http://%s\n", o.tool, ln.Addr())
	}
	return nil
}

// Stop flushes and closes everything Start opened and writes the heap
// profile if one was requested. Errors are fatal: a truncated trace or
// profile silently accepted would defeat the point of asking for one.
func (o *Obs) Stop() {
	if o.srv != nil {
		// Let in-flight /metrics and /debug/pprof requests finish rather
		// than abandoning the listener; past the deadline, close hard.
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		if err := o.srv.Shutdown(ctx); err != nil {
			o.srv.Close()
		}
		cancel()
		<-o.srvDone
		o.srv = nil
		o.srvDone = nil
		o.ln = nil
	}
	if o.cpu != nil {
		pprof.StopCPUProfile()
		Check(o.tool, o.cpu.Close())
		o.cpu = nil
	}
	if o.checkSink != nil && o.checkSink != o.sink && o.checkSink != o.spanSink {
		Check(o.tool, o.checkSink.Close())
	}
	o.checkSink = nil
	if o.spanSink != nil && o.spanSink != o.sink {
		Check(o.tool, o.spanSink.Close())
	}
	o.spanSink = nil
	if o.sink != nil {
		Check(o.tool, o.sink.Close())
		o.sink = nil
	}
	if o.metrics != nil {
		Check(o.tool, o.metrics.Close())
		o.metrics = nil
	}
	if o.memPath != "" {
		f, err := os.Create(o.memPath)
		Check(o.tool, err)
		runtime.GC() // materialize the final live set
		Check(o.tool, pprof.WriteHeapProfile(f))
		Check(o.tool, f.Close())
	}
}

// Tracing reports whether -trace-out was given.
func (o *Obs) Tracing() bool { return o.sink != nil }

// Tracer returns a fresh tracer tagging its events with the given run
// label, or nil when tracing is off. Each concurrently running machine
// needs its own tracer; the shared sink serializes their batches.
func (o *Obs) Tracer(run string) *obs.Tracer {
	if o.sink == nil {
		return nil
	}
	return obs.NewTracer(o.sink.Sub(run), 0)
}

// Spanning reports whether -span-out was given.
func (o *Obs) Spanning() bool { return o.spanSink != nil }

// Spans returns a fresh span recorder tagging its spans with the given
// run label, or nil when -span-out is unset. Each concurrently running
// machine needs its own recorder; the shared sink serializes their
// batches.
func (o *Obs) Spans(run string) *obs.SpanRecorder {
	if o.spanSink == nil {
		return nil
	}
	return obs.NewSpanRecorder(o.spanSink.Sub(run), 0)
}

// Checking reports whether -check or -check-out was given.
func (o *Obs) Checking() bool { return o.checkOn || o.checkPath != "" }

// CheckSink returns the violation sink for one run, tagged with the run
// label: JSONL records when -check-out is set (sharing the trace/span
// writer when the paths coincide), stderr lines under bare -check, nil
// when checking is off. A nil sink still lets the machine count and store
// violations; the caller reports them via Machine.CheckErr.
func (o *Obs) CheckSink(run string) check.Sink {
	if o.checkSink != nil {
		return check.NewJSONLSink(o.checkSink, run)
	}
	if o.checkOn {
		return check.NewWriterSink(os.Stderr, run)
	}
	return nil
}

// SampleEvery returns the -sample-every period in cycles (0 = disabled).
func (o *Obs) SampleEvery() sim.Time { return sim.Time(o.sampleEvery) }

// Faults parses the -faults spec, exiting with a usage error on a bad
// value. The zero FaultConfig (faults disabled) is returned when the flag
// is unset.
func (o *Obs) Faults() mesh.FaultConfig {
	if o.faultSpec == "" {
		return mesh.FaultConfig{}
	}
	fc, err := mesh.ParseFaults(o.faultSpec)
	if err != nil {
		Usagef(o.tool, "-faults: %v", err)
	}
	return fc
}

// Deadline returns the -deadline wall-clock bound (0 = disabled).
func (o *Obs) Deadline() time.Duration { return o.deadline }

// Shards returns the -shards machine-core width (0 = the serial engine).
func (o *Obs) Shards() int { return o.shards }

// openOut opens path for writing; "-" selects stdout, wrapped so the sink
// flushes on Close without closing the process's stdout.
func openOut(path string) (io.Writer, error) {
	if path == "-" {
		return stdoutWriter{}, nil
	}
	return os.Create(path)
}

type stdoutWriter struct{}

func (stdoutWriter) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// WriteMetrics appends one run's metrics snapshot to the -metrics file
// (no-op when the flag is unset). Blocks are "# run <label>" headers
// followed by sorted "name value" lines; concurrent runs are serialized.
func (o *Obs) WriteMetrics(run string, snap obs.Snapshot) {
	if o.metrics == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	_, err := fmt.Fprintf(o.metrics, "# run %s\n", run)
	if err == nil {
		err = snap.WriteText(o.metrics)
	}
	Check(o.tool, err)
}
