package trace

import (
	"bytes"
	"testing"

	"dircoh/internal/tango"
)

// FuzzRead feeds arbitrary bytes to the trace parser: it must never panic
// and must either fail with ErrFormat or return a structurally valid
// workload that re-serializes.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and a few corruptions.
	var b tango.Builder
	b.Read(0)
	b.Write(16)
	b.Barrier(32)
	wl := &tango.Workload{Name: "seed", SharedBytes: 48, Streams: [][]tango.Ref{b.Refs(), nil}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DCTR"))
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)/2] ^= 0xFF
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must roundtrip.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Name != got.Name || len(again.Streams) != len(got.Streams) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
