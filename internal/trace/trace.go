// Package trace serializes tango workloads to a compact binary format, so
// reference traces can be generated once (cmd/tracegen) and replayed into
// any machine configuration — the paper's other Tango operating mode
// ("Tango can be used to generate multiprocessor reference traces").
//
// Format (little-endian):
//
//	magic   "DCTR"            4 bytes
//	version uint16            currently 1
//	name    uvarint length + bytes
//	shared  uvarint           shared bytes touched
//	procs   uvarint
//	per processor:
//	  count uvarint
//	  count records: op byte, addr delta as signed varint
//
// Addresses are delta-encoded per processor; sequential access patterns
// compress to one or two bytes per reference.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dircoh/internal/tango"
)

var magic = [4]byte{'D', 'C', 'T', 'R'}

// Version is the current format version.
const Version = 1

// ErrFormat is returned when the input is not a valid trace.
var ErrFormat = errors.New("trace: invalid format")

// Write serializes w's streams to out.
func Write(out io.Writer, wl *tango.Workload) error {
	bw := bufio.NewWriter(out)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	if err := binary.Write(bw, binary.LittleEndian, uint16(Version)); err != nil {
		return err
	}
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := putUvarint(uint64(len(wl.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(wl.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(wl.SharedBytes)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(wl.Streams))); err != nil {
		return err
	}
	for _, s := range wl.Streams {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		prev := int64(0)
		for _, r := range s {
			if err := bw.WriteByte(byte(r.Op)); err != nil {
				return err
			}
			if err := putVarint(r.Addr - prev); err != nil {
				return err
			}
			prev = r.Addr
		}
	}
	return bw.Flush()
}

// Read parses a trace produced by Write.
func Read(in io.Reader) (*tango.Workload, error) {
	br := bufio.NewReader(in)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	const maxName = 1 << 16
	if nameLen > maxName {
		return nil, fmt.Errorf("%w: name too long (%d)", ErrFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	shared, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	procs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	const maxProcs = 1 << 20
	if procs > maxProcs {
		return nil, fmt.Errorf("%w: implausible processor count %d", ErrFormat, procs)
	}
	wl := &tango.Workload{Name: string(name), SharedBytes: int64(shared)}
	for p := uint64(0); p < procs; p++ {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		// Cap the initial allocation: a corrupt count must not balloon
		// memory before the per-record reads hit EOF.
		capHint := count
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		refs := make([]tango.Ref, 0, capHint)
		prev := int64(0)
		for i := uint64(0); i < count; i++ {
			op, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			if tango.Op(op) > tango.Barrier {
				return nil, fmt.Errorf("%w: unknown op %d", ErrFormat, op)
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			prev += delta
			if prev < 0 {
				return nil, fmt.Errorf("%w: negative address", ErrFormat)
			}
			refs = append(refs, tango.Ref{Op: tango.Op(op), Addr: prev})
		}
		wl.Streams = append(wl.Streams, refs)
	}
	// Trailing garbage means the file was not produced by Write.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data", ErrFormat)
	}
	return wl, nil
}
