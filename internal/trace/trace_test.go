package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dircoh/internal/apps"
	"dircoh/internal/tango"
)

func roundtrip(t *testing.T, wl *tango.Workload) *tango.Workload {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertEqual(t *testing.T, a, b *tango.Workload) {
	t.Helper()
	if a.Name != b.Name || a.SharedBytes != b.SharedBytes || len(a.Streams) != len(b.Streams) {
		t.Fatalf("header mismatch: %q/%d/%d vs %q/%d/%d",
			a.Name, a.SharedBytes, len(a.Streams), b.Name, b.SharedBytes, len(b.Streams))
	}
	for p := range a.Streams {
		if len(a.Streams[p]) != len(b.Streams[p]) {
			t.Fatalf("proc %d: %d vs %d refs", p, len(a.Streams[p]), len(b.Streams[p]))
		}
		for i := range a.Streams[p] {
			if a.Streams[p][i] != b.Streams[p][i] {
				t.Fatalf("proc %d ref %d: %v vs %v", p, i, a.Streams[p][i], b.Streams[p][i])
			}
		}
	}
}

func TestRoundtripApps(t *testing.T) {
	for _, name := range apps.Names() {
		wl := apps.ByName(name, 4)
		assertEqual(t, wl, roundtrip(t, wl))
	}
}

func TestRoundtripEmptyStreams(t *testing.T) {
	wl := &tango.Workload{Name: "empty", Streams: [][]tango.Ref{nil, {}, nil}}
	got := roundtrip(t, wl)
	if len(got.Streams) != 3 {
		t.Fatalf("streams = %d", len(got.Streams))
	}
}

func TestCompression(t *testing.T) {
	// Sequential addresses should cost ~2-3 bytes per reference.
	var b tango.Builder
	for i := int64(0); i < 10000; i++ {
		b.Read(i * 8)
	}
	wl := &tango.Workload{Name: "seq", Streams: [][]tango.Ref{b.Refs()}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	if per := float64(buf.Len()) / 10000; per > 3 {
		t.Fatalf("%.1f bytes/ref, want <= 3 for sequential trace", per)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x01\x00"),
		"truncated": {'D', 'C', 'T', 'R', 1},
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

func TestReadBadVersion(t *testing.T) {
	wl := &tango.Workload{Name: "x", Streams: [][]tango.Ref{{{Op: tango.Read, Addr: 0}}}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version low byte
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestReadTrailingGarbage(t *testing.T) {
	wl := &tango.Workload{Name: "x", Streams: [][]tango.Ref{{{Op: tango.Read, Addr: 8}}}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xFF)
	if _, err := Read(&buf); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestReadBadOp(t *testing.T) {
	wl := &tango.Workload{Name: "x", Streams: [][]tango.Ref{{{Op: tango.Read, Addr: 8}}}}
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The op byte is the first byte after the stream count; find it by
	// corrupting the last two bytes (op, delta) region.
	data[len(data)-2] = 200
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// Property: arbitrary workloads roundtrip bit-exactly.
func TestQuickRoundtrip(t *testing.T) {
	f := func(rawStreams [][]uint32, name string) bool {
		wl := &tango.Workload{Name: name, SharedBytes: 12345}
		for _, raw := range rawStreams {
			var refs []tango.Ref
			for _, v := range raw {
				refs = append(refs, tango.Ref{
					Op:   tango.Op(v % 5),
					Addr: int64(v >> 3),
				})
			}
			wl.Streams = append(wl.Streams, refs)
		}
		var buf bytes.Buffer
		if err := Write(&buf, wl); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Name != wl.Name || len(got.Streams) != len(wl.Streams) {
			return false
		}
		for p := range wl.Streams {
			if len(got.Streams[p]) != len(wl.Streams[p]) {
				return false
			}
			for i := range wl.Streams[p] {
				if got.Streams[p][i] != wl.Streams[p][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// errWriter fails after n bytes, covering Write's error paths.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errShort
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errShort
	}
	w.n -= len(p)
	return len(p), nil
}

var errShort = errors.New("short write")

func TestWriteErrors(t *testing.T) {
	var big tango.Builder
	for i := int64(0); i < 3000; i++ {
		big.Write(i * 1024)
	}
	wl := &tango.Workload{Name: "x", Streams: [][]tango.Ref{big.Refs()}}
	// Sweep failure points; every prefix must surface the error.
	for _, n := range []int{0, 3, 4, 6, 8, 12, 100, 5000} {
		if err := Write(&errWriter{n: n}, wl); err == nil {
			t.Errorf("n=%d: expected error", n)
		}
	}
}
