package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestWheelMatchesEngine cross-checks the wheel against the heap engine on
// a randomized schedule, including events that schedule further events:
// both must fire the same callbacks in the same order at the same times.
func TestWheelMatchesEngine(t *testing.T) {
	run := func(s Scheduler) []int {
		var order []int
		rng := rand.New(rand.NewSource(42))
		id := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 30
			if depth > 0 {
				n = 2
			}
			for i := 0; i < n; i++ {
				myID := id
				id++
				d := Time(rng.Intn(700)) // crosses the wheel horizon both ways
				s.After(d, func() {
					order = append(order, myID)
					if depth < 3 && myID%3 == 0 {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		s.Run()
		return order
	}
	eng := run(&Engine{})
	whl := run(NewWheel(64))
	if !reflect.DeepEqual(eng, whl) {
		t.Fatalf("firing order diverged:\nengine: %v\nwheel:  %v", eng, whl)
	}
}

// TestWheelTieBreakAcrossBuckets pins the key ordering for equal-time
// events that reach the slot by different routes: one through the overflow
// heap (scheduled beyond the horizon), one bucketed directly later. The
// smaller key must fire first even though it was inserted second.
func TestWheelTieBreakAcrossBuckets(t *testing.T) {
	w := NewWheel(8)
	var order []string
	w.AtKey(9, 2, func() { order = append(order, "overflow") }) // 9-0 >= 8: overflow heap
	w.AtKey(5, 1, func() {
		// now = 5: t=9 is inside the horizon, bucketed directly with a
		// smaller key than the overflow event already bound for t=9.
		w.AtKey(9, 1, func() { order = append(order, "direct") })
	})
	w.Run()
	want := []string{"direct", "overflow"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("tie-break order = %v, want %v", order, want)
	}
	if w.Now() != 9 {
		t.Fatalf("final time = %d, want 9", w.Now())
	}
}

// TestWheelKeyOrderInsertionIndependent verifies AtKey order does not
// depend on insertion order — the property the sharded machine core's
// deterministic cross-shard merge rests on.
func TestWheelKeyOrderInsertionIndependent(t *testing.T) {
	type ev struct {
		at  Time
		key uint64
	}
	evs := []ev{{20, 7}, {20, 3}, {5, 1}, {300, 2}, {300, 9}, {20, 5}, {5, 4}}
	var first []ev
	for perm := 0; perm < 3; perm++ {
		w := NewWheel(16)
		var got []ev
		for i := range evs {
			e := evs[(i+perm*3)%len(evs)]
			w.AtKey(e.at, e.key, func() { got = append(got, e) })
		}
		w.Run()
		if perm == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("insertion order %d changed firing order: %v vs %v", perm, got, first)
		}
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.at > b.at || (a.at == b.at && a.key > b.key) {
			t.Fatalf("fired out of (at,key) order: %v before %v", a, b)
		}
	}
}

// TestWheelRunUntilExactDeadline exercises RunUntil with an event exactly
// at the deadline, including an in-flight callback that schedules another
// event at the deadline itself: both must fire, the later event must not,
// and the engine must agree.
func TestWheelRunUntilExactDeadline(t *testing.T) {
	for _, s := range []Scheduler{&Engine{}, NewWheel(8)} {
		var fired []string
		s.At(5, func() { fired = append(fired, "early") })
		s.At(10, func() {
			fired = append(fired, "deadline")
			s.At(10, func() { fired = append(fired, "inflight") }) // same-cycle chain
		})
		s.At(11, func() { fired = append(fired, "late") })
		if s.RunUntil(10) {
			t.Fatalf("%T: RunUntil(10) drained, event at 11 still pending", s)
		}
		want := []string{"early", "deadline", "inflight"}
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("%T: fired %v, want %v", s, fired, want)
		}
		if s.Now() != 10 {
			t.Fatalf("%T: Now() = %d after RunUntil(10), want 10", s, s.Now())
		}
		if s.Pending() != 1 {
			t.Fatalf("%T: %d events pending, want 1", s, s.Pending())
		}
		if !s.RunUntil(11) {
			t.Fatalf("%T: RunUntil(11) did not drain", s)
		}
		if fired[len(fired)-1] != "late" {
			t.Fatalf("%T: event at 11 never fired: %v", s, fired)
		}
	}
}

// TestAfterOverflow pins the behavior of After near the top of the Time
// range for both schedulers: a delay that still fits schedules normally, a
// delay that wraps panics instead of corrupting causality.
func TestAfterOverflow(t *testing.T) {
	const high = Time(math.MaxUint64) - 10
	for _, s := range []Scheduler{&Engine{}, NewWheel(8)} {
		s.At(high, func() {})
		s.Step() // now = MaxUint64-10
		if s.Now() != high {
			t.Fatalf("%T: Now() = %d, want %d", s, s.Now(), high)
		}
		ran := false
		s.After(10, func() { ran = true }) // lands exactly on MaxUint64
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%T: After(11) near MaxUint64 did not panic", s)
				}
			}()
			s.After(11, func() {})
		}()
		s.Run()
		if !ran {
			t.Fatalf("%T: event at MaxUint64 never fired", s)
		}
		if s.Now() != math.MaxUint64 {
			t.Fatalf("%T: final time %d, want MaxUint64", s, s.Now())
		}
	}
}

// TestWheelPastPanics matches the engine's contract for scheduling behind
// the current time.
func TestWheelPastPanics(t *testing.T) {
	w := NewWheel(8)
	w.At(5, func() {})
	w.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("At(3) with now=5 did not panic")
		}
	}()
	w.At(3, func() {})
}

func BenchmarkEngineChurn(b *testing.B) { benchChurn(b, func() Scheduler { return &Engine{} }) }
func BenchmarkWheelChurn(b *testing.B)  { benchChurn(b, func() Scheduler { return NewWheel(0) }) }

// benchChurn models the machine's event pattern: each fired event schedules
// a successor a short latency ahead, over a population of concurrent chains.
func benchChurn(b *testing.B, mk func() Scheduler) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := mk()
		remaining := 200_000
		var chain func()
		chain = func() {
			if remaining <= 0 {
				return
			}
			remaining--
			s.After(Time(13+remaining%40), chain)
		}
		for c := 0; c < 64; c++ {
			s.After(Time(c%17), chain)
		}
		s.Run()
	}
}
