package sim

import (
	"testing"
	"testing/quick"
)

func TestZeroEngine(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 || e.Fired() != 0 {
		t.Fatal("zero engine not pristine")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
	if e.Run() != 0 {
		t.Fatal("Run on empty queue should return time 0")
	}
}

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", e.Fired())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterAndChaining(t *testing.T) {
	var e Engine
	var hits []Time
	e.After(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestSchedulingPastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	for _, t := range []Time{5, 10, 15, 20} {
		e.At(t, func() { fired++ })
	}
	if e.RunUntil(12) {
		t.Fatal("queue should not have drained")
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	if !e.RunUntil(100) {
		t.Fatal("queue should drain")
	}
	if fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
}

func TestRunUntilIncludesNewlyScheduled(t *testing.T) {
	var e Engine
	var hits []Time
	e.At(5, func() {
		hits = append(hits, e.Now())
		e.After(3, func() { hits = append(hits, e.Now()) }) // t=8 <= 10
	})
	e.RunUntil(10)
	if len(hits) != 2 || hits[1] != 8 {
		t.Fatalf("hits = %v", hits)
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestQuickMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var times []Time
		for _, d := range delays {
			e.At(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
