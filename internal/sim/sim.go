// Package sim provides deterministic discrete-event simulation engines.
//
// Events are callbacks scheduled at integer cycle times. Ties are broken by
// insertion order, so a simulation run is fully reproducible. Two
// implementations of the Scheduler interface are provided: the heap-based
// Engine (the serial default) and the timing Wheel (see wheel.go), whose
// explicit ordering keys the sharded machine core builds on.
package sim

import "container/heap"

// Time is a simulation timestamp in processor cycles.
type Time = uint64

// Event is a scheduled callback.
type Event func()

type item struct {
	at  Time
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h eventHeap) peek() item    { return h[0] }

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality.
func (e *Engine) At(t Time, fn Event) {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	heap.Push(&e.events, item{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now. A delay that would
// overflow Time panics: wrapping would silently schedule in the past.
func (e *Engine) After(delay Time, fn Event) {
	t := e.now + delay
	if t < e.now {
		panic("sim: After overflows sim.Time")
	}
	e.At(t, fn)
}

// Step fires the next event, advancing time to it. It reports whether an
// event was fired.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := e.events.peek()
	heap.Pop(&e.events)
	e.now = it.at
	e.fired++
	it.fn()
	return true
}

// Run fires events until none remain and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline (events an in-flight
// callback schedules at or before the deadline are also fired). It returns
// true if the queue drained, false if the deadline stopped it.
func (e *Engine) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events.peek().at > deadline {
			return false
		}
		e.Step()
	}
	return true
}
