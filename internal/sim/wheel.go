package sim

// Scheduler is the discrete-event scheduling interface the simulator cores
// program against. The heap Engine (the serial default) and the timing
// Wheel (the sharded machine core's per-shard calendar) are interchangeable
// behind it.
type Scheduler interface {
	// Now returns the current simulation time.
	Now() Time
	// At schedules fn at absolute time t; scheduling in the past panics.
	At(t Time, fn Event)
	// After schedules fn delay cycles from now; overflowing Time panics.
	After(delay Time, fn Event)
	// Step fires the next event, advancing time to it, and reports
	// whether an event was fired.
	Step() bool
	// Run fires events until none remain and returns the final time.
	Run() Time
	// RunUntil fires events with timestamps <= deadline (including events
	// an in-flight callback schedules at or before it) and returns true
	// if the queue drained, false if the deadline stopped it.
	RunUntil(deadline Time) bool
	// Fired returns the number of events executed so far.
	Fired() uint64
	// Pending returns the number of scheduled-but-unfired events.
	Pending() int
}

var (
	_ Scheduler = (*Engine)(nil)
	_ Scheduler = (*Wheel)(nil)
)

// DefaultWheelSlots is the wheel size NewWheel(0) selects: large enough
// that every intra-machine latency (bus, directory, mesh transit) lands in
// a slot, small enough to scan cheaply when jumping idle gaps.
const DefaultWheelSlots = 256

// witem is one scheduled event. Events are totally ordered by (at, key):
// key is an insertion sequence for At and a caller-chosen rank for AtKey,
// so equal-time events fire in a deterministic, insertion-order-independent
// sequence when keys are assigned deterministically.
type witem struct {
	at  Time
	key uint64
	fn  Event
}

func witemLess(a, b witem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// wpush adds it to the min-heap h ordered by witemLess.
func wpush(h []witem, it witem) []witem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !witemLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// wpop removes and returns the minimum of the min-heap h.
func wpop(h []witem) (witem, []witem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = witem{} // drop the callback reference
	h = h[:n]
	i := 0
	for {
		l, r, s := 2*i+1, 2*i+2, i
		if l < n && witemLess(h[l], h[s]) {
			s = l
		}
		if r < n && witemLess(h[r], h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top, h
}

// Wheel is a timing-wheel scheduler: events within the wheel's horizon hash
// into per-cycle slots (each slot a tiny heap), events beyond it wait in an
// overflow heap and migrate in as time advances. Scheduling and firing are
// O(log k) in the events sharing a timestamp, with no global heap, and
// idle gaps are jumped by scanning at most one wheel revolution.
//
// Like the Engine, a Wheel fires equal-time events in insertion order when
// scheduled with At. AtKey additionally lets the caller impose an explicit
// total order on equal-time events — the hook the sharded machine core uses
// to make event order independent of which shard scheduled what first.
type Wheel struct {
	slots  [][]witem // per-cycle buckets, each a (at,key) min-heap
	mask   Time
	now    Time
	auto   uint64 // At's insertion sequence (shared key space with AtKey)
	inSlot int    // events currently bucketed
	over   []witem
	fired  uint64
	curKey uint64 // ordering key of the event currently firing
}

// NewWheel returns a wheel with the given slot count (a power of two;
// 0 selects DefaultWheelSlots).
func NewWheel(slots int) *Wheel {
	if slots <= 0 {
		slots = DefaultWheelSlots
	}
	if slots&(slots-1) != 0 {
		panic("sim: wheel slot count must be a power of two")
	}
	return &Wheel{slots: make([][]witem, slots), mask: Time(slots - 1)}
}

// Now returns the current simulation time.
func (w *Wheel) Now() Time { return w.now }

// Fired returns the number of events executed so far.
func (w *Wheel) Fired() uint64 { return w.fired }

// Pending returns the number of scheduled-but-unfired events.
func (w *Wheel) Pending() int { return w.inSlot + len(w.over) }

// FiringKey returns the ordering key of the event currently being fired.
// Together with Now it identifies the firing event's position in the
// wheel's total (time, key) order — the stamp the sharded machine core
// attaches to observability records so per-shard buffers merge back into
// the canonical global order. Outside a callback it returns the key of
// the most recently fired event (0 before the first).
func (w *Wheel) FiringKey() uint64 { return w.curKey }

// At schedules fn at absolute time t. Equal-time events scheduled with At
// fire in insertion order. Scheduling in the past panics.
func (w *Wheel) At(t Time, fn Event) {
	w.auto++
	w.insert(witem{at: t, key: w.auto, fn: fn})
}

// AtKey schedules fn at absolute time t with an explicit ordering key:
// equal-time events fire in ascending key order no matter the order they
// were inserted in. Callers must keep keys unique per timestamp (the
// sharded machine core derives them from the scheduling cluster and its
// event sequence). Keys share one space with At's insertion sequence, so a
// caller should use either At or AtKey on a wheel, not both.
func (w *Wheel) AtKey(t Time, key uint64, fn Event) {
	w.insert(witem{at: t, key: key, fn: fn})
}

// After schedules fn to run delay cycles from now. A delay that would
// overflow Time panics: wrapping would silently schedule in the past.
func (w *Wheel) After(delay Time, fn Event) {
	t := w.now + delay
	if t < w.now {
		panic("sim: After overflows sim.Time")
	}
	w.At(t, fn)
}

func (w *Wheel) insert(it witem) {
	if it.at < w.now {
		panic("sim: scheduling event in the past")
	}
	if it.at-w.now >= Time(len(w.slots)) {
		w.over = wpush(w.over, it)
		return
	}
	s := it.at & w.mask
	w.slots[s] = wpush(w.slots[s], it)
	w.inSlot++
}

// migrate moves overflow events that have come inside the horizon into
// their slots.
func (w *Wheel) migrate() {
	horizon := Time(len(w.slots))
	for len(w.over) > 0 && w.over[0].at-w.now < horizon {
		var it witem
		it, w.over = wpop(w.over)
		s := it.at & w.mask
		w.slots[s] = wpush(w.slots[s], it)
		w.inSlot++
	}
}

// NextTime returns the earliest pending event time.
func (w *Wheel) NextTime() (Time, bool) {
	w.migrate()
	if w.inSlot > 0 {
		// Every bucketed event is within one revolution of now, so the
		// scan terminates at the first non-empty slot.
		for d := Time(0); d < Time(len(w.slots)); d++ {
			if s := w.slots[(w.now+d)&w.mask]; len(s) > 0 {
				return s[0].at, true
			}
		}
	}
	if len(w.over) > 0 {
		return w.over[0].at, true
	}
	return 0, false
}

// Step fires the next event, advancing time to it. It reports whether an
// event was fired.
func (w *Wheel) Step() bool {
	t, ok := w.NextTime()
	if !ok {
		return false
	}
	w.fire(t)
	return true
}

// fire advances to t and runs the minimum-key event scheduled there.
func (w *Wheel) fire(t Time) {
	if t > w.now {
		w.now = t
		// Advancing may bring overflow events to exactly t with smaller
		// keys than the bucketed ones; merge them before popping.
		w.migrate()
	}
	s := t & w.mask
	var it witem
	it, w.slots[s] = wpop(w.slots[s])
	w.inSlot--
	w.fired++
	w.curKey = it.key
	it.fn()
}

// Run fires events until none remain and returns the final time.
func (w *Wheel) Run() Time {
	for w.Step() {
	}
	return w.now
}

// RunUntil fires events with timestamps <= deadline (events an in-flight
// callback schedules at or before the deadline are also fired). It returns
// true if the queue drained, false if the deadline stopped it.
func (w *Wheel) RunUntil(deadline Time) bool {
	for {
		t, ok := w.NextTime()
		if !ok {
			return true
		}
		if t > deadline {
			return false
		}
		w.fire(t)
	}
}
