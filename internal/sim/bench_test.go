package sim

import "testing"

// BenchmarkEngineThroughput measures raw event throughput with a steady
// queue depth, the dominant cost of large simulations.
func BenchmarkEngineThroughput(b *testing.B) {
	var e Engine
	const depth = 1024
	fire := func() {}
	for i := 0; i < depth; i++ {
		e.At(Time(i), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(depth, fire) // keep the queue at constant depth
		e.Step()
	}
}

func BenchmarkEngineBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.At(Time(j%17), func() {})
		}
		e.Run()
	}
}
