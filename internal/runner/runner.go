// Package runner schedules independent simulation jobs across a bounded
// worker pool. The paper's evaluation is a grid of independent runs
// (schemes × applications × machine sizes × sparse configurations); the
// pool shards that grid across goroutines with work stealing, while
// Collect returns results in submission order, so parallel output is
// byte-identical to a serial sweep regardless of completion order.
//
// The scheduler is deliberately simple: each worker owns a contiguous
// range of job indices and pops from its front; a worker whose range
// drains steals the tail half of the richest remaining range. Jobs here
// are whole machine simulations (milliseconds to seconds each), so the
// single mutex guarding the ranges is never contended enough to matter.
package runner

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool. The zero-size pool (and a nil *Pool)
// degenerate to serial execution in the calling goroutine.
type Pool struct {
	workers int
}

// New returns a pool with the given number of workers; workers <= 0
// selects GOMAXPROCS, the "use the whole host" default.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// span is one worker's half-open range [next, limit) of unclaimed jobs.
type span struct {
	next, limit int
}

// Collect runs job(0) … job(n-1) on the pool and returns their results
// indexed by job number — submission order, never completion order. A
// panic in any job is re-raised in the caller after the remaining
// workers drain.
func Collect[R any](p *Pool, n int, job func(i int) R) []R {
	out, _ := CollectCtx(nil, p, n, job)
	return out
}

// CollectCtx is Collect with cooperative cancellation: once ctx is done,
// workers finish the job they are currently executing but claim no new
// ones — the "finish the in-flight window" discipline graceful drains
// need. It returns the (partial) results plus a mask of which jobs
// actually ran; with a nil or never-cancelled context every job runs and
// the call is exactly Collect.
func CollectCtx[R any](ctx context.Context, p *Pool, n int, job func(i int) R) ([]R, []bool) {
	out := make([]R, n)
	ran := make([]bool, n)
	cancelled := func() bool {
		if ctx == nil {
			return false
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				break
			}
			out[i] = job(i)
			ran[i] = true
		}
		return out, ran
	}

	spans := make([]span, w)
	for k := range spans {
		spans[k] = span{next: k * n / w, limit: (k + 1) * n / w}
	}
	var mu sync.Mutex
	// take claims the next job for worker k: the front of its own span,
	// or — once that drains — the tail half (at least one job) of the
	// victim span with the most work left.
	take := func(k int) (int, bool) {
		if cancelled() {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		s := &spans[k]
		if s.next >= s.limit {
			victim, best := -1, 0
			for j := range spans {
				if left := spans[j].limit - spans[j].next; left > best {
					victim, best = j, left
				}
			}
			if victim < 0 {
				return 0, false
			}
			v := &spans[victim]
			mid := v.next + (v.limit-v.next)/2
			s.next, s.limit = mid, v.limit
			v.limit = mid
		}
		i := s.next
		s.next++
		return i, true
	}

	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i, ok := take(k)
				if !ok {
					return
				}
				out[i] = job(i)
				ran[i] = true
			}
		}(k)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out, ran
}

// Map runs fn over every item concurrently and returns the results in
// item order.
func Map[T, R any](p *Pool, items []T, fn func(T) R) []R {
	return Collect(p, len(items), func(i int) R { return fn(items[i]) })
}
