package runner

import (
	"context"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestCollectOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		p := New(workers)
		got := Collect(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestCollectRunsEveryJobOnce(t *testing.T) {
	var counts [257]atomic.Int32
	p := New(8)
	Collect(p, len(counts), func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

// TestCollectSkewedJobs makes the first worker's span far heavier than
// the rest: without stealing the run would serialize behind it.
func TestCollectSkewedJobs(t *testing.T) {
	p := New(4)
	got := Collect(p, 32, func(i int) int {
		if i < 8 { // the first span: slow jobs
			time.Sleep(2 * time.Millisecond)
		}
		return i + 1
	})
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

func TestCollectZeroJobs(t *testing.T) {
	if got := Collect(New(4), 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("want empty result, got %v", got)
	}
}

func TestCollectNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	order := make([]int, 0, 5)
	Collect(p, 5, func(i int) int {
		order = append(order, i) // safe: serial execution
		return i
	})
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("nil pool did not run serially in order: %v", order)
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d, want 5", got)
	}
}

func TestCollectPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom 7" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Collect(New(4), 16, func(i int) int {
		if i == 7 {
			panic("boom 7")
		}
		return i
	})
}

func TestMap(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got := Map(New(3), items, func(s string) int { return len(s) })
	if !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("Map = %v", got)
	}
}

// TestCollectCtxUncancelled: with a background context every job runs and
// results match Collect exactly.
func TestCollectCtxUncancelled(t *testing.T) {
	p := New(4)
	out, ran := CollectCtx(context.Background(), p, 50, func(i int) int { return i * i })
	for i, r := range out {
		if r != i*i {
			t.Fatalf("job %d: got %d", i, r)
		}
		if !ran[i] {
			t.Fatalf("job %d not marked ran", i)
		}
	}
}

// TestCollectCtxCancel: cancelling mid-run stops new claims; in-flight
// jobs finish and are marked ran, unclaimed jobs are not.
func TestCollectCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	p := New(2)
	out, ran := CollectCtx(ctx, p, 100, func(i int) int {
		if started.Add(1) == 5 {
			cancel()
		}
		return i + 1
	})
	ranN := 0
	for i := range ran {
		if ran[i] {
			ranN++
			if out[i] != i+1 {
				t.Fatalf("job %d ran but result %d", i, out[i])
			}
		} else if out[i] != 0 {
			t.Fatalf("job %d did not run but result %d", i, out[i])
		}
	}
	if ranN == 0 || ranN == 100 {
		t.Fatalf("expected a partial run, got %d/100", ranN)
	}
}

// TestCollectCtxCancelSerial: the serial path (1 worker) honors
// cancellation between jobs too.
func TestCollectCtxCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, ran := CollectCtx(ctx, New(1), 10, func(i int) int {
		n++
		if n == 3 {
			cancel()
		}
		return i
	})
	ranN := 0
	for _, r := range ran {
		if r {
			ranN++
		}
	}
	if ranN != 3 {
		t.Fatalf("expected 3 jobs before cancel, got %d", ranN)
	}
}
