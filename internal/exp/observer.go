package exp

import (
	"sync"

	"dircoh/internal/obs"
)

// Observer supplies per-run observability to the experiment drivers.
// Tracer, when non-nil, is called before each machine is built and must
// return a tracer private to that run (runs execute concurrently on the
// pool) or nil to leave that run untraced. Metrics, when non-nil,
// receives each finished run's metrics snapshot. The run label is
// "app/label", matching the figures' row captions.
type Observer struct {
	Tracer  func(run string) *obs.Tracer
	Metrics func(run string, snap obs.Snapshot)
}

var (
	observerMu sync.RWMutex
	observer   Observer
)

// SetObserver installs the hooks used by every subsequent run. Call it
// before starting a sweep; the zero Observer disables both hooks.
func SetObserver(o Observer) {
	observerMu.Lock()
	observer = o
	observerMu.Unlock()
}

func currentObserver() Observer {
	observerMu.RLock()
	defer observerMu.RUnlock()
	return observer
}
