package exp

import (
	"time"

	"dircoh/internal/check"
	"dircoh/internal/mesh"
	"dircoh/internal/obs"
	"dircoh/internal/sim"
)

// Observer supplies per-run observability to the experiment drivers.
// Tracer and Spans, when non-nil, are called before each machine is built
// and must return a tracer / span recorder private to that run (runs
// execute concurrently on the pool) or nil to leave that run
// uninstrumented. Metrics, when non-nil, receives each finished run's
// metrics snapshot. SampleEvery, when > 0, enables queue-depth sampling
// at that period on every run. Check, when non-nil, enables the runtime
// coherence invariant checker on every run, with the returned sink (which
// may be nil) receiving that run's violation records; any violation fails
// the run. The run label is "app/label", matching the figures' row
// captions.
type Observer struct {
	Tracer      func(run string) *obs.Tracer
	Spans       func(run string) *obs.SpanRecorder
	Metrics     func(run string, snap obs.Snapshot)
	Check       func(run string) check.Sink
	SampleEvery sim.Time
	// Faults, when enabled, injects the same network fault mix into every
	// run (the per-machine fault stream still derives from each run's
	// seed, so runs stay independent and reproducible).
	Faults mesh.FaultConfig
	// Deadline, when > 0, bounds each run in wall-clock time via the
	// machine's watchdog abort.
	Deadline time.Duration
	// Live, when non-nil, registers every run under its "app/label" name
	// and wires the slot into the machine, which publishes in-run progress
	// and metrics snapshots into it (read by the -pprof server's /metrics
	// and /progress endpoints).
	Live *obs.Live
}
