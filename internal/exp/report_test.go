package exp

import (
	"errors"
	"strings"
	"testing"
)

func TestReportOptionsDefaults(t *testing.T) {
	got := (ReportOptions{}).withDefaults()
	if got.Procs != Procs || got.Trials != 2000 {
		t.Fatalf("withDefaults() = %+v", got)
	}
	// Explicit values survive.
	kept := (ReportOptions{Procs: 8, Trials: 50}).withDefaults()
	if kept.Procs != 8 || kept.Trials != 50 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", kept)
	}
	def := DefaultReportOptions()
	if !def.Sparse || !def.Ablations || def.Procs != Procs {
		t.Fatalf("DefaultReportOptions() = %+v", def)
	}
}

func TestWriteReportCore(t *testing.T) {
	var b strings.Builder
	opt := ReportOptions{Procs: 8, Trials: 32, Sparse: false, Ablations: false}
	if err := ts.WriteReport(&b, opt); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Evaluation report (8 processors)",
		"## Figure 2",
		"## Table 1",
		"## Table 2",
		"## Figures 3–6",
		"## Figure 7 — performance for LU",
		"## Figure 10 — performance for LocusRoute",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, absent := range []string{"## Figure 11", "## Ablations"} {
		if strings.Contains(out, absent) {
			t.Errorf("report should not contain %q with Sparse/Ablations off", absent)
		}
	}
}

func TestWriteReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sparse and ablation studies")
	}
	var b strings.Builder
	opt := ReportOptions{Procs: 8, Trials: 32, Sparse: true, Ablations: true}
	if err := ts.WriteReport(&b, opt); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"## Figure 11", "## Figure 14",
		"## Ablations", "Queued-lock hot spot", "Block-size tradeoff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full report missing %q", want)
		}
	}
}

// failAfter errors every write past a byte budget — the disk-full case.
type failAfter struct {
	n int
}

var errDiskFull = errors.New("disk full")

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errDiskFull
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteReportPropagatesWriteError(t *testing.T) {
	err := ts.WriteReport(&failAfter{n: 64}, ReportOptions{Procs: 8, Trials: 16})
	if !errors.Is(err, errDiskFull) {
		t.Fatalf("WriteReport error = %v, want %v", err, errDiskFull)
	}
}
