package exp

import (
	"sync"

	"dircoh/internal/runner"
	"dircoh/internal/stats"
)

// The experiment drivers submit their independent machine runs to a
// shared worker pool. Every driver first lays out its run grid as an
// indexed job list, collects the results in submission order, and only
// then renders tables — so output is byte-identical at any parallelism.

var (
	poolMu sync.RWMutex
	pool   = runner.New(0) // GOMAXPROCS workers by default
)

// SetParallelism bounds the number of simulations run concurrently;
// n <= 0 selects GOMAXPROCS.
func SetParallelism(n int) {
	poolMu.Lock()
	pool = runner.New(n)
	poolMu.Unlock()
}

// Parallelism returns the current concurrency bound.
func Parallelism() int {
	poolMu.RLock()
	defer poolMu.RUnlock()
	return pool.Workers()
}

func currentPool() *runner.Pool {
	poolMu.RLock()
	defer poolMu.RUnlock()
	return pool
}

// collectRuns executes n independent simulations on the shared pool and
// returns them indexed by job number.
func collectRuns(n int, job func(i int) Run) []Run {
	return runner.Collect(currentPool(), n, job)
}

// meter aggregates per-run wall-clock and cycle counts for the sweep
// footer's speedup line.
var meter stats.JobMeter

// Meter exposes the package's job metrics; callers Reset() it before a
// sweep and Summary() it after.
func Meter() *stats.JobMeter { return &meter }
