package exp

import (
	"testing"

	"dircoh/internal/check"
	"dircoh/internal/machine"
)

// TestObserverCheckHook: installing Observer.Check must turn the
// invariant checker on for every run, route its sink per run label, and
// leave the results untouched on a correct protocol.
func TestObserverCheckHook(t *testing.T) {
	base := RunApp("FFT", 4, "base", machine.FullVec)

	sinks := map[string]*check.MemSink{}
	SetObserver(Observer{Check: func(run string) check.Sink {
		s := &check.MemSink{}
		sinks[run] = s
		return s
	}})
	defer SetObserver(Observer{})

	checked := RunApp("FFT", 4, "base", machine.FullVec)
	if len(sinks) != 1 {
		t.Fatalf("Check hook called for %d runs, want 1 (%v)", len(sinks), sinks)
	}
	s, ok := sinks["FFT/base"]
	if !ok {
		t.Fatalf("sink keyed by %v, want run label FFT/base", sinks)
	}
	if len(s.Violations) != 0 {
		t.Fatalf("clean run recorded violations: %v", s.Violations)
	}
	if checked.Result.ExecTime != base.Result.ExecTime {
		t.Fatalf("checker changed the result: %d vs %d cycles",
			checked.Result.ExecTime, base.Result.ExecTime)
	}
}
