package exp

import (
	"testing"

	"dircoh/internal/check"
	"dircoh/internal/machine"
)

// TestObserverCheckHook: a session built with Observer.Check must turn
// the invariant checker on for every run, route its sink per run label,
// and leave the results untouched on a correct protocol.
func TestObserverCheckHook(t *testing.T) {
	base := ts.RunApp("FFT", 4, "base", machine.FullVec)

	sinks := map[string]*check.MemSink{}
	s := NewSession(Observer{Check: func(run string) check.Sink {
		ms := &check.MemSink{}
		sinks[run] = ms
		return ms
	}}, 0, 0)

	checked := s.RunApp("FFT", 4, "base", machine.FullVec)
	if len(sinks) != 1 {
		t.Fatalf("Check hook called for %d runs, want 1 (%v)", len(sinks), sinks)
	}
	ms, ok := sinks["FFT/base"]
	if !ok {
		t.Fatalf("sink keyed by %v, want run label FFT/base", sinks)
	}
	if len(ms.Violations) != 0 {
		t.Fatalf("clean run recorded violations: %v", ms.Violations)
	}
	if checked.Result.ExecTime != base.Result.ExecTime {
		t.Fatalf("checker changed the result: %d vs %d cycles",
			checked.Result.ExecTime, base.Result.ExecTime)
	}
}
