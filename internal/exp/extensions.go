package exp

import (
	"fmt"

	"dircoh/internal/machine"
	"dircoh/internal/sim"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// OccupancyStudy quantifies §4.2's motivating observation — "at any given
// time most memory blocks are not cached by any processor and the
// corresponding directory entries are empty" — by measuring the peak
// number of simultaneously live entries in a full-map directory for each
// application, against the directory a real machine would have to
// provision (one entry per block of 16 MB memory per processor).
func (s *Session) OccupancyStudy(procs int) ([]Run, *stats.Table) {
	const memPerProc = 16 << 20 // the paper's Table 1 machines
	apps := []string{"LU", "DWF", "MP3D", "LocusRoute"}
	runs := s.collectRuns(len(apps), func(i int) Run {
		return s.RunApp(apps[i], procs, "occupancy "+apps[i], machine.FullVec)
	})
	tb := stats.NewTable("application", "peak live entries", "cache blocks", "memory blocks", "live fraction")
	for i, r := range runs {
		app := apps[i]
		cfg := machine.DefaultConfig(machine.FullVec)
		cacheBlocks := cfg.Cache.L2Size / cfg.Block * procs
		memBlocks := int64(memPerProc) / int64(cfg.Block) * int64(procs)
		tb.AddRow(
			app,
			fmt.Sprintf("%d", r.Result.DirPeak),
			fmt.Sprintf("%d", cacheBlocks),
			fmt.Sprintf("%d", memBlocks),
			fmt.Sprintf("%.4f%%", 100*float64(r.Result.DirPeak)/float64(memBlocks)),
		)
	}
	return runs, tb
}

// BlockSizeStudy quantifies the §3.1 remark that growing the cache block
// is an unattractive way to cut directory overhead: the per-block state
// cost halves with each doubling, but false sharing inflates coherence
// traffic ("increasing the block size increases the chances of
// false-sharing and may significantly increase the coherence traffic").
func (s *Session) BlockSizeStudy(app string, procs int, blockSizes []int) ([]Run, *stats.Table) {
	cfgFor := func(bs int) machine.Config {
		cfg := machine.DefaultConfig(machine.FullVec)
		cfg.Procs = procs
		cfg.Block = bs
		cfg.Cache.Block = bs
		return cfg
	}
	runs := s.collectRuns(len(blockSizes), func(i int) Run {
		return s.runWorkload(app, Workload(app, procs), cfgFor(blockSizes[i]), fmt.Sprintf("block=%d", blockSizes[i]))
	})
	tb := stats.NewTable("block", "overhead", "exec(norm)", "msgs(norm)", "inval+ack", "misses")
	base := runs[0].Result
	for i, r := range runs {
		bs := blockSizes[i]
		cfg := cfgFor(bs)
		overheadBits := cfg.Clusters() + 1 // full vector + dirty, per entry
		tb.AddRow(
			fmt.Sprintf("%dB", bs),
			fmt.Sprintf("%.1f%%", 100*float64(overheadBits)/float64(bs*8)),
			fmt.Sprintf("%.3f", float64(r.Result.ExecTime)/float64(base.ExecTime)),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/float64(base.Msgs.Total())),
			fmt.Sprintf("%d", r.Result.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Result.Cache.Misses),
		)
	}
	return runs, tb
}

// NetworkContention reruns the Figure 10 comparison with finite network
// ejection bandwidth (mesh port occupancy). With contention, the broadcast
// scheme's extraneous invalidations stop being free: its execution time
// degrades visibly, which is the regime the paper's "real DASH system"
// remark anticipates ("we consequently expect the performance degradation
// due to an increased number of messages to be larger than shown here").
func (s *Session) NetworkContention(app string, procs int, portTimes []sim.Time) ([]Run, *stats.Table) {
	schemes := []struct {
		label string
		f     machine.SchemeFactory
	}{
		{"Full Vector", machine.FullVec},
		{"Coarse Vector", machine.CoarseVec2},
		{"Broadcast", machine.Broadcast},
	}
	type spec struct {
		pt     sim.Time
		scheme int
	}
	var specs []spec
	for _, pt := range portTimes {
		for si := range schemes {
			specs = append(specs, spec{pt, si})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		cfg := machine.DefaultConfig(schemes[sp.scheme].f)
		cfg.Procs = procs
		cfg.Mesh.PortTime = sp.pt
		return s.runWorkload(app, Workload(app, procs), cfg,
			fmt.Sprintf("%s port=%d", schemes[sp.scheme].label, sp.pt))
	})
	tb := stats.NewTable("port time", "scheme", "exec", "exec(norm)", "net stalls")
	for i, r := range runs {
		sp := specs[i]
		base := runs[i-sp.scheme].Result // each port-time group normalizes to its full vector
		tb.AddRow(
			fmt.Sprintf("%d", sp.pt),
			schemes[sp.scheme].label,
			fmt.Sprintf("%d", r.Result.ExecTime),
			fmt.Sprintf("%.3f", float64(r.Result.ExecTime)/float64(base.ExecTime)),
			fmt.Sprintf("%d", r.Result.Net.Stalls),
		)
	}
	return runs, tb
}

// barrierStorm builds a workload of repeated global barriers with a token
// read between them.
func barrierStorm(procs, rounds int) *tango.Workload {
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for r := 0; r < rounds; r++ {
			b.Read(int64(p) * 16)
			b.Barrier(int64(10000) * 16)
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{Name: "barrier-storm", Streams: streams, SharedBytes: int64(procs+1) * 16}
}

// BarrierStudy compares the central barrier against the combining tree
// under repeated global synchronization, with and without network
// ejection-port contention. The central barrier funnels every arrival and
// release through one cluster — a hot spot the tree avoids.
func (s *Session) BarrierStudy(procs, rounds int, portTimes []sim.Time) ([]Run, *stats.Table) {
	type spec struct {
		pt   sim.Time
		kind machine.BarrierKind
	}
	var specs []spec
	for _, pt := range portTimes {
		for _, kind := range []machine.BarrierKind{machine.CentralBarrier, machine.TreeBarrier} {
			specs = append(specs, spec{pt, kind})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		cfg := machine.DefaultConfig(machine.FullVec)
		cfg.Procs = procs
		cfg.Barrier = sp.kind
		cfg.Mesh.PortTime = sp.pt
		return s.runWorkload("barrier-storm", barrierStorm(procs, rounds), cfg,
			fmt.Sprintf("%v port=%d", sp.kind, sp.pt))
	})
	tb := stats.NewTable("barrier", "port time", "exec", "msgs", "net stalls")
	for i, r := range runs {
		tb.AddRow(
			specs[i].kind.String(),
			fmt.Sprintf("%d", specs[i].pt),
			fmt.Sprintf("%d", r.Result.ExecTime),
			fmt.Sprintf("%d", r.Result.Msgs.Total()),
			fmt.Sprintf("%d", r.Result.Net.Stalls),
		)
	}
	return runs, tb
}
