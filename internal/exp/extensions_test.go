package exp

import (
	"strings"
	"testing"

	"dircoh/internal/sim"
)

func TestOccupancyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("four 32-proc runs")
	}
	runs, tb := ts.OccupancyStudy(Procs)
	if len(runs) != 4 {
		t.Fatalf("runs = %d", len(runs))
	}
	const memBlocks = 32 * (16 << 20) / 16
	for _, r := range runs {
		if r.Result.DirPeak == 0 {
			t.Errorf("%s: zero peak directory occupancy", r.Label)
		}
		// §4.2: the live fraction of a provisioned full directory is
		// tiny (the paper bounds it at ~1.5%; our scaled data sets sit
		// far below even that).
		if frac := float64(r.Result.DirPeak) / float64(memBlocks); frac > 0.015 {
			t.Errorf("%s: live fraction %.4f exceeds the paper's 1.5%% bound", r.Label, frac)
		}
	}
	if !strings.Contains(tb.String(), "live fraction") {
		t.Fatal("table malformed")
	}
}

// TestFFTControlWorkload: the FFT extension's strictly pairwise sharing
// never overflows even one pointer, so every scheme matches the full
// vector exactly — a control validating that the scheme differences seen
// elsewhere come from sharing breadth, not simulator artifacts.
func TestFFTControlWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("four 32-proc runs")
	}
	runs, _ := ts.SchemeComparison("FFT", Procs)
	full := runs[0].Result
	for _, r := range runs[1:] {
		if r.Result.Msgs != full.Msgs {
			t.Errorf("%s: messages differ from full vector on pairwise workload: %v vs %v",
				r.Label, r.Result.Msgs, full.Msgs)
		}
	}
}

// TestBlockSizeTradeoff checks §3.1's reasoning: doubling the block size
// halves directory overhead, but coherence traffic does not shrink
// proportionally — MP3D's invalidations actually grow (false sharing of
// neighbouring cells), even as misses fall with spatial locality.
func TestBlockSizeTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("three 32-proc runs")
	}
	runs, _ := ts.BlockSizeStudy("MP3D", Procs, []int{16, 64})
	small, big := runs[0].Result, runs[1].Result
	if big.Cache.Misses >= small.Cache.Misses {
		t.Errorf("bigger blocks should cut misses: %d vs %d", big.Cache.Misses, small.Cache.Misses)
	}
	if big.Msgs.InvalAck() < small.Msgs.InvalAck() {
		t.Errorf("false sharing should keep invalidations up: %d vs %d",
			big.Msgs.InvalAck(), small.Msgs.InvalAck())
	}
	// Invalidations per miss rise sharply — the false-sharing signature.
	smallRate := float64(small.Msgs.InvalAck()) / float64(small.Cache.Misses)
	bigRate := float64(big.Msgs.InvalAck()) / float64(big.Cache.Misses)
	if bigRate <= smallRate {
		t.Errorf("invals per miss should rise with block size: %.3f vs %.3f", bigRate, smallRate)
	}
}

func TestNetworkContentionAmplifiesBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("six 32-proc runs")
	}
	runs, _ := ts.NetworkContention("LocusRoute", Procs, []sim.Time{0, 8})
	byLabel := map[string]Run{}
	for _, r := range runs {
		byLabel[r.Label] = r
	}
	fullFree := byLabel["Full Vector port=0"].Result
	bFree := byLabel["Broadcast port=0"].Result
	full8 := byLabel["Full Vector port=8"].Result
	cv8 := byLabel["Coarse Vector port=8"].Result
	b8 := byLabel["Broadcast port=8"].Result

	// Without contention the schemes tie in execution time.
	if ratio := float64(bFree.ExecTime) / float64(fullFree.ExecTime); ratio > 1.05 {
		t.Fatalf("contention-free broadcast exec ratio %.3f, want ~1", ratio)
	}
	// With contention, broadcast pays for its extraneous messages...
	if ratio := float64(b8.ExecTime) / float64(full8.ExecTime); ratio < 1.2 {
		t.Errorf("contended broadcast exec ratio %.3f, want >= 1.2", ratio)
	}
	// ...while the coarse vector stays near the full vector.
	if ratio := float64(cv8.ExecTime) / float64(full8.ExecTime); ratio > 1.05 {
		t.Errorf("contended coarse vector exec ratio %.3f, want <= 1.05", ratio)
	}
	// And the broadcast run stalls the network far more.
	if b8.Net.Stalls < 3*cv8.Net.Stalls {
		t.Errorf("broadcast stalls %d should dwarf CV's %d", b8.Net.Stalls, cv8.Net.Stalls)
	}
}

// TestWriteReportSmoke renders a reduced report and checks its structure.
func TestWriteReportSmoke(t *testing.T) {
	var buf strings.Builder
	opt := ReportOptions{Procs: 8, Trials: 50, Sparse: false, Ablations: false}
	if err := ts.WriteReport(&buf, opt); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# Evaluation report (8 processors)",
		"## Figure 2",
		"## Table 1",
		"## Table 2",
		"## Figures 3–6",
		"## Figure 7 — performance for LU",
		"## Figure 10 — performance for LocusRoute",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(s, "## Ablations") {
		t.Error("ablations should be skipped")
	}
}

// TestBarrierStudy: under port contention the combining tree beats the
// central barrier, whose home cluster absorbs every arrival.
func TestBarrierStudy(t *testing.T) {
	runs, tb := ts.BarrierStudy(32, 6, []sim.Time{0, 8})
	byLabel := map[string]Run{}
	for _, r := range runs {
		byLabel[r.Label] = r
	}
	c8 := byLabel["central port=8"].Result
	t8 := byLabel["tree port=8"].Result
	if t8.ExecTime >= c8.ExecTime {
		t.Errorf("tree barrier exec %d should beat central's %d under contention",
			t8.ExecTime, c8.ExecTime)
	}
	if t8.Net.Stalls >= c8.Net.Stalls {
		t.Errorf("tree stalls %d should be below central's %d", t8.Net.Stalls, c8.Net.Stalls)
	}
	if !strings.Contains(tb.String(), "tree") {
		t.Fatal("table malformed")
	}
}
