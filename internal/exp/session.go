package exp

import (
	"sync"

	"dircoh/internal/runner"
	"dircoh/internal/stats"
)

// Session binds one experiment campaign's execution policy: the
// observability hooks installed on every run, the worker pool independent
// simulations are sharded across, the machine-core shard width, and the
// job meter the sweep footer reads. Every driver (SchemeComparison,
// SparsePerformance, WriteReport, ...) is a Session method; two sessions
// never share state, so tests and tools can run campaigns concurrently
// with different instrumentation.
//
// Every driver lays out its run grid as an indexed job list, collects
// results in submission order, and only then renders tables — so output
// is byte-identical at any Parallelism. The shard width is likewise
// invisible in the output across widths >= 1, which all share the
// canonical deterministic event order (the legacy serial engine, width
// 0, breaks simultaneous-event ties by insertion order instead); runs
// whose configuration demands serial execution — fault injection, the
// invariant checker, mesh port contention — silently fall back to the
// serial engine (observability no longer forces the fallback; see
// machine.Machine.FallbackReason).
type Session struct {
	mu     sync.RWMutex
	obs    Observer
	pool   *runner.Pool
	shards int
	meter  stats.JobMeter
}

// NewSession builds a session running at most parallel simulations
// concurrently (<= 0 selects GOMAXPROCS), each on a machine core with the
// given shard width (0 = the serial engine), observed by o.
func NewSession(o Observer, parallel, shards int) *Session {
	return &Session{obs: o, pool: runner.New(parallel), shards: shards}
}

// Observer returns the session's observability hooks.
func (s *Session) Observer() Observer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obs
}

// Shards returns the machine-core shard width applied to every run.
func (s *Session) Shards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards
}

// Parallelism returns the concurrency bound of the session's pool.
func (s *Session) Parallelism() int { return s.runPool().Workers() }

// Meter exposes the session's job metrics; callers Reset() it before a
// campaign and Summary() it after.
func (s *Session) Meter() *stats.JobMeter { return &s.meter }

func (s *Session) runPool() *runner.Pool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pool
}

// collectRuns executes n independent simulations on the session's pool
// and returns them indexed by job number.
func (s *Session) collectRuns(n int, job func(i int) Run) []Run {
	return runner.Collect(s.runPool(), n, job)
}
