package exp

import (
	"fmt"

	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// This file holds ablation studies beyond the paper's figures: they probe
// the design choices the paper fixes by construction — the coarse vector's
// region size r, the pointer count i, and the §7 queued-lock grant
// behaviour under contention.

// RegionSweep varies the coarse vector's region size r on one application
// (with i = 3 pointers, as in the paper) and reports traffic against the
// full bit vector. Larger regions approach the broadcast scheme; region
// size 1 matches the full vector's precision at overflow.
func (s *Session) RegionSweep(app string, procs int) ([]Run, *stats.Table) {
	regions := []int{1, 2, 4, 8, 16, 32}
	runs := s.collectRuns(len(regions)+1, func(i int) Run {
		if i == 0 {
			return s.RunApp(app, procs, "full vector", machine.FullVec)
		}
		r := regions[i-1]
		return s.RunApp(app, procs, fmt.Sprintf("Dir3CV%d", r),
			func(n int) (core.Scheme, error) { return core.NewCoarseVector(3, r, n) })
	})
	base := runs[0]
	tb := stats.NewTable("scheme", "region", "msgs(norm)", "inval+ack", "avg invals/event")
	tb.AddRow("Dir32", "-", "1.000",
		fmt.Sprintf("%d", base.Result.Msgs.InvalAck()),
		fmt.Sprintf("%.2f", base.Result.InvalHist.Mean()))
	for i, run := range runs[1:] {
		tb.AddRow(
			run.Label,
			fmt.Sprintf("%d", regions[i]),
			fmt.Sprintf("%.3f", float64(run.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%d", run.Result.Msgs.InvalAck()),
			fmt.Sprintf("%.2f", run.Result.InvalHist.Mean()),
		)
	}
	return runs, tb
}

// PointerSweep varies the pointer count i for the broadcast, no-broadcast
// and coarse vector schemes on one application. It quantifies the paper's
// §5 choice of three pointers under a ~13% storage budget.
func (s *Session) PointerSweep(app string, procs int) ([]Run, *stats.Table) {
	kinds := []struct {
		name string
		f    func(i, n int) (core.Scheme, error)
	}{
		{"Dir_iB", func(i, n int) (core.Scheme, error) { return core.NewLimitedBroadcast(i, n) }},
		{"Dir_iNB", func(i, n int) (core.Scheme, error) { return core.NewLimitedNoBroadcast(i, n, core.VictimRandom, 11) }},
		{"Dir_iCV2", func(i, n int) (core.Scheme, error) { return core.NewCoarseVector(i, 2, n) }},
	}
	type spec struct {
		kind int // -1: the full-vector baseline
		ptrs int
	}
	specs := []spec{{kind: -1}}
	for k := range kinds {
		for _, i := range []int{1, 2, 3, 4, 6} {
			specs = append(specs, spec{kind: k, ptrs: i})
		}
	}
	runs := s.collectRuns(len(specs), func(j int) Run {
		sp := specs[j]
		if sp.kind < 0 {
			return s.RunApp(app, procs, "full vector", machine.FullVec)
		}
		k := kinds[sp.kind]
		return s.RunApp(app, procs, fmt.Sprintf("%s i=%d", k.name, sp.ptrs),
			func(n int) (core.Scheme, error) { return k.f(sp.ptrs, n) })
	})
	base := runs[0]
	tb := stats.NewTable("scheme", "pointers", "msgs(norm)", "exec(norm)")
	for j, run := range runs[1:] {
		tb.AddRow(
			kinds[specs[j+1].kind].name,
			fmt.Sprintf("%d", specs[j+1].ptrs),
			fmt.Sprintf("%.3f", float64(run.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%.3f", float64(run.Result.ExecTime)/float64(base.Result.ExecTime)),
		)
	}
	return runs, tb
}

// DirectoryComparison evaluates the §7 alternative directory organization
// the paper leaves for future work — small per-block entries overflowing
// into a cache of wide entries — against the full-map and sparse
// organizations, on one application.
func (s *Session) DirectoryComparison(app string, procs int) ([]Run, *stats.Table) {
	type cfgRow struct {
		label string
		cfg   machine.Config
	}
	base := machine.DefaultConfig(machine.FullVec)
	base.Procs = procs
	cvCfg := machine.DefaultConfig(machine.CoarseVec2)
	cvCfg.Procs = procs
	sparseCfg := machine.DefaultConfig(machine.FullVec)
	sparseCfg.Procs = procs
	sparseCfg.Sparse = machine.SparseConfig{
		Entries: 4 * (sparseCfg.Cache.L2Size / sparseCfg.Block) * procs / sparseCfg.Clusters() / 4,
		Assoc:   4,
	}
	ovCfg := machine.DefaultConfig(machine.FullVec)
	ovCfg.Procs = procs
	ovCfg.Overflow = &machine.OverflowDirConfig{Ptrs: 2, WideEntries: 64, Assoc: 4}
	ovTight := machine.DefaultConfig(machine.FullVec)
	ovTight.Procs = procs
	ovTight.Overflow = &machine.OverflowDirConfig{Ptrs: 2, WideEntries: 8, Assoc: 4}
	rows := []cfgRow{
		{"full map, Dir32", base},
		{"full map, Dir3CV2", cvCfg},
		{"sparse, Dir32", sparseCfg},
		{"overflow, Dir2 + 64 wide", ovCfg},
		{"overflow, Dir2 + 8 wide", ovTight},
	}
	runs := s.collectRuns(len(rows), func(i int) Run {
		return s.runWorkload(app, Workload(app, procs), rows[i].cfg, rows[i].label)
	})
	tb := stats.NewTable("directory", "exec(norm)", "msgs(norm)", "inval+ack", "replacements")
	baseExec := float64(runs[0].Result.ExecTime)
	baseMsgs := float64(runs[0].Result.Msgs.Total())
	for i, r := range runs {
		tb.AddRow(
			rows[i].label,
			fmt.Sprintf("%.3f", float64(r.Result.ExecTime)/baseExec),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/baseMsgs),
			fmt.Sprintf("%d", r.Result.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Result.Replacements),
		)
	}
	return runs, tb
}

// lockStorm builds a workload in which every processor acquires the same
// lock rounds times, touching one shared word inside the critical section
// — the §7 hot-spot scenario.
func lockStorm(procs, rounds int) *tango.Workload {
	alloc := tango.NewAllocator(16)
	lock := alloc.Words(2)
	data := alloc.Words(2)
	builders := make([]tango.Builder, procs)
	for p := range builders {
		for r := 0; r < rounds; r++ {
			builders[p].Lock(lock.Word(0))
			builders[p].Read(data.Word(0))
			builders[p].Write(data.Word(0))
			builders[p].Unlock(lock.Word(0))
		}
	}
	streams := make([][]tango.Ref, procs)
	for i := range builders {
		streams[i] = builders[i].Refs()
	}
	return &tango.Workload{Name: "lock-storm", Streams: streams, SharedBytes: alloc.TotalBytes()}
}

// LockContention compares the queued directory lock (§7) across waiter
// representations under an all-processors hot lock: the full vector grants
// one node per release; a coarse vector wakes a region whose nodes
// re-contend (extra LockWake/LockReq traffic but no global hot spot); a
// broadcast waiter set wakes everyone.
func (s *Session) LockContention(procs, rounds int) ([]Run, *stats.Table) {
	schemes := []struct {
		label string
		f     machine.SchemeFactory
	}{
		{"Full Vector", machine.FullVec},
		{"Coarse Vector", machine.CoarseVec2},
		{"Broadcast", machine.Broadcast},
	}
	runs := s.collectRuns(len(schemes), func(i int) Run {
		cfg := machine.DefaultConfig(schemes[i].f)
		cfg.Procs = procs
		return s.runWorkload("lock-storm", lockStorm(procs, rounds), cfg, schemes[i].label)
	})
	tb := stats.NewTable("waiter scheme", "exec", "msgs", "lock retries")
	for _, run := range runs {
		tb.AddRow(
			run.Label,
			fmt.Sprintf("%d", run.Result.ExecTime),
			fmt.Sprintf("%d", run.Result.Msgs.Total()),
			fmt.Sprintf("%d", run.Result.LockRetries),
		)
	}
	return runs, tb
}
