package exp

import (
	"fmt"

	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// This file holds ablation studies beyond the paper's figures: they probe
// the design choices the paper fixes by construction — the coarse vector's
// region size r, the pointer count i, and the §7 queued-lock grant
// behaviour under contention.

// RegionSweep varies the coarse vector's region size r on one application
// (with i = 3 pointers, as in the paper) and reports traffic against the
// full bit vector. Larger regions approach the broadcast scheme; region
// size 1 matches the full vector's precision at overflow.
func RegionSweep(app string, procs int) ([]Run, *stats.Table) {
	base := RunApp(app, procs, "full vector", machine.FullVec)
	runs := []Run{base}
	tb := stats.NewTable("scheme", "region", "msgs(norm)", "inval+ack", "avg invals/event")
	tb.AddRow("Dir32", "-", "1.000",
		fmt.Sprintf("%d", base.Result.Msgs.InvalAck()),
		fmt.Sprintf("%.2f", base.Result.InvalHist.Mean()))
	for _, r := range []int{1, 2, 4, 8, 16, 32} {
		r := r
		f := func(n int) core.Scheme { return core.NewCoarseVector(3, r, n) }
		run := RunApp(app, procs, fmt.Sprintf("Dir3CV%d", r), f)
		runs = append(runs, run)
		tb.AddRow(
			run.Label,
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%.3f", float64(run.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%d", run.Result.Msgs.InvalAck()),
			fmt.Sprintf("%.2f", run.Result.InvalHist.Mean()),
		)
	}
	return runs, tb
}

// PointerSweep varies the pointer count i for the broadcast, no-broadcast
// and coarse vector schemes on one application. It quantifies the paper's
// §5 choice of three pointers under a ~13% storage budget.
func PointerSweep(app string, procs int) ([]Run, *stats.Table) {
	base := RunApp(app, procs, "full vector", machine.FullVec)
	runs := []Run{base}
	tb := stats.NewTable("scheme", "pointers", "msgs(norm)", "exec(norm)")
	kinds := []struct {
		name string
		f    func(i, n int) core.Scheme
	}{
		{"Dir_iB", func(i, n int) core.Scheme { return core.NewLimitedBroadcast(i, n) }},
		{"Dir_iNB", func(i, n int) core.Scheme { return core.NewLimitedNoBroadcast(i, n, core.VictimRandom, 11) }},
		{"Dir_iCV2", func(i, n int) core.Scheme { return core.NewCoarseVector(i, 2, n) }},
	}
	for _, k := range kinds {
		for _, i := range []int{1, 2, 3, 4, 6} {
			i := i
			k := k
			run := RunApp(app, procs, fmt.Sprintf("%s i=%d", k.name, i),
				func(n int) core.Scheme { return k.f(i, n) })
			runs = append(runs, run)
			tb.AddRow(
				k.name,
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%.3f", float64(run.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
				fmt.Sprintf("%.3f", float64(run.Result.ExecTime)/float64(base.Result.ExecTime)),
			)
		}
	}
	return runs, tb
}

// DirectoryComparison evaluates the §7 alternative directory organization
// the paper leaves for future work — small per-block entries overflowing
// into a cache of wide entries — against the full-map and sparse
// organizations, on one application.
func DirectoryComparison(app string, procs int) ([]Run, *stats.Table) {
	type cfgRow struct {
		label string
		cfg   machine.Config
	}
	base := machine.DefaultConfig(machine.FullVec)
	base.Procs = procs
	cvCfg := machine.DefaultConfig(machine.CoarseVec2)
	cvCfg.Procs = procs
	sparseCfg := machine.DefaultConfig(machine.FullVec)
	sparseCfg.Procs = procs
	sparseCfg.Sparse = machine.SparseConfig{
		Entries: 4 * (sparseCfg.Cache.L2Size / sparseCfg.Block) * procs / sparseCfg.Clusters() / 4,
		Assoc:   4,
	}
	ovCfg := machine.DefaultConfig(machine.FullVec)
	ovCfg.Procs = procs
	ovCfg.Overflow = &machine.OverflowDirConfig{Ptrs: 2, WideEntries: 64, Assoc: 4}
	ovTight := machine.DefaultConfig(machine.FullVec)
	ovTight.Procs = procs
	ovTight.Overflow = &machine.OverflowDirConfig{Ptrs: 2, WideEntries: 8, Assoc: 4}
	rows := []cfgRow{
		{"full map, Dir32", base},
		{"full map, Dir3CV2", cvCfg},
		{"sparse, Dir32", sparseCfg},
		{"overflow, Dir2 + 64 wide", ovCfg},
		{"overflow, Dir2 + 8 wide", ovTight},
	}
	var runs []Run
	tb := stats.NewTable("directory", "exec(norm)", "msgs(norm)", "inval+ack", "replacements")
	var baseExec, baseMsgs float64
	for i, row := range rows {
		r := runWorkload(app, Workload(app, procs), row.cfg, row.label)
		runs = append(runs, r)
		if i == 0 {
			baseExec = float64(r.Result.ExecTime)
			baseMsgs = float64(r.Result.Msgs.Total())
		}
		tb.AddRow(
			row.label,
			fmt.Sprintf("%.3f", float64(r.Result.ExecTime)/baseExec),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/baseMsgs),
			fmt.Sprintf("%d", r.Result.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Result.Replacements),
		)
	}
	return runs, tb
}

// lockStorm builds a workload in which every processor acquires the same
// lock rounds times, touching one shared word inside the critical section
// — the §7 hot-spot scenario.
func lockStorm(procs, rounds int) *tango.Workload {
	alloc := tango.NewAllocator(16)
	lock := alloc.Words(2)
	data := alloc.Words(2)
	builders := make([]tango.Builder, procs)
	for p := range builders {
		for r := 0; r < rounds; r++ {
			builders[p].Lock(lock.Word(0))
			builders[p].Read(data.Word(0))
			builders[p].Write(data.Word(0))
			builders[p].Unlock(lock.Word(0))
		}
	}
	streams := make([][]tango.Ref, procs)
	for i := range builders {
		streams[i] = builders[i].Refs()
	}
	return &tango.Workload{Name: "lock-storm", Streams: streams, SharedBytes: alloc.TotalBytes()}
}

// LockContention compares the queued directory lock (§7) across waiter
// representations under an all-processors hot lock: the full vector grants
// one node per release; a coarse vector wakes a region whose nodes
// re-contend (extra LockWake/LockReq traffic but no global hot spot); a
// broadcast waiter set wakes everyone.
func LockContention(procs, rounds int) ([]Run, *stats.Table) {
	tb := stats.NewTable("waiter scheme", "exec", "msgs", "lock retries")
	var runs []Run
	for _, s := range []struct {
		label string
		f     machine.SchemeFactory
	}{
		{"Full Vector", machine.FullVec},
		{"Coarse Vector", machine.CoarseVec2},
		{"Broadcast", machine.Broadcast},
	} {
		cfg := machine.DefaultConfig(s.f)
		cfg.Procs = procs
		m, err := machine.New(cfg)
		if err != nil {
			panic(err)
		}
		r, err := m.Run(lockStorm(procs, rounds))
		if err != nil {
			panic(fmt.Sprintf("exp: lock contention %s: %v", s.label, err))
		}
		run := Run{App: "lock-storm", Label: s.label, Result: r}
		runs = append(runs, run)
		tb.AddRow(
			s.label,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Msgs.Total()),
			fmt.Sprintf("%d", r.LockRetries),
		)
	}
	return runs, tb
}
