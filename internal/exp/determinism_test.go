package exp

import (
	"reflect"
	"testing"
)

// snapshot captures everything an experiment driver can leak ordering or
// shared-state bugs through: the raw Result structs, the rendered table,
// and the rendered invalidation histograms.
type snapshot struct {
	runs   []Run
	tables []string
	hists  []string
}

func capture(s *Session, procs int) snapshot {
	var snap snapshot
	runs, tb := s.SchemeComparison("MP3D", procs)
	snap.runs = append(snap.runs, runs...)
	snap.tables = append(snap.tables, tb.String())
	sruns, stb := s.SparsePerformance("MP3D", procs)
	snap.runs = append(snap.runs, sruns...)
	snap.tables = append(snap.tables, stb.String())
	figs := s.Figs3to6(procs)
	snap.runs = append(snap.runs, figs...)
	for _, r := range figs {
		snap.hists = append(snap.hists, r.Result.InvalHist.Render(r.Label))
	}
	snap.tables = append(snap.tables, s.Table2(procs).String())
	return snap
}

// TestPoolDeterminism runs the same experiment grid serially and under
// the pool at several widths and asserts the results are identical: the
// machine.Result structs deeply equal and every rendered table and
// histogram byte-for-byte the same. Any ordering bug in the orchestrator
// or shared state between concurrent simulations fails this test.
func TestPoolDeterminism(t *testing.T) {
	const procs = 8

	want := capture(NewSession(Observer{}, 1, 0), procs)

	widths := []int{2, 3, 8}
	if testing.Short() {
		widths = []int{4}
	}
	for _, par := range widths {
		s := NewSession(Observer{}, par, 0)
		if got := s.Parallelism(); got != par {
			t.Fatalf("Parallelism() = %d, want %d", got, par)
		}
		got := capture(s, procs)
		for i := range want.runs {
			if got.runs[i].App != want.runs[i].App || got.runs[i].Label != want.runs[i].Label {
				t.Fatalf("parallel=%d: run %d is (%s, %s), serial had (%s, %s) — submission order broken",
					par, i, got.runs[i].App, got.runs[i].Label, want.runs[i].App, want.runs[i].Label)
			}
			if !reflect.DeepEqual(got.runs[i].Result, want.runs[i].Result) {
				t.Errorf("parallel=%d: run %d (%s/%s) Result differs from serial run",
					par, i, want.runs[i].App, want.runs[i].Label)
			}
		}
		for i := range want.tables {
			if got.tables[i] != want.tables[i] {
				t.Errorf("parallel=%d: table %d differs from serial output:\n--- serial ---\n%s--- parallel ---\n%s",
					par, i, want.tables[i], got.tables[i])
			}
		}
		for i := range want.hists {
			if got.hists[i] != want.hists[i] {
				t.Errorf("parallel=%d: histogram %d differs from serial output", par, i)
			}
		}
	}
}

// TestSessionParallelismBounds checks the auto default and floor.
func TestSessionParallelismBounds(t *testing.T) {
	if got := NewSession(Observer{}, 3, 0).Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if got := NewSession(Observer{}, 0, 0).Parallelism(); got < 1 {
		t.Fatalf("auto parallelism = %d, want >= 1", got)
	}
}

// TestMeterCountsRuns checks that every simulation is metered exactly
// once with a non-zero cycle count.
func TestMeterCountsRuns(t *testing.T) {
	s := NewSession(Observer{}, 2, 0)
	runs, _ := s.SchemeComparison("MP3D", 8)
	sum := s.Meter().Summary()
	if sum.Jobs != len(runs) {
		t.Fatalf("meter recorded %d jobs, want %d", sum.Jobs, len(runs))
	}
	if sum.Cycles == 0 || sum.Busy <= 0 {
		t.Fatalf("meter summary %+v should have non-zero cycles and busy time", sum)
	}
	s.Meter().Reset()
	if sum := s.Meter().Summary(); sum.Jobs != 0 {
		t.Fatalf("reset failed: %+v", sum)
	}
}
