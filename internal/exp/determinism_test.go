package exp

import (
	"reflect"
	"testing"
)

// snapshot captures everything an experiment driver can leak ordering or
// shared-state bugs through: the raw Result structs, the rendered table,
// and the rendered invalidation histograms.
type snapshot struct {
	runs   []Run
	tables []string
	hists  []string
}

func capture(procs int) snapshot {
	var s snapshot
	runs, tb := SchemeComparison("MP3D", procs)
	s.runs = append(s.runs, runs...)
	s.tables = append(s.tables, tb.String())
	sruns, stb := SparsePerformance("MP3D", procs)
	s.runs = append(s.runs, sruns...)
	s.tables = append(s.tables, stb.String())
	figs := Figs3to6(procs)
	s.runs = append(s.runs, figs...)
	for _, r := range figs {
		s.hists = append(s.hists, r.Result.InvalHist.Render(r.Label))
	}
	s.tables = append(s.tables, Table2(procs).String())
	return s
}

// TestPoolDeterminism runs the same experiment grid serially and under
// the pool at several widths and asserts the results are identical: the
// machine.Result structs deeply equal and every rendered table and
// histogram byte-for-byte the same. Any ordering bug in the orchestrator
// or shared state between concurrent simulations fails this test.
func TestPoolDeterminism(t *testing.T) {
	defer SetParallelism(0)
	const procs = 8

	SetParallelism(1)
	want := capture(procs)

	widths := []int{2, 3, 8}
	if testing.Short() {
		widths = []int{4}
	}
	for _, par := range widths {
		SetParallelism(par)
		if got := Parallelism(); got != par {
			t.Fatalf("Parallelism() = %d, want %d", got, par)
		}
		got := capture(procs)
		for i := range want.runs {
			if got.runs[i].App != want.runs[i].App || got.runs[i].Label != want.runs[i].Label {
				t.Fatalf("parallel=%d: run %d is (%s, %s), serial had (%s, %s) — submission order broken",
					par, i, got.runs[i].App, got.runs[i].Label, want.runs[i].App, want.runs[i].Label)
			}
			if !reflect.DeepEqual(got.runs[i].Result, want.runs[i].Result) {
				t.Errorf("parallel=%d: run %d (%s/%s) Result differs from serial run",
					par, i, want.runs[i].App, want.runs[i].Label)
			}
		}
		for i := range want.tables {
			if got.tables[i] != want.tables[i] {
				t.Errorf("parallel=%d: table %d differs from serial output:\n--- serial ---\n%s--- parallel ---\n%s",
					par, i, want.tables[i], got.tables[i])
			}
		}
		for i := range want.hists {
			if got.hists[i] != want.hists[i] {
				t.Errorf("parallel=%d: histogram %d differs from serial output", par, i)
			}
		}
	}
}

// TestSetParallelismBounds checks the auto default and floor.
func TestSetParallelismBounds(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("auto parallelism = %d, want >= 1", got)
	}
}

// TestMeterCountsRuns checks that every simulation is metered exactly
// once with a non-zero cycle count.
func TestMeterCountsRuns(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(2)
	Meter().Reset()
	runs, _ := SchemeComparison("MP3D", 8)
	s := Meter().Summary()
	if s.Jobs != len(runs) {
		t.Fatalf("meter recorded %d jobs, want %d", s.Jobs, len(runs))
	}
	if s.Cycles == 0 || s.Busy <= 0 {
		t.Fatalf("meter summary %+v should have non-zero cycles and busy time", s)
	}
	Meter().Reset()
	if s := Meter().Summary(); s.Jobs != 0 {
		t.Fatalf("reset failed: %+v", s)
	}
}
