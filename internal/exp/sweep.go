package exp

import (
	"fmt"
	"io"
	"strings"

	"dircoh/internal/analytic"
)

// SweepSectionKeys is the canonical section order of the paper sweep —
// the order cmd/sweep has always printed and the order the campaign
// service decomposes a sweep campaign into indexed jobs. Each key renders
// one self-contained chunk of the evaluation (a figure, a table, or a
// titled group of them).
var SweepSectionKeys = []string{"2", "t1", "t2", "3-6", "7-10", "11-12", "13", "14", "scale", "scale-sim"}

// SectionEnabled reports whether the section key is selected by the
// comma-separated -only list ("" and "all" select everything).
func SectionEnabled(only, key string) bool {
	if only == "" || only == "all" {
		return true
	}
	for _, k := range strings.Split(only, ",") {
		if strings.TrimSpace(k) == key {
			return true
		}
	}
	return false
}

// SelectSections returns the enabled section keys in canonical order.
func SelectSections(only string) []string {
	var keys []string
	for _, k := range SweepSectionKeys {
		if SectionEnabled(only, k) {
			keys = append(keys, k)
		}
	}
	return keys
}

func sweepSection(w io.Writer, title string) {
	fmt.Fprintf(w, "\n===== %s =====\n\n", title)
}

// RenderSweepSection renders one sweep section to w — the unit of work a
// resumable sweep campaign journals. Output is deterministic for a fixed
// (key, procs, trials) triple at any parallelism and shard width, which
// the cmd/sweep golden tests and the campaign crash/resume guarantee both
// rely on; keep wall-clock output out of here. Unknown keys render
// nothing, matching the historical -only behavior.
func (s *Session) RenderSweepSection(w io.Writer, key string, procs, trials int) {
	switch key {
	case "2":
		sweepSection(w, "Figure 2(a): average invalidations vs sharers, 32 processors")
		fmt.Fprintln(w, analytic.Fig2Table(32, trials, 1))
		sweepSection(w, "Figure 2(b): average invalidations vs sharers, 64 processors")
		fmt.Fprintln(w, analytic.Fig2Table(64, trials, 1))
	case "t1":
		sweepSection(w, "Table 1: sample machine configurations")
		fmt.Fprintln(w, analytic.Table1())
	case "t2":
		sweepSection(w, "Table 2: general application characteristics")
		fmt.Fprintln(w, s.Table2(procs))
	case "3-6":
		sweepSection(w, "Figures 3-6: invalidation distributions, LocusRoute")
		for _, run := range s.Figs3to6(procs) {
			fmt.Fprint(w, run.Result.InvalHist.Render(run.Label))
			fmt.Fprintln(w)
		}
	case "7-10":
		for i, app := range []string{"LU", "DWF", "MP3D", "LocusRoute"} {
			sweepSection(w, fmt.Sprintf("Figure %d: performance for %s", 7+i, app))
			_, tb := s.SchemeComparison(app, procs)
			fmt.Fprintln(w, tb)
		}
	case "11-12":
		sweepSection(w, "Figure 11: sparse directory performance for LU")
		_, tb := s.SparsePerformance("LU", procs)
		fmt.Fprintln(w, tb)
		sweepSection(w, "Figure 12: sparse directory performance for DWF")
		_, tb = s.SparsePerformance("DWF", procs)
		fmt.Fprintln(w, tb)
	case "13":
		sweepSection(w, "Figure 13: effect of associativity in sparse directory (LU)")
		_, tb := s.AssocSweep("LU", procs)
		fmt.Fprintln(w, tb)
	case "14":
		sweepSection(w, "Figure 14: effect of replacement policy in sparse directory (LU)")
		_, tb := s.PolicySweep("LU", procs)
		fmt.Fprintln(w, tb)
	case "scale":
		sweepSection(w, "Beyond 64 processors: Table 1 extended to 4096-cluster machines")
		fmt.Fprintln(w, analytic.Table1For([]int{64, 256, 1024, 4096}))
		sweepSection(w, "Beyond 64 processors: directory entry cost per scheme")
		fmt.Fprintln(w, analytic.EntryCostTable([]int{64, 256, 1024, 4096}))
	case "scale-sim":
		sweepSection(w, "Beyond 64 processors: simulated traffic at 256-4096 clusters")
		_, tb := s.ScaleStudy(ScaleAxis, 3)
		fmt.Fprintln(w, tb)
	}
}

// Sweep renders the sections selected by only to w in canonical order —
// the whole paper evaluation when only is "all". Byte-identical at any
// parallelism and shard width >= 1.
func (s *Session) Sweep(w io.Writer, only string, procs, trials int) {
	for _, key := range SelectSections(only) {
		s.RenderSweepSection(w, key, procs, trials)
	}
}
