package exp

// ts is the shared session the in-package tests drive: default
// parallelism, the serial machine core, no instrumentation. Tests that
// exercise a specific pool width or observer build their own Session.
var ts = NewSession(Observer{}, 0, 0)
