package exp

import (
	"strings"
	"testing"

	"dircoh/internal/stats"
)

// ratio returns a.Result metric ratios against b's.
func execRatio(a, b Run) float64 {
	return float64(a.Result.ExecTime) / float64(b.Result.ExecTime)
}

func msgRatio(a, b Run) float64 {
	return float64(a.Result.Msgs.Total()) / float64(b.Result.Msgs.Total())
}

func TestTable2Shape(t *testing.T) {
	s := ts.Table2(8).String()
	for _, app := range []string{"LU", "DWF", "MP3D", "LocusRoute"} {
		if !strings.Contains(s, app) {
			t.Fatalf("Table 2 missing %s:\n%s", app, s)
		}
	}
}

// TestFigs3to6Ordering checks the invalidation-distribution claims of §6.1
// on LocusRoute: NB has more events but the smallest mean (reads cause
// extra single invalidations); B's mean is by far the largest (broadcasts);
// CV sits between full vector and broadcast.
func TestFigs3to6Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-proc runs")
	}
	runs := ts.Figs3to6(Procs)
	full, nb, b, cv := runs[0].Result, runs[1].Result, runs[2].Result, runs[3].Result
	if nb.InvalHist.Events() <= full.InvalHist.Events() {
		t.Errorf("NB events (%d) should exceed full vector events (%d): reads cause invalidations",
			nb.InvalHist.Events(), full.InvalHist.Events())
	}
	if nb.InvalHist.Mean() >= full.InvalHist.Mean() {
		t.Errorf("NB mean (%.2f) should be below full's (%.2f)", nb.InvalHist.Mean(), full.InvalHist.Mean())
	}
	if !(full.InvalHist.Mean() < cv.InvalHist.Mean() && cv.InvalHist.Mean() < b.InvalHist.Mean()) {
		t.Errorf("want full < CV < B means, got %.2f / %.2f / %.2f",
			full.InvalHist.Mean(), cv.InvalHist.Mean(), b.InvalHist.Mean())
	}
	// B's broadcasts reach ~N-2 clusters: the distribution has a peak at
	// the right edge that CV must not have (Figures 5 vs 6).
	edge := 0
	for k := Procs - 4; k < Procs; k++ {
		edge += int(b.InvalHist.Count(k))
	}
	if edge == 0 {
		t.Error("broadcast distribution missing its right-edge peak")
	}
	cvEdge := 0
	for k := Procs - 4; k < Procs; k++ {
		cvEdge += int(cv.InvalHist.Count(k))
	}
	if cvEdge >= edge {
		t.Errorf("CV right-edge mass (%d) should be far below B's (%d)", cvEdge, edge)
	}
}

// TestFig7LU: Dir_iNB collapses on LU's widely read-shared pivot column;
// the other schemes are indistinguishable (§6.2).
func TestFig7LU(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-proc runs")
	}
	runs, _ := ts.SchemeComparison("LU", Procs)
	full, cv, b, nb := runs[0], runs[1], runs[2], runs[3]
	if r := execRatio(nb, full); r < 1.15 {
		t.Errorf("NB exec ratio %.3f, want >= 1.15 (paper: severe degradation)", r)
	}
	if r := msgRatio(nb, full); r < 1.5 {
		t.Errorf("NB msg ratio %.3f, want >= 1.5", r)
	}
	for _, s := range []Run{cv, b} {
		if r := execRatio(s, full); r < 0.99 || r > 1.02 {
			t.Errorf("%s exec ratio %.3f, want ~1.0", s.Label, r)
		}
	}
}

// TestFig8DWF: read-shared pattern/library arrays punish NB; everything
// else is virtually indistinguishable (§6.2).
func TestFig8DWF(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-proc runs")
	}
	runs, _ := ts.SchemeComparison("DWF", Procs)
	full, cv, b, nb := runs[0], runs[1], runs[2], runs[3]
	if r := execRatio(nb, full); r < 1.05 {
		t.Errorf("NB exec ratio %.3f, want >= 1.05", r)
	}
	for _, s := range []Run{cv, b} {
		if r := execRatio(s, full); r < 0.995 || r > 1.01 {
			t.Errorf("%s exec ratio %.3f, want ~1.0", s.Label, r)
		}
	}
}

// TestFig9MP3D: migratory 1-2 sharer data — every scheme handles it; even
// NB is within a fraction of a percent (§6.2: "+0.4%").
func TestFig9MP3D(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-proc runs")
	}
	runs, _ := ts.SchemeComparison("MP3D", Procs)
	full := runs[0]
	for _, s := range runs[1:] {
		if r := execRatio(s, full); r < 0.99 || r > 1.01 {
			t.Errorf("%s exec ratio %.3f, want within 1%%", s.Label, r)
		}
		if r := msgRatio(s, full); r > 1.02 {
			t.Errorf("%s msg ratio %.3f, want within 2%%", s.Label, r)
		}
	}
}

// TestFig10LocusRoute: regionally shared data overflows the pointers: B
// broadcasts heavily (worst traffic); the unique app where NB's traffic
// beats B's; CV stays close to the full vector (worst case ~+12% msgs).
func TestFig10LocusRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-proc runs")
	}
	runs, _ := ts.SchemeComparison("LocusRoute", Procs)
	full, cv, b, nb := runs[0], runs[1], runs[2], runs[3]
	if r := msgRatio(b, full); r < 1.5 {
		t.Errorf("B msg ratio %.3f, want >= 1.5 (broadcast explosion)", r)
	}
	if r := msgRatio(cv, full); r > 1.15 {
		t.Errorf("CV msg ratio %.3f, want <= 1.15 (paper: ~12%% worst case)", r)
	}
	if msgRatio(nb, full) >= msgRatio(b, full) {
		t.Errorf("NB traffic (%.3f) should beat B's (%.3f) on LocusRoute",
			msgRatio(nb, full), msgRatio(b, full))
	}
	if b.Result.InvalHist.Mean() < 3*cv.Result.InvalHist.Mean() {
		t.Errorf("B mean invals %.2f should dwarf CV's %.2f",
			b.Result.InvalHist.Mean(), cv.Result.InvalHist.Mean())
	}
	// Broadcast invalidations occupy every cluster bus: its utilization
	// must exceed the full vector's.
	if b.Result.BusUtil <= full.Result.BusUtil {
		t.Errorf("B bus utilization %.4f should exceed full vector's %.4f",
			b.Result.BusUtil, full.Result.BusUtil)
	}
}

// TestFig11SparseLU: sparse directories cost little execution time and
// bounded traffic; the broadcast scheme suffers most from replacements of
// widely-shared entries, the coarse vector stays near the full vector.
func TestFig11SparseLU(t *testing.T) {
	if testing.Short() {
		t.Skip("long: ~10 sparse LU runs")
	}
	runs, _ := ts.SparsePerformance("LU", Procs)
	base := runs[0]
	byLabel := map[string]Run{}
	for _, r := range runs[1:] {
		byLabel[r.Label] = r
	}
	fullSF1 := byLabel["Full Vector sf=1"]
	cvSF1 := byLabel["Coarse Vector sf=1"]
	bSF1 := byLabel["Broadcast sf=1"]
	// Execution degradation is small (paper: +1.4% worst case).
	for _, r := range runs[1:] {
		if er := execRatio(r, base); er > 1.05 {
			t.Errorf("%s exec ratio %.3f, want <= 1.05", r.Label, er)
		}
	}
	// Traffic add stays bounded (paper: < 17%).
	if mr := msgRatio(fullSF1, base); mr > 1.17 {
		t.Errorf("full sf=1 traffic ratio %.3f, want <= 1.17", mr)
	}
	// Broadcast's replacements send the most invalidations.
	if !(bSF1.Result.Msgs.InvalAck() > cvSF1.Result.Msgs.InvalAck() &&
		cvSF1.Result.Msgs.InvalAck() >= fullSF1.Result.Msgs.InvalAck()) {
		t.Errorf("want inval+ack B > CV >= full at sf=1, got %d / %d / %d",
			bSF1.Result.Msgs.InvalAck(), cvSF1.Result.Msgs.InvalAck(), fullSF1.Result.Msgs.InvalAck())
	}
	// Pressure falls with size factor.
	if byLabel["Full Vector sf=4"].Result.Replacements > byLabel["Full Vector sf=1"].Result.Replacements {
		t.Error("replacements should fall with size factor")
	}
}

// TestFig12SparseDWF: DWF's small wavefront working set keeps sparse
// performance flat across size factors (§6.3.1).
func TestFig12SparseDWF(t *testing.T) {
	if testing.Short() {
		t.Skip("long: ~10 sparse DWF runs")
	}
	runs, _ := ts.SparsePerformance("DWF", Procs)
	base := runs[0]
	for _, r := range runs[1:] {
		if er := execRatio(r, base); er > 1.02 {
			t.Errorf("%s exec ratio %.3f, want flat (<= 1.02)", r.Label, er)
		}
	}
}

// TestFig13Assoc: associativity 4 >= 2 > direct-mapped (§6.3.2).
func TestFig13Assoc(t *testing.T) {
	if testing.Short() {
		t.Skip("long: 10 sparse LU runs")
	}
	runs, _ := ts.AssocSweep("LU", Procs)
	byLabel := map[string]Run{}
	for _, r := range runs[1:] {
		byLabel[r.Label] = r
	}
	for _, sf := range []string{"1", "2"} {
		direct := byLabel["sf="+sf+" assoc=1"].Result.Msgs.Total()
		two := byLabel["sf="+sf+" assoc=2"].Result.Msgs.Total()
		four := byLabel["sf="+sf+" assoc=4"].Result.Msgs.Total()
		if !(float64(four) <= float64(two)*1.01 && float64(two) <= float64(direct)*1.01) {
			t.Errorf("sf=%s: want assoc4 <= assoc2 <= direct, got %d / %d / %d", sf, four, two, direct)
		}
	}
}

// TestFig14Policy: LRU best, random better than LRA (§6.3.2).
func TestFig14Policy(t *testing.T) {
	if testing.Short() {
		t.Skip("long: 10 sparse LU runs")
	}
	runs, _ := ts.PolicySweep("LU", Procs)
	byLabel := map[string]Run{}
	for _, r := range runs[1:] {
		byLabel[r.Label] = r
	}
	lru := byLabel["sf=1 LRU"].Result.Msgs.Total()
	rnd := byLabel["sf=1 Rand"].Result.Msgs.Total()
	lra := byLabel["sf=1 LRA"].Result.Msgs.Total()
	if !(float64(lru) <= float64(rnd)*1.01 && float64(rnd) <= float64(lra)*1.01) {
		t.Errorf("want LRU <= Rand <= LRA at sf=1, got %d / %d / %d", lru, rnd, lra)
	}
}

// TestSmallScaleSmoke keeps a fast, always-on end-to-end check: every
// figure driver runs at 8 processors without error.
func TestSmallScaleSmoke(t *testing.T) {
	const procs = 8
	if got := len(ts.Figs3to6(procs)); got != 4 {
		t.Fatalf("Figs3to6 produced %d runs", got)
	}
	runs, tb := ts.SchemeComparison("MP3D", procs)
	if len(runs) != 4 || !strings.Contains(tb.String(), "Coarse Vector") {
		t.Fatal("SchemeComparison output wrong")
	}
	if runs[0].Result.Msgs[stats.Request] == 0 {
		t.Fatal("no traffic recorded")
	}
	runsS, tbS := ts.SparsePerformance("MP3D", procs)
	if len(runsS) != 10 || !strings.Contains(tbS.String(), "size factor") {
		t.Fatal("SparsePerformance output wrong")
	}
}

func TestWorkloadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Workload("nosuch", 4)
}

// TestClaimsRobustAcrossSeeds re-checks the LocusRoute and MP3D claims on
// three different workload seeds: the conclusions must not depend on one
// random input.
func TestClaimsRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("24 32-proc runs")
	}
	for seed := int64(2); seed <= 4; seed++ {
		runs := ts.SchemeComparisonSeeded("LocusRoute", Procs, seed)
		full, cv, b := runs[0], runs[1], runs[2]
		if r := msgRatio(b, full); r < 1.4 {
			t.Errorf("seed %d: B msg ratio %.3f, want >= 1.4", seed, r)
		}
		if r := msgRatio(cv, full); r > 1.15 {
			t.Errorf("seed %d: CV msg ratio %.3f, want <= 1.15", seed, r)
		}
		mruns := ts.SchemeComparisonSeeded("MP3D", Procs, seed)
		for _, s := range mruns[1:] {
			if r := execRatio(s, mruns[0]); r < 0.99 || r > 1.01 {
				t.Errorf("seed %d: MP3D %s exec ratio %.3f, want within 1%%", seed, s.Label, r)
			}
		}
	}
}
