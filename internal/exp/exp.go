// Package exp drives the paper's experiments end to end: it builds the
// workloads, configures machines, runs them, and renders each table and
// figure of the evaluation section (Figures 2–14, Tables 1–2). Both
// cmd/sweep and the benchmark harness are thin wrappers around this
// package.
package exp

import (
	"fmt"
	"time"

	"dircoh/internal/apps"
	"dircoh/internal/cache"
	"dircoh/internal/machine"
	"dircoh/internal/obs"
	"dircoh/internal/runner"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// Procs is the paper's experimental machine size: 32 processors in 32
// clusters (§5: "All runs were done with 32 processors").
const Procs = 32

// Schemes is the §5 roster: Dir32, Dir3CV2, Dir3B, Dir3NB. The paper
// normalizes everything to the full bit vector, which therefore comes
// first.
var Schemes = []struct {
	Label   string
	Factory machine.SchemeFactory
}{
	{"Full Vector", machine.FullVec},
	{"Coarse Vector", machine.CoarseVec2},
	{"Broadcast", machine.Broadcast},
	{"Non Broadcast", machine.NoBroadcast},
}

// Run is one simulation outcome annotated with its configuration.
type Run struct {
	App    string
	Label  string
	Result *machine.Result
}

// Workload builds the named application at its default experiment size.
func Workload(app string, procs int) *tango.Workload {
	f, err := apps.Lookup(app)
	if err != nil {
		panic(fmt.Sprintf("exp: %v", err))
	}
	return f(procs)
}

// RunApp simulates one application under one scheme with the prototype's
// full-size caches and a non-sparse directory (the Figures 7–10 setup).
func (s *Session) RunApp(app string, procs int, label string, f machine.SchemeFactory) Run {
	cfg := machine.DefaultConfig(f)
	cfg.Procs = procs
	return s.runWith(app, cfg, label)
}

func (s *Session) runWith(app string, cfg machine.Config, label string) Run {
	return s.runWorkload(app, Workload(app, cfg.Procs), cfg, label)
}

// runSparse runs a sparse-study configuration with the sparse-study
// problem size (LU is enlarged so the data set pressures the directory
// the way the paper's full-size problems pressured theirs).
func (s *Session) runSparse(app string, cfg machine.Config, label string) Run {
	return s.runWorkload(app, SparseWorkload(app, cfg.Procs), cfg, label)
}

// SparseWorkload builds the problem size used by the sparse-directory
// studies (Figures 11-14).
func SparseWorkload(app string, procs int) *tango.Workload {
	if app == "LU" {
		return apps.LU(apps.LUConfig{Procs: procs, N: 128})
	}
	return Workload(app, procs)
}

// RunError is the typed panic value the experiment drivers raise when a
// run fails: it names the run and the failed stage and wraps the
// underlying cause, so supervisors that recover driver panics (the
// campaign service) can classify the failure — errors.As through Unwrap
// reaches a *machine.StuckError for wedged or deadline-aborted runs.
type RunError struct {
	Run   string // "app/label" display name
	Stage string // "build", "run", "coherence", "check", "trace", "spans"
	Err   error
}

func (e *RunError) Error() string {
	if e.Stage == "run" || e.Stage == "build" {
		return fmt.Sprintf("exp: %s: %v", e.Run, e.Err)
	}
	return fmt.Sprintf("exp: %s %s: %v", e.Run, e.Stage, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

func (s *Session) runWorkload(app string, w *tango.Workload, cfg machine.Config, label string) Run {
	r, err := s.runConfigured(app+"/"+label, w, cfg)
	if err != nil {
		panic(err)
	}
	return Run{App: app, Label: label, Result: r}
}

// runConfigured executes one machine run under the session's observer and
// returns a typed *RunError on any failure instead of panicking — the
// error-propagating core runWorkload and ExecuteSpec share.
func (s *Session) runConfigured(name string, w *tango.Workload, cfg machine.Config) (*machine.Result, error) {
	start := time.Now()
	ob := s.Observer()
	fail := func(stage string, err error) error {
		return &RunError{Run: name, Stage: stage, Err: err}
	}
	var tr *obs.Tracer
	if ob.Tracer != nil {
		tr = ob.Tracer(name)
		cfg.Trace = tr
	}
	var sp *obs.SpanRecorder
	if ob.Spans != nil {
		sp = ob.Spans(name)
		cfg.Spans = sp
	}
	if ob.Check != nil {
		cfg.Check = true
		cfg.CheckSink = ob.Check(name)
	}
	cfg.SampleEvery = ob.SampleEvery
	if ob.Live != nil {
		cfg.Live = ob.Live.Run(name)
	}
	if ob.Faults.Enabled() {
		cfg.Mesh.Faults = ob.Faults
	}
	cfg.Deadline = ob.Deadline
	cfg.Shards = s.Shards()
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fail("build", err)
	}
	r, err := m.Run(w)
	if err != nil {
		return nil, fail("run", err)
	}
	if err := m.CheckCoherence(); err != nil {
		return nil, fail("coherence", err)
	}
	if err := m.CheckErr(); err != nil {
		return nil, fail("check", err)
	}
	if err := tr.Flush(); err != nil {
		return nil, fail("trace", err)
	}
	if err := sp.Flush(); err != nil {
		return nil, fail("spans", err)
	}
	if ob.Metrics != nil {
		ob.Metrics(name, m.MetricsSnapshot())
	}
	s.meter.Record(time.Since(start), uint64(r.ExecTime))
	return r, nil
}

// Table2 reproduces Table 2: general application characteristics at the
// experiment problem sizes (counts are in thousands, data set in KB —
// the paper's full-size runs report millions and MB).
func (s *Session) Table2(procs int) *stats.Table {
	tb := stats.NewTable("application", "shared refs(k)", "reads(k)", "writes(k)", "sync ops", "shared KB")
	rows := runner.Map(s.runPool(), apps.Names(), func(name string) []string {
		c := Workload(name, procs).Characterize()
		return []string{
			name,
			fmt.Sprintf("%.1f", float64(c.SharedRefs)/1000),
			fmt.Sprintf("%.1f", float64(c.SharedReads)/1000),
			fmt.Sprintf("%.1f", float64(c.SharedWrites)/1000),
			fmt.Sprintf("%d", c.SyncOps),
			fmt.Sprintf("%.1f", float64(c.SharedBytes)/1024),
		}
	})
	for _, row := range rows {
		tb.AddRow(row...)
	}
	return tb
}

// Figs3to6 reproduces the invalidation distributions of Figures 3–6:
// LocusRoute under Dir32, Dir3NB, Dir3B and Dir3CV2.
func (s *Session) Figs3to6(procs int) []Run {
	order := []struct {
		fig   string
		label string
		f     machine.SchemeFactory
	}{
		{"Figure 3", "Dir32 (full vector)", machine.FullVec},
		{"Figure 4", "Dir3NB", machine.NoBroadcast},
		{"Figure 5", "Dir3B", machine.Broadcast},
		{"Figure 6", "Dir3CV2", machine.CoarseVec2},
	}
	return s.collectRuns(len(order), func(i int) Run {
		o := order[i]
		return s.RunApp("LocusRoute", procs, o.fig+": "+o.label, o.f)
	})
}

// SchemeComparison reproduces one of Figures 7–10: one application under
// all four schemes, reporting execution time and message counts
// normalized to the full bit vector.
func (s *Session) SchemeComparison(app string, procs int) ([]Run, *stats.Table) {
	runs := s.collectRuns(len(Schemes), func(i int) Run {
		return s.RunApp(app, procs, Schemes[i].Label, Schemes[i].Factory)
	})
	base := runs[0].Result
	tb := stats.NewTable("scheme", "exec", "exec(norm)", "msgs", "msgs(norm)", "requests", "replies", "inval+ack")
	for _, r := range runs {
		res := r.Result
		tb.AddRow(
			r.Label,
			fmt.Sprintf("%d", res.ExecTime),
			fmt.Sprintf("%.3f", float64(res.ExecTime)/float64(base.ExecTime)),
			fmt.Sprintf("%d", res.Msgs.Total()),
			fmt.Sprintf("%.3f", float64(res.Msgs.Total())/float64(base.Msgs.Total())),
			fmt.Sprintf("%d", res.Msgs[stats.Request]),
			fmt.Sprintf("%d", res.Msgs[stats.Reply]),
			fmt.Sprintf("%d", res.Msgs.InvalAck()),
		)
	}
	return runs, tb
}

// ScaledCache returns the reduced cache configuration the sparse studies
// use for the given application (§6.3: caches are scaled per application
// so the data-set-to-cache ratio matches a full-size problem on real DASH
// hardware; the paper gives DWF 2 KB per processor).
func ScaledCache(app string) cache.Config {
	if app == "DWF" {
		return cache.Config{L1Size: 1 << 10, L1Assoc: 1, L2Size: 2 << 10, L2Assoc: 1, Block: 16}
	}
	return cache.Config{L1Size: 512, L1Assoc: 1, L2Size: 1 << 10, L2Assoc: 1, Block: 16}
}

// sparseEntriesPerCluster sizes the per-cluster sparse directory so the
// machine-wide entry count is sizeFactor times the machine-wide cache
// block count (the paper's "size factor").
func sparseEntriesPerCluster(cfg machine.Config, sizeFactor int) int {
	l2Blocks := cfg.Cache.L2Size / cfg.Block
	total := sizeFactor * l2Blocks * cfg.Procs
	return total / cfg.Clusters()
}

// SparseConfigFor builds the machine configuration for one sparse run of
// the named application.
func SparseConfigFor(app string, f machine.SchemeFactory, procs, sizeFactor, assoc int, policy sparse.ReplacePolicy) machine.Config {
	cfg := machine.DefaultConfig(f)
	cfg.Procs = procs
	cfg.Cache = ScaledCache(app)
	if sizeFactor > 0 {
		cfg.Sparse = machine.SparseConfig{
			Entries: sparseEntriesPerCluster(cfg, sizeFactor),
			Assoc:   assoc,
			Policy:  policy,
		}
	}
	return cfg
}

// SparsePerformance reproduces Figure 11 (LU) / Figure 12 (DWF): execution
// time versus directory size factor for the full-vector, coarse-vector and
// broadcast schemes with scaled caches, associativity 4 and random
// replacement, normalized to the non-sparse full-vector run.
func (s *Session) SparsePerformance(app string, procs int) ([]Run, *stats.Table) {
	schemes := Schemes[:3] // full, coarse, broadcast — as in the figures
	type spec struct {
		scheme  string
		factory machine.SchemeFactory
		sf      int
	}
	specs := []spec{{"Full Vector", machine.FullVec, 0}} // job 0: the non-sparse baseline
	for _, s := range schemes {
		for _, sf := range []int{1, 2, 4} {
			specs = append(specs, spec{s.Label, s.Factory, sf})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		if sp.sf == 0 {
			return s.runSparse(app, SparseConfigFor(app, sp.factory, procs, 0, 0, sparse.Random), "non-sparse full vector")
		}
		return s.runSparse(app, SparseConfigFor(app, sp.factory, procs, sp.sf, 4, sparse.Random),
			fmt.Sprintf("%s sf=%d", sp.scheme, sp.sf))
	})
	base := runs[0]
	tb := stats.NewTable("scheme", "size factor", "exec", "exec(norm)", "msgs(norm)", "replacements")
	tb.AddRow("Full Vector", "non-sparse", fmt.Sprintf("%d", base.Result.ExecTime), "1.000", "1.000", "0")
	for i, r := range runs[1:] {
		tb.AddRow(
			specs[i+1].scheme,
			fmt.Sprintf("%d", specs[i+1].sf),
			fmt.Sprintf("%d", r.Result.ExecTime),
			fmt.Sprintf("%.3f", float64(r.Result.ExecTime)/float64(base.Result.ExecTime)),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%d", r.Result.Replacements),
		)
	}
	return runs, tb
}

// AssocSweep reproduces Figure 13: message traffic versus sparse-directory
// associativity (1, 2, 4) for size factors 1, 2, 4, LU, full bit vector,
// normalized to the non-sparse run with the same scaled caches.
func (s *Session) AssocSweep(app string, procs int) ([]Run, *stats.Table) {
	type spec struct{ sf, assoc int }
	specs := []spec{{0, 0}} // job 0: the non-sparse baseline
	for _, sf := range []int{1, 2, 4} {
		for _, assoc := range []int{1, 2, 4} {
			specs = append(specs, spec{sf, assoc})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		if sp.sf == 0 {
			return s.runSparse(app, SparseConfigFor(app, machine.FullVec, procs, 0, 0, sparse.Random), "non-sparse")
		}
		return s.runSparse(app, SparseConfigFor(app, machine.FullVec, procs, sp.sf, sp.assoc, sparse.Random),
			fmt.Sprintf("sf=%d assoc=%d", sp.sf, sp.assoc))
	})
	base := runs[0]
	tb := stats.NewTable("size factor", "assoc", "msgs", "msgs(norm)", "replacements")
	for i, r := range runs[1:] {
		tb.AddRow(
			fmt.Sprintf("%d", specs[i+1].sf),
			fmt.Sprintf("%d", specs[i+1].assoc),
			fmt.Sprintf("%d", r.Result.Msgs.Total()),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%d", r.Result.Replacements),
		)
	}
	return runs, tb
}

// PolicySweep reproduces Figure 14: message traffic versus replacement
// policy (LRU, Random, LRA) for size factors 1, 2, 4, LU, associativity 4,
// full bit vector.
func (s *Session) PolicySweep(app string, procs int) ([]Run, *stats.Table) {
	policies := []sparse.ReplacePolicy{sparse.LRU, sparse.Random, sparse.LRA}
	type spec struct {
		sf  int
		pol sparse.ReplacePolicy
	}
	specs := []spec{{0, sparse.Random}} // job 0: the non-sparse baseline
	for _, sf := range []int{1, 2, 4} {
		for _, pol := range policies {
			specs = append(specs, spec{sf, pol})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		if sp.sf == 0 {
			return s.runSparse(app, SparseConfigFor(app, machine.FullVec, procs, 0, 0, sparse.Random), "non-sparse")
		}
		return s.runSparse(app, SparseConfigFor(app, machine.FullVec, procs, sp.sf, 4, sp.pol),
			fmt.Sprintf("sf=%d %v", sp.sf, sp.pol))
	})
	base := runs[0]
	tb := stats.NewTable("size factor", "policy", "msgs", "msgs(norm)", "replacements")
	for i, r := range runs[1:] {
		tb.AddRow(
			fmt.Sprintf("%d", specs[i+1].sf),
			specs[i+1].pol.String(),
			fmt.Sprintf("%d", r.Result.Msgs.Total()),
			fmt.Sprintf("%.3f", float64(r.Result.Msgs.Total())/float64(base.Result.Msgs.Total())),
			fmt.Sprintf("%d", r.Result.Replacements),
		)
	}
	return runs, tb
}

// WorkloadSeeded builds the named application with a specific generator
// seed (only MP3D and LocusRoute are seed-sensitive; the others are fully
// deterministic).
func WorkloadSeeded(app string, procs int, seed int64) *tango.Workload {
	switch app {
	case "MP3D":
		cfg := apps.DefaultMP3D(procs)
		cfg.Seed = seed
		return apps.MP3D(cfg)
	case "LocusRoute":
		cfg := apps.DefaultLocusRoute(procs)
		cfg.Seed = seed
		return apps.LocusRoute(cfg)
	default:
		return Workload(app, procs)
	}
}

// SchemeComparisonSeeded is SchemeComparison with a chosen workload seed,
// used to check that the paper's conclusions are not artifacts of one
// random input.
func (s *Session) SchemeComparisonSeeded(app string, procs int, seed int64) []Run {
	return s.collectRuns(len(Schemes), func(i int) Run {
		cfg := machine.DefaultConfig(Schemes[i].Factory)
		cfg.Procs = procs
		return s.runWorkload(app, WorkloadSeeded(app, procs, seed), cfg, Schemes[i].Label)
	})
}
