package exp

import (
	"strings"
	"testing"
)

func TestRegionSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("several 32-proc runs")
	}
	runs, tb := ts.RegionSweep("LocusRoute", Procs)
	if !strings.Contains(tb.String(), "Dir3CV16") {
		t.Fatalf("table missing rows:\n%s", tb)
	}
	// Larger regions -> more extraneous invalidations (within noise).
	base := runs[0].Result
	var prev float64
	for _, r := range runs[1:] {
		cur := float64(r.Result.Msgs.InvalAck())
		if prev != 0 && cur < prev*0.97 {
			t.Errorf("%s inval+ack %v dropped well below previous %v", r.Label, cur, prev)
		}
		prev = cur
	}
	// Region 32 (one region = whole machine) behaves like broadcast:
	// far above the full vector.
	last := runs[len(runs)-1].Result
	if last.Msgs.InvalAck() < 2*base.Msgs.InvalAck() {
		t.Errorf("CV32 inval+ack %d should be broadcast-like (full: %d)",
			last.Msgs.InvalAck(), base.Msgs.InvalAck())
	}
	// Region 1 stays close to the full vector.
	r1 := runs[1].Result
	if float64(r1.Msgs.Total()) > 1.1*float64(base.Msgs.Total()) {
		t.Errorf("CV1 total msgs %d should be near full vector's %d",
			r1.Msgs.Total(), base.Msgs.Total())
	}
}

func TestPointerSweepMorePointersHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("many 32-proc runs")
	}
	runs, _ := ts.PointerSweep("LocusRoute", Procs)
	byLabel := map[string]Run{}
	for _, r := range runs[1:] {
		byLabel[r.Label] = r
	}
	// For the broadcast scheme, going from 1 to 6 pointers must cut
	// traffic substantially (fewer overflows).
	b1 := byLabel["Dir_iB i=1"].Result.Msgs.Total()
	b6 := byLabel["Dir_iB i=6"].Result.Msgs.Total()
	if float64(b6) > 0.8*float64(b1) {
		t.Errorf("Dir6B msgs %d should be well below Dir1B's %d", b6, b1)
	}
	// Same direction for the coarse vector.
	cv1 := byLabel["Dir_iCV2 i=1"].Result.Msgs.Total()
	cv6 := byLabel["Dir_iCV2 i=6"].Result.Msgs.Total()
	if cv6 > cv1 {
		t.Errorf("Dir6CV2 msgs %d should not exceed Dir1CV2's %d", cv6, cv1)
	}
	// And at every pointer count, CV's traffic <= B's (the paper's core
	// superiority claim, here swept across the budget).
	for _, i := range []string{"1", "2", "3", "4", "6"} {
		cv := byLabel["Dir_iCV2 i="+i].Result.Msgs.Total()
		b := byLabel["Dir_iB i="+i].Result.Msgs.Total()
		if float64(cv) > float64(b)*1.02 {
			t.Errorf("i=%s: CV msgs %d exceed B msgs %d", i, cv, b)
		}
	}
}

func TestDirectoryComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("five 32-proc runs")
	}
	runs, tb := ts.DirectoryComparison("LocusRoute", Procs)
	if len(runs) != 5 {
		t.Fatalf("runs = %d", len(runs))
	}
	full := runs[0].Result
	ov := runs[3].Result // Dir2 + 64 wide entries
	// With a big-enough wide cache the overflow directory is exactly as
	// precise as the full vector, at a fraction of per-block storage.
	if ov.Msgs != full.Msgs {
		t.Errorf("overflow directory with ample wide cache should match the full vector: %v vs %v", ov.Msgs, full.Msgs)
	}
	// The tight wide cache degrades but never approaches broadcast.
	tight := runs[4].Result
	if tight.Replacements == 0 {
		t.Error("tight wide cache should replace entries")
	}
	if float64(tight.Msgs.Total()) > 1.8*float64(full.Msgs.Total()) {
		t.Errorf("tight overflow traffic %.2fx should stay well below broadcast's 2.4x",
			float64(tight.Msgs.Total())/float64(full.Msgs.Total()))
	}
	if !strings.Contains(tb.String(), "overflow") {
		t.Fatal("table malformed")
	}
}

func TestLockContention(t *testing.T) {
	runs, tb := ts.LockContention(16, 4)
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	full, cv := runs[0].Result, runs[1].Result
	// Full vector grants directly: no retries. Coarse waiter sets cause
	// region wakes and re-contention.
	if full.LockRetries != 0 {
		t.Errorf("full vector lock retries = %d, want 0", full.LockRetries)
	}
	if cv.LockRetries == 0 {
		t.Error("coarse vector should incur lock retries (§7 region wake)")
	}
	if !strings.Contains(tb.String(), "lock retries") {
		t.Fatal("table malformed")
	}
	// Every variant must complete (the run panics on deadlock) and do
	// real work.
	for _, r := range runs {
		if r.Result.ExecTime == 0 {
			t.Errorf("%s: no work", r.Label)
		}
	}
}
