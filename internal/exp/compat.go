package exp

import (
	"io"
	"sync"

	"dircoh/internal/machine"
	"dircoh/internal/sim"
	"dircoh/internal/stats"
)

// This file is the deprecated process-global surface kept for one release
// while callers migrate to Session. Every function delegates to a single
// package default session; the Session API is the one to use — it makes
// the instrumentation, parallelism and shard width explicit per campaign
// instead of ambient mutable state.

var (
	defaultMu      sync.RWMutex
	defaultSession = NewSession(Observer{}, 0, 0)
)

// Default returns the process-wide session the deprecated package-level
// drivers run on.
//
// Deprecated: build a Session with NewSession instead.
func Default() *Session {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultSession
}

// SetObserver installs the hooks used by every subsequent run on the
// default session.
//
// Deprecated: pass the Observer to NewSession instead.
func SetObserver(o Observer) { Default().setObserver(o) }

// SetParallelism bounds the number of simulations the default session
// runs concurrently; n <= 0 selects GOMAXPROCS.
//
// Deprecated: pass the bound to NewSession instead.
func SetParallelism(n int) { Default().setParallelism(n) }

// Parallelism returns the default session's concurrency bound.
//
// Deprecated: use Session.Parallelism.
func Parallelism() int { return Default().Parallelism() }

// Meter exposes the default session's job metrics.
//
// Deprecated: use Session.Meter.
func Meter() *stats.JobMeter { return Default().Meter() }

// Deprecated: use Session.RunApp.
func RunApp(app string, procs int, label string, f machine.SchemeFactory) Run {
	return Default().RunApp(app, procs, label, f)
}

// Deprecated: use Session.Table2.
func Table2(procs int) *stats.Table { return Default().Table2(procs) }

// Deprecated: use Session.Figs3to6.
func Figs3to6(procs int) []Run { return Default().Figs3to6(procs) }

// Deprecated: use Session.SchemeComparison.
func SchemeComparison(app string, procs int) ([]Run, *stats.Table) {
	return Default().SchemeComparison(app, procs)
}

// Deprecated: use Session.SchemeComparisonSeeded.
func SchemeComparisonSeeded(app string, procs int, seed int64) []Run {
	return Default().SchemeComparisonSeeded(app, procs, seed)
}

// Deprecated: use Session.SparsePerformance.
func SparsePerformance(app string, procs int) ([]Run, *stats.Table) {
	return Default().SparsePerformance(app, procs)
}

// Deprecated: use Session.AssocSweep.
func AssocSweep(app string, procs int) ([]Run, *stats.Table) {
	return Default().AssocSweep(app, procs)
}

// Deprecated: use Session.PolicySweep.
func PolicySweep(app string, procs int) ([]Run, *stats.Table) {
	return Default().PolicySweep(app, procs)
}

// Deprecated: use Session.OccupancyStudy.
func OccupancyStudy(procs int) ([]Run, *stats.Table) { return Default().OccupancyStudy(procs) }

// Deprecated: use Session.BlockSizeStudy.
func BlockSizeStudy(app string, procs int, blockSizes []int) ([]Run, *stats.Table) {
	return Default().BlockSizeStudy(app, procs, blockSizes)
}

// Deprecated: use Session.NetworkContention.
func NetworkContention(app string, procs int, portTimes []sim.Time) ([]Run, *stats.Table) {
	return Default().NetworkContention(app, procs, portTimes)
}

// Deprecated: use Session.BarrierStudy.
func BarrierStudy(procs, rounds int, portTimes []sim.Time) ([]Run, *stats.Table) {
	return Default().BarrierStudy(procs, rounds, portTimes)
}

// Deprecated: use Session.RegionSweep.
func RegionSweep(app string, procs int) ([]Run, *stats.Table) {
	return Default().RegionSweep(app, procs)
}

// Deprecated: use Session.PointerSweep.
func PointerSweep(app string, procs int) ([]Run, *stats.Table) {
	return Default().PointerSweep(app, procs)
}

// Deprecated: use Session.DirectoryComparison.
func DirectoryComparison(app string, procs int) ([]Run, *stats.Table) {
	return Default().DirectoryComparison(app, procs)
}

// Deprecated: use Session.LockContention.
func LockContention(procs, rounds int) ([]Run, *stats.Table) {
	return Default().LockContention(procs, rounds)
}

// Deprecated: use Session.WriteReport.
func WriteReport(w io.Writer, opt ReportOptions) error { return Default().WriteReport(w, opt) }
