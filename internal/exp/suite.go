package exp

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"dircoh/internal/apps"
	"dircoh/internal/config"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
	"dircoh/internal/trace"
)

// LoadWorkload resolves a suite entry's app field into a workload:
//
//   - a registered application name ("LU", "trace", ...),
//   - "trace:<dir>" — a directory of per-core RD/WR text traces
//     (apps.LoadTraceDir),
//   - otherwise a binary trace file path produced by cmd/tracegen.
func LoadWorkload(name string, procs int) (*tango.Workload, error) {
	if dir, ok := strings.CutPrefix(name, "trace:"); ok {
		return apps.LoadTraceDir(dir, procs)
	}
	build, lookupErr := apps.Lookup(name)
	if lookupErr == nil {
		return build(procs), nil
	}
	tf, err := os.Open(name)
	if err != nil {
		var unknown *apps.UnknownAppError
		if errors.As(lookupErr, &unknown) {
			return nil, fmt.Errorf("%w and no such trace file", lookupErr)
		}
		return nil, err
	}
	defer tf.Close()
	return trace.Read(tf)
}

// ExecuteSpec builds and runs one declarative suite entry end to end
// under the session's observer, shard width and deadline, returning the
// typed *RunError on failure instead of panicking — the form supervised
// campaign jobs need. The run is labeled run.Name in every observability
// stream.
func (s *Session) ExecuteSpec(run config.RunSpec) (*machine.Result, error) {
	cfg, err := run.Machine.Build()
	if err != nil {
		return nil, &RunError{Run: run.Name, Stage: "build", Err: err}
	}
	w, err := LoadWorkload(run.App, cfg.Procs)
	if err != nil {
		return nil, &RunError{Run: run.Name, Stage: "build", Err: err}
	}
	return s.runConfigured(run.Name, w, cfg)
}

// SuiteTableHeader is the column set of the suite comparison table, shared
// by cmd/suite and the campaign service so a suite campaign's assembled
// result matches the command's output.
var SuiteTableHeader = []string{"run", "scheme", "exec", "msgs", "requests", "replies", "inval+ack", "repl"}

// SuiteRowCells renders one finished run as the suite table's row cells,
// in SuiteTableHeader order.
func SuiteRowCells(name string, r *machine.Result) []string {
	return []string{
		name,
		r.Scheme,
		fmt.Sprintf("%d", r.ExecTime),
		fmt.Sprintf("%d", r.Msgs.Total()),
		fmt.Sprintf("%d", r.Msgs[stats.Request]),
		fmt.Sprintf("%d", r.Msgs[stats.Reply]),
		fmt.Sprintf("%d", r.Msgs.InvalAck()),
		fmt.Sprintf("%d", r.Replacements),
	}
}
