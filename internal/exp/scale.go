package exp

import (
	"fmt"

	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
)

// ScaleAxis is the beyond-64 cluster axis of the scale study: the machine
// sizes the paper's Table 1 extrapolates to, where the full bit vector's
// per-entry cost stops being affordable.
var ScaleAxis = []int{256, 1024, 4096}

// ScaleSchemes is the roster the scale study compares. The full vector is
// the traffic reference (and the memory strawman); Dir3CV2 and the
// adaptive two-level directory are the compact encodings; Dir3B shows
// where plain broadcast lands once the pointers overflow.
var ScaleSchemes = []struct {
	Label   string
	Factory machine.SchemeFactory
}{
	{"Full Vector", machine.FullVec},
	{"Coarse Vector", machine.CoarseVec2},
	{"Two Level", machine.TwoLevel},
	{"Broadcast", machine.Broadcast},
}

// ScaleProbe builds the synthetic workload of the scale study. One hot
// block is read by every second processor of a window spanning three
// two-level regions — sharing that is clustered (few regions) but sparse
// within each region, the regime that separates the encodings: the full
// vector and the two-level directory invalidate the sharers exactly
// (the writer's own region takes the fourth slot), the region-2 coarse
// vector pays double (each occupied pair region expands to both nodes),
// and Dir3B broadcasts to the whole machine. A processor outside the
// window rewrites the hot block every round; tree barriers separate the
// read and write phases so the fan-out is deterministic. Every processor
// also writes one private block per round, so the directory holds more
// than the hot entry.
func ScaleProbe(procs, rounds int) *tango.Workload {
	const block = 16
	window := 3 * core.AdaptiveRegion(procs)
	if window > procs {
		window = procs
	}
	writer := window % procs // first node outside the window (node 0 on tiny machines)
	hot := int64(0)
	priv := func(p int) int64 { return int64(1+p) * block }
	barrierBase := int64(1+procs) * block
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for r := 0; r < rounds; r++ {
			if p < window && p%2 == 0 {
				b.Read(hot)
			}
			b.Write(priv(p))
			b.Barrier(barrierBase + int64(2*r)*block)
			if p == writer {
				b.Write(hot)
			}
			b.Barrier(barrierBase + int64(2*r+1)*block)
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{
		Name:        "scale-probe",
		Streams:     streams,
		SharedBytes: barrierBase + int64(2*rounds)*block,
	}
}

// ScaleStudy measures the compact directory encodings past the paper's
// 64-processor axis: for each cluster count it runs the scale probe under
// every ScaleSchemes entry and reports per-entry directory cost next to
// execution time and traffic, normalized to the full vector at the same
// size. One processor per cluster, tree barriers (a central barrier is a
// hot spot at 4096 clusters).
func (s *Session) ScaleStudy(clusters []int, rounds int) ([]Run, *stats.Table) {
	type spec struct {
		n      int
		scheme int
	}
	var specs []spec
	for _, n := range clusters {
		for si := range ScaleSchemes {
			specs = append(specs, spec{n, si})
		}
	}
	runs := s.collectRuns(len(specs), func(i int) Run {
		sp := specs[i]
		cfg := machine.DefaultConfig(ScaleSchemes[sp.scheme].Factory)
		cfg.Procs = sp.n
		cfg.Barrier = machine.TreeBarrier
		return s.runWorkload("scale-probe", ScaleProbe(sp.n, rounds), cfg,
			fmt.Sprintf("%s n=%d", ScaleSchemes[sp.scheme].Label, sp.n))
	})
	tb := stats.NewTable("clusters", "scheme", "entry bits", "entry bytes", "exec", "exec(norm)", "msgs", "msgs(norm)", "inval+ack")
	for i, r := range runs {
		sp := specs[i]
		base := runs[i-sp.scheme].Result // full vector at the same cluster count
		res := r.Result
		tb.AddRow(
			fmt.Sprintf("%d", sp.n),
			ScaleSchemes[sp.scheme].Label,
			fmt.Sprintf("%d", res.DirEntryBits),
			fmt.Sprintf("%d", res.DirEntryBytes),
			fmt.Sprintf("%d", res.ExecTime),
			fmt.Sprintf("%.3f", float64(res.ExecTime)/float64(base.ExecTime)),
			fmt.Sprintf("%d", res.Msgs.Total()),
			fmt.Sprintf("%.3f", float64(res.Msgs.Total())/float64(base.Msgs.Total())),
			fmt.Sprintf("%d", res.Msgs.InvalAck()),
		)
	}
	return runs, tb
}
