// Package tango is the execution-driven workload substrate standing in for
// the Tango reference generator the paper used (§5). A workload produces
// one reference stream per simulated processor; the machine pulls the next
// reference of a processor only when its previous reference has completed,
// and lock/unlock/barrier references enforce the same cross-processor
// orderings a real execution would, with timing feedback from the memory
// system deciding the interleaving.
//
// Only shared references are generated, matching the paper's methodology
// (Table 2 counts shared references only).
package tango

import "fmt"

// Op is a shared-memory reference kind.
type Op uint8

const (
	// Read is a shared-data load.
	Read Op = iota
	// Write is a shared-data store.
	Write
	// Lock acquires the lock at the reference address.
	Lock
	// Unlock releases the lock at the reference address.
	Unlock
	// Barrier waits until every processor has arrived at the same
	// barrier address.
	Barrier
)

func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	case Barrier:
		return "barrier"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsSync reports whether the op is a synchronization operation.
func (o Op) IsSync() bool { return o == Lock || o == Unlock || o == Barrier }

// Ref is one shared reference: an operation on a byte address.
type Ref struct {
	Op   Op
	Addr int64
}

// Stream is a per-processor reference sequence, consumed in order.
type Stream struct {
	refs []Ref
	pos  int
}

// NewStream wraps a pre-generated reference slice.
func NewStream(refs []Ref) *Stream { return &Stream{refs: refs} }

// Next returns the next reference; ok is false when the stream is done.
func (s *Stream) Next() (r Ref, ok bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r = s.refs[s.pos]
	s.pos++
	return r, true
}

// Len returns the total number of references in the stream.
func (s *Stream) Len() int { return len(s.refs) }

// Remaining returns the number of references not yet consumed.
func (s *Stream) Remaining() int { return len(s.refs) - s.pos }

// Workload is a parallel application: a name, a set of per-processor
// reference streams, and the size of the shared data it touches.
type Workload struct {
	Name        string
	Streams     [][]Ref // one slice per processor
	SharedBytes int64   // shared space touched (Table 2's last column)
}

// Procs returns the number of processors the workload was generated for.
func (w *Workload) Procs() int { return len(w.Streams) }

// Characteristics are the Table 2 columns for one workload.
type Characteristics struct {
	SharedRefs   uint64
	SharedReads  uint64
	SharedWrites uint64
	SyncOps      uint64
	SharedBytes  int64
}

// Characterize computes Table 2 statistics from the raw streams.
func (w *Workload) Characterize() Characteristics {
	var c Characteristics
	c.SharedBytes = w.SharedBytes
	for _, s := range w.Streams {
		for _, r := range s {
			switch r.Op {
			case Read:
				c.SharedRefs++
				c.SharedReads++
			case Write:
				c.SharedRefs++
				c.SharedWrites++
			default:
				c.SyncOps++
			}
		}
	}
	return c
}

// WordBytes is the reference granularity: one 8-byte word.
const WordBytes = 8

// Allocator hands out non-overlapping shared regions, block-aligned so
// that distinct arrays never false-share a block.
type Allocator struct {
	next       int64
	blockBytes int64
}

// NewAllocator returns an allocator whose regions are aligned to
// blockBytes (the machine's cache block size).
func NewAllocator(blockBytes int) *Allocator {
	if blockBytes <= 0 {
		panic("tango: blockBytes must be positive")
	}
	return &Allocator{blockBytes: int64(blockBytes)}
}

// Region is a contiguous shared array.
type Region struct {
	base int64
	size int64
}

// Words allocates a region of n 8-byte words.
func (a *Allocator) Words(n int64) Region {
	if n <= 0 {
		panic("tango: region size must be positive")
	}
	size := n * WordBytes
	r := Region{base: a.next, size: size}
	a.next += size
	// Block-align the next region.
	if rem := a.next % a.blockBytes; rem != 0 {
		a.next += a.blockBytes - rem
	}
	return r
}

// TotalBytes returns the total shared bytes allocated (including alignment
// padding).
func (a *Allocator) TotalBytes() int64 { return a.next }

// Word returns the byte address of word i of the region.
func (r Region) Word(i int64) int64 {
	if i < 0 || i*WordBytes >= r.size {
		panic(fmt.Sprintf("tango: word %d out of region of %d words", i, r.size/WordBytes))
	}
	return r.base + i*WordBytes
}

// Base returns the region's starting byte address.
func (r Region) Base() int64 { return r.base }

// Size returns the region's size in bytes.
func (r Region) Size() int64 { return r.size }

// Words returns the number of words in the region.
func (r Region) Words() int64 { return r.size / WordBytes }

// Builder accumulates one processor's reference stream.
type Builder struct {
	refs []Ref
}

// Read appends a read of addr.
func (b *Builder) Read(addr int64) { b.refs = append(b.refs, Ref{Op: Read, Addr: addr}) }

// Write appends a write of addr.
func (b *Builder) Write(addr int64) { b.refs = append(b.refs, Ref{Op: Write, Addr: addr}) }

// Lock appends a lock acquire of addr.
func (b *Builder) Lock(addr int64) { b.refs = append(b.refs, Ref{Op: Lock, Addr: addr}) }

// Unlock appends a lock release of addr.
func (b *Builder) Unlock(addr int64) { b.refs = append(b.refs, Ref{Op: Unlock, Addr: addr}) }

// Barrier appends a barrier arrival at addr.
func (b *Builder) Barrier(addr int64) { b.refs = append(b.refs, Ref{Op: Barrier, Addr: addr}) }

// ReadRange appends reads of words [lo, hi) of region r.
func (b *Builder) ReadRange(r Region, lo, hi int64) {
	for i := lo; i < hi; i++ {
		b.Read(r.Word(i))
	}
}

// WriteRange appends writes of words [lo, hi) of region r.
func (b *Builder) WriteRange(r Region, lo, hi int64) {
	for i := lo; i < hi; i++ {
		b.Write(r.Word(i))
	}
}

// Refs returns the accumulated stream.
func (b *Builder) Refs() []Ref { return b.refs }
