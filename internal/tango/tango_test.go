package tango

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	names := map[Op]string{Read: "read", Write: "write", Lock: "lock", Unlock: "unlock", Barrier: "barrier"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), want)
		}
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestIsSync(t *testing.T) {
	if Read.IsSync() || Write.IsSync() {
		t.Fatal("read/write must not be sync")
	}
	if !Lock.IsSync() || !Unlock.IsSync() || !Barrier.IsSync() {
		t.Fatal("lock/unlock/barrier must be sync")
	}
}

func TestStream(t *testing.T) {
	refs := []Ref{{Read, 0}, {Write, 8}, {Barrier, 16}}
	s := NewStream(refs)
	if s.Len() != 3 || s.Remaining() != 3 {
		t.Fatal("length wrong")
	}
	for i := 0; i < 3; i++ {
		r, ok := s.Next()
		if !ok || r != refs[i] {
			t.Fatalf("Next %d = %v, %v", i, r, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
	if s.Remaining() != 0 {
		t.Fatal("Remaining should be 0")
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(16)
	r1 := a.Words(3) // 24 bytes -> padded to 32
	r2 := a.Words(1)
	if r1.Base() != 0 || r1.Size() != 24 || r1.Words() != 3 {
		t.Fatalf("r1 = %+v", r1)
	}
	if r2.Base() != 32 {
		t.Fatalf("r2 base = %d, want 32 (block aligned)", r2.Base())
	}
	if a.TotalBytes() != 48 {
		t.Fatalf("TotalBytes = %d, want 48", a.TotalBytes())
	}
}

func TestAllocatorPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for bad block size")
			}
		}()
		NewAllocator(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for empty region")
			}
		}()
		NewAllocator(16).Words(0)
	}()
}

func TestRegionWord(t *testing.T) {
	a := NewAllocator(16)
	r := a.Words(4)
	if r.Word(0) != r.Base() || r.Word(3) != r.Base()+24 {
		t.Fatal("word addressing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range word")
		}
	}()
	r.Word(4)
}

func TestBuilderAndCharacterize(t *testing.T) {
	a := NewAllocator(16)
	r := a.Words(8)
	var b Builder
	b.ReadRange(r, 0, 4)
	b.WriteRange(r, 0, 2)
	b.Lock(r.Word(7))
	b.Unlock(r.Word(7))
	b.Barrier(r.Word(6))
	w := Workload{Name: "t", Streams: [][]Ref{b.Refs()}, SharedBytes: a.TotalBytes()}
	c := w.Characterize()
	if c.SharedReads != 4 || c.SharedWrites != 2 || c.SyncOps != 3 {
		t.Fatalf("characteristics = %+v", c)
	}
	if c.SharedRefs != 6 {
		t.Fatalf("SharedRefs = %d, want 6", c.SharedRefs)
	}
	if c.SharedBytes != 64 {
		t.Fatalf("SharedBytes = %d, want 64", c.SharedBytes)
	}
	if w.Procs() != 1 {
		t.Fatal("Procs wrong")
	}
}

// Property: regions from one allocator never overlap and are block-aligned.
func TestQuickAllocatorDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewAllocator(16)
		var regions []Region
		for _, s := range sizes {
			n := int64(s%32) + 1
			regions = append(regions, a.Words(n))
		}
		for i, r := range regions {
			if r.Base()%16 != 0 {
				return false
			}
			for j := i + 1; j < len(regions); j++ {
				q := regions[j]
				if r.Base() < q.Base()+q.Size() && q.Base() < r.Base()+r.Size() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
