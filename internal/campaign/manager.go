package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dircoh/internal/exp"
	"dircoh/internal/machine"
	"dircoh/internal/obs"
	"dircoh/internal/runner"
)

// Campaign states. A campaign is terminal in StateDone or StateFailed;
// StatePaused marks work interrupted by a drain (or found interrupted on
// disk after a crash) that will resume when scheduled again.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StatePaused  = "paused"
	StateDone    = "done"
	StateFailed  = "failed"
)

// BusyError reports that admission control rejected a submission; the
// caller should retry after RetryAfter (cmd/simd maps this to HTTP 429
// with a Retry-After header).
type BusyError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("campaign: busy: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// ErrDraining rejects submissions while the manager shuts down.
var ErrDraining = errors.New("campaign: manager is draining")

// Config tunes one Manager.
type Config struct {
	// Root is the campaign state directory. "" runs volatile: nothing is
	// persisted and nothing survives the process (used by benchmarks to
	// measure checkpoint overhead against).
	Root string
	// MaxActive bounds concurrently running campaigns (default 1).
	MaxActive int
	// QueueDepth bounds campaigns waiting to run (default 8).
	QueueDepth int
	// MaxTenants bounds tenants with unfinished campaigns (default 4).
	MaxTenants int
	// TenantJobs bounds one tenant's outstanding (not yet executed) jobs
	// across its unfinished campaigns (default 512).
	TenantJobs int
	// JobRetries is how many times a failed job is re-run before a typed
	// failure record is written (default 1). Stuck jobs — watchdog aborts,
	// *machine.StuckError — are quarantined immediately, never retried.
	JobRetries int
	// JobTimeout, when > 0, bounds each job in wall-clock time via the
	// machine's watchdog; a timed-out job is quarantined as stuck.
	JobTimeout time.Duration
	// CheckpointEvery compacts the journal into checkpoint.json after this
	// many appends (default 8; < 0 disables periodic checkpoints).
	CheckpointEvery int
	// Parallel is the per-campaign worker budget (0 = one per core).
	Parallel int
	// Shards is the machine-core shard width for simulation jobs.
	Shards int
	// NoSync skips the per-append journal fsync (tests; real servers keep
	// the default durable behavior).
	NoSync bool
	// JobRan, when non-nil, is called before every job execution — the
	// crash/resume tests count re-executed jobs through it.
	JobRan func(id string, job int)
}

func (c *Config) fill() {
	if c.MaxActive <= 0 {
		c.MaxActive = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4
	}
	if c.TenantJobs <= 0 {
		c.TenantJobs = 512
	}
	if c.JobRetries == 0 {
		c.JobRetries = 1
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
}

// Campaign is one submitted spec and its execution state.
type Campaign struct {
	ID     string
	Tenant string

	spec Spec
	dir  string // "" when volatile

	mu       sync.Mutex
	state    string
	outcomes map[int]record
	jr       *journal
	appends  int // journal appends since the last checkpoint
	result   string
	failures []Failure
	live     *obs.Live
	obsSink  *obs.JSONLSink
	events   []string
	subs     []chan string
}

// Status is one campaign's externally visible state.
type Status struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	Tenant   string    `json:"tenant,omitempty"`
	State    string    `json:"state"`
	Jobs     int       `json:"jobs"`
	Done     int       `json:"done"`
	Failures []Failure `json:"failures,omitempty"`
}

// Manager owns a set of campaigns: admission control, scheduling,
// persistence and resumption.
type Manager struct {
	cfg Config

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	queue     []*Campaign
	active    int
	seq       int
	draining  bool

	runCtx context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Open builds a manager over cfg.Root, resuming every unfinished
// campaign it finds there (each re-executes only the jobs its checkpoint
// and journal do not already cover). With Root == "" the manager is
// volatile.
func Open(cfg Config) (*Manager, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{cfg: cfg, campaigns: make(map[string]*Campaign), runCtx: ctx, cancel: cancel}
	if cfg.Root != "" {
		if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
			cancel()
			return nil, err
		}
		if err := m.scan(); err != nil {
			cancel()
			return nil, err
		}
	}
	m.mu.Lock()
	m.schedule()
	m.mu.Unlock()
	return m, nil
}

// scan loads every campaign directory under Root, restoring terminal
// results and queueing unfinished campaigns for resumption.
func (m *Manager) scan() error {
	entries, err := os.ReadDir(m.cfg.Root)
	if err != nil {
		return err
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(m.cfg.Root, e.Name(), specFile)); err != nil {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	for _, id := range ids {
		dir := filepath.Join(m.cfg.Root, id)
		data, err := os.ReadFile(filepath.Join(dir, specFile))
		if err != nil {
			return err
		}
		var env specEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return fmt.Errorf("campaign: %s/%s: %w", id, specFile, err)
		}
		outcomes, err := loadOutcomes(dir)
		if err != nil {
			return err
		}
		c := &Campaign{
			ID: env.ID, Tenant: env.Tenant, spec: env.Spec, dir: dir,
			outcomes: outcomes, live: obs.NewLive(),
		}
		c.rebuildEvents()
		var n int
		if _, err := fmt.Sscanf(id, "c%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
		switch {
		case exists(filepath.Join(dir, resultFile)):
			res, err := os.ReadFile(filepath.Join(dir, resultFile))
			if err != nil {
				return err
			}
			c.state = StateDone
			c.result = string(res)
			c.failures = collectFailures(outcomes)
			c.events = append(c.events, c.finalEventLine())
		case exists(filepath.Join(dir, failedFile)):
			fdata, err := os.ReadFile(filepath.Join(dir, failedFile))
			if err != nil {
				return err
			}
			if err := json.Unmarshal(fdata, &c.failures); err != nil {
				return fmt.Errorf("campaign: %s/%s: %w", id, failedFile, err)
			}
			c.state = StateFailed
			c.events = append(c.events, c.finalEventLine())
		default:
			c.state = StateQueued
			m.queue = append(m.queue, c)
		}
		m.campaigns[c.ID] = c
		m.order = append(m.order, c.ID)
	}
	return nil
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// rebuildEvents reconstructs the event history a resumed campaign's
// subscribers replay, in job order.
func (c *Campaign) rebuildEvents() {
	for _, rec := range sortedRecords(c.outcomes) {
		c.events = append(c.events, c.eventLine(rec))
	}
}

// Submit admits one campaign: spec validation, tenancy and queue-depth
// checks, durable spec write, and scheduling. tenant may be empty (the
// anonymous tenant still counts against MaxTenants and TenantJobs).
func (m *Manager) Submit(tenant string, spec Spec) (*Campaign, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		return nil, &BusyError{Reason: fmt.Sprintf("queue full (%d campaigns waiting)", len(m.queue)), RetryAfter: 30 * time.Second}
	}
	outstanding, tenants := m.outstandingLocked()
	if _, known := tenants[tenant]; !known && len(tenants) >= m.cfg.MaxTenants {
		return nil, &BusyError{Reason: fmt.Sprintf("%d tenants already active", len(tenants)), RetryAfter: 30 * time.Second}
	}
	if outstanding[tenant]+spec.Jobs() > m.cfg.TenantJobs {
		return nil, &BusyError{
			Reason:     fmt.Sprintf("tenant %q job quota: %d outstanding + %d submitted > %d", tenant, outstanding[tenant], spec.Jobs(), m.cfg.TenantJobs),
			RetryAfter: 10 * time.Second,
		}
	}

	m.seq++
	c := &Campaign{
		ID: fmt.Sprintf("c%04d", m.seq), Tenant: tenant, spec: spec,
		state: StateQueued, outcomes: make(map[int]record), live: obs.NewLive(),
	}
	if m.cfg.Root != "" {
		c.dir = filepath.Join(m.cfg.Root, c.ID)
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, err
		}
		env := specEnvelope{ID: c.ID, Tenant: tenant, Spec: spec}
		data, err := json.MarshalIndent(&env, "", " ")
		if err != nil {
			return nil, err
		}
		if err := atomicWrite(filepath.Join(c.dir, specFile), data); err != nil {
			return nil, err
		}
	}
	m.campaigns[c.ID] = c
	m.order = append(m.order, c.ID)
	m.queue = append(m.queue, c)
	m.schedule()
	return c, nil
}

// outstandingLocked computes per-tenant unfinished job counts and the set
// of tenants owning any unfinished campaign. Caller holds m.mu.
func (m *Manager) outstandingLocked() (map[string]int, map[string]bool) {
	jobs := make(map[string]int)
	tenants := make(map[string]bool)
	for _, c := range m.campaigns {
		c.mu.Lock()
		terminal := c.state == StateDone || c.state == StateFailed
		remaining := c.spec.Jobs() - len(c.outcomes)
		c.mu.Unlock()
		if terminal {
			continue
		}
		tenants[c.Tenant] = true
		jobs[c.Tenant] += remaining
	}
	return jobs, tenants
}

// schedule starts queued campaigns while active slots remain. Caller
// holds m.mu.
func (m *Manager) schedule() {
	for !m.draining && m.active < m.cfg.MaxActive && len(m.queue) > 0 {
		c := m.queue[0]
		m.queue = m.queue[1:]
		m.active++
		m.wg.Add(1)
		go m.runCampaign(c)
	}
}

// runCampaign executes every job the campaign does not already have an
// outcome for, journaling each as it completes, then finalizes — or, if
// the run context was cancelled (drain), checkpoints and parks the
// campaign as paused.
func (m *Manager) runCampaign(c *Campaign) {
	defer m.wg.Done()
	c.mu.Lock()
	c.state = StateRunning
	if c.dir != "" {
		jr, err := openJournal(c.dir, !m.cfg.NoSync)
		if err != nil {
			c.state = StateFailed
			c.failures = append(c.failures, Failure{Kind: "error", Msg: err.Error()})
			c.mu.Unlock()
			m.finishSlot()
			return
		}
		c.jr = jr
		f, err := os.OpenFile(filepath.Join(c.dir, obsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			c.obsSink = obs.NewJSONLSink(f)
		}
	}
	c.mu.Unlock()

	sess := m.sessionFor(c)
	var pending []int
	c.mu.Lock()
	for i := 0; i < c.spec.Jobs(); i++ {
		if _, ok := c.outcomes[i]; !ok {
			pending = append(pending, i)
		}
	}
	c.mu.Unlock()

	jobW, _ := c.spec.jobParallel(m.cfg.Parallel)
	pool := runner.New(jobW)
	runner.CollectCtx(m.runCtx, pool, len(pending), func(k int) struct{} {
		m.execJob(c, sess, pending[k])
		return struct{}{}
	})
	m.finalize(c)
	m.finishSlot()
}

func (m *Manager) finishSlot() {
	m.mu.Lock()
	m.active--
	m.schedule()
	m.mu.Unlock()
}

// sessionFor builds the campaign's experiment session: its private live
// registry, the per-job deadline, and a metrics hook streaming every
// finished run's snapshot into the campaign's obs.jsonl.
func (m *Manager) sessionFor(c *Campaign) *exp.Session {
	ob := exp.Observer{Live: c.live, Deadline: m.cfg.JobTimeout}
	c.mu.Lock()
	sink := c.obsSink
	c.mu.Unlock()
	if sink != nil {
		ob.Metrics = func(run string, snap obs.Snapshot) {
			line, err := json.Marshal(struct {
				Run     string       `json:"run"`
				Metrics obs.Snapshot `json:"metrics"`
			}{run, snap})
			if err != nil {
				return
			}
			if sink.WriteLine(string(line)) == nil {
				sink.Flush()
			}
		}
	}
	_, sessW := c.spec.jobParallel(m.cfg.Parallel)
	return exp.NewSession(ob, sessW, m.cfg.Shards)
}

// execJob runs one job to a terminal record: success, quarantined stuck
// failure (no retry), or a typed error failure after JobRetries re-runs.
func (m *Manager) execJob(c *Campaign, sess *exp.Session, job int) {
	label := c.spec.JobLabel(job)
	var rec record
	for attempt := 1; ; attempt++ {
		if m.cfg.JobRan != nil {
			m.cfg.JobRan(c.ID, job)
		}
		out, err := c.spec.RunJob(job, sess, m.cfg.JobTimeout)
		if err == nil {
			rec = record{Job: job, Attempts: attempt, Out: out}
			break
		}
		var se *machine.StuckError
		if errors.As(err, &se) {
			// A wedged or timed-out simulation is deterministic enough to
			// wedge again: quarantine it instead of burning retries.
			rec = record{Job: job, Attempts: attempt, Fail: &Failure{
				Job: job, Label: label, Kind: "stuck", Msg: err.Error(), Attempts: attempt,
			}}
			break
		}
		if attempt > m.cfg.JobRetries {
			rec = record{Job: job, Attempts: attempt, Fail: &Failure{
				Job: job, Label: label, Kind: "error", Msg: err.Error(), Attempts: attempt,
			}}
			break
		}
	}
	m.commit(c, rec)
}

// commit records one finished job: journal append (fsynced unless
// NoSync), periodic checkpoint compaction, and event publication.
func (m *Manager) commit(c *Campaign, rec record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.outcomes[rec.Job] = rec
	if c.jr != nil {
		if err := c.jr.append(rec); err != nil {
			fmt.Fprintf(os.Stderr, "campaign %s: journal: %v\n", c.ID, err)
		}
		c.appends++
		if m.cfg.CheckpointEvery > 0 && c.appends >= m.cfg.CheckpointEvery {
			if err := writeCheckpoint(c.dir, c.jr, c.outcomes); err != nil {
				fmt.Fprintf(os.Stderr, "campaign %s: checkpoint: %v\n", c.ID, err)
			}
			c.appends = 0
		}
	}
	c.publishLocked(c.eventLine(rec))
}

// eventLine renders one job completion as a JSONL stream event.
func (c *Campaign) eventLine(rec record) string {
	ev := struct {
		Job      int    `json:"job"`
		Label    string `json:"label"`
		OK       bool   `json:"ok"`
		Attempts int    `json:"attempts"`
		Fail     string `json:"fail,omitempty"`
	}{rec.Job, c.spec.JobLabel(rec.Job), rec.Fail == nil, rec.Attempts, ""}
	if rec.Fail != nil {
		ev.Fail = rec.Fail.Kind + ": " + rec.Fail.Msg
	}
	line, _ := json.Marshal(ev)
	return string(line)
}

// finalEventLine renders the terminal stream event.
func (c *Campaign) finalEventLine() string {
	line, _ := json.Marshal(struct {
		Done  bool   `json:"done"`
		State string `json:"state"`
	}{true, c.state})
	return string(line)
}

// publishLocked appends one event line and fans it out. Subscriber
// channels are sized for the campaign's full event budget at subscribe
// time, so sends never block. Caller holds c.mu.
func (c *Campaign) publishLocked(line string) {
	c.events = append(c.events, line)
	for _, ch := range c.subs {
		ch <- line
	}
}

// finalize assembles the terminal state once no pending jobs remain, or
// checkpoints and parks the campaign when the run was cancelled
// mid-flight.
func (m *Manager) finalize(c *Campaign) {
	c.mu.Lock()
	defer c.mu.Unlock()
	complete := len(c.outcomes) == c.spec.Jobs()
	if !complete {
		// Drained mid-campaign: compact what we have and park. The next
		// schedule (or the next process) resumes from here.
		if c.jr != nil {
			if err := writeCheckpoint(c.dir, c.jr, c.outcomes); err != nil {
				fmt.Fprintf(os.Stderr, "campaign %s: checkpoint: %v\n", c.ID, err)
			}
			c.appends = 0
		}
		c.state = StatePaused
		c.closeFilesLocked()
		return
	}
	c.failures = collectFailures(c.outcomes)
	if len(c.failures) > 0 {
		c.state = StateFailed
		if c.dir != "" {
			data, err := json.MarshalIndent(c.failures, "", " ")
			if err == nil {
				err = atomicWrite(filepath.Join(c.dir, failedFile), data)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "campaign %s: %v\n", c.ID, err)
			}
		}
	} else {
		outs := make([]string, c.spec.Jobs())
		for i := range outs {
			outs[i] = c.outcomes[i].Out
		}
		res, err := c.spec.Assemble(outs)
		if err != nil {
			c.state = StateFailed
			c.failures = append(c.failures, Failure{Kind: "error", Msg: err.Error()})
		} else {
			c.result = res
			c.state = StateDone
			if c.dir != "" {
				if err := atomicWrite(filepath.Join(c.dir, resultFile), []byte(res)); err != nil {
					fmt.Fprintf(os.Stderr, "campaign %s: %v\n", c.ID, err)
				}
			}
		}
	}
	c.publishLocked(c.finalEventLine())
	for _, ch := range c.subs {
		close(ch)
	}
	c.subs = nil
	c.closeFilesLocked()
}

// closeFilesLocked closes the journal and obs sink. Caller holds c.mu.
func (c *Campaign) closeFilesLocked() {
	if c.jr != nil {
		c.jr.close()
		c.jr = nil
	}
	if c.obsSink != nil {
		c.obsSink.Close()
		c.obsSink = nil
	}
}

// collectFailures gathers failure records in job order.
func collectFailures(outcomes map[int]record) []Failure {
	var fails []Failure
	for _, rec := range sortedRecords(outcomes) {
		if rec.Fail != nil {
			fails = append(fails, *rec.Fail)
		}
	}
	return fails
}

// Get returns one campaign's status.
func (m *Manager) Get(id string) (Status, bool) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	return c.status(), true
}

// List returns every campaign's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		m.mu.Lock()
		c := m.campaigns[id]
		m.mu.Unlock()
		out = append(out, c.status())
	}
	return out
}

func (c *Campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		ID: c.ID, Name: c.spec.Name, Kind: c.spec.Kind, Tenant: c.Tenant,
		State: c.state, Jobs: c.spec.Jobs(), Done: len(c.outcomes),
		Failures: append([]Failure(nil), c.failures...),
	}
}

// Result returns a finished campaign's assembled output. It errors until
// the campaign reaches StateDone.
func (m *Manager) Result(id string) (string, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("campaign: no campaign %q", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case StateDone:
		return c.result, nil
	case StateFailed:
		return "", fmt.Errorf("campaign: %s failed with %d failure(s)", id, len(c.failures))
	default:
		return "", fmt.Errorf("campaign: %s is %s", id, c.state)
	}
}

// Subscribe returns the campaign's event history so far plus, for a
// still-active campaign, a channel of future event lines (closed at the
// terminal event). The channel is buffered for the campaign's whole
// remaining event budget, so a slow reader never blocks job execution.
func (m *Manager) Subscribe(id string) ([]string, <-chan string, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("campaign: no campaign %q", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	history := append([]string(nil), c.events...)
	if c.state == StateDone || c.state == StateFailed {
		return history, nil, nil
	}
	ch := make(chan string, c.spec.Jobs()-len(c.outcomes)+2)
	c.subs = append(c.subs, ch)
	return history, ch, nil
}

// Lives returns the live-run registry of every non-terminal campaign,
// keyed by campaign ID — the /progress and /metrics aggregation source.
func (m *Manager) Lives() map[string]*obs.Live {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*obs.Live)
	for id, c := range m.campaigns {
		c.mu.Lock()
		terminal := c.state == StateDone || c.state == StateFailed
		c.mu.Unlock()
		if !terminal {
			out[id] = c.live
		}
	}
	return out
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops claiming new jobs, lets in-flight jobs finish and be
// journaled, checkpoints interrupted campaigns, and returns. Submissions
// fail with ErrDraining from the first call. The ctx bounds the wait.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with a generous deadline; for tests and defer.
func (m *Manager) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return m.Drain(ctx)
}
