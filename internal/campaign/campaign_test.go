package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dircoh/internal/config"
	"dircoh/internal/exp"
)

// waitState polls until the campaign reaches want (or any terminal
// state), failing the test on timeout.
func waitState(t *testing.T, m *Manager, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("campaign %s disappeared", id)
		}
		if st.State == want {
			return st
		}
		if st.State == StateDone || st.State == StateFailed {
			t.Fatalf("campaign %s reached %s (failures: %+v), want %s", id, st.State, st.Failures, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return Status{}
}

func stressSpec(trials int) Spec {
	return Spec{Kind: "stress", Name: "st", Stress: &StressSpec{
		Trials: trials, Seed: 21, Procs: []int{4}, Refs: 100, Blocks: 8,
	}}
}

func TestSpecValidate(t *testing.T) {
	s := stressSpec(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Stress.Refs != 100 || s.Stress.Blocks != 8 {
		t.Fatalf("validate clobbered explicit fields: %+v", s.Stress)
	}
	d := Spec{Kind: "stress", Stress: &StressSpec{}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Stress.Trials != 16 || d.Stress.Refs != 300 || d.Name != "stress" {
		t.Fatalf("defaults not applied: %+v name=%q", d.Stress, d.Name)
	}
	for _, bad := range []Spec{
		{Kind: "sweep"},
		{Kind: "nope", Sweep: &SweepSpec{}},
		{Kind: "sweep", Sweep: &SweepSpec{}, Stress: &StressSpec{}},
		{Kind: "sweep", Sweep: &SweepSpec{Only: "zzz"}},
		{Kind: "suite", Suite: &config.Suite{}},
		{Kind: "suite", Suite: &config.Suite{Runs: []config.RunSpec{{}}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	// Suite names default like config.Load.
	s2 := Spec{Kind: "suite", Suite: &config.Suite{Runs: []config.RunSpec{{App: "LU"}}}}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if s2.Suite.Runs[0].Name != "LU/full" {
		t.Fatalf("suite run name = %q", s2.Suite.Runs[0].Name)
	}
}

// TestStressCampaignDeterministic: a volatile stress campaign completes,
// and a second identical submission produces the byte-identical result.
func TestStressCampaignDeterministic(t *testing.T) {
	m, err := Open(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var results [2]string
	for i := range results {
		c, err := m.Submit("alice", stressSpec(4))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, m, c.ID, StateDone)
		results[i], err = m.Result(c.ID)
		if err != nil {
			t.Fatal(err)
		}
	}
	if results[0] != results[1] {
		t.Fatalf("identical submissions diverged:\n%q\nvs\n%q", results[0], results[1])
	}
	if !strings.Contains(results[0], "trial   0 seed=") {
		t.Fatalf("result lacks trial lines:\n%s", results[0])
	}
}

// TestSweepCampaignMatchesSweep: a sweep campaign's assembled result is
// byte-identical to exp.Session.Sweep over the same sections.
func TestSweepCampaignMatchesSweep(t *testing.T) {
	const only = "t1,scale"
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := m.Submit("", Spec{Kind: "sweep", Sweep: &SweepSpec{Only: only, Procs: 8, Trials: 50}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateDone)
	got, err := m.Result(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	exp.NewSession(exp.Observer{}, 0, 0).Sweep(&want, only, 8, 50)
	if got != want.String() {
		t.Fatalf("campaign sweep diverged from exp.Sweep:\n%q\nvs\n%q", got, want.String())
	}
}

// TestSuiteCampaign: a two-run suite campaign assembles the comparison
// table with both rows in suite order.
func TestSuiteCampaign(t *testing.T) {
	m, err := Open(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	suite := &config.Suite{Runs: []config.RunSpec{
		{App: "LU", Machine: config.MachineSpec{Procs: 4}},
		{App: "LU", Machine: config.MachineSpec{Procs: 4, Scheme: config.SchemeSpec{Kind: "b"}}},
	}}
	c, err := m.Submit("", Spec{Kind: "suite", Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateDone)
	res, err := m.Result(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(res, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want header + rule + 2 rows:\n%s", len(lines), res)
	}
	if !strings.Contains(lines[0], "inval+ack") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "LU/full") || !strings.Contains(lines[3], "LU/b") {
		t.Fatalf("rows out of order:\n%s", res)
	}
}

// TestQuarantineStuck: jobs aborted by the wall-clock watchdog are
// quarantined as "stuck" on the first attempt, never retried.
func TestQuarantineStuck(t *testing.T) {
	m, err := Open(Config{JobTimeout: time.Nanosecond, JobRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Big enough that the engine reaches its periodic deadline sample
	// (every 16k events) before finishing.
	spec := Spec{Kind: "stress", Stress: &StressSpec{
		Trials: 2, Seed: 21, Procs: []int{6}, Refs: 5000, Blocks: 8,
	}}
	c, err := m.Submit("", spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateFailed)
	st, _ := m.Get(c.ID)
	if len(st.Failures) != 2 {
		t.Fatalf("failures = %+v, want 2", st.Failures)
	}
	for _, f := range st.Failures {
		if f.Kind != "stuck" || f.Attempts != 1 {
			t.Fatalf("stuck job not quarantined on first attempt: %+v", f)
		}
	}
	if _, err := m.Result(c.ID); err == nil {
		t.Fatal("Result succeeded for a failed campaign")
	}
}

// TestRetryThenFail: ordinary job errors are retried JobRetries times
// before the typed failure record is written.
func TestRetryThenFail(t *testing.T) {
	var calls atomic.Int32
	m, err := Open(Config{JobRetries: 2, JobRan: func(string, int) { calls.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	suite := &config.Suite{Runs: []config.RunSpec{{Name: "bad", App: "NoSuchApp"}}}
	c, err := m.Submit("", Spec{Kind: "suite", Suite: suite})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateFailed)
	st, _ := m.Get(c.ID)
	if len(st.Failures) != 1 || st.Failures[0].Kind != "error" || st.Failures[0].Attempts != 3 {
		t.Fatalf("failures = %+v, want one error after 3 attempts", st.Failures)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("job executed %d times, want 3", got)
	}
}

// TestBackpressure: tenant quotas and queue depth reject with typed
// *BusyError carrying a retry hint; a drained manager rejects with
// ErrDraining.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	m, err := Open(Config{
		MaxActive: 1, QueueDepth: 1, MaxTenants: 2, TenantJobs: 8,
		JobRan: func(string, int) { started <- struct{}{}; <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); m.Close() }()

	// Tenant job quota.
	if _, err := m.Submit("alice", stressSpec(9)); err == nil {
		t.Fatal("submission over TenantJobs accepted")
	} else {
		var be *BusyError
		if !errors.As(err, &be) || be.RetryAfter <= 0 {
			t.Fatalf("want *BusyError with retry hint, got %v", err)
		}
	}

	// Hold one campaign active, one queued.
	if _, err := m.Submit("alice", stressSpec(2)); err != nil {
		t.Fatal(err)
	}
	<-started // first job claimed: campaign is active
	if _, err := m.Submit("bob", stressSpec(2)); err != nil {
		t.Fatal(err)
	}
	// Queue is now full.
	var be *BusyError
	if _, err := m.Submit("carol", stressSpec(2)); !errors.As(err, &be) {
		t.Fatalf("submission over QueueDepth = %v, want *BusyError", err)
	}

	go m.Drain(testContext(t))
	for !m.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit("alice", stressSpec(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission while draining = %v, want ErrDraining", err)
	}
}

// TestMaxTenants: a new tenant beyond the bound is rejected while known
// tenants keep submitting.
func TestMaxTenants(t *testing.T) {
	release := make(chan struct{})
	m, err := Open(Config{
		MaxActive: 1, QueueDepth: 8, MaxTenants: 2, TenantJobs: 100,
		JobRan: func(string, int) { <-release },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); m.Close() }()
	if _, err := m.Submit("alice", stressSpec(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("bob", stressSpec(2)); err != nil {
		t.Fatal(err)
	}
	var be *BusyError
	if _, err := m.Submit("carol", stressSpec(2)); !errors.As(err, &be) {
		t.Fatalf("third tenant = %v, want *BusyError", err)
	}
	if _, err := m.Submit("alice", stressSpec(2)); err != nil {
		t.Fatalf("known tenant rejected: %v", err)
	}
}

// testContext returns a context bounded well under the test deadline.
func testContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestJournalTornTail: a SIGKILL can cut the journal mid-line; the torn
// tail is dropped and every whole record survives.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	jr, err := openJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := jr.append(record{Job: i, Attempts: 1, Out: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	jr.close()
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"job":3,"attempts":1,"out":"trunca`)
	f.Close()

	outcomes, err := loadOutcomes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("recovered %d records, want 3 (torn tail dropped)", len(outcomes))
	}
	for i := 0; i < 3; i++ {
		if outcomes[i].Out != "ok" {
			t.Fatalf("record %d = %+v", i, outcomes[i])
		}
	}
}

// TestJournalCorruptTail: replay stops at the first undecodable record;
// records before it are kept, records after it are discarded (they will
// simply re-run).
func TestJournalCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	lines := `{"job":0,"attempts":1,"out":"a"}
{"job":1,"attempts":1,"out":"b"}
garbage not json
{"job":2,"attempts":1,"out":"c"}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	outcomes, err := loadOutcomes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 || outcomes[0].Out != "a" || outcomes[1].Out != "b" {
		t.Fatalf("recovered %+v, want jobs 0 and 1 only", outcomes)
	}
}

// TestCheckpointCompaction: after CheckpointEvery appends the journal is
// folded into checkpoint.json and truncated; recovery sees every record.
func TestCheckpointCompaction(t *testing.T) {
	root := t.TempDir()
	m, err := Open(Config{Root: root, CheckpointEvery: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := m.Submit("", stressSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateDone)
	dir := filepath.Join(root, c.ID)
	var cp checkpoint
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	if len(cp.Records) < 2 {
		t.Fatalf("checkpoint has %d records", len(cp.Records))
	}
	outcomes, err := loadOutcomes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 {
		t.Fatalf("checkpoint+journal recover %d records, want 5", len(outcomes))
	}
}

// TestCrashResume reconstructs the on-disk state a SIGKILL leaves — spec,
// a journal prefix, a torn tail, no terminal file — and verifies a fresh
// manager re-executes only the missing jobs yet assembles the
// byte-identical result.
func TestCrashResume(t *testing.T) {
	// Reference: the full campaign, run clean.
	rootA := t.TempDir()
	mA, err := Open(Config{Root: rootA, NoSync: true, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	cA := submitOK(t, mA, "alice", stressSpec(6))
	waitState(t, mA, cA, StateDone)
	want, err := mA.Result(cA)
	if err != nil {
		t.Fatal(err)
	}
	mA.Close()

	// Crashed state: copy spec + first 3 journal records + torn tail.
	rootB := t.TempDir()
	dirB := filepath.Join(rootB, cA)
	if err := os.MkdirAll(dirB, 0o755); err != nil {
		t.Fatal(err)
	}
	specData, err := os.ReadFile(filepath.Join(rootA, cA, specFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, specFile), specData, 0o644); err != nil {
		t.Fatal(err)
	}
	jdata, err := os.ReadFile(filepath.Join(rootA, cA, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(strings.TrimRight(string(jdata), "\n"), "\n")
	if len(jlines) < 6 {
		t.Fatalf("reference journal has %d lines, want 6", len(jlines))
	}
	prefix := strings.Join(jlines[:3], "") + `{"job":99,"attempts":1,"out":"torn`
	if err := os.WriteFile(filepath.Join(dirB, journalFile), []byte(prefix), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: only the 3 missing jobs run.
	var reran atomic.Int32
	mB, err := Open(Config{Root: rootB, NoSync: true, Parallel: 2,
		JobRan: func(string, int) { reran.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	waitState(t, mB, cA, StateDone)
	got, err := mB.Result(cA)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed result diverged:\n%q\nvs\n%q", got, want)
	}
	if n := reran.Load(); n != 3 {
		t.Fatalf("resume executed %d jobs, want exactly the 3 missing", n)
	}
	// And the result file is on disk, atomic-written.
	onDisk, err := os.ReadFile(filepath.Join(dirB, resultFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != want {
		t.Fatal("result.txt diverges from Result()")
	}
}

// TestDrainResume: Drain finishes in-flight jobs, checkpoints, parks the
// campaign paused; a fresh manager over the same root completes exactly
// the remaining jobs and the result matches a never-interrupted run.
func TestDrainResume(t *testing.T) {
	root := t.TempDir()
	started := make(chan int, 64)
	release := make(chan struct{})
	m1, err := Open(Config{Root: root, NoSync: true, Parallel: 2,
		JobRan: func(_ string, job int) { started <- job; <-release }})
	if err != nil {
		t.Fatal(err)
	}
	c, err := m1.Submit("alice", stressSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	<-started
	drained := make(chan error, 1)
	go func() { drained <- m1.Drain(testContext(t)) }()
	for !m1.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, _ := m1.Get(c.ID)
	if st.State != StatePaused {
		t.Fatalf("after drain state = %s, want paused", st.State)
	}
	if st.Done == 0 || st.Done >= st.Jobs {
		t.Fatalf("after drain done = %d of %d, want partial", st.Done, st.Jobs)
	}
	doneBeforeResume := st.Done

	var reran atomic.Int32
	m2, err := Open(Config{Root: root, NoSync: true, Parallel: 2,
		JobRan: func(string, int) { reran.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	waitState(t, m2, c.ID, StateDone)
	got, err := m2.Result(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if int(reran.Load()) != 6-doneBeforeResume {
		t.Fatalf("resume executed %d jobs, want %d", reran.Load(), 6-doneBeforeResume)
	}

	// Reference result from an uninterrupted volatile run.
	mR, err := Open(Config{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mR.Close()
	cR := submitOK(t, mR, "alice", stressSpec(6))
	waitState(t, mR, cR, StateDone)
	want, err := mR.Result(cR)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("drained+resumed result diverged from clean run:\n%q\nvs\n%q", got, want)
	}
}

// TestSubscribe: history replays every job event plus the terminal
// record; a finished campaign returns no live channel.
func TestSubscribe(t *testing.T) {
	m, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c, err := m.Submit("", stressSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, c.ID, StateDone)
	history, ch, err := m.Subscribe(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ch != nil {
		t.Fatal("finished campaign returned a live channel")
	}
	if len(history) != 4 {
		t.Fatalf("history has %d events, want 3 jobs + done:\n%s", len(history), strings.Join(history, "\n"))
	}
	var last struct {
		Done  bool   `json:"done"`
		State string `json:"state"`
	}
	if err := json.Unmarshal([]byte(history[3]), &last); err != nil {
		t.Fatal(err)
	}
	if !last.Done || last.State != StateDone {
		t.Fatalf("terminal event = %+v", last)
	}
	if _, _, err := m.Subscribe("nope"); err == nil {
		t.Fatal("unknown campaign subscribed")
	}
}

func submitOK(t *testing.T, m *Manager, tenant string, spec Spec) string {
	t.Helper()
	c, err := m.Submit(tenant, spec)
	if err != nil {
		t.Fatal(err)
	}
	return c.ID
}
