package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Campaign directory layout, under <root>/<id>/:
//
//	spec.json       what was submitted (atomic write, before anything runs)
//	journal.jsonl   one record per job completed since the last checkpoint,
//	                appended (and by default fsynced) as each job finishes
//	checkpoint.json every known outcome, rewritten atomically every
//	                CheckpointEvery journal appends; the journal restarts
//	result.txt      assembled output (atomic write; marks success)
//	failed.json     typed failure records (atomic write; marks failure)
//	obs.jsonl       live metrics stream, one line per finished run
//
// Recovery after any crash = checkpoint + journal replay. A torn journal
// tail — the partial line a SIGKILL can leave — is dropped, costing at
// most a re-run of the jobs whose records were cut, never correctness.
const (
	specFile       = "spec.json"
	journalFile    = "journal.jsonl"
	checkpointFile = "checkpoint.json"
	resultFile     = "result.txt"
	failedFile     = "failed.json"
	obsFile        = "obs.jsonl"
)

// Failure is the typed record of a job the campaign gave up on.
type Failure struct {
	Job      int    `json:"job"`
	Label    string `json:"label"`
	Kind     string `json:"kind"` // "stuck" (quarantined, not retried) or "error"
	Msg      string `json:"msg"`
	Attempts int    `json:"attempts"`
}

// record is one journal entry: job i finished, successfully (Out) or
// terminally not (Fail).
type record struct {
	Job      int      `json:"job"`
	Attempts int      `json:"attempts"`
	Out      string   `json:"out,omitempty"`
	Fail     *Failure `json:"fail,omitempty"`
}

// specEnvelope is what spec.json holds: the spec plus the submission
// identity a restarted server needs to rebuild its tenant accounting.
type specEnvelope struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	Spec   Spec   `json:"spec"`
}

// checkpoint is the compacted journal: every outcome known at write time.
type checkpoint struct {
	Records []record `json:"records"`
}

// atomicWrite writes data to path via a temp file in the same directory,
// fsync, and rename, so the file is either absent or complete — never
// torn — whatever kills the process.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// journal appends completed-job records to one campaign's journal file.
type journal struct {
	f    *os.File
	sync bool // fsync after every append
}

// openJournal opens (creating if needed) the campaign's journal for
// appending.
func openJournal(dir string, sync bool) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, sync: sync}, nil
}

// append writes one record as a single line. The line is written with one
// Write call, so concurrent appenders (jobs finishing on different
// workers serialize on the caller's lock, but the kernel still sees whole
// lines) and crashes can tear at most the final line.
func (j *journal) append(rec record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if j.sync {
		return j.f.Sync()
	}
	return nil
}

// reset truncates the journal after its contents were folded into a
// checkpoint.
func (j *journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	_, err := j.f.Seek(0, 0)
	return err
}

func (j *journal) close() error { return j.f.Close() }

// loadOutcomes reconstructs a campaign's known job outcomes from its
// checkpoint plus journal replay. Journal decode errors stop the replay
// at the last good record rather than failing the load: a torn tail is
// the expected SIGKILL artifact, and the cut jobs simply re-run.
func loadOutcomes(dir string) (map[int]record, error) {
	outcomes := make(map[int]record)
	if data, err := os.ReadFile(filepath.Join(dir, checkpointFile)); err == nil {
		var cp checkpoint
		if err := json.Unmarshal(data, &cp); err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", checkpointFile, err)
		}
		for _, rec := range cp.Records {
			outcomes[rec.Job] = rec
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	jf, err := os.Open(filepath.Join(dir, journalFile))
	if err != nil {
		if os.IsNotExist(err) {
			return outcomes, nil
		}
		return nil, err
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn or corrupt tail: keep everything before it
		}
		outcomes[rec.Job] = rec
	}
	return outcomes, nil
}

// writeCheckpoint compacts the outcome set into checkpoint.json
// (atomically) and truncates the journal. Records are written in job
// order so the file is diffable.
func writeCheckpoint(dir string, j *journal, outcomes map[int]record) error {
	cp := checkpoint{Records: sortedRecords(outcomes)}
	data, err := json.MarshalIndent(&cp, "", " ")
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(dir, checkpointFile), data); err != nil {
		return err
	}
	return j.reset()
}

// sortedRecords flattens the outcome map in job order.
func sortedRecords(outcomes map[int]record) []record {
	recs := make([]record, 0, len(outcomes))
	for _, rec := range outcomes {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Job < recs[b].Job })
	return recs
}
