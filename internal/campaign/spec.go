// Package campaign makes experiment campaigns durable and resumable: a
// submitted spec (a paper sweep, a declarative suite, or a protocol
// stress campaign) is decomposed into indexed deterministic jobs whose
// outputs are journaled as they complete and periodically compacted into
// atomic checkpoints, so a campaign killed mid-flight — SIGKILL included
// — resumes by re-executing only the unfinished jobs and still assembles
// the byte-identical final result. cmd/simd serves this package over
// HTTP.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"dircoh/internal/config"
	"dircoh/internal/exp"
	"dircoh/internal/stats"
	"dircoh/internal/stress"
)

// SweepSpec selects sections of the paper sweep (cmd/sweep).
type SweepSpec struct {
	Only   string `json:"only,omitempty"`   // comma list of section keys ("" / "all" = everything)
	Procs  int    `json:"procs,omitempty"`  // default exp.Procs
	Trials int    `json:"trials,omitempty"` // Figure 2 Monte-Carlo trials (default 2000)
}

// StressSpec parameterizes a protocol stress campaign (cmd/protostress
// with the checker on).
type StressSpec struct {
	Trials int    `json:"trials,omitempty"` // default 16
	Seed   int64  `json:"seed,omitempty"`   // default 1
	Procs  []int  `json:"procs,omitempty"`  // default 4,6,8
	Refs   int    `json:"refs,omitempty"`   // default 300
	Blocks int    `json:"blocks,omitempty"` // default 24
	Faults string `json:"faults,omitempty"` // mesh.ParseFaults spec or "campaign"
}

// Spec is one submitted campaign. Exactly the field matching Kind must be
// set.
type Spec struct {
	Kind   string        `json:"kind"` // sweep | suite | stress
	Name   string        `json:"name,omitempty"`
	Sweep  *SweepSpec    `json:"sweep,omitempty"`
	Suite  *config.Suite `json:"suite,omitempty"`
	Stress *StressSpec   `json:"stress,omitempty"`
}

// Validate checks the spec's shape and fills defaults in place. The
// returned spec is what gets persisted, so a resumed campaign re-derives
// the identical job list.
func (s *Spec) Validate() error {
	set := 0
	for _, on := range []bool{s.Sweep != nil, s.Suite != nil, s.Stress != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("campaign: spec must set exactly one of sweep, suite, stress")
	}
	switch s.Kind {
	case "sweep":
		if s.Sweep == nil {
			return fmt.Errorf("campaign: kind %q without a sweep spec", s.Kind)
		}
		if s.Sweep.Procs == 0 {
			s.Sweep.Procs = exp.Procs
		}
		if s.Sweep.Trials == 0 {
			s.Sweep.Trials = 2000
		}
		if s.Sweep.Procs < 0 || s.Sweep.Trials < 0 {
			return fmt.Errorf("campaign: sweep procs and trials must be positive")
		}
		if len(exp.SelectSections(s.Sweep.Only)) == 0 {
			return fmt.Errorf("campaign: sweep -only %q selects no sections", s.Sweep.Only)
		}
	case "suite":
		if s.Suite == nil {
			return fmt.Errorf("campaign: kind %q without a suite spec", s.Kind)
		}
		if len(s.Suite.Runs) == 0 {
			return fmt.Errorf("campaign: suite has no runs")
		}
		for i := range s.Suite.Runs {
			r := &s.Suite.Runs[i]
			if r.App == "" {
				return fmt.Errorf("campaign: suite run %d has no app", i)
			}
			if r.Name == "" {
				kind := r.Machine.Scheme.Kind
				if kind == "" {
					kind = "full"
				}
				r.Name = r.App + "/" + kind
			}
		}
	case "stress":
		if s.Stress == nil {
			return fmt.Errorf("campaign: kind %q without a stress spec", s.Kind)
		}
		if s.Stress.Trials == 0 {
			s.Stress.Trials = 16
		}
		if s.Stress.Seed == 0 {
			s.Stress.Seed = 1
		}
		if len(s.Stress.Procs) == 0 {
			s.Stress.Procs = []int{4, 6, 8}
		}
		if s.Stress.Refs == 0 {
			s.Stress.Refs = 300
		}
		if s.Stress.Blocks == 0 {
			s.Stress.Blocks = 24
		}
		if s.Stress.Trials < 0 || s.Stress.Refs < 0 || s.Stress.Blocks < 0 {
			return fmt.Errorf("campaign: stress trials, refs and blocks must be positive")
		}
		for _, p := range s.Stress.Procs {
			if p <= 0 {
				return fmt.Errorf("campaign: stress procs must be positive")
			}
		}
	default:
		return fmt.Errorf("campaign: unknown kind %q (want sweep, suite or stress)", s.Kind)
	}
	if s.Name == "" {
		s.Name = s.Kind
	}
	return nil
}

// Jobs returns the campaign's deterministic job count: one per selected
// sweep section, suite run, or stress trial.
func (s *Spec) Jobs() int {
	switch s.Kind {
	case "sweep":
		return len(exp.SelectSections(s.Sweep.Only))
	case "suite":
		return len(s.Suite.Runs)
	case "stress":
		return s.Stress.Trials
	}
	return 0
}

// JobLabel names job i for failure records and event streams.
func (s *Spec) JobLabel(i int) string {
	switch s.Kind {
	case "sweep":
		return "section " + exp.SelectSections(s.Sweep.Only)[i]
	case "suite":
		return s.Suite.Runs[i].Name
	case "stress":
		return fmt.Sprintf("trial %d", i)
	}
	return fmt.Sprintf("job %d", i)
}

// jobParallel reports how campaign-level job concurrency and per-job
// session concurrency split the worker budget: sweep sections each fan
// out internally on the session pool, so jobs run one at a time; suite
// and stress jobs are single simulations, so the jobs themselves fan out.
func (s *Spec) jobParallel(workers int) (jobs, session int) {
	if s.Kind == "sweep" {
		return 1, workers
	}
	return workers, 1
}

// stressOptions is the fixed per-campaign execution policy a stress spec
// maps to: checker on, verbose (every trial renders its line), one
// in-process trial at a time (the campaign scheduler provides the
// fan-out).
func (s *StressSpec) options(timeout time.Duration) stress.Options {
	return stress.Options{
		Trials: s.Trials, Seed: s.Seed, Procs: s.Procs, Refs: s.Refs,
		Blocks: s.Blocks, Faults: s.Faults, Check: true, Parallel: 1,
		Verbose: true, Deadline: timeout,
	}
}

// RunJob executes job i under sess and returns its output string — a
// rendered sweep section, a JSON-encoded suite table row, or a rendered
// stress trial block. Outputs are deterministic for a fixed spec and job
// index, which crash/resume correctness rests on. Driver panics (the exp
// drivers raise *exp.RunError) are recovered into errors.
func (s *Spec) RunJob(i int, sess *exp.Session, timeout time.Duration) (out string, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("campaign: job %d panicked: %v", i, p)
		}
	}()
	switch s.Kind {
	case "sweep":
		var buf bytes.Buffer
		key := exp.SelectSections(s.Sweep.Only)[i]
		sess.RenderSweepSection(&buf, key, s.Sweep.Procs, s.Sweep.Trials)
		return buf.String(), nil
	case "suite":
		r, err := sess.ExecuteSpec(s.Suite.Runs[i])
		if err != nil {
			return "", err
		}
		cells, err := json.Marshal(exp.SuiteRowCells(s.Suite.Runs[i].Name, r))
		return string(cells), err
	case "stress":
		o := s.Stress.options(timeout)
		tr := stress.RunTrial(i, stress.SeedFor(o.Seed, i, o.Trials), o)
		if tr.Err != nil {
			return "", tr.Err
		}
		var buf bytes.Buffer
		tr.Render(&buf, o)
		return buf.String(), nil
	}
	return "", fmt.Errorf("campaign: unknown kind %q", s.Kind)
}

// Assemble renders the campaign's final result from the per-job outputs
// in index order: sweep sections concatenate, suite rows rebuild the
// comparison table, stress trial blocks concatenate. Byte-identical for
// a fixed spec however (and however often) the jobs were executed.
func (s *Spec) Assemble(outs []string) (string, error) {
	switch s.Kind {
	case "suite":
		tb := stats.NewTable(exp.SuiteTableHeader...)
		for i, out := range outs {
			var cells []string
			if err := json.Unmarshal([]byte(out), &cells); err != nil {
				return "", fmt.Errorf("campaign: job %d row: %w", i, err)
			}
			tb.AddRow(cells...)
		}
		return tb.String() + "\n", nil
	default:
		var buf bytes.Buffer
		for _, out := range outs {
			buf.WriteString(out)
		}
		return buf.String(), nil
	}
}
