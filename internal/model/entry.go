// Package model is an exhaustive, guarded-action model checker for the
// directory protocol implemented by internal/machine. States are small
// comparable values — per-cluster cache state and operation slots, home
// directory entries, gate/RAC bookkeeping and the in-flight message
// multiset — and transitions are guarded rules transliterated from
// internal/machine's memory path, including the stale-message recovery
// guards. A breadth-first explorer enumerates every interleaving on tiny
// configurations (2–4 clusters, 1–4 blocks, full-map or tiny sparse
// directories), checks the same invariant predicates as the runtime
// checker (internal/check) plus deadlock-freedom in every reachable
// state, and reports a minimal counterexample trace on violation.
//
// The model is deliberately coarser than the machine in ways that do not
// affect protocol correctness: one virtual processor per cluster (the
// intra-cluster bus is atomic in the machine), no timing, locks and
// barriers elided (their tables are independent of the memory protocol),
// and Dir_iNB pointer eviction fixed to the deterministic FIFO policy.
// Fidelity of everything else is pinned by differential tests: the entry
// mirror against internal/core, and whole sequential runs against the
// real machine (internal/machine's conformance tests).
package model

import (
	"fmt"
	"strconv"
	"strings"

	"dircoh/internal/core"
)

// maxClusters bounds the cluster count so directory entries pack into
// fixed-size comparable values.
const maxClusters = 4

// maxBlocks bounds the block count; exhaustive exploration is only
// tractable on tiny geometries anyway.
const maxBlocks = 4

// schemeKind enumerates the directory-entry families of internal/core.
type schemeKind uint8

const (
	kindFull schemeKind = iota
	kindBroadcast
	kindNoBroadcast
	kindCoarse
	kindSuperset
	kindTwoLevel
)

// entryScheme describes a directory scheme's entry semantics, recovered
// from the core scheme's paper notation (Name()), so the model mirrors
// exactly the scheme a machine built from the same factory would use.
type entryScheme struct {
	kind   schemeKind
	nodes  int
	ptrs   int // pointer capacity (== nodes for kindFull; region slots for kindTwoLevel)
	region int // kindCoarse / kindTwoLevel region size r
	name   string
}

// parseScheme recovers entry semantics from a core scheme. The notation
// grammar is core.Parse's: Dir<P>, Dir<i>B, Dir<i>NB, Dir<i>X,
// Dir<i>CV<r>, Dir<i>R<r>.
func parseScheme(s core.Scheme) (*entryScheme, error) {
	name, nodes := s.Name(), s.Nodes()
	if nodes < 2 || nodes > maxClusters {
		return nil, fmt.Errorf("model: scheme %s tracks %d nodes, want 2..%d", name, nodes, maxClusters)
	}
	rest, ok := strings.CutPrefix(name, "Dir")
	if !ok {
		return nil, fmt.Errorf("model: scheme name %q is not paper notation", name)
	}
	digits := rest
	suffix := ""
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			digits, suffix = rest[:i], rest[i:]
			break
		}
	}
	i, err := strconv.Atoi(digits)
	if err != nil || i < 1 {
		return nil, fmt.Errorf("model: scheme name %q has no pointer count", name)
	}
	es := &entryScheme{nodes: nodes, ptrs: i, name: name}
	switch {
	case suffix == "":
		es.kind, es.ptrs = kindFull, nodes
	case suffix == "B":
		es.kind = kindBroadcast
	case suffix == "NB":
		es.kind = kindNoBroadcast
	case suffix == "X":
		es.kind = kindSuperset
	case strings.HasPrefix(suffix, "CV"):
		r, err := strconv.Atoi(suffix[2:])
		if err != nil || r < 1 {
			return nil, fmt.Errorf("model: scheme name %q has a bad region size", name)
		}
		es.kind, es.region = kindCoarse, r
	case strings.HasPrefix(suffix, "R"):
		r, err := strconv.Atoi(suffix[1:])
		if err != nil || r < 1 {
			return nil, fmt.Errorf("model: scheme name %q has a bad region size", name)
		}
		es.kind, es.region = kindTwoLevel, r
	default:
		return nil, fmt.Errorf("model: scheme name %q has unknown suffix %q", name, suffix)
	}
	if es.ptrs > maxClusters && es.kind != kindFull {
		es.ptrs = maxClusters // capacity beyond the cluster count never overflows
	}
	return es, nil
}

// symOK reports whether entries of this scheme are equivariant under
// cluster relabeling, so cluster-symmetry reduction is sound. Pointer
// lists and broadcast bits always are; a coarse vector only when regions
// coincide with clusters (r = 1) or collapse to one region (r >= nodes);
// a composite pointer's value/X-mask bits are not permutation-equivariant
// at all, so Dir_iX qualifies only when it can never go composite.
func (s *entryScheme) symOK() bool {
	switch s.kind {
	case kindCoarse:
		return s.region == 1 || s.region >= s.nodes
	case kindSuperset:
		return s.ptrs >= s.nodes
	case kindTwoLevel:
		// With r = 1 a slot is just a pointer (its 1-bit vector is always
		// set), so relabeling the slot ids is the whole story. Larger
		// regions tie slot vectors to node numbering and are not
		// permutation-equivariant.
		return s.region == 1
	default:
		return true
	}
}

// Entry representation modes.
const (
	emPtr       uint8 = iota // exact pointer list (all schemes start here)
	emBcast                  // Dir_iB after overflow
	emCoarse                 // Dir_iCV_r after overflow
	emComposite              // Dir_iX after overflow
)

// dirEntry mirrors the observable state of one core.Entry as a fixed-size
// comparable value. Invariants keeping equal states byte-identical:
// unused ptrs slots are zero, nptr counts live slots, owner is -1 unless
// dirty, and order-free kinds keep the pointer list sorted (only Dir_iNB's
// FIFO eviction makes insertion order observable; kindTwoLevel keeps its
// slot list sorted by region id, carrying svec along).
//
// kindTwoLevel reuses ptrs as the slot region ids; svec[i] is slot i's
// exact in-region sharer vector.
type dirEntry struct {
	dirty bool
	owner int8
	mode  uint8
	nptr  uint8
	ptrs  [maxClusters]int8
	svec  [maxClusters]uint8 // kindTwoLevel: per-slot in-region vectors
	vec   uint8              // emCoarse: region bits
	val   uint8              // emComposite: pattern bits
	x     uint8              // emComposite: bits in the X ("both") state
}

// emptyEntry returns the canonical empty entry.
func emptyEntry() dirEntry { return dirEntry{owner: -1} }

func (e *dirEntry) hasPtr(n int) bool {
	for i := uint8(0); i < e.nptr; i++ {
		if int(e.ptrs[i]) == n {
			return true
		}
	}
	return false
}

// normalize sorts the pointer list for order-free kinds (everything but
// Dir_iNB, whose FIFO victim choice makes insertion order semantic). For
// kindTwoLevel the slot vectors travel with their region ids.
func (e *dirEntry) normalize(s *entryScheme) {
	if s.kind == kindNoBroadcast {
		return
	}
	for i := uint8(1); i < e.nptr; i++ {
		for j := i; j > 0 && e.ptrs[j] < e.ptrs[j-1]; j-- {
			e.ptrs[j], e.ptrs[j-1] = e.ptrs[j-1], e.ptrs[j]
			e.svec[j], e.svec[j-1] = e.svec[j-1], e.svec[j]
		}
	}
}

func (e *dirEntry) clearPtrs() {
	e.ptrs = [maxClusters]int8{}
	e.svec = [maxClusters]uint8{}
	e.nptr = 0
}

// addSharer mirrors core.Entry.AddSharer: records n as a sharer and
// returns the evicted node (Dir_iNB pointer overflow) or -1.
func (e *dirEntry) addSharer(s *entryScheme, n int) int {
	switch e.mode {
	case emBcast:
		return -1
	case emCoarse:
		e.vec |= 1 << uint(n/s.region)
		return -1
	case emComposite:
		e.x |= e.val ^ uint8(n)
		return -1
	}
	if s.kind == kindTwoLevel {
		ri := n / s.region
		for i := uint8(0); i < e.nptr; i++ {
			if int(e.ptrs[i]) == ri {
				e.svec[i] |= 1 << uint(n%s.region)
				return -1
			}
		}
		if int(e.nptr) < s.ptrs {
			e.ptrs[e.nptr] = int8(ri)
			e.svec[e.nptr] = 1 << uint(n%s.region)
			e.nptr++
			e.normalize(s)
			return -1
		}
		// Slot overflow: degrade to the coarse region bitmap, exactly as
		// twoLevelEntry does.
		var vec uint8 = 1 << uint(ri)
		for i := uint8(0); i < e.nptr; i++ {
			vec |= 1 << uint(e.ptrs[i])
		}
		e.mode, e.vec = emCoarse, vec
		e.clearPtrs()
		return -1
	}
	if e.hasPtr(n) {
		return -1
	}
	if int(e.nptr) < s.ptrs {
		e.ptrs[e.nptr] = int8(n)
		e.nptr++
		e.normalize(s)
		return -1
	}
	switch s.kind {
	case kindBroadcast:
		e.mode = emBcast
		e.clearPtrs()
		return -1
	case kindNoBroadcast:
		// FIFO (VictimOldest): drop the oldest pointer, shift, append.
		v := int(e.ptrs[0])
		copy(e.ptrs[:e.nptr-1], e.ptrs[1:e.nptr])
		e.ptrs[e.nptr-1] = int8(n)
		return v
	case kindCoarse:
		var vec uint8 = 1 << uint(n/s.region)
		for i := uint8(0); i < e.nptr; i++ {
			vec |= 1 << uint(int(e.ptrs[i])/s.region)
		}
		e.mode, e.vec = emCoarse, vec
		e.clearPtrs()
		return -1
	case kindSuperset:
		val, x := uint8(n), uint8(0)
		for i := uint8(0); i < e.nptr; i++ {
			x |= val ^ uint8(e.ptrs[i])
		}
		e.mode, e.val, e.x = emComposite, val, x
		e.clearPtrs()
		return -1
	}
	panic("model: full-vector entry overflowed")
}

// setDirty mirrors core.Entry.SetDirty: owner becomes the sole sharer.
func (e *dirEntry) setDirty(s *entryScheme, owner int) {
	*e = emptyEntry()
	e.dirty = true
	e.owner = int8(owner)
	if s.kind == kindTwoLevel {
		e.ptrs[0] = int8(owner / s.region)
		e.svec[0] = 1 << uint(owner%s.region)
	} else {
		e.ptrs[0] = int8(owner)
	}
	e.nptr = 1
}

// clearDirty mirrors core.Entry.ClearDirty: the former owner stays a
// sharer.
func (e *dirEntry) clearDirty() {
	e.dirty = false
	e.owner = -1
}

// reset mirrors core.Entry.Reset.
func (e *dirEntry) reset() { *e = emptyEntry() }

// empty mirrors core.Entry.Empty.
func (e *dirEntry) empty() bool { return !e.dirty && e.mode == emPtr && e.nptr == 0 }

// mask returns the candidate sharer set as a cluster bitmask, mirroring
// core.Entry.Sharers.
func (e *dirEntry) mask(s *entryScheme) uint8 {
	switch e.mode {
	case emBcast:
		return uint8(1)<<uint(s.nodes) - 1
	case emCoarse:
		var m uint8
		for n := 0; n < s.nodes; n++ {
			if e.vec&(1<<uint(n/s.region)) != 0 {
				m |= 1 << uint(n)
			}
		}
		return m
	case emComposite:
		var m uint8
		for n := 0; n < s.nodes; n++ {
			if (uint8(n)^e.val)&^e.x == 0 {
				m |= 1 << uint(n)
			}
		}
		return m
	}
	if s.kind == kindTwoLevel {
		var m uint8
		for i := uint8(0); i < e.nptr; i++ {
			base := int(e.ptrs[i]) * s.region
			for b := 0; b < s.region; b++ {
				if e.svec[i]&(1<<uint(b)) != 0 && base+b < s.nodes {
					m |= 1 << uint(base+b)
				}
			}
		}
		return m
	}
	var m uint8
	for i := uint8(0); i < e.nptr; i++ {
		m |= 1 << uint(e.ptrs[i])
	}
	return m
}

// relabel rewrites every cluster reference through perm. Callers gate on
// symOK, so the representation bits not rewritten here (broadcast flag,
// single-region coarse vector) are invariant by construction.
func (e *dirEntry) relabel(s *entryScheme, perm []int) {
	if e.owner >= 0 {
		e.owner = int8(perm[e.owner])
	}
	for i := uint8(0); i < e.nptr; i++ {
		e.ptrs[i] = int8(perm[e.ptrs[i]])
	}
	e.normalize(s)
	if e.mode == emCoarse && s.region == 1 {
		var v uint8
		for n := 0; n < s.nodes; n++ {
			if e.vec&(1<<uint(n)) != 0 {
				v |= 1 << uint(perm[n])
			}
		}
		e.vec = v
	}
}

// encode appends the entry's canonical bytes to buf.
func (e *dirEntry) encode(buf []byte) []byte {
	b := e.mode
	if e.dirty {
		b |= 1 << 6
	}
	buf = append(buf, b, byte(e.owner+1), e.nptr)
	for _, p := range e.ptrs {
		buf = append(buf, byte(p+1))
	}
	buf = append(buf, e.svec[:]...)
	return append(buf, e.vec, e.val, e.x)
}
