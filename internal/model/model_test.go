package model

import (
	"math/rand"
	"reflect"
	"testing"

	"dircoh/internal/check"
	"dircoh/internal/core"
)

// TestEntryMirrorsCore drives random operation sequences through each
// core entry implementation and the model's dirEntry mirror in lockstep,
// comparing every observable after every operation. This is the fidelity
// proof for the mirror: the model checker's directory semantics are
// exactly internal/core's.
func TestEntryMirrorsCore(t *testing.T) {
	var schemes []core.Scheme
	for n := 2; n <= 4; n++ {
		schemes = append(schemes, core.Must(core.NewFullVector(n)))
		for i := 1; i <= n; i++ {
			schemes = append(schemes,
				core.Must(core.NewLimitedBroadcast(i, n)),
				core.Must(core.NewLimitedNoBroadcast(i, n, core.VictimOldest, 0)),
				core.Must(core.NewSuperset(i, n)))
			for r := 1; r <= n; r++ {
				schemes = append(schemes, core.Must(core.NewCoarseVector(i, r, n)))
			}
		}
	}
	for _, sch := range schemes {
		es, err := parseScheme(sch)
		if err != nil {
			t.Fatalf("parseScheme(%s): %v", sch.Name(), err)
		}
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 50; trial++ {
			ce := sch.NewEntry()
			me := emptyEntry()
			for op := 0; op < 30; op++ {
				n := rng.Intn(es.nodes)
				var desc string
				switch k := rng.Intn(10); {
				case k < 5:
					desc = "AddSharer"
					evicted := ce.AddSharer(n)
					got := me.addSharer(es, n)
					want := -1
					if len(evicted) == 1 {
						want = evicted[0]
					} else if len(evicted) > 1 {
						t.Fatalf("%s: core evicted %v, model handles at most one", sch.Name(), evicted)
					}
					if got != want {
						t.Fatalf("%s trial %d op %d: AddSharer(%d) evicted %d, core evicted %d",
							sch.Name(), trial, op, n, got, want)
					}
				case k < 7:
					desc = "SetDirty"
					ce.SetDirty(n)
					me.setDirty(es, n)
				case k < 9:
					if !ce.Dirty() {
						continue
					}
					desc = "ClearDirty"
					ce.ClearDirty()
					me.clearDirty()
				default:
					desc = "Reset"
					ce.Reset()
					me.reset()
				}
				if ce.Dirty() != me.dirty || int(me.owner) != ce.Owner() || ce.Empty() != me.empty() {
					t.Fatalf("%s trial %d op %d (%s %d): dirty/owner/empty diverged: core (%v,%d,%v) model (%v,%d,%v)",
						sch.Name(), trial, op, desc, n,
						ce.Dirty(), ce.Owner(), ce.Empty(), me.dirty, me.owner, me.empty())
				}
				mask := me.mask(es)
				for node := 0; node < es.nodes; node++ {
					if ce.IsSharer(node) != (mask&(1<<uint(node)) != 0) {
						t.Fatalf("%s trial %d op %d (%s %d): IsSharer(%d) diverged: core %v, model mask %04b",
							sch.Name(), trial, op, desc, n, node, ce.IsSharer(node), mask)
					}
				}
			}
		}
	}
}

func TestParseScheme(t *testing.T) {
	for _, c := range []struct {
		scheme core.Scheme
		kind   schemeKind
		ptrs   int
		region int
	}{
		{core.Must(core.NewFullVector(3)), kindFull, 3, 0},
		{core.Must(core.NewLimitedBroadcast(2, 4)), kindBroadcast, 2, 0},
		{core.Must(core.NewLimitedNoBroadcast(1, 3, core.VictimOldest, 0)), kindNoBroadcast, 1, 0},
		{core.Must(core.NewSuperset(2, 4)), kindSuperset, 2, 0},
		{core.Must(core.NewCoarseVector(3, 2, 4)), kindCoarse, 3, 2},
	} {
		es, err := parseScheme(c.scheme)
		if err != nil {
			t.Fatalf("parseScheme(%s): %v", c.scheme.Name(), err)
		}
		if es.kind != c.kind || es.ptrs != c.ptrs || es.region != c.region {
			t.Errorf("parseScheme(%s) = kind %d ptrs %d region %d, want %d/%d/%d",
				c.scheme.Name(), es.kind, es.ptrs, es.region, c.kind, c.ptrs, c.region)
		}
	}
	if _, err := parseScheme(core.Must(core.NewFullVector(8))); err == nil {
		t.Errorf("parseScheme accepted 8 nodes")
	}
}

// registrySchemes returns every scheme registered in internal/core.
func registrySchemes() map[string]core.Factory {
	return map[string]core.Factory{
		"full": core.MustParse("full"),
		"cv":   core.MustParse("cv"),
		"b":    core.MustParse("b"),
		"nb":   core.MustParse("nb"),
		"x":    core.MustParse("x"),
	}
}

// TestExploreCleanTinyConfigs exhaustively checks every registered scheme
// on the smallest interesting geometry and expects zero violations, plus
// deterministic state counts across repeated runs.
func TestExploreCleanTinyConfigs(t *testing.T) {
	for name, f := range registrySchemes() {
		m, err := New(Config{Clusters: 2, Blocks: 1, Scheme: f, Ops: 2})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		r1 := m.Explore(0)
		if r1.Counterexample != nil {
			t.Fatalf("%s: unexpected violation: %+v", name, r1.Counterexample)
		}
		if r1.Truncated {
			t.Fatalf("%s: truncated at %d states", name, r1.States)
		}
		r2 := m.Explore(0)
		if r1.States != r2.States || r1.Transitions != r2.Transitions || r1.Depth != r2.Depth {
			t.Errorf("%s: nondeterministic exploration: %+v vs %+v", name, r1, r2)
		}
		if r1.States < 10 {
			t.Errorf("%s: suspiciously few states (%d)", name, r1.States)
		}
	}
}

// TestExploreCleanReordered checks the stale-message recovery rules: with
// arbitrary message reordering the fixed protocol must still satisfy
// every invariant.
func TestExploreCleanReordered(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	m, err := New(Config{Clusters: 2, Blocks: 1, Scheme: core.MustParse("full"), Ops: 3, Order: OrderAny})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Explore(0)
	if r.Counterexample != nil {
		t.Fatalf("unexpected violation: %+v", r.Counterexample)
	}
	if r.Truncated {
		t.Fatalf("truncated at %d states", r.States)
	}
}

// TestExploreCleanSparse covers the replacement-recall machinery: a
// one-entry directory per home with three blocks forces continuous
// recalls.
func TestExploreCleanSparse(t *testing.T) {
	m, err := New(Config{Clusters: 2, Blocks: 3, Scheme: core.MustParse("full"), Ops: 2,
		SparseEntries: 1, SparseAssoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Explore(0)
	if r.Counterexample != nil {
		t.Fatalf("unexpected violation: %+v", r.Counterexample)
	}
	if r.Truncated {
		t.Fatalf("truncated at %d states", r.States)
	}
}

// TestSymmetryReduction verifies that cluster-symmetry reduction shrinks
// the state space without changing the verdict.
func TestSymmetryReduction(t *testing.T) {
	base := Config{Clusters: 3, Blocks: 1, Scheme: core.MustParse("full"), Ops: 2}
	sym, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sym.perms) == 0 {
		t.Fatalf("expected non-trivial symmetry group for 3 clusters, 1 block")
	}
	nosym := base
	nosym.NoSymmetry = true
	full, err := New(nosym)
	if err != nil {
		t.Fatal(err)
	}
	rs := sym.Explore(0)
	rf := full.Explore(0)
	if rs.Counterexample != nil || rf.Counterexample != nil {
		t.Fatalf("unexpected violation: sym %+v, full %+v", rs.Counterexample, rf.Counterexample)
	}
	if rs.States >= rf.States {
		t.Errorf("symmetry reduction did not help: %d reduced vs %d full states", rs.States, rf.States)
	}
}

// bugConfigs returns, for each re-injected bug, a configuration in which
// the model checker must find it.
func bugConfigs() map[Bug]Config {
	full := core.MustParse("full")
	return map[Bug]Config{
		BugRecallGateRace: {Clusters: 2, Blocks: 3, Scheme: full, Ops: 3,
			SparseEntries: 1, SparseAssoc: 1, Order: OrderFIFO},
		BugStaleReadReq: {Clusters: 2, Blocks: 1, Scheme: full,
			Budgets: []int{0, 2}, Order: OrderAny},
		BugStaleSharingWB: {Clusters: 3, Blocks: 1, Scheme: full,
			Budgets: []int{0, 3, 1}, Order: OrderAny},
		BugStaleWritebackReq: {Clusters: 3, Blocks: 1, Scheme: full,
			Budgets: []int{0, 3, 1}, Order: OrderAny},
	}
}

// TestBugsCaught re-injects each fixed protocol bug and requires the
// checker to find a counterexample within the default state budget —
// and the same configuration to verify clean without the bug.
func TestBugsCaught(t *testing.T) {
	for bug, cfg := range bugConfigs() {
		bug, cfg := bug, cfg
		t.Run(bug.String(), func(t *testing.T) {
			clean := cfg
			m, err := New(clean)
			if err != nil {
				t.Fatal(err)
			}
			if r := m.Explore(0); r.Counterexample != nil {
				t.Fatalf("config is not clean without the bug: %+v", r.Counterexample)
			} else if r.Truncated {
				t.Fatalf("clean run truncated at %d states", r.States)
			}
			cfg.Bug = bug
			mb, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := mb.Explore(0)
			if r.Counterexample == nil {
				t.Fatalf("bug not found in %d states", r.States)
			}
			if len(r.Counterexample.Trace) == 0 {
				t.Fatalf("counterexample has no trace: %+v", r.Counterexample)
			}
			t.Logf("%s: %s at c%d b%d after %d states, %d-step trace",
				bug, r.Counterexample.Rule, r.Counterexample.Cluster, r.Counterexample.Block,
				r.States, len(r.Counterexample.Trace))
		})
	}
}

// TestRunScript pins the sequential semantics against hand-computed
// protocol outcomes.
func TestRunScript(t *testing.T) {
	m, err := New(Config{Clusters: 2, Blocks: 2, Scheme: core.MustParse("full"), Ops: 0})
	if err != nil {
		t.Fatal(err)
	}
	// c1 writes b0 (home c0): entry dirty, owner c1.
	v, err := m.RunScript([]Step{{Cluster: 1, Write: true, Block: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Cache[1][0] != check.CopyDirty || !v.Entry[0].Dirty || v.Entry[0].Owner != 1 {
		t.Fatalf("after remote write: %+v", v)
	}
	// ... then c0 reads b0 (home-local): dirty copy recalled, both shared.
	v, err = m.RunScript([]Step{
		{Cluster: 1, Write: true, Block: 0},
		{Cluster: 0, Write: false, Block: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := &View{
		Cache: [][]check.CopyState{{check.CopyShared, 0}, {check.CopyShared, 0}},
		Entry: []EntryState{{Present: true, Owner: -1, Sharers: 1 << 1}, {Owner: -1}},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("after write+local read:\n got %+v\nwant %+v", v, want)
	}
	// Write-after-share invalidates the other sharer and drops the entry
	// when the writer is the home.
	v, err = m.RunScript([]Step{
		{Cluster: 1, Write: true, Block: 0},
		{Cluster: 0, Write: false, Block: 0},
		{Cluster: 0, Write: true, Block: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Cache[0][0] != check.CopyDirty || v.Cache[1][0] != check.CopyInvalid || v.Entry[0].Present {
		t.Fatalf("after home write over sharers: %+v", v)
	}
}

// TestRunScriptSparseRecall exercises a replacement recall in sequential
// mode: with one directory way at home c0, touching b2 (same home as b0)
// must recall b0's sharer.
func TestRunScriptSparseRecall(t *testing.T) {
	m, err := New(Config{Clusters: 2, Blocks: 3, Scheme: core.MustParse("full"), Ops: 0,
		SparseEntries: 1, SparseAssoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.RunScript([]Step{
		{Cluster: 1, Write: false, Block: 0}, // c1 shares b0 (home c0)
		{Cluster: 1, Write: false, Block: 2}, // b2 has home c0 too: b0's entry recalled
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Cache[1][0] != check.CopyInvalid {
		t.Fatalf("recall did not invalidate c1's copy of b0: %+v", v)
	}
	if v.Cache[1][2] != check.CopyShared || !v.Entry[2].Present {
		t.Fatalf("b2 not installed after recall: %+v", v)
	}
	if v.Entry[0].Present {
		t.Fatalf("b0 entry still present after recall: %+v", v)
	}
}
