package model

import (
	"fmt"
	"math/bits"

	"dircoh/internal/check"
	"dircoh/internal/protocol"
	"dircoh/internal/sparse"
)

// Message kinds the model uses, as compact bytes. The values are
// protocol.MsgKind, so traces print the real wire names.
const (
	kReadReq        = uint8(protocol.ReadReq)
	kWriteReq       = uint8(protocol.WriteReq)
	kUpgradeReq     = uint8(protocol.UpgradeReq)
	kWritebackReq   = uint8(protocol.WritebackReq)
	kSharingWB      = uint8(protocol.SharingWB)
	kFwdReadReq     = uint8(protocol.FwdReadReq)
	kFwdWriteReq    = uint8(protocol.FwdWriteReq)
	kDataReply      = uint8(protocol.DataReply)
	kOwnershipReply = uint8(protocol.OwnershipReply)
	kInval          = uint8(protocol.Inval)
	kFlush          = uint8(protocol.Flush)
	kAckMsg         = uint8(protocol.AckMsg)
)

// violation is one invariant breach found while applying or checking a
// transition.
type violation struct {
	rule    check.Rule
	cluster int
	block   int
	detail  string
}

func (v violation) String() string {
	return fmt.Sprintf("%s violation at c%d b%d: %s", v.rule, v.cluster, v.block, v.detail)
}

// applier mutates one state through the transition rules, collecting any
// violations the rules themselves detect (protocol anomalies, ack
// underflow, incomplete recalls). Each rule is a transliteration of the
// corresponding internal/machine handler; comments name the original.
type applier struct {
	m    *Model
	s    *state
	viol []violation
}

func (a *applier) emit(rule check.Rule, cluster, block int, detail string) {
	a.viol = append(a.viol, violation{rule, cluster, block, detail})
}

func (a *applier) cacheAt(c, b int) uint8     { return a.s.cache[c*a.m.nb+b] }
func (a *applier) setCache(c, b int, v uint8) { a.s.cache[c*a.m.nb+b] = v }

func (a *applier) send(kind uint8, from, to, b, req int, flavor uint8) {
	a.s.msgs = append(a.s.msgs, msg{kind: kind, from: int8(from), to: int8(to),
		block: int8(b), req: int8(req), flavor: flavor})
}

// inflight counts in-flight messages touching block b, mirroring the
// runtime checker's Inflight gate on invariant evaluation.
func (a *applier) inflight(b int) int {
	n := 0
	for _, g := range a.s.msgs {
		if int(g.block) == b {
			n++
		}
	}
	return n
}

// --- directory (machine: sparse.Sparse / the full-map path) ---

func (a *applier) dirPeek(b int) *dirEntry {
	if a.m.sets == 0 {
		if a.s.present[b] {
			return &a.s.ent[b]
		}
		return nil
	}
	set := a.dirSet(b)
	for i := range set {
		if set[i].valid && int(set[i].key) == a.m.dirKey(b) {
			return &set[i].ent
		}
	}
	return nil
}

// dirSet returns the home set of ways holding block b's key.
func (a *applier) dirSet(b int) []dline {
	h, key := a.m.home(b), a.m.dirKey(b)
	base := (h*a.m.sets + sparse.SetIndex(int64(key), a.m.sets)) * a.m.assoc
	return a.s.lines[base : base+a.m.assoc]
}

// touch promotes way i of set to most-recent among its valid lines.
func touch(set []dline, i int) {
	v := uint8(0)
	for j := range set {
		if set[j].valid {
			v++
		}
	}
	r := set[i].rank
	for j := range set {
		if set[j].valid && set[j].rank > r {
			set[j].rank--
		}
	}
	set[i].rank = v - 1
}

func (a *applier) dirLookup(b int) *dirEntry {
	if a.m.sets == 0 {
		return a.dirPeek(b)
	}
	set := a.dirSet(b)
	for i := range set {
		if set[i].valid && int(set[i].key) == a.m.dirKey(b) {
			touch(set, i)
			return &set[i].ent
		}
	}
	return nil
}

// dirAllocate mirrors sparse.Sparse.Allocate: hit touches, a free way
// installs, otherwise the LRU way is recalled and reused in place. The
// caller must run replaceEntry for the victim before serving.
func (a *applier) dirAllocate(b int) (e *dirEntry, vb int, ve dirEntry, hadVictim bool) {
	if a.m.sets == 0 {
		if !a.s.present[b] {
			a.s.present[b] = true
			a.s.ent[b] = emptyEntry()
		}
		return &a.s.ent[b], 0, dirEntry{}, false
	}
	h, key := a.m.home(b), a.m.dirKey(b)
	set := a.dirSet(b)
	for i := range set {
		if set[i].valid && int(set[i].key) == key {
			touch(set, i)
			return &set[i].ent, 0, dirEntry{}, false
		}
	}
	for i := range set {
		if !set[i].valid {
			v := uint8(0)
			for j := range set {
				if set[j].valid {
					v++
				}
			}
			set[i] = dline{valid: true, key: int8(key), rank: v, ent: emptyEntry()}
			return &set[i].ent, 0, dirEntry{}, false
		}
	}
	i := sparse.PickVictimIndex(len(set), func(j int) uint64 { return uint64(set[j].rank) })
	vb, ve = a.m.keyBlock(int(set[i].key), h), set[i].ent
	r := set[i].rank
	for j := range set {
		if set[j].rank > r {
			set[j].rank--
		}
	}
	set[i] = dline{valid: true, key: int8(key), rank: uint8(len(set) - 1), ent: emptyEntry()}
	return &set[i].ent, vb, ve, true
}

func (a *applier) dirRelease(b int) {
	if a.m.sets == 0 {
		a.s.present[b] = false
		a.s.ent[b] = emptyEntry()
		return
	}
	set := a.dirSet(b)
	for i := range set {
		if set[i].valid && int(set[i].key) == a.m.dirKey(b) {
			r := set[i].rank
			for j := range set {
				if set[j].valid && set[j].rank > r {
					set[j].rank--
				}
			}
			set[i] = dline{ent: emptyEntry()}
			return
		}
	}
}

// --- gate and RAC (machine: gate.Gate, rac tracking) ---

func (a *applier) gateLock(b int) {
	if a.s.gate[b] {
		a.emit(check.RuleProtocol, a.m.home(b), b, "gate locked while already busy")
		return
	}
	a.s.gate[b] = true
}

func (a *applier) gateUnlock(b int) {
	if !a.s.gate[b] {
		a.emit(check.RuleProtocol, a.m.home(b), b, "gate unlocked while not busy")
		return
	}
	a.s.gate[b] = false
	h := a.m.home(b)
	for !a.s.gate[b] && len(a.s.gateQ[b]) > 0 {
		it := a.s.gateQ[b][0]
		a.s.gateQ[b] = append([]qItem(nil), a.s.gateQ[b][1:]...)
		if len(a.s.gateQ[b]) == 0 {
			a.s.gateQ[b] = nil
		}
		switch it.kind {
		case qRead:
			a.serveRead(h, int(it.from), b)
		case qWrite:
			a.serveWrite(h, int(it.from), b)
		case qLocalRead:
			a.homeLocalRead(h, b)
		case qLocalWrite:
			a.homeLocalWrite(h, b)
		case qRecall:
			a.sendReplacementInvals(h, b, it.ve)
		}
	}
}

func (a *applier) racStart(b, n int) {
	if a.s.rac[b] != 0 {
		a.emit(check.RuleProtocol, a.m.home(b), b, "recall started while RAC already tracking the block")
	}
	a.s.rac[b] = uint8(n)
}

// racAck mirrors Machine.racAck.
func (a *applier) racAck(b int) {
	h := a.m.home(b)
	if a.s.rac[b] == 0 {
		a.emit(check.RuleProtocol, h, b, "recall ack on untracked block")
		return
	}
	a.s.rac[b]--
	if a.s.rac[b] > 0 {
		return
	}
	if a.s.recalls[b] > 0 {
		a.s.recalls[b]--
	}
	if a.s.recalls[b] == 0 && a.inflight(b) == 0 {
		check.RecallClean(h, a.blockCopies(b), a.entryView(b), func(cl int, detail string) {
			a.emit(check.RuleRecall, cl, b, detail)
		})
	}
	a.gateUnlock(b)
}

// --- sparse replacement recall (machine: replaceEntry & friends) ---

func (a *applier) replaceEntry(h, vb int, ve dirEntry) {
	a.s.recalls[vb]++
	if a.m.cfg.Bug != BugRecallGateRace && a.s.gate[vb] {
		// A transaction is in flight on the victim block; recall when the
		// gate clears. (BugRecallGateRace re-injects the historical bug of
		// starting the recall anyway.)
		a.s.gateQ[vb] = append(a.s.gateQ[vb], qItem{kind: qRecall, from: -1, ve: ve})
		return
	}
	a.sendReplacementInvals(h, vb, ve)
}

func (a *applier) sendReplacementInvals(h, vb int, ve dirEntry) {
	if ve.empty() {
		a.s.recalls[vb]--
		return
	}
	if ve.dirty {
		a.gateLock(vb)
		a.racStart(vb, 1)
		a.send(kFlush, h, int(ve.owner), vb, -1, fNone)
		return
	}
	targets := ve.mask(a.m.es) &^ (1 << uint(h))
	n := bits.OnesCount8(targets)
	if n == 0 {
		a.s.recalls[vb]--
		return
	}
	a.gateLock(vb)
	a.racStart(vb, n)
	for t := 0; t < a.m.n; t++ {
		if targets&(1<<uint(t)) != 0 {
			a.send(kInval, h, t, vb, -1, fAckToRAC)
		}
	}
}

// --- invalidation application (machine: invalidateCluster/applyInval) ---

// applyInval drops cluster c's copy and poisons its outstanding remote
// read, so the in-flight reply is consumed without installing a copy.
func (a *applier) applyInval(c, b int) {
	a.setCache(c, b, cacheI)
	if a.s.rd[c].active && !a.s.rd[c].local && int(a.s.rd[c].block) == b {
		a.s.rd[c].poisoned = true
	}
}

// nbEviction mirrors handleNBEvictions for the single node a model entry
// can evict: an invalidation whose ack is pure traffic.
func (a *applier) nbEviction(h, b, v int) {
	if v < 0 || v == h {
		return
	}
	a.send(kInval, h, v, b, -1, fAckInert)
}

// --- home service of remote requests (machine: serveRemoteRead/Write) ---

func (a *applier) serveRead(h, rc, b int) {
	if a.s.gate[b] {
		a.s.gateQ[b] = append(a.s.gateQ[b], qItem{kind: qRead, from: int8(rc)})
		return
	}
	e := a.dirLookup(b)
	if e != nil && e.dirty && int(e.owner) != rc {
		// Three-cluster read: forward to the owner, which replies to the
		// requester and sends an (inert) sharing writeback home.
		owner := int(e.owner)
		e.clearDirty()
		a.nbEviction(h, b, e.addSharer(a.m.es, rc))
		a.gateLock(b)
		a.send(kFwdReadReq, h, owner, b, rc, fNone)
		return
	}
	// Clean at home (or owned by the requester after a writeback race).
	e2, vb, ve, hadVictim := a.dirAllocate(b)
	if hadVictim {
		a.replaceEntry(h, vb, ve)
	}
	if e2.dirty && int(e2.owner) == rc {
		if a.cacheAt(rc, b) == cacheD && a.m.cfg.Bug != BugStaleReadReq {
			// Stale request: the cluster's later write overtook this read
			// and ownership is already back. Entry untouched; the reply
			// completes the (poisoned) read.
			if a.s.rd[rc].active && !a.s.rd[rc].local && int(a.s.rd[rc].block) == b {
				a.s.rd[rc].poisoned = true
			}
			a.send(kDataReply, h, rc, b, -1, fNone)
			return
		}
		// The owner itself is asking: its copy was evicted, so a writeback
		// is in flight and now stale.
		e2.clearDirty()
		a.s.wbExp[b]++
	}
	// Home-bus snoop: downgrade a dirty home copy so memory is current.
	if a.cacheAt(h, b) == cacheD {
		a.setCache(h, b, cacheS)
	}
	a.nbEviction(h, b, e2.addSharer(a.m.es, rc))
	a.send(kDataReply, h, rc, b, -1, fNone)
}

// serveWrite handles WriteReq and UpgradeReq alike; the machine's only
// upgrade-specific behavior (fillExclusive) lives at the requester, where
// the model's completeWrite already covers both cases.
func (a *applier) serveWrite(h, rc, b int) {
	if a.s.gate[b] {
		a.s.gateQ[b] = append(a.s.gateQ[b], qItem{kind: qWrite, from: int8(rc)})
		return
	}
	e, vb, ve, hadVictim := a.dirAllocate(b)
	if hadVictim {
		a.replaceEntry(h, vb, ve)
	}
	if e.dirty && int(e.owner) != rc {
		// Ownership transfer between two remote clusters.
		owner := int(e.owner)
		e.setDirty(a.m.es, rc)
		a.gateLock(b)
		a.send(kFwdWriteReq, h, owner, b, rc, fNone)
		return
	}
	if e.dirty && int(e.owner) == rc && a.cacheAt(rc, b) != cacheD {
		// Re-granting to the recorded owner: its in-flight writeback is
		// stale. (If the cluster still holds the block dirty, the request
		// itself is the stale artifact and no writeback is coming.)
		a.s.wbExp[b]++
	}
	targets := e.mask(a.m.es) &^ (1 << uint(rc)) &^ (1 << uint(h))
	a.applyInval(h, b) // home-bus snoop, no messages
	e.setDirty(a.m.es, rc)
	a.s.acks[rc] += uint8(bits.OnesCount8(targets))
	a.gateLock(b)
	a.send(kOwnershipReply, h, rc, b, -1, fNone)
	for t := 0; t < a.m.n; t++ {
		if targets&(1<<uint(t)) != 0 {
			a.send(kInval, h, t, b, rc, fAckToReq)
		}
	}
}

// --- home-local accesses (machine: homeLocalRead/homeLocalWrite) ---

func (a *applier) homeLocalRead(c, b int) {
	if a.s.gate[b] {
		a.s.gateQ[b] = append(a.s.gateQ[b], qItem{kind: qLocalRead, from: int8(c)})
		return
	}
	// Re-snoop: the cluster may have obtained a copy while the request
	// waited on the gate; the bus supplies it directly (a dirty copy
	// downgrades, memory updated over the bus).
	if a.cacheAt(c, b) != cacheI {
		if a.cacheAt(c, b) == cacheD {
			a.setCache(c, b, cacheS)
		}
		a.s.rd[c] = opSlot{}
		return
	}
	e := a.dirLookup(b)
	if e == nil || !e.dirty {
		a.setCache(c, b, cacheS)
		a.s.rd[c] = opSlot{}
		return
	}
	// Dirty in a remote cluster: forward there; the reply to the home
	// doubles as the sharing writeback.
	owner := int(e.owner)
	e.clearDirty()
	a.gateLock(b)
	a.send(kFwdReadReq, c, owner, b, c, fNone)
}

func (a *applier) homeLocalWrite(c, b int) {
	if a.s.gate[b] {
		a.s.gateQ[b] = append(a.s.gateQ[b], qItem{kind: qLocalWrite, from: int8(c)})
		return
	}
	// Re-snoop: a dirty copy picked up while waiting transfers ownership
	// over the bus; the directory state is unchanged.
	if a.cacheAt(c, b) == cacheD {
		a.s.wr[c] = opSlot{}
		return
	}
	e := a.dirLookup(b)
	if e == nil || e.empty() {
		if e != nil {
			a.dirRelease(b)
		}
		a.setCache(c, b, cacheD)
		a.s.wr[c] = opSlot{}
		return
	}
	if e.dirty {
		// Recall from the remote owner; afterwards the block is dirty in
		// the home cluster and needs no directory entry.
		owner := int(e.owner)
		e.reset()
		a.dirRelease(b)
		a.gateLock(b)
		a.send(kFwdWriteReq, c, owner, b, c, fNone)
		return
	}
	// Remote sharers: invalidate them; ownership is granted immediately.
	targets := e.mask(a.m.es) &^ (1 << uint(c))
	e.reset()
	a.dirRelease(b)
	a.s.acks[c] += uint8(bits.OnesCount8(targets))
	a.setCache(c, b, cacheD)
	a.s.wr[c] = opSlot{}
	for t := 0; t < a.m.n; t++ {
		if targets&(1<<uint(t)) != 0 {
			a.send(kInval, c, t, b, c, fAckToReq)
		}
	}
}

// --- replies at the requester (machine: remoteReadDone/remoteWriteDone) ---

func (a *applier) completeRead(c, b int, unlock bool) {
	if !a.s.rd[c].active || int(a.s.rd[c].block) != b {
		a.emit(check.RuleProtocol, c, b, "data reply with no read outstanding")
		return
	}
	if !a.s.rd[c].poisoned {
		a.setCache(c, b, cacheS)
	}
	a.s.rd[c] = opSlot{}
	if unlock {
		a.gateUnlock(b)
	}
}

func (a *applier) completeWrite(c, b int) {
	if !a.s.wr[c].active || int(a.s.wr[c].block) != b {
		a.emit(check.RuleProtocol, c, b, "ownership reply with no write outstanding")
		return
	}
	a.setCache(c, b, cacheD)
	a.s.wr[c] = opSlot{}
	a.gateUnlock(b)
}

// --- writeback arrivals at the home (machine: handleVictim/sendSharingWB
// delivery closures, including the PR5 stale-message guards) ---

func (a *applier) sharingWBArrived(from, b int) {
	if a.s.wbExp[b] > 0 {
		a.s.wbExp[b]--
		return
	}
	// Guarded downgrade: ancient unless the directory still records the
	// sender as dirty owner and the sender is not dirty again. A busy gate
	// with the entry dirty-owned by the sender means an ownership grant to
	// the sender is still in flight, so the writeback predates the grant
	// and is ancient even though the sender's cache is not yet dirty.
	e := a.dirLookup(b)
	if e != nil && e.dirty && int(e.owner) == from &&
		(a.m.cfg.Bug == BugStaleSharingWB ||
			(a.cacheAt(from, b) != cacheD && !a.s.gate[b])) {
		e.clearDirty()
	}
}

func (a *applier) writebackArrived(from, b int) {
	if a.s.wbExp[b] > 0 {
		a.s.wbExp[b]--
		return
	}
	// Guarded release: only clear ownership if the directory still
	// believes the sender owns the block, it has not re-acquired the block
	// dirty meanwhile, and no grant back to the sender is in flight (gate
	// busy with the entry dirty-owned by the sender can only mean an
	// undelivered OwnershipReply to it, which this writeback predates).
	e := a.dirLookup(b)
	if e != nil && e.dirty && int(e.owner) == from &&
		(a.m.cfg.Bug == BugStaleWritebackReq ||
			(a.cacheAt(from, b) != cacheD && !a.s.gate[b])) {
		e.reset()
		a.dirRelease(b)
	}
}

// --- spontaneous processor operations ---

func (a *applier) issueRead(c, b int) {
	if a.m.home(b) == c {
		a.s.rd[c] = opSlot{active: true, block: int8(b), local: true}
		a.homeLocalRead(c, b)
		return
	}
	a.s.rd[c] = opSlot{active: true, block: int8(b)}
	a.send(kReadReq, c, a.m.home(b), b, c, fNone)
}

func (a *applier) issueWrite(c, b int) {
	// Bus-order serialization: an outstanding read on the block must not
	// install a copy after this write.
	if a.s.rd[c].active && !a.s.rd[c].local && int(a.s.rd[c].block) == b {
		a.s.rd[c].poisoned = true
	}
	kind := kWriteReq
	if a.cacheAt(c, b) == cacheS {
		kind = kUpgradeReq
	}
	if a.m.home(b) == c {
		a.s.wr[c] = opSlot{active: true, block: int8(b), local: true}
		a.homeLocalWrite(c, b)
		return
	}
	a.s.wr[c] = opSlot{active: true, block: int8(b)}
	a.send(kind, c, a.m.home(b), b, c, fNone)
}

func (a *applier) evictOp(c, b int) {
	st := a.cacheAt(c, b)
	a.setCache(c, b, cacheI)
	if st == cacheD && a.m.home(b) != c {
		a.send(kWritebackReq, c, a.m.home(b), b, -1, fNone)
	}
}

func (a *applier) downgradeOp(c, b int) {
	a.setCache(c, b, cacheS)
	if a.m.home(b) != c {
		a.send(kSharingWB, c, a.m.home(b), b, -1, fMeaningful)
	}
}

// --- message dispatch ---

// deliver removes message i from the multiset and runs its handler.
func (a *applier) deliver(i int) {
	g := a.s.msgs[i]
	a.s.msgs = append(a.s.msgs[:i:i], a.s.msgs[i+1:]...)
	b := int(g.block)
	switch g.kind {
	case kReadReq:
		a.serveRead(int(g.to), int(g.from), b)
	case kWriteReq, kUpgradeReq:
		a.serveWrite(int(g.to), int(g.from), b)
	case kFwdReadReq:
		// At the owner: downgrade, reply to the requester (unlocking the
		// home gate), and send the home an inert sharing writeback unless
		// the requester is the home itself.
		o := int(g.to)
		if a.cacheAt(o, b) == cacheD {
			a.setCache(o, b, cacheS)
		}
		a.send(kDataReply, o, int(g.req), b, -1, fUnlock)
		if int(g.req) != a.m.home(b) {
			a.send(kSharingWB, o, a.m.home(b), b, -1, fInert)
		}
	case kFwdWriteReq:
		o := int(g.to)
		a.applyInval(o, b)
		a.send(kOwnershipReply, o, int(g.req), b, -1, fNone)
	case kDataReply:
		a.completeRead(int(g.to), b, g.flavor == fUnlock)
	case kOwnershipReply:
		a.completeWrite(int(g.to), b)
	case kSharingWB:
		if g.flavor != fInert {
			a.sharingWBArrived(int(g.from), b)
		}
	case kWritebackReq:
		a.writebackArrived(int(g.from), b)
	case kInval:
		a.applyInval(int(g.to), b)
		switch g.flavor {
		case fAckToReq:
			a.send(kAckMsg, int(g.to), int(g.req), b, -1, fAckProc)
		case fAckToRAC:
			a.send(kAckMsg, int(g.to), int(g.from), b, -1, fAckRAC)
		case fAckInert:
			a.send(kAckMsg, int(g.to), int(g.from), b, -1, fAckNone)
		}
	case kFlush:
		a.applyInval(int(g.to), b)
		a.send(kAckMsg, int(g.to), int(g.from), b, -1, fAckRAC)
	case kAckMsg:
		switch g.flavor {
		case fAckProc:
			c := int(g.to)
			if a.s.acks[c] == 0 {
				a.emit(check.RuleAck, c, b, "invalidation ack with no acknowledgement outstanding")
				return
			}
			a.s.acks[c]--
		case fAckRAC:
			a.racAck(b)
		}
	default:
		a.emit(check.RuleProtocol, int(g.to), b, fmt.Sprintf("unhandled message kind %v", protocol.MsgKind(g.kind)))
	}
}

// --- invariant views (shared predicate inputs, see internal/check) ---

func (a *applier) blockCopies(b int) []check.Copy {
	var copies []check.Copy
	for c := 0; c < a.m.n; c++ {
		switch a.cacheAt(c, b) {
		case cacheS:
			copies = append(copies, check.Copy{Proc: c, Cluster: c, State: check.CopyShared})
		case cacheD:
			copies = append(copies, check.Copy{Proc: c, Cluster: c, State: check.CopyDirty})
		}
	}
	return copies
}

func (a *applier) entryView(b int) check.EntryView {
	e := a.dirPeek(b)
	if e == nil {
		return check.EntryView{Owner: -1}
	}
	mask := e.mask(a.m.es)
	return check.EntryView{
		Present:  true,
		Dirty:    e.dirty,
		Owner:    int(e.owner),
		IsSharer: func(cl int) bool { return mask&(1<<uint(cl)) != 0 },
	}
}

// checkState runs the per-state invariants: single-writer and directory
// coverage per quiescent block (the same gating as the runtime checker's
// checkBlock), plus structural acknowledgement conservation.
func (a *applier) checkState() {
	for b := 0; b < a.m.nb; b++ {
		if a.s.gate[b] || a.s.rac[b] > 0 || a.inflight(b) > 0 {
			continue
		}
		copies := a.blockCopies(b)
		check.SingleWriter(copies, func(cl int, detail string) {
			a.emit(check.RuleSingleWriter, cl, b, detail)
		})
		if len(copies) == 0 {
			continue
		}
		check.Coverage(a.m.home(b), copies, a.entryView(b), func(cl int, detail string) {
			a.emit(check.RuleCoverage, cl, b, detail)
		})
	}
	for c := 0; c < a.m.n; c++ {
		owed := 0
		for _, g := range a.s.msgs {
			if (g.kind == kInval && g.flavor == fAckToReq && int(g.req) == c) ||
				(g.kind == kAckMsg && g.flavor == fAckProc && int(g.to) == c) {
				owed++
			}
		}
		if int(a.s.acks[c]) != owed {
			a.emit(check.RuleAck, c, -1, fmt.Sprintf(
				"cluster expects %d invalidation acks but %d are in flight", a.s.acks[c], owed))
		}
	}
}
