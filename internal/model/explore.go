package model

import (
	"fmt"

	"dircoh/internal/check"
	"dircoh/internal/protocol"
)

// DefaultMaxStates bounds exploration when the caller does not.
const DefaultMaxStates = 400_000

// Spontaneous action kinds.
const (
	aRead uint8 = iota
	aWrite
	aEvict
	aDowngrade
)

var aNames = [...]string{"read", "write", "evict", "downgrade"}

// action is one enabled transition out of a state: deliver a specific
// in-flight message, or spend one unit of a cluster's operation budget.
type action struct {
	deliver bool
	idx     int // index into the canonical state's msgs
	msg     msg // copy, for the trace description
	kind    uint8
	cluster int
	block   int
}

func (m *Model) describe(a action) string {
	if !a.deliver {
		return fmt.Sprintf("c%d: %s b%d", a.cluster, aNames[a.kind], a.block)
	}
	g := a.msg
	s := fmt.Sprintf("deliver %v c%d->c%d b%d", protocol.MsgKind(g.kind), g.from, g.to, g.block)
	if g.req >= 0 {
		s += fmt.Sprintf(" (req c%d)", g.req)
	}
	return s
}

// enumerate lists the enabled actions of canonical state s in a fixed
// order: deliverable messages first (FIFO: the head of each channel; any:
// each distinct message), then spontaneous operations.
func (m *Model) enumerate(s *state) []action {
	var acts []action
	for i, g := range s.msgs {
		if m.cfg.Order == OrderFIFO {
			if i > 0 && s.msgs[i-1].from == g.from && s.msgs[i-1].to == g.to {
				continue // behind the channel head
			}
		} else if i > 0 && s.msgs[i-1] == g {
			continue // identical to the previous in-flight message
		}
		acts = append(acts, action{deliver: true, idx: i, msg: g})
	}
	for c := 0; c < m.n; c++ {
		if s.budget[c] == 0 {
			continue
		}
		for b := 0; b < m.nb; b++ {
			st := s.cache[c*m.nb+b]
			if st == cacheI && !s.rd[c].active && !(s.wr[c].active && int(s.wr[c].block) == b) {
				acts = append(acts, action{kind: aRead, cluster: c, block: b})
			}
			if st != cacheD && !s.wr[c].active {
				acts = append(acts, action{kind: aWrite, cluster: c, block: b})
			}
			if st != cacheI {
				acts = append(acts, action{kind: aEvict, cluster: c, block: b})
			}
			if st == cacheD {
				acts = append(acts, action{kind: aDowngrade, cluster: c, block: b})
			}
		}
	}
	return acts
}

// apply runs one action on s (which the caller owns), returning any
// violations the transition itself raised.
func (m *Model) apply(s *state, act action) []violation {
	a := &applier{m: m, s: s}
	if act.deliver {
		a.deliver(act.idx)
	} else {
		s.budget[act.cluster]--
		switch act.kind {
		case aRead:
			a.issueRead(act.cluster, act.block)
		case aWrite:
			a.issueWrite(act.cluster, act.block)
		case aEvict:
			a.evictOp(act.cluster, act.block)
		case aDowngrade:
			a.downgradeOp(act.cluster, act.block)
		}
	}
	return a.viol
}

// pendingWork reports whether anything in s is still waiting to complete.
func (m *Model) pendingWork(s *state) bool {
	for c := 0; c < m.n; c++ {
		if s.rd[c].active || s.wr[c].active || s.acks[c] > 0 {
			return true
		}
	}
	for b := 0; b < m.nb; b++ {
		if s.gate[b] || len(s.gateQ[b]) > 0 || s.rac[b] > 0 || s.recalls[b] > 0 {
			return true
		}
	}
	return false
}

// Counterexample is a minimal (BFS-shortest) action sequence from the
// initial state to a violation.
type Counterexample struct {
	Rule    string
	Cluster int
	Block   int
	Detail  string
	Trace   []string // one action per line, in execution order
}

// Result summarizes one exploration.
type Result struct {
	Scheme         string
	States         uint64 // distinct canonical states reached
	Transitions    uint64 // actions applied
	Depth          int    // BFS depth of the deepest state explored
	Truncated      bool   // stopped at the state bound before exhausting
	Counterexample *Counterexample
}

type edge struct {
	parent string
	act    action // the transition, de-relabeled into original-run coordinates
	depth  int
	cum    []int // composed relabeling: original-run coords -> this state's coords (nil = identity)
}

// derelabelAction rewrites act's cluster fields from a canonical state's
// coordinates back to the original run's via inv (nil = identity), so
// printed traces form one executable run.
func derelabelAction(act action, inv []int) action {
	if inv == nil {
		return act
	}
	if act.deliver {
		act.msg.from = int8(inv[act.msg.from])
		act.msg.to = int8(inv[act.msg.to])
		if act.msg.req >= 0 {
			act.msg.req = int8(inv[act.msg.req])
		}
	} else {
		act.cluster = inv[act.cluster]
	}
	return act
}

func derelabelViolation(v violation, inv []int) violation {
	if inv != nil && v.cluster >= 0 {
		v.cluster = inv[v.cluster]
	}
	return v
}

// replayActions re-executes a de-relabeled counterexample from the
// initial state, symmetry-free, so the reported violation (including the
// cluster ids its detail text embeds) is in the same coordinates as the
// printed trace. Exploration found the violation on a canonical orbit
// representative; the replay reproduces it on the literal run, falling
// back to the orbit's verdict if the trace somehow diverges (a deadlock
// fallback is normal: it is detected on the final state, not an action).
func (m *Model) replayActions(acts []action, fallback violation) (violation, []string) {
	s := m.initState()
	trace := make([]string, 0, len(acts))
	for _, act := range acts {
		a := &applier{m: m, s: s}
		if act.deliver {
			m.sortMsgs(s)
			idx := -1
			for i, g := range s.msgs {
				if g == act.msg {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fallback, trace
			}
			a.deliver(idx)
		} else {
			if s.budget[act.cluster] == 0 {
				return fallback, trace
			}
			s.budget[act.cluster]--
			switch act.kind {
			case aRead:
				a.issueRead(act.cluster, act.block)
			case aWrite:
				a.issueWrite(act.cluster, act.block)
			case aEvict:
				a.evictOp(act.cluster, act.block)
			case aDowngrade:
				a.downgradeOp(act.cluster, act.block)
			}
		}
		trace = append(trace, m.describe(act))
		if len(a.viol) > 0 {
			return a.viol[0], trace
		}
	}
	a := &applier{m: m, s: s}
	a.checkState()
	if len(a.viol) > 0 {
		return a.viol[0], trace
	}
	return fallback, trace
}

// Explore enumerates every reachable state up to maxStates (<= 0 uses
// DefaultMaxStates), checking invariants in each and deadlock-freedom at
// every quiescent-network state. It stops at the first violation,
// returning its shortest trace. The search is deterministic: same model,
// same result.
func (m *Model) Explore(maxStates int) Result {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	res := Result{Scheme: m.es.name}
	k0, s0, p0 := m.canonicalize(m.initState())
	visited := map[string]edge{k0: {cum: p0}}
	type item struct {
		key string
		st  *state
	}
	queue := []item{{k0, s0}}

	fail := func(key string, last *action, fallback violation) Result {
		var acts []action
		for key != k0 {
			e := visited[key]
			acts = append(acts, e.act)
			key = e.parent
		}
		for i, j := 0, len(acts)-1; i < j; i, j = i+1, j-1 {
			acts[i], acts[j] = acts[j], acts[i]
		}
		if last != nil {
			acts = append(acts, *last)
		}
		v, trace := m.replayActions(acts, fallback)
		res.States = uint64(len(visited))
		res.Counterexample = &Counterexample{
			Rule: v.rule.String(), Cluster: v.cluster, Block: v.block,
			Detail: v.detail, Trace: trace,
		}
		return res
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curEdge := visited[cur.key]
		depth := curEdge.depth
		curInv := invPerm(curEdge.cum)
		if depth > res.Depth {
			res.Depth = depth
		}
		if len(cur.st.msgs) == 0 && m.pendingWork(cur.st) {
			return fail(cur.key, nil, violation{rule: check.RuleLiveness, cluster: -1, block: -1,
				detail: "deadlock: no messages in flight but operations, gates or recalls are still pending"})
		}
		for _, act := range m.enumerate(cur.st) {
			ns := cur.st.clone()
			viol := m.apply(ns, act)
			res.Transitions++
			dAct := derelabelAction(act, curInv)
			if len(viol) > 0 {
				return fail(cur.key, &dAct, derelabelViolation(viol[0], curInv))
			}
			nk, cs, p := m.canonicalize(ns)
			if _, ok := visited[nk]; ok {
				continue
			}
			cum := composePerm(p, curEdge.cum, m.n)
			a := &applier{m: m, s: cs}
			a.checkState()
			visited[nk] = edge{parent: cur.key, act: dAct, depth: depth + 1, cum: cum}
			if len(a.viol) > 0 {
				return fail(nk, nil, derelabelViolation(a.viol[0], invPerm(cum)))
			}
			if len(visited) >= maxStates {
				res.States = uint64(len(visited))
				res.Truncated = true
				return res
			}
			queue = append(queue, item{nk, cs})
		}
	}
	res.States = uint64(len(visited))
	return res
}
