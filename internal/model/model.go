package model

import (
	"fmt"
	"sort"

	"dircoh/internal/core"
)

// Order selects the network-delivery semantics explored.
type Order uint8

const (
	// OrderFIFO delivers messages in order per (source, destination) pair,
	// matching the machine's default point-to-point channels.
	OrderFIFO Order = iota
	// OrderAny delivers any in-flight message next, modeling the adaptive
	// mesh reorderings that motivated the stale-message recovery rules.
	OrderAny
)

func (o Order) String() string {
	if o == OrderAny {
		return "any"
	}
	return "fifo"
}

// ParseOrder parses "fifo" or "any".
func ParseOrder(s string) (Order, error) {
	switch s {
	case "fifo":
		return OrderFIFO, nil
	case "any":
		return OrderAny, nil
	}
	return 0, fmt.Errorf("model: unknown order %q (want fifo or any)", s)
}

// Bug selects one deliberately re-injected protocol bug — each a fixed
// defect from the repo's history, kept behind a knob so the checker's
// ability to find it stays regression-tested.
type Bug uint8

const (
	// BugNone checks the protocol as implemented.
	BugNone Bug = iota
	// BugRecallGateRace makes a replacement recall skip the gate-busy
	// wait, racing the recall's invalidations against an in-flight
	// transaction on the victim block.
	BugRecallGateRace
	// BugStaleReadReq drops the stale-ReadReq recovery: a reordered read
	// from the current dirty owner is served as if the owner had written
	// the block back.
	BugStaleReadReq
	// BugStaleSharingWB drops the stale-SharingWB guard: a reordered
	// sharing writeback from a cluster that has since re-acquired
	// ownership clears the dirty bit anyway.
	BugStaleSharingWB
	// BugStaleWritebackReq drops the stale-WritebackReq guard: a reordered
	// writeback from the current dirty owner resets the entry anyway.
	BugStaleWritebackReq
)

var bugNames = [...]string{"none", "recall-gate-race", "stale-readreq", "stale-sharingwb", "stale-writebackreq"}

func (b Bug) String() string {
	if int(b) < len(bugNames) {
		return bugNames[b]
	}
	return fmt.Sprintf("Bug(%d)", uint8(b))
}

// ParseBug parses a bug knob name.
func ParseBug(s string) (Bug, error) {
	for i, n := range bugNames {
		if n == s {
			return Bug(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown bug %q", s)
}

// Config describes one model-checking instance.
type Config struct {
	Clusters int          // 2..4
	Blocks   int          // 1..4
	Scheme   core.Factory // directory scheme, e.g. a registry entry

	// Ops is the per-cluster budget of spontaneous operations (reads,
	// writes, evictions, downgrades). Budgets, when non-nil, overrides it
	// per cluster.
	Ops     int
	Budgets []int

	// SparseEntries > 0 models a sparse directory with that many entries
	// and SparseAssoc ways (default 1) per home, LRU-replaced; 0 models a
	// full map.
	SparseEntries int
	SparseAssoc   int

	Order Order
	Bug   Bug

	// NoSymmetry disables cluster-symmetry reduction (it is also disabled
	// automatically for schemes whose entries are not relabeling-
	// equivariant).
	NoSymmetry bool
}

// Model is a checkable instance: the geometry, the parsed scheme
// semantics and the symmetry group.
type Model struct {
	cfg   Config
	es    *entryScheme
	n, nb int
	sets  int // sparse sets per home, 0 = full map
	assoc int
	perms [][]int // non-identity cluster relabelings fixing every home
}

// New builds a model from cfg.
func New(cfg Config) (*Model, error) {
	if cfg.Clusters < 2 || cfg.Clusters > maxClusters {
		return nil, fmt.Errorf("model: clusters = %d, want 2..%d", cfg.Clusters, maxClusters)
	}
	if cfg.Blocks < 1 || cfg.Blocks > maxBlocks {
		return nil, fmt.Errorf("model: blocks = %d, want 1..%d", cfg.Blocks, maxBlocks)
	}
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("model: no scheme factory")
	}
	scheme, err := cfg.Scheme(cfg.Clusters)
	if err != nil {
		return nil, err
	}
	es, err := parseScheme(scheme)
	if err != nil {
		return nil, err
	}
	if es.nodes != cfg.Clusters {
		return nil, fmt.Errorf("model: scheme %s tracks %d nodes for %d clusters", es.name, es.nodes, cfg.Clusters)
	}
	if cfg.Budgets != nil && len(cfg.Budgets) != cfg.Clusters {
		return nil, fmt.Errorf("model: %d budgets for %d clusters", len(cfg.Budgets), cfg.Clusters)
	}
	for _, b := range cfg.Budgets {
		if b < 0 || b > 255 {
			return nil, fmt.Errorf("model: budget %d out of range", b)
		}
	}
	if cfg.Ops < 0 || cfg.Ops > 255 {
		return nil, fmt.Errorf("model: ops = %d out of range", cfg.Ops)
	}
	m := &Model{cfg: cfg, es: es, n: cfg.Clusters, nb: cfg.Blocks}
	if cfg.SparseEntries > 0 {
		m.assoc = cfg.SparseAssoc
		if m.assoc <= 0 {
			m.assoc = 1
		}
		m.sets = (cfg.SparseEntries + m.assoc - 1) / m.assoc
	}
	if !cfg.NoSymmetry && es.symOK() {
		m.perms = homeFixingPerms(m.n, m.nb)
	}
	return m, nil
}

// Scheme returns the paper notation of the modeled scheme.
func (m *Model) Scheme() string { return m.es.name }

// home, dirKey and keyBlock mirror the machine's block-to-home
// interleaving and per-home directory keying.
func (m *Model) home(b int) int          { return b % m.n }
func (m *Model) dirKey(b int) int        { return b / m.n }
func (m *Model) keyBlock(key, h int) int { return key*m.n + h }

// homeFixingPerms returns the non-identity permutations of the clusters
// that fix every cluster serving as a home, so relabeled states describe
// the same block-to-home geometry.
func homeFixingPerms(n, nb int) [][]int {
	isHome := make([]bool, n)
	for b := 0; b < nb; b++ {
		isHome[b%n] = true
	}
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			id := true
			for j, p := range perm {
				if p != j {
					id = false
					break
				}
			}
			if !id {
				out = append(out, append([]int(nil), perm...))
			}
			return
		}
		if isHome[i] {
			perm[i] = i
			rec(i + 1)
			return
		}
		for c := 0; c < n; c++ {
			if !used[c] && !isHome[c] {
				used[c], perm[i] = true, c
				rec(i + 1)
				used[c] = false
			}
		}
	}
	rec(0)
	return out
}

// Cache states (one combined state per cluster and block: the machine's
// per-processor states within a cluster collapse onto the cluster bus).
const (
	cacheI uint8 = iota
	cacheS
	cacheD
)

// opSlot is one outstanding processor operation of a cluster. Cleared
// slots are the zero value so equal states encode identically.
type opSlot struct {
	active   bool
	block    int8
	local    bool // served at the home cluster's own memory
	poisoned bool // reads only: reply must not install a copy
}

// Gate-queue item kinds.
const (
	qRead uint8 = iota
	qWrite
	qLocalRead
	qLocalWrite
	qRecall
)

var qNames = [...]string{"read", "write", "local-read", "local-write", "recall"}

// qItem is one closure parked on a block's gate: a deferred request
// (from = requester) or a deferred replacement recall carrying the
// victim's entry snapshot.
type qItem struct {
	kind uint8
	from int8
	ve   dirEntry
}

// dline is one sparse-directory way. rank is the normalized LRU position
// among the set's valid lines (0 = least recent), mirroring the
// machine's lastUse ordering without unbounded timestamps.
type dline struct {
	valid bool
	key   int8
	rank  uint8
	ent   dirEntry
}

// Message flavors: protocol.MsgKind identifies the wire kind; the flavor
// distinguishes delivery closures the machine attaches to the same kind.
const (
	fNone       uint8 = iota
	fUnlock           // DataReply that also unlocks the home gate
	fAckToReq         // Inval acked to the requesting cluster (write path)
	fAckToRAC         // Inval acked to the home RAC (replacement recall)
	fAckInert         // Inval acked with no effect (Dir_iNB pointer eviction)
	fAckProc          // AckMsg consuming a requester's pending-ack credit
	fAckRAC           // AckMsg feeding the home RAC
	fAckNone          // AckMsg with no effect
	fMeaningful       // SharingWB from a real downgrade
	fInert            // SharingWB with an empty closure (3-hop read traffic)
)

// msg is one in-flight network message.
type msg struct {
	kind     uint8 // protocol.MsgKind
	from, to int8
	block    int8
	req      int8 // requester (FwdReadReq/FwdWriteReq/Inval fAckToReq), else -1
	flavor   uint8
}

// state is the full global state. All slices are dense and fixed-size
// for a given Model, so encode yields a canonical byte string.
type state struct {
	cache  []uint8  // n*nb
	rd, wr []opSlot // n
	acks   []uint8  // n: outstanding invalidation acks owed to the cluster
	budget []uint8  // n: remaining spontaneous operations

	wbExp   []uint8   // nb: writebacks expected (stale-owner recovery)
	recalls []uint8   // nb: replacement recalls pending on the block
	rac     []uint8   // nb: outstanding recall acks
	gate    []bool    // nb: gate busy
	gateQ   [][]qItem // nb

	present []bool     // full map: nb
	ent     []dirEntry // full map: nb
	lines   []dline    // sparse: n*sets*assoc

	msgs []msg
}

func (m *Model) initState() *state {
	s := &state{
		cache:   make([]uint8, m.n*m.nb),
		rd:      make([]opSlot, m.n),
		wr:      make([]opSlot, m.n),
		acks:    make([]uint8, m.n),
		budget:  make([]uint8, m.n),
		wbExp:   make([]uint8, m.nb),
		recalls: make([]uint8, m.nb),
		rac:     make([]uint8, m.nb),
		gate:    make([]bool, m.nb),
		gateQ:   make([][]qItem, m.nb),
	}
	for c := 0; c < m.n; c++ {
		if m.cfg.Budgets != nil {
			s.budget[c] = uint8(m.cfg.Budgets[c])
		} else {
			s.budget[c] = uint8(m.cfg.Ops)
		}
	}
	if m.sets > 0 {
		s.lines = make([]dline, m.n*m.sets*m.assoc)
		for i := range s.lines {
			s.lines[i].ent = emptyEntry()
		}
	} else {
		s.present = make([]bool, m.nb)
		s.ent = make([]dirEntry, m.nb)
		for i := range s.ent {
			s.ent[i] = emptyEntry()
		}
	}
	return s
}

func (s *state) clone() *state {
	c := &state{
		cache:   append([]uint8(nil), s.cache...),
		rd:      append([]opSlot(nil), s.rd...),
		wr:      append([]opSlot(nil), s.wr...),
		acks:    append([]uint8(nil), s.acks...),
		budget:  append([]uint8(nil), s.budget...),
		wbExp:   append([]uint8(nil), s.wbExp...),
		recalls: append([]uint8(nil), s.recalls...),
		rac:     append([]uint8(nil), s.rac...),
		gate:    append([]bool(nil), s.gate...),
		gateQ:   make([][]qItem, len(s.gateQ)),
		msgs:    append([]msg(nil), s.msgs...),
	}
	for i, q := range s.gateQ {
		if len(q) > 0 {
			c.gateQ[i] = append([]qItem(nil), q...)
		}
	}
	if s.lines != nil {
		c.lines = append([]dline(nil), s.lines...)
	} else {
		c.present = append([]bool(nil), s.present...)
		c.ent = append([]dirEntry(nil), s.ent...)
	}
	return c
}

// sortMsgs brings the message multiset into canonical order. Under FIFO
// the per-pair order is the channel contents and must be preserved, so
// the sort is stable on (from, to) only; under OrderAny the multiset has
// no order and sorts on every field.
func (m *Model) sortMsgs(s *state) {
	if m.cfg.Order == OrderFIFO {
		sort.SliceStable(s.msgs, func(i, j int) bool {
			a, b := s.msgs[i], s.msgs[j]
			if a.from != b.from {
				return a.from < b.from
			}
			return a.to < b.to
		})
		return
	}
	sort.Slice(s.msgs, func(i, j int) bool { return msgLess(s.msgs[i], s.msgs[j]) })
}

func msgLess(a, b msg) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.block != b.block {
		return a.block < b.block
	}
	if a.req != b.req {
		return a.req < b.req
	}
	return a.flavor < b.flavor
}

// normalizeLines sorts each sparse set's ways by (!valid, key). Way
// position is not semantic — invalid ways are interchangeable and valid
// lines are selected by key or rank — so a fixed order canonicalizes it.
func (m *Model) normalizeLines(s *state) {
	if m.sets == 0 {
		return
	}
	for base := 0; base < len(s.lines); base += m.assoc {
		set := s.lines[base : base+m.assoc]
		sort.Slice(set, func(i, j int) bool {
			if set[i].valid != set[j].valid {
				return set[i].valid
			}
			return set[i].key < set[j].key
		})
	}
}

// encode appends the state's canonical bytes. The layout only has to be
// injective for a fixed Model, not self-describing.
func (m *Model) encode(s *state, buf []byte) []byte {
	buf = append(buf, s.cache...)
	for _, slots := range [][]opSlot{s.rd, s.wr} {
		for _, o := range slots {
			buf = append(buf, boolByte(o.active)|boolByte(o.local)<<1|boolByte(o.poisoned)<<2, byte(o.block))
		}
	}
	buf = append(buf, s.acks...)
	buf = append(buf, s.budget...)
	buf = append(buf, s.wbExp...)
	buf = append(buf, s.recalls...)
	buf = append(buf, s.rac...)
	for _, g := range s.gate {
		buf = append(buf, boolByte(g))
	}
	for _, q := range s.gateQ {
		buf = append(buf, byte(len(q)))
		for _, it := range q {
			buf = append(buf, it.kind, byte(it.from+1))
			buf = it.ve.encode(buf)
		}
	}
	if s.lines != nil {
		for i := range s.lines {
			l := &s.lines[i]
			buf = append(buf, boolByte(l.valid), byte(l.key), l.rank)
			buf = l.ent.encode(buf)
		}
	} else {
		for b := range s.ent {
			buf = append(buf, boolByte(s.present[b]))
			buf = s.ent[b].encode(buf)
		}
	}
	buf = append(buf, byte(len(s.msgs)))
	for _, g := range s.msgs {
		buf = append(buf, g.kind, byte(g.from+1), byte(g.to+1), byte(g.block), byte(g.req+1), g.flavor)
	}
	return buf
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// relabeled returns a copy of s with every cluster reference rewritten
// through perm (which fixes all homes, so per-block and per-home data
// stay in place).
func (m *Model) relabeled(s *state, perm []int) *state {
	r := s.clone()
	for c := 0; c < m.n; c++ {
		p := perm[c]
		copy(r.cache[p*m.nb:(p+1)*m.nb], s.cache[c*m.nb:(c+1)*m.nb])
		r.rd[p], r.wr[p] = s.rd[c], s.wr[c]
		r.acks[p], r.budget[p] = s.acks[c], s.budget[c]
	}
	for _, q := range r.gateQ {
		for i := range q {
			if q[i].from >= 0 {
				q[i].from = int8(perm[q[i].from])
			}
			q[i].ve.relabel(m.es, perm)
		}
	}
	if r.lines != nil {
		// Homes are fixed by perm, so each home's lines stay in its own
		// rows; only entry contents relabel.
		for i := range r.lines {
			if r.lines[i].valid {
				r.lines[i].ent.relabel(m.es, perm)
			}
		}
	} else {
		for b := range r.ent {
			if r.present[b] {
				r.ent[b].relabel(m.es, perm)
			}
		}
	}
	for i := range r.msgs {
		g := &r.msgs[i]
		g.from = int8(perm[g.from])
		g.to = int8(perm[g.to])
		if g.req >= 0 {
			g.req = int8(perm[g.req])
		}
	}
	m.sortMsgs(r)
	return r
}

// canonicalize sorts the clone-owned s into canonical form, applies the
// symmetry group and returns the lexicographically minimal
// representative with its key and the relabeling that produced it (nil
// when s itself is minimal). The explorer composes these relabelings to
// report counterexample traces in the original run's coordinates.
func (m *Model) canonicalize(s *state) (string, *state, []int) {
	m.sortMsgs(s)
	m.normalizeLines(s)
	best := s
	bestKey := m.encode(s, nil)
	var bestPerm []int
	for _, perm := range m.perms {
		r := m.relabeled(s, perm)
		m.normalizeLines(r)
		k := m.encode(r, nil)
		if string(k) < string(bestKey) {
			best, bestKey, bestPerm = r, k, perm
		}
	}
	return string(bestKey), best, bestPerm
}

// composePerm returns p∘q (apply q, then p); nil is the identity.
func composePerm(p, q []int, n int) []int {
	if p == nil {
		return q
	}
	if q == nil {
		return append([]int(nil), p...)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = p[q[i]]
	}
	return out
}

// invPerm inverts a permutation; nil stays the identity.
func invPerm(p []int) []int {
	if p == nil {
		return nil
	}
	inv := make([]int, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}
