package model

import (
	"fmt"

	"dircoh/internal/check"
)

// Step is one scripted processor operation for RunScript.
type Step struct {
	Cluster int
	Write   bool
	Block   int
}

// EntryState is the externally observable state of one directory entry
// after a sequential run.
type EntryState struct {
	Present bool
	Dirty   bool
	Owner   int // -1 when not dirty
	Sharers uint8
}

// View is the quiescent machine-visible state after a sequential run:
// the per-cluster cache state of every block and every home entry. The
// conformance tests diff it against the real machine's state after
// replaying the same script.
type View struct {
	Cache [][]check.CopyState // [cluster][block]
	Entry []EntryState        // [block]
}

// RunScript executes the steps strictly sequentially — each operation is
// issued and the network fully drained (FIFO order) before the next —
// and returns the quiescent view. Operation hits (read with a copy,
// write on a dirty copy) are bus-local no-ops, as in the machine. Any
// invariant violation, non-quiescence or unexpected model state is an
// error. Budgets do not apply; the script is the workload.
func (m *Model) RunScript(steps []Step) (*View, error) {
	if m.cfg.Order != OrderFIFO {
		return nil, fmt.Errorf("model: RunScript requires OrderFIFO")
	}
	s := m.initState()
	a := &applier{m: m, s: s}
	for i, st := range steps {
		if st.Cluster < 0 || st.Cluster >= m.n || st.Block < 0 || st.Block >= m.nb {
			return nil, fmt.Errorf("model: step %d out of range: %+v", i, st)
		}
		c, b := st.Cluster, st.Block
		if st.Write {
			if a.cacheAt(c, b) == cacheD {
				continue // write hit
			}
			a.issueWrite(c, b)
		} else {
			if a.cacheAt(c, b) != cacheI {
				continue // read hit
			}
			a.issueRead(c, b)
		}
		for iter := 0; len(s.msgs) > 0; iter++ {
			if iter > 10000 {
				return nil, fmt.Errorf("model: step %d did not quiesce", i)
			}
			m.sortMsgs(s)
			a.deliver(0)
			if len(a.viol) > 0 {
				return nil, fmt.Errorf("model: step %d: %v", i, a.viol[0])
			}
		}
		if m.pendingWork(s) {
			return nil, fmt.Errorf("model: step %d left pending work with no messages in flight", i)
		}
		a.checkState()
		if len(a.viol) > 0 {
			return nil, fmt.Errorf("model: step %d: %v", i, a.viol[0])
		}
	}
	v := &View{Cache: make([][]check.CopyState, m.n), Entry: make([]EntryState, m.nb)}
	for c := 0; c < m.n; c++ {
		v.Cache[c] = make([]check.CopyState, m.nb)
		for b := 0; b < m.nb; b++ {
			switch a.cacheAt(c, b) {
			case cacheS:
				v.Cache[c][b] = check.CopyShared
			case cacheD:
				v.Cache[c][b] = check.CopyDirty
			}
		}
	}
	for b := 0; b < m.nb; b++ {
		if e := a.dirPeek(b); e != nil {
			v.Entry[b] = EntryState{Present: true, Dirty: e.dirty, Owner: int(e.owner), Sharers: e.mask(m.es)}
		} else {
			v.Entry[b] = EntryState{Owner: -1}
		}
	}
	return v, nil
}
