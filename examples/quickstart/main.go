// Quickstart: build a 16-processor DASH-style machine with the coarse
// vector directory scheme, run a small synthetic workload, and print the
// paper-style measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dircoh/internal/apps"
	"dircoh/internal/machine"
)

func main() {
	// A machine is described by a Config; DefaultConfig gives the paper's
	// setup (one processor per cluster, 64 KB + 256 KB caches, 16-byte
	// blocks) for any directory scheme.
	cfg := machine.DefaultConfig(machine.CoarseVec2) // Dir3CV2
	cfg.Procs = 16

	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Workloads are per-processor reference streams; apps.Uniform is a
	// synthetic smoke workload, apps.LU/DWF/MP3D/LocusRoute are the
	// paper's four applications.
	w := apps.Uniform(apps.UniformConfig{
		Procs:     cfg.Procs,
		Blocks:    256,
		Refs:      5000,
		WriteFrac: 3, // 3 writes per 10 references
		Seed:      42,
	})

	r, err := m.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.CheckCoherence(); err != nil {
		log.Fatal("coherence: ", err)
	}

	fmt.Print(r.Summary())
	fmt.Printf("  network: %d messages over the mesh, %d max hops\n", r.Net.Messages, r.Net.MaxHops)
	fmt.Print(r.InvalHist.Render("invalidations per write event"))
}
