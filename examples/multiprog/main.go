// Multiprog: demonstrate the coarse vector's multiprogramming property
// (§4.1): "Writes in one user's processor space will never cause
// invalidation messages to be sent to caches of other users", because a
// coarse region only covers neighbouring processors.
//
// The demo has two parts: a direct look at the directory entries, and two
// co-scheduled "users" on disjoint processor halves of one machine, each
// repeatedly read-sharing and updating its own table.
//
//	go run ./examples/multiprog
package main

import (
	"fmt"
	"log"

	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/tango"
)

func entryDemo() {
	const nodes = 32
	cv := core.Must(core.NewCoarseVector(3, 2, nodes)).NewEntry()
	b := core.Must(core.NewLimitedBroadcast(3, nodes)).NewEntry()

	// User A's application runs on clusters 0..15 and shares one block
	// among eight of them — enough to overflow three pointers.
	for _, n := range []core.NodeID{0, 2, 4, 6, 8, 10, 12, 14} {
		cv.AddSharer(n)
		b.AddSharer(n)
	}

	spill := func(e core.Entry) int {
		count := 0
		e.Sharers().ForEach(func(n int) {
			if n >= 16 { // user B's clusters
				count++
			}
		})
		return count
	}
	fmt.Println("Entry-level view (8 sharers among user A's clusters 0-15):")
	fmt.Printf("  Dir3CV2: %2d invalidation targets leak into user B's half; targets = %v\n", spill(cv), cv.Sharers())
	fmt.Printf("  Dir3B:   %2d invalidation targets leak into user B's half (broadcast)\n", spill(b))
	fmt.Println()
}

// twoUsers builds a gang-scheduled workload: processors 0-15 are user A,
// 16-31 are user B. Each user has a private table its processors read
// every round; one processor then updates it — a write to widely shared
// data, the worst case for imprecise directories.
func twoUsers(procs, rounds int) *tango.Workload {
	half := procs / 2
	alloc := tango.NewAllocator(16)
	tableA := alloc.Words(64)
	tableB := alloc.Words(64)
	barrier := alloc.Words(2)

	builders := make([]tango.Builder, procs)
	for r := 0; r < rounds; r++ {
		for p := 0; p < procs; p++ {
			table := tableA
			if p >= half {
				table = tableB
			}
			builders[p].ReadRange(table, 0, 16)
		}
		for p := 0; p < procs; p++ {
			builders[p].Barrier(barrier.Word(0))
		}
		// One processor of each user updates its table.
		builders[r%half].WriteRange(tableA, 0, 16)
		builders[half+r%half].WriteRange(tableB, 0, 16)
		for p := 0; p < procs; p++ {
			builders[p].Barrier(barrier.Word(1))
		}
	}
	streams := make([][]tango.Ref, procs)
	for i := range builders {
		streams[i] = builders[i].Refs()
	}
	return &tango.Workload{Name: "two-users", Streams: streams, SharedBytes: alloc.TotalBytes()}
}

func main() {
	entryDemo()

	for _, s := range []struct {
		label string
		f     machine.SchemeFactory
	}{
		{"Dir3CV2 (coarse vector)", machine.CoarseVec2},
		{"Dir3B   (broadcast)   ", machine.Broadcast},
	} {
		cfg := machine.DefaultConfig(s.f)
		m, err := machine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run(twoUsers(cfg.Procs, 24))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.CheckCoherence(); err != nil {
			log.Fatal("coherence: ", err)
		}
		fmt.Printf("%s: %5d invalidation+ack messages, %5.2f invals/event, exec %d cycles\n",
			s.label, r.Msgs.InvalAck(), r.InvalHist.Mean(), r.ExecTime)
	}
	fmt.Println()
	fmt.Println("Each user shares its table among its own 16 clusters. The coarse")
	fmt.Println("vector invalidates at most that half of the machine; the broadcast")
	fmt.Println("scheme sprays the other user's caches on every table update.")
}
