// Schemes: compare all five directory entry schemes — full bit vector,
// coarse vector (the paper's contribution), limited pointers with
// broadcast, limited pointers without broadcast, and the superset scheme —
// on the LocusRoute workload, the paper's most scheme-sensitive
// application (Figure 10).
//
//	go run ./examples/schemes
package main

import (
	"fmt"
	"log"

	"dircoh/internal/apps"
	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
)

func main() {
	schemes := []struct {
		label string
		f     machine.SchemeFactory
	}{
		{"Dir32 full vector", machine.FullVec},
		{"Dir3CV2 coarse vector", machine.CoarseVec2},
		{"Dir3B broadcast", machine.Broadcast},
		{"Dir3NB no-broadcast", machine.NoBroadcast},
		{"Dir2X superset", func(n int) (core.Scheme, error) { return core.NewSuperset(2, n) }},
	}

	tb := stats.NewTable("scheme", "exec(norm)", "msgs(norm)", "requests", "replies", "inval+ack", "avg invals/event")
	var baseExec, baseMsgs float64
	for i, s := range schemes {
		m, err := machine.New(machine.DefaultConfig(s.f))
		if err != nil {
			log.Fatal(err)
		}
		// Each run needs a fresh workload: streams are consumed.
		r, err := m.Run(apps.ByName("LocusRoute", 32))
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseExec = float64(r.ExecTime)
			baseMsgs = float64(r.Msgs.Total())
		}
		tb.AddRow(
			s.label,
			fmt.Sprintf("%.3f", float64(r.ExecTime)/baseExec),
			fmt.Sprintf("%.3f", float64(r.Msgs.Total())/baseMsgs),
			fmt.Sprintf("%d", r.Msgs[stats.Request]),
			fmt.Sprintf("%d", r.Msgs[stats.Reply]),
			fmt.Sprintf("%d", r.Msgs.InvalAck()),
			fmt.Sprintf("%.2f", r.InvalHist.Mean()),
		)
	}
	fmt.Println("LocusRoute, 32 processors, normalized to the full bit vector:")
	fmt.Println()
	fmt.Println(tb)
	fmt.Println("Expected shape (paper §6.2): the broadcast scheme explodes in")
	fmt.Println("invalidation traffic; the coarse vector stays within ~12% of the")
	fmt.Println("full vector; no-broadcast sits between them on this workload.")
}
