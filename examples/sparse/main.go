// Sparse: demonstrate the sparse directory (§4.2) on the DWF workload —
// a directory cache holding a fraction of the blocks, with replacement
// invalidations tracked by the Remote Access Cache. Sweeps the size
// factor and shows the storage savings each point buys.
//
//	go run ./examples/sparse
package main

import (
	"fmt"
	"log"

	"dircoh/internal/analytic"
	"dircoh/internal/core"
	"dircoh/internal/exp"
	"dircoh/internal/machine"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
)

func main() {
	const procs = 32
	tb := stats.NewTable("directory", "exec(norm)", "msgs(norm)", "replacements", "RAC peak", "storage savings")

	var baseExec, baseMsgs float64
	for i, sf := range []int{0, 4, 2, 1} {
		cfg := exp.SparseConfigFor("DWF", machine.FullVec, procs, sf, 4, sparse.LRU)
		m, err := machine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run(exp.SparseWorkload("DWF", procs))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.CheckCoherence(); err != nil {
			log.Fatal("coherence: ", err)
		}
		label := "full map (one entry per block)"
		savings := "1.0x"
		if sf > 0 {
			label = fmt.Sprintf("sparse, size factor %d", sf)
			// Storage accounting from the analytic model: sparsity =
			// memory blocks per directory entry at this size factor.
			totalCacheBlocks := int64(procs) * int64(cfg.Cache.L2Size/cfg.Block)
			memBlocks := int64(procs) * (16 << 20) / 16
			sparsity := int(memBlocks / (totalCacheBlocks * int64(sf)))
			oh := analytic.Overhead(analytic.OverheadConfig{
				Procs: procs, ProcsPerCluster: 1,
				MemBytesPerProc: 16 << 20, CacheBytesPerProc: 256 << 10,
				BlockBytes: 16, Scheme: core.Must(core.NewFullVector(procs)),
				Sparsity: sparsity,
			})
			savings = fmt.Sprintf("%.0fx", oh.Savings)
		}
		if i == 0 {
			baseExec = float64(r.ExecTime)
			baseMsgs = float64(r.Msgs.Total())
		}
		tb.AddRow(
			label,
			fmt.Sprintf("%.3f", float64(r.ExecTime)/baseExec),
			fmt.Sprintf("%.3f", float64(r.Msgs.Total())/baseMsgs),
			fmt.Sprintf("%d", r.Replacements),
			fmt.Sprintf("%d", r.RACPeak),
			savings,
		)
	}
	fmt.Println("DWF, 32 processors, full bit vector, scaled caches (paper §6.3):")
	fmt.Println()
	fmt.Println(tb)
	fmt.Println("Expected shape: one to two orders of magnitude of directory storage")
	fmt.Println("saved for a few percent of extra traffic and almost no execution-time")
	fmt.Println("cost — the paper's headline sparse-directory result.")
}
