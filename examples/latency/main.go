// Latency: measure the machine's memory-operation latency distribution and
// check it against the paper's §5 constants — local accesses ~23 cycles,
// two-cluster remote ~60, three-cluster remote ~80.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"dircoh/internal/apps"
	"dircoh/internal/machine"
)

func main() {
	cfg := machine.DefaultConfig(machine.FullVec)
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := apps.MP3D(apps.DefaultMP3D(cfg.Procs))
	r, err := m.Run(w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MP3D on the paper's 32-processor machine:")
	fmt.Println()
	fmt.Print(r.ReadLat.Render("read latency (cycles)"))
	fmt.Println()
	fmt.Print(r.WriteLat.Render("write latency (cycles)"))
	fmt.Println()
	fmt.Printf("bus utilization %.1f%%, directory utilization %.1f%%\n",
		100*r.BusUtil, 100*r.DirUtil)
	fmt.Println()
	fmt.Println("The <2 bucket is cache hits; the ~32-64 buckets are local (23-cycle)")
	fmt.Println("and two-cluster (~60-cycle) accesses; the ~64-128 bucket covers")
	fmt.Println("three-cluster forwards (~80 cycles) and queueing — §5's constants.")
}
