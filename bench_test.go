// Package dircoh's root benchmark harness regenerates every table and
// figure of the paper's evaluation section. Each benchmark runs the
// corresponding experiment and reports its headline quantities as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation:
//
//	BenchmarkFig2_*        — analytic invalidation curves (Figure 2 a/b)
//	BenchmarkTable1        — directory overhead arithmetic
//	BenchmarkTable2        — application characteristics
//	BenchmarkFig3to6_*     — LocusRoute invalidation distributions
//	BenchmarkFig7..10_*    — scheme comparison per application
//	BenchmarkFig11..12_*   — sparse directory performance
//	BenchmarkFig13_Assoc   — sparse associativity sweep
//	BenchmarkFig14_Policy  — sparse replacement policy sweep
package dircoh

import (
	"fmt"
	"runtime"
	"testing"

	"dircoh/internal/analytic"
	"dircoh/internal/core"
	"dircoh/internal/exp"
	"dircoh/internal/sim"
)

// session is the shared experiment session the benchmarks run on:
// default parallelism and the serial machine core, no instrumentation.
var session = exp.NewSession(exp.Observer{}, 0, 0)

func benchCurves(b *testing.B, nodes, region int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		full := analytic.InvalCurve(core.Must(core.NewFullVector(nodes)), 500, 1)
		cv := analytic.InvalCurve(core.Must(core.NewCoarseVector(3, region, nodes)), 500, 1)
		x := analytic.InvalCurve(core.Must(core.NewSuperset(3, nodes)), 500, 1)
		bc := analytic.InvalCurve(core.Must(core.NewLimitedBroadcast(3, nodes)), 500, 1)
		mid := nodes / 2
		b.ReportMetric(full[mid], "full-invals@mid")
		b.ReportMetric(cv[mid], "cv-invals@mid")
		b.ReportMetric(x[mid], "x-invals@mid")
		b.ReportMetric(bc[mid], "b-invals@mid")
	}
}

// BenchmarkFig2_32P regenerates Figure 2(a): 32 processors, Dir3CV2.
func BenchmarkFig2_32P(b *testing.B) { benchCurves(b, 32, 2) }

// BenchmarkFig2_64P regenerates Figure 2(b): 64 processors, Dir3CV4.
func BenchmarkFig2_64P(b *testing.B) { benchCurves(b, 64, 4) }

// BenchmarkTable1 regenerates Table 1's overhead arithmetic.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = analytic.Table1()
		ex := analytic.SparseSavingsExample()
		b.ReportMetric(ex.Savings, "savings-x")
	}
}

// BenchmarkTable2 regenerates Table 2: workload generation and
// characterization for all four applications.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := session.Table2(exp.Procs)
		if tb == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkFig3to6_InvalDist regenerates Figures 3-6: the LocusRoute
// invalidation distributions under the four schemes.
func BenchmarkFig3to6_InvalDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := session.Figs3to6(exp.Procs)
		b.ReportMetric(runs[0].Result.InvalHist.Mean(), "full-mean")
		b.ReportMetric(runs[1].Result.InvalHist.Mean(), "nb-mean")
		b.ReportMetric(runs[2].Result.InvalHist.Mean(), "b-mean")
		b.ReportMetric(runs[3].Result.InvalHist.Mean(), "cv-mean")
	}
}

func benchSchemeComparison(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.SchemeComparison(app, exp.Procs)
		base := float64(runs[0].Result.ExecTime)
		baseM := float64(runs[0].Result.Msgs.Total())
		names := []string{"full", "cv", "bcast", "nb"}
		for j, r := range runs {
			b.ReportMetric(float64(r.Result.ExecTime)/base, names[j]+"-exec")
			b.ReportMetric(float64(r.Result.Msgs.Total())/baseM, names[j]+"-msgs")
		}
	}
}

// BenchmarkFig7_LU regenerates Figure 7.
func BenchmarkFig7_LU(b *testing.B) { benchSchemeComparison(b, "LU") }

// BenchmarkFig8_DWF regenerates Figure 8.
func BenchmarkFig8_DWF(b *testing.B) { benchSchemeComparison(b, "DWF") }

// BenchmarkFig9_MP3D regenerates Figure 9.
func BenchmarkFig9_MP3D(b *testing.B) { benchSchemeComparison(b, "MP3D") }

// BenchmarkFig10_LocusRoute regenerates Figure 10.
func BenchmarkFig10_LocusRoute(b *testing.B) { benchSchemeComparison(b, "LocusRoute") }

func benchSparse(b *testing.B, app string) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.SparsePerformance(app, exp.Procs)
		base := runs[0].Result
		for _, r := range runs[1:] {
			if r.Label == "Full Vector sf=1" {
				b.ReportMetric(float64(r.Result.ExecTime)/float64(base.ExecTime), "full-sf1-exec")
				b.ReportMetric(float64(r.Result.Msgs.Total())/float64(base.Msgs.Total()), "full-sf1-msgs")
			}
			if r.Label == "Broadcast sf=1" {
				b.ReportMetric(float64(r.Result.Msgs.Total())/float64(base.Msgs.Total()), "bcast-sf1-msgs")
			}
		}
	}
}

// BenchmarkFig11_SparseLU regenerates Figure 11.
func BenchmarkFig11_SparseLU(b *testing.B) { benchSparse(b, "LU") }

// BenchmarkFig12_SparseDWF regenerates Figure 12.
func BenchmarkFig12_SparseDWF(b *testing.B) { benchSparse(b, "DWF") }

// BenchmarkFig13_Assoc regenerates Figure 13.
func BenchmarkFig13_Assoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.AssocSweep("LU", exp.Procs)
		base := float64(runs[0].Result.Msgs.Total())
		for _, r := range runs[1:] {
			switch r.Label {
			case "sf=1 assoc=1":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "sf1-direct-msgs")
			case "sf=1 assoc=4":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "sf1-assoc4-msgs")
			}
		}
	}
}

// BenchmarkAblateRegion sweeps the coarse vector's region size on
// LocusRoute — the ablation behind the choice of r in Dir_iCV_r.
func BenchmarkAblateRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.RegionSweep("LocusRoute", exp.Procs)
		base := float64(runs[0].Result.Msgs.Total())
		for _, r := range runs[1:] {
			if r.Label == "Dir3CV2" || r.Label == "Dir3CV16" {
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, r.Label+"-msgs")
			}
		}
	}
}

// BenchmarkAblatePointers sweeps the pointer budget for B/NB/CV.
func BenchmarkAblatePointers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.PointerSweep("LocusRoute", exp.Procs)
		base := float64(runs[0].Result.Msgs.Total())
		for _, r := range runs[1:] {
			switch r.Label {
			case "Dir_iB i=3":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "Dir3B-msgs")
			case "Dir_iCV2 i=3":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "Dir3CV2-msgs")
			}
		}
	}
}

// BenchmarkAblateLockContention measures the §7 queued-lock hot spot.
func BenchmarkAblateLockContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.LockContention(exp.Procs, 8)
		b.ReportMetric(float64(runs[0].Result.ExecTime), "full-exec")
		b.ReportMetric(float64(runs[1].Result.ExecTime), "cv-exec")
		b.ReportMetric(float64(runs[1].Result.LockRetries), "cv-retries")
	}
}

// BenchmarkFig14_Policy regenerates Figure 14.
func BenchmarkFig14_Policy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.PolicySweep("LU", exp.Procs)
		base := float64(runs[0].Result.Msgs.Total())
		for _, r := range runs[1:] {
			switch r.Label {
			case "sf=1 LRU":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "sf1-lru-msgs")
			case "sf=1 LRA":
				b.ReportMetric(float64(r.Result.Msgs.Total())/base, "sf1-lra-msgs")
			}
		}
	}
}

// BenchmarkAblateDirectories runs the §7 directory-organization comparison.
func BenchmarkAblateDirectories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.DirectoryComparison("LocusRoute", exp.Procs)
		base := float64(runs[0].Result.Msgs.Total())
		b.ReportMetric(float64(runs[3].Result.Msgs.Total())/base, "overflow64-msgs")
		b.ReportMetric(float64(runs[4].Result.Msgs.Total())/base, "overflow8-msgs")
	}
}

// BenchmarkAblateOccupancy measures peak directory occupancy (§4.2).
func BenchmarkAblateOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.OccupancyStudy(exp.Procs)
		for _, r := range runs {
			b.ReportMetric(float64(r.Result.DirPeak), r.App+"-peak")
		}
	}
}

// BenchmarkAblateNetworkContention reruns Figure 10 with finite ports.
func BenchmarkAblateNetworkContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.NetworkContention("LocusRoute", exp.Procs, []sim.Time{8})
		base := float64(runs[0].Result.ExecTime)
		b.ReportMetric(float64(runs[1].Result.ExecTime)/base, "cv-exec")
		b.ReportMetric(float64(runs[2].Result.ExecTime)/base, "bcast-exec")
	}
}

// BenchmarkAblateBlockSize runs the §3.1 block-size tradeoff.
func BenchmarkAblateBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.BlockSizeStudy("MP3D", exp.Procs, []int{16, 64})
		b.ReportMetric(float64(runs[1].Result.Msgs.InvalAck())/float64(runs[0].Result.Msgs.InvalAck()), "invack-64B-vs-16B")
	}
}

// BenchmarkSweepParallel measures the experiment orchestrator's scaling
// on the Figure 7–10 grid (4 applications × 4 schemes) at 8 processors.
// Sub-benchmarks sweep the pool width from 1 to GOMAXPROCS; on a
// multi-core host the reported speedup metric approaches the worker
// count until the grid's 16 jobs stop covering the pool.
func BenchmarkSweepParallel(b *testing.B) {
	widths := []int{1}
	for w := 2; w <= runtime.GOMAXPROCS(0); w *= 2 {
		widths = append(widths, w)
	}
	for _, par := range widths {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			s := exp.NewSession(exp.Observer{}, par, 0)
			for i := 0; i < b.N; i++ {
				s.Meter().Reset()
				start := b.Elapsed()
				for _, app := range []string{"LU", "DWF", "MP3D", "LocusRoute"} {
					runs, _ := s.SchemeComparison(app, 8)
					if len(runs) != 4 {
						b.Fatalf("%s: %d runs", app, len(runs))
					}
				}
				b.ReportMetric(s.Meter().Summary().Speedup(b.Elapsed()-start), "speedup")
			}
		})
	}
}

// BenchmarkAblateBarriers compares central and tree barriers.
func BenchmarkAblateBarriers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, _ := session.BarrierStudy(exp.Procs, 6, []sim.Time{8})
		b.ReportMetric(float64(runs[0].Result.ExecTime), "central-exec")
		b.ReportMetric(float64(runs[1].Result.ExecTime), "tree-exec")
	}
}
