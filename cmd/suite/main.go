// Command suite runs a JSON-specified list of experiments and prints a
// comparison table. Runs execute concurrently on a worker pool; the
// table keeps the suite file's order. Example suite file:
//
//	{
//	  "runs": [
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "full"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "cv"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "b"}}}
//	  ]
//	}
//
//	suite -f experiments.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dircoh/internal/apps"
	"dircoh/internal/config"
	"dircoh/internal/machine"
	"dircoh/internal/runner"
	"dircoh/internal/stats"
	"dircoh/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "suite:", err)
	os.Exit(1)
}

// outcome is one run's result or its first error.
type outcome struct {
	r   *machine.Result
	err error
}

// execute builds and runs one suite entry end to end.
func execute(run config.RunSpec) outcome {
	fail := func(err error) outcome {
		return outcome{err: fmt.Errorf("%s: %w", run.Name, err)}
	}
	cfg, err := run.Machine.Build()
	if err != nil {
		return fail(err)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return fail(err)
	}
	w := apps.ByName(run.App, cfg.Procs)
	if w == nil {
		// Fall back to a trace file path.
		tf, err := os.Open(run.App)
		if err != nil {
			return fail(fmt.Errorf("unknown app or trace %q", run.App))
		}
		w, err = trace.Read(tf)
		tf.Close()
		if err != nil {
			return fail(err)
		}
	}
	r, err := m.Run(w)
	if err != nil {
		return fail(err)
	}
	if err := m.CheckCoherence(); err != nil {
		return fail(fmt.Errorf("coherence: %w", err))
	}
	return outcome{r: r}
}

func main() {
	var (
		file     = flag.String("f", "", "suite JSON file (required)")
		verbose  = flag.Bool("v", false, "print per-run summaries")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = one per core)")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("-f suite file required"))
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	s, err := config.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	results := runner.Map(runner.New(*parallel), s.Runs, execute)

	tb := stats.NewTable("run", "scheme", "exec", "msgs", "requests", "replies", "inval+ack", "repl")
	for i, run := range s.Runs {
		out := results[i]
		if out.err != nil {
			fatal(out.err)
		}
		r := out.r
		if *verbose {
			fmt.Printf("%s:\n%s\n", run.Name, r.Summary())
		}
		tb.AddRow(
			run.Name,
			r.Scheme,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Msgs.Total()),
			fmt.Sprintf("%d", r.Msgs[stats.Request]),
			fmt.Sprintf("%d", r.Msgs[stats.Reply]),
			fmt.Sprintf("%d", r.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Replacements),
		)
	}
	fmt.Println(tb)
}
