// Command suite runs a JSON-specified list of experiments and prints a
// comparison table. Example suite file:
//
//	{
//	  "runs": [
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "full"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "cv"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "b"}}}
//	  ]
//	}
//
//	suite -f experiments.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dircoh/internal/apps"
	"dircoh/internal/config"
	"dircoh/internal/machine"
	"dircoh/internal/stats"
	"dircoh/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "suite:", err)
	os.Exit(1)
}

func main() {
	var (
		file    = flag.String("f", "", "suite JSON file (required)")
		verbose = flag.Bool("v", false, "print per-run summaries")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("-f suite file required"))
	}
	f, err := os.Open(*file)
	if err != nil {
		fatal(err)
	}
	s, err := config.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	tb := stats.NewTable("run", "scheme", "exec", "msgs", "requests", "replies", "inval+ack", "repl")
	for _, run := range s.Runs {
		cfg, err := run.Machine.Build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", run.Name, err))
		}
		m, err := machine.New(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", run.Name, err))
		}
		var w = apps.ByName(run.App, cfg.Procs)
		if w == nil {
			// Fall back to a trace file path.
			tf, err := os.Open(run.App)
			if err != nil {
				fatal(fmt.Errorf("%s: unknown app or trace %q", run.Name, run.App))
			}
			w, err = trace.Read(tf)
			tf.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", run.Name, err))
			}
		}
		r, err := m.Run(w)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", run.Name, err))
		}
		if err := m.CheckCoherence(); err != nil {
			fatal(fmt.Errorf("%s: coherence: %w", run.Name, err))
		}
		if *verbose {
			fmt.Printf("%s:\n%s\n", run.Name, r.Summary())
		}
		tb.AddRow(
			run.Name,
			r.Scheme,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Msgs.Total()),
			fmt.Sprintf("%d", r.Msgs[stats.Request]),
			fmt.Sprintf("%d", r.Msgs[stats.Reply]),
			fmt.Sprintf("%d", r.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Replacements),
		)
	}
	fmt.Println(tb)
}
