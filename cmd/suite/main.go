// Command suite runs a JSON-specified list of experiments and prints a
// comparison table. Runs execute concurrently on a worker pool; the
// table keeps the suite file's order. Example suite file:
//
//	{
//	  "runs": [
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "full"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "cv"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "b"}}}
//	  ]
//	}
//
//	suite -f experiments.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"dircoh/internal/apps"
	"dircoh/internal/cli"
	"dircoh/internal/config"
	"dircoh/internal/machine"
	"dircoh/internal/runner"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
	"dircoh/internal/trace"
)

const tool = "suite"

var obsFlags *cli.Obs

// outcome is one run's result or its first error.
type outcome struct {
	r   *machine.Result
	err error
}

// loadWorkload resolves a suite entry's app field: a registered
// application name, or (for unknown names) a trace file path.
func loadWorkload(name string, procs int) (*tango.Workload, error) {
	build, lookupErr := apps.Lookup(name)
	if lookupErr == nil {
		return build(procs), nil
	}
	tf, err := os.Open(name)
	if err != nil {
		var unknown *apps.UnknownAppError
		if errors.As(lookupErr, &unknown) {
			return nil, fmt.Errorf("%w and no such trace file", lookupErr)
		}
		return nil, err
	}
	defer tf.Close()
	return trace.Read(tf)
}

// execute builds and runs one suite entry end to end.
func execute(run config.RunSpec) outcome {
	fail := func(err error) outcome {
		return outcome{err: fmt.Errorf("%s: %w", run.Name, err)}
	}
	cfg, err := run.Machine.Build()
	if err != nil {
		return fail(err)
	}
	w, err := loadWorkload(run.App, cfg.Procs)
	if err != nil {
		return fail(err)
	}
	cfg.Trace = obsFlags.Tracer(run.Name)
	cfg.Spans = obsFlags.Spans(run.Name)
	cfg.SampleEvery = obsFlags.SampleEvery()
	cfg.Mesh.Faults = obsFlags.Faults()
	cfg.Deadline = obsFlags.Deadline()
	cfg.Shards = obsFlags.Shards()
	if obsFlags.Checking() {
		cfg.Check = true
		cfg.CheckSink = obsFlags.CheckSink(run.Name)
	}
	m, err := machine.New(cfg)
	if err != nil {
		return fail(err)
	}
	r, err := m.Run(w)
	if err != nil {
		return fail(err)
	}
	if err := m.CheckCoherence(); err != nil {
		return fail(fmt.Errorf("coherence: %w", err))
	}
	if err := m.CheckErr(); err != nil {
		return fail(err)
	}
	if err := m.FlushTrace(); err != nil {
		return fail(fmt.Errorf("trace: %w", err))
	}
	if err := m.FlushSpans(); err != nil {
		return fail(fmt.Errorf("spans: %w", err))
	}
	obsFlags.WriteMetrics(run.Name, m.MetricsSnapshot())
	return outcome{r: r}
}

func main() {
	var (
		file     = flag.String("f", "", "suite JSON file (required)")
		verbose  = flag.Bool("v", false, "print per-run summaries")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = one per core)")
	)
	obsFlags = cli.NewObs(tool)
	flag.Parse()
	if *file == "" {
		cli.Usagef(tool, "-f suite file required")
	}
	f, err := os.Open(*file)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	s, err := config.Load(f)
	f.Close()
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	cli.Check(tool, obsFlags.Start())
	defer obsFlags.Stop()

	results := runner.Map(runner.New(*parallel), s.Runs, execute)

	tb := stats.NewTable("run", "scheme", "exec", "msgs", "requests", "replies", "inval+ack", "repl")
	for i, run := range s.Runs {
		out := results[i]
		if out.err != nil {
			cli.Fatalf(tool, "%v", out.err)
		}
		r := out.r
		if *verbose {
			fmt.Printf("%s:\n%s\n", run.Name, r.Summary())
		}
		tb.AddRow(
			run.Name,
			r.Scheme,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Msgs.Total()),
			fmt.Sprintf("%d", r.Msgs[stats.Request]),
			fmt.Sprintf("%d", r.Msgs[stats.Reply]),
			fmt.Sprintf("%d", r.Msgs.InvalAck()),
			fmt.Sprintf("%d", r.Replacements),
		)
	}
	fmt.Println(tb)
}
