// Command suite runs a JSON-specified list of experiments and prints a
// comparison table. Runs execute concurrently on a worker pool; the
// table keeps the suite file's order. Example suite file:
//
//	{
//	  "runs": [
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "full"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "cv"}}},
//	    {"app": "LocusRoute", "machine": {"scheme": {"kind": "b"}}}
//	  ]
//	}
//
//	suite -f experiments.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dircoh/internal/cli"
	"dircoh/internal/config"
	"dircoh/internal/exp"
	"dircoh/internal/machine"
	"dircoh/internal/runner"
	"dircoh/internal/stats"
)

const tool = "suite"

// outcome is one run's result or its first error.
type outcome struct {
	r   *machine.Result
	err error
}

func main() {
	var (
		file     = flag.String("f", "", "suite JSON file (required)")
		verbose  = flag.Bool("v", false, "print per-run summaries")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = one per core)")
	)
	obsFlags := cli.NewObs(tool)
	flag.Parse()
	if *file == "" {
		cli.Usagef(tool, "-f suite file required")
	}
	f, err := os.Open(*file)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	s, err := config.Load(f)
	f.Close()
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	cli.Check(tool, obsFlags.Start())
	defer obsFlags.Stop()

	// One exp.Session carries the observability hooks and shard width into
	// every run (the same path the campaign service uses, so outputs
	// match); the suite's own pool provides the cross-run concurrency, so
	// the session executes each entry serially.
	ob := exp.Observer{Tracer: obsFlags.Tracer, Spans: obsFlags.Spans, Metrics: obsFlags.WriteMetrics, SampleEvery: obsFlags.SampleEvery(), Faults: obsFlags.Faults(), Deadline: obsFlags.Deadline(), Live: obsFlags.Live()}
	if obsFlags.Checking() {
		ob.Check = obsFlags.CheckSink
	}
	sess := exp.NewSession(ob, 1, obsFlags.Shards())

	results := runner.Map(runner.New(*parallel), s.Runs, func(run config.RunSpec) outcome {
		r, err := sess.ExecuteSpec(run)
		return outcome{r: r, err: err}
	})

	tb := stats.NewTable(exp.SuiteTableHeader...)
	for i, run := range s.Runs {
		out := results[i]
		if out.err != nil {
			cli.Fatalf(tool, "%v", out.err)
		}
		if *verbose {
			fmt.Printf("%s:\n%s\n", run.Name, out.r.Summary())
		}
		tb.AddRow(exp.SuiteRowCells(run.Name, out.r)...)
	}
	fmt.Println(tb)
}
