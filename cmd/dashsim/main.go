// Command dashsim runs one application on one simulated DASH-style
// machine configuration and prints the paper's measurements: execution
// time, the four message classes, the invalidation distribution, and
// directory statistics.
//
// Examples:
//
//	dashsim -app LocusRoute -scheme cv
//	dashsim -app LU -scheme Dir4CV8 -sparse 64 -assoc 4 -policy rand -hist
//	dashsim -app MP3D -procs 64 -ppc 4 -scheme full -trace-out mp3d.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dircoh/internal/apps"
	"dircoh/internal/cache"
	"dircoh/internal/cli"
	"dircoh/internal/core"
	"dircoh/internal/machine"
	"dircoh/internal/sparse"
	"dircoh/internal/stats"
	"dircoh/internal/tango"
	"dircoh/internal/trace"
)

const tool = "dashsim"

func policy(name string) (sparse.ReplacePolicy, error) {
	switch strings.ToLower(name) {
	case "lru":
		return sparse.LRU, nil
	case "rand", "random":
		return sparse.Random, nil
	case "lra":
		return sparse.LRA, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want lru|rand|lra)", name)
	}
}

func main() {
	var (
		app     = flag.String("app", "LocusRoute", "application: "+strings.Join(apps.All(), ", "))
		procs   = flag.Int("procs", 32, "total processors")
		ppc     = flag.Int("ppc", 1, "processors per cluster")
		scheme  = flag.String("scheme", "full", "directory scheme: full, cv, b, nb, x, or notation like Dir3CV2")
		ptrs    = flag.Int("ptrs", 3, "pointers for limited schemes")
		region  = flag.Int("region", 2, "coarse vector region size")
		sparseN = flag.Int("sparse", 0, "sparse directory entries per cluster (0 = full map)")
		assoc   = flag.Int("assoc", 4, "sparse directory associativity")
		polName = flag.String("policy", "lru", "sparse replacement policy: lru, rand, lra")
		l1      = flag.Int("l1", 64<<10, "L1 cache bytes per processor")
		l2      = flag.Int("l2", 256<<10, "L2 cache bytes per processor")
		hist    = flag.Bool("hist", false, "print the invalidation distribution")
		lat     = flag.Bool("lat", false, "print read/write latency histograms")
		seed    = flag.Int64("seed", 1, "simulation seed")
		traceIn = flag.String("trace", "", "replay a trace file (see cmd/tracegen) instead of generating -app")
	)
	obsFlags := cli.NewObs(tool).EnableServer()
	flag.Parse()

	f, err := core.ParseSpec(*scheme, *ptrs, *region)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	pol, err := policy(*polName)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	var w *tango.Workload
	if *traceIn != "" {
		tf, err := os.Open(*traceIn)
		if err != nil {
			cli.Fatalf(tool, "%v", err)
		}
		w, err = trace.Read(tf)
		tf.Close()
		if err != nil {
			cli.Fatalf(tool, "%v", err)
		}
		*procs = w.Procs()
	} else {
		build, err := apps.Lookup(*app)
		if err != nil {
			cli.Usagef(tool, "%v", err)
		}
		w = build(*procs)
	}
	cli.Check(tool, obsFlags.Start())
	defer obsFlags.Stop()

	cfg := machine.DefaultConfig(f)
	cfg.Procs = *procs
	cfg.ProcsPerCluster = *ppc
	cfg.Cache = cache.Config{L1Size: *l1, L1Assoc: 1, L2Size: *l2, L2Assoc: 1, Block: 16}
	cfg.Seed = *seed
	if *sparseN > 0 {
		cfg.Sparse = machine.SparseConfig{Entries: *sparseN, Assoc: *assoc, Policy: pol}
	}
	cfg.Trace = obsFlags.Tracer(w.Name)
	cfg.Spans = obsFlags.Spans(w.Name)
	cfg.SampleEvery = obsFlags.SampleEvery()
	cfg.Mesh.Faults = obsFlags.Faults()
	cfg.Deadline = obsFlags.Deadline()
	cfg.Shards = obsFlags.Shards()
	if lv := obsFlags.Live(); lv != nil {
		cfg.Live = lv.Run(w.Name)
	}
	if obsFlags.Checking() {
		cfg.Check = true
		cfg.CheckSink = obsFlags.CheckSink(w.Name)
	}
	m, err := machine.New(cfg)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	if obsFlags.Shards() > 0 && m.Shards() == 0 {
		fmt.Fprintf(os.Stderr, "%s: -shards %d ignored, serial fallback: %s\n", tool, obsFlags.Shards(), m.FallbackReason())
	}

	c := w.Characterize()
	fmt.Printf("%s: %d procs (%d clusters), scheme %s\n", w.Name, *procs, cfg.Clusters(), m.Scheme().Name())
	fmt.Printf("shared refs: %d (%d reads, %d writes), sync ops: %d, shared data: %.1f KB\n",
		c.SharedRefs, c.SharedReads, c.SharedWrites, c.SyncOps, float64(c.SharedBytes)/1024)

	r, err := m.Run(w)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	if err := m.CheckCoherence(); err != nil {
		cli.Fatalf(tool, "coherence check failed: %v", err)
	}
	if err := m.CheckErr(); err != nil {
		cli.Fatalf(tool, "%v (%d total; see -check-out for records)", err, m.ViolationCount())
	}
	cli.Check(tool, m.FlushTrace())
	cli.Check(tool, m.FlushSpans())
	obsFlags.WriteMetrics(w.Name, m.MetricsSnapshot())

	fmt.Println()
	fmt.Print(r.Summary())
	fmt.Printf("  message classes: %d %v, %d %v, %d %v, %d %v\n",
		r.Msgs[stats.Request], stats.Request,
		r.Msgs[stats.Reply], stats.Reply,
		r.Msgs[stats.Invalidation], stats.Invalidation,
		r.Msgs[stats.Ack], stats.Ack)
	fmt.Printf("  network: %d messages, %.2f avg hops\n", r.Net.Messages, float64(r.Net.Hops)/float64(max(1, r.Net.Messages)))
	fmt.Printf("  caches: %d misses, %d upgrades, %d dirty evictions\n", r.Cache.Misses, r.Cache.Upgrades, r.Cache.DirtyEv)
	fmt.Printf("  directory: %d lookups, %d allocations, %d replacements\n", r.Dir.Lookups, r.Dir.Allocations, r.Dir.Replacements)
	if *hist {
		fmt.Println()
		fmt.Print(r.InvalHist.Render("invalidation distribution (invalidations per event)"))
	}
	if *lat {
		fmt.Println()
		fmt.Print(r.ReadLat.Render("read latency (cycles)"))
		fmt.Print(r.WriteLat.Render("write latency (cycles)"))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
