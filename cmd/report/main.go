// Command report runs the whole evaluation and writes a self-contained
// markdown report (figures, tables and ablations) to a file or stdout.
//
//	report -o REPORT.md            # everything (several minutes)
//	report -sparse=false           # skip the slow sparse sweeps
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dircoh/internal/cli"
	"dircoh/internal/exp"
)

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		procs     = flag.Int("procs", exp.Procs, "processors")
		trials    = flag.Int("trials", 2000, "Monte-Carlo trials for Figure 2")
		sparse    = flag.Bool("sparse", true, "include the sparse-directory sweeps (slow)")
		ablations = flag.Bool("ablations", true, "include the ablation studies")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = one per core)")
	)
	obsFlags := cli.NewObs("report").EnableServer()
	flag.Parse()
	cli.Check("report", obsFlags.Start())
	defer obsFlags.Stop()
	ob := exp.Observer{Tracer: obsFlags.Tracer, Spans: obsFlags.Spans, Metrics: obsFlags.WriteMetrics, SampleEvery: obsFlags.SampleEvery(), Faults: obsFlags.Faults(), Deadline: obsFlags.Deadline(), Live: obsFlags.Live()}
	s := exp.NewSession(ob, *parallel, obsFlags.Shards())

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.Fatalf("report", "%v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	start := time.Now()
	opt := exp.ReportOptions{Procs: *procs, Trials: *trials, Sparse: *sparse, Ablations: *ablations}
	cli.Check("report", s.WriteReport(w, opt))
	cli.Check("report", w.Flush())
	fmt.Fprintf(os.Stderr, "report generated in %s\n", time.Since(start).Round(time.Second))
}
