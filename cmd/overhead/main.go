// Command overhead regenerates Table 1 (sample machine configurations and
// their directory memory overhead) and the §5 sparse-directory storage
// savings example.
package main

import (
	"flag"
	"fmt"

	"dircoh/internal/analytic"
	"dircoh/internal/cli"
	"dircoh/internal/core"
)

func main() {
	var (
		custom   = flag.Bool("custom", false, "also print a custom configuration")
		procs    = flag.Int("procs", 256, "custom: total processors")
		ppc      = flag.Int("ppc", 4, "custom: processors per cluster")
		sparsity = flag.Int("sparsity", 4, "custom: memory blocks per directory entry")
	)
	obsFlags := cli.NewObs("overhead")
	flag.Parse()
	cli.Check("overhead", obsFlags.Start())
	defer obsFlags.Stop()

	fmt.Println("Table 1: sample machine configurations (16 MB memory + 256 KB cache per processor)")
	fmt.Println(analytic.Table1())

	ex := analytic.SparseSavingsExample()
	fmt.Printf("Sparse savings example (§5): full bit vector, 32 clusters, sparsity 64:\n")
	fmt.Printf("  %d state bits + %d tag bits per entry, one entry per 64 blocks\n", ex.StateBits, ex.TagBits)
	fmt.Printf("  storage savings factor vs non-sparse: %.1f\n", ex.Savings)

	if *custom {
		clusters := *procs / *ppc
		scheme, err := core.NewFullVector(clusters)
		cli.Check("overhead", err)
		cfg := analytic.OverheadConfig{
			Procs:             *procs,
			ProcsPerCluster:   *ppc,
			MemBytesPerProc:   16 << 20,
			CacheBytesPerProc: 256 << 10,
			BlockBytes:        16,
			Scheme:            scheme,
			Sparsity:          *sparsity,
		}
		r := analytic.Overhead(cfg)
		fmt.Printf("\nCustom: %d procs, %d clusters, full vector, sparsity %d:\n", *procs, clusters, *sparsity)
		fmt.Printf("  %d+%d bits/entry, %d entries/cluster, overhead %.2f%%, savings %.1fx\n",
			r.StateBits, r.TagBits, r.Entries, r.OverheadPct, r.Savings)
	}
}
